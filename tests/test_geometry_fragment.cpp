#include <gtest/gtest.h>

#include "geometry/fragment.hpp"

namespace camo::geo {
namespace {

Polygon via70() { return Polygon::from_rect({100, 100, 170, 170}); }

TEST(FragmentVia, FourSegmentsAllMeasured) {
    const auto segs = fragment_polygon(via70(), {FragmentStyle::kVia, 60}, 0);
    ASSERT_EQ(segs.size(), 4U);
    for (const Segment& s : segs) {
        EXPECT_TRUE(s.measured);
        EXPECT_EQ(s.length(), 70);
        EXPECT_EQ(s.poly, 0);
    }
}

TEST(FragmentVia, OutwardNormalsPointAway) {
    const auto segs = fragment_polygon(via70(), {FragmentStyle::kVia, 60}, 0);
    const FPoint center{135.0, 135.0};
    for (const Segment& s : segs) {
        const FPoint c = s.control();
        const FPoint n = s.normal();
        // The outward normal must point away from the polygon centre.
        const double dot = (c.x - center.x) * n.x + (c.y - center.y) * n.y;
        EXPECT_GT(dot, 0.0);
    }
}

TEST(FragmentVia, ControlPointsAtEdgeCenters) {
    const auto segs = fragment_polygon(via70(), {FragmentStyle::kVia, 60}, 0);
    int on_bottom = 0;
    for (const Segment& s : segs) {
        if (s.axis == Axis::kHorizontal && s.line == 100) {
            EXPECT_EQ(s.control(), (FPoint{135.0, 100.0}));
            ++on_bottom;
        }
    }
    EXPECT_EQ(on_bottom, 1);
}

TEST(FragmentMetal, ShortEdgeSingleSegment) {
    // 50 nm wide wire: horizontal edges shorter than the pitch stay whole.
    const Polygon wire = Polygon::from_rect({0, 0, 50, 40});
    const auto segs = fragment_polygon(wire, {FragmentStyle::kMetal, 60}, 0);
    ASSERT_EQ(segs.size(), 4U);
    int measured = 0;
    for (const Segment& s : segs) {
        if (s.measured) {
            ++measured;
            EXPECT_EQ(s.axis, Axis::kHorizontal);
        }
    }
    EXPECT_EQ(measured, 2);  // top and bottom only
}

TEST(FragmentMetal, PitchSplitWithRemainderAtEnds) {
    // 200 nm edge at 60 nm pitch: 3 segments of 70/60/70.
    const Polygon wire = Polygon::from_rect({0, 0, 200, 50});
    const auto segs = fragment_polygon(wire, {FragmentStyle::kMetal, 60}, 0);

    std::vector<int> bottom_lengths;
    for (const Segment& s : segs) {
        if (s.axis == Axis::kHorizontal && s.line == 0) bottom_lengths.push_back(s.length());
    }
    ASSERT_EQ(bottom_lengths.size(), 3U);
    EXPECT_EQ(bottom_lengths[0] + bottom_lengths[1] + bottom_lengths[2], 200);
    EXPECT_EQ(bottom_lengths[1], 60);
    EXPECT_EQ(bottom_lengths[0], bottom_lengths[2]);
}

TEST(FragmentMetal, MeasurePointPitchIsSixty) {
    const Polygon wire = Polygon::from_rect({0, 0, 300, 50});
    const auto segs = fragment_polygon(wire, {FragmentStyle::kMetal, 60}, 0);
    std::vector<double> xs;
    for (const Segment& s : segs) {
        if (s.axis == Axis::kHorizontal && s.line == 0 && s.measured) xs.push_back(s.control().x);
    }
    std::sort(xs.begin(), xs.end());
    ASSERT_EQ(xs.size(), 5U);  // floor(300/60) = 5 measure points
    for (std::size_t i = 2; i + 1 < xs.size(); ++i) {
        EXPECT_NEAR(xs[i + 1] - xs[i], 60.0, 1e-9) << "interior pitch";
    }
}

TEST(FragmentMetal, VerticalLineEndsUnmeasuredButPresent) {
    const Polygon wire = Polygon::from_rect({0, 0, 200, 50});
    const auto segs = fragment_polygon(wire, {FragmentStyle::kMetal, 60}, 0);
    int vertical = 0;
    for (const Segment& s : segs) {
        if (s.axis == Axis::kVertical) {
            EXPECT_FALSE(s.measured);
            EXPECT_EQ(s.length(), 50);
            ++vertical;
        }
    }
    EXPECT_EQ(vertical, 2);
}

TEST(Fragment, SegmentsFormClosedBoundaryWalk) {
    const Polygon wire = Polygon::from_rect({0, 0, 200, 50});
    const auto segs = fragment_polygon(wire, {FragmentStyle::kMetal, 60}, 0);
    const int n = static_cast<int>(segs.size());
    for (int i = 0; i < n; ++i) {
        const Segment& a = segs[static_cast<std::size_t>(i)];
        const Segment& b = segs[static_cast<std::size_t>((i + 1) % n)];
        // End point of a == start point of b.
        const Point ea = a.axis == Axis::kHorizontal ? Point{a.t1, a.line} : Point{a.line, a.t1};
        const Point sb = b.axis == Axis::kHorizontal ? Point{b.t0, b.line} : Point{b.line, b.t0};
        EXPECT_EQ(ea, sb) << "between segments " << i << " and " << (i + 1) % n;
    }
}

TEST(Fragment, RejectsBadPolygons) {
    Polygon cw({{0, 0}, {0, 10}, {10, 10}, {10, 0}});  // clockwise
    EXPECT_THROW(fragment_polygon(cw, {FragmentStyle::kVia, 60}, 0), std::invalid_argument);
    const Polygon diag({{0, 0}, {10, 10}, {0, 10}});
    EXPECT_THROW(fragment_polygon(diag, {FragmentStyle::kVia, 60}, 0), std::invalid_argument);
}

class MetalEdgeSweep : public ::testing::TestWithParam<int> {};

TEST_P(MetalEdgeSweep, SegmentLengthsTileTheEdge) {
    const int len = GetParam();
    const Polygon wire = Polygon::from_rect({0, 0, len, 45});
    const auto segs = fragment_polygon(wire, {FragmentStyle::kMetal, 60}, 0);
    int total = 0;
    int count = 0;
    for (const Segment& s : segs) {
        if (s.axis == Axis::kHorizontal && s.line == 0) {
            total += s.length();
            ++count;
        }
    }
    EXPECT_EQ(total, len);
    EXPECT_EQ(count, std::max(1, len / 60));
}

INSTANTIATE_TEST_SUITE_P(Lengths, MetalEdgeSweep,
                         ::testing::Values(30, 59, 60, 61, 90, 119, 120, 200, 333, 600, 1499));

}  // namespace
}  // namespace camo::geo
