// OpcServer: admission control, priority scheduling and per-clip
// determinism of the serve loop on a warm scheduler core.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "layout/via_gen.hpp"
#include "litho/simulator.hpp"
#include "opc/rule_engine.hpp"
#include "runtime/batch.hpp"
#include "service/server.hpp"

namespace camo::service {
namespace {

litho::LithoConfig test_litho_config() {
    litho::LithoConfig cfg;
    cfg.grid = 256;
    cfg.pixel_nm = 4.0;
    cfg.kernels_nominal = 6;
    cfg.kernels_defocus = 5;
    cfg.cache_dir = "";
    return cfg;
}

std::vector<geo::SegmentedLayout> test_clips(int count, std::uint64_t seed = 7) {
    layout::ViaGenOptions gen;
    gen.clip_nm = 1000;
    gen.margin_nm = 200;
    gen.min_spacing_nm = 120;
    return core::fragment_via_clips(layout::via_batch_set(seed, count, gen));
}

ServerOptions server_options(int capacity, int threads = 2) {
    ServerOptions opt;
    opt.queue_capacity = capacity;
    opt.batch.threads = threads;
    opt.batch.seed = 7;
    opt.batch.opc.max_iterations = 3;
    opt.batch.opc.initial_bias_nm = 3;
    return opt;
}

runtime::ClipOptimizer rule_optimizer() {
    return [](const geo::SegmentedLayout& layout, litho::LithoSim& sim,
              const opc::OpcOptions& o, std::uint64_t) {
        opc::RuleEngine engine;
        return engine.optimize(layout, sim, o);
    };
}

ServeRequest make_request(const std::string& name, int priority,
                          std::vector<geo::SegmentedLayout> clips) {
    ServeRequest req;
    req.name = name;
    req.priority = priority;
    req.clips = std::move(clips);
    return req;
}

TEST(OpcServer, CapacityBelowOneRejectedAtConstruction) {
    EXPECT_THROW(OpcServer(test_litho_config(), server_options(0)), std::invalid_argument);
    EXPECT_THROW(OpcServer(test_litho_config(), server_options(-2)), std::invalid_argument);
}

TEST(OpcServer, AdmissionControlRejectsWithReason) {
    OpcServer server(test_litho_config(), server_options(2));
    const auto clips = test_clips(1);

    // Empty request: rejected regardless of queue room.
    EXPECT_FALSE(server.submit(make_request("empty", 0, {})));
    EXPECT_EQ(server.pending(), 0);

    EXPECT_TRUE(server.submit(make_request("a", 0, clips)));
    EXPECT_TRUE(server.submit(make_request("b", 0, clips)));
    EXPECT_EQ(server.pending(), 2);

    // Queue full: reject, don't buffer.
    EXPECT_FALSE(server.submit(make_request("c", 5, clips)));
    EXPECT_EQ(server.pending(), 2);

    const std::vector<RequestOutcome> outcomes = server.drain(rule_optimizer());
    ASSERT_EQ(outcomes.size(), 4U);  // arrival order, rejected included
    EXPECT_EQ(outcomes[0].name, "empty");
    EXPECT_FALSE(outcomes[0].accepted);
    EXPECT_NE(outcomes[0].reject_reason.find("empty request"), std::string::npos)
        << outcomes[0].reject_reason;
    EXPECT_EQ(outcomes[0].served_order, -1);
    EXPECT_TRUE(outcomes[1].accepted);
    EXPECT_TRUE(outcomes[2].accepted);
    EXPECT_FALSE(outcomes[3].accepted);
    EXPECT_NE(outcomes[3].reject_reason.find("queue full"), std::string::npos)
        << outcomes[3].reject_reason;
    EXPECT_TRUE(outcomes[3].results.empty());
}

TEST(OpcServer, DrainServesPriorityDescFifoWithinLevel) {
    OpcServer server(test_litho_config(), server_options(8));
    const auto clips = test_clips(1);
    ASSERT_TRUE(server.submit(make_request("low-1", 0, clips)));
    ASSERT_TRUE(server.submit(make_request("high-1", 2, clips)));
    ASSERT_TRUE(server.submit(make_request("mid-1", 1, clips)));
    ASSERT_TRUE(server.submit(make_request("high-2", 2, clips)));
    ASSERT_TRUE(server.submit(make_request("low-2", 0, clips)));

    const std::vector<RequestOutcome> outcomes = server.drain(rule_optimizer());
    ASSERT_EQ(outcomes.size(), 5U);
    // Outcomes are in arrival order; served_order reveals the schedule.
    EXPECT_EQ(outcomes[1].name, "high-1");
    EXPECT_EQ(outcomes[1].served_order, 0);
    EXPECT_EQ(outcomes[3].name, "high-2");
    EXPECT_EQ(outcomes[3].served_order, 1);  // FIFO within priority 2
    EXPECT_EQ(outcomes[2].name, "mid-1");
    EXPECT_EQ(outcomes[2].served_order, 2);
    EXPECT_EQ(outcomes[0].name, "low-1");
    EXPECT_EQ(outcomes[0].served_order, 3);
    EXPECT_EQ(outcomes[4].name, "low-2");
    EXPECT_EQ(outcomes[4].served_order, 4);
    EXPECT_EQ(server.pending(), 0);
}

TEST(OpcServer, ServedClipsMatchDirectSchedulerRunBitwise) {
    // Per-clip results must depend only on (layout, seed policy, clip
    // index) — not on queue order, priorities, or what else is in flight.
    const auto clips = test_clips(3);
    const ServerOptions opt = server_options(4);

    runtime::BatchScheduler direct(test_litho_config(), opt.batch);
    const runtime::BatchResult want = direct.run(clips, rule_optimizer());
    ASSERT_EQ(want.failed, 0);

    OpcServer server(test_litho_config(), opt);
    ASSERT_TRUE(server.submit(make_request("decoy", 9, test_clips(2, 99))));
    ASSERT_TRUE(server.submit(make_request("probe", 0, clips)));
    const std::vector<RequestOutcome> outcomes = server.drain(rule_optimizer());
    ASSERT_EQ(outcomes.size(), 2U);
    const RequestOutcome& probe = outcomes[1];
    EXPECT_EQ(probe.name, "probe");
    ASSERT_EQ(probe.results.size(), clips.size());
    EXPECT_EQ(probe.failed, 0);
    for (std::size_t i = 0; i < clips.size(); ++i) {
        EXPECT_EQ(probe.results[i].offsets, want.clips[i].offsets) << "clip " << i;
        EXPECT_EQ(probe.results[i].final_epe, want.clips[i].final_epe) << "clip " << i;
    }
}

TEST(OpcServer, FailedClipIsContainedToItsRequest) {
    const ServerOptions opt = server_options(4);
    const std::uint64_t poison = derive_seed(opt.batch.seed, 1);

    // Per-request determinism means job seeds restart at clip 0 for every
    // request — so the poison (keyed on the clip-1 seed) can only be hit by
    // a request with a clip at index 1. The clean request has one clip.
    OpcServer server(test_litho_config(), opt);
    ASSERT_TRUE(server.submit(make_request("poisoned", 1, test_clips(3))));
    ASSERT_TRUE(server.submit(make_request("clean", 0, test_clips(1, 99))));

    const std::vector<RequestOutcome> outcomes = server.drain(
        [poison](const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                 const opc::OpcOptions& o, std::uint64_t job_seed) {
            if (job_seed == poison) throw std::runtime_error("injected failure");
            opc::RuleEngine engine;
            return engine.optimize(layout, sim, o);
        });
    ASSERT_EQ(outcomes.size(), 2U);
    EXPECT_EQ(outcomes[0].name, "poisoned");
    EXPECT_EQ(outcomes[0].failed, 1);
    ASSERT_EQ(outcomes[0].results.size(), 3U);
    EXPECT_EQ(outcomes[0].results[1].error, "injected failure");
    EXPECT_TRUE(outcomes[0].results[0].error.empty());
    EXPECT_EQ(outcomes[1].failed, 0);
    ASSERT_EQ(outcomes[1].results.size(), 1U);
    EXPECT_TRUE(outcomes[1].results[0].error.empty());
}

TEST(OpcServer, DeadlineMissFlaggedButResultStillComputed) {
    OpcServer server(test_litho_config(), server_options(2));
    ServeRequest req = make_request("tight", 0, test_clips(2));
    req.deadline_s = 1e-9;  // guaranteed miss: any real OPC takes longer
    ASSERT_TRUE(server.submit(std::move(req)));
    ServeRequest loose = make_request("loose", 0, test_clips(1));
    loose.deadline_s = 3600.0;
    ASSERT_TRUE(server.submit(std::move(loose)));

    const std::vector<RequestOutcome> outcomes = server.drain(rule_optimizer());
    ASSERT_EQ(outcomes.size(), 2U);
    EXPECT_TRUE(outcomes[0].deadline_missed);
    EXPECT_EQ(outcomes[0].results.size(), 2U);  // soft deadline: still served
    EXPECT_EQ(outcomes[0].failed, 0);
    EXPECT_FALSE(outcomes[1].deadline_missed);
    EXPECT_GT(outcomes[0].latency_s, 0.0);
    EXPECT_GE(outcomes[0].latency_s, outcomes[0].service_s);
}

TEST(OpcServer, RepeatedSubmitDrainCyclesOnWarmCore) {
    OpcServer server(test_litho_config(), server_options(2));
    const auto clips = test_clips(2);

    std::vector<int> first_offsets;
    for (int cycle = 0; cycle < 3; ++cycle) {
        ASSERT_TRUE(server.submit(make_request("r" + std::to_string(cycle), 0, clips)));
        const std::vector<RequestOutcome> outcomes = server.drain(rule_optimizer());
        ASSERT_EQ(outcomes.size(), 1U);
        ASSERT_EQ(outcomes[0].results.size(), 2U);
        EXPECT_EQ(outcomes[0].failed, 0);
        if (cycle == 0) {
            first_offsets = outcomes[0].results[0].offsets;
        } else {
            // Warm caches must not leak state between cycles.
            EXPECT_EQ(outcomes[0].results[0].offsets, first_offsets) << "cycle " << cycle;
        }
        EXPECT_EQ(server.pending(), 0);
    }
}

}  // namespace
}  // namespace camo::service
