// Additional OPC engine behaviour tests: clamping, gain response, and
// option plumbing that the main engine tests do not cover.
#include <gtest/gtest.h>

#include "opc/ilt.hpp"
#include "opc/one_shot.hpp"
#include "opc/rule_engine.hpp"
#include "opc/sraf.hpp"

namespace camo::opc {
namespace {

class OpcMoreTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        litho::LithoConfig cfg;
        cfg.grid = 256;
        cfg.pixel_nm = 4.0;
        cfg.kernels_nominal = 6;
        cfg.kernels_defocus = 5;
        cfg.cache_dir = "";
        sim_ = new litho::LithoSim(cfg);
    }
    static void TearDownTestSuite() {
        delete sim_;
        sim_ = nullptr;
    }

    static geo::SegmentedLayout via_layout() {
        const int lo = 500 - 35;
        return geo::SegmentedLayout({geo::Polygon::from_rect({lo, lo, lo + 70, lo + 70})},
                                    {geo::FragmentStyle::kVia, 60}, {}, 1000);
    }

    static litho::LithoSim* sim_;
};

litho::LithoSim* OpcMoreTest::sim_ = nullptr;

TEST_F(OpcMoreTest, OneShotRespectsCorrectionClamp) {
    OneShotEngine engine({.gain = 0.8, .max_correction = 3});
    OpcOptions opt;
    opt.initial_bias_nm = 0;  // via underprints badly: wants a big move
    const EngineResult res = engine.optimize(via_layout(), *sim_, opt);
    for (int off : res.final_offsets) {
        EXPECT_LE(std::abs(off), 3);  // bias 0 + clamped correction
    }
}

TEST_F(OpcMoreTest, RuleEngineRespectsTotalOffsetBound) {
    RuleEngine engine({.gain = 2.0, .max_step_nm = 10, .early_exit = false});
    OpcOptions opt;
    opt.max_iterations = 10;
    opt.initial_bias_nm = 0;
    opt.max_total_offset_nm = 6;
    const EngineResult res = engine.optimize(via_layout(), *sim_, opt);
    for (int off : res.final_offsets) EXPECT_LE(std::abs(off), 6);
}

TEST_F(OpcMoreTest, HigherGainConvergesFasterInitially) {
    // Start in the responsive regime (bias 6: the via almost prints) so the
    // EPE is not clamped and the two gains genuinely differ after one step.
    OpcOptions opt;
    opt.max_iterations = 1;
    opt.initial_bias_nm = 6;
    RuleEngine slow({.gain = 0.25, .max_step_nm = 10, .early_exit = false});
    RuleEngine fast({.gain = 0.8, .max_step_nm = 10, .early_exit = false});
    const EngineResult rs = slow.optimize(via_layout(), *sim_, opt);
    const EngineResult rf = fast.optimize(via_layout(), *sim_, opt);
    EXPECT_LT(rf.final_metrics.sum_abs_epe, rs.final_metrics.sum_abs_epe);
}

TEST_F(OpcMoreTest, IltMaskValuesAreTransmissions) {
    IltEngine ilt({.iterations = 4, .step = 4.0, .mask_steepness = 4.0,
                   .resist_steepness = 40.0});
    const IltResult res = ilt.optimize(via_layout(), *sim_);
    for (float v : res.mask.data()) {
        EXPECT_GE(v, 0.0F);
        EXPECT_LE(v, 1.0F);
    }
    EXPECT_EQ(res.loss_history.size(), 5U);  // initial + 4 iterations
}

TEST(SrafOptions, GeometryFollowsConfiguration) {
    const std::vector<geo::Polygon> targets = {geo::Polygon::from_rect({500, 500, 570, 570})};
    SrafOptions opt;
    opt.bar_width_nm = 20;
    opt.bar_length_nm = 50;
    opt.center_offset_nm = 130;
    const auto bars = insert_srafs(targets, opt);
    ASSERT_EQ(bars.size(), 4U);
    for (const auto& bar : bars) {
        const geo::Rect bb = bar.bbox();
        const int short_side = std::min(bb.width(), bb.height());
        const int long_side = std::max(bb.width(), bb.height());
        EXPECT_EQ(short_side, 20);
        EXPECT_EQ(long_side, 50);
        // Centre distance along the bar's normal axis.
        const geo::FPoint c = bb.center();
        const double d = std::max(std::abs(c.x - 535.0), std::abs(c.y - 535.0));
        EXPECT_NEAR(d, 130.0, 1e-9);
    }
}

TEST(SrafOptions, NoTargetsNoBars) {
    EXPECT_TRUE(insert_srafs({}).empty());
}

}  // namespace
}  // namespace camo::opc
