#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "layout/gdsii.hpp"
#include "layout/render.hpp"
#include "layout/via_gen.hpp"
#include "scenario/scenario.hpp"

namespace camo::layout {
namespace {

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

TEST(Gdsii, RoundtripSingleRect) {
    GdsLibrary lib;
    lib.layers[1].push_back(geo::Polygon::from_rect({100, 200, 170, 270}));
    const std::string path = temp_path("camo_single.gds");
    write_gds(path, lib);

    const GdsLibrary back = read_gds(path);
    EXPECT_EQ(back.name, "CAMO");
    EXPECT_EQ(back.structure, "TOP");
    ASSERT_EQ(back.layers.count(1), 1U);
    ASSERT_EQ(back.layers.at(1).size(), 1U);
    EXPECT_EQ(back.layers.at(1)[0].bbox(), (geo::Rect{100, 200, 170, 270}));
    EXPECT_DOUBLE_EQ(back.layers.at(1)[0].area(), 70.0 * 70.0);
    std::remove(path.c_str());
}

TEST(Gdsii, RoundtripMultiLayerStaircase) {
    GdsLibrary lib;
    lib.name = "LIB2";
    lib.structure = "CHIP";
    // Staircase polygon like an OPC'd mask.
    lib.layers[10].push_back(geo::Polygon(
        {{0, 0}, {30, 0}, {30, 8}, {20, 8}, {20, 12}, {10, 12}, {10, 10}, {0, 10}}));
    lib.layers[2].push_back(geo::Polygon::from_rect({50, 0, 80, 20}));
    lib.layers[2].push_back(geo::Polygon::from_rect({-30, -40, -10, -20}));  // negative coords

    const std::string path = temp_path("camo_multi.gds");
    write_gds(path, lib);
    const GdsLibrary back = read_gds(path);
    EXPECT_EQ(back.name, "LIB2");
    EXPECT_EQ(back.structure, "CHIP");
    ASSERT_EQ(back.layers.at(10).size(), 1U);
    EXPECT_EQ(back.layers.at(10)[0].size(), 8);
    ASSERT_EQ(back.layers.at(2).size(), 2U);
    EXPECT_EQ(back.layers.at(2)[1].bbox(), (geo::Rect{-30, -40, -10, -20}));
    std::remove(path.c_str());
}

TEST(Gdsii, RoundtripGeneratedClip) {
    Rng rng(5);
    GdsLibrary lib;
    lib.layers[1] = generate_via_clip(5, rng);
    const std::string path = temp_path("camo_clip.gds");
    write_gds(path, lib);
    const GdsLibrary back = read_gds(path);
    ASSERT_EQ(back.layers.at(1).size(), 5U);
    double area = 0.0;
    for (const auto& p : back.layers.at(1)) area += p.area();
    EXPECT_DOUBLE_EQ(area, 5.0 * 70.0 * 70.0);
    std::remove(path.c_str());
}

// Property/fuzz round-trip over the scenario catalogue: every registered
// generator's clips — random vias, pair arrays, contact grids, jogged
// gratings, iso-dense splits, SRAM-like cells, multi-pitch bands — survive
// write_gds/read_gds with vertex-exact polygons, across several seeds.
TEST(Gdsii, RoundtripAllScenarioGenerators) {
    scenario::Registry& reg = scenario::Registry::instance();
    for (const std::string& name : reg.names()) {
        const scenario::Scenario sc = reg.get(name);
        for (int trial = 0; trial < 4; ++trial) {
            Rng rng(derive_seed(sc.seed + 7700, static_cast<std::uint64_t>(trial)));
            GdsLibrary lib;
            lib.layers[1] = sc.generate(rng);
            if (lib.layers[1].empty()) continue;

            const std::string path =
                temp_path("camo_fuzz_" + name + "_" + std::to_string(trial) + ".gds");
            write_gds(path, lib);
            const GdsLibrary back = read_gds(path);
            std::remove(path.c_str());

            ASSERT_EQ(back.layers.count(1), 1U) << name << " trial " << trial;
            const auto& wrote = lib.layers.at(1);
            const auto& got = back.layers.at(1);
            ASSERT_EQ(got.size(), wrote.size()) << name << " trial " << trial;
            for (std::size_t i = 0; i < wrote.size(); ++i) {
                EXPECT_EQ(got[i], wrote[i])
                    << name << " trial " << trial << " polygon " << i << " changed";
            }
        }
    }
}

TEST(Gdsii, MissingFileThrows) { EXPECT_THROW(read_gds("/nonexistent.gds"), std::runtime_error); }

TEST(Gdsii, MalformedFileThrows) {
    const std::string path = temp_path("camo_bad.gds");
    {
        std::ofstream out(path, std::ios::binary);
        out.put('\x00');  // record length 2 < header size
        out.put('\x02');
    }
    EXPECT_THROW(read_gds(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Render, GrayPpmHasCorrectHeader) {
    geo::Raster r(16, 1.0);
    r.at(8, 8) = 1.0F;
    const std::string path = temp_path("camo_gray.ppm");
    write_ppm_gray(path, r);

    std::ifstream in(path, std::ios::binary);
    std::string magic;
    int w = 0;
    int h = 0;
    int maxval = 0;
    in >> magic >> w >> h >> maxval;
    EXPECT_EQ(magic, "P6");
    EXPECT_EQ(w, 16);
    EXPECT_EQ(h, 16);
    EXPECT_EQ(maxval, 255);
    in.get();  // newline
    std::vector<char> data(16 * 16 * 3);
    in.read(data.data(), static_cast<std::streamsize>(data.size()));
    EXPECT_TRUE(static_cast<bool>(in));
    std::remove(path.c_str());
}

TEST(Render, Fig6WritesFourPanels) {
    Fig6Inputs in;
    in.target = {geo::Polygon::from_rect({100, 100, 200, 150})};
    in.mask = in.target;
    in.printed_nominal = geo::Raster(32, 8.0);
    in.pvband = geo::Raster(32, 8.0);
    in.clip_nm = 256;
    in.offset_nm = 0;

    const std::string prefix = temp_path("camo_fig6");
    render_fig6(prefix, in);
    for (const char* suffix : {"_target.ppm", "_mask.ppm", "_contour.ppm", "_pvband.ppm"}) {
        std::ifstream f(prefix + suffix, std::ios::binary);
        EXPECT_TRUE(static_cast<bool>(f)) << suffix;
        std::remove((prefix + suffix).c_str());
    }
}

}  // namespace
}  // namespace camo::layout
