#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "layout/gdsii.hpp"
#include "layout/render.hpp"
#include "layout/via_gen.hpp"
#include "scenario/scenario.hpp"

namespace camo::layout {
namespace {

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

TEST(Gdsii, RoundtripSingleRect) {
    GdsLibrary lib;
    lib.layers[1].push_back(geo::Polygon::from_rect({100, 200, 170, 270}));
    const std::string path = temp_path("camo_single.gds");
    write_gds(path, lib);

    const GdsLibrary back = read_gds(path);
    EXPECT_EQ(back.name, "CAMO");
    EXPECT_EQ(back.structure, "TOP");
    ASSERT_EQ(back.layers.count(1), 1U);
    ASSERT_EQ(back.layers.at(1).size(), 1U);
    EXPECT_EQ(back.layers.at(1)[0].bbox(), (geo::Rect{100, 200, 170, 270}));
    EXPECT_DOUBLE_EQ(back.layers.at(1)[0].area(), 70.0 * 70.0);
    std::remove(path.c_str());
}

TEST(Gdsii, RoundtripMultiLayerStaircase) {
    GdsLibrary lib;
    lib.name = "LIB2";
    lib.structure = "CHIP";
    // Staircase polygon like an OPC'd mask.
    lib.layers[10].push_back(geo::Polygon(
        {{0, 0}, {30, 0}, {30, 8}, {20, 8}, {20, 12}, {10, 12}, {10, 10}, {0, 10}}));
    lib.layers[2].push_back(geo::Polygon::from_rect({50, 0, 80, 20}));
    lib.layers[2].push_back(geo::Polygon::from_rect({-30, -40, -10, -20}));  // negative coords

    const std::string path = temp_path("camo_multi.gds");
    write_gds(path, lib);
    const GdsLibrary back = read_gds(path);
    EXPECT_EQ(back.name, "LIB2");
    EXPECT_EQ(back.structure, "CHIP");
    ASSERT_EQ(back.layers.at(10).size(), 1U);
    EXPECT_EQ(back.layers.at(10)[0].size(), 8);
    ASSERT_EQ(back.layers.at(2).size(), 2U);
    EXPECT_EQ(back.layers.at(2)[1].bbox(), (geo::Rect{-30, -40, -10, -20}));
    std::remove(path.c_str());
}

TEST(Gdsii, RoundtripGeneratedClip) {
    Rng rng(5);
    GdsLibrary lib;
    lib.layers[1] = generate_via_clip(5, rng);
    const std::string path = temp_path("camo_clip.gds");
    write_gds(path, lib);
    const GdsLibrary back = read_gds(path);
    ASSERT_EQ(back.layers.at(1).size(), 5U);
    double area = 0.0;
    for (const auto& p : back.layers.at(1)) area += p.area();
    EXPECT_DOUBLE_EQ(area, 5.0 * 70.0 * 70.0);
    std::remove(path.c_str());
}

// Property/fuzz round-trip over the scenario catalogue: every registered
// generator's clips — random vias, pair arrays, contact grids, jogged
// gratings, iso-dense splits, SRAM-like cells, multi-pitch bands — survive
// write_gds/read_gds with vertex-exact polygons, across several seeds.
TEST(Gdsii, RoundtripAllScenarioGenerators) {
    scenario::Registry& reg = scenario::Registry::instance();
    for (const std::string& name : reg.names()) {
        const scenario::Scenario sc = reg.get(name);
        for (int trial = 0; trial < 4; ++trial) {
            Rng rng(derive_seed(sc.seed + 7700, static_cast<std::uint64_t>(trial)));
            GdsLibrary lib;
            lib.layers[1] = sc.generate(rng);
            if (lib.layers[1].empty()) continue;

            const std::string path =
                temp_path("camo_fuzz_" + name + "_" + std::to_string(trial) + ".gds");
            write_gds(path, lib);
            const GdsLibrary back = read_gds(path);
            std::remove(path.c_str());

            ASSERT_EQ(back.layers.count(1), 1U) << name << " trial " << trial;
            const auto& wrote = lib.layers.at(1);
            const auto& got = back.layers.at(1);
            ASSERT_EQ(got.size(), wrote.size()) << name << " trial " << trial;
            for (std::size_t i = 0; i < wrote.size(); ++i) {
                EXPECT_EQ(got[i], wrote[i])
                    << name << " trial " << trial << " polygon " << i << " changed";
            }
        }
    }
}

TEST(Gdsii, MissingFileThrows) { EXPECT_THROW(read_gds("/nonexistent.gds"), std::runtime_error); }

TEST(Gdsii, MalformedFileThrows) {
    const std::string path = temp_path("camo_bad.gds");
    {
        std::ofstream out(path, std::ios::binary);
        out.put('\x00');  // record length 2 < header size
        out.put('\x02');
    }
    EXPECT_THROW(read_gds(path), std::runtime_error);
    std::remove(path.c_str());
}

// ------------------------------------------------ corrupt-upload corpus
//
// The serve ingest path feeds read_gds with whatever a client uploads, so
// every malformation class must surface as a typed GdsParseError (with the
// offending byte offset) instead of reading past the buffer or returning a
// silently truncated library.

// Record types mirrored from the reader (the subset the corpus corrupts).
constexpr char kRecBgnStr = 0x05;
constexpr char kRecBoundary = 0x08;
constexpr char kRecLayer = 0x0D;
constexpr char kRecXy = 0x10;
constexpr char kRecEndEl = 0x11;
constexpr char kRecEndLib = 0x04;

std::string raw_record(char type, const std::string& payload = {}) {
    const auto len = static_cast<std::uint16_t>(4 + payload.size());
    std::string r;
    r.push_back(static_cast<char>((len >> 8) & 0xFF));
    r.push_back(static_cast<char>(len & 0xFF));
    r.push_back(type);
    r.push_back('\x00');  // dtype (ignored by the reader)
    r += payload;
    return r;
}

std::string xy_payload(int pairs) {
    std::string p;
    for (int i = 0; i < pairs; ++i) {
        for (int b = 0; b < 8; ++b) p.push_back(static_cast<char>(i & 0xFF));
    }
    return p;
}

std::string write_bytes(const std::string& name, const std::string& bytes) {
    const std::string path = temp_path(name);
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
}

void expect_parse_error(const std::string& name, const std::string& bytes,
                        const std::string& what_contains) {
    const std::string path = write_bytes(name, bytes);
    try {
        (void)read_gds(path);
        FAIL() << name << ": expected GdsParseError containing '" << what_contains << "'";
    } catch (const GdsParseError& e) {
        EXPECT_NE(std::string(e.what()).find(what_contains), std::string::npos)
            << name << " threw with unexpected message: " << e.what();
    }
    std::remove(path.c_str());
}

TEST(Gdsii, TruncatedRecordPayloadThrows) {
    // XY record header claims 16 payload bytes; the file ends after 4.
    std::string bytes = raw_record(kRecBoundary) + raw_record(kRecXy, xy_payload(2));
    bytes.resize(bytes.size() - 12);
    expect_parse_error("camo_trunc_payload.gds", bytes, "truncated record payload");
}

TEST(Gdsii, TruncatedRecordHeaderThrows) {
    // Length bytes present, record type byte missing.
    std::string bytes = raw_record(kRecBoundary);
    bytes.resize(2);
    expect_parse_error("camo_trunc_header.gds", bytes, "truncated record header");
}

TEST(Gdsii, MissingEndlibThrows) {
    // A valid library with its terminator cut off must not parse as if it
    // were complete (a truncated upload would otherwise silently lose
    // trailing polygons).
    GdsLibrary lib;
    lib.layers[1].push_back(geo::Polygon::from_rect({0, 0, 70, 70}));
    const std::string path = temp_path("camo_noendlib.gds");
    write_gds(path, lib);
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
    std::remove(path.c_str());
    ASSERT_GE(bytes.size(), 8U);
    bytes.resize(bytes.size() - 4);  // drop the 4-byte ENDLIB record
    expect_parse_error("camo_noendlib_cut.gds", bytes, "missing ENDLIB");
}

TEST(Gdsii, UnterminatedBoundaryAtEofThrows) {
    const std::string bytes = raw_record(kRecBoundary) + raw_record(kRecXy, xy_payload(4));
    expect_parse_error("camo_unterminated_el.gds", bytes, "unterminated BOUNDARY");
}

TEST(Gdsii, UnterminatedStructureAtEofThrows) {
    const std::string bytes =
        raw_record(kRecBgnStr) + raw_record(kRecBoundary) + raw_record(kRecEndEl);
    expect_parse_error("camo_unterminated_str.gds", bytes, "unterminated structure");
}

TEST(Gdsii, EndlibInsideBoundaryThrows) {
    const std::string bytes = raw_record(kRecBoundary) + raw_record(kRecEndLib);
    expect_parse_error("camo_endlib_in_el.gds", bytes, "ENDLIB inside BOUNDARY");
}

TEST(Gdsii, NestedBoundaryThrows) {
    const std::string bytes = raw_record(kRecBoundary) + raw_record(kRecBoundary);
    expect_parse_error("camo_nested_el.gds", bytes, "nested BOUNDARY");
}

TEST(Gdsii, RaggedXyPayloadThrows) {
    // 12 bytes = 1.5 coordinate pairs; the old reader dropped the tail.
    const std::string bytes =
        raw_record(kRecBoundary) + raw_record(kRecXy, std::string(12, '\x01'));
    expect_parse_error("camo_ragged_xy.gds", bytes, "whole coordinate pairs");
}

TEST(Gdsii, ShortLayerRecordThrows) {
    const std::string bytes =
        raw_record(kRecBoundary) + raw_record(kRecLayer, std::string(1, '\x01'));
    expect_parse_error("camo_short_layer.gds", bytes, "LAYER record too short");
}

TEST(Gdsii, OversizedElementCountThrows) {
    // Two XY records accumulating past the 8191-vertex element cap must be
    // rejected as oversized rather than ballooning cur_pts.
    std::string bytes = raw_record(kRecBoundary);
    bytes += raw_record(kRecXy, xy_payload(4500));
    bytes += raw_record(kRecXy, xy_payload(4500));
    expect_parse_error("camo_oversized.gds", bytes, "oversized BOUNDARY");
}

TEST(Gdsii, ParseErrorCarriesByteOffset) {
    // The second record is the corrupt one; its header starts at byte 4.
    const std::string bytes = raw_record(kRecBoundary) + raw_record(kRecEndLib);
    const std::string path = write_bytes("camo_offset.gds", bytes);
    try {
        (void)read_gds(path);
        FAIL() << "expected GdsParseError";
    } catch (const GdsParseError& e) {
        EXPECT_EQ(e.offset(), 4U);
    }
    std::remove(path.c_str());
}

TEST(Render, GrayPpmHasCorrectHeader) {
    geo::Raster r(16, 1.0);
    r.at(8, 8) = 1.0F;
    const std::string path = temp_path("camo_gray.ppm");
    write_ppm_gray(path, r);

    std::ifstream in(path, std::ios::binary);
    std::string magic;
    int w = 0;
    int h = 0;
    int maxval = 0;
    in >> magic >> w >> h >> maxval;
    EXPECT_EQ(magic, "P6");
    EXPECT_EQ(w, 16);
    EXPECT_EQ(h, 16);
    EXPECT_EQ(maxval, 255);
    in.get();  // newline
    std::vector<char> data(16 * 16 * 3);
    in.read(data.data(), static_cast<std::streamsize>(data.size()));
    EXPECT_TRUE(static_cast<bool>(in));
    std::remove(path.c_str());
}

TEST(Render, Fig6WritesFourPanels) {
    Fig6Inputs in;
    in.target = {geo::Polygon::from_rect({100, 100, 200, 150})};
    in.mask = in.target;
    in.printed_nominal = geo::Raster(32, 8.0);
    in.pvband = geo::Raster(32, 8.0);
    in.clip_nm = 256;
    in.offset_nm = 0;

    const std::string prefix = temp_path("camo_fig6");
    render_fig6(prefix, in);
    for (const char* suffix : {"_target.ppm", "_mask.ppm", "_contour.ppm", "_pvband.ppm"}) {
        std::ifstream f(prefix + suffix, std::ios::binary);
        EXPECT_TRUE(static_cast<bool>(f)) << suffix;
        std::remove((prefix + suffix).c_str());
    }
}

}  // namespace
}  // namespace camo::layout
