#include <gtest/gtest.h>

#include "geometry/polygon.hpp"

namespace camo::geo {
namespace {

TEST(Polygon, RectAreaAndBbox) {
    const Polygon p = Polygon::from_rect({10, 20, 110, 70});
    EXPECT_EQ(p.signed_area2(), 2LL * 100 * 50);
    EXPECT_DOUBLE_EQ(p.area(), 5000.0);
    EXPECT_EQ(p.bbox(), (Rect{10, 20, 110, 70}));
    EXPECT_TRUE(p.is_rectilinear());
}

TEST(Polygon, FromRectIsCcw) {
    const Polygon p = Polygon::from_rect({0, 0, 10, 10});
    EXPECT_GT(p.signed_area2(), 0);
}

TEST(Polygon, NormalizeReversesClockwise) {
    Polygon p({{0, 0}, {0, 10}, {10, 10}, {10, 0}});  // clockwise
    EXPECT_LT(p.signed_area2(), 0);
    p.normalize();
    EXPECT_GT(p.signed_area2(), 0);
    EXPECT_EQ(p.size(), 4);
}

TEST(Polygon, NormalizeDropsCollinearAndDuplicate) {
    Polygon p({{0, 0}, {5, 0}, {10, 0}, {10, 0}, {10, 10}, {0, 10}});
    p.normalize();
    EXPECT_EQ(p.size(), 4);
    EXPECT_DOUBLE_EQ(p.area(), 100.0);
}

TEST(Polygon, LShapeAreaAndContains) {
    // L-shape: 20x20 square minus 10x10 upper-right quadrant.
    Polygon p({{0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}});
    EXPECT_TRUE(p.is_rectilinear());
    EXPECT_DOUBLE_EQ(p.area(), 300.0);
    EXPECT_TRUE(p.contains({5.0, 5.0}));
    EXPECT_TRUE(p.contains({5.0, 15.0}));
    EXPECT_TRUE(p.contains({15.0, 5.0}));
    EXPECT_FALSE(p.contains({15.0, 15.0}));
    EXPECT_FALSE(p.contains({-1.0, 5.0}));
    EXPECT_FALSE(p.contains({5.0, 25.0}));
}

TEST(Polygon, ContainsOnDegenerate) {
    const Polygon empty;
    EXPECT_FALSE(empty.contains({0.0, 0.0}));
    EXPECT_FALSE(empty.is_rectilinear());
}

TEST(Polygon, NonRectilinearDetected) {
    const Polygon diag({{0, 0}, {10, 10}, {0, 10}});
    EXPECT_FALSE(diag.is_rectilinear());
}

struct RectCase {
    Rect r;
};

class PolygonRectSweep : public ::testing::TestWithParam<RectCase> {};

TEST_P(PolygonRectSweep, AreaMatchesRect) {
    const Rect r = GetParam().r;
    const Polygon p = Polygon::from_rect(r);
    EXPECT_DOUBLE_EQ(p.area(), static_cast<double>(r.area()));
    EXPECT_TRUE(p.contains(r.center()));
}

INSTANTIATE_TEST_SUITE_P(Rects, PolygonRectSweep,
                         ::testing::Values(RectCase{{0, 0, 1, 1}}, RectCase{{0, 0, 70, 70}},
                                           RectCase{{-50, -30, 20, 10}},
                                           RectCase{{100, 200, 1100, 260}},
                                           RectCase{{3, 7, 450, 1203}}));

TEST(Rect, GapAndIntersect) {
    const Rect a{0, 0, 10, 10};
    const Rect b{20, 0, 30, 10};
    EXPECT_EQ(rect_gap(a, b), 10);
    EXPECT_FALSE(a.intersects(b));
    const Rect c{5, 5, 15, 15};
    EXPECT_TRUE(a.intersects(c));
    EXPECT_EQ(rect_gap(a, c), 0);
    const Rect d{15, 20, 25, 30};  // diagonal neighbour
    EXPECT_EQ(rect_gap(a, d), 10);
}

TEST(Rect, EmptyAndArea) {
    EXPECT_TRUE((Rect{5, 5, 5, 10}).empty());
    EXPECT_EQ((Rect{5, 5, 5, 10}).area(), 0);
    EXPECT_EQ((Rect{0, 0, 4, 5}).area(), 20);
}

}  // namespace
}  // namespace camo::geo
