#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/camo.hpp"
#include "core/experiment.hpp"
#include "layout/via_gen.hpp"
#include "litho/simulator.hpp"
#include "runtime/batch.hpp"
#include "runtime/stream_queue.hpp"

namespace camo::runtime {
namespace {

litho::LithoConfig test_litho_config() {
    litho::LithoConfig cfg;
    cfg.grid = 256;
    cfg.pixel_nm = 4.0;
    cfg.kernels_nominal = 6;
    cfg.kernels_defocus = 5;
    cfg.cache_dir = "";  // tests never touch the on-disk cache
    return cfg;
}

std::vector<geo::SegmentedLayout> test_clips(int count) {
    layout::ViaGenOptions gen;
    gen.clip_nm = 1000;  // fits the 1024 nm simulation span
    gen.margin_nm = 200;
    gen.min_spacing_nm = 120;  // leave room for up to 6 vias per clip
    const std::vector<layout::Clip> raw = layout::via_batch_set(7, count, gen);
    return core::fragment_via_clips(raw);
}

opc::OpcOptions test_opc_options() {
    opc::OpcOptions opt;
    opt.max_iterations = 3;
    opt.initial_bias_nm = 3;
    return opt;
}

BatchOptions batch_options(int threads) {
    BatchOptions opt;
    opt.threads = threads;
    opt.seed = 7;
    opt.opc = test_opc_options();
    return opt;
}

TEST(BatchScheduler, RuleBatchBitIdenticalAcrossThreadCounts) {
    const auto clips = test_clips(6);

    BatchScheduler one(test_litho_config(), batch_options(1));
    BatchScheduler four(test_litho_config(), batch_options(4));
    const BatchResult r1 = one.run_rule(clips);
    const BatchResult r4 = four.run_rule(clips);

    ASSERT_EQ(r1.clips.size(), clips.size());
    ASSERT_EQ(r4.clips.size(), clips.size());
    EXPECT_EQ(r1.failed, 0);
    EXPECT_EQ(r4.failed, 0);
    for (std::size_t i = 0; i < clips.size(); ++i) {
        EXPECT_EQ(r1.clips[i].offsets, r4.clips[i].offsets) << "clip " << i;
        EXPECT_EQ(r1.clips[i].final_epe, r4.clips[i].final_epe) << "clip " << i;
        EXPECT_EQ(r1.clips[i].pvband_nm2, r4.clips[i].pvband_nm2) << "clip " << i;
        EXPECT_EQ(r1.clips[i].iterations, r4.clips[i].iterations) << "clip " << i;
    }
}

TEST(BatchScheduler, ResultsOrderedAndAggregated) {
    const auto clips = test_clips(4);
    const std::vector<std::string> names{"a", "b", "c", "d"};

    BatchScheduler scheduler(test_litho_config(), batch_options(2));
    EXPECT_EQ(scheduler.threads(), 2);
    const BatchResult res = scheduler.run_rule(clips, {}, names);

    ASSERT_EQ(res.clips.size(), 4U);
    for (int i = 0; i < 4; ++i) {
        const ClipResult& c = res.clips[static_cast<std::size_t>(i)];
        EXPECT_EQ(c.index, i);
        EXPECT_EQ(c.name, names[static_cast<std::size_t>(i)]);
        EXPECT_GT(c.segments, 0);
        EXPECT_EQ(c.offsets.size(), static_cast<std::size_t>(c.segments));
        EXPECT_TRUE(c.error.empty());
    }
    EXPECT_EQ(res.threads, 2);
    EXPECT_EQ(res.failed, 0);
    EXPECT_GT(res.wall_s, 0.0);
    EXPECT_GT(res.throughput_cps, 0.0);
    EXPECT_GT(res.litho_evaluations, 0);
    EXPECT_GT(res.sum_final_epe, 0.0);
    EXPECT_FALSE(res.summary().empty());
}

TEST(BatchScheduler, FailedJobIsIsolated) {
    const auto clips = test_clips(3);
    BatchOptions opt = batch_options(2);
    const std::uint64_t poison = derive_seed(opt.seed, 1);

    BatchScheduler scheduler(test_litho_config(), opt);
    const BatchResult res = scheduler.run(
        clips, [poison](const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                        const opc::OpcOptions& o, std::uint64_t job_seed) {
            if (job_seed == poison) throw std::runtime_error("injected failure");
            opc::RuleEngine engine;
            return engine.optimize(layout, sim, o);
        });

    ASSERT_EQ(res.clips.size(), 3U);
    EXPECT_EQ(res.failed, 1);
    EXPECT_TRUE(res.clips[0].error.empty());
    EXPECT_EQ(res.clips[1].error, "injected failure");
    EXPECT_TRUE(res.clips[2].error.empty());
    EXPECT_GT(res.clips[0].offsets.size(), 0U);
}

TEST(BatchScheduler, SimulatorsShareOneKernelSet) {
    const litho::LithoConfig cfg = test_litho_config();
    litho::LithoSim a(cfg);
    litho::LithoSim b(cfg);
    // Same immutable kernel objects, not copies: the registry built once.
    EXPECT_EQ(&a.nominal_kernels(), &b.nominal_kernels());

    litho::LithoSim c(a);
    EXPECT_EQ(&a.nominal_kernels(), &c.nominal_kernels());
    EXPECT_EQ(c.evaluate_count(), 0);  // counters are per-instance
}

TEST(BatchScheduler, SharedCamoEngineDeterministicAcrossThreadCounts) {
    const auto clips = test_clips(3);
    core::CamoConfig cfg;  // default small policy; untrained weights are fine
    const core::CamoEngine engine(cfg);

    BatchScheduler one(test_litho_config(), batch_options(1));
    BatchScheduler four(test_litho_config(), batch_options(4));
    const BatchResult r1 = one.run_camo(clips, engine);
    const BatchResult r4 = four.run_camo(clips, engine);

    EXPECT_EQ(r1.failed, 0);
    EXPECT_EQ(r4.failed, 0);
    for (std::size_t i = 0; i < clips.size(); ++i) {
        EXPECT_EQ(r1.clips[i].offsets, r4.clips[i].offsets) << "clip " << i;
    }
}

TEST(BatchScheduler, StochasticCamoUsesPerJobSeeds) {
    const auto clips = test_clips(3);
    core::CamoConfig cfg;
    const core::CamoEngine engine(cfg);

    BatchOptions opt = batch_options(1);
    opt.stochastic = true;
    BatchOptions opt4 = batch_options(4);
    opt4.stochastic = true;

    BatchScheduler one(test_litho_config(), opt);
    BatchScheduler four(test_litho_config(), opt4);
    const BatchResult r1 = one.run_camo(clips, engine);
    const BatchResult r4 = four.run_camo(clips, engine);

    // Sampled actions come from per-job splitmix streams, never from shared
    // engine state: identical at any thread count.
    for (std::size_t i = 0; i < clips.size(); ++i) {
        EXPECT_EQ(r1.clips[i].offsets, r4.clips[i].offsets) << "clip " << i;
    }
}

TEST(BatchScheduler, EmptyBatchSummaryPrintsZerosNotNaN) {
    BatchScheduler scheduler(test_litho_config(), batch_options(2));
    const BatchResult res = scheduler.run_rule({});

    EXPECT_EQ(res.clips.size(), 0U);
    EXPECT_EQ(res.ok(), 0);
    // Every ratio is guarded: an empty (or fully failed) batch reports
    // finite zeros, and the digest never shows "nan" or "inf".
    EXPECT_EQ(res.incremental_hit_rate(), 0.0);
    EXPECT_EQ(res.avg_final_epe(), 0.0);
    EXPECT_EQ(res.avg_pvband_nm2(), 0.0);
    EXPECT_EQ(res.avg_clip_runtime_s(), 0.0);
    EXPECT_EQ(res.avg_worst_window_epe(), 0.0);
    EXPECT_EQ(res.avg_pv_band_exact_nm2(), 0.0);
    EXPECT_TRUE(std::isfinite(res.throughput_cps));
    const std::string digest = res.summary();
    EXPECT_EQ(digest.find("nan"), std::string::npos) << digest;
    EXPECT_EQ(digest.find("inf"), std::string::npos) << digest;

    // Same guards when every clip fails.
    const auto clips = test_clips(2);
    const BatchResult all_failed = scheduler.run(
        clips, [](const geo::SegmentedLayout&, litho::LithoSim&, const opc::OpcOptions&,
                  std::uint64_t) -> opc::EngineResult {
            throw std::runtime_error("boom");
        });
    EXPECT_EQ(all_failed.failed, 2);
    EXPECT_EQ(all_failed.ok(), 0);
    EXPECT_EQ(all_failed.avg_final_epe(), 0.0);
    const std::string failed_digest = all_failed.summary();
    EXPECT_EQ(failed_digest.find("nan"), std::string::npos) << failed_digest;
}

TEST(BatchScheduler, WindowModeEvaluatesEveryCornerDeterministically) {
    const auto clips = test_clips(3);
    BatchOptions opt = batch_options(1);
    opt.window = true;  // empty spec resolves to the standard window
    BatchOptions opt4 = batch_options(4);
    opt4.window = true;

    BatchScheduler one(test_litho_config(), opt);
    BatchScheduler four(test_litho_config(), opt4);
    ASSERT_EQ(one.options().window_spec.corner_count(), 6);

    const BatchResult r1 = one.run_rule(clips);
    const BatchResult r4 = four.run_rule(clips);
    EXPECT_TRUE(r1.window_mode);
    EXPECT_EQ(r1.failed, 0);
    EXPECT_EQ(r4.failed, 0);
    EXPECT_GT(r1.sum_pv_band_exact_nm2, 0.0);

    for (std::size_t i = 0; i < clips.size(); ++i) {
        ASSERT_TRUE(r1.clips[i].window.has_value()) << "clip " << i;
        ASSERT_TRUE(r4.clips[i].window.has_value()) << "clip " << i;
        const litho::WindowMetrics& w1 = *r1.clips[i].window;
        const litho::WindowMetrics& w4 = *r4.clips[i].window;
        ASSERT_EQ(w1.corners.size(), 6U);
        // Per-clip caches are primed per job, so window metrics are
        // bit-identical at any thread count.
        EXPECT_EQ(w1.worst_epe, w4.worst_epe) << "clip " << i;
        EXPECT_EQ(w1.pv_band_exact_nm2, w4.pv_band_exact_nm2) << "clip " << i;
        // The exact band covers at least the two-corner approximation.
        EXPECT_GE(w1.pv_band_exact_nm2, w1.pv_band_two_corner_nm2) << "clip " << i;
        // The worst corner is no better than the nominal one.
        ASSERT_NE(w1.nominal_corner(), nullptr);
        EXPECT_GE(w1.worst_epe, w1.nominal_corner()->metrics.sum_abs_epe) << "clip " << i;
    }
    const std::string digest = r1.summary();
    EXPECT_NE(digest.find("window:"), std::string::npos) << digest;
}

TEST(BatchScheduler, WorstCornerObjectiveBitIdenticalAcrossThreadCounts) {
    // Window reward mode rides evaluate_window_incremental inside the engine
    // loop; per-clip caches are still primed per job, so results remain
    // bit-identical at any thread count.
    const auto clips = test_clips(4);
    BatchOptions opt = batch_options(1);
    opt.opc.objective = rl::RewardMode::kWorstCorner;
    BatchOptions opt4 = batch_options(4);
    opt4.opc.objective = rl::RewardMode::kWorstCorner;

    BatchScheduler one(test_litho_config(), opt);
    BatchScheduler four(test_litho_config(), opt4);
    // The objective's window resolved to the standard spec up front.
    ASSERT_EQ(one.options().opc.window.corner_count(), 6);

    const BatchResult r1 = one.run_rule(clips);
    const BatchResult r4 = four.run_rule(clips);
    EXPECT_EQ(r1.failed, 0);
    EXPECT_EQ(r4.failed, 0);
    EXPECT_TRUE(r1.window_mode);  // reward mode implies window aggregates
    EXPECT_EQ(r1.reward_mode, rl::RewardMode::kWorstCorner);

    for (std::size_t i = 0; i < clips.size(); ++i) {
        EXPECT_EQ(r1.clips[i].offsets, r4.clips[i].offsets) << "clip " << i;
        EXPECT_EQ(r1.clips[i].final_epe, r4.clips[i].final_epe) << "clip " << i;
        // The engines returned their in-loop final sweep: populated without
        // the batch window flag, bit-identical across thread counts.
        ASSERT_TRUE(r1.clips[i].window.has_value()) << "clip " << i;
        ASSERT_TRUE(r4.clips[i].window.has_value()) << "clip " << i;
        EXPECT_EQ(r1.clips[i].window->worst_epe, r4.clips[i].window->worst_epe)
            << "clip " << i;
        EXPECT_EQ(r1.clips[i].window->pv_band_exact_nm2, r4.clips[i].window->pv_band_exact_nm2)
            << "clip " << i;
        // final_epe reports the objective: the worst corner's sum |EPE|.
        EXPECT_EQ(r1.clips[i].final_epe, r1.clips[i].window->worst_epe) << "clip " << i;
    }
    const std::string digest = r1.summary();
    EXPECT_NE(digest.find("worst-corner"), std::string::npos) << digest;
    EXPECT_NE(digest.find("window:"), std::string::npos) << digest;
}

TEST(BatchScheduler, WorstCornerPhase2TraceIsByteIdentical) {
    // Golden determinism for window-aware training: a short fixed-seed
    // phase-2 run in worst-corner mode reproduces its phase2_reward trace
    // exactly, independent of how many batch workers previously shared the
    // process-wide kernel registry (training itself is single-threaded by
    // design).
    const auto clips = test_clips(2);
    core::CamoConfig cfg;
    cfg.phase1_epochs = 1;
    cfg.teacher_steps = 2;
    cfg.phase2_episodes = 2;

    opc::OpcOptions opt = test_opc_options();
    opt.max_iterations = 2;
    opt.objective = rl::RewardMode::kWorstCorner;

    const auto train_once = [&](int scheduler_threads) {
        // A scheduler with its own thread count runs a batch first, sharing
        // the kernel registry with the training simulator.
        BatchOptions bopt = batch_options(scheduler_threads);
        bopt.opc.objective = rl::RewardMode::kWorstCorner;
        BatchScheduler scheduler(test_litho_config(), bopt);
        (void)scheduler.run_rule(clips);

        core::CamoEngine engine(cfg);
        litho::LithoSim sim(test_litho_config());
        return engine.train(clips, sim, opt);
    };

    const core::TrainStats a = train_once(1);
    const core::TrainStats b = train_once(4);
    ASSERT_EQ(a.phase2_reward.size(), 2U);
    ASSERT_EQ(a.phase2_reward.size(), b.phase2_reward.size());
    for (std::size_t i = 0; i < a.phase2_reward.size(); ++i) {
        const double ra = a.phase2_reward[i];
        const double rb = b.phase2_reward[i];
        EXPECT_EQ(0, std::memcmp(&ra, &rb, sizeof ra)) << "episode " << i;
        EXPECT_TRUE(std::isfinite(ra)) << "episode " << i;
    }
    ASSERT_EQ(a.phase1_loss.size(), b.phase1_loss.size());
    for (std::size_t i = 0; i < a.phase1_loss.size(); ++i) {
        EXPECT_EQ(a.phase1_loss[i], b.phase1_loss[i]) << "epoch " << i;
    }
}

// ------------------------------------------------------- streaming core

TEST(BoundedQueue, ZeroCapacityRejectedAtConstruction) {
    EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
    BoundedQueue<int> q(1);
    EXPECT_EQ(q.capacity(), 1U);
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    q.close();
    EXPECT_FALSE(q.push(3));  // refused after close
    EXPECT_EQ(q.pop(), std::optional<int>(1));
    EXPECT_EQ(q.pop(), std::optional<int>(2));
    EXPECT_EQ(q.pop(), std::nullopt);  // drained
}

TEST(BoundedQueue, AbortDiscardsBufferedItems) {
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    q.abort();
    EXPECT_EQ(q.pop(), std::nullopt);  // buffered item discarded
    EXPECT_FALSE(q.push(2));
}

TEST(BatchScheduler, StreamingMatchesBarrierBitwise) {
    // The refactor gate: run() is now a wrapper over run_streaming, and the
    // raw streaming path must reproduce the barrier results bit-for-bit at
    // any worker count and any queue capacity — delivery order is the only
    // thing allowed to vary.
    const auto clips = test_clips(5);
    BatchScheduler barrier_sched(test_litho_config(), batch_options(2));
    const BatchResult barrier = barrier_sched.run_rule(clips);
    ASSERT_EQ(barrier.failed, 0);

    const ClipOptimizer rule = [](const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                                  const opc::OpcOptions& o, std::uint64_t) {
        opc::RuleEngine engine;
        return engine.optimize(layout, sim, o);
    };

    for (const int threads : {1, 2, 8}) {
        for (const int capacity : {1, 2, 64}) {
            BatchScheduler sched(test_litho_config(), batch_options(threads));
            std::vector<ClipResult> got(clips.size());
            std::vector<int> deliveries(clips.size(), 0);
            StreamOptions stream;
            stream.queue_capacity = capacity;
            const StreamStats stats = sched.run_streaming(
                clips, rule,
                [&](ClipResult&& r) {
                    ASSERT_GE(r.index, 0);
                    ASSERT_LT(r.index, static_cast<int>(clips.size()));
                    ++deliveries[static_cast<std::size_t>(r.index)];
                    got[static_cast<std::size_t>(r.index)] = std::move(r);
                },
                {}, stream);

            EXPECT_EQ(stats.delivered, static_cast<int>(clips.size()));
            EXPECT_EQ(stats.failed, 0);
            EXPECT_GT(stats.litho_evaluations, 0);
            for (std::size_t i = 0; i < clips.size(); ++i) {
                EXPECT_EQ(deliveries[i], 1) << "clip " << i << " delivered more than once";
                EXPECT_EQ(got[i].offsets, barrier.clips[i].offsets)
                    << "threads " << threads << " capacity " << capacity << " clip " << i;
                EXPECT_EQ(got[i].final_epe, barrier.clips[i].final_epe) << "clip " << i;
                EXPECT_EQ(got[i].pvband_nm2, barrier.clips[i].pvband_nm2) << "clip " << i;
            }
        }
    }
}

TEST(BatchScheduler, StreamingEmptyClipVector) {
    BatchScheduler sched(test_litho_config(), batch_options(2));
    int calls = 0;
    const StreamStats stats = sched.run_streaming(
        {},
        [](const geo::SegmentedLayout& layout, litho::LithoSim& sim, const opc::OpcOptions& o,
           std::uint64_t) {
            opc::RuleEngine engine;
            return engine.optimize(layout, sim, o);
        },
        [&calls](ClipResult&&) { ++calls; });
    EXPECT_EQ(calls, 0);  // sink never invoked
    EXPECT_EQ(stats.delivered, 0);
    EXPECT_EQ(stats.failed, 0);
    EXPECT_EQ(stats.litho_evaluations, 0);
}

TEST(BatchScheduler, StreamingZeroCapacityQueueRejected) {
    const auto clips = test_clips(1);
    BatchScheduler sched(test_litho_config(), batch_options(1));
    const ClipOptimizer rule = [](const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                                  const opc::OpcOptions& o, std::uint64_t) {
        opc::RuleEngine engine;
        return engine.optimize(layout, sim, o);
    };
    for (const int capacity : {0, -3}) {
        StreamOptions stream;
        stream.queue_capacity = capacity;
        EXPECT_THROW(sched.run_streaming(clips, rule, [](ClipResult&&) {}, {}, stream),
                     std::invalid_argument)
            << "capacity " << capacity;
    }
}

TEST(BatchScheduler, StreamingThrowingSinkPropagatesAndUnwindsCleanly) {
    const auto clips = test_clips(6);
    BatchScheduler sched(test_litho_config(), batch_options(2));
    const ClipOptimizer rule = [](const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                                  const opc::OpcOptions& o, std::uint64_t) {
        opc::RuleEngine engine;
        return engine.optimize(layout, sim, o);
    };

    // Tight queue so workers are actually blocked in push() when the sink
    // dies — the abort path must release them without deadlocking.
    StreamOptions stream;
    stream.queue_capacity = 1;
    int seen = 0;
    EXPECT_THROW(sched.run_streaming(
                     clips, rule,
                     [&seen](ClipResult&&) {
                         if (++seen == 2) throw std::runtime_error("sink died");
                     },
                     {}, stream),
                 std::runtime_error);
    EXPECT_EQ(seen, 2);

    // The scheduler (pool, simulators) survives and serves the next run.
    const BatchResult after = sched.run_rule(clips);
    EXPECT_EQ(after.failed, 0);
    EXPECT_EQ(after.clips.size(), clips.size());
}

TEST(BatchScheduler, StreamingDeliversFailedJobsWithError) {
    const auto clips = test_clips(3);
    BatchOptions opt = batch_options(2);
    const std::uint64_t poison = derive_seed(opt.seed, 1);
    BatchScheduler sched(test_litho_config(), opt);

    std::vector<ClipResult> got(clips.size());
    const StreamStats stats = sched.run_streaming(
        clips,
        [poison](const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                 const opc::OpcOptions& o, std::uint64_t job_seed) {
            if (job_seed == poison) throw std::runtime_error("injected failure");
            opc::RuleEngine engine;
            return engine.optimize(layout, sim, o);
        },
        [&got](ClipResult&& r) { got[static_cast<std::size_t>(r.index)] = std::move(r); });

    EXPECT_EQ(stats.delivered, 3);
    EXPECT_EQ(stats.failed, 1);
    EXPECT_TRUE(got[0].error.empty());
    EXPECT_EQ(got[1].error, "injected failure");
    EXPECT_TRUE(got[2].error.empty());
    EXPECT_GT(got[0].offsets.size(), 0U);
}

TEST(SplitMix, DerivedSeedsAreStableAndDistinct) {
    EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
    EXPECT_NE(derive_seed(42, 0), derive_seed(42, 1));
    EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));
    // Used by the batch clip generator: any sub-range regenerates clips
    // identical to the full sequential run.
    const auto all = layout::via_batch_set(5, 4);
    const auto again = layout::via_batch_set(5, 4);
    ASSERT_EQ(all.size(), 4U);
    for (std::size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(all[i].targets.size(), again[i].targets.size());
    }
}

}  // namespace
}  // namespace camo::runtime
