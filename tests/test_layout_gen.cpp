#include <gtest/gtest.h>

#include "layout/metal_gen.hpp"
#include "layout/via_gen.hpp"

namespace camo::layout {
namespace {

TEST(ViaGen, CountAndSize) {
    Rng rng(1);
    const auto vias = generate_via_clip(4, rng);
    ASSERT_EQ(vias.size(), 4U);
    for (const auto& v : vias) {
        const geo::Rect bb = v.bbox();
        EXPECT_EQ(bb.width(), 70);
        EXPECT_EQ(bb.height(), 70);
    }
}

TEST(ViaGen, RespectsMarginAndSpacing) {
    ViaGenOptions opt;
    Rng rng(7);
    const auto vias = generate_via_clip(6, rng, opt);
    for (std::size_t i = 0; i < vias.size(); ++i) {
        const geo::Rect a = vias[i].bbox();
        EXPECT_GE(a.xlo, opt.margin_nm);
        EXPECT_GE(a.ylo, opt.margin_nm);
        EXPECT_LE(a.xhi, opt.clip_nm - opt.margin_nm);
        EXPECT_LE(a.yhi, opt.clip_nm - opt.margin_nm);
        for (std::size_t j = i + 1; j < vias.size(); ++j) {
            EXPECT_GE(geo::rect_gap(a, vias[j].bbox()), opt.min_spacing_nm);
        }
    }
}

TEST(ViaGen, TrainingSetMatchesPaper) {
    const auto train = via_training_set(42);
    ASSERT_EQ(train.size(), 11U);  // paper: 11 clips, 2-5 vias
    for (const auto& clip : train) {
        EXPECT_GE(clip.targets.size(), 2U);
        EXPECT_LE(clip.targets.size(), 5U);
    }
}

TEST(ViaGen, TestSetMatchesPaperCounts) {
    const auto test = via_test_set(42);
    ASSERT_EQ(test.size(), 13U);
    const int expected[] = {2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 6, 6, 6};
    for (int i = 0; i < 13; ++i) {
        EXPECT_EQ(static_cast<int>(test[static_cast<std::size_t>(i)].targets.size()), expected[i])
            << test[static_cast<std::size_t>(i)].name;
        EXPECT_EQ(test[static_cast<std::size_t>(i)].name, "V" + std::to_string(i + 1));
    }
}

TEST(ViaGen, DeterministicBySeed) {
    const auto a = via_test_set(42);
    const auto b = via_test_set(42);
    const auto c = via_test_set(43);
    EXPECT_EQ(a[0].targets[0], b[0].targets[0]);
    EXPECT_FALSE(a[0].targets[0] == c[0].targets[0]);
}

TEST(ViaGen, ImpossiblePlacementThrows) {
    ViaGenOptions opt;
    opt.min_spacing_nm = 3000;  // cannot fit two vias
    Rng rng(1);
    EXPECT_THROW(generate_via_clip(5, rng, opt), std::runtime_error);
}

struct QuotaCase {
    int quota;
};

class MetalQuotaSweep : public ::testing::TestWithParam<QuotaCase> {};

TEST_P(MetalQuotaSweep, ExactMeasurePointCount) {
    Rng rng(11);
    MetalGenOptions opt;
    const auto polys = generate_metal_clip(GetParam().quota, rng, opt);
    EXPECT_EQ(count_measure_points(polys, opt.measure_pitch_nm), GetParam().quota);
}

INSTANTIATE_TEST_SUITE_P(Quotas, MetalQuotaSweep,
                         ::testing::Values(QuotaCase{24}, QuotaCase{64}, QuotaCase{88},
                                           QuotaCase{106}, QuotaCase{120}));

TEST(MetalGen, RegularClipExactCount) {
    Rng rng(3);
    MetalGenOptions opt;
    const auto polys = generate_regular_metal_clip(24, rng, opt);
    EXPECT_EQ(count_measure_points(polys, opt.measure_pitch_nm), 24);
    // Regular pattern: all wires share x-start and width.
    for (std::size_t i = 1; i < polys.size(); ++i) {
        EXPECT_EQ(polys[i].bbox().xlo, polys[0].bbox().xlo);
        EXPECT_EQ(polys[i].bbox().height(), polys[0].bbox().height());
    }
}

TEST(MetalGen, TestSetMatchesPaperCounts) {
    const auto set = metal_test_set(42);
    ASSERT_EQ(set.size(), 10U);
    const int expected[] = {64, 84, 88, 100, 106, 112, 116, 24, 72, 120};
    MetalGenOptions opt;
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(count_measure_points(set[static_cast<std::size_t>(i)].targets,
                                       opt.measure_pitch_nm),
                  expected[i])
            << set[static_cast<std::size_t>(i)].name;
    }
}

TEST(MetalGen, WiresInsideClipWithMargins) {
    const auto set = metal_test_set(42);
    MetalGenOptions opt;
    for (const auto& clip : set) {
        for (const auto& w : clip.targets) {
            const geo::Rect bb = w.bbox();
            EXPECT_GE(bb.xlo, opt.margin_nm);
            EXPECT_LE(bb.xhi, opt.clip_nm - opt.margin_nm);
            EXPECT_GE(bb.ylo, opt.margin_nm);
            EXPECT_LE(bb.yhi, opt.clip_nm - opt.margin_nm);
        }
    }
}

TEST(MetalGen, WiresDoNotOverlap) {
    const auto set = metal_test_set(42);
    for (const auto& clip : set) {
        for (std::size_t i = 0; i < clip.targets.size(); ++i) {
            for (std::size_t j = i + 1; j < clip.targets.size(); ++j) {
                EXPECT_FALSE(clip.targets[i].bbox().intersects(clip.targets[j].bbox()))
                    << clip.name;
            }
        }
    }
}

TEST(MetalGen, OddQuotaRejected) {
    Rng rng(1);
    EXPECT_THROW(generate_metal_clip(25, rng), std::invalid_argument);
    EXPECT_THROW(generate_regular_metal_clip(7, rng), std::invalid_argument);
}

TEST(MetalGen, TrainingSetDisjointFromTest) {
    const auto train = metal_training_set(42, 6);
    EXPECT_EQ(train.size(), 6U);
    MetalGenOptions opt;
    for (const auto& clip : train) {
        EXPECT_GT(count_measure_points(clip.targets, opt.measure_pitch_nm), 0);
    }
}

}  // namespace
}  // namespace camo::layout
