#include <gtest/gtest.h>

#include <cmath>

#include "litho/linalg.hpp"
#include "litho/optics.hpp"

namespace camo::litho {
namespace {

LithoConfig small_cfg() {
    LithoConfig cfg;
    cfg.grid = 128;
    cfg.pixel_nm = 8.0;
    cfg.cache_dir = "";
    return cfg;
}

TEST(Optics, SourcePointsLieInAnnulus) {
    const LithoConfig cfg = small_cfg();
    const auto pts = sample_annular_source(cfg);
    ASSERT_GT(pts.size(), 10U);

    const double na_freq = cfg.na / cfg.wavelength_nm;
    const double step = 1.0 / (cfg.grid * cfg.pixel_nm);
    for (const SourcePoint& p : pts) {
        const double r = std::hypot(p.f.kx * step, p.f.ky * step);
        EXPECT_LE(r, cfg.sigma_out * na_freq * 1.0001);
        EXPECT_GE(r, cfg.sigma_in * na_freq * 0.9999);
    }
}

TEST(Optics, SourceWeightsNormalized) {
    const auto pts = sample_annular_source(small_cfg());
    double total = 0.0;
    for (const SourcePoint& p : pts) total += p.weight;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Optics, PupilCutsOffAtNa) {
    const LithoConfig cfg = small_cfg();
    const double step = 1.0 / (cfg.grid * cfg.pixel_nm);
    const int pupil_rad = static_cast<int>(cfg.na / cfg.wavelength_nm / step);
    EXPECT_NE(pupil_value(cfg, {0, 0}, 0.0), std::complex<double>(0.0, 0.0));
    EXPECT_NE(pupil_value(cfg, {pupil_rad - 1, 0}, 0.0), std::complex<double>(0.0, 0.0));
    EXPECT_EQ(pupil_value(cfg, {pupil_rad + 2, 0}, 0.0), std::complex<double>(0.0, 0.0));
}

TEST(Optics, DefocusIsPurePhase) {
    const LithoConfig cfg = small_cfg();
    const auto v = pupil_value(cfg, {3, 4}, 50.0);
    EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
    // Nonzero frequency with defocus must acquire a nonzero phase.
    EXPECT_GT(std::abs(std::arg(v)), 1e-6);
    // DC never acquires defocus phase.
    EXPECT_NEAR(std::arg(pupil_value(cfg, {0, 0}, 50.0)), 0.0, 1e-12);
}

TEST(Optics, SupportRadiusCoversPupilPlusSource) {
    const LithoConfig cfg = small_cfg();
    const int r = tcc_support_radius(cfg);
    const auto freqs = tcc_support_freqs(cfg);
    EXPECT_GT(r, 0);
    // Count must be close to the disk area pi r^2.
    const double expected = std::numbers::pi * r * r;
    EXPECT_NEAR(static_cast<double>(freqs.size()), expected, expected * 0.15);
}

TEST(Linalg, JacobiDiagonalizesKnownMatrix) {
    // [[2,1],[1,2]] has eigenvalues 1 and 3.
    std::vector<double> a = {2.0, 1.0, 1.0, 2.0};
    std::vector<double> v;
    auto eig = jacobi_eig_symmetric(a, 2, v);
    std::sort(eig.begin(), eig.end());
    EXPECT_NEAR(eig[0], 1.0, 1e-10);
    EXPECT_NEAR(eig[1], 3.0, 1e-10);
}

TEST(Linalg, JacobiEigenvectorsReconstruct) {
    const std::vector<double> a = {4.0, 1.0, 0.5, 1.0, 3.0, 0.25, 0.5, 0.25, 2.0};
    std::vector<double> v;
    const auto eig = jacobi_eig_symmetric(a, 3, v);
    // Check A v_k = lambda_k v_k for each eigenpair.
    for (int k = 0; k < 3; ++k) {
        for (int r = 0; r < 3; ++r) {
            double av = 0.0;
            for (int c = 0; c < 3; ++c) av += a[static_cast<std::size_t>(r) * 3 + c] * v[static_cast<std::size_t>(c) * 3 + k];
            EXPECT_NEAR(av, eig[static_cast<std::size_t>(k)] * v[static_cast<std::size_t>(r) * 3 + k], 1e-9);
        }
    }
}

TEST(Linalg, JacobiRejectsBadDims) {
    std::vector<double> a = {1.0, 2.0};
    std::vector<double> v;
    EXPECT_THROW(jacobi_eig_symmetric(a, 2, v), std::invalid_argument);
}

}  // namespace
}  // namespace camo::litho
