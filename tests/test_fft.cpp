#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "litho/fft.hpp"

namespace camo::litho {
namespace {

std::vector<Complex> random_signal(int n, Rng& rng) {
    std::vector<Complex> v(static_cast<std::size_t>(n));
    for (auto& c : v) {
        c = Complex(static_cast<float>(rng.uniform(-1, 1)), static_cast<float>(rng.uniform(-1, 1)));
    }
    return v;
}

TEST(Fft, IsPow2) {
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(1024));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(3));
    EXPECT_FALSE(is_pow2(-4));
}

TEST(Fft, RejectsNonPowerOfTwo) {
    std::vector<Complex> v(6);
    EXPECT_THROW(fft_forward(v), std::invalid_argument);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
    std::vector<Complex> v(16);
    v[0] = Complex(1.0F, 0.0F);
    fft_forward(v);
    for (const Complex& c : v) {
        EXPECT_NEAR(c.real(), 1.0F, 1e-5F);
        EXPECT_NEAR(c.imag(), 0.0F, 1e-5F);
    }
}

TEST(Fft, SingleToneLandsOnOneBin) {
    const int n = 32;
    const int tone = 5;
    std::vector<Complex> v(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const double ang = 2.0 * std::numbers::pi * tone * i / n;
        v[static_cast<std::size_t>(i)] =
            Complex(static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang)));
    }
    fft_forward(v);
    for (int k = 0; k < n; ++k) {
        const float mag = std::abs(v[static_cast<std::size_t>(k)]);
        if (k == tone) {
            EXPECT_NEAR(mag, static_cast<float>(n), 1e-3F);
        } else {
            EXPECT_NEAR(mag, 0.0F, 1e-3F);
        }
    }
}

class FftRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(FftRoundtrip, InverseRecoversInput) {
    const int n = GetParam();
    Rng rng(7);
    const auto orig = random_signal(n, rng);
    auto v = orig;
    fft_forward(v);
    fft_inverse(v);
    for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(v[static_cast<std::size_t>(i)].real(), orig[static_cast<std::size_t>(i)].real(), 1e-4F);
        EXPECT_NEAR(v[static_cast<std::size_t>(i)].imag(), orig[static_cast<std::size_t>(i)].imag(), 1e-4F);
    }
}

TEST_P(FftRoundtrip, ParsevalHolds) {
    const int n = GetParam();
    Rng rng(11);
    auto v = random_signal(n, rng);
    double time_energy = 0.0;
    for (const Complex& c : v) time_energy += std::norm(c);
    fft_forward(v);
    double freq_energy = 0.0;
    for (const Complex& c : v) freq_energy += std::norm(c);
    EXPECT_NEAR(freq_energy / n, time_energy, time_energy * 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundtrip, ::testing::Values(2, 4, 8, 16, 64, 256, 1024));

TEST(Fft, Linearity) {
    const int n = 64;
    Rng rng(3);
    const auto a = random_signal(n, rng);
    const auto b = random_signal(n, rng);
    std::vector<Complex> sum(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        sum[static_cast<std::size_t>(i)] =
            2.0F * a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)];
    }
    auto fa = a;
    auto fb = b;
    auto fs = sum;
    fft_forward(fa);
    fft_forward(fb);
    fft_forward(fs);
    for (int i = 0; i < n; ++i) {
        const Complex expect = 2.0F * fa[static_cast<std::size_t>(i)] + fb[static_cast<std::size_t>(i)];
        EXPECT_NEAR(std::abs(fs[static_cast<std::size_t>(i)] - expect), 0.0F, 2e-3F);
    }
}

TEST(Fft2d, RoundtripAndParseval) {
    const int n = 32;
    Rng rng(5);
    auto grid = random_signal(n * n, rng);
    const auto orig = grid;
    double te = 0.0;
    for (const Complex& c : grid) te += std::norm(c);

    fft2d_forward(grid, n);
    double fe = 0.0;
    for (const Complex& c : grid) fe += std::norm(c);
    EXPECT_NEAR(fe / (static_cast<double>(n) * n), te, te * 1e-4);

    fft2d_inverse(grid, n);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_NEAR(std::abs(grid[i] - orig[i]), 0.0F, 1e-3F);
    }
}

TEST(Fft2d, RowSparseMatchesDense) {
    const int n = 32;
    Rng rng(9);
    std::vector<Complex> grid(static_cast<std::size_t>(n) * n);
    std::vector<std::uint8_t> row_mask(static_cast<std::size_t>(n), 0);
    // Populate only a few rows (like a compact kernel support).
    for (int r : {0, 1, 2, 30, 31}) {
        row_mask[static_cast<std::size_t>(r)] = 1;
        for (int c = 0; c < n; ++c) {
            grid[static_cast<std::size_t>(r) * n + c] = Complex(
                static_cast<float>(rng.uniform(-1, 1)), static_cast<float>(rng.uniform(-1, 1)));
        }
    }
    auto dense = grid;
    fft2d_inverse(dense, n);
    auto sparse = grid;
    fft2d_inverse_rowsparse(sparse, n, row_mask);
    for (std::size_t i = 0; i < dense.size(); ++i) {
        EXPECT_NEAR(std::abs(dense[i] - sparse[i]), 0.0F, 1e-5F);
    }
}

TEST(Fft2d, DcComponentIsMean) {
    const int n = 16;
    std::vector<Complex> grid(static_cast<std::size_t>(n) * n, Complex(0.25F, 0.0F));
    fft2d_forward(grid, n);
    EXPECT_NEAR(grid[0].real(), 0.25F * n * n, 1e-3F);
    for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_NEAR(std::abs(grid[i]), 0.0F, 1e-3F);
}

}  // namespace
}  // namespace camo::litho
