// Bitwise equivalence / determinism suite for the data-parallel training
// runtime: teacher collection, phase-1 minibatch gradient reduction and
// phase-2 lockstep REINFORCE must produce byte-identical traces and weights
// at any train_workers value, degrade gracefully on degenerate inputs, and
// keep the weight cache compatible across worker counts.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/camo.hpp"
#include "core/experiment.hpp"
#include "layout/metal_gen.hpp"
#include "layout/via_gen.hpp"
#include "litho/simulator.hpp"

namespace camo::core {
namespace {

litho::LithoConfig test_litho_config() {
    litho::LithoConfig cfg;
    cfg.grid = 256;
    cfg.pixel_nm = 4.0;
    cfg.kernels_nominal = 6;
    cfg.kernels_defocus = 5;
    cfg.cache_dir = "";  // tests never touch the on-disk cache
    return cfg;
}

// The via3 / metal24 fixtures of the process-window golden suite.
geo::SegmentedLayout via3_layout() {
    Rng rng(11);
    layout::ViaGenOptions opt;
    opt.clip_nm = 1000;
    opt.margin_nm = 250;
    opt.min_spacing_nm = 200;
    return geo::SegmentedLayout(layout::generate_via_clip(3, rng, opt),
                                {geo::FragmentStyle::kVia, 60}, {}, opt.clip_nm);
}

geo::SegmentedLayout metal24_layout() {
    Rng rng(12);
    layout::MetalGenOptions opt;
    opt.clip_nm = 1000;
    opt.margin_nm = 120;
    return geo::SegmentedLayout(layout::generate_metal_clip(24, rng, opt),
                                {geo::FragmentStyle::kMetal, 60}, {}, opt.clip_nm);
}

std::vector<geo::SegmentedLayout> small_via_clips(int count) {
    layout::ViaGenOptions gen;
    gen.clip_nm = 1000;
    gen.margin_nm = 200;
    gen.min_spacing_nm = 120;
    return fragment_via_clips(layout::via_batch_set(7, count, gen));
}

CamoConfig tiny_config() {
    CamoConfig cfg;
    cfg.policy.squish_size = 16;
    cfg.policy.embed_dim = 32;
    cfg.policy.rnn_hidden = 16;
    cfg.policy.rnn_layers = 2;
    cfg.policy.conv_base = 4;
    cfg.squish.size = 16;
    cfg.squish.window_nm = 500;
    cfg.phase1_epochs = 2;
    cfg.phase1_batch = 3;
    cfg.teacher_steps = 2;
    cfg.teacher_biases = {3, 0};
    cfg.phase2_episodes = 2;
    cfg.seed = 5;
    return cfg;
}

opc::OpcOptions short_opc_options(int bias = 3) {
    opc::OpcOptions opt;
    opt.max_iterations = 2;
    opt.initial_bias_nm = bias;
    return opt;
}

bool same_tensor_bytes(const nn::Tensor& a, const nn::Tensor& b) {
    return a.shape() == b.shape() &&
           std::memcmp(a.data().data(), b.data().data(),
                       a.numel() * sizeof(float)) == 0;
}

bool same_double_bits(const std::vector<double>& a, const std::vector<double>& b) {
    return a.size() == b.size() &&
           (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<char> file_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

// Snapshot of all parameter value bytes, for before/after comparisons.
std::vector<nn::Tensor> weight_snapshot(CamoEngine& engine) {
    std::vector<nn::Tensor> out;
    for (nn::Parameter* p : engine.policy().params()) out.push_back(p->value);
    return out;
}

bool same_weights(CamoEngine& engine, const std::vector<nn::Tensor>& snapshot) {
    const auto params = engine.policy().params();
    if (params.size() != snapshot.size()) return false;
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (!same_tensor_bytes(params[i]->value, snapshot[i])) return false;
    }
    return true;
}

TEST(TrainingParallel, TeacherCollectionBitIdenticalAcrossWorkerCounts) {
    const auto clips = small_via_clips(3);
    litho::LithoSim sim(test_litho_config());
    const opc::OpcOptions opt = short_opc_options();

    CamoConfig cfg = tiny_config();
    cfg.train_workers = 1;
    CamoEngine serial(cfg);
    const Phase1Dataset ref = serial.collect_teacher_data(clips, sim, opt);

    // Canonical (clip, bias, step) gathering: clip-major, bias-minor
    // trajectories with provenance set, teacher_steps samples per job.
    ASSERT_EQ(ref.trajectories.size(), clips.size() * cfg.teacher_biases.size());
    for (std::size_t j = 0; j < ref.trajectories.size(); ++j) {
        const rl::Trajectory& traj = ref.trajectories[j];
        EXPECT_EQ(traj.clip_index, static_cast<int>(j / cfg.teacher_biases.size()));
        EXPECT_EQ(traj.initial_bias_nm,
                  cfg.teacher_biases[j % cfg.teacher_biases.size()]);
        EXPECT_EQ(traj.steps.size(), static_cast<std::size_t>(cfg.teacher_steps));
    }
    ASSERT_EQ(ref.samples.size(),
              ref.trajectories.size() * static_cast<std::size_t>(cfg.teacher_steps));

    for (int workers : {2, 8}) {
        cfg.train_workers = workers;
        CamoEngine parallel(cfg);
        litho::LithoSim par_sim(test_litho_config());
        const Phase1Dataset got = parallel.collect_teacher_data(clips, par_sim, opt);

        ASSERT_EQ(got.samples.size(), ref.samples.size()) << workers << " workers";
        for (std::size_t s = 0; s < ref.samples.size(); ++s) {
            EXPECT_EQ(got.samples[s].clip, ref.samples[s].clip) << "sample " << s;
            EXPECT_EQ(got.samples[s].actions, ref.samples[s].actions) << "sample " << s;
            ASSERT_EQ(got.samples[s].features.size(), ref.samples[s].features.size());
            for (std::size_t f = 0; f < ref.samples[s].features.size(); ++f) {
                EXPECT_TRUE(same_tensor_bytes(got.samples[s].features[f],
                                              ref.samples[s].features[f]))
                    << "sample " << s << " feature " << f << " at " << workers << " workers";
            }
        }
        EXPECT_EQ(got.action_weight, ref.action_weight);
        ASSERT_EQ(got.trajectories.size(), ref.trajectories.size());
        for (std::size_t j = 0; j < ref.trajectories.size(); ++j) {
            EXPECT_EQ(got.trajectories[j].clip_index, ref.trajectories[j].clip_index);
            EXPECT_EQ(got.trajectories[j].initial_bias_nm,
                      ref.trajectories[j].initial_bias_nm);
            EXPECT_EQ(0, std::memcmp(&got.trajectories[j].final_sum_abs_epe,
                                     &ref.trajectories[j].final_sum_abs_epe,
                                     sizeof(double)));
        }
    }
}

// The acceptance property: phase1_loss / phase2_reward traces and the
// serialized weight bytes are identical for train_workers in {1, 2, 8} on
// the via3 and metal24 fixtures.
TEST(TrainingParallel, TracesAndWeightBytesIdenticalAcrossWorkerCounts) {
    struct Fixture {
        const char* name;
        std::vector<geo::SegmentedLayout> clips;
        int bias;
    };
    const Fixture fixtures[] = {{"via3", {via3_layout()}, 3},
                                {"metal24", {metal24_layout()}, 0}};

    for (const Fixture& f : fixtures) {
        CamoConfig base = tiny_config();
        base.phase1_epochs = 1;
        base.phase2_episodes = 1;
        const opc::OpcOptions opt = short_opc_options(f.bias);

        TrainStats ref_stats;
        std::vector<char> ref_bytes;
        for (int workers : {1, 2, 8}) {
            CamoConfig cfg = base;
            cfg.train_workers = workers;
            CamoEngine engine(cfg);
            litho::LithoSim sim(test_litho_config());
            const TrainStats stats = engine.train(f.clips, sim, opt);

            const std::string path = testing::TempDir() + "train_parallel_" + f.name + "_" +
                                     std::to_string(workers) + ".bin";
            engine.save_weights(path);
            const std::vector<char> bytes = file_bytes(path);
            std::remove(path.c_str());
            ASSERT_FALSE(bytes.empty()) << f.name;

            for (double v : stats.phase1_loss) EXPECT_TRUE(std::isfinite(v)) << f.name;
            for (double v : stats.phase2_reward) EXPECT_TRUE(std::isfinite(v)) << f.name;

            if (workers == 1) {
                ref_stats = stats;
                ref_bytes = bytes;
                continue;
            }
            EXPECT_TRUE(same_double_bits(stats.phase1_loss, ref_stats.phase1_loss))
                << f.name << " phase1 trace diverged at " << workers << " workers";
            EXPECT_TRUE(same_double_bits(stats.phase2_reward, ref_stats.phase2_reward))
                << f.name << " phase2 trace diverged at " << workers << " workers";
            EXPECT_EQ(bytes, ref_bytes)
                << f.name << " weight bytes diverged at " << workers << " workers";
        }
    }
}

// Serial single-worker accumulation and the parallel per-sample-buffer
// reduction must agree bit for bit on one fixed minibatch (whole-epoch
// batch, one optimizer step).
TEST(TrainingParallel, SerialAndReducedGradientsGiveIdenticalStep) {
    const auto clips = small_via_clips(2);
    litho::LithoSim sim(test_litho_config());
    const opc::OpcOptions opt = short_opc_options();

    CamoConfig cfg = tiny_config();
    cfg.phase1_batch = 0;  // one whole-epoch minibatch -> exactly one step

    cfg.train_workers = 1;
    CamoEngine serial(cfg);
    cfg.train_workers = 4;
    CamoEngine parallel(cfg);

    const Phase1Dataset data = serial.collect_teacher_data(clips, sim, opt);
    ASSERT_GT(data.samples.size(), 1U);

    const double nll_serial = serial.run_phase1_epoch(data);
    const double nll_parallel = parallel.run_phase1_epoch(data);
    EXPECT_EQ(0, std::memcmp(&nll_serial, &nll_parallel, sizeof(double)));

    const auto ps = serial.policy().params();
    const auto pp = parallel.policy().params();
    ASSERT_EQ(ps.size(), pp.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
        EXPECT_TRUE(same_tensor_bytes(ps[i]->value, pp[i]->value)) << "param " << i;
    }
}

// Fuzz the shape space: worker counts (including more workers than jobs),
// clip counts (including 0 and 1) and batch sizes (per-sample, odd,
// whole-epoch) all reproduce the single-worker trace and weights.
TEST(TrainingParallel, FuzzedWorkerClipAndBatchCounts) {
    litho::LithoSim sim(test_litho_config());

    for (int clip_count : {0, 1, 2}) {
        const auto clips = small_via_clips(clip_count);
        for (int batch : {1, 0}) {
            CamoConfig base = tiny_config();
            base.phase1_epochs = 1;
            base.phase1_batch = batch;
            base.teacher_steps = 1;
            base.phase2_episodes = 1;
            opc::OpcOptions opt = short_opc_options();
            opt.max_iterations = 1;

            TrainStats ref_stats;
            std::vector<nn::Tensor> ref_weights;
            for (int workers : {1, 3, 8}) {
                CamoConfig cfg = base;
                cfg.train_workers = workers;
                CamoEngine engine(cfg);
                litho::LithoSim run_sim(test_litho_config());
                const TrainStats stats = engine.train(clips, run_sim, opt);

                ASSERT_EQ(stats.phase1_loss.size(), 1U);
                ASSERT_EQ(stats.phase2_reward.size(), 1U);
                EXPECT_TRUE(std::isfinite(stats.phase1_loss[0]));
                EXPECT_TRUE(std::isfinite(stats.phase2_reward[0]));

                if (workers == 1) {
                    ref_stats = stats;
                    ref_weights = weight_snapshot(engine);
                    continue;
                }
                EXPECT_TRUE(same_double_bits(stats.phase1_loss, ref_stats.phase1_loss))
                    << "clips " << clip_count << " batch " << batch << " workers " << workers;
                EXPECT_TRUE(same_double_bits(stats.phase2_reward, ref_stats.phase2_reward))
                    << "clips " << clip_count << " batch " << batch << " workers " << workers;
                EXPECT_TRUE(same_weights(engine, ref_weights))
                    << "clips " << clip_count << " batch " << batch << " workers " << workers;
            }
        }
    }
}

// Degenerate training inputs return finite stats and leave the weights
// untouched (no optimizer step from empty data).
TEST(TrainingParallel, DegenerateInputsAreFiniteAndStepFree) {
    litho::LithoSim sim(test_litho_config());
    const opc::OpcOptions opt = short_opc_options();

    // Zero clips.
    {
        CamoConfig cfg = tiny_config();
        cfg.train_workers = 2;
        CamoEngine engine(cfg);
        const auto before = weight_snapshot(engine);
        const TrainStats stats = engine.train({}, sim, opt);
        ASSERT_EQ(stats.phase1_loss.size(), static_cast<std::size_t>(cfg.phase1_epochs));
        ASSERT_EQ(stats.phase2_reward.size(), static_cast<std::size_t>(cfg.phase2_episodes));
        for (double v : stats.phase1_loss) EXPECT_EQ(v, 0.0);
        for (double v : stats.phase2_reward) EXPECT_EQ(v, 0.0);
        EXPECT_TRUE(same_weights(engine, before)) << "zero clips must not step";
    }

    // Zero teacher trajectories (teacher_steps = 0): phase 1 is empty but
    // phase 2 still rolls out.
    {
        CamoConfig cfg = tiny_config();
        cfg.teacher_steps = 0;
        cfg.phase2_episodes = 0;
        CamoEngine engine(cfg);
        const auto before = weight_snapshot(engine);
        const TrainStats stats = engine.train(small_via_clips(1), sim, opt);
        for (double v : stats.phase1_loss) {
            EXPECT_TRUE(std::isfinite(v));
            EXPECT_EQ(v, 0.0);
        }
        EXPECT_TRUE(same_weights(engine, before)) << "no teacher data must not step";
    }

    // A clip whose segment list is empty contributes nothing; training on
    // only such clips is finite and step-free, and a mixed set trains on
    // the real clip only (identical to training without the empty one).
    {
        const geo::SegmentedLayout empty({}, {geo::FragmentStyle::kVia, 60}, {}, 1000);
        ASSERT_EQ(empty.num_segments(), 0);

        CamoConfig cfg = tiny_config();
        CamoEngine engine(cfg);
        const auto before = weight_snapshot(engine);
        const TrainStats stats = engine.train({empty, empty}, sim, opt);
        for (double v : stats.phase1_loss) EXPECT_EQ(v, 0.0);
        for (double v : stats.phase2_reward) EXPECT_EQ(v, 0.0);
        EXPECT_TRUE(same_weights(engine, before));

        // Mixed: {empty, real} trains exactly like {real}.
        const auto real = small_via_clips(1);
        CamoEngine mixed(cfg);
        litho::LithoSim mixed_sim(test_litho_config());
        const TrainStats mixed_stats = mixed.train({empty, real[0]}, mixed_sim, opt);

        CamoEngine plain(cfg);
        litho::LithoSim plain_sim(test_litho_config());
        const TrainStats plain_stats = plain.train({real[0]}, plain_sim, opt);

        EXPECT_TRUE(same_double_bits(mixed_stats.phase1_loss, plain_stats.phase1_loss));
        for (double v : mixed_stats.phase2_reward) EXPECT_TRUE(std::isfinite(v));
    }
}

// Experiment::ensure_trained round-trip: weights trained at train_workers=8
// load under train_workers=1 (the cache key must not encode the worker
// count) and produce identical inference outputs.
TEST(TrainingParallel, EnsureTrainedRoundTripAcrossWorkerCounts) {
    const auto clips = small_via_clips(2);
    const opc::OpcOptions opt = short_opc_options();

    CamoConfig cfg8 = tiny_config();
    cfg8.phase1_epochs = 1;
    cfg8.phase2_episodes = 0;
    cfg8.name = "camo-rt";
    cfg8.train_workers = 8;
    CamoConfig cfg1 = cfg8;
    cfg1.train_workers = 1;

    // Cache-key compatibility assertion: the worker count must not change
    // the weights path (results are bit-identical, so the cache is shared).
    ASSERT_EQ(Experiment::weights_path(cfg8, "test"), Experiment::weights_path(cfg1, "test"));

    const std::string cache = testing::TempDir() + "rt_weights_roundtrip.bin";
    std::remove(cache.c_str());

    litho::LithoSim sim8(test_litho_config());
    CamoEngine trainer(cfg8);
    EXPECT_FALSE(ensure_trained(trainer, clips, sim8, opt, cache));  // trains + stores

    litho::LithoSim sim1(test_litho_config());
    CamoEngine loader(cfg1);
    EXPECT_TRUE(ensure_trained(loader, clips, sim1, opt, cache));  // loads the cache

    const auto r8 = trainer.infer(clips[0], sim8, opt);
    const auto r1 = loader.infer(clips[0], sim1, opt);
    EXPECT_EQ(r8.final_offsets, r1.final_offsets);
    EXPECT_EQ(r8.iterations, r1.iterations);
    EXPECT_EQ(0, std::memcmp(&r8.final_metrics.sum_abs_epe, &r1.final_metrics.sum_abs_epe,
                             sizeof(double)));
    std::remove(cache.c_str());
}

// The lockstep phase-2 trainer under a window objective: traces stay
// deterministic across worker counts with the window reward active.
TEST(TrainingParallel, WorstCornerPhase2IdenticalAcrossWorkerCounts) {
    const auto clips = small_via_clips(2);

    CamoConfig base = tiny_config();
    base.phase1_epochs = 1;
    base.phase2_episodes = 2;
    opc::OpcOptions opt = short_opc_options();
    opt.objective = rl::RewardMode::kWorstCorner;

    TrainStats ref;
    for (int workers : {1, 4}) {
        CamoConfig cfg = base;
        cfg.train_workers = workers;
        CamoEngine engine(cfg);
        litho::LithoSim sim(test_litho_config());
        const TrainStats stats = engine.train(clips, sim, opt);
        ASSERT_EQ(stats.phase2_reward.size(), 2U);
        for (double v : stats.phase2_reward) EXPECT_TRUE(std::isfinite(v));
        if (workers == 1) {
            ref = stats;
            continue;
        }
        EXPECT_TRUE(same_double_bits(stats.phase1_loss, ref.phase1_loss));
        EXPECT_TRUE(same_double_bits(stats.phase2_reward, ref.phase2_reward));
    }
}

}  // namespace
}  // namespace camo::core
