// Physical-invariant property tests of the lithography substrate:
// translation equivariance, bias monotonicity, symmetry, and linear-system
// sanity under the partially coherent model.
#include <gtest/gtest.h>

#include <cmath>

#include "litho/simulator.hpp"

namespace camo::litho {
namespace {

class LithoPropertyTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        LithoConfig cfg;
        cfg.grid = 256;
        cfg.pixel_nm = 4.0;
        cfg.kernels_nominal = 6;
        cfg.kernels_defocus = 5;
        cfg.cache_dir = "";
        sim_ = new LithoSim(cfg);
    }
    static void TearDownTestSuite() {
        delete sim_;
        sim_ = nullptr;
    }
    static LithoSim* sim_;
};

LithoSim* LithoPropertyTest::sim_ = nullptr;

geo::SegmentedLayout via_at(int x, int y, int clip = 1000) {
    return geo::SegmentedLayout({geo::Polygon::from_rect({x, y, x + 70, y + 70})},
                                {geo::FragmentStyle::kVia, 60}, {}, clip);
}

TEST_F(LithoPropertyTest, TranslationEquivariance) {
    // Moving the via by whole pixels must not change its EPE (away from
    // wraparound edges the imaging system is shift-invariant).
    const std::vector<int> off(4, 8);
    const auto m1 = sim_->evaluate(via_at(465, 465), off);
    const auto m2 = sim_->evaluate(via_at(465 + 40, 465 - 80), off);  // 10/20 pixels
    ASSERT_EQ(m1.epe.size(), m2.epe.size());
    for (std::size_t i = 0; i < m1.epe.size(); ++i) {
        EXPECT_NEAR(m1.epe[i], m2.epe[i], 0.15) << "point " << i;
    }
}

TEST_F(LithoPropertyTest, NinetyDegreeSymmetry) {
    // The source and pupil are rotationally symmetric: a square via's four
    // edges must see (nearly) identical EPE.
    const std::vector<int> off(4, 6);
    const auto m = sim_->evaluate(via_at(465, 465), off);
    ASSERT_EQ(m.epe.size(), 4U);
    for (std::size_t i = 1; i < 4; ++i) EXPECT_NEAR(m.epe[i], m.epe[0], 0.3);
}

class BiasMonotonicity : public LithoPropertyTest,
                         public ::testing::WithParamInterface<int> {};

TEST_P(BiasMonotonicity, EpeGrowsWithBias) {
    // More outward bias -> more light -> printed contour strictly moves
    // outward (EPE increases monotonically), until saturation.
    const int bias = GetParam();
    const std::vector<int> lo(4, bias);
    const std::vector<int> hi(4, bias + 2);
    const auto m_lo = sim_->evaluate(via_at(465, 465), lo);
    const auto m_hi = sim_->evaluate(via_at(465, 465), hi);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_GE(m_hi.epe[i], m_lo.epe[i] - 1e-6) << "bias " << bias << " point " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Biases, BiasMonotonicity, ::testing::Values(0, 2, 4, 6, 8, 10));

TEST_F(LithoPropertyTest, ProximityCouplingDecaysWithDistance) {
    // A neighbour via changes the centre via's EPE; the effect shrinks as
    // the neighbour moves away (the core assumption behind the 250 nm
    // graph threshold).
    const std::vector<int> off8(8, 8);
    const std::vector<int> off4(4, 8);
    const auto isolated = sim_->evaluate(via_at(465, 465), off4);

    auto pair_at = [&](int dx) {
        return geo::SegmentedLayout({geo::Polygon::from_rect({465, 465, 535, 535}),
                                     geo::Polygon::from_rect({465 + dx, 465, 535 + dx, 535})},
                                    {geo::FragmentStyle::kVia, 60}, {}, 1000);
    };
    const auto near = sim_->evaluate(pair_at(150), off8);
    const auto far = sim_->evaluate(pair_at(350), off8);

    const double d_near = std::abs(near.epe[0] - isolated.epe[0]);
    const double d_far = std::abs(far.epe[0] - isolated.epe[0]);
    EXPECT_GT(d_near, d_far);
    EXPECT_LT(d_far, 1.0);  // at 350 nm the coupling is nearly gone
}

TEST_F(LithoPropertyTest, PvBandShrinksWithSrafSupport) {
    // The whole point of SRAFs: steeper image slope -> smaller PV band for
    // the same printed feature. Compare a biased via with and without bars.
    const std::vector<geo::Polygon> target = {geo::Polygon::from_rect({465, 465, 535, 535})};
    std::vector<geo::Polygon> bars;
    for (int d : {-110, 110}) {
        bars.push_back(geo::Polygon::from_rect({465, 500 + d - 15, 535, 500 + d + 15}));
        bars.push_back(geo::Polygon::from_rect({500 + d - 15, 465, 500 + d + 15, 535}));
    }
    geo::SegmentedLayout with_srafs(target, {geo::FragmentStyle::kVia, 60}, bars, 1000);
    geo::SegmentedLayout without(target, {geo::FragmentStyle::kVia, 60}, {}, 1000);

    // At the operating bias (a few nm) the via underprints badly on its
    // own; SRAF support brings the contour close to target. (At large
    // over-bias the same brightening would overshoot instead.)
    const std::vector<int> off(4, 4);
    const auto m_with = sim_->evaluate(with_srafs, off);
    const auto m_without = sim_->evaluate(without, off);
    EXPECT_LT(m_with.sum_abs_epe, m_without.sum_abs_epe);
}

TEST_F(LithoPropertyTest, IntensityScalesQuadraticallyWithMaskAmplitude) {
    // Partially coherent imaging is quadratic in the mask transmission:
    // halving the mask amplitude quarters the intensity.
    geo::Raster mask(256, 4.0);
    mask.add_polygon(geo::Polygon::from_rect({400, 400, 600, 600}));
    mask.clamp01();
    geo::Raster half = mask;
    for (float& v : half.data()) v *= 0.5F;

    const geo::Raster a1 = sim_->aerial_nominal(mask);
    const geo::Raster a2 = sim_->aerial_nominal(half);
    const int c = 125;  // centre of the bright feature
    EXPECT_NEAR(a2.at(c, c), 0.25F * a1.at(c, c), 0.01F);
}

TEST_F(LithoPropertyTest, SegmentEpeMatchesMeasuredEpeOnMeasuredSegments) {
    const auto layout = via_at(465, 465);
    const std::vector<int> off(4, 5);
    const auto m = sim_->evaluate(layout, off);
    std::size_t mi = 0;
    for (int i = 0; i < layout.num_segments(); ++i) {
        if (layout.segments()[static_cast<std::size_t>(i)].measured) {
            EXPECT_DOUBLE_EQ(m.epe[mi], m.epe_segment[static_cast<std::size_t>(i)]);
            ++mi;
        }
    }
    EXPECT_EQ(mi, m.epe.size());
}

}  // namespace
}  // namespace camo::litho
