#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/adam.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "nn/softmax.hpp"

namespace camo::nn {
namespace {

TEST(Adam, ConvergesOnQuadratic) {
    Rng rng(20);
    Linear layer(3, 1, rng);
    Tensor x({3});
    x[0] = 1.0F;
    x[1] = -2.0F;
    x[2] = 0.5F;
    Adam opt(layer.params(), {.lr = 0.05F});
    float loss = 1e9F;
    for (int it = 0; it < 300; ++it) {
        Tape tape;
        const Tensor y = layer.forward(x, tape);
        Tensor gy({1});
        gy[0] = 2.0F * (y[0] - 1.5F);
        loss = (y[0] - 1.5F) * (y[0] - 1.5F);
        (void)layer.backward(gy, tape);
        opt.step();
    }
    EXPECT_LT(loss, 1e-5F);
}

TEST(Adam, HandlesIllConditionedScales) {
    // One input dimension is 100x larger: plain SGD at a workable lr for
    // the big coordinate crawls on the small one; Adam equalizes progress.
    Rng rng(21);
    Linear layer(2, 1, rng);
    Tensor x({2});
    x[0] = 100.0F;
    x[1] = 0.01F;
    Adam opt(layer.params(), {.lr = 0.05F});
    float loss = 1e9F;
    for (int it = 0; it < 500; ++it) {
        Tape tape;
        const Tensor y = layer.forward(x, tape);
        Tensor gy({1});
        gy[0] = 2.0F * (y[0] - 2.0F);
        loss = (y[0] - 2.0F) * (y[0] - 2.0F);
        (void)layer.backward(gy, tape);
        opt.step();
    }
    EXPECT_LT(loss, 1e-4F);
}

TEST(Adam, ClipNormBoundsFirstStep) {
    Rng rng(22);
    Linear layer(2, 1, rng);
    const Tensor before = layer.params()[0]->value.reshaped({2});

    Tensor x({2});
    x.fill(1000.0F);
    Tape tape;
    (void)layer.forward(x, tape);
    Tensor gy({1});
    gy[0] = 1000.0F;
    (void)layer.backward(gy, tape);

    Adam opt(layer.params(), {.lr = 0.01F, .clip_norm = 1.0F});
    opt.step();
    // Adam normalizes per-parameter, so the step is bounded by lr per
    // element regardless; clip_norm additionally tames the moments.
    const Tensor after = layer.params()[0]->value.reshaped({2});
    for (int i = 0; i < 2; ++i) {
        EXPECT_LE(std::abs(after[static_cast<std::size_t>(i)] -
                           before[static_cast<std::size_t>(i)]),
                  0.011F);
    }
}

TEST(Adam, WeightDecayShrinksWithoutGradient) {
    Rng rng(23);
    Linear layer(4, 2, rng);
    double before = 0.0;
    for (float v : layer.params()[0]->value.data()) before += v * v;
    Adam opt(layer.params(), {.lr = 0.1F, .weight_decay = 0.1F});
    opt.step();
    double after = 0.0;
    for (float v : layer.params()[0]->value.data()) after += v * v;
    EXPECT_LT(after, before);
}

TEST(Adam, SeparatesNearIdenticalInputs) {
    // Regression test for the CAMO training fix: two inputs differing in a
    // single small entry must be separable into different classes quickly.
    Rng rng(24);
    Sequential net;
    net.emplace<Linear>(8, 32, rng);
    net.emplace<ReLU>();
    net.emplace<Linear>(32, 3, rng);

    Tensor a({8});
    Tensor b({8});
    a.fill(0.5F);
    b.fill(0.5F);
    b[3] += 0.2F;  // the only difference

    Adam opt(net.params(), {.lr = 1e-2F});
    double nll = 1e9;
    for (int epoch = 0; epoch < 500; ++epoch) {
        nll = 0.0;
        int which = 0;
        for (const Tensor* x : {&a, &b}) {
            const int label = which++;
            Tape tape;
            const Tensor logits = net.forward(*x, tape);
            nll -= log_prob(logits.data(), label);
            const auto g = policy_logit_grad(logits.data(), label, -1.0F);
            Tensor gy({3});
            for (int i = 0; i < 3; ++i) gy[static_cast<std::size_t>(i)] = g[static_cast<std::size_t>(i)];
            (void)net.backward(gy, tape);
            opt.step();
        }
    }
    EXPECT_LT(nll, 0.2);
}

}  // namespace
}  // namespace camo::nn
