// CLI argument-hardening suite (PR 9).
//
// Drives the real camo_cli binary (path injected by CMake as CAMO_CLI_PATH)
// through malformed and boundary flag values on every subcommand. Contract:
// a bad invocation always exits 2 after printing usage — it never crashes,
// never terminates on an uncaught std::sto* exception (the pre-PR failure
// mode), and never silently truncates an out-of-range value. Well-formed
// fast-path invocations still exit 0.
//
// Each case only has to reach argument parsing, so the whole matrix runs in
// well under a second — no training, litho or GDS work is triggered.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <string>

namespace {

/// Exit status of `camo_cli <args>` with stdout/stderr discarded.
/// Fails the test outright if the process died on a signal.
int run_cli(const std::string& args) {
    const std::string cmd = std::string(CAMO_CLI_PATH) + " " + args + " >/dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    EXPECT_NE(rc, -1) << cmd;
    EXPECT_TRUE(WIFEXITED(rc)) << "crashed (signal " << WTERMSIG(rc) << "): " << cmd;
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

void expect_usage_exit(const std::string& args) {
    EXPECT_EQ(run_cli(args), 2) << "camo_cli " << args;
}

TEST(CliRobustness, TopLevel) {
    expect_usage_exit("");
    expect_usage_exit("frobnicate");
    expect_usage_exit("--in");  // missing value and missing --out
    EXPECT_EQ(run_cli("--help"), 0);
    EXPECT_EQ(run_cli("--list-scenarios"), 0);
}

TEST(CliRobustness, SingleClipFlags) {
    const std::string base = "--in a.gds --out b.gds ";
    expect_usage_exit(base + "--layer abc");
    expect_usage_exit(base + "--layer 2x");      // trailing garbage
    expect_usage_exit(base + "--layer -1");
    expect_usage_exit(base + "--clip 0");
    expect_usage_exit(base + "--clip 99999999999999999999");  // overflow
    expect_usage_exit(base + "--iterations 0");
    expect_usage_exit(base + "--iterations -3");
    expect_usage_exit(base + "--reward-mode bogus");
    expect_usage_exit(base + "--train-workers 1.5");
}

TEST(CliRobustness, BatchFlags) {
    expect_usage_exit("batch --clips foo");
    expect_usage_exit("batch --clips 0");
    expect_usage_exit("batch --clips -4");
    expect_usage_exit("batch --clips 1e3");  // scientific notation is not an int
    expect_usage_exit("batch --threads 0");
    expect_usage_exit("batch --threads two");
    expect_usage_exit("batch --seed -1");
    expect_usage_exit("batch --seed 0x10");
    expect_usage_exit("batch --seed 99999999999999999999999");  // u64 overflow
    expect_usage_exit("batch --iterations 0");
    expect_usage_exit("batch --engine bogus");
    expect_usage_exit("batch --batched --engine rule");  // batched is camo-only
    expect_usage_exit("batch --doses 1.0");              // sweep-only flag
    expect_usage_exit("batch --no-such-flag");
}

TEST(CliRobustness, SweepLists) {
    expect_usage_exit("sweep --doses 1.0,abc");
    expect_usage_exit("sweep --doses 1.0,");    // empty trailing item
    expect_usage_exit("sweep --doses ,1.0");    // empty leading item
    expect_usage_exit("sweep --doses 1.0,,2");  // empty middle item
    expect_usage_exit("sweep --doses 1.0x,2");  // trailing garbage in item
    expect_usage_exit("sweep --doses ''");
    expect_usage_exit("sweep --focuses 0,nan");
    expect_usage_exit("sweep --focuses 12.5junk");
}

TEST(CliRobustness, CompareFlags) {
    expect_usage_exit("compare --clips abc");
    expect_usage_exit("compare --clips 0");
    expect_usage_exit("compare --threads 0");
    expect_usage_exit("compare --iterations -2");
    expect_usage_exit("compare --ilt-iterations 0");
    expect_usage_exit("compare --train-clips 0");
    expect_usage_exit("compare --seed abc");
    expect_usage_exit("compare --slack -0.5");
    expect_usage_exit("compare --slack nan");
    expect_usage_exit("compare --rewards nominal,bogus");
    expect_usage_exit("compare --no-such-flag");
    EXPECT_EQ(run_cli("compare --list-scenarios"), 0);
}

TEST(CliRobustness, ChipgenFlags) {
    expect_usage_exit("chipgen");  // --out is required
    expect_usage_exit("chipgen --out c.gds --cols 0");
    expect_usage_exit("chipgen --out c.gds --cols 1e9");
    expect_usage_exit("chipgen --out c.gds --rows -2");
    expect_usage_exit("chipgen --out c.gds --rows 12abc");
    expect_usage_exit("chipgen --out c.gds --pitch -5");
    expect_usage_exit("chipgen --out c.gds --no-such-flag");
}

TEST(CliRobustness, ShardFlags) {
    expect_usage_exit("shard --layer -1");
    expect_usage_exit("shard --cols 0");
    expect_usage_exit("shard --rows 0");
    expect_usage_exit("shard --pitch -1");
    expect_usage_exit("shard --tile 0");
    expect_usage_exit("shard --tile abc");
    expect_usage_exit("shard --halo -1");
    expect_usage_exit("shard --threads 0");
    expect_usage_exit("shard --queue-capacity 0");
    expect_usage_exit("shard --seed 18446744073709551616");  // 2^64
    expect_usage_exit("shard --iterations 0");
    expect_usage_exit("shard --engine oneshot");
    expect_usage_exit("shard --no-such-flag");
}

TEST(CliRobustness, ServeFlags) {
    expect_usage_exit("serve --requests -1");
    expect_usage_exit("serve --requests abc");
    expect_usage_exit("serve --clips 0");
    expect_usage_exit("serve --queue-capacity 0");
    expect_usage_exit("serve --priority-levels 0");
    expect_usage_exit("serve --deadline-s -1");
    expect_usage_exit("serve --deadline-s inf");
    expect_usage_exit("serve --threads 0");
    expect_usage_exit("serve --stream-queue 0");
    expect_usage_exit("serve --seed --quiet");  // flag where a value belongs
    expect_usage_exit("serve --iterations 0");
    expect_usage_exit("serve --engine ilt");
    expect_usage_exit("serve --no-such-flag");
}

TEST(CliRobustness, CollectFlags) {
    expect_usage_exit("collect");  // --out is required
    expect_usage_exit("collect --out s.ctrj --style bogus");
    expect_usage_exit("collect --out s.ctrj --clips 0");
    expect_usage_exit("collect --out s.ctrj --clips abc");
    expect_usage_exit("collect --out s.ctrj --train-workers 1.5");
    expect_usage_exit("collect --out s.ctrj --seed -1");
    expect_usage_exit("collect --out s.ctrj --no-such-flag");
    expect_usage_exit("collect --out s.ctrj --from-store x");  // train-only flag
}

TEST(CliRobustness, TrainFlags) {
    expect_usage_exit("train");  // --from-store and --weights are required
    expect_usage_exit("train --from-store s.ctrj");
    expect_usage_exit("train --weights w.bin");
    const std::string base = "train --from-store s.ctrj --weights w.bin ";
    expect_usage_exit(base + "--style bogus");
    expect_usage_exit(base + "--epochs 0");
    expect_usage_exit(base + "--epochs five");
    expect_usage_exit(base + "--clips -1");
    expect_usage_exit(base + "--train-workers abc");
    expect_usage_exit(base + "--seed 99999999999999999999999");
    expect_usage_exit(base + "--no-such-flag");
    expect_usage_exit(base + "--out x.ctrj");  // collect-only flag
}

/// Exit status of `pretrain <args>` (CAMO_PRETRAIN_PATH) with output discarded.
int run_pretrain(const std::string& args) {
    const std::string cmd = std::string(CAMO_PRETRAIN_PATH) + " " + args + " >/dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    EXPECT_NE(rc, -1) << cmd;
    EXPECT_TRUE(WIFEXITED(rc)) << "crashed (signal " << WTERMSIG(rc) << "): " << cmd;
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(CliRobustness, PretrainFlags) {
    // atoi regression: garbage used to silently become 0 (= all hardware
    // threads); now every malformed value is a diagnostic + exit 2.
    EXPECT_EQ(run_pretrain("--train-workers abc"), 2);
    EXPECT_EQ(run_pretrain("--train-workers 1.5"), 2);
    EXPECT_EQ(run_pretrain("--train-workers 2x"), 2);
    EXPECT_EQ(run_pretrain("--train-workers 99999999999999999999"), 2);
    EXPECT_EQ(run_pretrain("--train-workers"), 2);  // missing value
    EXPECT_EQ(run_pretrain("--log-level bogus"), 2);
    EXPECT_EQ(run_pretrain("--no-such-flag"), 2);
}

TEST(CliRobustness, ChipgenHappyPathStillWorks) {
    const std::string out = testing::TempDir() + "cli_robustness_chip.gds";
    EXPECT_EQ(run_cli("chipgen --out " + out + " --cols 1 --rows 1"), 0);
    std::remove(out.c_str());
}

}  // namespace
