#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geometry/raster.hpp"

namespace camo::geo {
namespace {

TEST(Raster, PixelAlignedRect) {
    Raster r(16, 1.0);
    r.add_polygon(Polygon::from_rect({2, 3, 6, 8}));
    EXPECT_FLOAT_EQ(r.at(3, 2), 1.0F);
    EXPECT_FLOAT_EQ(r.at(7, 5), 1.0F);
    EXPECT_FLOAT_EQ(r.at(8, 2), 0.0F);  // above the rect
    EXPECT_FLOAT_EQ(r.at(3, 6), 0.0F);  // right of the rect
    EXPECT_NEAR(r.coverage_area_nm2(), 4.0 * 5.0, 1e-4);
}

TEST(Raster, FractionalCoverageWithCoarsePixels) {
    Raster r(8, 4.0);  // 4 nm pixels
    r.add_polygon(Polygon::from_rect({2, 2, 6, 6}));  // straddles pixel borders
    EXPECT_NEAR(r.coverage_area_nm2(), 16.0, 1e-4);
    // Pixel (0,0) covers [0,4]x[0,4]; overlap with [2,6]^2 is 2x2 = 4 of 16.
    EXPECT_NEAR(r.at(0, 0), 0.25F, 1e-5F);
    // Pixel (1,1) covers [4,8]^2; overlap is 2x2 as well.
    EXPECT_NEAR(r.at(1, 1), 0.25F, 1e-5F);
}

TEST(Raster, LShapeAreaConserved) {
    Raster r(32, 1.0);
    Polygon l({{1, 1}, {21, 1}, {21, 11}, {11, 11}, {11, 21}, {1, 21}});
    r.add_polygon(l);
    EXPECT_NEAR(r.coverage_area_nm2(), l.area(), 1e-3);
    EXPECT_FLOAT_EQ(r.at(5, 5), 1.0F);
    EXPECT_FLOAT_EQ(r.at(15, 15), 0.0F);  // cut-out quadrant
}

TEST(Raster, ClipsAtGridBoundary) {
    Raster r(8, 1.0);
    r.add_polygon(Polygon::from_rect({-10, -10, 4, 4}));  // extends past edges
    EXPECT_FLOAT_EQ(r.at(0, 0), 1.0F);
    EXPECT_NEAR(r.coverage_area_nm2(), 16.0, 1e-4);  // only the in-grid part
}

TEST(Raster, OverlappingPolygonsClamp) {
    Raster r(16, 1.0);
    std::vector<Polygon> polys = {Polygon::from_rect({0, 0, 8, 8}),
                                  Polygon::from_rect({4, 4, 12, 12})};
    r.rasterize(polys);
    EXPECT_FLOAT_EQ(r.at(5, 5), 1.0F);  // overlap region stays at 1
    EXPECT_NEAR(r.coverage_area_nm2(), 64.0 + 64.0 - 16.0, 1e-3);
}

TEST(Raster, RandomRectsAreaProperty) {
    Rng rng(42);
    for (int trial = 0; trial < 25; ++trial) {
        Raster r(64, 2.0);
        const int x0 = rng.uniform_int(0, 80);
        const int y0 = rng.uniform_int(0, 80);
        const int w = rng.uniform_int(1, 40);
        const int h = rng.uniform_int(1, 40);
        r.add_polygon(Polygon::from_rect({x0, y0, x0 + w, y0 + h}));
        EXPECT_NEAR(r.coverage_area_nm2(), static_cast<double>(w) * h, 1e-2)
            << "rect " << x0 << "," << y0 << " " << w << "x" << h;
    }
}

TEST(Raster, StaircasePolygonArea) {
    // Shape with jogs as produced by per-segment OPC offsets.
    Polygon stairs({{0, 0}, {30, 0}, {30, 8}, {20, 8}, {20, 12}, {10, 12}, {10, 10}, {0, 10}});
    Raster r(64, 1.0);
    r.add_polygon(stairs);
    EXPECT_NEAR(r.coverage_area_nm2(), stairs.area(), 1e-3);
}

TEST(Raster, BilinearSampleSmoothField) {
    Raster r(8, 1.0);
    for (int row = 0; row < 8; ++row) {
        for (int col = 0; col < 8; ++col) r.at(row, col) = static_cast<float>(col);
    }
    // Along x the field is linear in the pixel-centre coordinates.
    EXPECT_NEAR(r.sample(3.0, 4.0), 2.5, 1e-6);
    EXPECT_NEAR(r.sample(3.5, 4.0), 3.0, 1e-6);
}

TEST(Raster, BadDimensionsThrow) {
    EXPECT_THROW(Raster(0, 1.0), std::invalid_argument);
    EXPECT_THROW(Raster(8, 0.0), std::invalid_argument);
}

class RasterPixelSweep : public ::testing::TestWithParam<double> {};

TEST_P(RasterPixelSweep, AreaConservationAcrossResolutions) {
    const double px = GetParam();
    Raster r(static_cast<int>(256 / px), px);
    const Polygon p = Polygon::from_rect({37, 51, 143, 167});
    r.add_polygon(p);
    EXPECT_NEAR(r.coverage_area_nm2(), p.area(), p.area() * 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Pixels, RasterPixelSweep, ::testing::Values(1.0, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace camo::geo
