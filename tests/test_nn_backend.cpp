// Inference-backend equivalence suite (PR 9).
//
// Pins the two contracts the SIMD/batched backend ships under:
//
//  * kernel equivalence — the vector kernels compute the same sums as the
//    scalar reference with a different rounding schedule, so outputs agree
//    to a small relative tolerance (fuzzed here over random shapes), and a
//    batched call is BITWISE identical to the same rows issued one at a
//    time on every backend (row accumulation order is row-independent);
//  * action identity — end to end, the SIMD and batched inference paths
//    select exactly the actions the scalar single-row path selects, on
//    every registered scenario and every reward mode. Integer offsets make
//    this an exact equality check, which is what lets CAMO_BACKEND default
//    to the fastest level without perturbing any golden result.
//
// On a build or CPU without vector kernels (CAMO_SIMD=OFF, pre-AVX2 x86)
// ScopedOverride clips to scalar and the comparisons degrade to
// scalar-vs-scalar: still valid, trivially green.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/camo.hpp"
#include "nn/backend.hpp"
#include "nn/conv2d.hpp"
#include "nn/tensor.hpp"
#include "opc/rule_engine.hpp"
#include "runtime/batch.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace camo;

void fill_uniform(nn::Tensor& t, Rng& rng) {
    for (float& v : t.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
}

// Relative-ish bound for scalar-vs-vector comparisons: blocked FMA changes
// the rounding schedule, not the math, so errors stay within a few ULP of
// the accumulated magnitude.
void expect_close(const std::vector<float>& a, const std::vector<float>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const float tol = 1e-4F * (1.0F + std::abs(a[i]));
        EXPECT_NEAR(a[i], b[i], tol) << "element " << i;
    }
}

opc::OpcOptions quick_opc(scenario::Style style) {
    opc::OpcOptions opt;
    opt.max_iterations = 2;
    opt.initial_bias_nm = style == scenario::Style::kVia ? 3 : 0;
    return opt;
}

/// Tiny deterministic engine; inference only, never trained (random-init
/// weights are seeded, so every instance with this config is identical).
core::CamoEngine make_engine() {
    core::CamoConfig cfg;
    cfg.name = "backend_test";
    cfg.train_workers = 1;
    return core::CamoEngine(cfg);
}

// ---- kernel-level fuzz ------------------------------------------------------

TEST(SimdOps, GemmBlockedMatchesScalarFuzz) {
    Rng rng(0xBEEF);
    for (int trial = 0; trial < 30; ++trial) {
        const int in = rng.uniform_int(1, 48);
        const int out = rng.uniform_int(1, 40);  // exercises partial blocks
        const int rows = rng.uniform_int(1, 6);
        nn::Tensor w({out, in});
        nn::Tensor b({out});
        fill_uniform(w, rng);
        fill_uniform(b, rng);
        const nn::PackedLinear m = nn::pack_linear(w, &b);
        ASSERT_EQ(m.out_padded % simd::kBlock, 0);

        std::vector<float> x(static_cast<std::size_t>(rows) * in);
        for (float& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
        std::vector<float> ys(static_cast<std::size_t>(rows) * out, 0.0F);
        std::vector<float> yv(ys);

        nn::scalar_backend().linear(m, x.data(), rows, ys.data());
        {
            simd::ScopedOverride force(simd::detected_level());
            nn::active_backend().linear(m, x.data(), rows, yv.data());
        }
        expect_close(ys, yv);

        // Accumulating variant folds into existing values, ignores bias.
        std::vector<float> as(ys);
        std::vector<float> av(ys);
        nn::scalar_backend().linear_acc(m, x.data(), rows, as.data());
        {
            simd::ScopedOverride force(simd::detected_level());
            nn::active_backend().linear_acc(m, x.data(), rows, av.data());
        }
        expect_close(as, av);
    }
}

TEST(SimdOps, BatchedRowsBitwiseEqualSingleRows) {
    Rng rng(0xF00D);
    for (const simd::Level level : {simd::Level::kScalar, simd::detected_level()}) {
        simd::ScopedOverride force(level);
        const nn::Backend& be = nn::active_backend();
        for (int trial = 0; trial < 10; ++trial) {
            const int in = rng.uniform_int(1, 32);
            const int out = rng.uniform_int(1, 24);
            const int rows = rng.uniform_int(2, 8);
            nn::Tensor w({out, in});
            nn::Tensor b({out});
            fill_uniform(w, rng);
            fill_uniform(b, rng);
            const nn::PackedLinear m = nn::pack_linear(w, &b);

            std::vector<float> x(static_cast<std::size_t>(rows) * in);
            for (float& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
            std::vector<float> batched(static_cast<std::size_t>(rows) * out);
            std::vector<float> single(batched.size());
            be.linear(m, x.data(), rows, batched.data());
            for (int r = 0; r < rows; ++r) {
                be.linear(m, x.data() + static_cast<std::size_t>(r) * in, 1,
                          single.data() + static_cast<std::size_t>(r) * out);
            }
            // The batching contract is exact, not approximate.
            EXPECT_EQ(batched, single) << "level " << simd::level_name(level);
        }
    }
}

TEST(SimdOps, Conv2dPackedMatchesScalarFuzz) {
    Rng rng(0xC0DE);
    for (int trial = 0; trial < 12; ++trial) {
        const int in_ch = rng.uniform_int(1, 3);
        const int out_ch = rng.uniform_int(1, 20);  // partial blocks included
        const int k = 3;
        const int stride = rng.uniform_int(1, 2);
        const int h = rng.uniform_int(5, 9);
        Rng wrng(derive_seed(0xC0DE, static_cast<std::uint64_t>(trial)));
        nn::Conv2d layer(in_ch, out_ch, k, stride, 1, wrng);
        const nn::PackedConv2d m = nn::pack_conv2d(layer);

        nn::Tensor x({in_ch, h, h});
        fill_uniform(x, rng);
        const int oh = m.out_size(h);
        std::vector<float> ys(static_cast<std::size_t>(out_ch) * oh * oh);
        std::vector<float> yv(ys.size());
        nn::scalar_backend().conv2d(m, x.data().data(), h, h, ys.data());
        {
            simd::ScopedOverride force(simd::detected_level());
            nn::active_backend().conv2d(m, x.data().data(), h, h, yv.data());
        }
        expect_close(ys, yv);
    }
}

TEST(SimdOps, CmulAndNormAccMatchScalar) {
    Rng rng(0xACC);
    for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                std::size_t{1013}}) {
        std::vector<std::complex<float>> a(n);
        std::vector<std::complex<float>> b(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = {static_cast<float>(rng.uniform(-1.0, 1.0)),
                    static_cast<float>(rng.uniform(-1.0, 1.0))};
            b[i] = {static_cast<float>(rng.uniform(-1.0, 1.0)),
                    static_cast<float>(rng.uniform(-1.0, 1.0))};
        }
        std::vector<std::complex<float>> ps(n);
        std::vector<std::complex<float>> pv(n);
        simd::scalar_ops().cmul(a.data(), b.data(), ps.data(), n);
        {
            simd::ScopedOverride force(simd::detected_level());
            simd::ops().cmul(a.data(), b.data(), pv.data(), n);
        }
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(ps[i].real(), pv[i].real(), 1e-5F) << i;
            EXPECT_NEAR(ps[i].imag(), pv[i].imag(), 1e-5F) << i;
        }

        std::vector<float> is(n, 0.25F);
        std::vector<float> iv(n, 0.25F);
        simd::scalar_ops().norm_acc(a.data(), 0.37F, is.data(), n);
        {
            simd::ScopedOverride force(simd::detected_level());
            simd::ops().norm_acc(a.data(), 0.37F, iv.data(), n);
        }
        for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(is[i], iv[i], 1e-5F) << i;
    }
}

// ---- end-to-end action identity --------------------------------------------

TEST(PolicyBackend, SimdSelectsIdenticalActionsOnEveryScenario) {
    const core::CamoEngine engine = make_engine();
    for (const std::string& name : scenario::Registry::instance().names()) {
        const scenario::Scenario sc = scenario::Registry::instance().get(name);
        const std::vector<geo::SegmentedLayout> layouts = sc.layouts(1);
        ASSERT_FALSE(layouts.empty());
        const opc::OpcOptions opt = quick_opc(sc.style);

        opc::EngineResult scalar_res;
        opc::EngineResult simd_res;
        {
            simd::ScopedOverride force(simd::Level::kScalar);
            litho::LithoSim sim(sc.litho);
            scalar_res = engine.infer(layouts.front(), sim, opt);
        }
        {
            simd::ScopedOverride force(simd::detected_level());
            litho::LithoSim sim(sc.litho);
            simd_res = engine.infer(layouts.front(), sim, opt);
        }
        EXPECT_EQ(scalar_res.final_offsets, simd_res.final_offsets) << name;
        EXPECT_EQ(scalar_res.iterations, simd_res.iterations) << name;
    }
}

TEST(PolicyBackend, BatchedMatchesSingleOnEveryScenario) {
    const core::CamoEngine engine = make_engine();
    for (const std::string& name : scenario::Registry::instance().names()) {
        const scenario::Scenario sc = scenario::Registry::instance().get(name);
        const std::vector<geo::SegmentedLayout> layouts = sc.layouts(2);
        runtime::BatchOptions bopt;
        bopt.threads = 1;
        bopt.opc = quick_opc(sc.style);
        runtime::BatchScheduler sched(sc.litho, bopt);
        const runtime::BatchResult single = sched.run_camo(layouts, engine);
        const runtime::BatchResult batched = sched.run_camo_batched(layouts, engine);
        ASSERT_EQ(single.clips.size(), batched.clips.size()) << name;
        for (std::size_t i = 0; i < single.clips.size(); ++i) {
            EXPECT_EQ(single.clips[i].error, batched.clips[i].error) << name;
            EXPECT_EQ(single.clips[i].offsets, batched.clips[i].offsets) << name;
            EXPECT_EQ(single.clips[i].iterations, batched.clips[i].iterations) << name;
            EXPECT_EQ(single.clips[i].final_epe, batched.clips[i].final_epe) << name;
        }
    }
}

TEST(PolicyBackend, BatchedMatchesSingleAcrossRewardModesAndSampling) {
    const core::CamoEngine engine = make_engine();
    const scenario::Scenario sc =
        scenario::Registry::instance().get(scenario::Registry::instance().names().front());
    const std::vector<geo::SegmentedLayout> layouts = sc.layouts(2);
    for (const rl::RewardMode mode : {rl::RewardMode::kNominal, rl::RewardMode::kWorstCorner,
                                      rl::RewardMode::kWeightedCorner}) {
        for (const bool stochastic : {false, true}) {
            runtime::BatchOptions bopt;
            bopt.threads = 1;
            bopt.stochastic = stochastic;
            bopt.opc = quick_opc(sc.style);
            bopt.opc.objective = mode;
            runtime::BatchScheduler sched(sc.litho, bopt);
            const runtime::BatchResult single = sched.run_camo(layouts, engine);
            const runtime::BatchResult batched = sched.run_camo_batched(layouts, engine);
            ASSERT_EQ(single.clips.size(), batched.clips.size());
            for (std::size_t i = 0; i < single.clips.size(); ++i) {
                EXPECT_EQ(single.clips[i].offsets, batched.clips[i].offsets)
                    << rl::reward_mode_name(mode) << " stochastic=" << stochastic;
                EXPECT_EQ(single.clips[i].iterations, batched.clips[i].iterations)
                    << rl::reward_mode_name(mode) << " stochastic=" << stochastic;
            }
        }
    }
}

// ---- litho hot loops --------------------------------------------------------

TEST(LithoSimd, SupportApplyBackendEquivalence) {
    // Drive the incremental evaluation path (SupportApplicator's cmul +
    // norm_acc loops) through a short rule-engine run under both backends.
    // Decisions are integer threshold tests on nm-scale EPE values, far
    // above vector ULP noise, so offsets must match exactly; the float
    // metrics agree to a small relative tolerance.
    const scenario::Scenario sc = scenario::Registry::instance().get(
        scenario::Registry::instance().names().front());
    const std::vector<geo::SegmentedLayout> layouts = sc.layouts(1);
    opc::OpcOptions opt = quick_opc(sc.style);
    opt.max_iterations = 3;

    opc::RuleEngine eng;
    opc::EngineResult scalar_res;
    opc::EngineResult simd_res;
    {
        simd::ScopedOverride force(simd::Level::kScalar);
        litho::LithoSim sim(sc.litho);
        scalar_res = eng.optimize(layouts.front(), sim, opt);
    }
    {
        simd::ScopedOverride force(simd::detected_level());
        litho::LithoSim sim(sc.litho);
        simd_res = eng.optimize(layouts.front(), sim, opt);
    }
    EXPECT_EQ(scalar_res.final_offsets, simd_res.final_offsets);
    EXPECT_EQ(scalar_res.iterations, simd_res.iterations);
    const double tol = 1e-4 * (1.0 + std::abs(scalar_res.final_metrics.sum_abs_epe));
    EXPECT_NEAR(scalar_res.final_metrics.sum_abs_epe, simd_res.final_metrics.sum_abs_epe, tol);
}

}  // namespace
