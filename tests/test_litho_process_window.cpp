// Sweep equivalence suite for the multi-corner process-window evaluation.
//
// Contracts locked down here (see litho/process_window.hpp):
//   * the (dose 1.0, best focus) corner of evaluate_window reproduces
//     LithoSim::evaluate bit for bit (same rasterization, same applicator,
//     same EPE arithmetic);
//   * the exact PV band over all corners is a superset of the legacy
//     two-corner approximation, and the approximation equals evaluate()'s
//     pvband_nm2 exactly;
//   * the incremental window path serves every corner from ONE cached
//     rasterization + spectrum (no rebuild when the cache matches, one
//     sparse delta when a few segments moved) and agrees with the dense
//     sweep within the incremental tolerances;
//   * golden JSON fixtures pin a 2x2 window on the via3/metal24 clips
//     (regenerate with CAMO_REGEN_GOLDENS=1 after an intentional change).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "layout/metal_gen.hpp"
#include "layout/via_gen.hpp"
#include "litho/incremental.hpp"
#include "litho/process_window.hpp"
#include "litho/simulator.hpp"

#ifndef CAMO_GOLDEN_DIR
#define CAMO_GOLDEN_DIR "tests/golden"
#endif

namespace camo::litho {
namespace {

constexpr double kPvbTolNm2 = kIncrementalPvbPixelSlack * 4.0 * 4.0;  // 4 nm pixels

class ProcessWindowTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        LithoConfig cfg;
        cfg.grid = 256;
        cfg.pixel_nm = 4.0;
        cfg.kernels_nominal = 6;
        cfg.kernels_defocus = 5;
        cfg.cache_dir = "";  // tests never touch the on-disk cache
        sim_ = new LithoSim(cfg);
    }
    static void TearDownTestSuite() {
        delete sim_;
        sim_ = nullptr;
    }

    static LithoSim* sim_;
};

LithoSim* ProcessWindowTest::sim_ = nullptr;

// Clips sized to fit the 256-grid simulation frame (1024 nm span).
geo::SegmentedLayout via_layout(int vias, std::uint64_t seed) {
    Rng rng(seed);
    layout::ViaGenOptions opt;
    opt.clip_nm = 1000;
    opt.margin_nm = 250;
    opt.min_spacing_nm = 200;
    return geo::SegmentedLayout(layout::generate_via_clip(vias, rng, opt),
                                {geo::FragmentStyle::kVia, 60}, {}, opt.clip_nm);
}

geo::SegmentedLayout metal_layout(int points, std::uint64_t seed) {
    Rng rng(seed);
    layout::MetalGenOptions opt;
    opt.clip_nm = 1000;
    opt.margin_nm = 120;
    return geo::SegmentedLayout(layout::generate_metal_clip(points, rng, opt),
                                {geo::FragmentStyle::kMetal, 60}, {}, opt.clip_nm);
}

std::vector<int> patterned_offsets(const geo::SegmentedLayout& layout, int mod, int sub) {
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()));
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        offsets[i] = static_cast<int>((i * 7) % static_cast<std::size_t>(mod)) - sub;
    }
    return offsets;
}

TEST_F(ProcessWindowTest, SpecValidation) {
    WindowSpec spec;
    EXPECT_THROW(spec.validate(), std::invalid_argument);  // no doses
    spec.doses = {1.0};
    EXPECT_THROW(spec.validate(), std::invalid_argument);  // no focuses
    spec.defocus_nm = {0.0};
    EXPECT_NO_THROW(spec.validate());
    spec.doses = {1.0, 0.0};
    EXPECT_THROW(spec.validate(), std::invalid_argument);  // non-positive dose
    spec.doses = {1.0, -0.5};
    EXPECT_THROW(spec.validate(), std::invalid_argument);

    const WindowSpec std_spec = WindowSpec::standard(sim_->config());
    EXPECT_EQ(std_spec.corner_count(), 6);
    EXPECT_EQ(std_spec.dose_count(), 3);
    // Focus-major enumeration: first dose_count() corners are best focus.
    EXPECT_DOUBLE_EQ(std_spec.corner(0).defocus_nm, 0.0);
    EXPECT_DOUBLE_EQ(std_spec.corner(3).defocus_nm, sim_->config().defocus_nm);
    EXPECT_DOUBLE_EQ(std_spec.corner(4).dose, 1.0);
}

TEST_F(ProcessWindowTest, NominalCornerBitIdenticalToEvaluate) {
    const auto layout = via_layout(3, 21);
    const std::vector<int> offsets = patterned_offsets(layout, 11, 5);

    const SimMetrics full = sim_->evaluate(layout, offsets);
    const WindowMetrics window =
        sim_->evaluate_window(layout, offsets, WindowSpec::standard(sim_->config()));

    const CornerResult* nominal = window.nominal_corner();
    ASSERT_NE(nominal, nullptr);
    ASSERT_EQ(nominal->metrics.epe_segment.size(), full.epe_segment.size());
    for (std::size_t i = 0; i < full.epe_segment.size(); ++i) {
        EXPECT_EQ(nominal->metrics.epe_segment[i], full.epe_segment[i]) << "segment " << i;
    }
    ASSERT_EQ(nominal->metrics.epe.size(), full.epe.size());
    EXPECT_EQ(nominal->metrics.sum_abs_epe, full.sum_abs_epe);

    // The legacy two-corner band inside the window is the same arithmetic as
    // evaluate()'s PV band: exactly equal, not just close.
    EXPECT_EQ(window.pv_band_two_corner_nm2, full.pvband_nm2);
}

TEST_F(ProcessWindowTest, ExactBandContainsTwoCornerBand) {
    const auto layout = metal_layout(24, 12);
    const std::vector<int> offsets = patterned_offsets(layout, 9, 4);

    const WindowMetrics standard =
        sim_->evaluate_window(layout, offsets, WindowSpec::standard(sim_->config()));
    EXPECT_GE(standard.pv_band_two_corner_nm2, 0.0);
    EXPECT_GE(standard.pv_band_exact_nm2, standard.pv_band_two_corner_nm2);

    // A wider window can only grow the exact band (more corners in the
    // union/intersection). The two-corner approximation tracks the window's
    // own dose extremes, so it grows too — and stays a subset of exact.
    WindowSpec wide = WindowSpec::standard(sim_->config());
    wide.doses.insert(wide.doses.begin(), 0.94);
    wide.doses.push_back(1.06);
    wide.defocus_nm.push_back(sim_->config().defocus_nm / 2.0);
    const WindowMetrics wider = sim_->evaluate_window(layout, offsets, wide);
    EXPECT_GE(wider.pv_band_two_corner_nm2, standard.pv_band_two_corner_nm2);
    EXPECT_GE(wider.pv_band_exact_nm2, standard.pv_band_exact_nm2);
    EXPECT_GE(wider.pv_band_exact_nm2, wider.pv_band_two_corner_nm2);

    // The superset relation holds for a window NARROWER than the config's
    // dose range too (regression: the two-corner band used to be computed
    // over cfg.dose_min/dose_max regardless of the spec, which made it
    // exceed the exact band on single-dose windows).
    WindowSpec narrow = WindowSpec::standard(sim_->config());
    narrow.doses = {1.0};
    const WindowMetrics narrowed = sim_->evaluate_window(layout, offsets, narrow);
    EXPECT_GE(narrowed.pv_band_two_corner_nm2, 0.0);
    EXPECT_GE(narrowed.pv_band_exact_nm2, narrowed.pv_band_two_corner_nm2);

    // Non-finite specs are rejected before any kernel work.
    WindowSpec bad = WindowSpec::standard(sim_->config());
    bad.defocus_nm.push_back(std::nan(""));
    EXPECT_THROW(sim_->evaluate_window(layout, offsets, bad), std::invalid_argument);
    bad = WindowSpec::standard(sim_->config());
    bad.doses.push_back(std::numeric_limits<double>::infinity());
    EXPECT_THROW(sim_->evaluate_window(layout, offsets, bad), std::invalid_argument);

    // CD through window: the printed-area range covers every corner, and
    // areas grow monotonically with dose at fixed focus.
    EXPECT_GE(wider.cd_max_nm2, wider.cd_min_nm2);
    for (int f = 0; f < wide.focus_count(); ++f) {
        for (int d = 0; d + 1 < wide.dose_count(); ++d) {
            const auto& lo = wider.corners[static_cast<std::size_t>(f * wide.dose_count() + d)];
            const auto& hi =
                wider.corners[static_cast<std::size_t>(f * wide.dose_count() + d + 1)];
            EXPECT_LE(lo.printed_area_nm2, hi.printed_area_nm2)
                << "focus " << f << " dose step " << d;
        }
    }
}

TEST_F(ProcessWindowTest, OneRasterizationServesAllCorners) {
    LithoSim inc_sim(*sim_);
    const auto layout = via_layout(3, 26);
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), 3);
    const WindowSpec spec = WindowSpec::standard(sim_->config());

    // Prime the cache (one full rebuild), then sweep at unchanged offsets:
    // no rebuild, no sparse delta — the cached raster + spectrum serve all
    // six corners outright.
    (void)inc_sim.evaluate_incremental(layout, offsets);
    EXPECT_EQ(inc_sim.incremental_full_count(), 1);
    const WindowMetrics warm = inc_sim.evaluate_window_incremental(layout, offsets, spec);
    EXPECT_EQ(inc_sim.incremental_full_count(), 1);
    EXPECT_EQ(inc_sim.incremental_hit_count(), 1);

    // Move two segments: the sweep refreshes the cache through one sparse
    // delta-DFT and still never re-rasterizes the clip.
    offsets[0] += 2;
    offsets[2] -= 1;
    const WindowMetrics moved = inc_sim.evaluate_window_incremental(layout, offsets, spec);
    EXPECT_EQ(inc_sim.incremental_full_count(), 1);
    EXPECT_EQ(inc_sim.incremental_hit_count(), 2);

    // Both sweeps agree with the dense path within the documented
    // incremental tolerances.
    for (const WindowMetrics* wm : {&warm, &moved}) {
        const std::vector<int> offs =
            (wm == &warm) ? std::vector<int>(offsets.size(), 3) : offsets;
        const WindowMetrics dense = sim_->evaluate_window(layout, offs, spec);
        ASSERT_EQ(wm->corners.size(), dense.corners.size());
        for (std::size_t c = 0; c < dense.corners.size(); ++c) {
            const auto& a = wm->corners[c].metrics.epe_segment;
            const auto& b = dense.corners[c].metrics.epe_segment;
            ASSERT_EQ(a.size(), b.size());
            for (std::size_t i = 0; i < a.size(); ++i) {
                EXPECT_NEAR(a[i], b[i], kIncrementalEpeTolNm) << "corner " << c << " seg " << i;
            }
        }
        EXPECT_NEAR(wm->pv_band_exact_nm2, dense.pv_band_exact_nm2, kPvbTolNm2);
        EXPECT_NEAR(wm->worst_epe, dense.worst_epe,
                    kIncrementalEpeTolNm * static_cast<double>(layout.num_segments()));
    }

    // Interleaving: a plain evaluate() after the sweep still sees a
    // consistent cache (unchanged offsets return cached metrics that match a
    // fresh full evaluation).
    const SimMetrics after = inc_sim.evaluate_incremental(layout, offsets, {});
    const SimMetrics fresh = sim_->evaluate(layout, offsets);
    ASSERT_EQ(after.epe_segment.size(), fresh.epe_segment.size());
    for (std::size_t i = 0; i < after.epe_segment.size(); ++i) {
        EXPECT_NEAR(after.epe_segment[i], fresh.epe_segment[i], kIncrementalEpeTolNm);
    }
}

TEST_F(ProcessWindowTest, IncrementalWindowTracksDenseAcrossWalk) {
    LithoSim inc_sim(*sim_);
    const auto layout = metal_layout(24, 22);
    const int segments = layout.num_segments();
    const WindowSpec spec = WindowSpec::standard(sim_->config());
    Rng rng(91);
    std::vector<int> offsets(static_cast<std::size_t>(segments), 3);

    (void)inc_sim.evaluate_incremental(layout, offsets);
    for (int t = 0; t < 6; ++t) {
        const int moves = std::max(1, segments / 12);
        for (int j = 0; j < moves; ++j) {
            const int i = rng.uniform_int(0, segments - 1);
            offsets[static_cast<std::size_t>(i)] = std::clamp(
                offsets[static_cast<std::size_t>(i)] + rng.uniform_int(-2, 2), -15, 15);
        }
        const WindowMetrics inc = inc_sim.evaluate_window_incremental(layout, offsets, spec);
        const WindowMetrics dense = sim_->evaluate_window(layout, offsets, spec);
        ASSERT_EQ(inc.corners.size(), dense.corners.size()) << "step " << t;
        for (std::size_t c = 0; c < dense.corners.size(); ++c) {
            EXPECT_NEAR(inc.corners[c].metrics.sum_abs_epe, dense.corners[c].metrics.sum_abs_epe,
                        kIncrementalEpeTolNm * static_cast<double>(segments))
                << "step " << t << " corner " << c;
        }
        EXPECT_NEAR(inc.pv_band_exact_nm2, dense.pv_band_exact_nm2, kPvbTolNm2) << "step " << t;
    }
    EXPECT_GT(inc_sim.incremental_hit_count(), 0);
}

TEST_F(ProcessWindowTest, ExtraFocusPlaneInterpolatesKernels) {
    const auto layout = via_layout(2, 24);
    const std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), 3);

    WindowSpec spec;
    spec.doses = {0.98, 1.02};
    spec.defocus_nm = {0.0, sim_->config().defocus_nm / 2.0, sim_->config().defocus_nm};
    const WindowMetrics wm = sim_->evaluate_window(layout, offsets, spec);

    ASSERT_EQ(wm.corners.size(), 6U);
    for (const CornerResult& c : wm.corners) {
        EXPECT_TRUE(std::isfinite(c.metrics.sum_abs_epe));
        EXPECT_GT(c.printed_area_nm2, 0.0);
    }
    // Defocus blurs the image: at fixed dose, the mid plane prints between
    // (or equal to) its neighbours' areas within a pixel of slack.
    const double px2 = 16.0;
    for (int d = 0; d < 2; ++d) {
        const double best = wm.corners[static_cast<std::size_t>(d)].printed_area_nm2;
        const double mid = wm.corners[static_cast<std::size_t>(2 + d)].printed_area_nm2;
        const double far = wm.corners[static_cast<std::size_t>(4 + d)].printed_area_nm2;
        EXPECT_LE(far, mid + px2) << "dose " << d;
        EXPECT_LE(mid, best + px2) << "dose " << d;
    }
}

// ---- Golden window fixtures ------------------------------------------------

struct WindowGoldenCase {
    std::string name;
    geo::SegmentedLayout layout;
    std::vector<int> offsets;
};

std::vector<WindowGoldenCase> window_golden_cases() {
    std::vector<WindowGoldenCase> cases;
    {
        WindowGoldenCase c{"window_via3", via_layout(3, 11), {}};
        c.offsets = patterned_offsets(c.layout, 11, 5);
        cases.push_back(std::move(c));
    }
    {
        WindowGoldenCase c{"window_metal24", metal_layout(24, 12), {}};
        c.offsets = patterned_offsets(c.layout, 9, 4);
        cases.push_back(std::move(c));
    }
    return cases;
}

WindowSpec golden_window_spec(const LithoConfig& cfg) {
    WindowSpec spec;  // 2x2: the band's extreme corners
    spec.doses = {cfg.dose_min, cfg.dose_max};
    spec.defocus_nm = {0.0, cfg.defocus_nm};
    return spec;
}

std::string golden_path(const std::string& name) {
    return std::string(CAMO_GOLDEN_DIR) + "/" + name + ".json";
}

void write_window_golden(const WindowGoldenCase& c, const WindowMetrics& wm) {
    std::ofstream out(golden_path(c.name));
    ASSERT_TRUE(out) << "cannot write " << golden_path(c.name);
    out << "{\n  \"name\": \"" << c.name << "\",\n";
    out << std::fixed << std::setprecision(3);
    out << "  \"pv_band_exact_nm2\": " << wm.pv_band_exact_nm2 << ",\n";
    out << "  \"pv_band_two_corner_nm2\": " << wm.pv_band_two_corner_nm2 << ",\n";
    out << "  \"cd_min_nm2\": " << wm.cd_min_nm2 << ",\n";
    out << "  \"cd_max_nm2\": " << wm.cd_max_nm2 << ",\n";
    out << "  \"corner_sum_abs_epe\": [";
    for (std::size_t i = 0; i < wm.corners.size(); ++i) {
        out << (i ? ", " : "") << std::setprecision(6) << wm.corners[i].metrics.sum_abs_epe;
    }
    out << "],\n  \"corner_printed_area_nm2\": [";
    for (std::size_t i = 0; i < wm.corners.size(); ++i) {
        out << (i ? ", " : "") << std::setprecision(3) << wm.corners[i].printed_area_nm2;
    }
    out << "]\n}\n";
}

bool read_scalar(const std::string& text, const std::string& key, double& out) {
    const auto pos = text.find("\"" + key + "\":");
    if (pos == std::string::npos) return false;
    out = std::strtod(text.c_str() + pos + key.size() + 3, nullptr);
    return true;
}

bool read_array(const std::string& text, const std::string& key, std::vector<double>& out) {
    const auto pos = text.find("\"" + key + "\":");
    if (pos == std::string::npos) return false;
    const auto open = text.find('[', pos);
    const auto close = text.find(']', open);
    if (open == std::string::npos || close == std::string::npos) return false;
    out.clear();
    const char* p = text.c_str() + open + 1;
    const char* end = text.c_str() + close;
    while (p < end) {
        char* next = nullptr;
        const double v = std::strtod(p, &next);
        if (next == p) break;
        out.push_back(v);
        p = next;
        while (p < end && (*p == ',' || *p == ' ' || *p == '\n')) ++p;
    }
    return true;
}

// Same rationale as the incremental goldens: cross-compiler float drift
// (FMA contraction, vectorization) needs looser bounds than path-vs-path.
constexpr double kGoldenEpeTolNm = 2e-3;
constexpr double kGoldenAreaTolNm2 = 64.0;

TEST_F(ProcessWindowTest, GoldenWindowMetrics) {
    const WindowSpec spec = golden_window_spec(sim_->config());
    for (const WindowGoldenCase& c : window_golden_cases()) {
        const WindowMetrics wm = sim_->evaluate_window(c.layout, c.offsets, spec);

        if (std::getenv("CAMO_REGEN_GOLDENS") != nullptr) {
            write_window_golden(c, wm);
            continue;
        }

        std::ifstream in(golden_path(c.name));
        ASSERT_TRUE(in) << "missing golden fixture " << golden_path(c.name)
                        << " (run with CAMO_REGEN_GOLDENS=1 to create)";
        std::stringstream ss;
        ss << in.rdbuf();
        const std::string text = ss.str();

        double pv_exact = 0.0;
        double pv_two = 0.0;
        double cd_min = 0.0;
        double cd_max = 0.0;
        std::vector<double> epe;
        std::vector<double> areas;
        ASSERT_TRUE(read_scalar(text, "pv_band_exact_nm2", pv_exact)) << c.name;
        ASSERT_TRUE(read_scalar(text, "pv_band_two_corner_nm2", pv_two)) << c.name;
        ASSERT_TRUE(read_scalar(text, "cd_min_nm2", cd_min)) << c.name;
        ASSERT_TRUE(read_scalar(text, "cd_max_nm2", cd_max)) << c.name;
        ASSERT_TRUE(read_array(text, "corner_sum_abs_epe", epe)) << c.name;
        ASSERT_TRUE(read_array(text, "corner_printed_area_nm2", areas)) << c.name;

        EXPECT_NEAR(wm.pv_band_exact_nm2, pv_exact, kGoldenAreaTolNm2) << c.name;
        EXPECT_NEAR(wm.pv_band_two_corner_nm2, pv_two, kGoldenAreaTolNm2) << c.name;
        EXPECT_NEAR(wm.cd_min_nm2, cd_min, kGoldenAreaTolNm2) << c.name;
        EXPECT_NEAR(wm.cd_max_nm2, cd_max, kGoldenAreaTolNm2) << c.name;
        ASSERT_EQ(wm.corners.size(), epe.size()) << c.name;
        ASSERT_EQ(wm.corners.size(), areas.size()) << c.name;
        for (std::size_t i = 0; i < wm.corners.size(); ++i) {
            const double tol =
                kGoldenEpeTolNm * static_cast<double>(std::max<std::size_t>(1, wm.corners[i].metrics.epe.size()));
            EXPECT_NEAR(wm.corners[i].metrics.sum_abs_epe, epe[i], tol)
                << c.name << " corner " << i;
            EXPECT_NEAR(wm.corners[i].printed_area_nm2, areas[i], kGoldenAreaTolNm2)
                << c.name << " corner " << i;
        }
    }
}

}  // namespace
}  // namespace camo::litho
