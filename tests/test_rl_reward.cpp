// Property-test suite for the Eq. (3) step reward and its window-aware
// extension (ISSUE 4): boundedness, no-op neutrality, sign consistency with
// the EPE / PV-band deltas, the explicit zero-PVB guard, non-finite input
// rejection, bitwise nominal-mode equivalence with the legacy reward, the
// incremental-vs-dense window-reward equivalence, and the end-to-end
// acceptance property that worst-corner-mode optimization beats nominal
// mode on worst-corner |EPE| at an equal step budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "layout/metal_gen.hpp"
#include "layout/via_gen.hpp"
#include "litho/incremental.hpp"
#include "litho/process_window.hpp"
#include "litho/simulator.hpp"
#include "opc/objective.hpp"
#include "opc/rule_engine.hpp"
#include "rl/reward.hpp"

namespace camo::rl {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- Pure step_reward properties -------------------------------------------

TEST(StepReward, ZeroForNoOpSteps) {
    EXPECT_EQ(step_reward(0.0, 0.0, 0.0, 0.0), 0.0);
    EXPECT_EQ(step_reward(12.5, 12.5, 800.0, 800.0), 0.0);
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const double epe = rng.uniform(0.0, 50.0);
        const double pvb = rng.uniform(0.0, 5000.0);
        EXPECT_EQ(step_reward(epe, epe, pvb, pvb), 0.0) << epe << " " << pvb;
    }
}

TEST(StepReward, SignConsistentWithDeltas) {
    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
        const double epe_b = rng.uniform(0.1, 40.0);
        const double pvb_b = rng.uniform(1.0, 4000.0);
        const double improve = rng.uniform(0.01, 0.9);
        // Both terms improve -> strictly positive reward.
        EXPECT_GT(step_reward(epe_b, epe_b * (1.0 - improve), pvb_b, pvb_b * (1.0 - improve)),
                  0.0);
        // Both terms worsen -> strictly negative reward.
        EXPECT_LT(step_reward(epe_b, epe_b * (1.0 + improve), pvb_b, pvb_b * (1.0 + improve)),
                  0.0);
    }
}

TEST(StepReward, BoundedAboveByPerfectStep) {
    // epe term < 1 (the improvement is at most |EPE_t| of |EPE_t| + eps) and
    // the PV term is at most beta, so r < 1 + beta for non-negative inputs.
    Rng rng(23);
    const RewardConfig cfg;
    for (int i = 0; i < 500; ++i) {
        const double r = step_reward(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0),
                                     rng.uniform(0.0, 1e4), rng.uniform(0.0, 1e4), cfg);
        EXPECT_LT(r, 1.0 + cfg.beta);
    }
}

TEST(StepReward, BoundedBelowUnderBoundedDegradation) {
    // If one step can at most k-fold both metrics (true for bounded segment
    // moves), the reward is bounded below by (1 - k) * (1 + beta).
    Rng rng(29);
    const RewardConfig cfg;
    const double k = 3.0;
    for (int i = 0; i < 500; ++i) {
        const double epe_b = rng.uniform(0.01, 50.0);
        const double pvb_b = rng.uniform(0.5, 4000.0);
        const double r = step_reward(epe_b, epe_b * rng.uniform(0.0, k), pvb_b,
                                     pvb_b * rng.uniform(0.0, k), cfg);
        EXPECT_GE(r, (1.0 - k) * (1.0 + cfg.beta));
    }
}

TEST(StepReward, ZeroPvbGuardIsTaken) {
    // pvb_before == 0: the PV term vanishes instead of dividing by zero —
    // the reward equals the EPE term exactly, even when pvb_after > 0.
    const RewardConfig cfg;
    const double epe_term = (10.0 - 8.0) / (10.0 + cfg.epsilon);
    EXPECT_EQ(step_reward(10.0, 8.0, 0.0, 100.0), epe_term);
    EXPECT_EQ(step_reward(10.0, 8.0, 0.0, 0.0), epe_term);
    // Negative "band" (a sentinel upstream) must not produce a PV term
    // either: the guard is pvb_before > 0, not != 0.
    EXPECT_EQ(step_reward(10.0, 8.0, -1.0, 50.0), epe_term);
    EXPECT_TRUE(std::isfinite(step_reward(5.0, 5.0, 0.0, 1e9)));
}

TEST(StepReward, RejectsNonFiniteInputs) {
    const double nan = std::nan("");
    EXPECT_THROW((void)step_reward(nan, 1.0, 1.0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)step_reward(1.0, nan, 1.0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)step_reward(1.0, 1.0, nan, 1.0), std::invalid_argument);
    EXPECT_THROW((void)step_reward(1.0, 1.0, 1.0, nan), std::invalid_argument);
    EXPECT_THROW((void)step_reward(kInf, 1.0, 1.0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)step_reward(1.0, -kInf, 1.0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)step_reward(1.0, 1.0, kInf, 1.0), std::invalid_argument);
    // Degenerate configs are rejected like WindowSpec::validate rejects
    // degenerate windows.
    EXPECT_THROW((void)step_reward(1.0, 1.0, 1.0, 1.0, {.epsilon = 0.0}), std::invalid_argument);
    EXPECT_THROW((void)step_reward(1.0, 1.0, 1.0, 1.0, {.epsilon = nan}), std::invalid_argument);
    EXPECT_THROW((void)step_reward(1.0, 1.0, 1.0, 1.0, {.epsilon = 0.1, .beta = kInf}),
                 std::invalid_argument);
}

// ---- Window reward on synthetic sweeps -------------------------------------

litho::WindowMetrics synthetic_window(const std::vector<double>& corner_epe,
                                      double pv_exact, double pv_two_corner) {
    litho::WindowMetrics wm;
    wm.pv_band_exact_nm2 = pv_exact;
    wm.pv_band_two_corner_nm2 = pv_two_corner;
    for (std::size_t i = 0; i < corner_epe.size(); ++i) {
        litho::CornerResult c;
        // Corner 0 is the nominal (dose 1, best focus) corner.
        c.corner = {i == 0 ? 1.0 : 0.95 + 0.05 * static_cast<double>(i),
                    i == 0 ? 0.0 : 25.0};
        c.metrics.sum_abs_epe = corner_epe[i];
        c.metrics.epe = {corner_epe[i]};
        c.metrics.epe_segment = {corner_epe[i]};
        if (wm.worst_corner < 0 || corner_epe[i] > wm.worst_epe) {
            wm.worst_corner = static_cast<int>(i);
            wm.worst_epe = corner_epe[i];
        }
        wm.corners.push_back(std::move(c));
    }
    return wm;
}

TEST(WindowReward, NominalModeBitwiseEqualsLegacyReward) {
    Rng rng(31);
    WindowRewardConfig cfg;  // kNominal
    for (int i = 0; i < 200; ++i) {
        const double e_b = rng.uniform(0.0, 40.0);
        const double e_a = rng.uniform(0.0, 40.0);
        const double p_b = rng.uniform(0.0, 4000.0);
        const double p_a = rng.uniform(0.0, 4000.0);
        const auto before = synthetic_window({e_b, e_b * 1.7, e_b * 2.3}, p_b * 1.4, p_b);
        const auto after = synthetic_window({e_a, e_a * 1.5, e_a * 2.9}, p_a * 1.3, p_a);
        // Bitwise: the same function applied to the same doubles.
        EXPECT_EQ(window_step_reward(before, after, cfg),
                  step_reward(e_b, e_a, p_b, p_a, cfg.base))
            << e_b << " " << e_a;
    }
}

TEST(WindowReward, NominalModeFallsBackToExactBandWithoutStandardPlanes) {
    WindowRewardConfig cfg;
    const auto before = synthetic_window({10.0, 12.0}, 900.0, -1.0);
    const auto after = synthetic_window({8.0, 11.0}, 700.0, -1.0);
    EXPECT_EQ(window_step_reward(before, after, cfg),
              step_reward(10.0, 8.0, 900.0, 700.0, cfg.base));
}

TEST(WindowReward, WorstModeScoresWorstCornerAndExactBand) {
    WindowRewardConfig cfg;
    cfg.mode = RewardMode::kWorstCorner;
    const auto before = synthetic_window({5.0, 20.0, 8.0}, 1000.0, 600.0);
    const auto after = synthetic_window({5.0, 14.0, 8.0}, 900.0, 600.0);
    EXPECT_EQ(window_objective_epe(before, cfg), 20.0);
    EXPECT_EQ(window_objective_pvb(before, cfg), 1000.0);
    EXPECT_EQ(window_step_reward(before, after, cfg),
              step_reward(20.0, 14.0, 1000.0, 900.0, cfg.base));
    // Improving only the worst corner is rewarded even with the nominal
    // corner (and the two-corner band) unchanged.
    EXPECT_GT(window_step_reward(before, after, cfg), 0.0);
    // ... and is invisible to the nominal-mode reward.
    WindowRewardConfig nominal;
    EXPECT_EQ(window_step_reward(before, after, nominal),
              step_reward(5.0, 5.0, 600.0, 600.0, nominal.base));
}

TEST(WindowReward, WeightedModeAveragesCorners) {
    WindowRewardConfig cfg;
    cfg.mode = RewardMode::kWeightedCorner;
    const auto wm = synthetic_window({6.0, 12.0, 18.0}, 1200.0, 800.0);
    // Uniform weights = plain mean.
    EXPECT_DOUBLE_EQ(window_objective_epe(wm, cfg), 12.0);
    EXPECT_EQ(window_objective_pvb(wm, cfg), 1200.0);
    // Explicit weights.
    cfg.corner_weights = {1.0, 0.0, 3.0};
    EXPECT_DOUBLE_EQ(window_objective_epe(wm, cfg), (6.0 + 3.0 * 18.0) / 4.0);
}

TEST(WindowReward, ValidatesModeInputs) {
    WindowRewardConfig cfg;
    cfg.mode = RewardMode::kWeightedCorner;
    const auto wm = synthetic_window({6.0, 12.0}, 100.0, 80.0);
    cfg.corner_weights = {1.0};  // size mismatch
    EXPECT_THROW((void)window_objective_epe(wm, cfg), std::invalid_argument);
    cfg.corner_weights = {1.0, -2.0};  // negative
    EXPECT_THROW((void)window_objective_epe(wm, cfg), std::invalid_argument);
    cfg.corner_weights = {0.0, 0.0};  // all zero
    EXPECT_THROW((void)window_objective_epe(wm, cfg), std::invalid_argument);
    cfg.corner_weights = {1.0, std::nan("")};  // non-finite
    EXPECT_THROW((void)window_objective_epe(wm, cfg), std::invalid_argument);

    // Nominal mode demands the nominal corner.
    WindowRewardConfig nominal;
    litho::WindowMetrics off_nominal = synthetic_window({6.0, 12.0}, 100.0, 80.0);
    off_nominal.corners[0].corner.dose = 0.95;  // no (dose 1, best focus) corner left
    EXPECT_THROW((void)window_objective_epe(off_nominal, nominal), std::invalid_argument);

    // The objective view follows the same rules.
    EXPECT_THROW((void)opc::objective_view(off_nominal, nominal), std::invalid_argument);
    const litho::SimMetrics worst_view =
        opc::objective_view(wm, {.mode = RewardMode::kWorstCorner});
    EXPECT_EQ(worst_view.sum_abs_epe, 12.0);
    EXPECT_EQ(worst_view.pvband_nm2, 100.0);
}

// ---- Simulator-backed suites -----------------------------------------------

class WindowRewardSimTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        litho::LithoConfig cfg;
        cfg.grid = 256;
        cfg.pixel_nm = 4.0;
        cfg.kernels_nominal = 6;
        cfg.kernels_defocus = 5;
        cfg.cache_dir = "";  // tests never touch the on-disk cache
        sim_ = new litho::LithoSim(cfg);
    }
    static void TearDownTestSuite() {
        delete sim_;
        sim_ = nullptr;
    }
    static litho::LithoSim* sim_;
};

litho::LithoSim* WindowRewardSimTest::sim_ = nullptr;

// The via3 / metal24 fixtures of the process-window golden suite.
geo::SegmentedLayout via3_layout() {
    Rng rng(11);
    layout::ViaGenOptions opt;
    opt.clip_nm = 1000;
    opt.margin_nm = 250;
    opt.min_spacing_nm = 200;
    return geo::SegmentedLayout(layout::generate_via_clip(3, rng, opt),
                                {geo::FragmentStyle::kVia, 60}, {}, opt.clip_nm);
}

geo::SegmentedLayout metal24_layout() {
    Rng rng(12);
    layout::MetalGenOptions opt;
    opt.clip_nm = 1000;
    opt.margin_nm = 120;
    return geo::SegmentedLayout(layout::generate_metal_clip(24, rng, opt),
                                {geo::FragmentStyle::kMetal, 60}, {}, opt.clip_nm);
}

TEST_F(WindowRewardSimTest, IncrementalRewardMatchesDenseWithinContractEpsilon) {
    const litho::WindowSpec spec = litho::WindowSpec::standard(sim_->config());
    WindowRewardConfig cfg;
    cfg.mode = RewardMode::kWorstCorner;

    int step_count = 0;
    for (const geo::SegmentedLayout& layout : {via3_layout(), metal24_layout()}) {
        litho::LithoSim inc_sim(*sim_);
        const int segments = layout.num_segments();
        std::vector<int> offsets(static_cast<std::size_t>(segments), 3);

        litho::WindowMetrics inc_prev = inc_sim.evaluate_window_prime(layout, offsets, spec);
        litho::WindowMetrics dense_prev = sim_->evaluate_window(layout, offsets, spec);
        Rng rng(97 + segments);

        for (int t = 0; t < 5; ++t) {
            // Random small move on ~8% of the segments.
            const int moves = std::max(1, segments / 12);
            for (int j = 0; j < moves; ++j) {
                const int i = rng.uniform_int(0, segments - 1);
                offsets[static_cast<std::size_t>(i)] = std::clamp(
                    offsets[static_cast<std::size_t>(i)] + rng.uniform_int(-2, 2), -15, 15);
            }
            const litho::WindowMetrics inc =
                inc_sim.evaluate_window_incremental(layout, offsets, spec);
            const litho::WindowMetrics dense = sim_->evaluate_window(layout, offsets, spec);

            const double r_inc = window_step_reward(inc_prev, inc, cfg);
            const double r_dense = window_step_reward(dense_prev, dense, cfg);

            // Propagate the documented incremental-contract tolerances
            // (litho/incremental.hpp) through Eq. (3): the EPE term divides
            // by (|EPE_t| + eps), the PV term by PVB_t.
            const double tol_epe = litho::kIncrementalEpeTolNm *
                                   static_cast<double>(inc_prev.corners[0].metrics.epe.size());
            const double tol_pvb =
                litho::kIncrementalPvbPixelSlack * 16.0;  // 4 nm pixels
            const double epe_b = std::min(window_objective_epe(inc_prev, cfg),
                                          window_objective_epe(dense_prev, cfg));
            const double pvb_b = std::min(window_objective_pvb(inc_prev, cfg),
                                          window_objective_pvb(dense_prev, cfg));
            double bound = 2.0 * tol_epe / (epe_b + cfg.base.epsilon);
            if (pvb_b > 0.0) bound += 2.0 * cfg.base.beta * tol_pvb / pvb_b;
            EXPECT_NEAR(r_inc, r_dense, 4.0 * bound + 1e-9)
                << "segments " << segments << " step " << t;

            inc_prev = inc;
            dense_prev = dense;
            ++step_count;
        }
        EXPECT_GT(inc_sim.incremental_hit_count(), 0);
    }
    EXPECT_EQ(step_count, 10);
}

TEST_F(WindowRewardSimTest, WorstCornerModeBeatsNominalAtEqualBudget) {
    // The acceptance property: on via3 and metal24, worst-corner-mode
    // optimization reaches a lower worst-corner |EPE| than nominal-mode at
    // an equal step budget. Fixed iteration count, no early exit, the same
    // rule engine — only the objective differs.
    const litho::WindowSpec spec = litho::WindowSpec::standard(sim_->config());
    struct Fixture {
        const char* name;
        geo::SegmentedLayout layout;
        int bias;
    };
    const Fixture fixtures[] = {{"via3", via3_layout(), 3}, {"metal24", metal24_layout(), 0}};

    for (const Fixture& f : fixtures) {
        opc::OpcOptions opt;
        opt.max_iterations = 10;
        opt.initial_bias_nm = f.bias;

        opc::RuleEngine engine({.gain = 0.6, .max_step_nm = 2, .early_exit = false});

        litho::LithoSim nominal_sim(*sim_);
        opt.objective = RewardMode::kNominal;
        const opc::EngineResult nominal_res = engine.optimize(f.layout, nominal_sim, opt);
        EXPECT_FALSE(nominal_res.final_window.has_value()) << f.name;

        litho::LithoSim worst_sim(*sim_);
        opt.objective = RewardMode::kWorstCorner;
        const opc::EngineResult worst_res = engine.optimize(f.layout, worst_sim, opt);
        ASSERT_TRUE(worst_res.final_window.has_value()) << f.name;
        EXPECT_EQ(worst_res.iterations, nominal_res.iterations) << f.name;

        // Judge both final masks through the same dense sweep.
        const litho::WindowMetrics judged_nominal =
            sim_->evaluate_window(f.layout, nominal_res.final_offsets, spec);
        const litho::WindowMetrics judged_worst =
            sim_->evaluate_window(f.layout, worst_res.final_offsets, spec);
        EXPECT_LT(judged_worst.worst_epe, judged_nominal.worst_epe) << f.name;

        // The engine's own view agrees with the dense judgment within the
        // incremental contract.
        EXPECT_NEAR(worst_res.final_metrics.sum_abs_epe, judged_worst.worst_epe,
                    litho::kIncrementalEpeTolNm *
                        static_cast<double>(judged_worst.corners[0].metrics.epe.size()))
            << f.name;
    }
}

TEST_F(WindowRewardSimTest, NominalObjectiveIsBitIdenticalToLegacyLoop) {
    // The WindowObjective pass-through: a nominal-mode run must reproduce
    // the pre-window engine loop exactly (same evaluate_incremental calls,
    // same metrics), so downstream nominal results cannot drift.
    const geo::SegmentedLayout layout = via3_layout();
    opc::OpcOptions opt;
    opt.max_iterations = 6;
    opt.initial_bias_nm = 3;
    opc::RuleEngine engine({.gain = 0.6, .max_step_nm = 2, .early_exit = false});

    litho::LithoSim sim_a(*sim_);
    const opc::EngineResult res = engine.optimize(layout, sim_a, opt);

    // Hand-rolled legacy loop: prime + dirty-set evaluations, same protocol.
    litho::LithoSim sim_b(*sim_);
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), 3);
    litho::SimMetrics m = sim_b.evaluate_incremental(layout, offsets);
    EXPECT_EQ(res.epe_history.front(), m.sum_abs_epe);
    for (int it = 0; it < opt.max_iterations; ++it) {
        std::vector<int> dirty;
        for (std::size_t i = 0; i < offsets.size(); ++i) {
            const double desired = -0.6 * m.epe_segment[i];
            const int step = std::clamp(static_cast<int>(std::lround(desired)), -2, 2);
            const int next = std::clamp(offsets[i] + step, -opt.max_total_offset_nm,
                                        opt.max_total_offset_nm);
            if (next != offsets[i]) {
                offsets[i] = next;
                dirty.push_back(static_cast<int>(i));
            }
        }
        m = sim_b.evaluate_incremental(layout, offsets, dirty);
        EXPECT_EQ(res.epe_history[static_cast<std::size_t>(it) + 1], m.sum_abs_epe) << it;
        EXPECT_EQ(res.pvb_history[static_cast<std::size_t>(it) + 1], m.pvband_nm2) << it;
    }
    EXPECT_EQ(res.final_offsets, offsets);
    EXPECT_EQ(sim_a.evaluate_count(), sim_b.evaluate_count());
}

}  // namespace
}  // namespace camo::rl
