// Packed trajectory store suite (PR 10).
//
// Three layers of coverage:
//  - format: round-trip fuzz over random trajectories (featureless and
//    featureful), state dedupe, and a corrupt-file corpus in the spirit of
//    the GDS parser corpus — every truncated / torn / bit-flipped / ragged
//    variant must fail with a typed TrajStoreError, never misread.
//  - determinism: collect_teacher_data's store sink writes byte-identical
//    files at 1/2/8 train workers.
//  - replay: phase-1 training streamed from the store produces weights
//    byte-identical to in-memory training on the same collection.
//
// Corrupt-corpus technique: structural validators sit BEHIND the checksum
// gate, so targeted corruptions re-seal the footer hash (store_payload_hash
// is public exactly for this) after patching bytes — proving the validators
// themselves catch the damage, not just the checksum.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/camo.hpp"
#include "core/experiment.hpp"
#include "layout/via_gen.hpp"
#include "litho/simulator.hpp"
#include "rl/trajstore.hpp"

namespace camo::rl {
namespace {

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Recompute the footer payload hash after a deliberate corruption, so the
/// reader's structural validators (not the checksum) are what reject it.
void reseal(std::string& bytes) {
    ASSERT_GE(bytes.size(), sizeof(StoreFooter));
    const std::size_t payload = bytes.size() - sizeof(StoreFooter);
    const std::uint64_t h = store_payload_hash({bytes.data(), payload});
    std::memcpy(bytes.data() + payload + offsetof(StoreFooter, payload_hash), &h, sizeof h);
}

void expect_rejected(const std::string& path, const std::string& bytes,
                     const std::string& why_substr) {
    write_file(path, bytes);
    try {
        TrajStoreReader reader(path);
        FAIL() << "expected TrajStoreError (" << why_substr << ")";
    } catch (const TrajStoreError& e) {
        EXPECT_NE(std::string(e.what()).find(why_substr), std::string::npos)
            << "got: " << e.what();
    }
}

/// Deterministic random trajectory; `segments` fixes the per-step width
/// (one state per step, offsets drawn in the teacher's plausible range).
Trajectory random_trajectory(Rng& rng, int clip_index, int segments, int steps) {
    Trajectory t;
    t.clip_index = clip_index;
    t.initial_bias_nm = static_cast<int>(rng.uniform_int(0, 6)) - 3;
    t.final_sum_abs_epe = rng.uniform(0.0, 1.0);
    t.final_pvband = rng.uniform(0.0, 1.0);
    t.final_worst_epe = rng.uniform(0.0, 1.0);
    t.final_pv_band_exact = rng.uniform(0.0, 1.0);
    const int corners = static_cast<int>(rng.uniform_int(0, 3));
    for (int c = 0; c < corners; ++c) t.final_corner_epe.push_back(rng.uniform(0.0, 1.0));
    for (int s = 0; s < steps; ++s) {
        StepRecord rec;
        for (int i = 0; i < segments; ++i) {
            rec.offsets_before.push_back(static_cast<int>(rng.uniform_int(0, 16)) - 8);
            rec.actions.push_back(static_cast<int>(rng.uniform_int(0, kNumActions - 1)));
        }
        rec.sum_abs_epe_before = rng.uniform(0.0, 1.0);
        rec.pvband_before = rng.uniform(0.0, 1.0);
        rec.worst_epe_before = rng.uniform(0.0, 1.0);
        rec.pv_band_exact_before = rng.uniform(0.0, 1.0);
        for (int c = 0; c < corners; ++c) rec.corner_epe_before.push_back(rng.uniform(0.0, 1.0));
        t.steps.push_back(std::move(rec));
    }
    return t;
}

void expect_same_trajectory(const Trajectory& a, const Trajectory& b) {
    EXPECT_EQ(a.clip_index, b.clip_index);
    EXPECT_EQ(a.initial_bias_nm, b.initial_bias_nm);
    EXPECT_EQ(a.final_sum_abs_epe, b.final_sum_abs_epe);
    EXPECT_EQ(a.final_pvband, b.final_pvband);
    EXPECT_EQ(a.final_worst_epe, b.final_worst_epe);
    EXPECT_EQ(a.final_pv_band_exact, b.final_pv_band_exact);
    EXPECT_EQ(a.final_corner_epe, b.final_corner_epe);
    ASSERT_EQ(a.steps.size(), b.steps.size());
    for (std::size_t s = 0; s < a.steps.size(); ++s) {
        EXPECT_EQ(a.steps[s].offsets_before, b.steps[s].offsets_before);
        EXPECT_EQ(a.steps[s].actions, b.steps[s].actions);
        EXPECT_EQ(a.steps[s].sum_abs_epe_before, b.steps[s].sum_abs_epe_before);
        EXPECT_EQ(a.steps[s].pvband_before, b.steps[s].pvband_before);
        EXPECT_EQ(a.steps[s].worst_epe_before, b.steps[s].worst_epe_before);
        EXPECT_EQ(a.steps[s].pv_band_exact_before, b.steps[s].pv_band_exact_before);
        EXPECT_EQ(a.steps[s].corner_epe_before, b.steps[s].corner_epe_before);
    }
}

// ---- Format: round trip, dedupe, corruption --------------------------------

TEST(TrajStore, RoundTripFuzzFeatureless) {
    const std::string path = temp_path("trajstore_fuzz.ctrj");
    Rng rng(101);
    for (int round = 0; round < 5; ++round) {
        TrajStoreWriter writer(path, 77);
        std::vector<Trajectory> ref;
        const int count = 1 + static_cast<int>(rng.uniform_int(0, 5));
        for (int i = 0; i < count; ++i) {
            const int segments = static_cast<int>(rng.uniform_int(0, 8));  // 0 is legal
            const int steps = static_cast<int>(rng.uniform_int(0, 4));
            ref.push_back(random_trajectory(rng, i, segments, steps));
            writer.append(ref.back());
        }
        writer.flush();

        TrajStoreReader reader(path);
        EXPECT_EQ(reader.dataset_tag(), 77U);
        EXPECT_EQ(reader.feature_numel(), 0U);
        ASSERT_EQ(reader.traj_count(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            expect_same_trajectory(ref[i], reader.decode(i));
        }
    }
    std::remove(path.c_str());
}

TEST(TrajStore, RoundTripWithFeaturesIsExact) {
    const std::string path = temp_path("trajstore_feat.ctrj");
    Rng rng(102);
    const int segments = 3;
    Trajectory t = random_trajectory(rng, 0, segments, 2);
    std::vector<std::vector<nn::Tensor>> feats(t.steps.size());
    for (auto& step_feats : feats) {
        for (int i = 0; i < segments; ++i) {
            nn::Tensor f({2, 4, 4});
            for (std::size_t k = 0; k < f.numel(); ++k) {
                f.data()[k] = static_cast<float>(rng.uniform(0.0, 1.0));
            }
            step_feats.push_back(std::move(f));
        }
    }
    TrajStoreWriter writer(path);
    std::vector<std::span<const nn::Tensor>> spans(feats.begin(), feats.end());
    writer.append(t, spans);
    writer.flush();

    TrajStoreReader reader(path);
    EXPECT_EQ(reader.feature_dims(), (std::array<std::uint32_t, 3>{2, 4, 4}));
    EXPECT_EQ(reader.feature_numel(), 32U);
    expect_same_trajectory(t, reader.decode(0));
    for (std::size_t s = 0; s < t.steps.size(); ++s) {
        const auto view = reader.state(reader.step(s).state_id);
        ASSERT_EQ(view.features.size(), segments * reader.feature_numel());
        for (int i = 0; i < segments; ++i) {
            // Feature floats must come back bit-exact — replay determinism
            // depends on it.
            EXPECT_EQ(std::memcmp(view.features.data() + i * reader.feature_numel(),
                                  feats[s][static_cast<std::size_t>(i)].data().data(),
                                  reader.feature_numel() * sizeof(float)),
                      0);
        }
    }
    std::remove(path.c_str());
}

TEST(TrajStore, DedupesRepeatedStates) {
    const std::string path = temp_path("trajstore_dedupe.ctrj");
    Trajectory t;
    t.clip_index = 4;
    for (int s = 0; s < 6; ++s) {
        StepRecord rec;
        rec.offsets_before = {1, -2, 3};  // identical state every step
        rec.actions = {0, 2, 4};
        t.steps.push_back(rec);
    }
    // A second trajectory revisiting the same offsets on the same clip.
    TrajStoreWriter writer(path);
    writer.append(t);
    writer.append(t);
    writer.flush();

    EXPECT_EQ(writer.steps(), 12U);
    EXPECT_EQ(writer.states(), 1U);
    EXPECT_EQ(writer.dedupe_hits(), 11U);

    TrajStoreReader reader(path);
    EXPECT_EQ(reader.state_count(), 1U);
    expect_same_trajectory(t, reader.decode(0));
    expect_same_trajectory(t, reader.decode(1));

    // Same offsets on a DIFFERENT clip is a different state.
    Trajectory other = t;
    other.clip_index = 5;
    TrajStoreWriter writer2(path);
    writer2.append(t);
    writer2.append(other);
    writer2.flush();
    EXPECT_EQ(writer2.states(), 2U);
    std::remove(path.c_str());
}

TEST(TrajStore, WriterRejectsMalformedInputWithoutMutating) {
    const std::string path = temp_path("trajstore_reject.ctrj");
    TrajStoreWriter writer(path);
    Trajectory bad;
    bad.clip_index = 0;
    StepRecord rec;
    rec.offsets_before = {1, 2};
    rec.actions = {0};  // length mismatch
    bad.steps.push_back(rec);
    EXPECT_THROW(writer.append(bad), std::invalid_argument);

    bad.steps[0].actions = {0, 9};  // action out of range
    EXPECT_THROW(writer.append(bad), std::invalid_argument);

    bad.steps[0].actions = {0, 1};
    std::vector<nn::Tensor> one_feat;
    one_feat.emplace_back(std::vector<int>{1, 2, 2});
    const std::vector<std::span<const nn::Tensor>> spans = {one_feat};  // 1 != 2 segments
    EXPECT_THROW(writer.append(bad, spans), std::invalid_argument);

    // Append is transactional: the failed calls above must not have interned
    // states or steps, so a good append still round-trips from pristine.
    EXPECT_EQ(writer.trajectories(), 0U);
    EXPECT_EQ(writer.steps(), 0U);
    EXPECT_EQ(writer.states(), 0U);
    writer.append(bad);  // now well-formed and featureless
    writer.flush();
    TrajStoreReader reader(path);
    EXPECT_EQ(reader.traj_count(), 1U);
    expect_same_trajectory(bad, reader.decode(0));
    std::remove(path.c_str());
}

TEST(TrajStore, CorruptCorpusIsRejectedTyped) {
    const std::string path = temp_path("trajstore_corrupt.ctrj");
    Rng rng(103);
    TrajStoreWriter writer(path, 9);
    for (int i = 0; i < 3; ++i) writer.append(random_trajectory(rng, i, 4, 3));
    writer.flush();
    const std::string good = read_file(path);
    ASSERT_GT(good.size(), sizeof(StoreHeader) + sizeof(StoreFooter));
    {  // sanity: the pristine file opens
        TrajStoreReader reader(path);
        EXPECT_EQ(reader.traj_count(), 3U);
    }

    // Truncated header: too small to even hold header + footer.
    expect_rejected(path, good.substr(0, 40), "truncated header");

    // Torn tail: a flush that lost its last bytes.
    expect_rejected(path, good.substr(0, good.size() - 7), "torn tail");

    // Trailing bytes: two stores concatenated.
    expect_rejected(path, good + good, "trailing bytes");

    // Bad magic / unsupported version.
    std::string bad = good;
    bad[0] = 'X';
    expect_rejected(path, bad, "bad magic");
    bad = good;
    const std::uint32_t v99 = 99;
    std::memcpy(bad.data() + offsetof(StoreHeader, version), &v99, sizeof v99);
    expect_rejected(path, bad, "unsupported version");

    // Overwritten end marker (atomic-rename contract violated out-of-band).
    bad = good;
    bad[good.size() - sizeof(StoreFooter)] = '\0';
    expect_rejected(path, bad, "torn tail: bad end marker");

    // A flipped payload bit fails the checksum.
    bad = good;
    bad[sizeof(StoreHeader) + 11] ^= 0x20;
    expect_rejected(path, bad, "payload checksum mismatch");

    // ---- Structural corruption behind a re-sealed checksum ----

    // Ragged trajectory: step range overlaps its neighbour.
    bad = good;
    const std::uint64_t begin7 = 7;
    std::memcpy(bad.data() + sizeof(StoreHeader) + offsetof(PackedTraj, step_begin), &begin7,
                sizeof begin7);
    reseal(bad);
    expect_rejected(path, bad, "ragged trajectory");

    // Ragged step: actions_pos points past the u8 heap.
    bad = good;
    const std::size_t steps_base = sizeof(StoreHeader) + 3 * sizeof(PackedTraj);
    const std::uint64_t huge = 1U << 20;
    std::memcpy(bad.data() + steps_base + offsetof(PackedStep, actions_pos), &huge, sizeof huge);
    reseal(bad);
    expect_rejected(path, bad, "ragged step");

    // Ragged step: state id beyond the state table.
    bad = good;
    std::memcpy(bad.data() + steps_base + offsetof(PackedStep, state_id), &huge, sizeof huge);
    reseal(bad);
    expect_rejected(path, bad, "ragged step: state id out of range");

    // Ragged state: offsets beyond the i32 heap.
    bad = good;
    const std::size_t states_base = steps_base + 9 * sizeof(PackedStep);
    std::memcpy(bad.data() + states_base + offsetof(PackedState, offsets_pos), &huge, sizeof huge);
    reseal(bad);
    expect_rejected(path, bad, "ragged state");

    // Dedupe index mismatch: an offset value no longer matches the state's
    // stored key hash (bit rot the checksum was re-sealed over). The i32
    // heap sits right before the u8 heap and the footer.
    bad = good;
    StoreHeader h{};
    std::memcpy(&h, good.data(), sizeof h);
    ASSERT_EQ(h.u8_count, 9U * 4U);  // 9 steps x 4 segments
    const std::size_t i32_off = good.size() - sizeof(StoreFooter) - h.u8_count -
                                h.i32_count * sizeof(std::int32_t);
    std::int32_t off0 = 0;
    std::memcpy(&off0, bad.data() + i32_off, sizeof off0);
    off0 += 1;
    std::memcpy(bad.data() + i32_off, &off0, sizeof off0);
    reseal(bad);
    expect_rejected(path, bad, "dedupe index mismatch");

    std::remove(path.c_str());
}

// ---- Determinism: collection sink and replay training ----------------------

litho::LithoConfig test_litho_config() {
    litho::LithoConfig cfg;
    cfg.grid = 256;
    cfg.pixel_nm = 4.0;
    cfg.kernels_nominal = 6;
    cfg.kernels_defocus = 5;
    cfg.cache_dir = "";  // tests never touch the on-disk cache
    return cfg;
}

std::vector<geo::SegmentedLayout> small_via_clips(int count) {
    layout::ViaGenOptions gen;
    gen.clip_nm = 1000;
    gen.margin_nm = 200;
    gen.min_spacing_nm = 120;
    return core::fragment_via_clips(layout::via_batch_set(7, count, gen));
}

core::CamoConfig tiny_config() {
    core::CamoConfig cfg;
    cfg.policy.squish_size = 16;
    cfg.policy.embed_dim = 32;
    cfg.policy.rnn_hidden = 16;
    cfg.policy.rnn_layers = 2;
    cfg.policy.conv_base = 4;
    cfg.squish.size = 16;
    cfg.squish.window_nm = 500;
    cfg.phase1_epochs = 2;
    cfg.phase1_batch = 3;
    cfg.teacher_steps = 2;
    cfg.teacher_biases = {3, 0};
    cfg.phase2_episodes = 0;
    cfg.seed = 5;
    return cfg;
}

opc::OpcOptions short_opc_options() {
    opc::OpcOptions opt;
    opt.max_iterations = 2;
    opt.initial_bias_nm = 3;
    return opt;
}

std::string collect_to_store(int train_workers, const std::string& name) {
    const std::string path = temp_path(name);
    core::CamoConfig cfg = tiny_config();
    cfg.train_workers = train_workers;
    core::CamoEngine engine(cfg);
    litho::LithoSim sim(test_litho_config());
    TrajStoreWriter writer(path, 1234);
    engine.collect_teacher_data(small_via_clips(3), sim, short_opc_options(), &writer);
    return path;
}

TEST(TrajStoreDeterminism, StoreBytesIndependentOfWorkerCount) {
    const std::string p1 = collect_to_store(1, "trajstore_w1.ctrj");
    const std::string p2 = collect_to_store(2, "trajstore_w2.ctrj");
    const std::string p8 = collect_to_store(8, "trajstore_w8.ctrj");
    const std::string b1 = read_file(p1);
    ASSERT_FALSE(b1.empty());
    EXPECT_EQ(b1, read_file(p2));
    EXPECT_EQ(b1, read_file(p8));
    std::remove(p1.c_str());
    std::remove(p2.c_str());
    std::remove(p8.c_str());
}

TEST(TrajStoreDeterminism, StoreMatchesInMemoryDataset) {
    const std::string path = temp_path("trajstore_match.ctrj");
    core::CamoEngine engine(tiny_config());
    litho::LithoSim sim(test_litho_config());
    const auto clips = small_via_clips(3);
    TrajStoreWriter writer(path);
    const core::Phase1Dataset data =
        engine.collect_teacher_data(clips, sim, short_opc_options(), &writer);

    TrajStoreReader reader(path);
    ASSERT_EQ(reader.traj_count(), data.trajectories.size());
    std::uint64_t steps = 0;
    for (std::size_t i = 0; i < data.trajectories.size(); ++i) {
        expect_same_trajectory(data.trajectories[i], reader.decode(i));
        steps += data.trajectories[i].steps.size();
    }
    // Sample order == step order: the replay path walks samples exactly as
    // the in-memory dataset laid them out.
    EXPECT_EQ(reader.step_count(), steps);
    EXPECT_EQ(reader.step_count(), data.samples.size());
    EXPECT_GT(reader.state_count(), 0U);
    std::remove(path.c_str());
}

TEST(TrajStoreDeterminism, ReplayWeightsByteIdenticalToInMemory) {
    const std::string store_path = temp_path("trajstore_replay.ctrj");
    const auto clips = small_via_clips(3);
    litho::LithoSim sim(test_litho_config());

    // Path A: classic collect-and-train, 4 phase-1 epochs.
    core::CamoEngine mem_engine(tiny_config());
    TrajStoreWriter writer(store_path);
    const core::Phase1Dataset data =
        mem_engine.collect_teacher_data(clips, sim, short_opc_options(), &writer);
    for (int e = 0; e < 4; ++e) mem_engine.run_phase1_epoch(data);

    // Path B: fresh engine, replay the same epochs from the mapped store.
    core::CamoEngine replay_engine(tiny_config());
    TrajStoreReader reader(store_path);
    const core::Phase1Replay replay = replay_engine.make_phase1_replay(reader, clips);
    double replay_loss = 0.0;
    for (int e = 0; e < 4; ++e) replay_loss = replay_engine.run_phase1_epoch(replay);
    EXPECT_GT(replay_loss, 0.0);

    const std::string mem_w = temp_path("trajstore_mem_w.bin");
    const std::string rep_w = temp_path("trajstore_rep_w.bin");
    mem_engine.save_weights(mem_w);
    replay_engine.save_weights(rep_w);
    const std::string a = read_file(mem_w);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, read_file(rep_w)) << "replay training diverged from in-memory training";

    std::remove(store_path.c_str());
    std::remove(mem_w.c_str());
    std::remove(rep_w.c_str());
}

TEST(TrajStoreDeterminism, MakeReplayValidatesStoreAgainstClips) {
    const std::string path = temp_path("trajstore_validate.ctrj");
    const auto clips = small_via_clips(3);
    core::CamoEngine engine(tiny_config());
    litho::LithoSim sim(test_litho_config());
    TrajStoreWriter writer(path);
    engine.collect_teacher_data(clips, sim, short_opc_options(), &writer);
    TrajStoreReader reader(path);

    // Fewer clips than the store references.
    const std::vector<geo::SegmentedLayout> too_few(clips.begin(), clips.begin() + 1);
    EXPECT_THROW(engine.make_phase1_replay(reader, too_few), std::invalid_argument);

    // A featureless store cannot feed phase-1 replay.
    const std::string bare_path = temp_path("trajstore_bare.ctrj");
    TrajStoreWriter bare(bare_path);
    Rng rng(7);
    bare.append(random_trajectory(rng, 0, 2, 1));
    bare.flush();
    TrajStoreReader bare_reader(bare_path);
    EXPECT_THROW(engine.make_phase1_replay(bare_reader, clips), std::invalid_argument);

    // Squish-size mismatch between store and engine config.
    core::CamoConfig other_cfg = tiny_config();
    other_cfg.policy.squish_size = 32;
    other_cfg.squish.size = 32;
    core::CamoEngine other(other_cfg);
    EXPECT_THROW(other.make_phase1_replay(reader, clips), std::invalid_argument);

    std::remove(path.c_str());
    std::remove(bare_path.c_str());
}

}  // namespace
}  // namespace camo::rl
