// Telemetry layer suite: registry correctness under concurrency, histogram
// bucket edges, JSON export well-formedness (parsed back by a minimal JSON
// reader), disabled-mode no-ops, and — the hard contract — bit-identical
// batch results and training weights with telemetry on vs off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/file_io.hpp"
#include "core/camo.hpp"
#include "core/experiment.hpp"
#include "layout/via_gen.hpp"
#include "litho/simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "runtime/batch.hpp"

namespace camo::obs {
namespace {

// ---- Minimal JSON reader (enough to validate the exporters). -------------

struct JsonValue {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;

    const JsonValue& at(const std::string& key) const {
        auto it = obj.find(key);
        if (it == obj.end()) throw std::runtime_error("missing key: " + key);
        return it->second;
    }
    bool has(const std::string& key) const { return obj.count(key) != 0; }
};

class JsonParser {
public:
    explicit JsonParser(const std::string& text) : s_(text) {}

    JsonValue parse() {
        JsonValue v = value();
        ws();
        if (pos_ != s_.size()) throw std::runtime_error("trailing characters");
        return v;
    }

private:
    void ws() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    char peek() {
        if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
        return s_[pos_];
    }
    void expect(char c) {
        if (peek() != c) throw std::runtime_error(std::string("expected ") + c);
        ++pos_;
    }

    JsonValue value() {
        ws();
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': return string_value();
            case 't':
            case 'f': return boolean();
            case 'n': return null();
            default: return number();
        }
    }

    JsonValue object() {
        JsonValue v;
        v.kind = JsonValue::Kind::kObject;
        expect('{');
        ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            ws();
            JsonValue key = string_value();
            ws();
            expect(':');
            v.obj.emplace(key.str, value());
            ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue array() {
        JsonValue v;
        v.kind = JsonValue::Kind::kArray;
        expect('[');
        ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.arr.push_back(value());
            ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue string_value() {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        expect('"');
        while (peek() != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                const char esc = s_[pos_++];
                switch (esc) {
                    case '"': c = '"'; break;
                    case '\\': c = '\\'; break;
                    case 'n': c = '\n'; break;
                    case 't': c = '\t'; break;
                    case 'u': pos_ += 4; c = '?'; break;
                    default: throw std::runtime_error("bad escape");
                }
            }
            v.str += c;
        }
        ++pos_;
        return v;
    }

    JsonValue boolean() {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        if (s_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
        } else {
            throw std::runtime_error("bad literal");
        }
        return v;
    }

    JsonValue null() {
        if (s_.compare(pos_, 4, "null") != 0) throw std::runtime_error("bad literal");
        pos_ += 4;
        return JsonValue{};
    }

    JsonValue number() {
        JsonValue v;
        v.kind = JsonValue::Kind::kNumber;
        std::size_t used = 0;
        v.number = std::stod(s_.substr(pos_), &used);
        if (used == 0) throw std::runtime_error("bad number");
        pos_ += used;
        return v;
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

// ---- Shared fixtures. ----------------------------------------------------

litho::LithoConfig test_litho_config() {
    litho::LithoConfig cfg;
    cfg.grid = 256;
    cfg.pixel_nm = 4.0;
    cfg.kernels_nominal = 6;
    cfg.kernels_defocus = 5;
    cfg.cache_dir = "";  // tests never touch the on-disk cache
    return cfg;
}

std::vector<geo::SegmentedLayout> test_clips(int count) {
    layout::ViaGenOptions gen;
    gen.clip_nm = 1000;
    gen.margin_nm = 200;
    gen.min_spacing_nm = 120;
    return core::fragment_via_clips(layout::via_batch_set(7, count, gen));
}

opc::OpcOptions test_opc_options() {
    opc::OpcOptions opt;
    opt.max_iterations = 3;
    opt.initial_bias_nm = 3;
    return opt;
}

runtime::BatchOptions batch_options(int threads) {
    runtime::BatchOptions opt;
    opt.threads = threads;
    opt.seed = 7;
    opt.opc = test_opc_options();
    return opt;
}

core::CamoConfig tiny_train_config() {
    core::CamoConfig cfg;
    cfg.policy.squish_size = 16;
    cfg.policy.embed_dim = 32;
    cfg.policy.rnn_hidden = 16;
    cfg.policy.rnn_layers = 2;
    cfg.policy.conv_base = 4;
    cfg.squish.size = 16;
    cfg.squish.window_nm = 500;
    cfg.phase1_epochs = 1;
    cfg.phase1_batch = 3;
    cfg.teacher_steps = 2;
    cfg.teacher_biases = {3};
    cfg.phase2_episodes = 1;
    cfg.train_workers = 2;
    cfg.seed = 5;
    return cfg;
}

std::vector<char> file_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

/// RAII telemetry state guard: every test leaves the process-wide switches
/// the way it found them (disabled is the suite-wide default).
struct TelemetryGuard {
    TelemetryGuard() {
        set_metrics_enabled(false);
        set_tracing_enabled(false);
        reset_metrics();
        reset_trace();
    }
    ~TelemetryGuard() {
        set_metrics_enabled(false);
        set_tracing_enabled(false);
    }
};

long long counter_value(const std::string& name) {
    const auto snap = snapshot_metrics();
    const MetricSnapshot* m = find_metric(snap, name);
    return m != nullptr ? m->counter : 0;
}

// ---- Registry semantics. -------------------------------------------------

TEST(ObsMetrics, HistogramBucketEdges) {
    EXPECT_EQ(histogram_bucket(-5), 0);
    EXPECT_EQ(histogram_bucket(0), 0);
    EXPECT_EQ(histogram_bucket(1), 1);   // [1, 2)
    EXPECT_EQ(histogram_bucket(2), 2);   // [2, 4)
    EXPECT_EQ(histogram_bucket(3), 2);
    EXPECT_EQ(histogram_bucket(4), 3);   // [4, 8)
    EXPECT_EQ(histogram_bucket(1023), 10);
    EXPECT_EQ(histogram_bucket(1024), 11);
    // Far beyond the range: clamped into the last bucket.
    EXPECT_EQ(histogram_bucket((1LL << 62) + 17), kHistogramBuckets - 1);
}

TEST(ObsMetrics, RegistrationIdempotentAndTypeChecked) {
    TelemetryGuard guard;
    const MetricId a = register_counter("obs_test.idempotent");
    const MetricId b = register_counter("obs_test.idempotent");
    EXPECT_EQ(a, b);
    EXPECT_THROW(register_gauge("obs_test.idempotent"), std::invalid_argument);
    EXPECT_THROW(register_histogram("obs_test.idempotent"), std::invalid_argument);
}

TEST(ObsMetrics, ConcurrentCountersAndHistogramsExact) {
    TelemetryGuard guard;
    set_metrics_enabled(true);
    const MetricId counter = register_counter("obs_test.concurrent.counter");
    const MetricId hist = register_histogram("obs_test.concurrent.hist");

    constexpr int kThreads = 8;
    constexpr int kOps = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([counter, hist, t] {
            for (int i = 0; i < kOps; ++i) {
                counter_add(counter);
                counter_add(counter, 2);
                histogram_record(hist, (t % 2 == 0) ? 3 : 1000);
            }
        });
    }
    for (std::thread& t : threads) t.join();

    const auto snap = snapshot_metrics();
    const MetricSnapshot* c = find_metric(snap, "obs_test.concurrent.counter");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->counter, 3LL * kThreads * kOps);

    const MetricSnapshot* h = find_metric(snap, "obs_test.concurrent.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->hist_count, static_cast<long long>(kThreads) * kOps);
    EXPECT_EQ(h->hist_sum, (3LL + 1000LL) * (kThreads / 2) * kOps);
    EXPECT_EQ(h->buckets[static_cast<std::size_t>(histogram_bucket(3))],
              static_cast<long long>(kThreads / 2) * kOps);
    EXPECT_EQ(h->buckets[static_cast<std::size_t>(histogram_bucket(1000))],
              static_cast<long long>(kThreads / 2) * kOps);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
    TelemetryGuard guard;
    set_metrics_enabled(true);
    const MetricId g = register_gauge("obs_test.gauge");
    gauge_set(g, 4.5);
    gauge_add(g, 1.5);
    gauge_add(g, -2.0);
    const auto snap = snapshot_metrics();
    const MetricSnapshot* m = find_metric(snap, "obs_test.gauge");
    ASSERT_NE(m, nullptr);
    EXPECT_DOUBLE_EQ(m->gauge, 4.0);
}

TEST(ObsMetrics, DisabledModeIsNoOp) {
    TelemetryGuard guard;  // metrics + tracing disabled
    const MetricId c = register_counter("obs_test.disabled.counter");
    const MetricId h = register_histogram("obs_test.disabled.hist");
    const MetricId g = register_gauge("obs_test.disabled.gauge");
    counter_add(c, 100);
    histogram_record(h, 42);
    gauge_set(g, 9.0);
    gauge_add(g, 1.0);
    {
        const Span span("obs_test.disabled.span", h);
    }
    const auto snap = snapshot_metrics();
    EXPECT_EQ(find_metric(snap, "obs_test.disabled.counter")->counter, 0);
    EXPECT_EQ(find_metric(snap, "obs_test.disabled.hist")->hist_count, 0);
    EXPECT_DOUBLE_EQ(find_metric(snap, "obs_test.disabled.gauge")->gauge, 0.0);

    long long events = 0;
    detail::visit_trace_events([&events](int, const char*, long long, long long) { ++events; });
    EXPECT_EQ(events, 0);
}

// ---- Trace semantics + JSON exports. -------------------------------------

TEST(ObsTrace, SpansRecordedAndExportWellFormed) {
    TelemetryGuard guard;
    set_tracing_enabled(true);

    {
        const Span outer("obs_test.outer");
        const Span inner("obs_test.inner");
    }
    std::thread worker([] {
        const Span span("obs_test.worker");
    });
    worker.join();

    long long events = 0;
    int distinct_tids = 0;
    std::vector<int> tids;
    detail::visit_trace_events(
        [&](int tid, const char* name, long long start_ns, long long dur_ns) {
            ++events;
            EXPECT_NE(name, nullptr);
            EXPECT_GE(start_ns, 0);
            EXPECT_GE(dur_ns, 0);
            tids.push_back(tid);
        });
    EXPECT_GE(events, 3);
    std::sort(tids.begin(), tids.end());
    distinct_tids = static_cast<int>(
        std::unique(tids.begin(), tids.end()) - tids.begin());
    EXPECT_GE(distinct_tids, 2);  // main thread + worker

    // The rendered JSON parses and has the Chrome trace-event shape.
    const JsonValue doc = JsonParser(render_trace_json()).parse();
    ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
    const JsonValue& list = doc.at("traceEvents");
    ASSERT_EQ(list.kind, JsonValue::Kind::kArray);
    EXPECT_EQ(static_cast<long long>(list.arr.size()), events);
    bool saw_worker = false;
    for (const JsonValue& ev : list.arr) {
        EXPECT_EQ(ev.at("ph").str, "X");
        EXPECT_FALSE(ev.at("name").str.empty());
        EXPECT_GE(ev.at("ts").number, 0.0);
        EXPECT_GE(ev.at("dur").number, 0.0);
        EXPECT_EQ(ev.at("pid").number, 1.0);
        EXPECT_TRUE(ev.has("tid"));
        if (ev.at("name").str == "obs_test.worker") saw_worker = true;
    }
    EXPECT_TRUE(saw_worker);
    EXPECT_EQ(doc.at("droppedEvents").number, 0.0);

    // File export goes through the atomic-rename path and reads back intact.
    const std::string path = testing::TempDir() + "obs_trace.json";
    write_trace_json(path);
    const JsonValue reread = JsonParser(read_text(path)).parse();
    EXPECT_EQ(reread.at("traceEvents").arr.size(), list.arr.size());
    std::remove(path.c_str());
}

TEST(ObsTrace, RingOverflowCountsDroppedEvents) {
    TelemetryGuard guard;
    set_tracing_enabled(true);
    const long long total = static_cast<long long>(kTraceRingCapacity) + 100;
    for (long long i = 0; i < total; ++i) {
        const Span span("obs_test.overflow");
    }
    long long events = 0;
    const long long dropped = detail::visit_trace_events(
        [&events](int, const char*, long long, long long) { ++events; });
    EXPECT_EQ(events, static_cast<long long>(kTraceRingCapacity));
    EXPECT_EQ(dropped, 100);
}

TEST(ObsReport, MetricsJsonWellFormed) {
    TelemetryGuard guard;
    set_metrics_enabled(true);
    counter_add(register_counter("obs_test.json.counter"), 7);
    gauge_set(register_gauge("obs_test.json.gauge"), 2.5);
    histogram_record(register_histogram("obs_test.json.hist"), 5);
    histogram_record(register_histogram("obs_test.json.hist"), 300);

    const JsonValue doc = JsonParser(render_metrics_json()).parse();
    EXPECT_EQ(doc.at("counters").at("obs_test.json.counter").number, 7.0);
    EXPECT_EQ(doc.at("gauges").at("obs_test.json.gauge").number, 2.5);
    const JsonValue& hist = doc.at("histograms").at("obs_test.json.hist");
    EXPECT_EQ(hist.at("count").number, 2.0);
    EXPECT_EQ(hist.at("sum").number, 305.0);
    ASSERT_EQ(hist.at("buckets").arr.size(), 2u);  // two non-empty buckets
    EXPECT_EQ(hist.at("buckets").arr[0].at("lt").number, 8.0);    // 5 in [4,8)
    EXPECT_EQ(hist.at("buckets").arr[1].at("lt").number, 512.0);  // 300 in [256,512)

    const std::string path = testing::TempDir() + "obs_metrics.json";
    write_metrics_json(path);
    const JsonValue reread = JsonParser(read_text(path)).parse();
    EXPECT_EQ(reread.at("counters").at("obs_test.json.counter").number, 7.0);
    std::remove(path.c_str());
}

// ---- The telemetry-off/on bit-identity contract. -------------------------

TEST(ObsContract, BatchBitIdenticalTelemetryOnVsOff) {
    const auto clips = test_clips(4);

    TelemetryGuard guard;  // telemetry OFF
    runtime::BatchScheduler plain(test_litho_config(), batch_options(4));
    const runtime::BatchResult off = plain.run_rule(clips);

    set_metrics_enabled(true);
    set_tracing_enabled(true);
    reset_metrics();
    reset_trace();
    runtime::BatchScheduler metered(test_litho_config(), batch_options(4));
    const runtime::BatchResult on = metered.run_rule(clips);

    ASSERT_EQ(off.clips.size(), on.clips.size());
    EXPECT_EQ(off.failed, on.failed);
    for (std::size_t i = 0; i < off.clips.size(); ++i) {
        EXPECT_EQ(off.clips[i].offsets, on.clips[i].offsets) << "clip " << i;
        EXPECT_EQ(0, std::memcmp(&off.clips[i].final_epe, &on.clips[i].final_epe,
                                 sizeof(double)))
            << "clip " << i;
        EXPECT_EQ(0, std::memcmp(&off.clips[i].pvband_nm2, &on.clips[i].pvband_nm2,
                                 sizeof(double)))
            << "clip " << i;
        EXPECT_EQ(off.clips[i].iterations, on.clips[i].iterations) << "clip " << i;
    }
    EXPECT_EQ(off.litho_evaluations, on.litho_evaluations);
    EXPECT_EQ(off.incremental_hits, on.incremental_hits);
    EXPECT_EQ(off.incremental_fulls, on.incremental_fulls);

    // The migrated registry counters match the BatchResult fields exactly.
    EXPECT_EQ(counter_value("batch.clips"), static_cast<long long>(on.clips.size()));
    EXPECT_EQ(counter_value("batch.failed"), static_cast<long long>(on.failed));
    EXPECT_EQ(counter_value("batch.litho_evaluations"), on.litho_evaluations);
    EXPECT_EQ(counter_value("batch.incremental_hits"), on.incremental_hits);
    EXPECT_EQ(counter_value("batch.incremental_fulls"), on.incremental_fulls);
    // So does the litho-layer counter (this batch was the only evaluator
    // since reset_metrics).
    EXPECT_EQ(counter_value("litho.evaluations"), on.litho_evaluations);
    EXPECT_EQ(counter_value("litho.incremental.hits"), on.incremental_hits);
    EXPECT_EQ(counter_value("litho.incremental.fulls"), on.incremental_fulls);
    EXPECT_EQ(counter_value("pool.tasks"), static_cast<long long>(on.clips.size()));

    // And the trace captured per-clip spans.
    long long clip_spans = 0;
    detail::visit_trace_events([&](int, const char* name, long long, long long) {
        if (std::strcmp(name, "batch.clip") == 0) ++clip_spans;
    });
    EXPECT_EQ(clip_spans, static_cast<long long>(on.clips.size()));
}

TEST(ObsContract, TrainingWeightBytesIdenticalTelemetryOnVsOff) {
    const auto clips = test_clips(2);
    const opc::OpcOptions opt = test_opc_options();

    TelemetryGuard guard;  // telemetry OFF
    core::CamoEngine off_engine(tiny_train_config());
    litho::LithoSim off_sim(test_litho_config());
    const core::TrainStats off_stats = off_engine.train(clips, off_sim, opt);
    const std::string off_path = testing::TempDir() + "obs_weights_off.bin";
    off_engine.save_weights(off_path);

    set_metrics_enabled(true);
    set_tracing_enabled(true);
    core::CamoEngine on_engine(tiny_train_config());
    litho::LithoSim on_sim(test_litho_config());
    const core::TrainStats on_stats = on_engine.train(clips, on_sim, opt);
    const std::string on_path = testing::TempDir() + "obs_weights_on.bin";
    on_engine.save_weights(on_path);

    ASSERT_EQ(off_stats.phase1_loss.size(), on_stats.phase1_loss.size());
    EXPECT_EQ(0, std::memcmp(off_stats.phase1_loss.data(), on_stats.phase1_loss.data(),
                             off_stats.phase1_loss.size() * sizeof(double)));
    ASSERT_EQ(off_stats.phase2_reward.size(), on_stats.phase2_reward.size());
    EXPECT_EQ(0, std::memcmp(off_stats.phase2_reward.data(), on_stats.phase2_reward.data(),
                             off_stats.phase2_reward.size() * sizeof(double)));

    const std::vector<char> off_bytes = file_bytes(off_path);
    const std::vector<char> on_bytes = file_bytes(on_path);
    ASSERT_FALSE(off_bytes.empty());
    EXPECT_EQ(off_bytes, on_bytes);
    std::remove(off_path.c_str());
    std::remove(on_path.c_str());

    // Training telemetry landed on the registry while enabled.
    EXPECT_GT(counter_value("train.teacher_samples"), 0);
    EXPECT_GT(counter_value("train.grad_reductions"), 0);
}

}  // namespace
}  // namespace camo::obs
