#include <gtest/gtest.h>

#include "geometry/layout.hpp"
#include "geometry/raster.hpp"

namespace camo::geo {
namespace {

SegmentedLayout one_via() {
    return SegmentedLayout({Polygon::from_rect({100, 100, 170, 170})},
                           {FragmentStyle::kVia, 60}, {}, 2000);
}

TEST(SegmentedLayout, ZeroOffsetsReproduceTarget) {
    const SegmentedLayout layout = one_via();
    const std::vector<int> zeros(static_cast<std::size_t>(layout.num_segments()), 0);
    const auto mask = layout.reconstruct_mask(zeros);
    ASSERT_EQ(mask.size(), 1U);
    EXPECT_DOUBLE_EQ(mask[0].area(), 70.0 * 70.0);
    EXPECT_EQ(mask[0].bbox(), (Rect{100, 100, 170, 170}));
}

TEST(SegmentedLayout, UniformOutwardGrowsUniformly) {
    const SegmentedLayout layout = one_via();
    const std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), 3);
    const auto mask = layout.reconstruct_mask(offsets);
    ASSERT_EQ(mask.size(), 1U);
    EXPECT_EQ(mask[0].bbox(), (Rect{97, 97, 173, 173}));
    EXPECT_DOUBLE_EQ(mask[0].area(), 76.0 * 76.0);
}

TEST(SegmentedLayout, UniformInwardShrinks) {
    const SegmentedLayout layout = one_via();
    const std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), -5);
    const auto mask = layout.reconstruct_mask(offsets);
    EXPECT_EQ(mask[0].bbox(), (Rect{105, 105, 165, 165}));
}

TEST(SegmentedLayout, SingleSegmentMoveCreatesExpectedArea) {
    const SegmentedLayout layout = one_via();
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), 0);
    offsets[0] = 2;  // move one 70 nm edge outward by 2
    const auto mask = layout.reconstruct_mask(offsets);
    EXPECT_DOUBLE_EQ(mask[0].area(), 70.0 * 70.0 + 70.0 * 2.0);
}

TEST(SegmentedLayout, FragmentedEdgeJogRasterizesToExactArea) {
    // A metal wire with one interior segment pushed out: staircase polygon.
    SegmentedLayout layout({Polygon::from_rect({0, 100, 200, 150})},
                           {FragmentStyle::kMetal, 60}, {}, 2000);
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), 0);

    // Find the interior bottom segment (line == 100, length 60) and push it.
    int pushed_len = 0;
    for (int i = 0; i < layout.num_segments(); ++i) {
        const Segment& s = layout.segments()[static_cast<std::size_t>(i)];
        if (s.axis == Axis::kHorizontal && s.line == 100 && s.length() == 60) {
            offsets[static_cast<std::size_t>(i)] = 2;
            pushed_len = s.length();
            break;
        }
    }
    ASSERT_EQ(pushed_len, 60);

    const auto mask = layout.reconstruct_mask(offsets);
    ASSERT_EQ(mask.size(), 1U);
    EXPECT_DOUBLE_EQ(mask[0].area(), 200.0 * 50.0 + 60.0 * 2.0);

    Raster r(256, 1.0);
    r.add_polygon(mask[0]);
    EXPECT_NEAR(r.coverage_area_nm2(), mask[0].area(), 1e-2);
}

TEST(SegmentedLayout, OppositeCornerMovesIntersectCorrectly) {
    const SegmentedLayout layout = one_via();
    // Bottom edge out by 2, right edge in by 1: corner must be (169, 98).
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), 0);
    for (int i = 0; i < layout.num_segments(); ++i) {
        const Segment& s = layout.segments()[static_cast<std::size_t>(i)];
        if (s.axis == Axis::kHorizontal && s.line == 100) offsets[static_cast<std::size_t>(i)] = 2;
        if (s.axis == Axis::kVertical && s.line == 170) offsets[static_cast<std::size_t>(i)] = -1;
    }
    const auto mask = layout.reconstruct_mask(offsets);
    const Rect bb = mask[0].bbox();
    EXPECT_EQ(bb.ylo, 98);
    EXPECT_EQ(bb.xhi, 169);
}

TEST(SegmentedLayout, MeasurePointsMatchMeasuredSegments) {
    SegmentedLayout layout({Polygon::from_rect({0, 100, 200, 150})},
                           {FragmentStyle::kMetal, 60}, {}, 2000);
    const auto pts = layout.measure_points();
    int measured = 0;
    for (const Segment& s : layout.segments()) measured += s.measured ? 1 : 0;
    EXPECT_EQ(static_cast<int>(pts.size()), measured);
    EXPECT_EQ(measured, 6);  // 3 per horizontal edge, two edges
    for (const MeasurePoint& mp : pts) {
        EXPECT_TRUE(layout.segments()[static_cast<std::size_t>(mp.segment)].measured);
    }
}

TEST(SegmentedLayout, OffsetSizeMismatchThrows) {
    const SegmentedLayout layout = one_via();
    const std::vector<int> bad(2, 0);
    EXPECT_THROW((void)layout.reconstruct_mask(bad), std::invalid_argument);
}

TEST(SegmentedLayout, MultiplePolygonsKeepRanges) {
    SegmentedLayout layout({Polygon::from_rect({0, 0, 70, 70}),
                            Polygon::from_rect({500, 500, 570, 570})},
                           {FragmentStyle::kVia, 60}, {}, 2000);
    EXPECT_EQ(layout.num_segments(), 8);
    const auto [b0, e0] = layout.polygon_segment_range(0);
    const auto [b1, e1] = layout.polygon_segment_range(1);
    EXPECT_EQ(e0 - b0, 4);
    EXPECT_EQ(e1 - b1, 4);
    EXPECT_EQ(e0, b1);

    // Moving polygon 0 must not disturb polygon 1.
    std::vector<int> offsets(8, 0);
    for (int i = b0; i < e0; ++i) offsets[static_cast<std::size_t>(i)] = 2;
    const auto mask = layout.reconstruct_mask(offsets);
    EXPECT_DOUBLE_EQ(mask[1].area(), 70.0 * 70.0);
    EXPECT_DOUBLE_EQ(mask[0].area(), 74.0 * 74.0);
}

TEST(SegmentedLayout, SrafsCarriedAlong) {
    SegmentedLayout layout({Polygon::from_rect({0, 0, 70, 70})}, {FragmentStyle::kVia, 60},
                           {Polygon::from_rect({100, 0, 120, 70})}, 2000);
    EXPECT_EQ(layout.srafs().size(), 1U);
    EXPECT_EQ(layout.num_segments(), 4);  // SRAFs contribute no segments
}

}  // namespace
}  // namespace camo::geo
