#include <gtest/gtest.h>

#include <cmath>

#include "litho/tcc.hpp"

namespace camo::litho {
namespace {

LithoConfig tiny_cfg() {
    LithoConfig cfg;
    cfg.grid = 64;
    cfg.pixel_nm = 16.0;
    cfg.cache_dir = "";
    return cfg;
}

TEST(Tcc, EigenvaluesDescendingAndNonNegative) {
    const auto ks = compute_socs_kernels(tiny_cfg(), 0.0, 6);
    ASSERT_GE(ks.count(), 4);
    for (int i = 0; i < ks.count(); ++i) {
        EXPECT_GE(ks.eigenvalues[static_cast<std::size_t>(i)], 0.0);
        if (i > 0) {
            EXPECT_LE(ks.eigenvalues[static_cast<std::size_t>(i)],
                      ks.eigenvalues[static_cast<std::size_t>(i - 1)] + 1e-12);
        }
    }
}

TEST(Tcc, KernelsAreOrthonormal) {
    const auto ks = compute_socs_kernels(tiny_cfg(), 0.0, 5);
    for (int a = 0; a < ks.count(); ++a) {
        for (int b = a; b < ks.count(); ++b) {
            std::complex<double> dot{0.0, 0.0};
            for (int i = 0; i < ks.support_size(); ++i) {
                const auto ca = ks.coeffs[static_cast<std::size_t>(a)][static_cast<std::size_t>(i)];
                const auto cb = ks.coeffs[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)];
                dot += std::conj(std::complex<double>(ca)) * std::complex<double>(cb);
            }
            if (a == b) {
                EXPECT_NEAR(std::abs(dot), 1.0, 1e-4);
            } else {
                EXPECT_NEAR(std::abs(dot), 0.0, 1e-3);
            }
        }
    }
}

TEST(Tcc, LeadingKernelsCaptureMostEnergy) {
    const LithoConfig cfg = tiny_cfg();
    const auto ks = compute_socs_kernels(cfg, 0.0, 10);
    const double trace = tcc_trace(cfg, 0.0);
    double captured = 0.0;
    for (double e : ks.eigenvalues) captured += e;
    EXPECT_GT(trace, 0.0);
    EXPECT_GT(captured / trace, 0.6);  // top-10 of an annular TCC
    EXPECT_LE(captured / trace, 1.0 + 1e-9);
}

TEST(Tcc, DeterministicAcrossSeeds) {
    // The dominant eigenvalues are a property of the TCC, not the RNG.
    const auto a = compute_socs_kernels(tiny_cfg(), 0.0, 4, 123);
    const auto b = compute_socs_kernels(tiny_cfg(), 0.0, 4, 987);
    ASSERT_EQ(a.count(), b.count());
    for (int i = 0; i < a.count(); ++i) {
        const double ea = a.eigenvalues[static_cast<std::size_t>(i)];
        const double eb = b.eigenvalues[static_cast<std::size_t>(i)];
        EXPECT_NEAR(ea, eb, std::max(ea, eb) * 5e-3 + 1e-9);
    }
}

TEST(Tcc, DefocusPreservesTotalEnergy) {
    // Defocus is a pure pupil phase: the TCC trace must not change.
    const LithoConfig cfg = tiny_cfg();
    EXPECT_NEAR(tcc_trace(cfg, 0.0), tcc_trace(cfg, cfg.defocus_nm), 1e-9);
}

TEST(Tcc, SupportSharedAcrossKernels) {
    const auto ks = compute_socs_kernels(tiny_cfg(), 0.0, 3);
    for (const auto& c : ks.coeffs) {
        EXPECT_EQ(static_cast<int>(c.size()), ks.support_size());
    }
}

}  // namespace
}  // namespace camo::litho
