// Tier-1 quality gate for the scenario matrix + policy comparer.
//
//   * Registry properties: builtins present, duplicate/unknown handling.
//   * Seed determinism: every registered generator produces byte-identical
//     clips for equal seeds, serially and under parallel generation
//     (extends the PR-1/PR-5 determinism contract to scenarios).
//   * Golden regression bounds: the full engine x scenario x reward matrix
//     stays within tests/golden/scenario_matrix.json (the same file the CI
//     compare job gates on). Regenerate with
//       ./build/camo_cli compare --clips 1 --threads 2 \
//           --write-golden tests/golden/scenario_matrix.json
//   * Worker-count determinism: the comparer fingerprint is byte-identical
//     at 1 / 2 / 8 batch workers.
//   * Degenerate scenarios: empty, single-polygon and segment-free clips
//     run through every engine and reward mode without NaN or crash.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/json_mini.hpp"
#include "runtime/thread_pool.hpp"
#include "scenario/comparer.hpp"
#include "scenario/scenario.hpp"

#ifndef CAMO_GOLDEN_DIR
#define CAMO_GOLDEN_DIR "tests/golden"
#endif

namespace camo::scenario {
namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void expect_cell_finite(const CellResult& c) {
    EXPECT_TRUE(std::isfinite(c.epe)) << c.scenario << "/" << c.engine << "/" << c.reward;
    EXPECT_TRUE(std::isfinite(c.worst_epe)) << c.scenario << "/" << c.engine;
    EXPECT_TRUE(std::isfinite(c.pvb_exact_nm2)) << c.scenario << "/" << c.engine;
    EXPECT_TRUE(std::isfinite(c.epe_l2)) << c.scenario << "/" << c.engine;
    EXPECT_TRUE(std::isfinite(c.hit_rate)) << c.scenario << "/" << c.engine;
    EXPECT_GE(c.hit_rate, 0.0);
    EXPECT_LE(c.hit_rate, 1.0);
}

/// Registers a scenario for the lifetime of one test.
class ScopedScenario {
  public:
    explicit ScopedScenario(Scenario s) : name_(s.name) {
        Registry::instance().add(std::move(s));
    }
    ~ScopedScenario() { Registry::instance().remove(name_); }

  private:
    std::string name_;
};

TEST(ScenarioRegistry, BuiltinsRegistered) {
    Registry& reg = Registry::instance();
    const std::vector<std::string> names = reg.names();
    EXPECT_GE(names.size(), 8U);
    for (const char* expected : {"via3", "metal24", "via-pairs", "contact-grid", "grating-jog",
                                 "iso-dense", "sram-cell", "multi-pitch"}) {
        EXPECT_TRUE(reg.contains(expected)) << expected;
    }
    // names() is sorted.
    for (std::size_t i = 1; i < names.size(); ++i) EXPECT_LT(names[i - 1], names[i]);
}

TEST(ScenarioRegistry, BuiltinScenariosProduceValidClips) {
    Registry& reg = Registry::instance();
    for (const std::string& name : reg.names()) {
        const Scenario sc = reg.get(name);
        EXPECT_FALSE(sc.description.empty()) << name;
        const auto clips = sc.clips(2);
        ASSERT_EQ(clips.size(), 2U) << name;
        for (const layout::Clip& clip : clips) {
            EXPECT_EQ(clip.clip_nm, sc.clip_nm);
            EXPECT_FALSE(clip.targets.empty()) << name;
            for (const geo::Polygon& p : clip.targets) {
                const geo::Rect bb = p.bbox();
                EXPECT_GE(bb.xlo, 0) << name;
                EXPECT_GE(bb.ylo, 0) << name;
                EXPECT_LE(bb.xhi, sc.clip_nm) << name;
                EXPECT_LE(bb.yhi, sc.clip_nm) << name;
            }
        }
        // The resolved window is valid and covers the nominal corner.
        const litho::WindowSpec spec = sc.resolved_window();
        EXPECT_NO_THROW(spec.validate()) << name;
        EXPECT_GE(spec.corner_count(), 2) << name;
        // Fragmentation works and yields measurable layouts.
        const auto layouts = sc.layouts(1);
        ASSERT_EQ(layouts.size(), 1U) << name;
        EXPECT_GT(layouts[0].num_segments(), 0) << name;
    }
}

TEST(ScenarioRegistry, UnknownAndDuplicateHandling) {
    Registry& reg = Registry::instance();
    EXPECT_FALSE(reg.contains("no-such-scenario"));
    EXPECT_THROW(reg.get("no-such-scenario"), std::out_of_range);

    Scenario dup = reg.get("via3");
    EXPECT_THROW(reg.add(dup), std::invalid_argument);

    Scenario unnamed;
    unnamed.generate = [](Rng&) { return std::vector<geo::Polygon>{}; };
    EXPECT_THROW(reg.add(unnamed), std::invalid_argument);

    Scenario nogen;
    nogen.name = "no-generator";
    EXPECT_THROW(reg.add(std::move(nogen)), std::invalid_argument);

    EXPECT_FALSE(reg.remove("no-such-scenario"));
}

// Satellite: every registered generator is seed-deterministic — equal seeds
// produce byte-identical clips, whether generated serially or with one
// thread per clip (any sub-range independently).
TEST(ScenarioDeterminism, CloneAndParallelGenerationBitIdentical) {
    Registry& reg = Registry::instance();
    constexpr int kClips = 3;
    for (const std::string& name : reg.names()) {
        const Scenario sc = reg.get(name);
        const std::vector<layout::Clip> serial_a = sc.clips(kClips);
        const std::vector<layout::Clip> serial_b = sc.clips(kClips);
        ASSERT_EQ(serial_a.size(), serial_b.size()) << name;
        for (int i = 0; i < kClips; ++i) {
            EXPECT_EQ(serial_a[static_cast<std::size_t>(i)].targets,
                      serial_b[static_cast<std::size_t>(i)].targets)
                << name << " clip " << i << ": serial regeneration differs";
        }

        // Parallel: each clip index generated on its own pool task.
        std::vector<std::vector<geo::Polygon>> parallel(kClips);
        runtime::ThreadPool pool(4);
        pool.for_each_index(kClips, [&](int i) {
            Rng rng(derive_seed(sc.seed, static_cast<std::uint64_t>(i)));
            parallel[static_cast<std::size_t>(i)] = sc.generate(rng);
        });
        for (int i = 0; i < kClips; ++i) {
            EXPECT_EQ(parallel[static_cast<std::size_t>(i)],
                      serial_a[static_cast<std::size_t>(i)].targets)
                << name << " clip " << i << ": parallel generation differs";
        }
    }
}

// The top-level quality gate: the full matrix stays inside the golden
// bounds, at the exact protocol the CI compare job runs (clips 1,
// threads 2, default budgets).
TEST(ScenarioMatrix, FullMatrixWithinGoldenBounds) {
    CompareOptions opt;
    opt.clips = 1;
    opt.threads = 2;
    PolicyComparer comparer(opt);
    const CompareResult result = comparer.run();

    const std::size_t scenarios = Registry::instance().names().size();
    ASSERT_EQ(result.cells.size(), scenarios * opt.engines.size() * opt.rewards.size());
    for (const CellResult& c : result.cells) {
        expect_cell_finite(c);
        EXPECT_EQ(c.failed, 0) << c.scenario << "/" << c.engine << "/" << c.reward;
        EXPECT_GE(c.rank, 1);
        EXPECT_LE(c.rank, static_cast<int>(opt.engines.size()));
    }

    const std::string golden_path = std::string(CAMO_GOLDEN_DIR) + "/scenario_matrix.json";
    const std::vector<CellBound> bounds = read_bounds(read_file(golden_path));
    EXPECT_EQ(bounds.size(), result.cells.size());
    const std::vector<std::string> violations = check_bounds(result, bounds);
    for (const std::string& v : violations) ADD_FAILURE() << "golden bound regression: " << v;

    // The emitted JSON parses back with the expected shape.
    const json::Value doc = json::parse(result.to_json(true));
    EXPECT_EQ(doc.at("schema").string, "camo-compare-v1");
    EXPECT_EQ(doc.at("cells").array.size(), result.cells.size());

    // Round-trip: bounds generated from this result admit this result, and
    // a tightened bound is caught.
    std::vector<CellBound> self = read_bounds(bounds_json(result));
    EXPECT_TRUE(check_bounds(result, self).empty());
    ASSERT_FALSE(self.empty());
    self[0].max_worst_epe = 1e-9;
    EXPECT_FALSE(check_bounds(result, self).empty());
    CellBound missing;
    missing.scenario = "no-such-scenario";
    missing.engine = "rule";
    missing.reward = "nominal";
    EXPECT_EQ(check_bounds(result, {missing}).size(), 1U);
}

// The matrix fingerprint (ranked table minus wall-clock fields) is
// byte-identical at 1 / 2 / 8 batch workers. One comparer serves all three
// runs so the learned engines are trained once and shared.
TEST(ScenarioMatrix, FingerprintIndependentOfWorkerCount) {
    CompareOptions opt;
    opt.scenarios = {"via3", "metal24"};
    opt.engines = {"rule", "camo", "ilt"};
    opt.rewards = {rl::RewardMode::kNominal, rl::RewardMode::kWorstCorner};
    opt.clips = 2;
    opt.train_clips = 1;
    opt.phase1_epochs = 2;
    PolicyComparer comparer(opt);

    const std::string fp1 = comparer.run(1).fingerprint();
    const std::string fp2 = comparer.run(2).fingerprint();
    const std::string fp8 = comparer.run(8).fingerprint();
    EXPECT_EQ(fp1, fp2);
    EXPECT_EQ(fp1, fp8);
    EXPECT_NE(fp1.find("\"schema\": \"camo-compare-v1\""), std::string::npos);
    EXPECT_EQ(fp1.find("wall_s"), std::string::npos);
}

TEST(ScenarioMatrix, UnknownScenarioAndEngineThrow) {
    CompareOptions opt;
    opt.scenarios = {"no-such-scenario"};
    opt.engines = {"rule"};
    opt.rewards = {rl::RewardMode::kNominal};
    opt.clips = 1;
    EXPECT_THROW(PolicyComparer(opt).run(), std::out_of_range);

    CompareOptions bad_engine;
    bad_engine.scenarios = {"via3"};
    bad_engine.engines = {"quantum"};
    bad_engine.rewards = {rl::RewardMode::kNominal};
    bad_engine.clips = 1;
    EXPECT_THROW(PolicyComparer(bad_engine).run(), std::invalid_argument);
}

// Satellite: degenerate clips — empty (and therefore segment-free),
// single-polygon, and a sub-resolution sliver that never prints — flow
// through every engine and reward mode with finite metrics.
TEST(ScenarioDegenerate, EmptySingleAndSliverClips) {
    Scenario empty;
    empty.name = "deg-empty";
    empty.description = "no polygons: a zero-segment layout";
    empty.style = Style::kVia;
    empty.seed = 901;
    empty.generate = [](Rng&) { return std::vector<geo::Polygon>{}; };

    Scenario single;
    single.name = "deg-single";
    single.description = "one isolated via";
    single.style = Style::kVia;
    single.seed = 902;
    single.generate = [](Rng&) {
        return std::vector<geo::Polygon>{geo::Polygon::from_rect({460, 460, 530, 530})};
    };

    Scenario sliver;
    sliver.name = "deg-sliver";
    sliver.description = "4 nm sub-resolution sliver: prints nothing anywhere";
    sliver.style = Style::kMetal;
    sliver.seed = 903;
    sliver.generate = [](Rng&) {
        return std::vector<geo::Polygon>{geo::Polygon::from_rect({400, 400, 404, 600})};
    };

    const ScopedScenario g1(empty);
    const ScopedScenario g2(single);
    const ScopedScenario g3(sliver);

    CompareOptions opt;
    opt.scenarios = {"deg-empty", "deg-single", "deg-sliver"};
    opt.rewards = {rl::RewardMode::kNominal, rl::RewardMode::kWorstCorner,
                   rl::RewardMode::kWeightedCorner};
    opt.clips = 1;
    opt.threads = 2;
    opt.max_iterations = 2;
    opt.ilt_iterations = 1;
    opt.train_clips = 1;
    opt.phase1_epochs = 1;

    PolicyComparer comparer(opt);
    CompareResult result;
    ASSERT_NO_THROW(result = comparer.run());
    ASSERT_EQ(result.cells.size(), 3U * opt.engines.size() * opt.rewards.size());
    for (const CellResult& c : result.cells) {
        expect_cell_finite(c);
        EXPECT_EQ(c.failed, 0) << c.scenario << "/" << c.engine << "/" << c.reward
                               << ": degenerate clip crashed the engine";
    }
}

TEST(JsonMini, ParsesScalarsArraysObjectsAndEscapes) {
    const json::Value v = json::parse(
        R"({"a": 1.5, "b": [true, false, null], "s": "x\n\"A", "nested": {"k": -2e3}})");
    EXPECT_DOUBLE_EQ(v.at("a").number, 1.5);
    ASSERT_EQ(v.at("b").array.size(), 3U);
    EXPECT_TRUE(v.at("b").array[0].boolean);
    EXPECT_TRUE(v.at("b").array[2].is_null());
    EXPECT_EQ(v.at("s").string, "x\n\"A");
    EXPECT_DOUBLE_EQ(v.at("nested").at("k").number, -2000.0);
    EXPECT_EQ(v.find("zzz"), nullptr);
    EXPECT_THROW(json::parse("{"), std::runtime_error);
    EXPECT_THROW(json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(json::parse("{\"a\": 1} trailing"), std::runtime_error);
    EXPECT_THROW(v.at("zzz"), std::runtime_error);
}

}  // namespace
}  // namespace camo::scenario
