#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace camo::core {
namespace {

TEST(Experiment, ViaOptionsMatchPaperProtocol) {
    const auto opt = Experiment::via_options();
    EXPECT_EQ(opt.max_iterations, 10);
    EXPECT_DOUBLE_EQ(opt.exit_epe_per_feature, 4.0);
    EXPECT_DOUBLE_EQ(opt.exit_epe_per_point, 0.0);
    EXPECT_EQ(opt.initial_bias_nm, 3);
}

TEST(Experiment, MetalOptionsMatchPaperProtocol) {
    const auto opt = Experiment::metal_options();
    EXPECT_EQ(opt.max_iterations, 15);
    EXPECT_DOUBLE_EQ(opt.exit_epe_per_point, 1.0);
    EXPECT_DOUBLE_EQ(opt.exit_epe_per_feature, 0.0);
    EXPECT_EQ(opt.initial_bias_nm, 0);
}

TEST(Experiment, LithoConfigIsProductionScale) {
    const auto cfg = Experiment::litho_config();
    EXPECT_EQ(cfg.grid, 512);
    EXPECT_DOUBLE_EQ(cfg.pixel_nm, 4.0);
    EXPECT_DOUBLE_EQ(cfg.wavelength_nm, 193.0);
    EXPECT_DOUBLE_EQ(cfg.na, 1.35);
    // Full clip fits with wraparound margin.
    EXPECT_GE(cfg.clip_span_nm(), 2000.0);
}

TEST(Experiment, CamoConfigsConsistent) {
    for (const CamoConfig& cfg :
         {Experiment::via_camo_config(), Experiment::metal_camo_config()}) {
        EXPECT_EQ(cfg.squish.size, cfg.policy.squish_size);
        EXPECT_TRUE(cfg.policy.use_gnn);
        EXPECT_TRUE(cfg.policy.use_rnn);
        EXPECT_TRUE(cfg.modulator.enabled);
        EXPECT_FALSE(cfg.teacher_biases.empty());
        EXPECT_GT(cfg.phase1_epochs, 0);
    }
}

TEST(Experiment, RlOpcConfigsDisableCorrelation) {
    for (const CamoConfig& cfg :
         {Experiment::via_rlopc_config(), Experiment::metal_rlopc_config()}) {
        EXPECT_FALSE(cfg.policy.use_gnn);
        EXPECT_FALSE(cfg.policy.use_rnn);
        EXPECT_FALSE(cfg.modulator.enabled);
        EXPECT_EQ(cfg.name, "rl-opc");
    }
}

TEST(Experiment, WeightsPathDistinguishesConfigs) {
    const auto camo = Experiment::via_camo_config();
    const auto rlopc = Experiment::via_rlopc_config();
    EXPECT_NE(Experiment::weights_path(camo, "via"), Experiment::weights_path(rlopc, "via"));
    EXPECT_NE(Experiment::weights_path(camo, "via"), Experiment::weights_path(camo, "metal"));

    CamoConfig changed = camo;
    changed.phase1_epochs += 1;
    EXPECT_NE(Experiment::weights_path(camo, "via"), Experiment::weights_path(changed, "via"));

    // The training reward mode is part of the key: a policy trained under
    // one objective must never be served to runs requesting another.
    // Nominal mode keeps the pre-existing path unchanged.
    EXPECT_EQ(Experiment::weights_path(camo, "via"),
              Experiment::weights_path(camo, "via", rl::RewardMode::kNominal));
    EXPECT_NE(Experiment::weights_path(camo, "via"),
              Experiment::weights_path(camo, "via", rl::RewardMode::kWorstCorner));
    EXPECT_NE(Experiment::weights_path(camo, "via", rl::RewardMode::kWorstCorner),
              Experiment::weights_path(camo, "via", rl::RewardMode::kWeightedCorner));
    // The mode is visible in the filename, not just hashed.
    EXPECT_NE(Experiment::weights_path(camo, "via", rl::RewardMode::kWorstCorner)
                  .find("worst-corner"),
              std::string::npos);
}

TEST(Experiment, WeightsPathIndependentOfTrainWorkers) {
    // The data-parallel trainer's reduction contract makes trained weights
    // bit-identical at any worker count, so the cache key must NOT encode
    // train_workers: weights trained at one width serve every other.
    const auto base = Experiment::via_camo_config();
    for (int workers : {0, 1, 2, 8, 64}) {
        CamoConfig cfg = base;
        cfg.train_workers = workers;
        EXPECT_EQ(Experiment::weights_path(base, "via"), Experiment::weights_path(cfg, "via"))
            << workers << " workers";
    }

    // The minibatch size DOES change the optimizer-step schedule (and hence
    // the weights), so it is part of the key; the default per-sample
    // schedule keeps pre-existing cache paths unchanged.
    CamoConfig batched = base;
    batched.phase1_batch = 8;
    EXPECT_NE(Experiment::weights_path(base, "via"), Experiment::weights_path(batched, "via"));
    CamoConfig epoch_batched = base;
    epoch_batched.phase1_batch = 0;
    EXPECT_NE(Experiment::weights_path(base, "via"),
              Experiment::weights_path(epoch_batched, "via"));
    EXPECT_NE(Experiment::weights_path(batched, "via"),
              Experiment::weights_path(epoch_batched, "via"));
}

TEST(Experiment, FragmentViaClipsIncludesSrafs) {
    const auto clips = layout::via_test_set(Experiment::kDatasetSeed);
    const auto layouts = fragment_via_clips({clips[0]});
    ASSERT_EQ(layouts.size(), 1U);
    EXPECT_EQ(layouts[0].num_segments(), static_cast<int>(clips[0].targets.size()) * 4);
    EXPECT_FALSE(layouts[0].srafs().empty());
}

TEST(Experiment, FragmentMetalClipsMatchesPointCounts) {
    const auto clips = layout::metal_test_set(Experiment::kDatasetSeed);
    const auto layouts = fragment_metal_clips(clips);
    const int expected[] = {64, 84, 88, 100, 106, 112, 116, 24, 72, 120};
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(static_cast<int>(layouts[static_cast<std::size_t>(i)].measure_points().size()),
                  expected[i])
            << clips[static_cast<std::size_t>(i)].name;
        EXPECT_TRUE(layouts[static_cast<std::size_t>(i)].srafs().empty());
    }
}

}  // namespace
}  // namespace camo::core
