#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/gradcheck.hpp"
#include "nn/linear.hpp"
#include "nn/rnn.hpp"
#include "nn/sequential.hpp"

namespace camo::nn {
namespace {

Tensor random_tensor(std::vector<int> shape, Rng& rng, double scale = 1.0) {
    Tensor t(std::move(shape));
    for (float& v : t.data()) v = static_cast<float>(rng.uniform(-scale, scale));
    return t;
}

TEST(Tensor, ShapeAndIndexing) {
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.numel(), 24U);
    t.at(1, 2, 3) = 5.0F;
    EXPECT_FLOAT_EQ(t.at(1, 2, 3), 5.0F);
    EXPECT_FLOAT_EQ(t[23], 5.0F);
    EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
}

TEST(Tensor, Arithmetic) {
    Tensor a({4});
    Tensor b({4});
    a.fill(2.0F);
    b.fill(3.0F);
    a.add_(b);
    EXPECT_FLOAT_EQ(a[0], 5.0F);
    a.axpy_(2.0F, b);
    EXPECT_FLOAT_EQ(a[1], 11.0F);
    a.scale_(0.5F);
    EXPECT_FLOAT_EQ(a[2], 5.5F);
    EXPECT_FLOAT_EQ(a.sum(), 22.0F);
    EXPECT_FLOAT_EQ(a.abs_max(), 5.5F);
}

TEST(Tensor, ReshapeChecksNumel) {
    Tensor t({2, 6});
    const Tensor r = t.reshaped({3, 4});
    EXPECT_EQ(r.dim(0), 3);
    EXPECT_THROW(t.reshaped({5}), std::invalid_argument);
}

TEST(GradCheck, Linear) {
    Rng rng(1);
    Linear layer(7, 5, rng);
    const Tensor x = random_tensor({7}, rng);
    const auto res = gradient_check(layer, x, rng);
    EXPECT_TRUE(res.ok()) << "input err " << res.max_rel_error_input << " param err "
                          << res.max_rel_error_params;
}

struct ConvSpec {
    int in_ch;
    int out_ch;
    int kernel;
    int stride;
    int pad;
    int hw;
};

class ConvGradSweep : public ::testing::TestWithParam<ConvSpec> {};

TEST_P(ConvGradSweep, MatchesFiniteDifferences) {
    const ConvSpec s = GetParam();
    Rng rng(2);
    Conv2d layer(s.in_ch, s.out_ch, s.kernel, s.stride, s.pad, rng);
    const Tensor x = random_tensor({s.in_ch, s.hw, s.hw}, rng);
    const auto res = gradient_check(layer, x, rng);
    EXPECT_TRUE(res.ok()) << "input err " << res.max_rel_error_input << " param err "
                          << res.max_rel_error_params;
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvGradSweep,
                         ::testing::Values(ConvSpec{1, 2, 3, 1, 1, 6}, ConvSpec{2, 3, 3, 2, 1, 8},
                                           ConvSpec{3, 2, 5, 2, 2, 9}, ConvSpec{2, 4, 3, 1, 0, 5},
                                           ConvSpec{6, 4, 3, 2, 1, 8}));

TEST(GradCheck, ReLU) {
    Rng rng(3);
    ReLU layer;
    const Tensor x = random_tensor({3, 4, 4}, rng);
    const auto res = gradient_check(layer, x, rng);
    EXPECT_TRUE(res.ok());
}

TEST(GradCheck, Tanh) {
    Rng rng(4);
    Tanh layer;
    const Tensor x = random_tensor({10}, rng);
    const auto res = gradient_check(layer, x, rng, 5e-3F);
    EXPECT_TRUE(res.ok());
}

TEST(GradCheck, MaxPool) {
    Rng rng(5);
    MaxPool2d layer(2);
    // Well-separated values avoid argmax flips under the FD epsilon.
    Tensor x({2, 4, 4});
    float v = 0.0F;
    for (float& e : x.data()) {
        e = v;
        v += 0.37F;
    }
    const auto res = gradient_check(layer, x, rng);
    EXPECT_TRUE(res.ok());
}

struct RnnSpec {
    int input;
    int hidden;
    int layers;
    int steps;
};

class RnnGradSweep : public ::testing::TestWithParam<RnnSpec> {};

TEST_P(RnnGradSweep, BpttMatchesFiniteDifferences) {
    const RnnSpec s = GetParam();
    Rng rng(6);
    Rnn rnn(s.input, s.hidden, s.layers, rng);
    const Tensor x = random_tensor({s.steps, s.input}, rng);
    const auto res = gradient_check(rnn, x, rng, 5e-3F);
    EXPECT_TRUE(res.ok()) << "input err " << res.max_rel_error_input << " param err "
                          << res.max_rel_error_params;
}

INSTANTIATE_TEST_SUITE_P(Shapes, RnnGradSweep,
                         ::testing::Values(RnnSpec{3, 4, 1, 1}, RnnSpec{3, 4, 1, 5},
                                           RnnSpec{4, 6, 2, 4}, RnnSpec{5, 4, 3, 6}));

TEST(GradCheck, SequentialCnnStack) {
    // Tanh keeps the composite loss smooth: finite differences across a
    // ReLU kink produce spurious mismatches in deep stacks.
    Rng rng(7);
    Sequential net;
    net.emplace<Conv2d>(2, 3, 3, 2, 1, rng);
    net.emplace<Tanh>();
    net.emplace<Conv2d>(3, 4, 3, 2, 1, rng);
    net.emplace<Tanh>();
    const Tensor x = random_tensor({2, 8, 8}, rng);
    const auto res = gradient_check(net, x, rng, 5e-3F);
    EXPECT_TRUE(res.ok()) << "input err " << res.max_rel_error_input << " param err "
                          << res.max_rel_error_params;
}

TEST(GradCheck, ConvReluPair) {
    Rng rng(21);
    Sequential net;
    net.emplace<Conv2d>(2, 3, 3, 2, 1, rng);
    net.emplace<ReLU>();
    const Tensor x = random_tensor({2, 8, 8}, rng);
    const auto res = gradient_check(net, x, rng);
    EXPECT_TRUE(res.ok()) << "input err " << res.max_rel_error_input << " param err "
                          << res.max_rel_error_params;
}

TEST(Rnn, OutputShapeAndDeterminism) {
    Rng rng(8);
    Rnn rnn(4, 6, 3, rng);
    Tensor x = random_tensor({5, 4}, rng);
    Tape t1;
    Tape t2;
    const Tensor y1 = rnn.forward(x, t1);
    const Tensor y2 = rnn.forward(x, t2);
    ASSERT_EQ(y1.shape(), (std::vector<int>{5, 6}));
    for (std::size_t i = 0; i < y1.numel(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(Rnn, HiddenStateCarriesContext) {
    // Same input at t=0 and t=1 must give different outputs (state evolves)
    // unless the recurrent weight happens to be zero, which Xavier init
    // makes vanishingly unlikely.
    Rng rng(9);
    Rnn rnn(3, 5, 1, rng);
    Tensor x({2, 3});
    x.at(0, 0) = x.at(1, 0) = 1.0F;
    Tape tape;
    const Tensor y = rnn.forward(x, tape);
    double diff = 0.0;
    for (int h = 0; h < 5; ++h) diff += std::abs(y.at(0, h) - y.at(1, h));
    EXPECT_GT(diff, 1e-6);
}

TEST(Tape, PushPopLifo) {
    Tape tape;
    Tensor a({1});
    a[0] = 1.0F;
    Tensor b({1});
    b[0] = 2.0F;
    tape.push(std::move(a));
    tape.push(std::move(b));
    EXPECT_FLOAT_EQ(tape.pop()[0], 2.0F);
    EXPECT_FLOAT_EQ(tape.pop()[0], 1.0F);
    EXPECT_THROW(tape.pop(), std::logic_error);
}

}  // namespace
}  // namespace camo::nn
