#include <gtest/gtest.h>

#include <cmath>

#include "core/modulator.hpp"

namespace camo::core {
namespace {

double sum(const std::array<double, 5>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s;
}

TEST(Modulator, SumsToOne) {
    const ModulatorConfig cfg;
    for (double epe : {-12.0, -3.0, -0.5, 0.0, 0.5, 3.0, 12.0}) {
        EXPECT_NEAR(sum(modulation_vector(epe, cfg)), 1.0, 1e-12) << epe;
    }
}

TEST(Modulator, NearUniformForSmallEpe) {
    // Paper property: "when EPE is small, the preferences should not be
    // significantly biased".
    const auto p = modulation_vector(0.5, {});
    for (int i = 0; i < 5; ++i) {
        EXPECT_NEAR(p[static_cast<std::size_t>(i)], 0.2, 0.01);
    }
}

TEST(Modulator, ZeroEpeExactlyUniform) {
    const auto p = modulation_vector(0.0, {});
    for (int i = 0; i < 5; ++i) EXPECT_NEAR(p[static_cast<std::size_t>(i)], 0.2, 1e-12);
}

TEST(Modulator, PositiveEpePrefersInward) {
    // Positive EPE = contour outside -> m1 (-2 nm, inward) most preferred.
    const auto p = modulation_vector(6.0, {});
    EXPECT_GT(p[0], p[1]);
    EXPECT_GT(p[1], p[2]);
    EXPECT_GT(p[2], p[3]);
    EXPECT_GT(p[3], p[4]);
    EXPECT_GT(p[0], 0.5);
}

TEST(Modulator, NegativeEpePrefersOutward) {
    const auto p = modulation_vector(-6.0, {});
    EXPECT_LT(p[0], p[1]);
    EXPECT_LT(p[1], p[2]);
    EXPECT_LT(p[2], p[3]);
    EXPECT_LT(p[3], p[4]);
    EXPECT_GT(p[4], 0.5);
}

TEST(Modulator, SymmetricUnderSignFlip) {
    const auto pos = modulation_vector(4.2, {});
    const auto neg = modulation_vector(-4.2, {});
    for (int i = 0; i < 5; ++i) {
        EXPECT_NEAR(pos[static_cast<std::size_t>(i)], neg[static_cast<std::size_t>(4 - i)], 1e-12);
    }
}

TEST(Modulator, SharpnessGrowsWithEpe) {
    // "flat when EPE is small and becomes sharp as EPE increases"
    const double peak2 = modulation_vector(2.0, {})[0];
    const double peak5 = modulation_vector(5.0, {})[0];
    const double peak10 = modulation_vector(10.0, {})[0];
    EXPECT_LT(peak2, peak5);
    EXPECT_LT(peak5, peak10);
    EXPECT_GT(peak10, 0.99);  // essentially one-hot for very large EPE
}

TEST(Modulator, ExponentSweepChangesSharpness) {
    // Design-choice knob from DESIGN.md: a higher even exponent is flatter
    // for |EPE| < 1 and steeper for large |EPE|.
    ModulatorConfig n2{.k = 0.02, .n = 2, .b = 1.0, .enabled = true};
    ModulatorConfig n6{.k = 0.02, .n = 6, .b = 1.0, .enabled = true};
    EXPECT_GT(modulation_vector(0.8, n2)[0], modulation_vector(0.8, n6)[0]);
    EXPECT_GT(modulation_vector(8.0, n6)[0], modulation_vector(8.0, n2)[0] - 1e-9);
}

TEST(Modulator, ModulateProbsRenormalizes) {
    const std::array<double, 5> uniform{0.2, 0.2, 0.2, 0.2, 0.2};
    const auto out = modulate_probs(uniform, 6.0, {});
    EXPECT_NEAR(sum(out), 1.0, 1e-12);
    EXPECT_GT(out[0], out[4]);  // modulation visible through uniform policy
}

TEST(Modulator, DisabledPassthrough) {
    ModulatorConfig off;
    off.enabled = false;
    const std::array<double, 5> probs{0.1, 0.2, 0.3, 0.25, 0.15};
    const auto out = modulate_probs(probs, 8.0, off);
    for (int i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], probs[static_cast<std::size_t>(i)]);
    }
}

TEST(Modulator, PolicyStillMattersUnderModulation) {
    // A strongly opinionated policy can override a weak modulation.
    const std::array<double, 5> opinionated{0.96, 0.01, 0.01, 0.01, 0.01};
    const auto out = modulate_probs(opinionated, -1.0, {});  // weak outward pref
    EXPECT_GT(out[0], out[4]);
}

}  // namespace
}  // namespace camo::core
