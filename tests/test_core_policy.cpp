#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "core/policy.hpp"

namespace camo::core {
namespace {

PolicyConfig tiny_config(bool gnn, bool rnn) {
    PolicyConfig cfg;
    cfg.squish_size = 8;
    cfg.embed_dim = 16;
    cfg.rnn_hidden = 8;
    cfg.rnn_layers = 2;
    cfg.conv_base = 4;
    cfg.use_gnn = gnn;
    cfg.use_rnn = rnn;
    cfg.seed = 3;
    return cfg;
}

std::vector<nn::Tensor> random_features(int n, int s, Rng& rng) {
    std::vector<nn::Tensor> f;
    for (int i = 0; i < n; ++i) {
        nn::Tensor t({6, s, s});
        for (float& v : t.data()) v = static_cast<float>(rng.uniform(0.0, 1.0));
        f.push_back(std::move(t));
    }
    return f;
}

Graph chain_graph(int n) {
    Graph g;
    g.n = n;
    g.neighbors.assign(static_cast<std::size_t>(n), {});
    for (int i = 0; i + 1 < n; ++i) {
        g.neighbors[static_cast<std::size_t>(i)].push_back(i + 1);
        g.neighbors[static_cast<std::size_t>(i + 1)].push_back(i);
    }
    return g;
}

TEST(Policy, ForwardShapeAndDeterminism) {
    PolicyNetwork net(tiny_config(true, true));
    Rng rng(5);
    const auto feats = random_features(4, 8, rng);
    const Graph g = chain_graph(4);
    const nn::Tensor a = net.forward(feats, g);
    const nn::Tensor b = net.forward(feats, g);
    ASSERT_EQ(a.shape(), (std::vector<int>{4, 5}));
    for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(Policy, GnnFusionChangesWithNeighborFeatures) {
    PolicyNetwork net(tiny_config(true, false));
    Rng rng(6);
    auto feats = random_features(3, 8, rng);
    const Graph g = chain_graph(3);
    const nn::Tensor before = net.forward(feats, g);

    // Perturb only node 2's feature: node 1 (its neighbour) must react,
    // node 0 (not adjacent to 2) must not.
    for (float& v : feats[2].data()) v += 0.5F;
    const nn::Tensor after = net.forward(feats, g);

    double d0 = 0.0;
    double d1 = 0.0;
    for (int a = 0; a < 5; ++a) {
        d0 += std::abs(after.at(0, a) - before.at(0, a));
        d1 += std::abs(after.at(1, a) - before.at(1, a));
    }
    EXPECT_LT(d0, 1e-6);
    EXPECT_GT(d1, 1e-6);
}

TEST(Policy, RnnMakesDecisionsSequenceDependent) {
    PolicyNetwork net(tiny_config(false, true));
    Rng rng(7);
    auto feats = random_features(3, 8, rng);
    const Graph g = chain_graph(3);
    const nn::Tensor before = net.forward(feats, g);

    // Perturb node 0: with an RNN, later nodes' outputs must change.
    for (float& v : feats[0].data()) v += 0.5F;
    const nn::Tensor after = net.forward(feats, g);
    double d2 = 0.0;
    for (int a = 0; a < 5; ++a) d2 += std::abs(after.at(2, a) - before.at(2, a));
    EXPECT_GT(d2, 1e-7);
}

TEST(Policy, BaselineIsIndependentAcrossNodes) {
    // RL-OPC configuration: no GNN, no RNN -> node 1 is unaffected by 0.
    PolicyNetwork net(tiny_config(false, false));
    Rng rng(8);
    auto feats = random_features(2, 8, rng);
    const Graph g = chain_graph(2);
    const nn::Tensor before = net.forward(feats, g);
    for (float& v : feats[0].data()) v += 0.5F;
    const nn::Tensor after = net.forward(feats, g);
    double d1 = 0.0;
    for (int a = 0; a < 5; ++a) d1 += std::abs(after.at(1, a) - before.at(1, a));
    EXPECT_LT(d1, 1e-7);
}

struct PolicyVariant {
    bool gnn;
    bool rnn;
};

class PolicyGradSweep : public ::testing::TestWithParam<PolicyVariant> {};

TEST_P(PolicyGradSweep, BackwardMatchesFiniteDifferences) {
    // Full-network gradient check on a scalar probe loss, spot-checking a
    // subset of parameters from every module.
    const auto variant = GetParam();
    PolicyNetwork net(tiny_config(variant.gnn, variant.rnn));
    Rng rng(9);
    const int n = 3;
    const auto feats = random_features(n, 8, rng);
    const Graph g = chain_graph(n);

    nn::Tensor probe({n, 5});
    for (float& v : probe.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));

    auto loss = [&]() {
        const nn::Tensor out = net.forward(feats, g);
        double s = 0.0;
        for (std::size_t i = 0; i < out.numel(); ++i) s += static_cast<double>(out[i]) * probe[i];
        return s;
    };

    (void)net.forward(feats, g);
    for (nn::Parameter* p : net.params()) p->zero_grad();
    net.backward(probe);

    const float eps = 5e-3F;
    int checked = 0;
    for (nn::Parameter* p : net.params()) {
        // Check a few entries of each parameter tensor.
        const std::size_t stride = std::max<std::size_t>(1, p->value.numel() / 3);
        for (std::size_t i = 0; i < p->value.numel(); i += stride) {
            const float orig = p->value[i];
            p->value[i] = orig + eps;
            const double lp = loss();
            p->value[i] = orig - eps;
            const double lm = loss();
            p->value[i] = orig;
            const double numeric = (lp - lm) / (2.0 * eps);
            const double analytic = p->grad[i];
            const double denom = std::max({std::abs(numeric), std::abs(analytic), 5e-2});
            EXPECT_LT(std::abs(numeric - analytic) / denom, 0.1)
                << "param entry " << i << " numeric " << numeric << " analytic " << analytic;
            ++checked;
        }
    }
    EXPECT_GT(checked, 10);
}

INSTANTIATE_TEST_SUITE_P(Variants, PolicyGradSweep,
                         ::testing::Values(PolicyVariant{true, true}, PolicyVariant{true, false},
                                           PolicyVariant{false, true},
                                           PolicyVariant{false, false}));

TEST(Policy, SaveLoadRoundtrip) {
    const std::string path = testing::TempDir() + "camo_policy.bin";
    PolicyNetwork a(tiny_config(true, true));
    PolicyConfig cfg2 = tiny_config(true, true);
    cfg2.seed = 99;  // different init
    PolicyNetwork b(cfg2);

    Rng rng(10);
    const auto feats = random_features(2, 8, rng);
    const Graph g = chain_graph(2);

    a.save(path);
    ASSERT_TRUE(b.load(path));
    const nn::Tensor ya = a.forward(feats, g);
    const nn::Tensor yb = b.forward(feats, g);
    for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
    std::remove(path.c_str());
}

TEST(Policy, LoadRejectsDifferentArchitecture) {
    const std::string path = testing::TempDir() + "camo_policy_arch.bin";
    PolicyNetwork a(tiny_config(true, true));
    a.save(path);
    PolicyNetwork c(tiny_config(false, false));
    EXPECT_FALSE(c.load(path));
    std::remove(path.c_str());
}

TEST(Policy, RejectsMismatchedGraph) {
    PolicyNetwork net(tiny_config(true, true));
    Rng rng(11);
    const auto feats = random_features(3, 8, rng);
    const Graph g = chain_graph(4);
    EXPECT_THROW((void)net.forward(feats, g), std::invalid_argument);
    EXPECT_THROW((void)net.forward({}, chain_graph(0)), std::invalid_argument);
}

TEST(Policy, BackwardRequiresForward) {
    PolicyNetwork net(tiny_config(true, true));
    nn::Tensor g({2, 5});
    EXPECT_THROW(net.backward(g), std::logic_error);
}

}  // namespace
}  // namespace camo::core
