// Equivalence harness for incremental lithography evaluation: randomized
// clips x random action sequences must produce the same metrics through
// evaluate_incremental() as through full evaluate(), within the tolerances
// documented in litho/incremental.hpp. Golden JSON fixtures under
// tests/golden/ pin the absolute metric values of a few seeded clips so
// future perf work on either path cannot silently drift accuracy
// (regenerate with CAMO_REGEN_GOLDENS=1 after an intentional change).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "layout/metal_gen.hpp"
#include "layout/via_gen.hpp"
#include "litho/incremental.hpp"
#include "litho/simulator.hpp"

#ifndef CAMO_GOLDEN_DIR
#define CAMO_GOLDEN_DIR "tests/golden"
#endif

namespace camo::litho {
namespace {

constexpr double kPvbTolNm2 = kIncrementalPvbPixelSlack * 4.0 * 4.0;  // 4 nm pixels

class LithoIncrementalTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        LithoConfig cfg;
        cfg.grid = 256;
        cfg.pixel_nm = 4.0;
        cfg.kernels_nominal = 6;
        cfg.kernels_defocus = 5;
        cfg.cache_dir = "";  // tests never touch the on-disk cache
        sim_ = new LithoSim(cfg);
    }
    static void TearDownTestSuite() {
        delete sim_;
        sim_ = nullptr;
    }

    static LithoSim* sim_;
};

LithoSim* LithoIncrementalTest::sim_ = nullptr;

// Clips sized to fit the 256-grid simulation frame (1024 nm span): the
// generators' 2000/1500 nm defaults would hang off the grid at this scale.
geo::SegmentedLayout via_layout(int vias, std::uint64_t seed) {
    Rng rng(seed);
    layout::ViaGenOptions opt;
    opt.clip_nm = 1000;
    opt.margin_nm = 250;
    opt.min_spacing_nm = 200;
    return geo::SegmentedLayout(layout::generate_via_clip(vias, rng, opt),
                                {geo::FragmentStyle::kVia, 60}, {}, opt.clip_nm);
}

geo::SegmentedLayout metal_layout(int points, std::uint64_t seed) {
    Rng rng(seed);
    layout::MetalGenOptions opt;
    opt.clip_nm = 1000;
    opt.margin_nm = 120;
    return geo::SegmentedLayout(layout::generate_metal_clip(points, rng, opt),
                                {geo::FragmentStyle::kMetal, 60}, {}, opt.clip_nm);
}

void expect_equivalent(const SimMetrics& inc, const SimMetrics& full, const char* where) {
    ASSERT_EQ(inc.epe_segment.size(), full.epe_segment.size()) << where;
    ASSERT_EQ(inc.epe.size(), full.epe.size()) << where;
    for (std::size_t i = 0; i < inc.epe_segment.size(); ++i) {
        EXPECT_NEAR(inc.epe_segment[i], full.epe_segment[i], kIncrementalEpeTolNm)
            << where << " segment " << i;
    }
    EXPECT_NEAR(inc.sum_abs_epe, full.sum_abs_epe,
                kIncrementalEpeTolNm * static_cast<double>(std::max<std::size_t>(1, inc.epe.size())))
        << where;
    EXPECT_NEAR(inc.pvband_nm2, full.pvband_nm2, kPvbTolNm2) << where;
}

// Random-walk property: an arbitrary action sequence evaluated incrementally
// tracks a fresh full evaluation at every step.
void run_equivalence_walk(LithoSim& inc_sim, const LithoSim& full_sim,
                          const geo::SegmentedLayout& layout, std::uint64_t seed, int steps,
                          double dirty_fraction) {
    const int segments = layout.num_segments();
    Rng rng(seed);
    std::vector<int> offsets(static_cast<std::size_t>(segments), 3);

    SimMetrics inc = inc_sim.evaluate_incremental(layout, offsets);
    expect_equivalent(inc, full_sim.evaluate(layout, offsets), "initial");

    for (int t = 0; t < steps; ++t) {
        const int moves =
            std::max(1, static_cast<int>(dirty_fraction * segments));
        std::vector<int> dirty;
        for (int j = 0; j < moves; ++j) {
            const int i = rng.uniform_int(0, segments - 1);
            offsets[static_cast<std::size_t>(i)] = std::clamp(
                offsets[static_cast<std::size_t>(i)] + rng.uniform_int(-2, 2), -15, 15);
            dirty.push_back(i);
        }
        inc = inc_sim.evaluate_incremental(layout, offsets, dirty);
        const SimMetrics full = full_sim.evaluate(layout, offsets);
        expect_equivalent(inc, full, ("step " + std::to_string(t)).c_str());
    }
}

TEST_F(LithoIncrementalTest, ViaClipRandomWalkMatchesFullEvaluate) {
    LithoSim inc_sim(*sim_);
    run_equivalence_walk(inc_sim, *sim_, via_layout(3, 21), /*seed=*/31, /*steps=*/12,
                         /*dirty_fraction=*/0.1);
    EXPECT_GT(inc_sim.incremental_hit_count(), 0);
}

TEST_F(LithoIncrementalTest, MetalClipRandomWalkMatchesFullEvaluate) {
    LithoSim inc_sim(*sim_);
    run_equivalence_walk(inc_sim, *sim_, metal_layout(24, 22), /*seed=*/32, /*steps=*/10,
                         /*dirty_fraction=*/0.08);
    EXPECT_GT(inc_sim.incremental_hit_count(), 0);
}

TEST_F(LithoIncrementalTest, LargeDirtySetsStillMatchAcrossFallback) {
    // Dirty fractions straddling the fallback threshold: results must agree
    // with the full path on both sides of the switch.
    LithoSim inc_sim(*sim_);
    run_equivalence_walk(inc_sim, *sim_, metal_layout(24, 23), /*seed=*/33, /*steps=*/6,
                         /*dirty_fraction=*/0.45);
    EXPECT_GT(inc_sim.incremental_full_count(), 0);
}

TEST_F(LithoIncrementalTest, EmptyDirtySetReturnsCachedMetricsExactly) {
    LithoSim inc_sim(*sim_);
    const auto layout = via_layout(2, 24);
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), 3);

    const SimMetrics first = inc_sim.evaluate_incremental(layout, offsets);
    const SimMetrics again = inc_sim.evaluate_incremental(layout, offsets, {});

    ASSERT_EQ(first.epe_segment.size(), again.epe_segment.size());
    for (std::size_t i = 0; i < first.epe_segment.size(); ++i) {
        EXPECT_EQ(first.epe_segment[i], again.epe_segment[i]);
    }
    EXPECT_EQ(first.sum_abs_epe, again.sum_abs_epe);
    EXPECT_EQ(first.pvband_nm2, again.pvband_nm2);

    expect_equivalent(again, sim_->evaluate(layout, offsets), "empty dirty");
}

TEST_F(LithoIncrementalTest, FallbackThresholdBoundary) {
    LithoConfig cfg = sim_->config();
    cfg.incremental_fallback_fraction = 0.5;
    LithoSim inc_sim(cfg);

    const auto layout = via_layout(4, 25);  // 16 segments -> boundary at 8
    const int segments = layout.num_segments();
    ASSERT_EQ(segments, 16);
    std::vector<int> offsets(static_cast<std::size_t>(segments), 3);
    (void)inc_sim.evaluate_incremental(layout, offsets);
    const long long fulls0 = inc_sim.incremental_full_count();

    // Exactly at the boundary: incremental.
    std::vector<int> dirty;
    for (int i = 0; i < 8; ++i) {
        offsets[static_cast<std::size_t>(i)] += 1;
        dirty.push_back(i);
    }
    SimMetrics m = inc_sim.evaluate_incremental(layout, offsets, dirty);
    EXPECT_EQ(inc_sim.incremental_full_count(), fulls0);
    EXPECT_EQ(inc_sim.incremental_hit_count(), 1);
    expect_equivalent(m, sim_->evaluate(layout, offsets), "at boundary");

    // One past the boundary: full rebuild.
    dirty.clear();
    for (int i = 0; i < 9; ++i) {
        offsets[static_cast<std::size_t>(i)] -= 2;
        dirty.push_back(i);
    }
    m = inc_sim.evaluate_incremental(layout, offsets, dirty);
    EXPECT_EQ(inc_sim.incremental_full_count(), fulls0 + 1);
    expect_equivalent(m, sim_->evaluate(layout, offsets), "past boundary");
}

TEST_F(LithoIncrementalTest, StaleDirtyHintDegradesGracefully) {
    // The evaluator cross-checks the hint against its cached offsets: a
    // caller that under-reports (here: claims nothing moved) still gets the
    // right answer.
    LithoSim inc_sim(*sim_);
    const auto layout = via_layout(3, 26);
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), 3);
    (void)inc_sim.evaluate_incremental(layout, offsets);

    offsets[2] += 4;
    offsets[5] -= 3;
    const SimMetrics m = inc_sim.evaluate_incremental(layout, offsets, {});
    expect_equivalent(m, sim_->evaluate(layout, offsets), "stale hint");
}

TEST_F(LithoIncrementalTest, SameShapeDifferentLayoutIsNotMistakenForCached) {
    // Two clips with identical segment count and clip size but different via
    // positions: the cache key is the layout's content fingerprint, so the
    // switch must trigger a full rebuild even though every cheap count
    // matches (a reused address must never validate a stale cache).
    LithoSim inc_sim(*sim_);
    const auto a = via_layout(2, 41);
    const auto b = via_layout(2, 42);
    ASSERT_EQ(a.num_segments(), b.num_segments());
    ASSERT_EQ(a.clip_size_nm(), b.clip_size_nm());

    std::vector<int> offsets(static_cast<std::size_t>(a.num_segments()), 3);
    (void)inc_sim.evaluate_incremental(a, offsets);

    const SimMetrics m = inc_sim.evaluate_incremental(b, offsets, {});
    EXPECT_EQ(inc_sim.incremental_full_count(), 2);
    expect_equivalent(m, sim_->evaluate(b, offsets), "same-shape switch");
}

TEST_F(LithoIncrementalTest, LayoutSwitchTriggersFullRebuild) {
    LithoSim inc_sim(*sim_);
    const auto a = via_layout(2, 27);
    const auto b = via_layout(3, 28);
    std::vector<int> oa(static_cast<std::size_t>(a.num_segments()), 3);
    std::vector<int> ob(static_cast<std::size_t>(b.num_segments()), 3);

    (void)inc_sim.evaluate_incremental(a, oa);
    const std::vector<int> all_dirty_b = [&] {
        std::vector<int> v(static_cast<std::size_t>(b.num_segments()));
        for (int i = 0; i < b.num_segments(); ++i) v[static_cast<std::size_t>(i)] = i;
        return v;
    }();
    const SimMetrics m = inc_sim.evaluate_incremental(b, ob, all_dirty_b);
    EXPECT_EQ(inc_sim.incremental_full_count(), 2);
    expect_equivalent(m, sim_->evaluate(b, ob), "layout switch");
}

// ---- Golden-metrics regression fixtures ------------------------------------

struct GoldenCase {
    std::string name;
    geo::SegmentedLayout layout;
    std::vector<int> offsets;
};

std::vector<GoldenCase> golden_cases() {
    std::vector<GoldenCase> cases;
    {
        GoldenCase c{"via3", via_layout(3, 11), {}};
        c.offsets.resize(static_cast<std::size_t>(c.layout.num_segments()));
        for (std::size_t i = 0; i < c.offsets.size(); ++i) {
            c.offsets[i] = static_cast<int>((i * 7) % 11) - 5;
        }
        cases.push_back(std::move(c));
    }
    {
        GoldenCase c{"metal24", metal_layout(24, 12), {}};
        c.offsets.resize(static_cast<std::size_t>(c.layout.num_segments()));
        for (std::size_t i = 0; i < c.offsets.size(); ++i) {
            c.offsets[i] = static_cast<int>((i * 5) % 9) - 4;
        }
        cases.push_back(std::move(c));
    }
    return cases;
}

std::string golden_path(const std::string& name) {
    return std::string(CAMO_GOLDEN_DIR) + "/" + name + ".json";
}

void write_golden(const GoldenCase& c, const SimMetrics& m) {
    std::ofstream out(golden_path(c.name));
    ASSERT_TRUE(out) << "cannot write " << golden_path(c.name);
    out << "{\n  \"name\": \"" << c.name << "\",\n";
    out << "  \"pvband_nm2\": " << std::fixed << std::setprecision(3) << m.pvband_nm2 << ",\n";
    out << "  \"epe_segment\": [";
    for (std::size_t i = 0; i < m.epe_segment.size(); ++i) {
        out << (i ? ", " : "") << std::setprecision(6) << m.epe_segment[i];
    }
    out << "]\n}\n";
}

bool read_golden(const std::string& name, double& pvband, std::vector<double>& epe) {
    std::ifstream in(golden_path(name));
    if (!in) return false;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    const auto pv_pos = text.find("\"pvband_nm2\":");
    const auto epe_pos = text.find("\"epe_segment\":");
    if (pv_pos == std::string::npos || epe_pos == std::string::npos) return false;
    pvband = std::strtod(text.c_str() + pv_pos + 13, nullptr);

    epe.clear();
    const auto open = text.find('[', epe_pos);
    const auto close = text.find(']', open);
    if (open == std::string::npos || close == std::string::npos) return false;
    const char* p = text.c_str() + open + 1;
    const char* end = text.c_str() + close;
    while (p < end) {
        char* next = nullptr;
        const double v = std::strtod(p, &next);
        if (next == p) break;
        epe.push_back(v);
        p = next;
        while (p < end && (*p == ',' || *p == ' ' || *p == '\n')) ++p;
    }
    return true;
}

// Cross-compiler float differences (FMA contraction, vectorization) make the
// goldens looser than the path-vs-path tolerances.
constexpr double kGoldenEpeTolNm = 2e-3;
constexpr double kGoldenPvbTolNm2 = 64.0;

TEST_F(LithoIncrementalTest, GoldenMetricsBothPaths) {
    for (const GoldenCase& c : golden_cases()) {
        const SimMetrics full = sim_->evaluate(c.layout, c.offsets);

        if (std::getenv("CAMO_REGEN_GOLDENS") != nullptr) {
            write_golden(c, full);
            continue;
        }

        double golden_pvb = 0.0;
        std::vector<double> golden_epe;
        ASSERT_TRUE(read_golden(c.name, golden_pvb, golden_epe))
            << "missing golden fixture " << golden_path(c.name)
            << " (run with CAMO_REGEN_GOLDENS=1 to create)";

        ASSERT_EQ(golden_epe.size(), full.epe_segment.size()) << c.name;
        for (std::size_t i = 0; i < golden_epe.size(); ++i) {
            EXPECT_NEAR(full.epe_segment[i], golden_epe[i], kGoldenEpeTolNm)
                << c.name << " full path segment " << i;
        }
        EXPECT_NEAR(full.pvband_nm2, golden_pvb, kGoldenPvbTolNm2) << c.name << " full path";

        // The incremental path must reproduce the same goldens after
        // arriving at the golden offsets through a sequence of small dirty
        // sets (the state it would be in mid-OPC).
        LithoSim inc_sim(*sim_);
        std::vector<int> offsets(static_cast<std::size_t>(c.layout.num_segments()), 0);
        (void)inc_sim.evaluate_incremental(c.layout, offsets);
        const int chunk = std::max(1, c.layout.num_segments() / 12);
        SimMetrics inc;
        int cursor = 0;
        while (cursor < c.layout.num_segments()) {
            std::vector<int> dirty;
            for (int j = 0; j < chunk && cursor < c.layout.num_segments(); ++j, ++cursor) {
                offsets[static_cast<std::size_t>(cursor)] = c.offsets[static_cast<std::size_t>(cursor)];
                dirty.push_back(cursor);
            }
            inc = inc_sim.evaluate_incremental(c.layout, offsets, dirty);
        }
        ASSERT_GT(inc_sim.incremental_hit_count(), 0) << c.name;

        ASSERT_EQ(inc.epe_segment.size(), golden_epe.size()) << c.name;
        for (std::size_t i = 0; i < golden_epe.size(); ++i) {
            EXPECT_NEAR(inc.epe_segment[i], golden_epe[i], kGoldenEpeTolNm)
                << c.name << " incremental path segment " << i;
        }
        EXPECT_NEAR(inc.pvband_nm2, golden_pvb, kGoldenPvbTolNm2) << c.name << " incremental path";
    }
}

}  // namespace
}  // namespace camo::litho
