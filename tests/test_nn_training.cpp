#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/grad_buffer.hpp"
#include "nn/gradcheck.hpp"
#include "nn/linear.hpp"
#include "nn/rnn.hpp"
#include "nn/serialize.hpp"
#include "nn/sequential.hpp"
#include "nn/sgd.hpp"
#include "nn/softmax.hpp"

namespace camo::nn {
namespace {

TEST(Softmax, NormalizedAndOrderPreserving) {
    const std::vector<float> logits = {1.0F, 3.0F, 2.0F, -1.0F, 0.0F};
    const auto p = softmax(logits);
    float sum = 0.0F;
    for (float v : p) sum += v;
    EXPECT_NEAR(sum, 1.0F, 1e-6F);
    EXPECT_GT(p[1], p[2]);
    EXPECT_GT(p[2], p[0]);
    EXPECT_GT(p[4], p[3]);
}

TEST(Softmax, StableUnderLargeLogits) {
    const std::vector<float> logits = {1000.0F, 999.0F, 998.0F};
    const auto p = softmax(logits);
    EXPECT_FALSE(std::isnan(p[0]));
    EXPECT_GT(p[0], p[1]);
    float sum = 0.0F;
    for (float v : p) sum += v;
    EXPECT_NEAR(sum, 1.0F, 1e-5F);
}

TEST(Softmax, LogProbConsistent) {
    const std::vector<float> logits = {0.3F, -1.2F, 2.0F, 0.0F, 0.7F};
    const auto p = softmax(logits);
    for (int a = 0; a < 5; ++a) {
        EXPECT_NEAR(log_prob(logits, a), std::log(p[static_cast<std::size_t>(a)]), 1e-5F);
    }
}

TEST(Softmax, PolicyLogitGradMatchesNumeric) {
    std::vector<float> logits = {0.5F, -0.3F, 1.1F, 0.0F, -0.9F};
    const int action = 2;
    const float coef = 0.7F;
    const auto g = policy_logit_grad(logits, action, coef);

    const float eps = 1e-3F;
    for (int i = 0; i < 5; ++i) {
        const float orig = logits[static_cast<std::size_t>(i)];
        logits[static_cast<std::size_t>(i)] = orig + eps;
        const float lp = coef * log_prob(logits, action);
        logits[static_cast<std::size_t>(i)] = orig - eps;
        const float lm = coef * log_prob(logits, action);
        logits[static_cast<std::size_t>(i)] = orig;
        EXPECT_NEAR(g[static_cast<std::size_t>(i)], (lp - lm) / (2 * eps), 5e-3F);
    }
}

TEST(Sgd, ConvergesOnQuadratic) {
    // Minimize ||W x - y||^2 for a fixed x, y via the Linear layer.
    Rng rng(10);
    Linear layer(3, 2, rng);
    Tensor x({3});
    x[0] = 1.0F;
    x[1] = -0.5F;
    x[2] = 2.0F;
    const float target0 = 0.7F;
    const float target1 = -0.2F;

    Sgd opt(layer.params(), {.lr = 0.05F});
    float last_loss = 1e9F;
    for (int it = 0; it < 200; ++it) {
        Tape tape;
        const Tensor y = layer.forward(x, tape);
        Tensor gy({2});
        gy[0] = 2.0F * (y[0] - target0);
        gy[1] = 2.0F * (y[1] - target1);
        last_loss = (y[0] - target0) * (y[0] - target0) + (y[1] - target1) * (y[1] - target1);
        (void)layer.backward(gy, tape);
        opt.step();
    }
    EXPECT_LT(last_loss, 1e-4F);
}

TEST(Sgd, MomentumConvergesOnQuadratic) {
    // Momentum must still converge (it can oscillate short-term, so compare
    // against the target rather than against plain SGD at a fixed step).
    Rng rng(11);
    Linear layer(4, 1, rng);
    Tensor x({4});
    x.fill(1.0F);
    Sgd opt(layer.params(), {.lr = 0.005F, .momentum = 0.9F});
    float loss = 1e9F;
    for (int it = 0; it < 300; ++it) {
        Tape tape;
        const Tensor y = layer.forward(x, tape);
        Tensor gy({1});
        gy[0] = 2.0F * (y[0] - 3.0F);
        loss = (y[0] - 3.0F) * (y[0] - 3.0F);
        (void)layer.backward(gy, tape);
        opt.step();
    }
    EXPECT_LT(loss, 1e-4F);
}

TEST(Sgd, ClipNormBoundsUpdates) {
    Rng rng(12);
    Linear layer(2, 1, rng);
    const Tensor before = layer.params()[0]->value.reshaped({2});

    Tensor x({2});
    x.fill(100.0F);  // produce a huge gradient
    Tape tape;
    const Tensor y = layer.forward(x, tape);
    Tensor gy({1});
    gy[0] = 1000.0F;
    (void)layer.backward(gy, tape);

    Sgd opt(layer.params(), {.lr = 0.01F, .clip_norm = 1.0F});
    opt.step();
    const Tensor after = layer.params()[0]->value.reshaped({2});
    // The whole update vector is bounded by lr * clip_norm.
    double norm = 0.0;
    for (int i = 0; i < 2; ++i) {
        const double d = after[static_cast<std::size_t>(i)] - before[static_cast<std::size_t>(i)];
        norm += d * d;
    }
    EXPECT_LE(std::sqrt(norm), 0.01 + 1e-6);
}

TEST(Sgd, WeightDecayShrinksWeights) {
    Rng rng(13);
    Linear layer(3, 2, rng);
    double before = 0.0;
    for (float v : layer.params()[0]->value.data()) before += v * v;
    Sgd opt(layer.params(), {.lr = 0.1F, .weight_decay = 0.5F});
    opt.step();  // zero gradient: only the decay term acts
    double after = 0.0;
    for (float v : layer.params()[0]->value.data()) after += v * v;
    EXPECT_LT(after, before);
}

TEST(Training, OverfitsTinyClassification) {
    // 4 points, 2 classes, tiny MLP: cross-entropy must fall substantially.
    Rng rng(13);
    Sequential net;
    net.emplace<Linear>(2, 16, rng);
    net.emplace<ReLU>();
    net.emplace<Linear>(16, 2, rng);

    const std::vector<std::pair<std::vector<float>, int>> data = {
        {{0.0F, 0.0F}, 0}, {{1.0F, 1.0F}, 0}, {{0.0F, 1.0F}, 1}, {{1.0F, 0.0F}, 1}};

    Sgd opt(net.params(), {.lr = 0.1F, .momentum = 0.9F});
    double first_loss = 0.0;
    double last_loss = 0.0;
    for (int epoch = 0; epoch < 200; ++epoch) {
        double loss = 0.0;
        for (const auto& [xv, label] : data) {
            Tensor x({2});
            x[0] = xv[0];
            x[1] = xv[1];
            Tape tape;
            const Tensor logits = net.forward(x, tape);
            loss += -log_prob(logits.data(), label);
            // Gradient ascent on log prob == descent on NLL: negate.
            const auto g = policy_logit_grad(logits.data(), label, -1.0F);
            Tensor gy({2});
            gy[0] = g[0];
            gy[1] = g[1];
            (void)net.backward(gy, tape);
        }
        opt.step();
        if (epoch == 0) first_loss = loss;
        last_loss = loss;
    }
    EXPECT_LT(last_loss, first_loss * 0.1);
}

// ---- Accumulate-then-reduce gradient path ----------------------------------
// The data-parallel trainer captures per-sample gradients into detached
// buffers (nn/grad_buffer.hpp) and folds them back in fixed order. Because
// every Layer::backward adds exactly one value per parameter element per
// call (the accumulation contract in layer.hpp), the reduced gradients must
// equal direct single-buffer accumulation to 0 ULP — this is what makes
// training results independent of the worker count.

Tensor random_tensor(std::vector<int> shape, Rng& rng) {
    Tensor t(std::move(shape));
    for (float& v : t.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return t;
}

void zero_all(const std::vector<Parameter*>& params) {
    for (Parameter* p : params) p->zero_grad();
}

std::vector<Tensor> grads_snapshot(const std::vector<Parameter*>& params) {
    std::vector<Tensor> out;
    out.reserve(params.size());
    for (Parameter* p : params) out.push_back(p->grad);
    return out;
}

void expect_reduce_matches_single_buffer(Layer& layer, const std::vector<Tensor>& inputs,
                                         const std::vector<Tensor>& probes) {
    const auto params = layer.params();
    ASSERT_FALSE(params.empty());

    // Path A: the whole minibatch accumulates into the shared grads.
    zero_all(params);
    for (std::size_t k = 0; k < inputs.size(); ++k) {
        Tape tape;
        (void)layer.forward(inputs[k], tape);
        (void)layer.backward(probes[k], tape);
    }
    const std::vector<Tensor> single = grads_snapshot(params);

    // Path B: per-sample buffers captured from zeroed grads, then reduced
    // in sample order.
    zero_all(params);
    std::vector<GradBuffer> buffers(inputs.size());
    for (std::size_t k = 0; k < inputs.size(); ++k) {
        Tape tape;
        (void)layer.forward(inputs[k], tape);
        (void)layer.backward(probes[k], tape);
        buffers[k].capture(params);
    }
    reduce_in_order(buffers, params);

    for (std::size_t i = 0; i < params.size(); ++i) {
        ASSERT_EQ(params[i]->grad.numel(), single[i].numel());
        EXPECT_EQ(0, std::memcmp(params[i]->grad.data().data(), single[i].data().data(),
                                 single[i].numel() * sizeof(float)))
            << "param " << i << ": reduced grads differ from single-buffer grads";
    }
    zero_all(params);
}

TEST(GradReduce, LinearReducedMatchesSingleBufferToZeroUlp) {
    Rng rng(21);
    Linear layer(7, 5, rng);
    std::vector<Tensor> inputs;
    std::vector<Tensor> probes;
    for (int k = 0; k < 6; ++k) {
        inputs.push_back(random_tensor({7}, rng));
        probes.push_back(random_tensor({5}, rng));
    }
    expect_reduce_matches_single_buffer(layer, inputs, probes);
}

TEST(GradReduce, Conv2dReducedMatchesSingleBufferToZeroUlp) {
    Rng rng(22);
    Conv2d layer(3, 4, 3, 2, 1, rng);
    std::vector<Tensor> inputs;
    std::vector<Tensor> probes;
    for (int k = 0; k < 5; ++k) {
        inputs.push_back(random_tensor({3, 8, 8}, rng));
        probes.push_back(random_tensor({4, 4, 4}, rng));
    }
    expect_reduce_matches_single_buffer(layer, inputs, probes);
}

TEST(GradReduce, RnnReducedMatchesSingleBufferToZeroUlp) {
    Rng rng(23);
    Rnn layer(6, 5, 2, rng);
    std::vector<Tensor> inputs;
    std::vector<Tensor> probes;
    for (int k = 0; k < 5; ++k) {
        inputs.push_back(random_tensor({4, 6}, rng));
        probes.push_back(random_tensor({4, 5}, rng));
    }
    expect_reduce_matches_single_buffer(layer, inputs, probes);
}

TEST(GradReduce, AnalyticGradientsSurviveLocalAccumulation) {
    // The local-accumulate-then-add refactor must not change what the
    // gradients mean, only how they are folded in: central differences
    // still agree for every layer the trainer reduces.
    {
        Rng rng(24);
        Linear layer(6, 4, rng);
        const Tensor x = random_tensor({6}, rng);
        EXPECT_TRUE(gradient_check(layer, x, rng).ok());
    }
    {
        Rng rng(25);
        Conv2d layer(2, 3, 3, 2, 1, rng);
        const Tensor x = random_tensor({2, 8, 8}, rng);
        EXPECT_TRUE(gradient_check(layer, x, rng).ok());
    }
    {
        Rng rng(26);
        Rnn layer(5, 4, 2, rng);
        const Tensor x = random_tensor({3, 5}, rng);
        EXPECT_TRUE(gradient_check(layer, x, rng).ok());
    }
}

TEST(GradBufferApi, CaptureZeroesSourceAndAddRestores) {
    Rng rng(27);
    Linear layer(3, 2, rng);
    const auto params = layer.params();

    Tape tape;
    const Tensor x = random_tensor({3}, rng);
    (void)layer.forward(x, tape);
    Tensor gy({2});
    gy[0] = 1.0F;
    gy[1] = -0.5F;
    (void)layer.backward(gy, tape);
    const std::vector<Tensor> before = grads_snapshot(params);

    GradBuffer buf;
    buf.capture(params);
    for (Parameter* p : params) {
        for (float v : p->grad.data()) EXPECT_EQ(v, 0.0F);
    }

    buf.add_to(params);
    for (std::size_t i = 0; i < params.size(); ++i) {
        EXPECT_EQ(0, std::memcmp(params[i]->grad.data().data(), before[i].data().data(),
                                 before[i].numel() * sizeof(float)));
    }
    zero_all(params);
}

TEST(GradBufferApi, MergeSumsAndRejectsMismatch) {
    Rng rng(28);
    Linear a(2, 2, rng);
    Linear other(3, 1, rng);

    const auto fill_grads = [](Linear& l, float v) {
        for (Parameter* p : l.params()) p->grad.fill(v);
    };

    fill_grads(a, 1.5F);
    GradBuffer b1;
    b1.capture(a.params());
    fill_grads(a, 2.0F);
    GradBuffer b2;
    b2.capture(a.params());

    b1.merge(b2);
    b1.add_to(a.params());
    for (Parameter* p : a.params()) {
        for (float v : p->grad.data()) EXPECT_EQ(v, 3.5F);
    }

    GradBuffer wrong;
    wrong.capture(other.params());
    EXPECT_THROW(b1.merge(wrong), std::invalid_argument);
    EXPECT_THROW(wrong.add_to(a.params()), std::invalid_argument);

    // Merging into an empty buffer adopts the other's contents.
    GradBuffer empty;
    empty.merge(b2);
    EXPECT_EQ(empty.size(), b2.size());
}

TEST(Serialize, RoundtripRestoresWeights) {
    const std::string path = testing::TempDir() + "camo_net_test.bin";
    Rng rng(14);
    Linear a(3, 4, rng);
    Linear b(3, 4, rng);  // different init

    save_params(path, a.params());
    ASSERT_TRUE(load_params(path, b.params()));
    for (std::size_t i = 0; i < a.params()[0]->value.numel(); ++i) {
        EXPECT_FLOAT_EQ(a.params()[0]->value[i], b.params()[0]->value[i]);
    }
    std::remove(path.c_str());
}

TEST(Serialize, RejectsShapeMismatch) {
    const std::string path = testing::TempDir() + "camo_net_mismatch.bin";
    Rng rng(15);
    Linear a(3, 4, rng);
    Linear c(5, 2, rng);
    save_params(path, a.params());
    EXPECT_FALSE(load_params(path, c.params()));
    std::remove(path.c_str());
}

TEST(Serialize, RejectsTrailingBytes) {
    // A concatenated or truncated-then-appended weights file must not load:
    // the stream has to end exactly where the last parameter does.
    const std::string path = testing::TempDir() + "camo_net_trailing.bin";
    Rng rng(17);
    Linear a(3, 4, rng);
    Linear b(3, 4, rng);
    save_params(path, a.params());
    {
        std::ofstream app(path, std::ios::binary | std::ios::app);
        const char junk[4] = {0, 1, 2, 3};
        app.write(junk, sizeof junk);
    }
    EXPECT_FALSE(load_params(path, b.params()));
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileReturnsFalse) {
    Rng rng(16);
    Linear a(2, 2, rng);
    EXPECT_FALSE(load_params("/nonexistent/dir/weights.bin", a.params()));
}

}  // namespace
}  // namespace camo::nn
