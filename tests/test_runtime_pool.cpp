#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace camo::runtime {
namespace {

TEST(ThreadPool, ExecutesEveryTask) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);

    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
    ThreadPool pool(2);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 20; ++i) {
        futures.push_back(pool.submit([i] { return i * i; }));
    }
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
    }
}

TEST(ThreadPool, PropagatesExceptions) {
    ThreadPool pool(2);
    auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    auto good = pool.submit([] { return 7; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    EXPECT_EQ(good.get(), 7);  // a throwing task must not take down a worker
}

TEST(ThreadPool, DestructorDrainsQueuedTasksAndJoins) {
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i) {
            (void)pool.submit([&counter] {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                counter.fetch_add(1);
            });
        }
        // Destructor runs here with tasks still queued.
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WorkerIndexIsStableAndInRange) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.worker_index(), -1);  // caller is not a pool worker

    std::mutex mu;
    std::set<int> seen;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 60; ++i) {
        futures.push_back(pool.submit([&] {
            const int idx = pool.worker_index();
            std::lock_guard<std::mutex> lock(mu);
            seen.insert(idx);
        }));
    }
    for (auto& f : futures) f.get();
    for (int idx : seen) {
        EXPECT_GE(idx, 0);
        EXPECT_LT(idx, 3);
    }
}

TEST(ThreadPool, NestedSubmitFromWorkerCompletes) {
    ThreadPool pool(2);
    auto outer = pool.submit([&pool] {
        auto inner = pool.submit([] { return 41; });
        return inner.get() + 1;
    });
    EXPECT_EQ(outer.get(), 42);
}

TEST(ThreadPool, SingleThreadPoolStillRunsEverything) {
    ThreadPool pool(1);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 25; ++i) {
        futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), 25);
}

}  // namespace
}  // namespace camo::runtime
