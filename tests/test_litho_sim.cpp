#include <gtest/gtest.h>

#include <cmath>

#include "litho/simulator.hpp"

namespace camo::litho {
namespace {

// One shared simulator per suite: kernel construction dominates test time.
class LithoSimTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        LithoConfig cfg;
        cfg.grid = 256;
        cfg.pixel_nm = 4.0;
        cfg.kernels_nominal = 6;
        cfg.kernels_defocus = 5;
        cfg.cache_dir = "";  // tests never touch the on-disk cache
        sim_ = new LithoSim(cfg);
    }
    static void TearDownTestSuite() {
        delete sim_;
        sim_ = nullptr;
    }

    static LithoSim* sim_;
};

LithoSim* LithoSimTest::sim_ = nullptr;

geo::SegmentedLayout via_layout(int clip = 1000) {
    const int lo = clip / 2 - 35;
    return geo::SegmentedLayout({geo::Polygon::from_rect({lo, lo, lo + 70, lo + 70})},
                                {geo::FragmentStyle::kVia, 60}, {}, clip);
}

TEST_F(LithoSimTest, ThresholdCalibratedInPhysicalRange) {
    EXPECT_GT(sim_->threshold(), 0.02);
    EXPECT_LT(sim_->threshold(), 0.9);
}

TEST_F(LithoSimTest, EmptyMaskPrintsNothing) {
    geo::Raster mask(sim_->config().grid, sim_->config().pixel_nm);
    const geo::Raster aerial = sim_->aerial_nominal(mask);
    for (float v : aerial.data()) EXPECT_LT(v, 1e-4F);
}

TEST_F(LithoSimTest, OpenFrameIsBrightAndFlat) {
    geo::Raster mask(sim_->config().grid, sim_->config().pixel_nm);
    mask.fill(1.0F);
    const geo::Raster aerial = sim_->aerial_nominal(mask);
    const int n = aerial.n();
    const float center = aerial.at(n / 2, n / 2);
    EXPECT_GT(center, 0.5F);
    // Flat away from wraparound edges.
    EXPECT_NEAR(aerial.at(n / 2 + 5, n / 2 - 3), center, 0.02F);
}

TEST_F(LithoSimTest, LargeFeatureOverprintsBoundedly) {
    // With the dose-to-size fraction below 1, a large feature's contour sits
    // a bounded distance *outside* the target: positive EPE the OPC engines
    // must pull in, never a clamp (the feature always prints).
    const int clip = 1000;
    const int lo = clip / 2 - 200;
    geo::SegmentedLayout layout({geo::Polygon::from_rect({lo, lo, lo + 400, lo + 400})},
                                {geo::FragmentStyle::kVia, 60}, {}, clip);
    const std::vector<int> zeros(4, 0);
    const SimMetrics m = sim_->evaluate(layout, zeros);
    ASSERT_EQ(m.epe.size(), 4U);
    for (double e : m.epe) {
        EXPECT_GT(e, 0.0);
        EXPECT_LT(e, sim_->config().epe_range_nm) << "must not clamp";
    }
}

TEST_F(LithoSimTest, IsolatedViaUnderprints) {
    // 70 nm via is sub-resolution: it must print small (negative EPE).
    const auto layout = via_layout();
    const std::vector<int> zeros(4, 0);
    const SimMetrics m = sim_->evaluate(layout, zeros);
    for (double e : m.epe) EXPECT_LT(e, 0.0);
}

TEST_F(LithoSimTest, OutwardBiasReducesViaUnderprint) {
    const auto layout = via_layout();
    const std::vector<int> zeros(4, 0);
    const std::vector<int> biased(4, 6);
    const SimMetrics m0 = sim_->evaluate(layout, zeros);
    const SimMetrics m6 = sim_->evaluate(layout, biased);
    EXPECT_LT(m6.sum_abs_epe, m0.sum_abs_epe);
}

TEST_F(LithoSimTest, SymmetricViaGivesSymmetricEpe) {
    const auto layout = via_layout();
    const std::vector<int> zeros(4, 0);
    const SimMetrics m = sim_->evaluate(layout, zeros);
    ASSERT_EQ(m.epe.size(), 4U);
    for (std::size_t i = 1; i < 4; ++i) EXPECT_NEAR(m.epe[i], m.epe[0], 0.35);
}

TEST_F(LithoSimTest, DoseMonotonicity) {
    const auto layout = via_layout();
    const std::vector<int> biased(4, 8);
    const auto polys = layout.reconstruct_mask(biased);
    const geo::Raster mask = sim_->rasterize(polys, {}, layout.clip_size_nm());
    const geo::Raster aerial = sim_->aerial_nominal(mask);

    // Bind the printed rasters: data() is a span into the Raster, and a
    // range-for over a temporary's span is a use-after-free in C++20.
    const geo::Raster low = sim_->printed(aerial, 0.95);
    const geo::Raster high = sim_->printed(aerial, 1.05);
    double printed_low = 0.0;
    double printed_high = 0.0;
    for (float v : low.data()) printed_low += v;
    for (float v : high.data()) printed_high += v;
    EXPECT_GE(printed_high, printed_low);
    EXPECT_GT(printed_high, 0.0);
}

TEST_F(LithoSimTest, DefocusLowersPeakIntensity) {
    const auto layout = via_layout();
    const std::vector<int> biased(4, 8);
    const auto polys = layout.reconstruct_mask(biased);
    const geo::Raster mask = sim_->rasterize(polys, {}, layout.clip_size_nm());

    const geo::Raster nom = sim_->aerial_nominal(mask);
    const geo::Raster def = sim_->aerial_defocus(mask);
    float peak_nom = 0.0F;
    float peak_def = 0.0F;
    for (float v : nom.data()) peak_nom = std::max(peak_nom, v);
    for (float v : def.data()) peak_def = std::max(peak_def, v);
    EXPECT_LT(peak_def, peak_nom);
}

TEST_F(LithoSimTest, PvBandPositiveForPrintedVia) {
    const auto layout = via_layout();
    const std::vector<int> biased(4, 8);
    const SimMetrics m = sim_->evaluate(layout, biased);
    EXPECT_GT(m.pvband_nm2, 0.0);
    // Sanity upper bound: the band is a thin annulus, far below clip area.
    EXPECT_LT(m.pvband_nm2, 200.0 * 200.0);
}

TEST_F(LithoSimTest, EpeSegmentCoversAllSegments) {
    const auto layout = via_layout();
    const std::vector<int> zeros(4, 0);
    const SimMetrics m = sim_->evaluate(layout, zeros);
    EXPECT_EQ(m.epe_segment.size(), static_cast<std::size_t>(layout.num_segments()));
    EXPECT_EQ(m.epe.size(), 4U);
}

TEST_F(LithoSimTest, EvaluateCountsCalls) {
    const auto layout = via_layout();
    const std::vector<int> zeros(4, 0);
    const long long before = sim_->evaluate_count();
    (void)sim_->evaluate(layout, zeros);
    EXPECT_EQ(sim_->evaluate_count(), before + 1);
}

TEST(LithoSimConfig, RejectsNonPow2Grid) {
    LithoConfig cfg;
    cfg.grid = 300;
    cfg.cache_dir = "";
    EXPECT_THROW(LithoSim sim(cfg), std::invalid_argument);
}

TEST(LithoSimConfig, PhysicsHashSensitivity) {
    LithoConfig a;
    LithoConfig b;
    EXPECT_EQ(a.physics_hash(), b.physics_hash());
    b.na = 1.2;
    EXPECT_NE(a.physics_hash(), b.physics_hash());
    LithoConfig c;
    c.grid = 256;
    EXPECT_NE(a.physics_hash(), c.physics_hash());
}

TEST(LithoMetrics, EpeSignConvention) {
    // Synthetic aerial: bright left half, dark right half, smooth ramp.
    geo::Raster aerial(64, 1.0);
    for (int r = 0; r < 64; ++r) {
        for (int c = 0; c < 64; ++c) {
            aerial.at(r, c) = 1.0F / (1.0F + std::exp(0.5F * (c - 32)));
        }
    }
    // Target edge exactly at the 0.5 crossing (x = 32.5 in nm, pixel centres
    // at +0.5): EPE should be ~0.
    const double epe0 = measure_epe(aerial, 0.5, {32.5, 32.0}, {1.0, 0.0}, 15.0);
    EXPECT_NEAR(epe0, 0.0, 0.6);
    // Target edge inside the bright region: contour is outside -> positive.
    const double epe_pos = measure_epe(aerial, 0.5, {28.0, 32.0}, {1.0, 0.0}, 15.0);
    EXPECT_GT(epe_pos, 2.0);
    // Target edge in the dark region: contour receded -> negative.
    const double epe_neg = measure_epe(aerial, 0.5, {38.0, 32.0}, {1.0, 0.0}, 15.0);
    EXPECT_LT(epe_neg, -2.0);
}

TEST(LithoMetrics, EpeClampsWhenNoContour) {
    geo::Raster dark(32, 1.0);  // nothing prints
    const double epe = measure_epe(dark, 0.5, {16.0, 16.0}, {1.0, 0.0}, 10.0);
    EXPECT_DOUBLE_EQ(epe, -10.0);

    geo::Raster bright(32, 1.0);
    bright.fill(1.0F);
    const double epe2 = measure_epe(bright, 0.5, {16.0, 16.0}, {1.0, 0.0}, 10.0);
    EXPECT_DOUBLE_EQ(epe2, 10.0);
}

TEST(LithoMetrics, PvBandCountsBandPixels) {
    geo::Raster nom(16, 2.0);
    geo::Raster def(16, 2.0);
    // Outer prints a 4-pixel block, inner prints nothing.
    nom.at(5, 5) = nom.at(5, 6) = nom.at(6, 5) = nom.at(6, 6) = 1.0F;
    const double band = pv_band_nm2(nom, def, 0.5, 0.98, 1.02);
    EXPECT_DOUBLE_EQ(band, 4.0 * 2.0 * 2.0);

    // Identical images with identical dose corners -> zero band.
    const double zero_band = pv_band_nm2(nom, nom, 0.5, 1.0, 1.0);
    EXPECT_DOUBLE_EQ(zero_band, 0.0);
}

}  // namespace
}  // namespace camo::litho
