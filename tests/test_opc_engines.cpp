#include <gtest/gtest.h>

#include <algorithm>

#include "opc/ilt.hpp"
#include "opc/one_shot.hpp"
#include "opc/rule_engine.hpp"
#include "opc/sraf.hpp"
#include "rl/reward.hpp"

namespace camo::opc {
namespace {

class OpcEngineTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        litho::LithoConfig cfg;
        cfg.grid = 256;
        cfg.pixel_nm = 4.0;
        cfg.kernels_nominal = 6;
        cfg.kernels_defocus = 5;
        cfg.cache_dir = "";
        sim_ = new litho::LithoSim(cfg);
    }
    static void TearDownTestSuite() {
        delete sim_;
        sim_ = nullptr;
    }

    static geo::SegmentedLayout via_layout() {
        const int clip = 1000;
        const int lo = clip / 2 - 35;
        auto targets = std::vector<geo::Polygon>{geo::Polygon::from_rect({lo, lo, lo + 70, lo + 70})};
        auto srafs = insert_srafs(targets);
        return geo::SegmentedLayout(std::move(targets), {geo::FragmentStyle::kVia, 60},
                                    std::move(srafs), clip);
    }

    static litho::LithoSim* sim_;
};

litho::LithoSim* OpcEngineTest::sim_ = nullptr;

TEST_F(OpcEngineTest, RuleEngineReducesEpe) {
    RuleEngine engine;
    OpcOptions opt;
    opt.max_iterations = 8;
    opt.initial_bias_nm = 0;  // start from the raw target: large EPE
    const EngineResult res = engine.optimize(via_layout(), *sim_, opt);
    ASSERT_GE(res.epe_history.size(), 2U);
    EXPECT_LT(res.final_metrics.sum_abs_epe, res.epe_history.front() * 0.5);
    // Converged quality: around 1 nm per measure point.
    EXPECT_LT(res.final_metrics.sum_abs_epe, 6.0);
    EXPECT_EQ(res.iterations, 8);  // fixed recipe, no early exit by default
}

TEST_F(OpcEngineTest, RuleEngineEarlyExitStops) {
    RuleEngine engine({.gain = 0.6, .max_step_nm = 4, .early_exit = true});
    OpcOptions opt;
    opt.max_iterations = 10;
    opt.exit_epe_per_feature = 4.0;
    const EngineResult res = engine.optimize(via_layout(), *sim_, opt);
    EXPECT_LT(res.iterations, 10);
    EXPECT_LT(res.final_metrics.sum_abs_epe, 4.0 * 1.0 + 4.0);  // near the exit bound
}

TEST_F(OpcEngineTest, OneShotSingleIteration) {
    OneShotEngine engine;
    OpcOptions opt;
    const EngineResult res = engine.optimize(via_layout(), *sim_, opt);
    EXPECT_EQ(res.iterations, 1);
    EXPECT_EQ(res.epe_history.size(), 2U);
    // Improves over the initial mask but stays worse than the rule engine.
    EXPECT_LT(res.final_metrics.sum_abs_epe, res.epe_history.front());

    RuleEngine rule;
    OpcOptions ropt;
    ropt.max_iterations = 8;
    const EngineResult rres = rule.optimize(via_layout(), *sim_, ropt);
    EXPECT_LE(rres.final_metrics.sum_abs_epe, res.final_metrics.sum_abs_epe + 1e-9);
}

TEST_F(OpcEngineTest, TrajectoryRecordsActionsInActionSpace) {
    RuleEngine teacher({.gain = 0.6, .max_step_nm = 2, .early_exit = false});
    OpcOptions opt;
    const rl::Trajectory traj = teacher.record_trajectory(via_layout(), *sim_, opt, 5);
    ASSERT_EQ(traj.steps.size(), 5U);
    const auto layout = via_layout();
    for (const rl::StepRecord& s : traj.steps) {
        EXPECT_EQ(static_cast<int>(s.actions.size()), layout.num_segments());
        EXPECT_EQ(static_cast<int>(s.offsets_before.size()), layout.num_segments());
        for (int a : s.actions) {
            EXPECT_GE(a, 0);
            EXPECT_LT(a, rl::kNumActions);
        }
        EXPECT_GE(s.sum_abs_epe_before, 0.0);
    }
    // The teacher must be making progress over its trajectory.
    EXPECT_LT(traj.final_sum_abs_epe, traj.steps.front().sum_abs_epe_before);
}

TEST_F(OpcEngineTest, IltReducesContourLoss) {
    IltEngine ilt({.iterations = 10, .step = 4.0, .mask_steepness = 4.0, .resist_steepness = 40.0});
    const IltResult res = ilt.optimize(via_layout(), *sim_);
    EXPECT_LT(res.final_loss, res.initial_loss);
    EXPECT_EQ(res.loss_history.size(), 11U);
    EXPECT_GE(res.sum_abs_epe, 0.0);
}

TEST_F(OpcEngineTest, OneShotWindowObjectiveCarriesFinalSweep) {
    OneShotEngine engine;
    OpcOptions opt;
    opt.objective = rl::RewardMode::kWorstCorner;
    litho::LithoSim sim(*sim_);
    const EngineResult res = engine.optimize(via_layout(), sim, opt);
    EXPECT_EQ(res.iterations, 1);
    ASSERT_TRUE(res.final_window.has_value());
    EXPECT_EQ(res.final_window->corners.size(), 6U);  // standard window
    // The objective view reports the worst corner.
    EXPECT_EQ(res.final_metrics.sum_abs_epe, res.final_window->worst_epe);
    EXPECT_EQ(res.final_metrics.pvband_nm2, res.final_window->pv_band_exact_nm2);
    // Worst corner never beats nominal.
    ASSERT_NE(res.final_window->nominal_corner(), nullptr);
    EXPECT_GE(res.final_window->worst_epe,
              res.final_window->nominal_corner()->metrics.sum_abs_epe);
}

TEST_F(OpcEngineTest, TrajectoryCarriesWindowMetricsUnderWindowObjective) {
    RuleEngine teacher({.gain = 0.6, .max_step_nm = 2, .early_exit = false});
    OpcOptions opt;
    opt.objective = rl::RewardMode::kWorstCorner;
    litho::LithoSim sim(*sim_);
    const rl::Trajectory traj = teacher.record_trajectory(via_layout(), sim, opt, 3);
    ASSERT_EQ(traj.steps.size(), 3U);
    for (const rl::StepRecord& s : traj.steps) {
        EXPECT_GT(s.worst_epe_before, 0.0);
        EXPECT_GE(s.worst_epe_before, s.sum_abs_epe_before - 1e-9);
        EXPECT_GT(s.pv_band_exact_before, 0.0);
        EXPECT_EQ(s.corner_epe_before.size(), 6U);
        EXPECT_EQ(*std::max_element(s.corner_epe_before.begin(), s.corner_epe_before.end()),
                  s.worst_epe_before);
    }
    EXPECT_GT(traj.final_worst_epe, 0.0);
    EXPECT_EQ(traj.final_corner_epe.size(), 6U);
    // The teacher improves the worst corner over its trajectory.
    EXPECT_LT(traj.final_worst_epe, traj.steps.front().worst_epe_before);

    // Nominal trajectories leave the window fields empty, as before.
    const rl::Trajectory plain = teacher.record_trajectory(via_layout(), sim, OpcOptions{}, 2);
    EXPECT_EQ(plain.steps.front().corner_epe_before.size(), 0U);
    EXPECT_EQ(plain.final_worst_epe, 0.0);
}

TEST_F(OpcEngineTest, IltWindowObjectiveReducesWorstCornerLoss) {
    const IltOptions base{.iterations = 8, .step = 4.0, .mask_steepness = 4.0,
                          .resist_steepness = 40.0};
    // Nominal path is byte-compatible with the legacy single-corner loss.
    IltEngine nominal(base);
    const IltResult nom = nominal.optimize(via_layout(), *sim_);
    EXPECT_LT(nom.final_loss, nom.initial_loss);
    EXPECT_EQ(nom.worst_corner_epe, 0.0);
    ASSERT_EQ(nom.corner_loss.size(), 1U);
    EXPECT_EQ(nom.corner_loss.front(), nom.final_loss);

    IltOptions wopt = base;
    wopt.objective = rl::RewardMode::kWorstCorner;
    IltEngine worst(wopt);
    const IltResult wres = worst.optimize(via_layout(), *sim_);
    EXPECT_LT(wres.final_loss, wres.initial_loss);
    EXPECT_EQ(wres.corner_loss.size(), 6U);  // standard window
    // final_loss is the max corner loss in worst mode.
    EXPECT_EQ(*std::max_element(wres.corner_loss.begin(), wres.corner_loss.end()),
              wres.final_loss);
    EXPECT_GT(wres.worst_corner_epe, 0.0);
    EXPECT_GE(wres.worst_corner_epe, wres.sum_abs_epe - 1e-9);

    IltOptions mean_opt = base;
    mean_opt.objective = rl::RewardMode::kWeightedCorner;
    mean_opt.corner_weights = {1.0, 1.0, 1.0, 1.0, 1.0, 2.0};
    IltEngine weighted(mean_opt);
    const IltResult mres = weighted.optimize(via_layout(), *sim_);
    EXPECT_LT(mres.final_loss, mres.initial_loss);
    EXPECT_EQ(mres.corner_loss.size(), 6U);
}

TEST(OpcExit, EarlyExitRules) {
    OpcOptions opt;
    opt.exit_epe_per_feature = 4.0;
    EXPECT_TRUE(should_exit_early(7.9, 2, 8, opt));   // 3.95 per via
    EXPECT_FALSE(should_exit_early(8.1, 2, 8, opt));  // 4.05 per via

    OpcOptions metal;
    metal.exit_epe_per_point = 1.0;
    EXPECT_TRUE(should_exit_early(63.0, 5, 64, metal));
    EXPECT_FALSE(should_exit_early(65.0, 5, 64, metal));

    OpcOptions off;
    EXPECT_FALSE(should_exit_early(0.0, 2, 8, off));  // both rules disabled
}

TEST(Sraf, IsolatedViaGetsFourBars) {
    const std::vector<geo::Polygon> targets = {geo::Polygon::from_rect({500, 500, 570, 570})};
    const auto srafs = insert_srafs(targets);
    EXPECT_EQ(srafs.size(), 4U);
    for (const auto& bar : srafs) {
        EXPECT_GE(geo::rect_gap(bar.bbox(), targets[0].bbox()), 50);
    }
}

TEST(Sraf, CrowdedViasDropConflictingBars) {
    // Two vias 150 nm apart (edge to edge): bars between them must be
    // dropped by the clearance rule.
    const std::vector<geo::Polygon> targets = {geo::Polygon::from_rect({500, 500, 570, 570}),
                                               geo::Polygon::from_rect({720, 500, 790, 570})};
    const auto srafs = insert_srafs(targets);
    EXPECT_LT(srafs.size(), 8U);
    for (const auto& bar : srafs) {
        for (const auto& t : targets) EXPECT_GE(geo::rect_gap(bar.bbox(), t.bbox()), 50);
        for (const auto& other : srafs) {
            if (&other == &bar) continue;
            EXPECT_GE(geo::rect_gap(bar.bbox(), other.bbox()), 50);
        }
    }
}

TEST(Reward, EquationThreeProperties) {
    // Improvement in both terms -> positive reward.
    EXPECT_GT(rl::step_reward(10.0, 5.0, 1000.0, 900.0), 0.0);
    // Pure EPE improvement of 50%: epe term ~ 0.5.
    EXPECT_NEAR(rl::step_reward(10.0, 5.0, 1000.0, 1000.0), 5.0 / 10.1, 1e-9);
    // Degradation -> negative.
    EXPECT_LT(rl::step_reward(5.0, 10.0, 1000.0, 1100.0), 0.0);
    // Zero PVB before: the PV term is skipped, no division by zero.
    const double r = rl::step_reward(10.0, 8.0, 0.0, 100.0);
    EXPECT_NEAR(r, 2.0 / 10.1, 1e-9);
    // Beta scales the PV term.
    const double r_b2 = rl::step_reward(10.0, 10.0, 1000.0, 500.0, {.epsilon = 0.1, .beta = 2.0});
    EXPECT_NEAR(r_b2, 1.0, 1e-9);
}

}  // namespace
}  // namespace camo::opc
