#include <gtest/gtest.h>

#include "core/graph.hpp"
#include "core/squish.hpp"

namespace camo::core {
namespace {

TEST(Squish, OutputShape) {
    const std::vector<geo::Polygon> mask = {geo::Polygon::from_rect({0, 0, 70, 70})};
    const SquishOptions opt{.window_nm = 500, .size = 32};
    const nn::Tensor t = encode_squish_window(mask, mask, {35.0, 35.0}, opt);
    EXPECT_EQ(t.shape(), (std::vector<int>{6, 32, 32}));
}

TEST(Squish, EmptyWindowIsZeroOccupancy) {
    const std::vector<geo::Polygon> none;
    const nn::Tensor t = encode_squish_window(none, none, {1000.0, 1000.0},
                                              {.window_nm = 500, .size = 16});
    for (int r = 0; r < 16; ++r) {
        for (int c = 0; c < 16; ++c) {
            EXPECT_FLOAT_EQ(t.at(0, r, c), 0.0F);
            EXPECT_FLOAT_EQ(t.at(3, r, c), 0.0F);
        }
    }
}

TEST(Squish, SpacingChannelsTileTheWindow) {
    // The delta channels are log-scaled; invert the scale and the cell
    // widths must tile the whole window.
    const std::vector<geo::Polygon> mask = {geo::Polygon::from_rect({180, 180, 250, 250})};
    const SquishOptions opt{.window_nm = 500, .size = 16};
    const nn::Tensor t = encode_squish_window(mask, mask, {215.0, 215.0}, opt);
    const double norm = std::log1p(500.0);
    double dx_sum = 0.0;
    double dy_sum = 0.0;
    for (int c = 0; c < 16; ++c) dx_sum += std::expm1(t.at(1, 0, c) * norm);
    for (int r = 0; r < 16; ++r) dy_sum += std::expm1(t.at(2, r, 0) * norm);
    EXPECT_NEAR(dx_sum, 500.0, 0.5);
    EXPECT_NEAR(dy_sum, 500.0, 0.5);
}

TEST(Squish, OccupiedFractionMatchesGeometry) {
    // One 70 nm via centred in a 500 nm window: occupancy-weighted area
    // (sum of occ * dx * dy, after inverting the log scale) must equal the
    // via area.
    const std::vector<geo::Polygon> mask = {geo::Polygon::from_rect({215, 215, 285, 285})};
    const SquishOptions opt{.window_nm = 500, .size = 32};
    const nn::Tensor t = encode_squish_window(mask, mask, {250.0, 250.0}, opt);
    const double norm = std::log1p(500.0);
    double area = 0.0;
    for (int r = 0; r < 32; ++r) {
        for (int c = 0; c < 32; ++c) {
            area += t.at(0, r, c) * std::expm1(t.at(1, r, c) * norm) *
                    std::expm1(t.at(2, r, c) * norm);
        }
    }
    EXPECT_NEAR(area, 70.0 * 70.0, 2.0);
}

TEST(Squish, SmallSliversGetAmplifiedEncoding) {
    // A 3 nm sliver must map to a value the CNN can see: log scaling gives
    // log1p(3)/log1p(500) ~ 0.22 rather than 3/500 = 0.006.
    const std::vector<geo::Polygon> target = {geo::Polygon::from_rect({215, 215, 285, 285})};
    const std::vector<geo::Polygon> mask = {geo::Polygon::from_rect({212, 212, 288, 288})};
    const SquishOptions opt{.window_nm = 500, .size = 32};
    const nn::Tensor t = encode_squish_window(mask, target, {250.0, 215.0}, opt);
    float min_nonzero = 1.0F;
    for (int c = 0; c < 32; ++c) {
        const float v = t.at(4, 0, c);
        if (v > 0.0F) min_nonzero = std::min(min_nonzero, v);
    }
    EXPECT_GT(min_nonzero, 0.15F);  // the 3 nm sliver column
    EXPECT_LT(min_nonzero, 0.30F);
}

TEST(Squish, TargetChannelsReactToMaskMovement) {
    // When the mask differs from the target, the extra target scanlines must
    // make channels 3-5 differ from 0-2 (that is their whole purpose).
    const std::vector<geo::Polygon> target = {geo::Polygon::from_rect({215, 215, 285, 285})};
    const std::vector<geo::Polygon> mask = {geo::Polygon::from_rect({209, 209, 291, 291})};
    const SquishOptions opt{.window_nm = 500, .size = 32};
    const nn::Tensor t = encode_squish_window(mask, target, {250.0, 215.0}, opt);

    double diff = 0.0;
    for (int r = 0; r < 32; ++r) {
        for (int c = 0; c < 32; ++c) {
            diff += std::abs(t.at(0, r, c) - t.at(3, r, c)) +
                    std::abs(t.at(1, r, c) - t.at(4, r, c)) +
                    std::abs(t.at(2, r, c) - t.at(5, r, c));
        }
    }
    EXPECT_GT(diff, 0.1);
}

TEST(Squish, DenseGeometryStillFixedSize) {
    // More scanlines than the grid size forces merging.
    std::vector<geo::Polygon> mask;
    for (int i = 0; i < 30; ++i) {
        const int x = 10 + i * 16;
        mask.push_back(geo::Polygon::from_rect({x, 100, x + 8, 400}));
    }
    const SquishOptions opt{.window_nm = 500, .size = 8};
    const nn::Tensor t = encode_squish_window(mask, mask, {250.0, 250.0}, opt);
    EXPECT_EQ(t.shape(), (std::vector<int>{6, 8, 8}));
    const double norm = std::log1p(500.0);
    double dx_sum = 0.0;
    for (int c = 0; c < 8; ++c) dx_sum += std::expm1(t.at(1, 0, c) * norm);
    EXPECT_NEAR(dx_sum, 500.0, 0.5);
}

TEST(Graph, EdgesRespectThreshold) {
    // Two vias 300 nm apart (centre to centre), threshold 250: edges only
    // within each via's own 4 segments (max control distance ~70 nm).
    geo::SegmentedLayout layout({geo::Polygon::from_rect({0, 0, 70, 70}),
                                 geo::Polygon::from_rect({300, 0, 370, 70})},
                                {geo::FragmentStyle::kVia, 60}, {}, 2000);
    const Graph g = build_segment_graph(layout, 250.0);
    EXPECT_EQ(g.n, 8);
    // Within-via: all 4 segments pairwise close -> degree >= 3.
    for (int v = 0; v < 4; ++v) EXPECT_GE(g.degree(v), 3);
    // Across vias: the leftmost segment of via 0 and rightmost of via 1 are
    // ~335 nm apart -> never adjacent.
    const Graph tight = build_segment_graph(layout, 100.0);
    EXPECT_LT(tight.edge_count(), g.edge_count());
}

TEST(Graph, LargeThresholdConnectsAll) {
    geo::SegmentedLayout layout({geo::Polygon::from_rect({0, 0, 70, 70}),
                                 geo::Polygon::from_rect({300, 0, 370, 70})},
                                {geo::FragmentStyle::kVia, 60}, {}, 2000);
    const Graph g = build_segment_graph(layout, 10000.0);
    EXPECT_EQ(g.edge_count(), 8 * 7 / 2);  // complete graph
    for (int v = 0; v < g.n; ++v) {
        for (int u : g.neighbors[static_cast<std::size_t>(v)]) EXPECT_NE(u, v);  // no self loops
    }
}

TEST(Graph, SymmetricAdjacency) {
    geo::SegmentedLayout layout({geo::Polygon::from_rect({0, 0, 200, 50})},
                                {geo::FragmentStyle::kMetal, 60}, {}, 2000);
    const Graph g = build_segment_graph(layout, 250.0);
    for (int v = 0; v < g.n; ++v) {
        for (int u : g.neighbors[static_cast<std::size_t>(v)]) {
            const auto& back = g.neighbors[static_cast<std::size_t>(u)];
            EXPECT_NE(std::find(back.begin(), back.end(), v), back.end());
        }
    }
}

}  // namespace
}  // namespace camo::core
