// Cross-module integration tests: the full pipeline from clip generation
// through OPC to GDSII export, cache behaviour of the simulator, and
// whole-flow determinism.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/file_io.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "layout/gdsii.hpp"
#include "litho/kernel_cache.hpp"
#include "opc/rule_engine.hpp"
#include "opc/sraf.hpp"

namespace camo {
namespace {

litho::LithoConfig small_cfg(const std::string& cache_dir = "") {
    litho::LithoConfig cfg;
    cfg.grid = 256;
    cfg.pixel_nm = 4.0;
    cfg.kernels_nominal = 6;
    cfg.kernels_defocus = 5;
    cfg.cache_dir = cache_dir;
    return cfg;
}

TEST(Integration, GenerateOptimizeExportReimport) {
    litho::LithoSim sim(small_cfg());

    // Generate -> SRAF -> fragment.
    Rng rng(3);
    layout::ViaGenOptions vopt;
    vopt.clip_nm = 1000;
    vopt.margin_nm = 250;
    vopt.min_spacing_nm = 150;
    auto targets = layout::generate_via_clip(2, rng, vopt);
    auto srafs = opc::insert_srafs(targets);
    geo::SegmentedLayout layout(targets, {geo::FragmentStyle::kVia, 60}, srafs, vopt.clip_nm);

    // Optimize.
    opc::RuleEngine engine;
    opc::OpcOptions opt;
    opt.max_iterations = 6;
    const opc::EngineResult res = engine.optimize(layout, sim, opt);
    EXPECT_LE(res.final_metrics.sum_abs_epe, res.epe_history.front());

    // Export, re-import, verify mask geometry survived.
    const auto mask = layout.reconstruct_mask(res.final_offsets);
    layout::GdsLibrary lib;
    lib.layers[1] = layout.targets();
    lib.layers[10] = mask;
    const std::string path = testing::TempDir() + "camo_integration.gds";
    layout::write_gds(path, lib);
    const layout::GdsLibrary back = layout::read_gds(path);
    ASSERT_EQ(back.layers.at(10).size(), mask.size());
    for (std::size_t i = 0; i < mask.size(); ++i) {
        EXPECT_TRUE(back.layers.at(10)[i].is_rectilinear());
        EXPECT_DOUBLE_EQ(back.layers.at(10)[i].area(), mask[i].area());
    }
    std::remove(path.c_str());
}

TEST(Integration, KernelCacheRoundtripPreservesResults) {
    const std::string cache_dir = testing::TempDir() + "camo_kcache";
    const auto cfg = small_cfg(cache_dir);

    // First construction computes and stores; second loads.
    litho::LithoSim sim1(cfg);
    EXPECT_TRUE(file_exists(litho::kernel_cache_path(cfg)));
    litho::LithoSim sim2(cfg);
    EXPECT_DOUBLE_EQ(sim1.threshold(), sim2.threshold());

    const int lo = 500 - 35;
    geo::SegmentedLayout layout({geo::Polygon::from_rect({lo, lo, lo + 70, lo + 70})},
                                {geo::FragmentStyle::kVia, 60}, {}, 1000);
    const std::vector<int> off(4, 5);
    const auto m1 = sim1.evaluate(layout, off);
    const auto m2 = sim2.evaluate(layout, off);
    EXPECT_DOUBLE_EQ(m1.sum_abs_epe, m2.sum_abs_epe);
    EXPECT_DOUBLE_EQ(m1.pvband_nm2, m2.pvband_nm2);
    std::remove(litho::kernel_cache_path(cfg).c_str());
}

TEST(Integration, CorruptKernelCacheIsRebuilt) {
    const std::string cache_dir = testing::TempDir() + "camo_kcache_bad";
    const auto cfg = small_cfg(cache_dir);
    litho::LithoSim sim1(cfg);
    const double thr = sim1.threshold();

    // Corrupt the cache: truncate to a few bytes.
    {
        std::ofstream f(litho::kernel_cache_path(cfg), std::ios::binary | std::ios::trunc);
        f << "garbage";
    }
    litho::LithoSim sim2(cfg);  // must rebuild, not crash
    EXPECT_NEAR(sim2.threshold(), thr, 1e-9);
    std::remove(litho::kernel_cache_path(cfg).c_str());
}

TEST(Integration, MaskAreaFollowsOffsets) {
    // Property: for a single rectangle, area(mask) == area(target) +
    // sum(len_i * offset_i) + corner terms bounded by 4 * max_offset^2.
    Rng rng(11);
    for (int trial = 0; trial < 20; ++trial) {
        const int w = 60 + 10 * rng.uniform_int(0, 10);
        const int h = 60 + 10 * rng.uniform_int(0, 10);
        geo::SegmentedLayout layout({geo::Polygon::from_rect({200, 200, 200 + w, 200 + h})},
                                    {geo::FragmentStyle::kVia, 60}, {}, 1000);
        std::vector<int> off(4);
        long long edge_term = 0;
        for (int i = 0; i < 4; ++i) {
            off[static_cast<std::size_t>(i)] = rng.uniform_int(-5, 5);
            const auto& s = layout.segments()[static_cast<std::size_t>(i)];
            edge_term += static_cast<long long>(s.length()) * off[static_cast<std::size_t>(i)];
        }
        const auto mask = layout.reconstruct_mask(off);
        const double expected = static_cast<double>(w) * h + static_cast<double>(edge_term);
        EXPECT_NEAR(mask[0].area(), expected, 4.0 * 25.0) << "trial " << trial;
    }
}

TEST(Integration, WholeFlowDeterministicAcrossInstances) {
    const auto clips = layout::via_test_set(7);
    const auto layouts1 = core::fragment_via_clips({clips[1]});
    const auto layouts2 = core::fragment_via_clips({clips[1]});

    litho::LithoSim sim(small_cfg());
    opc::RuleEngine a;
    opc::RuleEngine b;
    opc::OpcOptions opt;
    opt.max_iterations = 5;
    // Clip is 2000 nm; the 256@4nm grid spans 1024 nm, so shrink the clip
    // coordinate frame by regenerating with a smaller generator instead:
    // use the fragmented layout directly only if it fits.
    ASSERT_EQ(layouts1[0].clip_size_nm(), 2000);
    // Determinism of fragmentation itself:
    ASSERT_EQ(layouts1[0].num_segments(), layouts2[0].num_segments());
    for (int i = 0; i < layouts1[0].num_segments(); ++i) {
        EXPECT_EQ(layouts1[0].segments()[static_cast<std::size_t>(i)].control(),
                  layouts2[0].segments()[static_cast<std::size_t>(i)].control());
    }
}

TEST(Integration, SimulatorRejectsClipLargerThanGrid) {
    // A 2000 nm clip in a 1024 nm frame would fold geometry outside the
    // grid; the offset becomes negative. Verify the raster stays sane (no
    // crash, coverage clipped).
    litho::LithoSim sim(small_cfg());
    EXPECT_LT(sim.clip_offset_nm(2000), 0);
    geo::SegmentedLayout layout({geo::Polygon::from_rect({900, 900, 970, 970})},
                                {geo::FragmentStyle::kVia, 60}, {}, 2000);
    const std::vector<int> off(4, 0);
    const auto m = sim.evaluate(layout, off);  // must not crash
    EXPECT_GE(m.sum_abs_epe, 0.0);
}

}  // namespace
}  // namespace camo
