// Tile sharder + stitch: the full-chip correctness contract.
//
// The load-bearing test here is IsolatedClustersMatchIndependentClipsBitwise:
// a synthetic chip whose via clusters are farther apart than the halo, so
// every tile window contains exactly one cluster and the shard -> stream ->
// stitch pipeline must reproduce — byte for byte, at 1/2/8 workers — the
// offsets of optimizing each cluster as a standalone clip.
#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "geometry/layout.hpp"
#include "layout/shard.hpp"
#include "layout/via_gen.hpp"
#include "litho/config.hpp"
#include "opc/rule_engine.hpp"
#include "opc/sraf.hpp"
#include "runtime/batch.hpp"
#include "scenario/scenario.hpp"

namespace camo::layout {
namespace {

litho::LithoConfig quick_litho() {
    litho::LithoConfig cfg;
    cfg.grid = 256;
    cfg.pixel_nm = 4.0;  // 1024 nm span = one 512 nm tile + 2 x 256 nm halo
    cfg.kernels_nominal = 6;
    cfg.kernels_defocus = 5;
    cfg.cache_dir = "";
    return cfg;
}

ShardOptions shard_options() {
    ShardOptions opt;
    opt.tile_nm = 512;
    opt.halo_nm = 256;
    opt.fragment.style = geo::FragmentStyle::kVia;
    opt.sraf_gen = [](const std::vector<geo::Polygon>& t) { return opc::insert_srafs(t); };
    opt.auto_origin = false;
    opt.origin = {0, 0};
    return opt;
}

/// Synthetic chip with via clusters on cells (0,0), (2,0), (0,2), (2,2) of a
/// 3x3 grid at 512 nm pitch. The empty cells between clusters put every
/// foreign polygon >= 712 nm away — outside any 256 nm-halo tile window —
/// so each occupied tile sees exactly its own cluster.
struct ClusterChip {
    std::vector<geo::Polygon> chip;                    // chip coordinates
    std::vector<std::pair<int, int>> cells;            // occupied (cx, cy), row-major
    std::vector<std::vector<geo::Polygon>> clusters;   // per cell, chip coordinates
};

ClusterChip isolated_cluster_chip() {
    ViaGenOptions gen;
    gen.clip_nm = 512;
    gen.margin_nm = 60;        // cluster content stays in [60, 452] of its cell
    gen.min_spacing_nm = 80;
    ClusterChip out;
    out.cells = {{0, 0}, {2, 0}, {0, 2}, {2, 2}};  // row-major = tiles() order
    int i = 0;
    for (const auto& [cx, cy] : out.cells) {
        Rng rng(derive_seed(33, static_cast<std::uint64_t>(i++)));
        const std::vector<geo::Polygon> local = generate_via_clip(2, rng, gen);
        std::vector<geo::Polygon> placed;
        placed.reserve(local.size());
        for (const geo::Polygon& p : local) placed.push_back(translated(p, cx * 512, cy * 512));
        out.chip.insert(out.chip.end(), placed.begin(), placed.end());
        out.clusters.push_back(std::move(placed));
    }
    return out;
}

/// The standalone reference clip of one cluster: the cluster translated into
/// the coordinates its tile window uses, fragmented and SRAF'd exactly the
/// way TileSharder builds tile layouts.
geo::SegmentedLayout reference_clip(const std::vector<geo::Polygon>& cluster, int cx, int cy,
                                    const ShardOptions& opt) {
    const int wx = cx * opt.tile_nm - opt.halo_nm;
    const int wy = cy * opt.tile_nm - opt.halo_nm;
    std::vector<geo::Polygon> local;
    local.reserve(cluster.size());
    for (const geo::Polygon& p : cluster) local.push_back(translated(p, -wx, -wy));
    std::vector<geo::Polygon> srafs = opc::insert_srafs(local);
    return geo::SegmentedLayout(std::move(local), opt.fragment, std::move(srafs),
                                opt.window_nm());
}

TEST(Shard, TranslatedMovesEveryVertex) {
    const geo::Polygon p({{10, 20}, {50, 20}, {50, 60}, {10, 60}});
    const geo::Polygon q = translated(p, 7, -3);
    ASSERT_EQ(q.size(), p.size());
    for (int i = 0; i < p.size(); ++i) {
        EXPECT_EQ(q.vertices()[static_cast<std::size_t>(i)].x,
                  p.vertices()[static_cast<std::size_t>(i)].x + 7);
        EXPECT_EQ(q.vertices()[static_cast<std::size_t>(i)].y,
                  p.vertices()[static_cast<std::size_t>(i)].y - 3);
    }
}

TEST(Shard, OptionsValidateRejectsBadGeometry) {
    const litho::LithoConfig litho = quick_litho();
    // Default litho frame: 193 nm / 1.35 NA -> interaction radius 215 nm.
    EXPECT_EQ(litho::interaction_radius_nm(litho), 215);

    ShardOptions ok = shard_options();
    EXPECT_NO_THROW(ok.validate(litho));

    ShardOptions bad_tile = shard_options();
    bad_tile.tile_nm = 0;
    EXPECT_THROW(bad_tile.validate(litho), std::invalid_argument);

    // A halo below the interaction radius would silently lose seam context.
    ShardOptions thin_halo = shard_options();
    thin_halo.halo_nm = litho::interaction_radius_nm(litho) - 1;
    EXPECT_THROW(thin_halo.validate(litho), std::invalid_argument);
    thin_halo.halo_nm = litho::interaction_radius_nm(litho);
    thin_halo.tile_nm = 1024 - 2 * thin_halo.halo_nm;  // window == frame span
    EXPECT_NO_THROW(thin_halo.validate(litho));

    // Window larger than the simulation frame.
    ShardOptions wide = shard_options();
    wide.tile_nm = 600;  // 600 + 2*256 = 1112 > 1024
    EXPECT_THROW(wide.validate(litho), std::invalid_argument);

    // The constructor enforces the same contract.
    EXPECT_THROW(TileSharder({}, wide, litho), std::invalid_argument);
}

TEST(Shard, EmptyChipYieldsZeroTiles) {
    const TileSharder sharder({}, shard_options(), quick_litho());
    EXPECT_TRUE(sharder.tiles().empty());
    EXPECT_TRUE(sharder.owner().empty());
    EXPECT_EQ(sharder.total_owned_segments(), 0);
    const geo::SegmentedLayout chip = sharder.chip_layout();
    EXPECT_EQ(chip.num_segments(), 0);
    const StitchResult stitched = stitch(sharder, chip, {});
    EXPECT_TRUE(stitched.offsets.empty());
    EXPECT_TRUE(stitched.mask.empty());
}

TEST(Shard, OwnershipAndMembershipInvariants) {
    // A denser chip from the scenario generator: 2x2 via3 cells at 512 nm
    // pitch so polygons land near (and across) tile cut lines.
    scenario::Scenario sc = scenario::Registry::instance().get("via3");
    sc.generate = [](Rng& rng) {
        ViaGenOptions gen;
        gen.clip_nm = 512;
        gen.margin_nm = 100;
        gen.min_spacing_nm = 80;
        return generate_via_clip(2, rng, gen);
    };
    sc.clip_nm = 512;
    const std::vector<geo::Polygon> chip = scenario::chip_polygons(sc, 2, 2, 512);
    ASSERT_EQ(chip.size(), 8U);

    const ShardOptions opt = shard_options();
    const TileSharder sharder(chip, opt, quick_litho());
    ASSERT_FALSE(sharder.tiles().empty());
    ASSERT_EQ(sharder.owner().size(), chip.size());

    int owned_total = 0;
    for (std::size_t t = 0; t < sharder.tiles().size(); ++t) {
        const Tile& tile = sharder.tiles()[t];
        ASSERT_EQ(tile.members.size(), tile.owned.size());
        EXPECT_GT(tile.owned_count(), 0) << "ownerless tiles must be skipped";
        EXPECT_EQ(tile.window.width(), opt.window_nm());
        EXPECT_EQ(tile.core.xlo, tile.tx * opt.tile_nm);
        EXPECT_EQ(tile.core.ylo, tile.ty * opt.tile_nm);
        int prev = -1;
        for (std::size_t k = 0; k < tile.members.size(); ++k) {
            const int m = tile.members[k];
            EXPECT_GT(m, prev) << "members must be ascending chip indices";
            prev = m;
            const geo::Rect bb = chip[static_cast<std::size_t>(m)].bbox();
            // Membership: the bbox reaches the window.
            EXPECT_LT(bb.xlo, tile.window.xhi);
            EXPECT_GT(bb.xhi, tile.window.xlo);
            if (tile.owned[k]) {
                EXPECT_EQ(sharder.owner()[static_cast<std::size_t>(m)], static_cast<int>(t));
                ++owned_total;
                // Ownership: bbox center inside the core (doubled coords
                // avoid half-nm rounding).
                const int cx2 = bb.xlo + bb.xhi;
                const int cy2 = bb.ylo + bb.yhi;
                EXPECT_GE(cx2, 2 * tile.core.xlo);
                EXPECT_LT(cx2, 2 * tile.core.xhi);
                EXPECT_GE(cy2, 2 * tile.core.ylo);
                EXPECT_LT(cy2, 2 * tile.core.yhi);
            } else {
                EXPECT_NE(sharder.owner()[static_cast<std::size_t>(m)], static_cast<int>(t));
            }
        }
        // Tile layout carries exactly the member polygons, in member order,
        // translated into window-local coordinates.
        ASSERT_EQ(tile.layout.targets().size(), tile.members.size());
        for (std::size_t k = 0; k < tile.members.size(); ++k) {
            const geo::Polygon expect = translated(chip[static_cast<std::size_t>(tile.members[k])],
                                                   -tile.window.xlo, -tile.window.ylo);
            EXPECT_EQ(tile.layout.targets()[k].vertices(), expect.vertices());
        }
    }
    EXPECT_EQ(owned_total, static_cast<int>(chip.size()));
}

TEST(Shard, CenterOnCutLineBelongsToUpperTile) {
    // Bbox center of the second via sits exactly on the x = 512 cut line.
    const std::vector<geo::Polygon> chip = {
        geo::Polygon({{10, 10}, {50, 10}, {50, 50}, {10, 50}}),
        geo::Polygon({{492, 100}, {532, 100}, {532, 140}, {492, 140}}),
    };
    const TileSharder sharder(chip, shard_options(), quick_litho());
    ASSERT_EQ(sharder.tiles().size(), 2U);
    EXPECT_EQ(sharder.tiles()[0].tx, 0);
    EXPECT_EQ(sharder.tiles()[1].tx, 1);
    EXPECT_EQ(sharder.owner()[0], 0);
    EXPECT_EQ(sharder.owner()[1], 1);  // on the line -> upper tile
    // The straddler rides along as context in tile 0 but is owned elsewhere.
    ASSERT_EQ(sharder.tiles()[0].members.size(), 2U);
    EXPECT_TRUE(sharder.tiles()[0].owned[0]);
    EXPECT_FALSE(sharder.tiles()[0].owned[1]);
}

TEST(Shard, StitchRejectsSizeMismatch) {
    const ClusterChip cc = isolated_cluster_chip();
    const TileSharder sharder(cc.chip, shard_options(), quick_litho());
    const geo::SegmentedLayout chip_layout = sharder.chip_layout();
    ASSERT_EQ(sharder.tiles().size(), 4U);

    // Wrong tile count.
    EXPECT_THROW(stitch(sharder, chip_layout, {}), std::invalid_argument);

    // Right tile count, wrong per-tile offset length.
    std::vector<std::vector<int>> offs;
    for (const Tile& t : sharder.tiles()) {
        offs.emplace_back(static_cast<std::size_t>(t.layout.num_segments()), 0);
    }
    offs.back().pop_back();
    EXPECT_THROW(stitch(sharder, chip_layout, offs), std::invalid_argument);
}

TEST(Shard, IsolatedClustersMatchIndependentClipsBitwise) {
    const ClusterChip cc = isolated_cluster_chip();
    const ShardOptions opt = shard_options();
    const litho::LithoConfig litho = quick_litho();
    const TileSharder sharder(cc.chip, opt, litho);

    // Isolation premise: exactly one tile per cluster, everything owned.
    ASSERT_EQ(sharder.tiles().size(), cc.cells.size());
    for (std::size_t t = 0; t < sharder.tiles().size(); ++t) {
        const Tile& tile = sharder.tiles()[t];
        EXPECT_EQ(tile.tx, cc.cells[t].first);
        EXPECT_EQ(tile.ty, cc.cells[t].second);
        ASSERT_EQ(tile.members.size(), 2U) << "foreign polygon leaked into tile window";
        EXPECT_EQ(tile.owned_count(), 2);
    }

    // Standalone reference clips, built exactly like the tile layouts.
    std::vector<geo::SegmentedLayout> refs;
    for (std::size_t t = 0; t < cc.cells.size(); ++t) {
        refs.push_back(reference_clip(cc.clusters[t], cc.cells[t].first, cc.cells[t].second,
                                      opt));
    }

    runtime::BatchOptions bopt;
    bopt.threads = 1;
    bopt.seed = 7;
    bopt.opc.max_iterations = 3;
    bopt.opc.initial_bias_nm = 3;
    runtime::BatchScheduler ref_sched(litho, bopt);
    const runtime::BatchResult ref = ref_sched.run_rule(refs);
    ASSERT_EQ(ref.failed, 0);

    const std::vector<geo::SegmentedLayout> tile_layouts = sharder.tile_layouts();
    const geo::SegmentedLayout chip_layout = sharder.chip_layout();

    std::vector<int> golden;  // stitched offsets at 1 worker
    for (const int threads : {1, 2, 8}) {
        runtime::BatchOptions topt = bopt;
        topt.threads = threads;
        runtime::BatchScheduler sched(litho, topt);
        std::vector<std::vector<int>> tile_offsets(tile_layouts.size());
        const runtime::StreamStats stats = sched.run_streaming(
            tile_layouts,
            [](const geo::SegmentedLayout& layout, litho::LithoSim& sim,
               const opc::OpcOptions& o, std::uint64_t) {
                opc::RuleEngine engine;
                return engine.optimize(layout, sim, o);
            },
            [&tile_offsets](runtime::ClipResult&& r) {
                ASSERT_TRUE(r.error.empty()) << r.error;
                tile_offsets[static_cast<std::size_t>(r.index)] = std::move(r.offsets);
            },
            sharder.tile_names());
        ASSERT_EQ(stats.delivered, static_cast<int>(tile_layouts.size()));
        ASSERT_EQ(stats.failed, 0);

        // Contract: every tile result equals its standalone reference clip,
        // bit for bit.
        for (std::size_t t = 0; t < tile_offsets.size(); ++t) {
            EXPECT_EQ(tile_offsets[t], ref.clips[t].offsets)
                << "tile " << sharder.tiles()[t].name() << " @ " << threads << " workers";
        }

        const StitchResult stitched = stitch(sharder, chip_layout, tile_offsets);
        ASSERT_EQ(static_cast<int>(stitched.offsets.size()), chip_layout.num_segments());
        EXPECT_EQ(stitched.mask.size(), cc.chip.size());

        // Chip-level offsets of each polygon match the reference clip's
        // segment range for that polygon (fragmentation is translation-
        // invariant, so ranges correspond 1:1).
        for (std::size_t p = 0; p < cc.chip.size(); ++p) {
            const int owner = sharder.owner()[p];
            const Tile& tile = sharder.tiles()[static_cast<std::size_t>(owner)];
            int local = -1;
            for (std::size_t k = 0; k < tile.members.size(); ++k) {
                if (tile.members[k] == static_cast<int>(p)) local = static_cast<int>(k);
            }
            ASSERT_GE(local, 0);
            const auto [cb, ce] = chip_layout.polygon_segment_range(static_cast<int>(p));
            const auto [rb, re] = refs[static_cast<std::size_t>(owner)]
                                      .polygon_segment_range(local);
            ASSERT_EQ(ce - cb, re - rb);
            for (int s = 0; s < ce - cb; ++s) {
                EXPECT_EQ(stitched.offsets[static_cast<std::size_t>(cb + s)],
                          ref.clips[static_cast<std::size_t>(owner)]
                              .offsets[static_cast<std::size_t>(rb + s)])
                    << "polygon " << p << " segment " << s << " @ " << threads << " workers";
            }
        }

        if (threads == 1) {
            golden = stitched.offsets;
        } else {
            EXPECT_EQ(stitched.offsets, golden) << threads << " workers diverged from 1";
        }
    }
}

}  // namespace
}  // namespace camo::layout
