// End-to-end tests of the CAMO engine: training reduces imitation loss,
// inference with the modulator drives EPE down, and the full pipeline is
// deterministic and serializable.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/camo.hpp"
#include "opc/sraf.hpp"

namespace camo::core {
namespace {

class CamoTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        litho::LithoConfig cfg;
        cfg.grid = 256;
        cfg.pixel_nm = 4.0;
        cfg.kernels_nominal = 6;
        cfg.kernels_defocus = 5;
        cfg.cache_dir = "";
        sim_ = new litho::LithoSim(cfg);
    }
    static void TearDownTestSuite() {
        delete sim_;
        sim_ = nullptr;
    }

    static CamoConfig tiny_config() {
        CamoConfig cfg;
        cfg.policy.squish_size = 16;
        cfg.policy.embed_dim = 32;
        cfg.policy.rnn_hidden = 16;
        cfg.policy.rnn_layers = 2;
        cfg.policy.conv_base = 4;
        cfg.squish.size = 16;
        cfg.squish.window_nm = 500;
        cfg.phase1_epochs = 15;
        cfg.phase2_episodes = 1;
        cfg.seed = 5;
        return cfg;
    }

    static geo::SegmentedLayout via_layout(int x_shift = 0) {
        const int clip = 1000;
        const int lo = clip / 2 - 35 + x_shift;
        std::vector<geo::Polygon> targets = {geo::Polygon::from_rect({lo, lo, lo + 70, lo + 70})};
        auto srafs = opc::insert_srafs(targets);
        return geo::SegmentedLayout(std::move(targets), {geo::FragmentStyle::kVia, 60},
                                    std::move(srafs), clip);
    }

    static opc::OpcOptions via_options() {
        opc::OpcOptions opt;
        opt.max_iterations = 10;
        opt.exit_epe_per_feature = 4.0;
        opt.initial_bias_nm = 3;
        return opt;
    }

    static litho::LithoSim* sim_;
};

litho::LithoSim* CamoTest::sim_ = nullptr;

TEST_F(CamoTest, ConfigMismatchThrows) {
    CamoConfig bad = tiny_config();
    bad.squish.size = 8;  // != policy.squish_size
    EXPECT_THROW(CamoEngine engine(bad), std::invalid_argument);
}

TEST_F(CamoTest, UntrainedWithModulatorStillImproves) {
    // The modulator alone turns a random policy into damped EPE feedback:
    // starting from the raw target (no bias), optimization must improve the
    // mask substantially.
    CamoEngine engine(tiny_config());
    opc::OpcOptions opt = via_options();
    opt.initial_bias_nm = 0;
    const auto res = engine.optimize(via_layout(), *sim_, opt);
    EXPECT_LT(res.final_metrics.sum_abs_epe, res.epe_history.front() * 0.7);
    EXPECT_EQ(res.epe_history.size(), static_cast<std::size_t>(res.iterations) + 1);
}

TEST_F(CamoTest, Phase1LossDecreases) {
    CamoEngine engine(tiny_config());
    const std::vector<geo::SegmentedLayout> clips = {via_layout()};
    const TrainStats stats = engine.train(clips, *sim_, via_options());
    ASSERT_EQ(stats.phase1_loss.size(), 15U);
    EXPECT_LT(stats.phase1_loss.back(), stats.phase1_loss.front());
    ASSERT_EQ(stats.phase2_reward.size(), 1U);
}

TEST_F(CamoTest, TrainedEngineMeetsEarlyExitOnTrainingClip) {
    CamoConfig cfg = tiny_config();
    cfg.phase1_epochs = 25;
    CamoEngine engine(cfg);
    const std::vector<geo::SegmentedLayout> clips = {via_layout()};
    (void)engine.train(clips, *sim_, via_options());

    const auto res = engine.optimize(clips[0], *sim_, via_options());
    // Early-exit rule: sum |EPE| / #vias < 4 nm.
    EXPECT_LT(res.final_metrics.sum_abs_epe, 3.0 * 4.0 + 6.0);
    EXPECT_LE(res.iterations, via_options().max_iterations);
}

TEST_F(CamoTest, ModulatorToggleChangesBehaviour) {
    CamoEngine engine(tiny_config());
    EXPECT_TRUE(engine.modulator_enabled());
    const auto with = engine.optimize(via_layout(), *sim_, via_options());
    engine.set_modulator_enabled(false);
    EXPECT_FALSE(engine.modulator_enabled());
    const auto without = engine.optimize(via_layout(), *sim_, via_options());
    // An untrained policy without modulation must do worse (paper Fig. 5).
    EXPECT_LE(with.final_metrics.sum_abs_epe, without.final_metrics.sum_abs_epe + 1e-9);
}

TEST_F(CamoTest, WeightsRoundtripPreservesInference) {
    const std::string path = testing::TempDir() + "camo_weights_it.bin";
    CamoEngine a(tiny_config());
    const std::vector<geo::SegmentedLayout> clips = {via_layout()};
    (void)a.train(clips, *sim_, via_options());
    a.save_weights(path);

    CamoConfig cfg_b = tiny_config();
    cfg_b.seed = 777;  // different init, must not matter after load
    CamoEngine b(cfg_b);
    ASSERT_TRUE(b.load_weights(path));

    const auto ra = a.optimize(clips[0], *sim_, via_options());
    const auto rb = b.optimize(clips[0], *sim_, via_options());
    EXPECT_EQ(ra.final_offsets, rb.final_offsets);
    std::remove(path.c_str());
}

TEST_F(CamoTest, RlOpcConfigDisablesCorrelationMachinery) {
    const CamoConfig base = tiny_config();
    const CamoConfig rlopc = make_rlopc_config(base);
    EXPECT_FALSE(rlopc.policy.use_gnn);
    EXPECT_FALSE(rlopc.policy.use_rnn);
    EXPECT_FALSE(rlopc.modulator.enabled);
    EXPECT_EQ(rlopc.name, "rl-opc");
    EXPECT_TRUE(base.policy.use_gnn);  // base untouched

    CamoEngine engine(rlopc);
    EXPECT_EQ(engine.name(), "rl-opc");
    const auto res = engine.optimize(via_layout(), *sim_, via_options());
    EXPECT_GE(res.iterations, 1);
}

TEST_F(CamoTest, EncodeStateShapes) {
    CamoEngine engine(tiny_config());
    const auto layout = via_layout();
    const std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), 3);
    const auto feats = engine.encode_state(layout, offsets);
    ASSERT_EQ(static_cast<int>(feats.size()), layout.num_segments());
    for (const auto& f : feats) EXPECT_EQ(f.shape(), (std::vector<int>{6, 16, 16}));
}

TEST_F(CamoTest, DeterministicInferenceAcrossRuns) {
    CamoEngine a(tiny_config());
    CamoEngine b(tiny_config());
    const auto layout = via_layout();
    const auto ra = a.optimize(layout, *sim_, via_options());
    const auto rb = b.optimize(layout, *sim_, via_options());
    EXPECT_EQ(ra.final_offsets, rb.final_offsets);
    EXPECT_EQ(ra.iterations, rb.iterations);
}

}  // namespace
}  // namespace camo::core
