// Delta rasterization: the contract that makes incremental lithography
// evaluation exact. For any polygon, add_polygon_region over its coverage
// rect reproduces Raster::add_polygon bit for bit inside the region, so
// raster(full) == raster(cached) + raster(delta) per pixel when a subset of
// polygons moves.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "geometry/layout.hpp"
#include "geometry/raster.hpp"

namespace camo::geo {
namespace {

constexpr int kGrid = 64;
constexpr double kPixel = 4.0;

// Random rectilinear staircase polygon: a rectangle whose edges are
// fragmented and offset per segment, exactly the shapes OPC produces.
// Coordinates may stick out past the clip to exercise boundary clamping.
Polygon random_staircase(Rng& rng, bool allow_outside) {
    const int span = static_cast<int>(kGrid * kPixel);
    const int lo = allow_outside ? -40 : 8;
    const int hi = allow_outside ? span + 40 : span - 80;
    const int x = rng.uniform_int(lo, hi);
    const int y = rng.uniform_int(lo, hi);
    const int w = rng.uniform_int(30, 90);
    const int h = rng.uniform_int(30, 90);

    SegmentedLayout layout({Polygon::from_rect({x, y, x + w, y + h})},
                           {FragmentStyle::kMetal, 20}, {}, span);
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()));
    for (int& o : offsets) o = rng.uniform_int(-6, 6);
    return layout.reconstruct_mask(offsets)[0];
}

Polygon perturb(const Polygon& base, Rng& rng) {
    // Re-fragment and move a couple of segments: the "segment acted on" case.
    SegmentedLayout layout({base}, {FragmentStyle::kMetal, 20}, {},
                           static_cast<int>(kGrid * kPixel));
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), 0);
    const int moves = rng.uniform_int(1, 3);
    for (int i = 0; i < moves; ++i) {
        offsets[static_cast<std::size_t>(rng.uniform_int(0, layout.num_segments() - 1))] =
            rng.uniform_int(-8, 8);
    }
    return layout.reconstruct_mask(offsets)[0];
}

TEST(DeltaRaster, RegionMatchesAddPolygonBitForBit) {
    Rng rng(101);
    for (int trial = 0; trial < 40; ++trial) {
        const bool outside = trial % 3 == 0;  // every third trial crosses the clip boundary
        const Polygon poly = random_staircase(rng, outside);

        Raster direct(kGrid, kPixel);
        direct.add_polygon(poly);

        const PixelRect region = polygon_coverage_rect(poly, kPixel, kGrid);
        std::vector<float> buf(region.area(), 0.0F);
        add_polygon_region(buf, region, poly, kPixel, kGrid);

        Raster scattered(kGrid, kPixel);
        std::size_t b = 0;
        for (int r = region.r0; r < region.r1; ++r) {
            for (int c = region.c0; c < region.c1; ++c, ++b) scattered.at(r, c) = buf[b];
        }

        for (int r = 0; r < kGrid; ++r) {
            for (int c = 0; c < kGrid; ++c) {
                ASSERT_EQ(direct.at(r, c), scattered.at(r, c))
                    << "trial " << trial << " pixel (" << r << ", " << c << ")";
            }
        }
    }
}

TEST(DeltaRaster, FullEqualsCachedPlusDelta) {
    Rng rng(202);
    for (int trial = 0; trial < 25; ++trial) {
        const bool outside = trial % 4 == 0;
        std::vector<Polygon> old_polys;
        for (int i = 0; i < 4; ++i) old_polys.push_back(random_staircase(rng, outside));

        std::vector<Polygon> new_polys = old_polys;
        std::vector<int> moved;
        for (int i = 0; i < 4; ++i) {
            if (rng.coin(0.5)) {
                new_polys[static_cast<std::size_t>(i)] =
                    perturb(old_polys[static_cast<std::size_t>(i)], rng);
                moved.push_back(i);
            }
        }

        Raster full(kGrid, kPixel);
        for (const Polygon& p : new_polys) full.add_polygon(p);

        Raster cached(kGrid, kPixel);
        for (const Polygon& p : old_polys) cached.add_polygon(p);

        Raster delta(kGrid, kPixel);
        for (int i : moved) {
            const PixelRect region =
                unite(polygon_coverage_rect(old_polys[static_cast<std::size_t>(i)], kPixel, kGrid),
                      polygon_coverage_rect(new_polys[static_cast<std::size_t>(i)], kPixel, kGrid));
            if (region.empty()) continue;
            std::vector<float> old_buf(region.area(), 0.0F);
            std::vector<float> new_buf(region.area(), 0.0F);
            add_polygon_region(old_buf, region, old_polys[static_cast<std::size_t>(i)], kPixel,
                               kGrid);
            add_polygon_region(new_buf, region, new_polys[static_cast<std::size_t>(i)], kPixel,
                               kGrid);
            std::size_t b = 0;
            for (int r = region.r0; r < region.r1; ++r) {
                for (int c = region.c0; c < region.c1; ++c, ++b) {
                    delta.at(r, c) += new_buf[b] - old_buf[b];
                }
            }
        }

        // cached + delta accumulates the same per-polygon contributions as
        // full, in a different float summation order: equal to rounding.
        for (int r = 0; r < kGrid; ++r) {
            for (int c = 0; c < kGrid; ++c) {
                ASSERT_NEAR(full.at(r, c), cached.at(r, c) + delta.at(r, c), 1e-5F)
                    << "trial " << trial << " pixel (" << r << ", " << c << ")";
            }
        }
    }
}

TEST(DeltaRaster, UntouchedPolygonProducesEmptyDelta) {
    Rng rng(303);
    const Polygon poly = random_staircase(rng, false);
    const PixelRect region = polygon_coverage_rect(poly, kPixel, kGrid);
    std::vector<float> a(region.area(), 0.0F);
    std::vector<float> b(region.area(), 0.0F);
    add_polygon_region(a, region, poly, kPixel, kGrid);
    add_polygon_region(b, region, poly, kPixel, kGrid);
    for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(DeltaRaster, CoverageRectClampsToGrid) {
    // A polygon hanging off every side of the clip.
    const Polygon poly = Polygon::from_rect({-50, -50, static_cast<int>(kGrid * kPixel) + 50,
                                             static_cast<int>(kGrid * kPixel) + 50});
    const PixelRect rect = polygon_coverage_rect(poly, kPixel, kGrid);
    EXPECT_EQ(rect.r0, 0);
    EXPECT_EQ(rect.c0, 0);
    EXPECT_EQ(rect.r1, kGrid);
    EXPECT_EQ(rect.c1, kGrid);

    Raster direct(kGrid, kPixel);
    direct.add_polygon(poly);
    std::vector<float> buf(rect.area(), 0.0F);
    add_polygon_region(buf, rect, poly, kPixel, kGrid);
    std::size_t i = 0;
    for (int r = 0; r < kGrid; ++r) {
        for (int c = 0; c < kGrid; ++c, ++i) ASSERT_EQ(direct.at(r, c), buf[i]);
    }
}

TEST(DeltaRaster, PixelRectBasics) {
    const PixelRect empty{};
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.area(), 0U);

    const PixelRect a{0, 2, 4, 6};
    const PixelRect b{0, 5, 8, 9};
    const PixelRect u = unite(a, b);
    EXPECT_EQ(u.r0, 0);
    EXPECT_EQ(u.c0, 2);
    EXPECT_EQ(u.r1, 8);
    EXPECT_EQ(u.c1, 9);
    EXPECT_EQ(unite(a, empty).area(), a.area());
    EXPECT_EQ(unite(empty, b).area(), b.area());

    const PixelRect bad{2, 0, 6, 4};
    std::vector<float> buf(bad.area(), 0.0F);
    EXPECT_THROW(add_polygon_region(buf, bad, Polygon::from_rect({0, 0, 10, 10}), 1.0, 64),
                 std::invalid_argument);
}

}  // namespace
}  // namespace camo::geo
