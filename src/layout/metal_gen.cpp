#include "layout/metal_gen.hpp"

#include <algorithm>
#include <stdexcept>

#include "geometry/fragment.hpp"

namespace camo::layout {
namespace {

// Paper Table 2 measure-point counts for M1..M10.
constexpr int kTestPointCounts[] = {64, 84, 88, 100, 106, 112, 116, 24, 72, 120};

// Wire length whose horizontal edge carries exactly k measure points:
// fragment_polygon uses k = len / pitch, so len in [60k, 60k+59].
int length_for_points(int k, int pitch, Rng& rng) {
    return k * pitch + rng.uniform_int(0, pitch - 1);
}

}  // namespace

int count_measure_points(const std::vector<geo::Polygon>& polys, int pitch_nm) {
    int total = 0;
    for (const geo::Polygon& p : polys) {
        geo::Polygon q = p;
        q.normalize();
        const auto segs =
            geo::fragment_polygon(q, {geo::FragmentStyle::kMetal, pitch_nm}, 0);
        for (const geo::Segment& s : segs) total += s.measured ? 1 : 0;
    }
    return total;
}

std::vector<geo::Polygon> generate_metal_clip(int point_quota, Rng& rng,
                                              const MetalGenOptions& opt) {
    if (point_quota % 2 != 0) throw std::invalid_argument("metal clip: quota must be even");
    int remaining = point_quota / 2;  // per-edge quota (each wire: top+bottom)

    std::vector<geo::Polygon> wires;
    const int x_lo = opt.margin_nm;
    const int x_hi = opt.clip_nm - opt.margin_nm;
    int y = opt.margin_nm;

    while (remaining > 0) {
        const int width = opt.min_width_nm +
                          rng.uniform_int(0, (opt.max_width_nm - opt.min_width_nm) / 5) * 5;
        if (y + width > opt.clip_nm - opt.margin_nm) {
            throw std::runtime_error("metal clip: ran out of vertical room for quota");
        }

        // Fill one track left-to-right.
        int x = x_lo + rng.uniform_int(0, 12) * 5;
        while (remaining > 0 && x < x_hi - opt.measure_pitch_nm) {
            const int k = std::min({remaining, 1 + rng.uniform_int(0, opt.max_points_per_wire - 1)});
            const int len = length_for_points(k, opt.measure_pitch_nm, rng);
            if (x + len > x_hi) break;
            wires.push_back(geo::Polygon::from_rect({x, y, x + len, y + width}));
            remaining -= k;
            x += len + opt.min_gap_nm + rng.uniform_int(0, 20) * 5;
        }
        y += width + opt.min_track_gap_nm + rng.uniform_int(0, 8) * 5;
    }
    return wires;
}

std::vector<geo::Polygon> generate_regular_metal_clip(int point_quota, Rng& rng,
                                                      const MetalGenOptions& opt) {
    if (point_quota % 2 != 0) throw std::invalid_argument("regular clip: quota must be even");
    const int per_edge = point_quota / 2;

    // Choose a line count that divides the per-edge quota as evenly as
    // possible: lines of k points each, the last line absorbing the rest.
    const int k = std::clamp(per_edge, 1, opt.max_points_per_wire);
    const int lines = (per_edge + k - 1) / k;

    const int width = 60;
    const int pitch = width + 80;  // dense regular line/space
    std::vector<geo::Polygon> wires;
    int remaining = per_edge;
    int y = opt.margin_nm + rng.uniform_int(0, 10) * 10;
    for (int i = 0; i < lines; ++i) {
        const int ki = std::min(k, remaining);
        const int len = ki * opt.measure_pitch_nm + opt.measure_pitch_nm / 2;
        const int x = opt.margin_nm;
        wires.push_back(geo::Polygon::from_rect({x, y, x + len, y + width}));
        remaining -= ki;
        y += pitch;
    }
    return wires;
}

std::vector<Clip> metal_test_set(std::uint64_t seed, const MetalGenOptions& opt) {
    std::vector<Clip> clips;
    for (int i = 0; i < 10; ++i) {
        Rng rng(seed + 2000003ULL + static_cast<std::uint64_t>(i) * 15485863ULL);
        const int quota = kTestPointCounts[i];
        const bool regular = (i == 7 || i == 8);  // M8, M9
        auto polys = regular ? generate_regular_metal_clip(quota, rng, opt)
                             : generate_metal_clip(quota, rng, opt);
        clips.push_back({"M" + std::to_string(i + 1), std::move(polys), opt.clip_nm});
    }
    return clips;
}

std::vector<Clip> metal_training_set(std::uint64_t seed, int count, const MetalGenOptions& opt) {
    std::vector<Clip> clips;
    for (int i = 0; i < count; ++i) {
        Rng rng(seed + 3000017ULL + static_cast<std::uint64_t>(i) * 32452843ULL);
        const int quota = 24 + 4 * rng.uniform_int(0, 12);
        auto polys = (i % 4 == 3) ? generate_regular_metal_clip(quota, rng, opt)
                                  : generate_metal_clip(quota, rng, opt);
        clips.push_back({"MT" + std::to_string(i + 1), std::move(polys), opt.clip_nm});
    }
    return clips;
}

}  // namespace camo::layout
