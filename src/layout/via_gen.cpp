#include "layout/via_gen.hpp"

#include <stdexcept>

namespace camo::layout {
namespace {

// Paper Table 1 via counts for V1..V13.
constexpr int kTestViaCounts[] = {2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 6, 6, 6};
// Training set: 11 clips with 2-5 vias.
constexpr int kTrainViaCounts[] = {2, 2, 3, 3, 3, 4, 4, 4, 5, 5, 5};

}  // namespace

std::vector<geo::Polygon> generate_via_clip(int via_count, Rng& rng, const ViaGenOptions& opt) {
    const int lo = opt.margin_nm;
    const int hi = opt.clip_nm - opt.margin_nm - opt.via_nm;
    if (hi <= lo) throw std::invalid_argument("via clip: margins leave no room");

    std::vector<geo::Rect> placed;
    int attempts = 0;
    const int max_attempts = 20000;
    while (static_cast<int>(placed.size()) < via_count && attempts < max_attempts) {
        ++attempts;
        const int snap = opt.grid_snap_nm;
        const int x = lo + rng.uniform_int(0, (hi - lo) / snap) * snap;
        const int y = lo + rng.uniform_int(0, (hi - lo) / snap) * snap;
        const geo::Rect cand{x, y, x + opt.via_nm, y + opt.via_nm};

        bool ok = true;
        for (const geo::Rect& r : placed) {
            if (geo::rect_gap(cand, r) < opt.min_spacing_nm) {
                ok = false;
                break;
            }
        }
        if (ok) placed.push_back(cand);
    }
    if (static_cast<int>(placed.size()) < via_count) {
        throw std::runtime_error("via clip: placement failed (spacing too tight)");
    }

    std::vector<geo::Polygon> out;
    out.reserve(placed.size());
    for (const geo::Rect& r : placed) out.push_back(geo::Polygon::from_rect(r));
    return out;
}

std::vector<Clip> via_training_set(std::uint64_t seed, const ViaGenOptions& opt) {
    std::vector<Clip> clips;
    int idx = 1;
    for (int count : kTrainViaCounts) {
        Rng rng(seed + static_cast<std::uint64_t>(idx) * 7919ULL);
        clips.push_back({"T" + std::to_string(idx), generate_via_clip(count, rng, opt),
                         opt.clip_nm});
        ++idx;
    }
    return clips;
}

std::vector<Clip> via_test_set(std::uint64_t seed, const ViaGenOptions& opt) {
    std::vector<Clip> clips;
    int idx = 1;
    for (int count : kTestViaCounts) {
        // Offset the stream so test clips never repeat training clips.
        Rng rng(seed + 1000003ULL + static_cast<std::uint64_t>(idx) * 104729ULL);
        clips.push_back({"V" + std::to_string(idx), generate_via_clip(count, rng, opt),
                         opt.clip_nm});
        ++idx;
    }
    return clips;
}

std::vector<Clip> via_batch_set(std::uint64_t seed, int count, const ViaGenOptions& opt) {
    std::vector<Clip> clips;
    clips.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        const std::uint64_t clip_seed = derive_seed(seed, static_cast<std::uint64_t>(i));
        Rng rng(clip_seed);
        const int vias = 2 + static_cast<int>(clip_seed % 5);  // 2..6, seed-determined
        clips.push_back({"B" + std::to_string(i + 1), generate_via_clip(vias, rng, opt),
                         opt.clip_nm});
    }
    return clips;
}

}  // namespace camo::layout
