// Minimal GDSII stream-format writer/reader.
//
// Supports the subset a mask-optimization flow needs: one structure holding
// BOUNDARY elements on integer-nm coordinates, with a layer number per
// polygon set (targets, SRAFs and optimized masks go on separate layers).
// Database unit is 1 nm (1e-9 m), user unit 1e-3 um.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "geometry/polygon.hpp"

namespace camo::layout {

struct GdsLibrary {
    std::string name = "CAMO";
    std::string structure = "TOP";
    /// layer number -> polygons
    std::map<int, std::vector<geo::Polygon>> layers;
};

/// Malformed GDSII input: truncated record, oversized element, unterminated
/// structure/element/library, bad payload size. Carries the byte offset of
/// the record that failed so a bad upload is diagnosable. Derives from
/// std::runtime_error, so pre-existing catch sites keep working.
class GdsParseError : public std::runtime_error {
public:
    GdsParseError(const std::string& what, std::uint64_t offset)
        : std::runtime_error("gds: " + what + " (at byte " + std::to_string(offset) + ")"),
          offset_(offset) {}

    /// File offset of the offending record header.
    [[nodiscard]] std::uint64_t offset() const { return offset_; }

private:
    std::uint64_t offset_;
};

/// A BOUNDARY element may not accumulate more XY vertices than this (the
/// stream-format element limit); a corrupt count field past it is rejected
/// as oversized instead of ballooning memory.
inline constexpr std::size_t kMaxBoundaryVertices = 8191;

void write_gds(const std::string& path, const GdsLibrary& lib);

/// Parses the subset written by write_gds (and any stream file consisting of
/// BOUNDARY elements). Throws GdsParseError on malformed input — truncated
/// records, XY payloads that are not whole coordinate pairs, oversized
/// element counts, and files ending inside an element, structure, or before
/// ENDLIB — and std::runtime_error when the file cannot be opened.
GdsLibrary read_gds(const std::string& path);

}  // namespace camo::layout
