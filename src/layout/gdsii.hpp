// Minimal GDSII stream-format writer/reader.
//
// Supports the subset a mask-optimization flow needs: one structure holding
// BOUNDARY elements on integer-nm coordinates, with a layer number per
// polygon set (targets, SRAFs and optimized masks go on separate layers).
// Database unit is 1 nm (1e-9 m), user unit 1e-3 um.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "geometry/polygon.hpp"

namespace camo::layout {

struct GdsLibrary {
    std::string name = "CAMO";
    std::string structure = "TOP";
    /// layer number -> polygons
    std::map<int, std::vector<geo::Polygon>> layers;
};

void write_gds(const std::string& path, const GdsLibrary& lib);

/// Parses the subset written by write_gds (and any stream file consisting of
/// BOUNDARY elements). Throws std::runtime_error on malformed input.
GdsLibrary read_gds(const std::string& path);

}  // namespace camo::layout
