// Scenario pattern generators beyond the paper's two benchmark families.
//
// Each generator emits one clip's target polygons for a layout family the
// scenario matrix exercises: contact/via doubling arrays, uniform contact
// grids, line-space gratings with jogs, isolated-vs-dense splits, SRAM-like
// mirrored cells and multi-pitch metal. All are deterministic in the passed
// Rng (equal seeds produce byte-identical polygons at any thread count) and
// keep every feature inside [margin_nm, clip_nm - margin_nm], the same
// contract as generate_via_clip / generate_metal_clip.
//
// The default clip_nm of 1000 fits the quick-scale 256 x 4 nm simulation
// frame the scenario registry runs on; pass larger options for the 512-grid
// production frame.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geometry/polygon.hpp"

namespace camo::layout {

struct PatternOptions {
    int clip_nm = 1000;
    int margin_nm = 150;  ///< keep-out from clip borders
};

/// Double-patterning-style via pairs: a grid of 1-2 x 2-3 pairs, each pair
/// two `via_nm` squares at a near-minimum `pair_gap_nm`, pair origins
/// jittered on a 10 nm grid. The tight intra-pair gap is the classic
/// bridging hotspot the nominal-corner objective misses.
struct ViaPairOptions : PatternOptions {
    int via_nm = 70;
    int pair_gap_nm = 110;   ///< edge-to-edge gap inside a pair
    int pair_pitch_x = 330;  ///< pair-origin pitch, horizontal
    int pair_pitch_y = 250;  ///< pair-origin pitch, vertical
};
std::vector<geo::Polygon> generate_via_pair_array(Rng& rng, const ViaPairOptions& opt = {});

/// Uniform contact grid: rows x cols square contacts at one pitch drawn
/// from [pitch_min_nm, pitch_max_nm] (snapped to 20 nm). The most regular
/// via workload — strong proximity coupling between every neighbour.
struct ContactGridOptions : PatternOptions {
    int via_nm = 70;
    int pitch_min_nm = 200;
    int pitch_max_nm = 260;
};
std::vector<geo::Polygon> generate_contact_grid(Rng& rng, const ContactGridOptions& opt = {});

/// Line-space grating where each line may carry one jog: the right half of
/// the wire shifts up by jog_nm (0 < jog < width keeps the wire a single
/// 8-vertex rectilinear polygon). Jogs create line-end-like inner corners
/// in the middle of an otherwise 1D pattern.
struct GratingOptions : PatternOptions {
    int width_nm = 60;
    int space_nm = 100;    ///< vertical clearance including the jogged half
    int jog_nm = 30;       ///< vertical jog step; must stay < width_nm
    double jog_prob = 0.7; ///< per-line probability of carrying a jog
};
std::vector<geo::Polygon> generate_grating_jog(Rng& rng, const GratingOptions& opt = {});

/// Isolated-vs-dense split: a dense cluster of lines at tight pitch in the
/// lower half plus one isolated line at least `iso_gap_nm` above it. The
/// classic OPC bias test — the isolated edge and the dense edges need
/// opposite corrections.
struct IsoDenseOptions : PatternOptions {
    int width_nm = 60;
    int dense_space_nm = 80;
    int dense_lines = 3;
    int iso_gap_nm = 260;  ///< clearance between cluster and isolated line
};
std::vector<geo::Polygon> generate_iso_dense(Rng& rng, const IsoDenseOptions& opt = {});

/// SRAM-like mirrored cell array: a 3-polygon cell (two horizontal bars and
/// one vertical strap) tiled rows x cols with x-mirroring on alternate
/// columns and y-mirroring on alternate rows, the bitcell symmetry real
/// arrays have. Mixes measured horizontal edges with unmeasured line-ends.
struct SramOptions : PatternOptions {
    int bar_w = 180;       ///< horizontal bar length
    int bar_h = 70;        ///< bar width
    int strap_w = 70;      ///< vertical strap width
    int strap_h = 180;     ///< vertical strap length
    int cell_pitch = 390;  ///< cell pitch, both axes
};
std::vector<geo::Polygon> generate_sram_cell(Rng& rng, const SramOptions& opt = {});

/// Multi-pitch metal: stacked bands of lines at fine / mid / coarse pitch
/// (50/80, 70/100 and 90 nm wide) with per-line random lengths, so one clip
/// spans the density range a single-pitch generator cannot.
struct MultiPitchOptions : PatternOptions {};
std::vector<geo::Polygon> generate_multi_pitch(Rng& rng, const MultiPitchOptions& opt = {});

}  // namespace camo::layout
