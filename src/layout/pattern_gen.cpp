#include "layout/pattern_gen.hpp"

#include <algorithm>
#include <stdexcept>

namespace camo::layout {
namespace {

// Largest count of `pitch`-spaced items of size `item` that fit into `room`.
int fit_count(int room, int item, int pitch) {
    if (room < item) return 0;
    return 1 + (room - item) / pitch;
}

void require_room(bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("pattern gen: no room for ") + what);
}

}  // namespace

std::vector<geo::Polygon> generate_via_pair_array(Rng& rng, const ViaPairOptions& opt) {
    const int room = opt.clip_nm - 2 * opt.margin_nm;
    const int pair_w = 2 * opt.via_nm + opt.pair_gap_nm;
    const int max_cols = std::min(2, fit_count(room, pair_w, opt.pair_pitch_x));
    const int max_rows = std::min(3, fit_count(room, opt.via_nm, opt.pair_pitch_y));
    require_room(max_cols >= 1 && max_rows >= 2, "via pair array");

    const int cols = rng.uniform_int(1, max_cols);
    const int rows = rng.uniform_int(2, max_rows);
    const int used_w = (cols - 1) * opt.pair_pitch_x + pair_w;
    const int used_h = (rows - 1) * opt.pair_pitch_y + opt.via_nm;
    const int x0 = opt.margin_nm + rng.uniform_int(0, (room - used_w) / 10) * 10;
    const int y0 = opt.margin_nm + rng.uniform_int(0, (room - used_h) / 10) * 10;

    std::vector<geo::Polygon> out;
    out.reserve(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) * 2U);
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            const int x = x0 + c * opt.pair_pitch_x;
            const int y = y0 + r * opt.pair_pitch_y;
            out.push_back(geo::Polygon::from_rect({x, y, x + opt.via_nm, y + opt.via_nm}));
            const int x2 = x + opt.via_nm + opt.pair_gap_nm;
            out.push_back(geo::Polygon::from_rect({x2, y, x2 + opt.via_nm, y + opt.via_nm}));
        }
    }
    return out;
}

std::vector<geo::Polygon> generate_contact_grid(Rng& rng, const ContactGridOptions& opt) {
    const int room = opt.clip_nm - 2 * opt.margin_nm;
    const int pitch =
        opt.pitch_min_nm + rng.uniform_int(0, (opt.pitch_max_nm - opt.pitch_min_nm) / 20) * 20;
    const int max_n = fit_count(room, opt.via_nm, pitch);
    require_room(max_n >= 3, "contact grid");

    const int cols = rng.uniform_int(3, std::min(4, max_n));
    const int rows = rng.uniform_int(3, std::min(4, max_n));
    const int used_w = (cols - 1) * pitch + opt.via_nm;
    const int used_h = (rows - 1) * pitch + opt.via_nm;
    const int x0 = opt.margin_nm + rng.uniform_int(0, (room - used_w) / 10) * 10;
    const int y0 = opt.margin_nm + rng.uniform_int(0, (room - used_h) / 10) * 10;

    std::vector<geo::Polygon> out;
    out.reserve(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            const int x = x0 + c * pitch;
            const int y = y0 + r * pitch;
            out.push_back(geo::Polygon::from_rect({x, y, x + opt.via_nm, y + opt.via_nm}));
        }
    }
    return out;
}

std::vector<geo::Polygon> generate_grating_jog(Rng& rng, const GratingOptions& opt) {
    if (opt.jog_nm <= 0 || opt.jog_nm >= opt.width_nm) {
        throw std::invalid_argument("grating: jog must satisfy 0 < jog < width");
    }
    const int room = opt.clip_nm - 2 * opt.margin_nm;
    // A jogged line occupies width + jog vertically.
    const int line_h = opt.width_nm + opt.jog_nm;
    const int pitch = line_h + opt.space_nm;
    const int lines = fit_count(room, line_h, pitch);
    require_room(lines >= 2, "grating");

    const int x_lo = opt.margin_nm;
    std::vector<geo::Polygon> out;
    out.reserve(static_cast<std::size_t>(lines));
    int y = opt.margin_nm + rng.uniform_int(0, 4) * 10;
    for (int i = 0; i < lines && y + line_h <= opt.clip_nm - opt.margin_nm; ++i) {
        const int len = 360 + rng.uniform_int(0, 12) * 20;  // 360..600 nm
        const int x_hi = std::min(x_lo + len, opt.clip_nm - opt.margin_nm);
        if (rng.coin(opt.jog_prob)) {
            // Jog point in the middle third, snapped to 20 nm.
            const int span = x_hi - x_lo;
            const int xm = x_lo + span / 3 + rng.uniform_int(0, std::max(1, span / 60)) * 20;
            const int w = opt.width_nm;
            const int j = opt.jog_nm;
            // Union of [x_lo,xm]x[y,y+w] and [xm,x_hi]x[y+j,y+j+w]: one CCW
            // 8-vertex rectilinear polygon (valid because 0 < j < w).
            out.emplace_back(std::vector<geo::Point>{{x_lo, y},
                                                     {xm, y},
                                                     {xm, y + j},
                                                     {x_hi, y + j},
                                                     {x_hi, y + j + w},
                                                     {xm, y + j + w},
                                                     {xm, y + w},
                                                     {x_lo, y + w}});
        } else {
            out.push_back(geo::Polygon::from_rect({x_lo, y, x_hi, y + opt.width_nm}));
        }
        y += pitch;
    }
    return out;
}

std::vector<geo::Polygon> generate_iso_dense(Rng& rng, const IsoDenseOptions& opt) {
    const int x_lo = opt.margin_nm;
    const int x_hi = opt.clip_nm - opt.margin_nm;
    const int dense_pitch = opt.width_nm + opt.dense_space_nm;
    const int cluster_h = opt.dense_lines * dense_pitch - opt.dense_space_nm;
    const int iso_y_min = opt.margin_nm + cluster_h + opt.iso_gap_nm;
    require_room(iso_y_min + opt.width_nm <= opt.clip_nm - opt.margin_nm, "iso-dense split");

    std::vector<geo::Polygon> out;
    out.reserve(static_cast<std::size_t>(opt.dense_lines) + 1U);
    const int len = 360 + rng.uniform_int(0, 10) * 20;
    int y = opt.margin_nm;
    for (int i = 0; i < opt.dense_lines; ++i) {
        out.push_back(
            geo::Polygon::from_rect({x_lo, y, std::min(x_lo + len, x_hi), y + opt.width_nm}));
        y += dense_pitch;
    }
    const int head = opt.clip_nm - opt.margin_nm - opt.width_nm - iso_y_min;
    const int iso_y = iso_y_min + rng.uniform_int(0, std::max(0, head / 10)) * 10;
    const int iso_len = 300 + rng.uniform_int(0, 8) * 20;
    out.push_back(geo::Polygon::from_rect(
        {x_lo, iso_y, std::min(x_lo + iso_len, x_hi), iso_y + opt.width_nm}));
    return out;
}

std::vector<geo::Polygon> generate_sram_cell(Rng& rng, const SramOptions& opt) {
    const int room = opt.clip_nm - 2 * opt.margin_nm;
    // Cell extent: the strap sits 60 nm right of the bars, bars stacked
    // vertically with a 60 nm gap.
    const int cell_w = opt.bar_w + 60 + opt.strap_w;
    const int cell_h = std::max(2 * opt.bar_h + 60, opt.strap_h);
    const int cols = std::min(2, fit_count(room, cell_w, opt.cell_pitch));
    const int rows = std::min(2, fit_count(room, cell_h, opt.cell_pitch));
    require_room(cols >= 1 && rows >= 1, "sram cell array");

    const int used_w = (cols - 1) * opt.cell_pitch + cell_w;
    const int used_h = (rows - 1) * opt.cell_pitch + cell_h;
    const int x0 = opt.margin_nm + rng.uniform_int(0, std::max(0, (room - used_w) / 10)) * 10;
    const int y0 = opt.margin_nm + rng.uniform_int(0, std::max(0, (room - used_h) / 10)) * 10;

    std::vector<geo::Polygon> out;
    out.reserve(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) * 3U);
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            const int cx = x0 + c * opt.cell_pitch;
            const int cy = y0 + r * opt.cell_pitch;
            const bool mx = (c % 2) == 1;  // x-mirror alternate columns
            const bool my = (r % 2) == 1;  // y-mirror alternate rows
            auto place = [&](int lx, int ly, int w, int h) {
                const int fx = mx ? cell_w - lx - w : lx;
                const int fy = my ? cell_h - ly - h : ly;
                out.push_back(geo::Polygon::from_rect(
                    {cx + fx, cy + fy, cx + fx + w, cy + fy + h}));
            };
            place(0, 0, opt.bar_w, opt.bar_h);
            place(0, opt.bar_h + 60, opt.bar_w, opt.bar_h);
            place(opt.bar_w + 60, (cell_h - opt.strap_h) / 2, opt.strap_w, opt.strap_h);
        }
    }
    return out;
}

std::vector<geo::Polygon> generate_multi_pitch(Rng& rng, const MultiPitchOptions& opt) {
    struct Band {
        int width, space, lines;
    };
    // Fine, mid and coarse bands; the schedule spans 690 nm, fitting the
    // default 700 nm of usable height exactly once.
    const Band bands[] = {{50, 80, 2}, {70, 100, 2}, {90, 0, 1}};

    const int x_lo = opt.margin_nm;
    const int x_hi = opt.clip_nm - opt.margin_nm;
    std::vector<geo::Polygon> out;
    int y = opt.margin_nm;
    for (const Band& b : bands) {
        for (int i = 0; i < b.lines; ++i) {
            if (y + b.width > opt.clip_nm - opt.margin_nm) {
                throw std::invalid_argument("pattern gen: no room for multi-pitch bands");
            }
            const int len = 300 + rng.uniform_int(0, 10) * 20;
            out.push_back(
                geo::Polygon::from_rect({x_lo, y, std::min(x_lo + len, x_hi), y + b.width}));
            y += b.width + b.space;
        }
    }
    return out;
}

}  // namespace camo::layout
