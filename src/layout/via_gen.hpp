// Via-layer clip generator.
//
// Substitutes the dataset of Liu et al. [17] used by the paper: 2 um x 2 um
// clips containing 70 nm x 70 nm via patterns. The paper's training set has
// 11 clips with 2-5 vias; the test set has 13 clips with 2-6 vias whose
// per-case counts (Table 1) are reproduced exactly:
// V1..V13 -> 2,2,3,3,4,4,5,5,6,6,6,6,6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "geometry/polygon.hpp"

namespace camo::layout {

struct ViaGenOptions {
    int clip_nm = 2000;
    int via_nm = 70;
    int margin_nm = 400;       ///< keep-out from clip borders
    int min_spacing_nm = 250;  ///< minimum edge-to-edge spacing between vias
    int grid_snap_nm = 10;     ///< placement grid
};

/// A named benchmark clip.
struct Clip {
    std::string name;
    std::vector<geo::Polygon> targets;
    int clip_nm = 2000;
};

/// Random clip with exactly `via_count` vias satisfying the spacing rule.
std::vector<geo::Polygon> generate_via_clip(int via_count, Rng& rng,
                                            const ViaGenOptions& opt = {});

/// 11 training clips with 2-5 vias (paper Section 4.1).
std::vector<Clip> via_training_set(std::uint64_t seed, const ViaGenOptions& opt = {});

/// 13 test clips V1..V13 with the paper's exact via counts.
std::vector<Clip> via_test_set(std::uint64_t seed, const ViaGenOptions& opt = {});

/// Arbitrarily large clip stream for the batch runtime: clip i carries 2-6
/// vias and is generated from its own splitmix-derived seed, so any
/// sub-range can be produced independently (and in parallel) with results
/// identical to sequential generation.
std::vector<Clip> via_batch_set(std::uint64_t seed, int count, const ViaGenOptions& opt = {});

}  // namespace camo::layout
