#include "layout/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace camo::layout {

namespace {

obs::MetricId tiles_counter() {
    static const obs::MetricId id = obs::register_counter("shard.tiles");
    return id;
}

obs::MetricId cut_hist() {
    static const obs::MetricId id = obs::register_histogram("shard.cut.ns");
    return id;
}

obs::MetricId stitch_hist() {
    static const obs::MetricId id = obs::register_histogram("shard.stitch.ns");
    return id;
}

/// Tile grid cell of a coordinate: floor((c - origin) / tile), clamped into
/// [0, count). Floor (not truncating) division so polygons left of the
/// origin still map deterministically.
int grid_cell(int c, int origin, int tile, int count) {
    const int rel = c - origin;
    int cell = rel / tile;
    if (rel < 0 && rel % tile != 0) --cell;
    return std::clamp(cell, 0, count - 1);
}

}  // namespace

geo::Polygon translated(const geo::Polygon& poly, int dx, int dy) {
    std::vector<geo::Point> v = poly.vertices();
    for (auto& p : v) {
        p.x += dx;
        p.y += dy;
    }
    return geo::Polygon(std::move(v));
}

void ShardOptions::validate(const litho::LithoConfig& litho) const {
    if (tile_nm < 1) {
        throw std::invalid_argument("ShardOptions: tile_nm must be at least 1, got " +
                                    std::to_string(tile_nm));
    }
    const int radius = litho::interaction_radius_nm(litho);
    if (halo_nm < radius) {
        throw std::invalid_argument(
            "ShardOptions: halo_nm " + std::to_string(halo_nm) +
            " is below the optical interaction radius " + std::to_string(radius) +
            " nm; seam segments would lose context and stitch would not match a "
            "monolithic run");
    }
    if (window_nm() > static_cast<int>(litho.clip_span_nm())) {
        throw std::invalid_argument(
            "ShardOptions: tile window " + std::to_string(window_nm()) +
            " nm exceeds the simulation frame " +
            std::to_string(static_cast<int>(litho.clip_span_nm())) +
            " nm; shrink tile_nm/halo_nm or enlarge the litho grid");
    }
}

int Tile::owned_count() const {
    return static_cast<int>(std::count(owned.begin(), owned.end(), true));
}

std::string Tile::name() const {
    return "t" + std::to_string(tx) + "x" + std::to_string(ty);
}

TileSharder::TileSharder(std::vector<geo::Polygon> chip, ShardOptions opt,
                         const litho::LithoConfig& litho)
    : chip_(std::move(chip)), opt_(std::move(opt)) {
    opt_.validate(litho);
    obs::Span span("shard.cut", cut_hist());
    owner_.assign(chip_.size(), -1);
    if (chip_.empty()) return;

    std::vector<geo::Rect> bboxes;
    bboxes.reserve(chip_.size());
    geo::Rect extent = chip_.front().bbox();
    for (const auto& poly : chip_) {
        const geo::Rect bb = poly.bbox();
        bboxes.push_back(bb);
        extent.xlo = std::min(extent.xlo, bb.xlo);
        extent.ylo = std::min(extent.ylo, bb.ylo);
        extent.xhi = std::max(extent.xhi, bb.xhi);
        extent.yhi = std::max(extent.yhi, bb.yhi);
    }

    const geo::Point origin =
        opt_.auto_origin ? geo::Point{extent.xlo, extent.ylo} : opt_.origin;
    const int tile = opt_.tile_nm;
    const int nx = grid_cell(extent.xhi, origin.x, tile, 1 << 30) + 1;
    const int ny = grid_cell(extent.yhi, origin.y, tile, 1 << 30) + 1;

    // Ownership: the tile whose core contains the polygon's bbox center.
    // Centers may land on half-nm, so work in doubled coordinates; a center
    // exactly on a cut line gets floor'd into the upper tile consistently.
    std::vector<std::pair<int, int>> owner_cell(chip_.size());
    for (std::size_t p = 0; p < chip_.size(); ++p) {
        const auto c = bboxes[p].center();
        const int cx2 = static_cast<int>(2.0 * c.x);
        const int cy2 = static_cast<int>(2.0 * c.y);
        owner_cell[p] = {grid_cell(cx2, 2 * origin.x, 2 * tile, nx),
                         grid_cell(cy2, 2 * origin.y, 2 * tile, ny)};
    }

    // Build tiles row-major, skipping cores that own nothing.
    for (int ty = 0; ty < ny; ++ty) {
        for (int tx = 0; tx < nx; ++tx) {
            const geo::Rect core{origin.x + tx * tile, origin.y + ty * tile,
                                 origin.x + (tx + 1) * tile, origin.y + (ty + 1) * tile};
            const geo::Rect window = core.expanded(opt_.halo_nm);

            Tile t;
            t.tx = tx;
            t.ty = ty;
            t.core = core;
            t.window = window;
            bool any_owned = false;
            for (std::size_t p = 0; p < chip_.size(); ++p) {
                const bool owns = owner_cell[p] == std::pair<int, int>{tx, ty};
                if (owns || bboxes[p].intersects(window)) {
                    t.members.push_back(static_cast<int>(p));
                    t.owned.push_back(owns);
                    any_owned |= owns;
                }
            }
            if (!any_owned) continue;

            const int dx = -window.xlo;
            const int dy = -window.ylo;
            std::vector<geo::Polygon> local;
            local.reserve(t.members.size());
            for (const int p : t.members) local.push_back(translated(chip_[p], dx, dy));
            std::vector<geo::Polygon> srafs;
            if (opt_.sraf_gen) srafs = opt_.sraf_gen(local);
            t.layout = geo::SegmentedLayout(std::move(local), opt_.fragment,
                                            std::move(srafs), opt_.window_nm());

            const int tile_index = static_cast<int>(tiles_.size());
            for (std::size_t k = 0; k < t.members.size(); ++k) {
                if (t.owned[k]) owner_[t.members[k]] = tile_index;
            }
            tiles_.push_back(std::move(t));
        }
    }
    obs::counter_add(tiles_counter(), static_cast<long long>(tiles_.size()));
}

std::vector<geo::SegmentedLayout> TileSharder::tile_layouts() const {
    std::vector<geo::SegmentedLayout> out;
    out.reserve(tiles_.size());
    for (const auto& t : tiles_) out.push_back(t.layout);
    return out;
}

std::vector<std::string> TileSharder::tile_names() const {
    std::vector<std::string> out;
    out.reserve(tiles_.size());
    for (const auto& t : tiles_) out.push_back(t.name());
    return out;
}

geo::SegmentedLayout TileSharder::chip_layout() const {
    std::vector<geo::Polygon> srafs;
    if (opt_.sraf_gen) srafs = opt_.sraf_gen(chip_);
    return geo::SegmentedLayout(chip_, opt_.fragment, std::move(srafs), opt_.window_nm());
}

int TileSharder::total_owned_segments() const {
    int total = 0;
    for (const auto& t : tiles_) {
        for (std::size_t k = 0; k < t.members.size(); ++k) {
            if (!t.owned[k]) continue;
            const auto [b, e] = t.layout.polygon_segment_range(static_cast<int>(k));
            total += e - b;
        }
    }
    return total;
}

StitchResult stitch(const TileSharder& sharder, const geo::SegmentedLayout& chip_layout,
                    const std::vector<std::vector<int>>& tile_offsets) {
    obs::Span span("shard.stitch", stitch_hist());
    const auto& tiles = sharder.tiles();
    if (tile_offsets.size() != tiles.size()) {
        throw std::invalid_argument(
            "stitch: got " + std::to_string(tile_offsets.size()) + " offset vectors for " +
            std::to_string(tiles.size()) + " tiles");
    }
    if (static_cast<std::size_t>(chip_layout.num_segments()) == 0 && !sharder.chip().empty()) {
        throw std::invalid_argument("stitch: chip layout has no segments");
    }

    StitchResult out;
    out.offsets.assign(chip_layout.num_segments(), 0);
    std::vector<bool> filled(sharder.chip().size(), false);

    for (std::size_t i = 0; i < tiles.size(); ++i) {
        const Tile& t = tiles[i];
        if (static_cast<int>(tile_offsets[i].size()) != t.layout.num_segments()) {
            throw std::invalid_argument(
                "stitch: tile " + t.name() + " offsets size " +
                std::to_string(tile_offsets[i].size()) + " != layout segments " +
                std::to_string(t.layout.num_segments()));
        }
        for (std::size_t k = 0; k < t.members.size(); ++k) {
            if (!t.owned[k]) continue;
            const int p = t.members[k];
            const auto [tb, te] = t.layout.polygon_segment_range(static_cast<int>(k));
            const auto [cb, ce] = chip_layout.polygon_segment_range(p);
            if (te - tb != ce - cb) {
                // Fragmentation is translation-invariant, so a count mismatch
                // means chip_layout was built with different options.
                throw std::invalid_argument(
                    "stitch: polygon " + std::to_string(p) + " has " +
                    std::to_string(te - tb) + " segments in tile " + t.name() + " but " +
                    std::to_string(ce - cb) + " in the chip layout");
            }
            std::copy(tile_offsets[i].begin() + tb, tile_offsets[i].begin() + te,
                      out.offsets.begin() + cb);
            filled[p] = true;
        }
    }

    for (std::size_t p = 0; p < filled.size(); ++p) {
        if (!filled[p]) {
            throw std::invalid_argument("stitch: polygon " + std::to_string(p) +
                                        " has no owner tile result");
        }
    }

    out.mask = chip_layout.reconstruct_mask(out.offsets);
    return out;
}

}  // namespace camo::layout
