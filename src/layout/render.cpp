#include "layout/render.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace camo::layout {
namespace {

void write_ppm(const std::string& path, int w, int h, const std::vector<Rgb>& pixels) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("ppm: cannot open " + path);
    out << "P6\n" << w << " " << h << "\n255\n";
    for (const Rgb& p : pixels) {
        out.put(static_cast<char>(p.r));
        out.put(static_cast<char>(p.g));
        out.put(static_cast<char>(p.b));
    }
}

// Raster rows are y-up; image rows are top-down, so flip vertically.
std::vector<Rgb> raster_to_pixels(const geo::Raster& raster,
                                  const std::vector<Rgb>& palette, bool indexed) {
    const int n = raster.n();
    std::vector<Rgb> px(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    for (int row = 0; row < n; ++row) {
        for (int col = 0; col < n; ++col) {
            const float v = raster.at(n - 1 - row, col);
            Rgb c;
            if (indexed) {
                const int idx = static_cast<int>(v + 0.5F);
                if (idx > 0 && idx <= static_cast<int>(palette.size())) {
                    c = palette[static_cast<std::size_t>(idx - 1)];
                }
            } else {
                const auto g = static_cast<unsigned char>(std::clamp(v, 0.0F, 1.0F) * 255.0F);
                c = {g, g, g};
            }
            px[static_cast<std::size_t>(row) * static_cast<std::size_t>(n) +
               static_cast<std::size_t>(col)] = c;
        }
    }
    return px;
}

}  // namespace

void write_ppm_gray(const std::string& path, const geo::Raster& raster) {
    write_ppm(path, raster.n(), raster.n(), raster_to_pixels(raster, {}, false));
}

void write_ppm_indexed(const std::string& path, const geo::Raster& raster,
                       const std::vector<Rgb>& palette) {
    write_ppm(path, raster.n(), raster.n(), raster_to_pixels(raster, palette, true));
}

void render_fig6(const std::string& prefix, const Fig6Inputs& in) {
    const int n = in.printed_nominal.n();
    const double px = in.printed_nominal.pixel_nm();

    auto polygons_to_raster = [&](const std::vector<geo::Polygon>& polys) {
        geo::Raster r(n, px);
        for (const geo::Polygon& p : polys) {
            std::vector<geo::Point> v = p.vertices();
            for (geo::Point& q : v) {
                q.x += in.offset_nm;
                q.y += in.offset_nm;
            }
            r.add_polygon(geo::Polygon(std::move(v)));
        }
        r.clamp01();
        return r;
    };

    write_ppm_gray(prefix + "_target.ppm", polygons_to_raster(in.target));
    write_ppm_gray(prefix + "_mask.ppm", polygons_to_raster(in.mask));
    write_ppm_gray(prefix + "_contour.ppm", in.printed_nominal);

    // PV band in amber on black, printed region in gray beneath.
    geo::Raster overlay(n, px);
    for (int row = 0; row < n; ++row) {
        for (int col = 0; col < n; ++col) {
            float v = 0.0F;
            if (in.printed_nominal.at(row, col) > 0.5F) v = 1.0F;
            if (in.pvband.at(row, col) > 0.5F) v = 2.0F;
            overlay.at(row, col) = v;
        }
    }
    write_ppm_indexed(prefix + "_pvband.ppm", overlay,
                      {{120, 120, 120}, {255, 176, 32}});
}

}  // namespace camo::layout
