// Full-chip tile sharder: cut a chip-scale layout into overlapping
// halo-padded tiles, and stitch per-tile OPC results back into one mask.
//
// Geometry. The chip plane is covered by a grid of `tile_nm` x `tile_nm`
// *core* rectangles; every tile is optimized over its core expanded by
// `halo_nm` on each side (the *window*):
//
//         +-----------------------------+
//         |        halo (context)       |
//         |   +---------------------+   |
//         |   |                     |   |
//         |   |     core (owned)    |   |      window = core + 2*halo
//         |   |                     |   |
//         |   +---------------------+   |
//         |                             |
//         +-----------------------------+
//
// Every chip polygon is *owned* by exactly one tile — the tile whose core
// contains its bounding-box center (a deterministic assignment; centers
// exactly on a cut line belong to the upper tile) — and additionally rides
// along as *context* in every other tile whose window its bounding box
// reaches. Context polygons give seam segments the optical neighbourhood
// they would have had in a monolithic run; their per-segment results are
// computed and then discarded.
//
// Stitching lets the halo-context result win at every seam: for each chip
// polygon, the stitched offsets are taken from its owner tile — the one run
// in which the polygon sat in the core with a full halo of context around
// it — and the copies other tiles computed at the seam (where the same
// polygon had context on one side only) are dropped.
//
// Correctness contract (tests/test_layout_shard.cpp): fragmentation is
// translation-invariant, so tile-local segments map 1:1 onto chip-level
// segments, and for any polygon whose optical context window (halo radius)
// lies entirely inside one tile the shard -> optimize -> stitch result is
// bit-identical to optimizing that neighbourhood as a standalone clip, at
// any thread count and any tile visit order. ShardOptions::validate rejects
// halos below litho::interaction_radius_nm — a halo that cannot contain the
// optical context would silently produce seam artifacts.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "geometry/fragment.hpp"
#include "geometry/layout.hpp"
#include "geometry/polygon.hpp"
#include "litho/config.hpp"

namespace camo::layout {

/// `poly` with every vertex moved by (dx, dy).
[[nodiscard]] geo::Polygon translated(const geo::Polygon& poly, int dx, int dy);

/// SRAF inserter applied per tile to the (owned + context) targets in
/// tile-local coordinates. Kept as a callback so the layout layer does not
/// depend on opc; via-style callers pass opc::insert_srafs.
using SrafGenerator = std::function<std::vector<geo::Polygon>(const std::vector<geo::Polygon>&)>;

struct ShardOptions {
    int tile_nm = 512;  ///< core tile edge
    int halo_nm = 256;  ///< context margin added on every side of the core

    geo::FragmentOptions fragment{};  ///< fragmentation of tile (and chip) layouts
    SrafGenerator sraf_gen;           ///< null = no SRAFs

    /// Tile grid anchor. By default the grid is anchored at the chip
    /// bounding box's lower-left corner; set auto_origin = false to pin the
    /// cut lines to `origin` (chipgen-produced chips use (0, 0) so tile
    /// boundaries land on the placement pitch).
    bool auto_origin = true;
    geo::Point origin{0, 0};

    [[nodiscard]] int window_nm() const { return tile_nm + 2 * halo_nm; }

    /// Throws std::invalid_argument when the geometry cannot work: a
    /// non-positive tile, a halo below litho::interaction_radius_nm(litho)
    /// (seam segments would lose optical context), or a window that does
    /// not fit the simulation frame.
    void validate(const litho::LithoConfig& litho) const;
};

/// One halo-padded tile. `members` lists the chip polygon indices present
/// in the window (ascending chip order, which is also the polygon order of
/// `layout`); `owned[k]` says whether members[k]'s results are kept at
/// stitch time.
struct Tile {
    int tx = 0;  ///< tile grid column
    int ty = 0;  ///< tile grid row
    geo::Rect core{};    ///< owned region, chip coordinates
    geo::Rect window{};  ///< core expanded by the halo, chip coordinates
    std::vector<int> members;
    std::vector<bool> owned;
    geo::SegmentedLayout layout;  ///< window contents in tile-local coordinates

    [[nodiscard]] int owned_count() const;
    [[nodiscard]] std::string name() const;  ///< "t<tx>x<ty>"
};

/// Cuts a full-chip polygon set into tiles at construction. Tiles whose
/// core owns no polygon are skipped (their results would be discarded
/// whole); tiles() is ordered row-major (ty, then tx), which is the
/// canonical tile-job order the streaming runtime consumes.
class TileSharder {
public:
    /// Validates `opt` against `litho` (see ShardOptions::validate), then
    /// shards. An empty chip yields zero tiles.
    TileSharder(std::vector<geo::Polygon> chip, ShardOptions opt,
                const litho::LithoConfig& litho);

    [[nodiscard]] const std::vector<Tile>& tiles() const { return tiles_; }
    [[nodiscard]] const std::vector<geo::Polygon>& chip() const { return chip_; }
    [[nodiscard]] const ShardOptions& options() const { return opt_; }

    /// Owner tile index (into tiles()) of each chip polygon.
    [[nodiscard]] const std::vector<int>& owner() const { return owner_; }

    /// Per-tile layouts in tiles() order — the clip vector the batch
    /// runtime optimizes.
    [[nodiscard]] std::vector<geo::SegmentedLayout> tile_layouts() const;

    /// Tile names in tiles() order (for per-clip reporting).
    [[nodiscard]] std::vector<std::string> tile_names() const;

    /// The whole chip fragmented with the same options, in chip
    /// coordinates: the frame stitched offsets live on. Fragmentation is
    /// translation-invariant, so polygon p's segment range here corresponds
    /// 1:1 to p's range inside its tiles.
    [[nodiscard]] geo::SegmentedLayout chip_layout() const;

    [[nodiscard]] int total_owned_segments() const;

private:
    std::vector<geo::Polygon> chip_;
    ShardOptions opt_;
    std::vector<Tile> tiles_;
    std::vector<int> owner_;
};

/// Stitched full-chip result: per-segment offsets on the sharder's
/// chip_layout() plus the reconstructed mask polygons.
struct StitchResult {
    std::vector<int> offsets;
    std::vector<geo::Polygon> mask;
};

/// Reassemble per-tile offsets (tile_offsets[i] belongs to
/// sharder.tiles()[i].layout) into chip-level offsets, owner tile winning
/// at every seam. Throws std::invalid_argument on a size mismatch — a tile
/// result vector that does not match its layout, or a chip layout that was
/// not fragmented like the tiles.
StitchResult stitch(const TileSharder& sharder, const geo::SegmentedLayout& chip_layout,
                    const std::vector<std::vector<int>>& tile_offsets);

}  // namespace camo::layout
