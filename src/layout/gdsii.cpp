#include "layout/gdsii.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace camo::layout {
namespace {

// GDSII record types (subset).
enum : std::uint8_t {
    kHeader = 0x00,
    kBgnLib = 0x01,
    kLibName = 0x02,
    kUnits = 0x03,
    kEndLib = 0x04,
    kBgnStr = 0x05,
    kStrName = 0x06,
    kEndStr = 0x07,
    kBoundary = 0x08,
    kLayer = 0x0D,
    kDataType = 0x0E,
    kXy = 0x10,
    kEndEl = 0x11,
};

enum : std::uint8_t {
    kNoData = 0x00,
    kInt2 = 0x02,
    kInt4 = 0x03,
    kReal8 = 0x05,
    kAscii = 0x06,
};

class RecordWriter {
public:
    explicit RecordWriter(const std::string& path) : out_(path, std::ios::binary) {
        if (!out_) throw std::runtime_error("gds: cannot open " + path);
    }

    void record(std::uint8_t type, std::uint8_t dtype, const std::vector<std::uint8_t>& payload) {
        const std::size_t len = 4 + payload.size();
        put16(static_cast<std::uint16_t>(len));
        out_.put(static_cast<char>(type));
        out_.put(static_cast<char>(dtype));
        out_.write(reinterpret_cast<const char*>(payload.data()),
                   static_cast<std::streamsize>(payload.size()));
    }

    void record_i16(std::uint8_t type, std::initializer_list<std::int16_t> vals) {
        std::vector<std::uint8_t> p;
        for (std::int16_t v : vals) {
            p.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
            p.push_back(static_cast<std::uint8_t>(v & 0xFF));
        }
        record(type, kInt2, p);
    }

    void record_i32(std::uint8_t type, const std::vector<std::int32_t>& vals) {
        std::vector<std::uint8_t> p;
        for (std::int32_t v : vals) {
            p.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
            p.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
            p.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
            p.push_back(static_cast<std::uint8_t>(v & 0xFF));
        }
        record(type, kInt4, p);
    }

    void record_ascii(std::uint8_t type, const std::string& s) {
        std::vector<std::uint8_t> p(s.begin(), s.end());
        if (p.size() % 2 != 0) p.push_back(0);  // records are 16-bit padded
        record(type, kAscii, p);
    }

    void record_real8(std::uint8_t type, std::initializer_list<double> vals) {
        std::vector<std::uint8_t> p;
        for (double v : vals) {
            // GDSII excess-64 base-16 real format.
            std::uint64_t bits = 0;
            if (v != 0.0) {
                const bool neg = v < 0.0;
                double mant = neg ? -v : v;
                int exp = 0;
                while (mant >= 1.0) {
                    mant /= 16.0;
                    ++exp;
                }
                while (mant < 1.0 / 16.0) {
                    mant *= 16.0;
                    --exp;
                }
                const auto mant_bits = static_cast<std::uint64_t>(mant * 72057594037927936.0);
                bits = (static_cast<std::uint64_t>(neg ? 1 : 0) << 63) |
                       (static_cast<std::uint64_t>(exp + 64) << 56) | (mant_bits & ((1ULL << 56) - 1));
            }
            for (int b = 7; b >= 0; --b) p.push_back(static_cast<std::uint8_t>((bits >> (8 * b)) & 0xFF));
        }
        record(type, kReal8, p);
    }

private:
    void put16(std::uint16_t v) {
        out_.put(static_cast<char>((v >> 8) & 0xFF));
        out_.put(static_cast<char>(v & 0xFF));
    }

    std::ofstream out_;
};

}  // namespace

void write_gds(const std::string& path, const GdsLibrary& lib) {
    RecordWriter w(path);
    w.record_i16(kHeader, {600});
    w.record_i16(kBgnLib, {2024, 1, 1, 0, 0, 0, 2024, 1, 1, 0, 0, 0});
    w.record_ascii(kLibName, lib.name);
    w.record_real8(kUnits, {1e-3, 1e-9});  // user unit, database unit (m)
    w.record_i16(kBgnStr, {2024, 1, 1, 0, 0, 0, 2024, 1, 1, 0, 0, 0});
    w.record_ascii(kStrName, lib.structure);

    for (const auto& [layer, polys] : lib.layers) {
        for (const geo::Polygon& poly : polys) {
            w.record(kBoundary, kNoData, {});
            w.record_i16(kLayer, {static_cast<std::int16_t>(layer)});
            w.record_i16(kDataType, {0});
            std::vector<std::int32_t> xy;
            for (const geo::Point& p : poly.vertices()) {
                xy.push_back(p.x);
                xy.push_back(p.y);
            }
            // GDSII closes the loop explicitly.
            if (!poly.vertices().empty()) {
                xy.push_back(poly.vertices().front().x);
                xy.push_back(poly.vertices().front().y);
            }
            w.record_i32(kXy, xy);
            w.record(kEndEl, kNoData, {});
        }
    }
    w.record(kEndStr, kNoData, {});
    w.record(kEndLib, kNoData, {});
}

GdsLibrary read_gds(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("gds: cannot open " + path);

    GdsLibrary lib;
    lib.name.clear();
    lib.structure.clear();

    int cur_layer = 0;
    std::vector<geo::Point> cur_pts;
    bool in_boundary = false;
    bool in_structure = false;
    std::uint64_t offset = 0;      // running file position
    std::uint64_t rec_offset = 0;  // header position of the current record

    auto get16 = [&in, &offset]() -> int {
        const int hi = in.get();
        const int lo = in.get();
        if (hi < 0 || lo < 0) return -1;
        offset += 2;
        return (hi << 8) | lo;
    };

    while (true) {
        rec_offset = offset;
        const int len = get16();
        if (len < 0) {
            // EOF between records: legal only outside every open scope and
            // only after ENDLIB (which returns below) — so reaching it here
            // means the file was cut short.
            if (in_boundary) throw GdsParseError("unterminated BOUNDARY element", rec_offset);
            if (in_structure) throw GdsParseError("unterminated structure", rec_offset);
            throw GdsParseError("missing ENDLIB", rec_offset);
        }
        if (len < 4) throw GdsParseError("bad record length " + std::to_string(len), rec_offset);
        const int type = in.get();
        const int dtype = in.get();
        (void)dtype;
        if (type < 0) throw GdsParseError("truncated record header", rec_offset);
        offset += 2;
        std::vector<std::uint8_t> payload(static_cast<std::size_t>(len - 4));
        in.read(reinterpret_cast<char*>(payload.data()), len - 4);
        if (in.gcount() != len - 4) {
            throw GdsParseError("truncated record payload (want " + std::to_string(len - 4) +
                                    " bytes, got " + std::to_string(in.gcount()) + ")",
                                rec_offset);
        }
        offset += static_cast<std::uint64_t>(len - 4);

        auto i16_at = [&payload](std::size_t i) -> std::int16_t {
            return static_cast<std::int16_t>((payload[i] << 8) | payload[i + 1]);
        };
        auto i32_at = [&payload](std::size_t i) -> std::int32_t {
            return static_cast<std::int32_t>((static_cast<std::uint32_t>(payload[i]) << 24) |
                                             (static_cast<std::uint32_t>(payload[i + 1]) << 16) |
                                             (static_cast<std::uint32_t>(payload[i + 2]) << 8) |
                                             static_cast<std::uint32_t>(payload[i + 3]));
        };

        switch (type) {
            case kLibName:
                lib.name.assign(payload.begin(), payload.end());
                while (!lib.name.empty() && lib.name.back() == '\0') lib.name.pop_back();
                break;
            case kStrName:
                lib.structure.assign(payload.begin(), payload.end());
                while (!lib.structure.empty() && lib.structure.back() == '\0') lib.structure.pop_back();
                break;
            case kBgnStr:
                if (in_structure) throw GdsParseError("nested structure", rec_offset);
                in_structure = true;
                break;
            case kEndStr:
                if (in_boundary) throw GdsParseError("ENDSTR inside BOUNDARY", rec_offset);
                in_structure = false;
                break;
            case kBoundary:
                if (in_boundary) throw GdsParseError("nested BOUNDARY element", rec_offset);
                in_boundary = true;
                cur_pts.clear();
                cur_layer = 0;
                break;
            case kLayer:
                if (in_boundary) {
                    if (payload.size() < 2) {
                        throw GdsParseError("LAYER record too short", rec_offset);
                    }
                    cur_layer = i16_at(0);
                }
                break;
            case kXy:
                if (in_boundary) {
                    if (payload.size() % 8 != 0) {
                        throw GdsParseError("XY payload is not whole coordinate pairs (" +
                                                std::to_string(payload.size()) + " bytes)",
                                            rec_offset);
                    }
                    if (cur_pts.size() + payload.size() / 8 > kMaxBoundaryVertices) {
                        throw GdsParseError("oversized BOUNDARY element (more than " +
                                                std::to_string(kMaxBoundaryVertices) +
                                                " vertices)",
                                            rec_offset);
                    }
                    for (std::size_t i = 0; i + 7 < payload.size(); i += 8) {
                        cur_pts.push_back({i32_at(i), i32_at(i + 4)});
                    }
                    // Drop the explicit closing point.
                    if (cur_pts.size() > 1 && cur_pts.front() == cur_pts.back()) cur_pts.pop_back();
                }
                break;
            case kEndEl:
                if (in_boundary && cur_pts.size() >= 3) {
                    geo::Polygon poly(cur_pts);
                    poly.normalize();
                    lib.layers[cur_layer].push_back(std::move(poly));
                }
                in_boundary = false;
                break;
            case kEndLib:
                if (in_boundary) throw GdsParseError("ENDLIB inside BOUNDARY", rec_offset);
                if (in_structure) throw GdsParseError("ENDLIB inside structure", rec_offset);
                return lib;
            default:
                break;  // records we do not interpret (header, units, dates)
        }
    }
}

}  // namespace camo::layout
