// PPM rendering of rasters and layout overlays (paper Figure 6 panels).
#pragma once

#include <string>
#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/raster.hpp"

namespace camo::layout {

struct Rgb {
    unsigned char r = 0;
    unsigned char g = 0;
    unsigned char b = 0;
};

/// Write a grayscale raster as a binary PPM (values clamped to [0,1]).
void write_ppm_gray(const std::string& path, const geo::Raster& raster);

/// Write a raster where each pixel value indexes a small palette (0 = black
/// background, 1..n = palette colors). Values are rounded.
void write_ppm_indexed(const std::string& path, const geo::Raster& raster,
                       const std::vector<Rgb>& palette);

/// The four Figure 6 panels: (a) target, (b) mask, (c) printed contour,
/// (d) PV band. Files are written as <prefix>_target.ppm, _mask.ppm,
/// _contour.ppm and _pvband.ppm.
struct Fig6Inputs {
    std::vector<geo::Polygon> target;
    std::vector<geo::Polygon> mask;       ///< OPC'd mask incl. SRAFs
    geo::Raster printed_nominal{1, 1.0};  ///< binary printed image
    geo::Raster pvband{1, 1.0};           ///< binary PV band image
    int clip_nm = 1500;
    int offset_nm = 0;                    ///< clip offset inside the sim frame
};

void render_fig6(const std::string& prefix, const Fig6Inputs& in);

}  // namespace camo::layout
