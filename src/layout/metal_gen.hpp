// Metal-layer clip generator.
//
// Substitutes the paper's metal dataset (1.5 um x 1.5 um clips sampled from
// an OpenROAD/NanGate45 layout plus regular metal patterns). Wires run in
// the primary (horizontal) direction; EPE measure points are placed at
// 60 nm pitch on primary-direction edges, so a wire whose horizontal edge
// holds k points contributes 2k measure points. Each benchmark case is
// constructed to hit the paper's exact Table 2 measure-point count:
// M1..M10 -> 64, 84, 88, 100, 106, 112, 116, 24, 72, 120.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "layout/via_gen.hpp"  // Clip

namespace camo::layout {

struct MetalGenOptions {
    int clip_nm = 1500;
    int margin_nm = 150;        ///< keep-out from clip borders
    int measure_pitch_nm = 60;  ///< must match the fragmentation pitch
    int min_width_nm = 50;
    int max_width_nm = 90;
    int min_gap_nm = 80;        ///< same-track wire-to-wire gap
    int min_track_gap_nm = 60;  ///< vertical spacing between tracks
    int max_points_per_wire = 6;
};

/// Random standard-cell-style clip whose horizontal edges carry exactly
/// `point_quota` measure points in total (quota must be even).
std::vector<geo::Polygon> generate_metal_clip(int point_quota, Rng& rng,
                                              const MetalGenOptions& opt = {});

/// Regular line/space array with exactly `point_quota` measure points
/// (the paper's second metal category).
std::vector<geo::Polygon> generate_regular_metal_clip(int point_quota, Rng& rng,
                                                      const MetalGenOptions& opt = {});

/// Measure points a polygon set will produce under metal fragmentation.
int count_measure_points(const std::vector<geo::Polygon>& polys, int pitch_nm);

/// The 10 test cases M1..M10 with the paper's measure-point counts. M8 and
/// M9 use the regular-pattern generator; the rest are random clips.
std::vector<Clip> metal_test_set(std::uint64_t seed, const MetalGenOptions& opt = {});

/// Training clips for the metal policy (same generator, disjoint seeds).
std::vector<Clip> metal_training_set(std::uint64_t seed, int count = 8,
                                     const MetalGenOptions& opt = {});

}  // namespace camo::layout
