// Batch-OPC runtime: shard a stream of clips across a work-stealing thread
// pool.
//
// Two ways to consume results. run_streaming(clips, sink) is the core: per-
// clip results flow out through a bounded MPMC queue as workers finish, with
// backpressure on the workers when the sink falls behind — the shape a full-
// chip tile stream (layout/shard.hpp) and the serve loop (service/) need.
// run() is a thin wrapper that collects the stream into one clip-ordered
// BatchResult behind a barrier, for paper-scale batches.
//
// Full-chip mask optimization is embarrassingly parallel across clips, so
// the scheduler gives every pool worker its own LithoSim (a cheap copy — all
// workers share one immutable SOCS kernel set via the kernel registry) and
// runs one clip per task. Learned engines are shared as a read-only
// CamoEngine snapshot: CamoEngine::infer() is const and thread-safe, so N
// workers infer concurrently without copying or retraining the policy.
//
// Determinism contract: a job's result depends only on (its layout, the
// batch seed, its clip index) — per-job seeds come from common/rng.hpp
// splitmix, never from shared mutable engine state — so per-clip results
// are bit-identical at any thread count. The per-simulator incremental
// evaluation cache preserves this: every engine primes it with a full
// rebuild on its first evaluation of a clip, so whatever a worker's
// simulator evaluated before cannot leak into the next job's results.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/camo.hpp"
#include "geometry/layout.hpp"
#include "litho/process_window.hpp"
#include "litho/simulator.hpp"
#include "opc/engine.hpp"
#include "opc/rule_engine.hpp"
#include "runtime/thread_pool.hpp"

namespace camo::runtime {

struct BatchOptions {
    int threads = 0;             ///< worker count; <= 0 selects all hardware threads
    std::uint64_t seed = 42;     ///< batch seed; job i runs with derive_seed(seed, i)
    bool stochastic = false;     ///< CAMO path: sample actions from the per-job Rng
    opc::OpcOptions opc;         ///< per-clip OPC protocol (iterations, exits, bias)

    /// Window mode: after OPC, evaluate each clip's final mask at every
    /// corner of `window_spec` (empty axes = the standard window of the
    /// litho config). The sweep rides the worker simulator's incremental
    /// cache, which the engine just primed with the final offsets, so it
    /// typically costs only one aerial per focus plane per clip.
    ///
    /// Reward mode (opc.objective != kNominal) composes with this: the
    /// engines then optimize the window objective in-loop and return the
    /// final sweep themselves, which run() reuses when its spec matches
    /// window_spec (ClipResult::window is populated in either mode).
    bool window = false;
    litho::WindowSpec window_spec;
};

/// Outcome of one clip job. `error` is non-empty when the job threw; the
/// remaining clips of the batch are unaffected.
struct ClipResult {
    int index = -1;
    std::string name;
    int segments = 0;
    int iterations = 0;
    double initial_epe = 0.0;   ///< sum |EPE| of the starting mask
    double final_epe = 0.0;     ///< sum |EPE| after OPC
    double pvband_nm2 = 0.0;
    double runtime_s = 0.0;     ///< per-clip engine wall time
    std::vector<int> offsets;   ///< final per-segment offsets
    std::optional<litho::WindowMetrics> window;  ///< populated in window mode
    std::string error;
};

/// Aggregated batch outcome, in clip-index order.
struct BatchResult {
    std::vector<ClipResult> clips;
    bool window_mode = false;  ///< window sweep or window reward mode active
    rl::RewardMode reward_mode = rl::RewardMode::kNominal;
    int threads = 1;
    double wall_s = 0.0;            ///< end-to-end batch wall time
    double throughput_cps = 0.0;    ///< successful clips per second
    long long litho_evaluations = 0;
    long long incremental_hits = 0;   ///< evaluations served by the sparse delta path
    long long incremental_fulls = 0;  ///< evaluate_incremental calls that ran full
    int failed = 0;
    double sum_initial_epe = 0.0;
    double sum_final_epe = 0.0;
    double sum_pvband_nm2 = 0.0;
    double sum_clip_runtime_s = 0.0;  ///< summed per-clip time (vs wall_s = parallel time)

    // Window-mode aggregates over successful clips (0 outside window mode).
    double sum_worst_window_epe = 0.0;
    double sum_pv_band_exact_nm2 = 0.0;

    /// Successful clip count (clips.size() - failed).
    [[nodiscard]] int ok() const { return static_cast<int>(clips.size()) - failed; }

    /// Fraction of litho evaluations served by the incremental path.
    [[nodiscard]] double incremental_hit_rate() const {
        const long long total = incremental_hits + incremental_fulls;
        return total > 0 ? static_cast<double>(incremental_hits) / static_cast<double>(total)
                         : 0.0;
    }

    // Per-clip averages over successful clips. Every ratio below is guarded
    // against zero-evaluation batches (no clips, or all failed): an empty
    // run reports zeros, never NaN.
    [[nodiscard]] double avg_final_epe() const { return per_ok(sum_final_epe); }
    [[nodiscard]] double avg_pvband_nm2() const { return per_ok(sum_pvband_nm2); }
    [[nodiscard]] double avg_clip_runtime_s() const { return per_ok(sum_clip_runtime_s); }
    [[nodiscard]] double avg_worst_window_epe() const { return per_ok(sum_worst_window_epe); }
    [[nodiscard]] double avg_pv_band_exact_nm2() const { return per_ok(sum_pv_band_exact_nm2); }

    /// One-line human-readable digest.
    [[nodiscard]] std::string summary() const;

private:
    [[nodiscard]] double per_ok(double sum) const { return ok() > 0 ? sum / ok() : 0.0; }
};

/// Per-clip optimizer run by the workers. Called concurrently: it must only
/// mutate the passed simulator (worker-private) and local state. `job_seed`
/// is derive_seed(batch seed, clip index).
using ClipOptimizer = std::function<opc::EngineResult(
    const geo::SegmentedLayout& layout, litho::LithoSim& sim, const opc::OpcOptions& opt,
    std::uint64_t job_seed)>;

/// Streaming consumer: receives each ClipResult as soon as its worker
/// finishes (completion order, not clip order — ClipResult::index says which
/// clip it is). Runs on the thread that called run_streaming, never
/// concurrently with itself. Throwing aborts the stream: in-flight jobs are
/// drained (their results discarded) and the exception propagates.
using ClipSink = std::function<void(ClipResult&&)>;

/// Knobs for the streaming path.
struct StreamOptions {
    /// Bounded hand-off queue between workers and the sink. When the sink
    /// falls behind by this many results, workers block (backpressure)
    /// instead of buffering a whole chip. Must be >= 1; rejected with
    /// std::invalid_argument otherwise.
    int queue_capacity = 64;
};

/// What run_streaming reports after the stream ends. Per-clip payloads went
/// to the sink; this is only the envelope.
struct StreamStats {
    int delivered = 0;  ///< results handed to the sink (including failed ones)
    int failed = 0;     ///< delivered results with a non-empty error
    double wall_s = 0.0;
    long long litho_evaluations = 0;
    long long incremental_hits = 0;   ///< evaluations served by the sparse delta path
    long long incremental_fulls = 0;  ///< evaluate_incremental calls that ran full
};

/// Shards clip jobs over a worker pool. Construction acquires the shared
/// kernels once and stamps out one simulator per worker; run() may be called
/// any number of times on the same scheduler.
class BatchScheduler {
public:
    explicit BatchScheduler(const litho::LithoConfig& litho_cfg, BatchOptions opt = {});

    [[nodiscard]] int threads() const { return pool_.size(); }
    [[nodiscard]] const BatchOptions& options() const { return opt_; }

    /// Streaming core: run `optimize` on every clip, delivering each result
    /// to `sink` as it completes, through a bounded queue that blocks
    /// workers when the sink falls behind. Job failures are recorded in
    /// ClipResult::error and still delivered; the per-clip results are
    /// bit-identical to run()'s at any thread count and queue capacity
    /// (only delivery order varies). Throws std::invalid_argument on a
    /// non-positive queue capacity, and propagates a sink exception after
    /// unwinding the worker fleet.
    StreamStats run_streaming(const std::vector<geo::SegmentedLayout>& clips,
                              const ClipOptimizer& optimize, const ClipSink& sink,
                              const std::vector<std::string>& names = {},
                              const StreamOptions& stream = {});

    /// Run `optimize` on every clip; never throws on job failure (failures
    /// are recorded per clip). A thin wrapper that collects the streaming
    /// core into a clip-index-ordered BatchResult.
    BatchResult run(const std::vector<geo::SegmentedLayout>& clips,
                    const ClipOptimizer& optimize, const std::vector<std::string>& names = {});

    /// Rule-engine batch (one engine instance per job; stateless and cheap).
    BatchResult run_rule(const std::vector<geo::SegmentedLayout>& clips,
                         const opc::RuleEngineOptions& engine_opt = {},
                         const std::vector<std::string>& names = {});

    /// CAMO batch over one shared, read-only trained engine snapshot.
    BatchResult run_camo(const std::vector<geo::SegmentedLayout>& clips,
                         const core::CamoEngine& engine,
                         const std::vector<std::string>& names = {});

    /// CAMO batch through the batched inference path: instead of one thread
    /// per clip, all clips advance in lockstep waves on the calling thread
    /// and each wave issues ONE batched policy forward
    /// (CamoEngine::infer_batch) over every clip awaiting an action. Per-clip
    /// results are identical to run_camo()'s on the same backend — the same
    /// per-job splitmix seeds drive stochastic action sampling — so this is a
    /// throughput knob for the policy-bound regime (many small clips), not a
    /// semantic switch. BatchResult::threads reports 1: the litho evaluation
    /// is serial here, only the policy math is batched.
    BatchResult run_camo_batched(const std::vector<geo::SegmentedLayout>& clips,
                                 const core::CamoEngine& engine,
                                 const std::vector<std::string>& names = {});

private:
    BatchOptions opt_;
    ThreadPool pool_;
    std::vector<litho::LithoSim> sims_;  // one per worker, sharing one kernel set
};

}  // namespace camo::runtime
