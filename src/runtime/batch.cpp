#include "runtime/batch.hpp"

#include <cstdio>
#include <exception>
#include <utility>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "litho/kernel_registry.hpp"
#include "obs/trace.hpp"

namespace camo::runtime {

namespace {

bool same_window_spec(const litho::WindowSpec& a, const litho::WindowSpec& b) {
    return a.doses == b.doses && a.defocus_nm == b.defocus_nm;
}

// Migrated BatchResult counters: the registry deltas recorded at the end of
// run() equal the litho_evaluations / incremental_hits / incremental_fulls
// fields of the BatchResult returned by that run.
obs::MetricId clips_counter() {
    static const obs::MetricId id = obs::register_counter("batch.clips");
    return id;
}
obs::MetricId failed_counter() {
    static const obs::MetricId id = obs::register_counter("batch.failed");
    return id;
}
obs::MetricId batch_evals_counter() {
    static const obs::MetricId id = obs::register_counter("batch.litho_evaluations");
    return id;
}
obs::MetricId batch_hits_counter() {
    static const obs::MetricId id = obs::register_counter("batch.incremental_hits");
    return id;
}
obs::MetricId batch_fulls_counter() {
    static const obs::MetricId id = obs::register_counter("batch.incremental_fulls");
    return id;
}
obs::MetricId batch_hist() {
    static const obs::MetricId id = obs::register_histogram("batch.run.ns");
    return id;
}
obs::MetricId clip_hist() {
    static const obs::MetricId id = obs::register_histogram("batch.clip.ns");
    return id;
}

}  // namespace

std::string BatchResult::summary() const {
    char buf[448];
    std::snprintf(buf, sizeof buf,
                  "%zu clips (%d failed) on %d threads: wall %.2fs, %.2f clips/s, "
                  "sum|EPE| %.1f -> %.1f nm (avg %.1f), PVB %.0f nm^2, %lld litho evals "
                  "(%.0f%% incremental)",
                  clips.size(), failed, threads, wall_s, throughput_cps, sum_initial_epe,
                  sum_final_epe, avg_final_epe(), sum_pvband_nm2, litho_evaluations,
                  100.0 * incremental_hit_rate());
    std::string out = buf;
    if (reward_mode != rl::RewardMode::kNominal) {
        std::snprintf(buf, sizeof buf, "; reward %s", rl::reward_mode_name(reward_mode));
        out += buf;
    }
    if (window_mode) {
        std::snprintf(buf, sizeof buf,
                      "; window: worst|EPE| avg %.1f nm, exact PVB avg %.0f nm^2",
                      avg_worst_window_epe(), avg_pv_band_exact_nm2());
        out += buf;
    }
    return out;
}

BatchScheduler::BatchScheduler(const litho::LithoConfig& litho_cfg, BatchOptions opt)
    : opt_(std::move(opt)), pool_(opt_.threads) {
    if (opt_.window) {
        if (opt_.window_spec.doses.empty() && opt_.window_spec.defocus_nm.empty()) {
            opt_.window_spec = litho::WindowSpec::standard(litho_cfg);
        }
        opt_.window_spec.validate();
        // Resolve the per-focus kernel sets once, up front: workers then hit
        // the registry's fast path instead of racing the first build.
        for (double f : opt_.window_spec.defocus_nm) {
            (void)litho::acquire_focus_applicator(litho_cfg, f);
        }
    }
    if (opt_.opc.objective != rl::RewardMode::kNominal) {
        // Window reward mode: resolve and pre-acquire the objective's window
        // the same way, so worker engines never race the first kernel build.
        if (opt_.opc.window.doses.empty() && opt_.opc.window.defocus_nm.empty()) {
            opt_.opc.window = litho::WindowSpec::standard(litho_cfg);
        }
        opt_.opc.window.validate();
        for (double f : opt_.opc.window.defocus_nm) {
            (void)litho::acquire_focus_applicator(litho_cfg, f);
        }
    }
    // The first simulator builds (or loads) the shared kernels; the copies
    // are shallow and per-worker so evaluation counters stay uncontended.
    sims_.reserve(static_cast<std::size_t>(pool_.size()));
    litho::LithoSim prototype(litho_cfg);
    for (int i = 0; i < pool_.size(); ++i) sims_.emplace_back(prototype);
}

BatchResult BatchScheduler::run(const std::vector<geo::SegmentedLayout>& clips,
                                const ClipOptimizer& optimize,
                                const std::vector<std::string>& names) {
    const obs::Span run_span("batch.run", batch_hist());
    Timer wall;
    BatchResult batch;
    batch.reward_mode = opt_.opc.objective;
    batch.window_mode = opt_.window || opt_.opc.objective != rl::RewardMode::kNominal;
    batch.threads = pool_.size();
    batch.clips.resize(clips.size());

    long long evals_before = 0;
    long long hits_before = 0;
    long long fulls_before = 0;
    for (const litho::LithoSim& sim : sims_) {
        evals_before += sim.evaluate_count();
        hits_before += sim.incremental_hit_count();
        fulls_before += sim.incremental_full_count();
    }

    std::vector<std::future<void>> jobs;
    jobs.reserve(clips.size());
    try {
        for (std::size_t i = 0; i < clips.size(); ++i) {
            ClipResult& slot = batch.clips[i];
            slot.index = static_cast<int>(i);
            if (i < names.size()) slot.name = names[i];
            const geo::SegmentedLayout& layout = clips[i];
            const std::uint64_t job_seed = derive_seed(opt_.seed, i);

            jobs.push_back(pool_.submit([this, &optimize, &layout, &slot, job_seed] {
                const obs::Span clip_span("batch.clip", clip_hist());
                const int worker = pool_.worker_index();
                litho::LithoSim& sim = sims_[static_cast<std::size_t>(worker < 0 ? 0 : worker)];
                slot.segments = layout.num_segments();
                opc::EngineResult res = optimize(layout, sim, opt_.opc, job_seed);
                slot.iterations = res.iterations;
                slot.initial_epe = res.epe_history.empty() ? 0.0 : res.epe_history.front();
                slot.final_epe = res.final_metrics.sum_abs_epe;
                slot.pvband_nm2 = res.final_metrics.pvband_nm2;
                slot.runtime_s = res.runtime_s;
                slot.offsets = res.final_offsets;
                if (res.final_window &&
                    (!opt_.window || same_window_spec(opt_.window_spec, opt_.opc.window))) {
                    // Window reward mode: the engine's in-loop sweep already
                    // evaluated the final mask at every corner.
                    slot.window = std::move(res.final_window);
                } else if (opt_.window) {
                    // The engine's last incremental evaluation primed this
                    // worker's cache at (or near) the final offsets, so the
                    // sweep reuses the cached raster + spectrum; the cache
                    // was primed by this job, so results stay independent of
                    // scheduling order.
                    slot.window = sim.evaluate_window_incremental(layout, res.final_offsets,
                                                                  opt_.window_spec);
                }
            }));
        }
    } catch (...) {
        // A failed submit (e.g. bad_alloc) must not unwind while earlier
        // jobs still hold references into `batch` — drain them first.
        for (std::future<void>& f : jobs) {
            try {
                f.get();
            } catch (...) {  // job errors are irrelevant mid-abort
            }
        }
        throw;
    }

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        try {
            jobs[i].get();
        } catch (const std::exception& e) {
            batch.clips[i].error = e.what();
        } catch (...) {
            batch.clips[i].error = "unknown error";
        }
    }

    batch.wall_s = wall.seconds();
    for (const ClipResult& c : batch.clips) {
        if (!c.error.empty()) {
            ++batch.failed;
            continue;
        }
        batch.sum_initial_epe += c.initial_epe;
        batch.sum_final_epe += c.final_epe;
        batch.sum_pvband_nm2 += c.pvband_nm2;
        batch.sum_clip_runtime_s += c.runtime_s;
        if (c.window) {
            batch.sum_worst_window_epe += c.window->worst_epe;
            batch.sum_pv_band_exact_nm2 += c.window->pv_band_exact_nm2;
        }
    }
    for (const litho::LithoSim& sim : sims_) {
        batch.litho_evaluations += sim.evaluate_count();
        batch.incremental_hits += sim.incremental_hit_count();
        batch.incremental_fulls += sim.incremental_full_count();
    }
    batch.litho_evaluations -= evals_before;
    batch.incremental_hits -= hits_before;
    batch.incremental_fulls -= fulls_before;
    batch.throughput_cps = batch.wall_s > 0.0 ? batch.ok() / batch.wall_s : 0.0;
    obs::counter_add(clips_counter(), static_cast<long long>(batch.clips.size()));
    obs::counter_add(failed_counter(), batch.failed);
    obs::counter_add(batch_evals_counter(), batch.litho_evaluations);
    obs::counter_add(batch_hits_counter(), batch.incremental_hits);
    obs::counter_add(batch_fulls_counter(), batch.incremental_fulls);
    return batch;
}

BatchResult BatchScheduler::run_rule(const std::vector<geo::SegmentedLayout>& clips,
                                     const opc::RuleEngineOptions& engine_opt,
                                     const std::vector<std::string>& names) {
    return run(
        clips,
        [engine_opt](const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                     const opc::OpcOptions& opt, std::uint64_t /*job_seed*/) {
            opc::RuleEngine engine(engine_opt);
            return engine.optimize(layout, sim, opt);
        },
        names);
}

BatchResult BatchScheduler::run_camo(const std::vector<geo::SegmentedLayout>& clips,
                                     const core::CamoEngine& engine,
                                     const std::vector<std::string>& names) {
    const bool stochastic = opt_.stochastic;
    return run(
        clips,
        [&engine, stochastic](const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                              const opc::OpcOptions& opt, std::uint64_t job_seed) {
            if (!stochastic) return engine.infer(layout, sim, opt);
            Rng job_rng(job_seed);
            return engine.infer(layout, sim, opt, &job_rng);
        },
        names);
}

}  // namespace camo::runtime
