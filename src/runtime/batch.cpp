#include "runtime/batch.hpp"

#include <cstdio>
#include <exception>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "litho/kernel_registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/stream_queue.hpp"

namespace camo::runtime {

namespace {

bool same_window_spec(const litho::WindowSpec& a, const litho::WindowSpec& b) {
    return a.doses == b.doses && a.defocus_nm == b.defocus_nm;
}

// Migrated BatchResult counters: the registry deltas recorded at the end of
// run() equal the litho_evaluations / incremental_hits / incremental_fulls
// fields of the BatchResult returned by that run.
obs::MetricId clips_counter() {
    static const obs::MetricId id = obs::register_counter("batch.clips");
    return id;
}
obs::MetricId failed_counter() {
    static const obs::MetricId id = obs::register_counter("batch.failed");
    return id;
}
obs::MetricId batch_evals_counter() {
    static const obs::MetricId id = obs::register_counter("batch.litho_evaluations");
    return id;
}
obs::MetricId batch_hits_counter() {
    static const obs::MetricId id = obs::register_counter("batch.incremental_hits");
    return id;
}
obs::MetricId batch_fulls_counter() {
    static const obs::MetricId id = obs::register_counter("batch.incremental_fulls");
    return id;
}
obs::MetricId batch_hist() {
    static const obs::MetricId id = obs::register_histogram("batch.run.ns");
    return id;
}
obs::MetricId clip_hist() {
    static const obs::MetricId id = obs::register_histogram("batch.clip.ns");
    return id;
}
obs::MetricId queue_depth_gauge() {
    static const obs::MetricId id = obs::register_gauge("batch.queue.depth");
    return id;
}
obs::MetricId inflight_gauge() {
    static const obs::MetricId id = obs::register_gauge("batch.inflight");
    return id;
}

}  // namespace

std::string BatchResult::summary() const {
    char buf[448];
    std::snprintf(buf, sizeof buf,
                  "%zu clips (%d failed) on %d threads: wall %.2fs, %.2f clips/s, "
                  "sum|EPE| %.1f -> %.1f nm (avg %.1f), PVB %.0f nm^2, %lld litho evals "
                  "(%.0f%% incremental)",
                  clips.size(), failed, threads, wall_s, throughput_cps, sum_initial_epe,
                  sum_final_epe, avg_final_epe(), sum_pvband_nm2, litho_evaluations,
                  100.0 * incremental_hit_rate());
    std::string out = buf;
    if (reward_mode != rl::RewardMode::kNominal) {
        std::snprintf(buf, sizeof buf, "; reward %s", rl::reward_mode_name(reward_mode));
        out += buf;
    }
    if (window_mode) {
        std::snprintf(buf, sizeof buf,
                      "; window: worst|EPE| avg %.1f nm, exact PVB avg %.0f nm^2",
                      avg_worst_window_epe(), avg_pv_band_exact_nm2());
        out += buf;
    }
    return out;
}

BatchScheduler::BatchScheduler(const litho::LithoConfig& litho_cfg, BatchOptions opt)
    : opt_(std::move(opt)), pool_(opt_.threads) {
    if (opt_.window) {
        if (opt_.window_spec.doses.empty() && opt_.window_spec.defocus_nm.empty()) {
            opt_.window_spec = litho::WindowSpec::standard(litho_cfg);
        }
        opt_.window_spec.validate();
        // Resolve the per-focus kernel sets once, up front: workers then hit
        // the registry's fast path instead of racing the first build.
        for (double f : opt_.window_spec.defocus_nm) {
            (void)litho::acquire_focus_applicator(litho_cfg, f);
        }
    }
    if (opt_.opc.objective != rl::RewardMode::kNominal) {
        // Window reward mode: resolve and pre-acquire the objective's window
        // the same way, so worker engines never race the first kernel build.
        if (opt_.opc.window.doses.empty() && opt_.opc.window.defocus_nm.empty()) {
            opt_.opc.window = litho::WindowSpec::standard(litho_cfg);
        }
        opt_.opc.window.validate();
        for (double f : opt_.opc.window.defocus_nm) {
            (void)litho::acquire_focus_applicator(litho_cfg, f);
        }
    }
    // The first simulator builds (or loads) the shared kernels; the copies
    // are shallow and per-worker so evaluation counters stay uncontended.
    sims_.reserve(static_cast<std::size_t>(pool_.size()));
    litho::LithoSim prototype(litho_cfg);
    for (int i = 0; i < pool_.size(); ++i) sims_.emplace_back(prototype);
}

StreamStats BatchScheduler::run_streaming(const std::vector<geo::SegmentedLayout>& clips,
                                          const ClipOptimizer& optimize, const ClipSink& sink,
                                          const std::vector<std::string>& names,
                                          const StreamOptions& stream) {
    if (stream.queue_capacity < 1) {
        throw std::invalid_argument("run_streaming: queue_capacity must be at least 1, got " +
                                    std::to_string(stream.queue_capacity));
    }
    const obs::Span run_span("batch.run", batch_hist());
    Timer wall;
    StreamStats stats;

    long long evals_before = 0;
    long long hits_before = 0;
    long long fulls_before = 0;
    for (const litho::LithoSim& sim : sims_) {
        evals_before += sim.evaluate_count();
        hits_before += sim.incremental_hit_count();
        fulls_before += sim.incremental_full_count();
    }

    BoundedQueue<ClipResult> queue(static_cast<std::size_t>(stream.queue_capacity));
    std::vector<std::future<void>> jobs;
    jobs.reserve(clips.size());
    // Jobs never leak exceptions (failures become ClipResult::error), so a
    // drain only synchronizes; it cannot throw job errors.
    const auto drain = [&jobs] {
        for (std::future<void>& f : jobs) {
            try {
                f.get();
            } catch (...) {  // defensive: nothing to do mid-unwind
            }
        }
    };

    try {
        for (std::size_t i = 0; i < clips.size(); ++i) {
            const geo::SegmentedLayout& layout = clips[i];
            const std::uint64_t job_seed = derive_seed(opt_.seed, i);
            std::string name = i < names.size() ? names[i] : std::string();

            jobs.push_back(pool_.submit([this, &optimize, &layout, &queue, job_seed,
                                         name = std::move(name), i] {
                const obs::Span clip_span("batch.clip", clip_hist());
                const obs::ScopedGaugeAdd inflight(inflight_gauge(), 1.0);
                const int worker = pool_.worker_index();
                litho::LithoSim& sim = sims_[static_cast<std::size_t>(worker < 0 ? 0 : worker)];
                ClipResult out;
                out.index = static_cast<int>(i);
                out.name = name;
                try {
                    out.segments = layout.num_segments();
                    opc::EngineResult res = optimize(layout, sim, opt_.opc, job_seed);
                    out.iterations = res.iterations;
                    out.initial_epe = res.epe_history.empty() ? 0.0 : res.epe_history.front();
                    out.final_epe = res.final_metrics.sum_abs_epe;
                    out.pvband_nm2 = res.final_metrics.pvband_nm2;
                    out.runtime_s = res.runtime_s;
                    out.offsets = res.final_offsets;
                    if (res.final_window &&
                        (!opt_.window || same_window_spec(opt_.window_spec, opt_.opc.window))) {
                        // Window reward mode: the engine's in-loop sweep already
                        // evaluated the final mask at every corner.
                        out.window = std::move(res.final_window);
                    } else if (opt_.window) {
                        // The engine's last incremental evaluation primed this
                        // worker's cache at (or near) the final offsets, so the
                        // sweep reuses the cached raster + spectrum; the cache
                        // was primed by this job, so results stay independent of
                        // scheduling order.
                        out.window = sim.evaluate_window_incremental(layout, res.final_offsets,
                                                                     opt_.window_spec);
                    }
                } catch (const std::exception& e) {
                    out.error = e.what();
                } catch (...) {
                    out.error = "unknown error";
                }
                // push() blocks while the sink is `queue_capacity` results
                // behind (backpressure) and returns false after an abort, in
                // which case the result is dropped on purpose.
                (void)queue.push(std::move(out));
            }));
        }

        for (std::size_t received = 0; received < clips.size(); ++received) {
            std::optional<ClipResult> res = queue.pop();
            if (!res) break;  // aborted (cannot happen on this path otherwise)
            obs::gauge_set(queue_depth_gauge(), static_cast<double>(queue.size()));
            ++stats.delivered;
            if (!res->error.empty()) ++stats.failed;
            sink(std::move(*res));
        }
    } catch (...) {
        // A failed submit (e.g. bad_alloc) or a throwing sink must not
        // unwind while workers still hold references into `clips`/`queue`:
        // abort releases every producer blocked in push(), then the drain
        // joins the fleet before the exception leaves this frame.
        queue.abort();
        drain();
        throw;
    }
    queue.close();
    drain();

    stats.wall_s = wall.seconds();
    for (const litho::LithoSim& sim : sims_) {
        stats.litho_evaluations += sim.evaluate_count();
        stats.incremental_hits += sim.incremental_hit_count();
        stats.incremental_fulls += sim.incremental_full_count();
    }
    stats.litho_evaluations -= evals_before;
    stats.incremental_hits -= hits_before;
    stats.incremental_fulls -= fulls_before;
    obs::counter_add(clips_counter(), stats.delivered);
    obs::counter_add(failed_counter(), stats.failed);
    obs::counter_add(batch_evals_counter(), stats.litho_evaluations);
    obs::counter_add(batch_hits_counter(), stats.incremental_hits);
    obs::counter_add(batch_fulls_counter(), stats.incremental_fulls);
    return stats;
}

BatchResult BatchScheduler::run(const std::vector<geo::SegmentedLayout>& clips,
                                const ClipOptimizer& optimize,
                                const std::vector<std::string>& names) {
    BatchResult batch;
    batch.reward_mode = opt_.opc.objective;
    batch.window_mode = opt_.window || opt_.opc.objective != rl::RewardMode::kNominal;
    batch.threads = pool_.size();
    batch.clips.resize(clips.size());

    const StreamStats stats = run_streaming(
        clips, optimize,
        [&batch](ClipResult&& res) {
            batch.clips[static_cast<std::size_t>(res.index)] = std::move(res);
        },
        names);

    batch.wall_s = stats.wall_s;
    for (const ClipResult& c : batch.clips) {
        if (!c.error.empty()) {
            ++batch.failed;
            continue;
        }
        batch.sum_initial_epe += c.initial_epe;
        batch.sum_final_epe += c.final_epe;
        batch.sum_pvband_nm2 += c.pvband_nm2;
        batch.sum_clip_runtime_s += c.runtime_s;
        if (c.window) {
            batch.sum_worst_window_epe += c.window->worst_epe;
            batch.sum_pv_band_exact_nm2 += c.window->pv_band_exact_nm2;
        }
    }
    batch.litho_evaluations = stats.litho_evaluations;
    batch.incremental_hits = stats.incremental_hits;
    batch.incremental_fulls = stats.incremental_fulls;
    batch.throughput_cps = batch.wall_s > 0.0 ? batch.ok() / batch.wall_s : 0.0;
    return batch;
}

BatchResult BatchScheduler::run_rule(const std::vector<geo::SegmentedLayout>& clips,
                                     const opc::RuleEngineOptions& engine_opt,
                                     const std::vector<std::string>& names) {
    return run(
        clips,
        [engine_opt](const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                     const opc::OpcOptions& opt, std::uint64_t /*job_seed*/) {
            opc::RuleEngine engine(engine_opt);
            return engine.optimize(layout, sim, opt);
        },
        names);
}

BatchResult BatchScheduler::run_camo_batched(const std::vector<geo::SegmentedLayout>& clips,
                                             const core::CamoEngine& engine,
                                             const std::vector<std::string>& names) {
    const obs::Span run_span("batch.run", batch_hist());
    Timer wall;
    BatchResult batch;
    batch.reward_mode = opt_.opc.objective;
    batch.window_mode = opt_.window || opt_.opc.objective != rl::RewardMode::kNominal;
    batch.threads = 1;
    batch.clips.resize(clips.size());
    for (std::size_t i = 0; i < clips.size(); ++i) {
        batch.clips[i].index = static_cast<int>(i);
        if (i < names.size()) batch.clips[i].name = names[i];
        batch.clips[i].segments = clips[i].num_segments();
    }

    // One simulator per clip (the incremental cache is per-instance). The
    // copies share the worker simulators' kernel set but carry their source's
    // counters, so deltas are taken against a baseline snapshot.
    std::vector<litho::LithoSim> csims;
    csims.reserve(clips.size());
    for (std::size_t i = 0; i < clips.size(); ++i) csims.emplace_back(sims_.front());
    long long evals_before = 0;
    long long hits_before = 0;
    long long fulls_before = 0;
    for (const litho::LithoSim& sim : csims) {
        evals_before += sim.evaluate_count();
        hits_before += sim.incremental_hit_count();
        fulls_before += sim.incremental_full_count();
    }

    std::vector<std::uint64_t> seeds;
    if (opt_.stochastic) {
        seeds.reserve(clips.size());
        for (std::size_t i = 0; i < clips.size(); ++i) seeds.push_back(derive_seed(opt_.seed, i));
    }

    try {
        std::vector<opc::EngineResult> results =
            engine.infer_batch(clips, csims, opt_.opc, seeds);
        for (std::size_t i = 0; i < clips.size(); ++i) {
            opc::EngineResult& res = results[i];
            ClipResult& out = batch.clips[i];
            out.iterations = res.iterations;
            out.initial_epe = res.epe_history.empty() ? 0.0 : res.epe_history.front();
            out.final_epe = res.final_metrics.sum_abs_epe;
            out.pvband_nm2 = res.final_metrics.pvband_nm2;
            out.runtime_s = res.runtime_s;
            out.offsets = res.final_offsets;
            if (res.final_window &&
                (!opt_.window || same_window_spec(opt_.window_spec, opt_.opc.window))) {
                out.window = std::move(res.final_window);
            } else if (opt_.window) {
                out.window = csims[i].evaluate_window_incremental(clips[i], res.final_offsets,
                                                                  opt_.window_spec);
            }
        }
    } catch (const std::exception& e) {
        // The lockstep rollout is all-or-nothing; attribute the failure to
        // every clip rather than guessing which one threw.
        for (ClipResult& c : batch.clips) c.error = e.what();
    }

    batch.wall_s = wall.seconds();
    for (const ClipResult& c : batch.clips) {
        if (!c.error.empty()) {
            ++batch.failed;
            continue;
        }
        batch.sum_initial_epe += c.initial_epe;
        batch.sum_final_epe += c.final_epe;
        batch.sum_pvband_nm2 += c.pvband_nm2;
        batch.sum_clip_runtime_s += c.runtime_s;
        if (c.window) {
            batch.sum_worst_window_epe += c.window->worst_epe;
            batch.sum_pv_band_exact_nm2 += c.window->pv_band_exact_nm2;
        }
    }
    for (const litho::LithoSim& sim : csims) {
        batch.litho_evaluations += sim.evaluate_count();
        batch.incremental_hits += sim.incremental_hit_count();
        batch.incremental_fulls += sim.incremental_full_count();
    }
    batch.litho_evaluations -= evals_before;
    batch.incremental_hits -= hits_before;
    batch.incremental_fulls -= fulls_before;
    batch.throughput_cps = batch.wall_s > 0.0 ? batch.ok() / batch.wall_s : 0.0;
    obs::counter_add(clips_counter(), static_cast<long long>(batch.clips.size()));
    obs::counter_add(failed_counter(), batch.failed);
    obs::counter_add(batch_evals_counter(), batch.litho_evaluations);
    obs::counter_add(batch_hits_counter(), batch.incremental_hits);
    obs::counter_add(batch_fulls_counter(), batch.incremental_fulls);
    return batch;
}

BatchResult BatchScheduler::run_camo(const std::vector<geo::SegmentedLayout>& clips,
                                     const core::CamoEngine& engine,
                                     const std::vector<std::string>& names) {
    const bool stochastic = opt_.stochastic;
    return run(
        clips,
        [&engine, stochastic](const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                              const opc::OpcOptions& opt, std::uint64_t job_seed) {
            if (!stochastic) return engine.infer(layout, sim, opt);
            Rng job_rng(job_seed);
            return engine.infer(layout, sim, opt, &job_rng);
        },
        names);
}

}  // namespace camo::runtime
