// Work-stealing thread pool.
//
// Each worker owns a deque: it pushes and pops its own work LIFO (hot in
// cache) and steals FIFO from the other workers when its deque runs dry, so
// an uneven batch of clips still keeps every core busy. submit() returns a
// std::future, so task exceptions propagate to the caller instead of
// killing a worker. The destructor drains every queued task, then joins —
// no future is ever broken by shutdown.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace camo::runtime {

class ThreadPool {
public:
    /// threads <= 0 selects default_threads().
    explicit ThreadPool(int threads = 0);

    /// Drains all queued tasks, then joins every worker.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

    /// Hardware concurrency, at least 1.
    static int default_threads();

    /// Index of the calling thread within this pool, in [0, size()), or -1
    /// when the caller is not one of this pool's workers. Used by the batch
    /// scheduler to route a job to its worker's simulator.
    [[nodiscard]] int worker_index() const;

    /// Enqueue `fn`; the future carries its result or exception. Safe to
    /// call from pool workers (the task lands on the caller's own deque,
    /// where it is picked up LIFO).
    template <typename F>
    auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        enqueue([task]() { (*task)(); });
        return fut;
    }

    /// Blocking indexed fan-out: runs fn(i) for every i in [0, n) on the
    /// pool and waits for all of them. Every task runs to completion even
    /// when one throws; the first exception (in index order) is rethrown
    /// afterwards. `fn` is shared by reference across the tasks — it must be
    /// safe to invoke concurrently, and it outlives them because this call
    /// blocks. Used by the data-parallel trainer's collection and minibatch
    /// waves; must be called from outside the pool (a worker fanning out to
    /// its own pool would deadlock waiting on tasks behind it in the queue).
    template <typename F>
    void for_each_index(int n, const F& fn) {
        std::vector<std::future<void>> futures;
        futures.reserve(static_cast<std::size_t>(n > 0 ? n : 0));
        for (int i = 0; i < n; ++i) {
            futures.push_back(submit([&fn, i] { fn(i); }));
        }
        std::exception_ptr first;
        for (std::future<void>& f : futures) {
            try {
                f.get();
            } catch (...) {
                if (!first) first = std::current_exception();
            }
        }
        if (first) std::rethrow_exception(first);
    }

private:
    using Task = std::function<void()>;

    struct WorkerQueue {
        std::mutex mu;
        std::deque<Task> tasks;
    };

    void enqueue(Task task);
    bool try_pop_local(int self, Task& out);
    bool try_steal(int self, Task& out);
    void worker_loop(int index);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex sleep_mu_;
    std::condition_variable wake_cv_;
    std::atomic<bool> stop_{false};
    std::atomic<std::size_t> pending_{0};
    std::atomic<std::size_t> next_queue_{0};
};

}  // namespace camo::runtime
