// Bounded MPMC queue: the hand-off between batch workers and a streaming
// consumer.
//
// push() blocks while the queue is full — that is the backpressure that
// keeps a fast producer fleet from buffering a whole chip's results ahead
// of a slow sink — and pop() blocks while it is empty. close() ends the
// stream gracefully (pushes are refused, pops drain the remainder, then
// return nullopt); abort() tears it down (buffered items are discarded and
// every blocked producer and consumer is released immediately), which is
// how a throwing sink unwinds without deadlocking workers mid-push.
//
// Plain mutex + two condition variables: the payloads moved through here
// are whole per-clip results (milliseconds of OPC work each), so lock-free
// cleverness would be noise. bench_micro's BM_QueueHandoff pins the
// per-item overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

namespace camo::runtime {

template <typename T>
class BoundedQueue {
public:
    /// Throws std::invalid_argument when capacity == 0: a zero-capacity
    /// queue could never hand anything off, so the misconfiguration is
    /// rejected at construction instead of deadlocking the first push.
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
        if (capacity == 0) {
            throw std::invalid_argument("BoundedQueue: capacity must be at least 1");
        }
    }

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /// Blocks while full. Returns false (and drops `item`) once the queue
    /// is closed or aborted.
    bool push(T item) {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_ || aborted_; });
        if (closed_ || aborted_) return false;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Blocks while empty. Returns nullopt once the queue is drained after
    /// close(), or immediately after abort().
    std::optional<T> pop() {
        std::unique_lock<std::mutex> lock(mu_);
        not_empty_.wait(lock, [this] { return !items_.empty() || closed_ || aborted_; });
        if (aborted_ || items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /// No further pushes; pops drain what is buffered, then return nullopt.
    void close() {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    /// Discard everything buffered and release every blocked caller.
    void abort() {
        {
            std::lock_guard<std::mutex> lock(mu_);
            aborted_ = true;
            items_.clear();
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    [[nodiscard]] std::size_t size() const {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    [[nodiscard]] std::size_t capacity() const { return capacity_; }

private:
    mutable std::mutex mu_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> items_;
    std::size_t capacity_;
    bool closed_ = false;
    bool aborted_ = false;
};

}  // namespace camo::runtime
