#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace camo::runtime {
namespace {

// Which pool (if any) the current thread belongs to, and its index there.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_index = -1;

obs::MetricId tasks_counter() {
    static const obs::MetricId id = obs::register_counter("pool.tasks");
    return id;
}
obs::MetricId steals_counter() {
    static const obs::MetricId id = obs::register_counter("pool.steals");
    return id;
}
obs::MetricId queue_depth_gauge() {
    static const obs::MetricId id = obs::register_gauge("pool.queue_depth");
    return id;
}

}  // namespace

int ThreadPool::default_threads() {
    return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

ThreadPool::ThreadPool(int threads) {
    const int n = threads > 0 ? threads : default_threads();
    queues_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
    stop_.store(true);
    // Same lost-wakeup guard as enqueue(): without it a worker could check
    // stop_ just before this store, block, and miss the notify forever.
    { std::lock_guard<std::mutex> lock(sleep_mu_); }
    wake_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

int ThreadPool::worker_index() const { return tls_pool == this ? tls_index : -1; }

void ThreadPool::enqueue(Task task) {
    // Workers push onto their own deque (stolen FIFO, popped LIFO); external
    // submitters round-robin across queues to spread the initial shards.
    int target = worker_index();
    if (target < 0) {
        target = static_cast<int>(next_queue_.fetch_add(1, std::memory_order_relaxed) %
                                  queues_.size());
    }
    // Increment before publishing the task: a worker may pop it (and
    // fetch_sub) the instant the queue mutex is released, and the unsigned
    // counter must never transiently underflow.
    pending_.fetch_add(1, std::memory_order_release);
    obs::counter_add(tasks_counter());
    obs::gauge_add(queue_depth_gauge(), 1.0);
    {
        std::lock_guard<std::mutex> lock(queues_[static_cast<std::size_t>(target)]->mu);
        queues_[static_cast<std::size_t>(target)]->tasks.push_back(std::move(task));
    }
    // Synchronize with the sleep mutex so the increment cannot slip between a
    // worker's idle check and its wait() — that would lose this notify.
    { std::lock_guard<std::mutex> lock(sleep_mu_); }
    wake_cv_.notify_one();
}

bool ThreadPool::try_pop_local(int self, Task& out) {
    WorkerQueue& q = *queues_[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) return false;
    out = std::move(q.tasks.back());
    q.tasks.pop_back();
    obs::gauge_add(queue_depth_gauge(), -1.0);
    return true;
}

bool ThreadPool::try_steal(int self, Task& out) {
    const int n = static_cast<int>(queues_.size());
    for (int d = 1; d < n; ++d) {
        WorkerQueue& q = *queues_[static_cast<std::size_t>((self + d) % n)];
        std::lock_guard<std::mutex> lock(q.mu);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
            obs::counter_add(steals_counter());
            obs::gauge_add(queue_depth_gauge(), -1.0);
            return true;
        }
    }
    return false;
}

void ThreadPool::worker_loop(int index) {
    tls_pool = this;
    tls_index = index;

    for (;;) {
        Task task;
        if (try_pop_local(index, task) || try_steal(index, task)) {
            pending_.fetch_sub(1, std::memory_order_acq_rel);
            task();  // packaged_task: exceptions land in the caller's future
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mu_);
        if (pending_.load(std::memory_order_acquire) > 0) continue;
        if (stop_.load()) break;  // drained and stopping: exit
        wake_cv_.wait(lock, [this] {
            return stop_.load() || pending_.load(std::memory_order_acquire) > 0;
        });
    }

    tls_pool = nullptr;
    tls_index = -1;
}

}  // namespace camo::runtime
