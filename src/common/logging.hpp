// Minimal leveled logging to stderr. The library is quiet by default;
// set_log_level(LogLevel::kInfo) enables progress reporting in long runs.
#pragma once

#include <cstdio>
#include <string>

namespace camo {

enum class LogLevel { kQuiet = 0, kInfo = 1, kDebug = 2 };

LogLevel& log_level_ref();

inline void set_log_level(LogLevel lvl) { log_level_ref() = lvl; }
inline LogLevel log_level() { return log_level_ref(); }

inline void log_info(const std::string& msg) {
    if (log_level() >= LogLevel::kInfo) std::fprintf(stderr, "[camo] %s\n", msg.c_str());
}

inline void log_debug(const std::string& msg) {
    if (log_level() >= LogLevel::kDebug) std::fprintf(stderr, "[camo:debug] %s\n", msg.c_str());
}

}  // namespace camo
