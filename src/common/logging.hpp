// Minimal leveled logging to stderr. The library is quiet by default;
// set_log_level(LogLevel::kInfo) enables progress reporting in long runs.
//
// The level is a process-wide std::atomic (relaxed): batch and trainer
// worker threads read it on every log call while the CLI thread may set it,
// so a plain LogLevel would be a data race. Lines are prefixed with elapsed
// seconds since the first log-clock use and a stable per-thread id
// ("[camo +1.234s w3] ..."), so interleaved multi-worker output stays
// attributable. The id is also the trace-event tid (obs/trace) and the
// prefix format is deliberately kept out of every golden/test expectation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>

namespace camo {

enum class LogLevel { kQuiet = 0, kInfo = 1, kDebug = 2 };

std::atomic<LogLevel>& log_level_ref();

inline void set_log_level(LogLevel lvl) {
    log_level_ref().store(lvl, std::memory_order_relaxed);
}
inline LogLevel log_level() { return log_level_ref().load(std::memory_order_relaxed); }

/// Epoch shared by log timestamps and trace events, fixed on first use.
inline std::chrono::steady_clock::time_point process_epoch() {
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

/// Seconds since process_epoch().
inline double elapsed_seconds() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - process_epoch())
        .count();
}

/// Small dense id for the calling thread, assigned on first use (the main
/// thread usually logs first and gets 0). Stable for the thread's lifetime.
inline int stable_thread_id() {
    static std::atomic<int> next{0};
    thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

inline void log_info(const std::string& msg) {
    if (log_level() >= LogLevel::kInfo) {
        std::fprintf(stderr, "[camo +%.3fs w%d] %s\n", elapsed_seconds(), stable_thread_id(),
                     msg.c_str());
    }
}

inline void log_debug(const std::string& msg) {
    if (log_level() >= LogLevel::kDebug) {
        std::fprintf(stderr, "[camo:debug +%.3fs w%d] %s\n", elapsed_seconds(),
                     stable_thread_id(), msg.c_str());
    }
}

}  // namespace camo
