// NEON kernels for aarch64, where the ISA is baseline — no runtime feature
// probe needed, only the compile-time guard (and CAMO_SIMD=OFF, which adds
// CAMO_SIMD_OFF to this TU). Same packed layouts and accumulation contracts
// as the AVX2 kernels; 4-wide lanes processed as two halves of each 8-wide
// block.
#include "common/simd.hpp"

#if defined(__aarch64__) && !defined(CAMO_SIMD_OFF)

#include <arm_neon.h>

#include <cstring>

namespace camo::simd {
namespace {

inline void store_pair_tail(float* y, int o0, int count, float32x4_t lo, float32x4_t hi) {
    if (count == 8) {
        vst1q_f32(y + o0, lo);
        vst1q_f32(y + o0 + 4, hi);
        return;
    }
    float lanes[8];
    vst1q_f32(lanes, lo);
    vst1q_f32(lanes + 4, hi);
    std::memcpy(y + o0, lanes, static_cast<std::size_t>(count) * sizeof(float));
}

inline void load_pair_tail(const float* y, int o0, int count, float32x4_t& lo, float32x4_t& hi) {
    if (count == 8) {
        lo = vld1q_f32(y + o0);
        hi = vld1q_f32(y + o0 + 4);
        return;
    }
    float lanes[8] = {};
    std::memcpy(lanes, y + o0, static_cast<std::size_t>(count) * sizeof(float));
    lo = vld1q_f32(lanes);
    hi = vld1q_f32(lanes + 4);
}

void neon_gemm_blocked(const float* w, const float* bias, const float* x, int rows, int in,
                       int out, int out_padded, float* y, bool accumulate) {
    const int blocks = out_padded / kBlock;
    for (int blk = 0; blk < blocks; ++blk) {
        const int o0 = blk * kBlock;
        const int width = out - o0 < kBlock ? out - o0 : kBlock;
        if (width <= 0) break;
        const float* wb = w + static_cast<std::size_t>(blk) * static_cast<std::size_t>(in) * kBlock;
        const float32x4_t b_lo = accumulate ? vdupq_n_f32(0.0F) : vld1q_f32(bias + o0);
        const float32x4_t b_hi = accumulate ? vdupq_n_f32(0.0F) : vld1q_f32(bias + o0 + 4);
        for (int r = 0; r < rows; ++r) {
            const float* xr = x + static_cast<std::size_t>(r) * static_cast<std::size_t>(in);
            float* yr = y + static_cast<std::size_t>(r) * static_cast<std::size_t>(out);
            float32x4_t a_lo = b_lo;
            float32x4_t a_hi = b_hi;
            if (accumulate) load_pair_tail(yr, o0, width, a_lo, a_hi);
            for (int i = 0; i < in; ++i) {
                const float* wv = wb + static_cast<std::size_t>(i) * kBlock;
                a_lo = vfmaq_n_f32(a_lo, vld1q_f32(wv), xr[i]);
                a_hi = vfmaq_n_f32(a_hi, vld1q_f32(wv + 4), xr[i]);
            }
            store_pair_tail(yr, o0, width, a_lo, a_hi);
        }
    }
}

void neon_conv2d_packed(const float* w, const float* bias, const float* x, int in_ch, int h,
                        int wdt, int out_ch, int out_ch_padded, int k, int stride, int pad,
                        float* y, int oh, int ow) {
    const std::size_t plane = static_cast<std::size_t>(oh) * static_cast<std::size_t>(ow);
    for (int oc0 = 0; oc0 < out_ch; oc0 += kBlock) {
        const int width = out_ch - oc0 < kBlock ? out_ch - oc0 : kBlock;
        const float32x4_t b_lo = vld1q_f32(bias + oc0);
        const float32x4_t b_hi = vld1q_f32(bias + oc0 + 4);
        for (int oy = 0; oy < oh; ++oy) {
            const int iy0 = oy * stride - pad;
            for (int ox = 0; ox < ow; ++ox) {
                const int ix0 = ox * stride - pad;
                float32x4_t a_lo = b_lo;
                float32x4_t a_hi = b_hi;
                for (int ic = 0; ic < in_ch; ++ic) {
                    const float* xp = x + static_cast<std::size_t>(ic) *
                                              static_cast<std::size_t>(h) *
                                              static_cast<std::size_t>(wdt);
                    for (int ky = 0; ky < k; ++ky) {
                        const int iy = iy0 + ky;
                        if (iy < 0 || iy >= h) continue;
                        const float* xrow =
                            xp + static_cast<std::size_t>(iy) * static_cast<std::size_t>(wdt);
                        const float* wrow =
                            w + ((static_cast<std::size_t>(ic) * static_cast<std::size_t>(k) +
                                  static_cast<std::size_t>(ky)) *
                                 static_cast<std::size_t>(k)) *
                                    static_cast<std::size_t>(out_ch_padded) +
                            static_cast<std::size_t>(oc0);
                        for (int kx = 0; kx < k; ++kx) {
                            const int ix = ix0 + kx;
                            if (ix < 0 || ix >= wdt) continue;
                            const float* wv =
                                wrow + static_cast<std::size_t>(kx) *
                                           static_cast<std::size_t>(out_ch_padded);
                            a_lo = vfmaq_n_f32(a_lo, vld1q_f32(wv), xrow[ix]);
                            a_hi = vfmaq_n_f32(a_hi, vld1q_f32(wv + 4), xrow[ix]);
                        }
                    }
                }
                float lanes[8];
                vst1q_f32(lanes, a_lo);
                vst1q_f32(lanes + 4, a_hi);
                float* ypix = y + static_cast<std::size_t>(oc0) * plane +
                              static_cast<std::size_t>(oy) * static_cast<std::size_t>(ow) +
                              static_cast<std::size_t>(ox);
                for (int l = 0; l < width; ++l) ypix[static_cast<std::size_t>(l) * plane] = lanes[l];
            }
        }
    }
}

void neon_cmul(const std::complex<float>* a, const std::complex<float>* b,
               std::complex<float>* out, std::size_t n) {
    const float* af = reinterpret_cast<const float*>(a);
    const float* bf = reinterpret_cast<const float*>(b);
    float* of = reinterpret_cast<float*>(out);
    std::size_t i = 0;
    // Deinterleaved loads: 4 complex products per iteration.
    for (; i + 4 <= n; i += 4) {
        const float32x4x2_t av = vld2q_f32(af + 2 * i);  // .val[0]=re, .val[1]=im
        const float32x4x2_t bv = vld2q_f32(bf + 2 * i);
        float32x4x2_t res;
        res.val[0] = vfmsq_f32(vmulq_f32(av.val[0], bv.val[0]), av.val[1], bv.val[1]);
        res.val[1] = vfmaq_f32(vmulq_f32(av.val[0], bv.val[1]), av.val[1], bv.val[0]);
        vst2q_f32(of + 2 * i, res);
    }
    for (; i < n; ++i) out[i] = a[i] * b[i];
}

void neon_norm_acc(const std::complex<float>* field, float lambda, float* intensity,
                   std::size_t n) {
    const float* ff = reinterpret_cast<const float*>(field);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4x2_t v = vld2q_f32(ff + 2 * i);
        const float32x4_t norms =
            vfmaq_f32(vmulq_f32(v.val[0], v.val[0]), v.val[1], v.val[1]);
        vst1q_f32(intensity + i, vfmaq_n_f32(vld1q_f32(intensity + i), norms, lambda));
    }
    for (; i < n; ++i) intensity[i] += lambda * std::norm(field[i]);
}

const Ops kNeonOps = {
    Level::kNeon, neon_gemm_blocked, neon_conv2d_packed, neon_cmul, neon_norm_acc,
};

}  // namespace

namespace detail {
const Ops* neon_ops() { return &kNeonOps; }
}  // namespace detail

}  // namespace camo::simd

#else

namespace camo::simd::detail {
const Ops* neon_ops() { return nullptr; }
}  // namespace camo::simd::detail

#endif
