#include "common/parse.hpp"

#include <charconv>
#include <cmath>

namespace camo {
namespace {

template <typename T>
bool parse_whole(const std::string& s, T& out) {
    if (s.empty()) return false;
    T value{};
    const char* begin = s.data();
    const char* end = begin + s.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) return false;
    out = value;
    return true;
}

}  // namespace

bool parse_int(const std::string& s, int& out) { return parse_whole(s, out); }

bool parse_u64(const std::string& s, std::uint64_t& out) {
    // from_chars on unsigned types accepts a leading '-' (it negates modulo
    // 2^64); reject it explicitly so "--seed -1" fails loudly.
    if (!s.empty() && s.front() == '-') return false;
    return parse_whole(s, out);
}

bool parse_double(const std::string& s, double& out) {
    double value = 0.0;
    if (!parse_whole(s, value) || !std::isfinite(value)) return false;
    out = value;
    return true;
}

bool parse_double_list(const std::string& s, std::vector<double>& out) {
    std::vector<double> parsed;
    std::size_t pos = 0;
    while (true) {
        const std::size_t comma = s.find(',', pos);
        const std::size_t end = comma == std::string::npos ? s.size() : comma;
        double v = 0.0;
        if (!parse_double(s.substr(pos, end - pos), v)) return false;  // empty or garbage token
        parsed.push_back(v);
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    if (parsed.empty()) return false;
    out = std::move(parsed);
    return true;
}

}  // namespace camo
