// AVX2 + FMA kernels. This file is always part of the build; CMake adds
// -mavx2 -mfma on x86 unless CAMO_SIMD=OFF, and the whole implementation is
// guarded on __AVX2__/__FMA__ so a portable build simply exports a null
// table. The dispatcher (simd.cpp) additionally checks
// __builtin_cpu_supports at runtime, so shipping these kernels never traps
// on an older CPU.
//
// Layout notes (the lc0 linear-backend idiom): weights are packed row-
// blocked, w[(blk * in + i) * 8 + lane] = W[blk*8 + lane][i], so the inner
// GEMV loop is one broadcast of x[i] FMA'd against a contiguous 8-float
// column slice. The batched GEMM tiles 4 rows x 8 outputs into 4 registers;
// each row keeps its own accumulator chain in ascending-i order, which is
// what makes a batched call bitwise identical to the same rows run one by
// one (the batched-inference equivalence contract).
#include "common/simd.hpp"

#if defined(__AVX2__) && defined(__FMA__) && !defined(CAMO_SIMD_OFF)

#include <immintrin.h>

#include <cstring>

namespace camo::simd {
namespace {

// Stores an 8-lane accumulator into y[o0 .. o0+count), count <= 8.
inline void store_tail(float* y, int o0, int count, __m256 acc) {
    if (count == 8) {
        _mm256_storeu_ps(y + o0, acc);
    } else {
        alignas(32) float lanes[8];
        _mm256_store_ps(lanes, acc);
        std::memcpy(y + o0, lanes, static_cast<std::size_t>(count) * sizeof(float));
    }
}

inline __m256 load_tail(const float* y, int o0, int count) {
    if (count == 8) return _mm256_loadu_ps(y + o0);
    alignas(32) float lanes[8] = {};
    std::memcpy(lanes, y + o0, static_cast<std::size_t>(count) * sizeof(float));
    return _mm256_load_ps(lanes);
}

void avx2_gemm_blocked(const float* w, const float* bias, const float* x, int rows, int in,
                       int out, int out_padded, float* y, bool accumulate) {
    const int blocks = out_padded / kBlock;
    for (int blk = 0; blk < blocks; ++blk) {
        const int o0 = blk * kBlock;
        const int width = out - o0 < kBlock ? out - o0 : kBlock;
        if (width <= 0) break;
        const float* wb = w + static_cast<std::size_t>(blk) * static_cast<std::size_t>(in) * kBlock;
        const __m256 b8 = accumulate ? _mm256_setzero_ps() : _mm256_loadu_ps(bias + blk * kBlock);

        int r = 0;
        for (; r + 4 <= rows; r += 4) {
            const float* x0 = x + static_cast<std::size_t>(r) * static_cast<std::size_t>(in);
            const float* x1 = x0 + in;
            const float* x2 = x1 + in;
            const float* x3 = x2 + in;
            float* y0 = y + static_cast<std::size_t>(r) * static_cast<std::size_t>(out);
            float* y1 = y0 + out;
            float* y2 = y1 + out;
            float* y3 = y2 + out;
            __m256 a0 = accumulate ? load_tail(y0, o0, width) : b8;
            __m256 a1 = accumulate ? load_tail(y1, o0, width) : b8;
            __m256 a2 = accumulate ? load_tail(y2, o0, width) : b8;
            __m256 a3 = accumulate ? load_tail(y3, o0, width) : b8;
            for (int i = 0; i < in; ++i) {
                const __m256 wv = _mm256_loadu_ps(wb + static_cast<std::size_t>(i) * kBlock);
                a0 = _mm256_fmadd_ps(_mm256_set1_ps(x0[i]), wv, a0);
                a1 = _mm256_fmadd_ps(_mm256_set1_ps(x1[i]), wv, a1);
                a2 = _mm256_fmadd_ps(_mm256_set1_ps(x2[i]), wv, a2);
                a3 = _mm256_fmadd_ps(_mm256_set1_ps(x3[i]), wv, a3);
            }
            store_tail(y0, o0, width, a0);
            store_tail(y1, o0, width, a1);
            store_tail(y2, o0, width, a2);
            store_tail(y3, o0, width, a3);
        }
        for (; r < rows; ++r) {
            const float* xr = x + static_cast<std::size_t>(r) * static_cast<std::size_t>(in);
            float* yr = y + static_cast<std::size_t>(r) * static_cast<std::size_t>(out);
            __m256 acc = accumulate ? load_tail(yr, o0, width) : b8;
            for (int i = 0; i < in; ++i) {
                const __m256 wv = _mm256_loadu_ps(wb + static_cast<std::size_t>(i) * kBlock);
                acc = _mm256_fmadd_ps(_mm256_set1_ps(xr[i]), wv, acc);
            }
            store_tail(yr, o0, width, acc);
        }
    }
}

void avx2_conv2d_packed(const float* w, const float* bias, const float* x, int in_ch, int h,
                        int wdt, int out_ch, int out_ch_padded, int k, int stride, int pad,
                        float* y, int oh, int ow) {
    const std::size_t plane = static_cast<std::size_t>(oh) * static_cast<std::size_t>(ow);
    for (int oc0 = 0; oc0 < out_ch; oc0 += kBlock) {
        const int width = out_ch - oc0 < kBlock ? out_ch - oc0 : kBlock;
        const __m256 b8 = _mm256_loadu_ps(bias + oc0);
        for (int oy = 0; oy < oh; ++oy) {
            const int iy0 = oy * stride - pad;
            for (int ox = 0; ox < ow; ++ox) {
                const int ix0 = ox * stride - pad;
                __m256 acc = b8;
                for (int ic = 0; ic < in_ch; ++ic) {
                    const float* xp = x + (static_cast<std::size_t>(ic) *
                                           static_cast<std::size_t>(h)) *
                                              static_cast<std::size_t>(wdt);
                    for (int ky = 0; ky < k; ++ky) {
                        const int iy = iy0 + ky;
                        if (iy < 0 || iy >= h) continue;
                        const float* xrow = xp + static_cast<std::size_t>(iy) *
                                                     static_cast<std::size_t>(wdt);
                        const float* wrow =
                            w + ((static_cast<std::size_t>(ic) * static_cast<std::size_t>(k) +
                                  static_cast<std::size_t>(ky)) *
                                 static_cast<std::size_t>(k)) *
                                    static_cast<std::size_t>(out_ch_padded) +
                            static_cast<std::size_t>(oc0);
                        for (int kx = 0; kx < k; ++kx) {
                            const int ix = ix0 + kx;
                            if (ix < 0 || ix >= wdt) continue;
                            const __m256 wv = _mm256_loadu_ps(
                                wrow + static_cast<std::size_t>(kx) *
                                           static_cast<std::size_t>(out_ch_padded));
                            acc = _mm256_fmadd_ps(_mm256_set1_ps(xrow[ix]), wv, acc);
                        }
                    }
                }
                // y is channel-major [oc][oy][ox]: scatter the lane block.
                alignas(32) float lanes[8];
                _mm256_store_ps(lanes, acc);
                float* ypix = y + (static_cast<std::size_t>(oc0) * plane) +
                              static_cast<std::size_t>(oy) * static_cast<std::size_t>(ow) +
                              static_cast<std::size_t>(ox);
                for (int l = 0; l < width; ++l) ypix[static_cast<std::size_t>(l) * plane] = lanes[l];
            }
        }
    }
}

void avx2_cmul(const std::complex<float>* a, const std::complex<float>* b,
               std::complex<float>* out, std::size_t n) {
    const float* af = reinterpret_cast<const float*>(a);
    const float* bf = reinterpret_cast<const float*>(b);
    float* of = reinterpret_cast<float*>(out);
    std::size_t i = 0;
    // 4 complex values (8 floats, interleaved re/im) per iteration:
    // (ar+i*ai)(br+i*bi) = (ar*br - ai*bi) + i*(ar*bi + ai*br).
    for (; i + 4 <= n; i += 4) {
        const __m256 av = _mm256_loadu_ps(af + 2 * i);
        const __m256 bv = _mm256_loadu_ps(bf + 2 * i);
        const __m256 ar = _mm256_moveldup_ps(av);             // [ar0 ar0 ar1 ar1 ...]
        const __m256 ai = _mm256_movehdup_ps(av);             // [ai0 ai0 ai1 ai1 ...]
        const __m256 bswap = _mm256_permute_ps(bv, 0xB1);     // [bi0 br0 bi1 br1 ...]
        // ar*b ± ai*swap(b): fmaddsub subtracts in even lanes (real part)
        // and adds in odd lanes (imaginary part), which is exactly the
        // complex product layout.
        const __m256 res = _mm256_fmaddsub_ps(ar, bv, _mm256_mul_ps(ai, bswap));
        _mm256_storeu_ps(of + 2 * i, res);
    }
    for (; i < n; ++i) out[i] = a[i] * b[i];
}

void avx2_norm_acc(const std::complex<float>* field, float lambda, float* intensity,
                   std::size_t n) {
    const float* ff = reinterpret_cast<const float*>(field);
    const __m256 lam = _mm256_set1_ps(lambda);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // Two interleaved loads = 8 complex values; hadd pairs re*re+im*im.
        const __m256 v0 = _mm256_loadu_ps(ff + 2 * i);      // c0..c3 interleaved
        const __m256 v1 = _mm256_loadu_ps(ff + 2 * i + 8);  // c4..c7 interleaved
        const __m256 sq0 = _mm256_mul_ps(v0, v0);
        const __m256 sq1 = _mm256_mul_ps(v1, v1);
        // hadd on 128-bit halves: [n0 n1 n4 n5 | n2 n3 n6 n7]
        const __m256 sums = _mm256_hadd_ps(sq0, sq1);
        const __m256 norms = _mm256_permutevar8x32_ps(
            sums, _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7));
        const __m256 acc = _mm256_fmadd_ps(lam, norms, _mm256_loadu_ps(intensity + i));
        _mm256_storeu_ps(intensity + i, acc);
    }
    for (; i < n; ++i) intensity[i] += lambda * std::norm(field[i]);
}

const Ops kAvx2Ops = {
    Level::kAvx2, avx2_gemm_blocked, avx2_conv2d_packed, avx2_cmul, avx2_norm_acc,
};

}  // namespace

namespace detail {
const Ops* avx2_ops() { return &kAvx2Ops; }
}  // namespace detail

}  // namespace camo::simd

#else  // portable build of this TU: export no table

namespace camo::simd::detail {
const Ops* avx2_ops() { return nullptr; }
}  // namespace camo::simd::detail

#endif
