// Runtime-dispatched SIMD kernels for the inference and lithography hot
// loops (the nn::Backend and litho::SupportApplicator compute cores).
//
// Dispatch model: this translation unit is always compiled portably; the
// vector implementations live in their own translation units
// (simd_avx2.cpp, built with -mavx2 -mfma on x86; simd_neon.cpp on
// aarch64, where NEON is baseline). At startup the active kernel table is
// chosen as
//
//     compiled kernels  ∩  CPU capabilities  ∩  CAMO_BACKEND environment
//
// CAMO_BACKEND=scalar forces the scalar reference kernels — byte-for-byte
// the pre-SIMD loops, so the repo's bit-identical determinism contracts
// (batch results at any thread count, training traces at any worker count)
// hold end to end exactly as before. CAMO_BACKEND=simd requires a vector
// level and falls back to scalar (with a one-time warning) when neither
// the binary nor the CPU provides one. Unset or "auto" picks the best
// level available.
//
// Equivalence contract: for every kernel the scalar entry reproduces the
// legacy accumulation order exactly; the vector entries compute the same
// sums with a different rounding schedule (blocked FMA), so results agree
// to a few ULP — tests/test_nn_backend.cpp fuzzes the bound and pins the
// end-to-end action-identity guarantee on every registered scenario.
#pragma once

#include <complex>
#include <cstddef>

namespace camo::simd {

enum class Level {
    kScalar,
    kAvx2,  ///< x86-64 AVX2 + FMA (8-wide float)
    kNeon,  ///< aarch64 NEON (4-wide float, baseline on that ISA)
};

const char* level_name(Level level);

/// Highest level this binary carries kernels for (a compile-time fact).
Level compiled_level();

/// Highest level the running CPU supports among the compiled ones.
Level detected_level();

/// Level actually in use: detected_level() clipped by CAMO_BACKEND.
Level active_level();

/// Row-blocked GEMM/GEMV kernels read weights in the lc0-style packed
/// layout: output rows grouped in blocks of kBlock, with
/// w[(block * in + i) * kBlock + lane] = W[block * kBlock + lane][i].
/// `out` is padded to a multiple of kBlock with zero rows at pack time.
inline constexpr int kBlock = 8;

struct Ops {
    Level level = Level::kScalar;

    /// y[r, :] (+)= x[r, :] @ W^T (+ bias): `rows` independent right-hand
    /// sides, x row-major [rows, in], y row-major [rows, out] (`out` is the
    /// logical width; `w`/`bias` are padded to out_padded). When
    /// `accumulate` is true the products fold into the existing y values
    /// and `bias` is ignored. Row r's accumulation order never depends on
    /// `rows`, so a batched call is bitwise identical to `rows` single-row
    /// calls at every level.
    void (*gemm_blocked)(const float* w, const float* bias, const float* x, int rows, int in,
                         int out, int out_padded, float* y, bool accumulate);

    /// One CHW conv sample with weights packed [ic][ky][kx][oc_padded]
    /// (output-channel innermost so the vector kernels broadcast the input
    /// pixel across a block of output channels). Geometry mirrors
    /// nn::Conv2d::forward: y[oc, oy, ox] = b[oc] + sum over (ic, ky, kx)
    /// with zero padding handled by bounds checks.
    void (*conv2d_packed)(const float* w, const float* bias, const float* x, int in_ch, int h,
                          int wdt, int out_ch, int out_ch_padded, int k, int stride, int pad,
                          float* y, int oh, int ow);

    /// out[i] = a[i] * b[i] over contiguous complex floats (the
    /// SupportApplicator coefficient multiply).
    void (*cmul)(const std::complex<float>* a, const std::complex<float>* b,
                 std::complex<float>* out, std::size_t n);

    /// intensity[i] += lambda * |field[i]|^2 (the SOCS accumulation).
    void (*norm_acc)(const std::complex<float>* field, float lambda, float* intensity,
                     std::size_t n);
};

/// Kernel table of the active level (cheap: one atomic load after init).
const Ops& ops();

/// The scalar reference table (always available; legacy loop order).
const Ops& scalar_ops();

/// Test hook: force a level for the current scope (e.g. compare scalar vs
/// SIMD outputs in-process). Levels above detected_level() clip down. Not
/// safe to race with concurrent kernel users — tests only.
class ScopedOverride {
public:
    explicit ScopedOverride(Level level);
    ~ScopedOverride();
    ScopedOverride(const ScopedOverride&) = delete;
    ScopedOverride& operator=(const ScopedOverride&) = delete;

private:
    Level prev_;
};

}  // namespace camo::simd
