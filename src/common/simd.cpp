#include "common/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace camo::simd {
namespace detail {

// Provided by simd_avx2.cpp / simd_neon.cpp. Each returns nullptr when its
// translation unit was not built with the matching ISA (the files are always
// compiled; CMake decides whether to pass the vector flags).
const Ops* avx2_ops();
const Ops* neon_ops();

}  // namespace detail

namespace {

// ---- Scalar reference kernels ----------------------------------------------
// These reproduce the legacy loops byte for byte: one accumulator per output
// element, products added in ascending input order. The blocked weight layout
// only changes where W[o][i] lives, not the order it is read in.

void scalar_gemm_blocked(const float* w, const float* bias, const float* x, int rows, int in,
                         int out, int out_padded, float* y, bool accumulate) {
    (void)out_padded;
    for (int r = 0; r < rows; ++r) {
        const float* xr = x + static_cast<std::size_t>(r) * static_cast<std::size_t>(in);
        float* yr = y + static_cast<std::size_t>(r) * static_cast<std::size_t>(out);
        for (int o = 0; o < out; ++o) {
            const int blk = o / kBlock;
            const int lane = o % kBlock;
            const float* wcol =
                w + (static_cast<std::size_t>(blk) * static_cast<std::size_t>(in)) * kBlock + lane;
            float acc = accumulate ? yr[o] : bias[o];
            for (int i = 0; i < in; ++i) {
                acc += wcol[static_cast<std::size_t>(i) * kBlock] * xr[i];
            }
            yr[o] = acc;
        }
    }
}

void scalar_conv2d_packed(const float* w, const float* bias, const float* x, int in_ch, int h,
                          int wdt, int out_ch, int out_ch_padded, int k, int stride, int pad,
                          float* y, int oh, int ow) {
    for (int oc = 0; oc < out_ch; ++oc) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                float acc = bias[oc];
                const int iy0 = oy * stride - pad;
                const int ix0 = ox * stride - pad;
                for (int ic = 0; ic < in_ch; ++ic) {
                    for (int ky = 0; ky < k; ++ky) {
                        const int iy = iy0 + ky;
                        if (iy < 0 || iy >= h) continue;
                        for (int kx = 0; kx < k; ++kx) {
                            const int ix = ix0 + kx;
                            if (ix < 0 || ix >= wdt) continue;
                            const std::size_t widx =
                                ((static_cast<std::size_t>(ic) * static_cast<std::size_t>(k) +
                                  static_cast<std::size_t>(ky)) *
                                     static_cast<std::size_t>(k) +
                                 static_cast<std::size_t>(kx)) *
                                    static_cast<std::size_t>(out_ch_padded) +
                                static_cast<std::size_t>(oc);
                            const std::size_t xidx =
                                (static_cast<std::size_t>(ic) * static_cast<std::size_t>(h) +
                                 static_cast<std::size_t>(iy)) *
                                    static_cast<std::size_t>(wdt) +
                                static_cast<std::size_t>(ix);
                            acc += w[widx] * x[xidx];
                        }
                    }
                }
                y[(static_cast<std::size_t>(oc) * static_cast<std::size_t>(oh) +
                   static_cast<std::size_t>(oy)) *
                      static_cast<std::size_t>(ow) +
                  static_cast<std::size_t>(ox)] = acc;
            }
        }
    }
}

void scalar_cmul(const std::complex<float>* a, const std::complex<float>* b,
                 std::complex<float>* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void scalar_norm_acc(const std::complex<float>* field, float lambda, float* intensity,
                     std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) intensity[i] += lambda * std::norm(field[i]);
}

const Ops kScalarOps = {
    Level::kScalar, scalar_gemm_blocked, scalar_conv2d_packed, scalar_cmul, scalar_norm_acc,
};

// ---- Dispatch ---------------------------------------------------------------

const Ops* table_for(Level level) {
    if (level == Level::kAvx2) {
        if (const Ops* t = detail::avx2_ops()) return t;
    }
    if (level == Level::kNeon) {
        if (const Ops* t = detail::neon_ops()) return t;
    }
    return &kScalarOps;
}

Level compute_detected() {
    if (detail::neon_ops() != nullptr) return Level::kNeon;  // baseline on aarch64
#if defined(__x86_64__) || defined(_M_X64)
    if (detail::avx2_ops() != nullptr && __builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("fma")) {
        return Level::kAvx2;
    }
#endif
    return Level::kScalar;
}

Level env_requested(Level best) {
    const char* env = std::getenv("CAMO_BACKEND");
    if (env == nullptr || std::strcmp(env, "auto") == 0 || env[0] == '\0') return best;
    if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(env, "simd") == 0) {
        if (best == Level::kScalar) {
            std::fprintf(stderr,
                         "CAMO_BACKEND=simd: no SIMD kernels available on this "
                         "build/CPU; using scalar\n");
        }
        return best;
    }
    std::fprintf(stderr, "CAMO_BACKEND: unknown value '%s' (scalar|simd|auto); using auto\n",
                 env);
    return best;
}

std::atomic<const Ops*>& active_table() {
    static std::atomic<const Ops*> table{table_for(env_requested(compute_detected()))};
    return table;
}

}  // namespace

const char* level_name(Level level) {
    switch (level) {
        case Level::kAvx2: return "avx2";
        case Level::kNeon: return "neon";
        case Level::kScalar: break;
    }
    return "scalar";
}

Level compiled_level() {
    if (detail::neon_ops() != nullptr) return Level::kNeon;
    if (detail::avx2_ops() != nullptr) return Level::kAvx2;
    return Level::kScalar;
}

Level detected_level() {
    static const Level level = compute_detected();
    return level;
}

Level active_level() { return active_table().load(std::memory_order_relaxed)->level; }

const Ops& ops() { return *active_table().load(std::memory_order_relaxed); }

const Ops& scalar_ops() { return kScalarOps; }

ScopedOverride::ScopedOverride(Level level) : prev_(active_level()) {
    // Anything non-scalar clips to what this build + CPU can actually run.
    const Level want = level == Level::kScalar ? Level::kScalar : detected_level();
    active_table().store(table_for(want), std::memory_order_relaxed);
}

ScopedOverride::~ScopedOverride() {
    active_table().store(table_for(prev_), std::memory_order_relaxed);
}

}  // namespace camo::simd
