// Minimal read-only JSON parser for golden files and tool round-trips.
//
// The repo writes JSON by hand (obs/report, bench exports, the compare
// table); the only consumers that need to *read* JSON back are tests and
// the golden-bound checker, so this stays deliberately small: a
// recursive-descent parser producing an immutable Value tree. No
// serialization, no comments, no trailing commas — strict RFC 8259 except
// that numbers are always parsed as double.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace camo::json {

class Value {
  public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;  ///< insertion order kept

    bool is_null() const { return type == Type::kNull; }
    bool is_object() const { return type == Type::kObject; }
    bool is_array() const { return type == Type::kArray; }

    /// First member with `key`, or nullptr. Only valid on objects.
    const Value* find(const std::string& key) const;

    /// `find` that throws std::runtime_error when the key is missing.
    const Value& at(const std::string& key) const;
};

/// Parse a complete JSON document. Throws std::runtime_error with a byte
/// offset on malformed input or trailing garbage.
Value parse(const std::string& text);

}  // namespace camo::json
