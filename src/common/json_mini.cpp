#include "common/json_mini.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace camo::json {
namespace {

class Parser {
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    Value parse_document() {
        Value v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return v;
    }

  private:
    const std::string& text_;
    std::size_t pos_ = 0;

    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("json: " + what + " at byte " + std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* lit) {
        std::size_t n = 0;
        while (lit[n] != '\0') ++n;
        if (text_.compare(pos_, n, lit) != 0) return false;
        pos_ += n;
        return true;
    }

    Value parse_value() {
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': {
                Value v;
                v.type = Value::Type::kString;
                v.string = parse_string();
                return v;
            }
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                {
                    Value v;
                    v.type = Value::Type::kBool;
                    v.boolean = true;
                    return v;
                }
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                {
                    Value v;
                    v.type = Value::Type::kBool;
                    v.boolean = false;
                    return v;
                }
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return Value{};
            default: return parse_number();
        }
    }

    Value parse_object() {
        expect('{');
        Value v;
        v.type = Value::Type::kObject;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            v.object.emplace_back(std::move(key), parse_value());
            skip_ws();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return v;
            }
            fail("expected ',' or '}' in object");
        }
    }

    Value parse_array() {
        expect('[');
        Value v;
        v.type = Value::Type::kArray;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parse_value());
            skip_ws();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return v;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else fail("bad hex digit in \\u escape");
                    }
                    // UTF-8 encode the BMP code point; surrogate pairs are not
                    // combined (goldens only carry ASCII).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                }
                default: fail("bad escape character");
            }
        }
    }

    Value parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("bad number");
        const std::string tok = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0') fail("bad number '" + tok + "'");
        Value v;
        v.type = Value::Type::kNumber;
        v.number = d;
        return v;
    }
};

}  // namespace

const Value* Value::find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object) {
        if (k == key) return &v;
    }
    return nullptr;
}

const Value& Value::at(const std::string& key) const {
    const Value* v = find(key);
    if (v == nullptr) throw std::runtime_error("json: missing key '" + key + "'");
    return *v;
}

Value parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace camo::json
