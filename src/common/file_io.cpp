#include "common/file_io.hpp"

#include <cstdio>
#include <sstream>

#include "common/logging.hpp"

namespace camo {

std::atomic<LogLevel>& log_level_ref() {
    static std::atomic<LogLevel> level{LogLevel::kQuiet};
    return level;
}

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary) {
    if (!out_) throw std::runtime_error("cannot open for writing: " + path);
}

void BinaryWriter::write_u32(std::uint32_t v) { write_bytes(&v, sizeof v); }
void BinaryWriter::write_u64(std::uint64_t v) { write_bytes(&v, sizeof v); }
void BinaryWriter::write_f64(double v) { write_bytes(&v, sizeof v); }
void BinaryWriter::write_f32(float v) { write_bytes(&v, sizeof v); }

void BinaryWriter::write_bytes(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary) {
    if (!in_) throw std::runtime_error("cannot open for reading: " + path);
}

std::uint32_t BinaryReader::read_u32() {
    std::uint32_t v = 0;
    read_bytes(&v, sizeof v);
    return v;
}

std::uint64_t BinaryReader::read_u64() {
    std::uint64_t v = 0;
    read_bytes(&v, sizeof v);
    return v;
}

double BinaryReader::read_f64() {
    double v = 0;
    read_bytes(&v, sizeof v);
    return v;
}

float BinaryReader::read_f32() {
    float v = 0;
    read_bytes(&v, sizeof v);
    return v;
}

void BinaryReader::read_bytes(void* data, std::size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!in_) throw std::runtime_error("unexpected end of file");
}

bool file_exists(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    return static_cast<bool>(f);
}

void write_text_atomic(const std::string& path, const std::string& content) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) throw std::runtime_error("cannot open for writing: " + tmp);
        out.write(content.data(), static_cast<std::streamsize>(content.size()));
        out.flush();
        if (!out) throw std::runtime_error("write failed: " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("rename failed: " + tmp + " -> " + path);
    }
}

std::string read_text(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open for reading: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

}  // namespace camo
