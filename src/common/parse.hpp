// Checked numeric parsing for user-facing inputs (CLI flags, config files).
//
// The std::sto* family is the wrong tool for untrusted input: it throws on
// garbage (std::invalid_argument), throws on overflow (std::out_of_range),
// and silently accepts partial tokens ("1e99" parses as 1 via stoull,
// "0.9x" as 0.9 via stod). Every helper here instead returns false unless
// the WHOLE string is a well-formed, in-range value — no exceptions, no
// trailing garbage, no empty tokens — so callers can reject bad flags with
// a diagnostic and a usage exit instead of terminating.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace camo {

/// Parse a whole base-10 signed integer. Returns false on empty input,
/// non-numeric characters, partial consumption or overflow.
[[nodiscard]] bool parse_int(const std::string& s, int& out);

/// Parse a whole base-10 unsigned 64-bit integer (no leading '-').
[[nodiscard]] bool parse_u64(const std::string& s, std::uint64_t& out);

/// Parse a whole floating-point value (decimal or scientific). Returns
/// false unless the entire string is consumed and the value is finite.
[[nodiscard]] bool parse_double(const std::string& s, double& out);

/// Parse a comma-separated list of doubles ("0.96,1.0,1.04"). Every token
/// must consume fully — empty items ("a,,b"), trailing separators ("1,")
/// and per-token garbage ("0.9x") are rejected. Returns false (leaving
/// `out` untouched) on any malformed token or an empty list.
[[nodiscard]] bool parse_double_list(const std::string& s, std::vector<double>& out);

}  // namespace camo
