// Binary serialization helpers shared by the kernel cache and the neural
// network weight files. All files begin with a caller-chosen magic tag and a
// version so stale caches are detected rather than misread.
#pragma once

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace camo {

class BinaryWriter {
public:
    explicit BinaryWriter(const std::string& path);

    void write_u32(std::uint32_t v);
    void write_u64(std::uint64_t v);
    void write_f64(double v);
    void write_f32(float v);
    void write_bytes(const void* data, std::size_t n);

    template <typename T>
    void write_vector(const std::vector<T>& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        write_u64(v.size());
        write_bytes(v.data(), v.size() * sizeof(T));
    }

    [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

private:
    std::ofstream out_;
};

class BinaryReader {
public:
    explicit BinaryReader(const std::string& path);

    std::uint32_t read_u32();
    std::uint64_t read_u64();
    double read_f64();
    float read_f32();
    void read_bytes(void* data, std::size_t n);

    template <typename T>
    std::vector<T> read_vector() {
        static_assert(std::is_trivially_copyable_v<T>);
        const std::uint64_t n = read_u64();
        std::vector<T> v(n);
        read_bytes(v.data(), n * sizeof(T));
        return v;
    }

    [[nodiscard]] bool ok() const { return static_cast<bool>(in_); }

    /// True when every byte has been consumed — the next read would hit EOF.
    /// Loaders use this to reject files with trailing bytes (truncated-then-
    /// appended or concatenated blobs) instead of silently ignoring the tail.
    [[nodiscard]] bool at_end() { return in_.peek() == std::ifstream::traits_type::eof(); }

private:
    std::ifstream in_;
};

/// True if the file exists and is readable.
bool file_exists(const std::string& path);

/// Replace `path` atomically: the content is written to `path + ".tmp"` and
/// renamed over the destination, so readers never observe a partial file.
/// Throws std::runtime_error on I/O failure. Used by the telemetry
/// snapshot/trace writers (obs/report.cpp).
void write_text_atomic(const std::string& path, const std::string& content);

/// Whole file as a string; throws std::runtime_error if unreadable.
std::string read_text(const std::string& path);

}  // namespace camo
