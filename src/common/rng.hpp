// Deterministic random number generation.
//
// Every stochastic component in the library (dataset generation, weight
// initialization, policy sampling) takes an explicit Rng so that runs are
// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>

namespace camo {

/// One SplitMix64 mixing step. Used to derive statistically independent
/// seeds from a base seed plus an index, so parallel jobs get reproducible
/// streams that do not depend on scheduling order.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/// Seed for job `index` of a batch rooted at `base`. Deterministic in
/// (base, index) only: results are identical at any thread count.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
    return splitmix64(splitmix64(base) ^ splitmix64(index + 0x632BE59BD9B4E019ULL));
}

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform integer in [lo, hi] (inclusive).
    int uniform_int(int lo, int hi) {
        std::uniform_int_distribution<int> d(lo, hi);
        return d(engine_);
    }

    /// Uniform real in [lo, hi).
    double uniform(double lo, double hi) {
        std::uniform_real_distribution<double> d(lo, hi);
        return d(engine_);
    }

    /// Standard normal scaled by stddev.
    double normal(double stddev) {
        std::normal_distribution<double> d(0.0, stddev);
        return d(engine_);
    }

    /// Bernoulli draw.
    bool coin(double p_true) {
        std::bernoulli_distribution d(p_true);
        return d(engine_);
    }

    /// Sample an index from an (unnormalized) non-negative weight vector.
    /// Falls back to the last index on degenerate input.
    template <typename Container>
    int sample_weighted(const Container& weights) {
        double total = 0.0;
        for (double w : weights) total += w;
        if (total <= 0.0) return static_cast<int>(weights.size()) - 1;
        double u = uniform(0.0, total);
        double acc = 0.0;
        int i = 0;
        for (double w : weights) {
            acc += w;
            if (u < acc) return i;
            ++i;
        }
        return static_cast<int>(weights.size()) - 1;
    }

    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace camo
