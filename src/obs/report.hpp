// JSON exporters for the telemetry layer.
//
//   * render_metrics_json / write_metrics_json — the registry snapshot as
//     one JSON object: {"counters": {...}, "gauges": {...},
//     "histograms": {name: {count, sum, buckets: [{lt, count}, ...]}}}.
//     Histogram buckets are powers of two; only non-empty buckets are
//     emitted, each with its exclusive upper bound `lt`.
//   * render_trace_json / write_trace_json — buffered spans as a Chrome
//     trace-event file ("X" complete events, timestamps in microseconds),
//     loadable in Perfetto or chrome://tracing. Per-thread ring overflow is
//     reported in the top-level "droppedEvents" field.
//
// Files are written through common/file_io's atomic-rename path, so a
// crash mid-export never leaves a truncated report.
#pragma once

#include <string>

namespace camo::obs {

[[nodiscard]] std::string render_metrics_json();
[[nodiscard]] std::string render_trace_json();

void write_metrics_json(const std::string& path);
void write_trace_json(const std::string& path);

}  // namespace camo::obs
