#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace camo::obs {
namespace {

constexpr int kSlotBits = 24;
constexpr MetricId kSlotMask = (MetricId{1} << kSlotBits) - 1;

constexpr MetricId make_id(MetricType type, int slot) {
    return (static_cast<MetricId>(type) << kSlotBits) | static_cast<MetricId>(slot);
}
constexpr int id_slot(MetricId id) { return static_cast<int>(id & kSlotMask); }

// One thread's private accumulation. Only the owning thread writes (relaxed
// fetch_add on uncontended cache lines); snapshot/reset read or zero them
// under the registry mutex with relaxed loads/stores.
struct Shard {
    std::array<std::atomic<long long>, kMaxCounters> counters{};
    struct Hist {
        std::array<std::atomic<long long>, kHistogramBuckets> buckets{};
        std::atomic<long long> sum{0};
    };
    std::array<Hist, kMaxHistograms> hists{};
};

struct MetricInfo {
    std::string name;
    MetricType type = MetricType::kCounter;
    int slot = 0;
};

struct Registry {
    std::atomic<bool> enabled{false};

    std::mutex mu;  // guards everything below
    std::vector<MetricInfo> metrics;
    std::unordered_map<std::string, MetricId> by_name;
    int counter_slots = 0;
    int gauge_slots = 0;
    int hist_slots = 0;
    std::array<std::atomic<double>, kMaxGauges> gauges{};
    std::vector<std::unique_ptr<Shard>> shards;  ///< one per thread that recorded
};

// Intentionally leaked: worker threads may record during static destruction
// (thread_local teardown order across TUs is unspecified), so the registry
// must outlive every thread.
Registry& reg() {
    static Registry* r = new Registry();
    return *r;
}

Shard& local_shard() {
    thread_local Shard* shard = [] {
        auto owned = std::make_unique<Shard>();
        Shard* p = owned.get();
        Registry& r = reg();
        std::lock_guard<std::mutex> lock(r.mu);
        r.shards.push_back(std::move(owned));
        return p;
    }();
    return *shard;
}

MetricId register_metric(const std::string& name, MetricType type) {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.by_name.find(name);
    if (it != r.by_name.end()) {
        const MetricInfo& info = r.metrics[static_cast<std::size_t>(it->second)];
        if (info.type != type) {
            throw std::invalid_argument("obs: metric '" + name +
                                        "' already registered with a different type");
        }
        return make_id(type, info.slot);
    }
    int* next = type == MetricType::kCounter ? &r.counter_slots
                : type == MetricType::kGauge ? &r.gauge_slots
                                             : &r.hist_slots;
    const int cap = type == MetricType::kCounter ? kMaxCounters
                    : type == MetricType::kGauge ? kMaxGauges
                                                 : kMaxHistograms;
    if (*next >= cap) throw std::runtime_error("obs: metric capacity exhausted for '" + name + "'");
    const int slot = (*next)++;
    r.by_name.emplace(name, static_cast<MetricId>(r.metrics.size()));
    r.metrics.push_back({name, type, slot});
    return make_id(type, slot);
}

}  // namespace

MetricId register_counter(const std::string& name) {
    return register_metric(name, MetricType::kCounter);
}
MetricId register_gauge(const std::string& name) {
    return register_metric(name, MetricType::kGauge);
}
MetricId register_histogram(const std::string& name) {
    return register_metric(name, MetricType::kHistogram);
}

void set_metrics_enabled(bool enabled) {
    reg().enabled.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() { return reg().enabled.load(std::memory_order_relaxed); }

void counter_add(MetricId id, long long delta) {
    Registry& r = reg();
    if (!r.enabled.load(std::memory_order_relaxed)) return;
    local_shard().counters[static_cast<std::size_t>(id_slot(id))].fetch_add(
        delta, std::memory_order_relaxed);
}

void gauge_set(MetricId id, double value) {
    Registry& r = reg();
    if (!r.enabled.load(std::memory_order_relaxed)) return;
    r.gauges[static_cast<std::size_t>(id_slot(id))].store(value, std::memory_order_relaxed);
}

void gauge_add(MetricId id, double delta) {
    Registry& r = reg();
    if (!r.enabled.load(std::memory_order_relaxed)) return;
    std::atomic<double>& g = r.gauges[static_cast<std::size_t>(id_slot(id))];
    double cur = g.load(std::memory_order_relaxed);
    while (!g.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
}

int histogram_bucket(long long value) {
    if (value <= 0) return 0;
    const int b = std::bit_width(static_cast<unsigned long long>(value));
    return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

void histogram_record(MetricId id, long long value) {
    Registry& r = reg();
    if (!r.enabled.load(std::memory_order_relaxed)) return;
    Shard::Hist& h = local_shard().hists[static_cast<std::size_t>(id_slot(id))];
    h.buckets[static_cast<std::size_t>(histogram_bucket(value))].fetch_add(
        1, std::memory_order_relaxed);
    h.sum.fetch_add(value, std::memory_order_relaxed);
}

std::vector<MetricSnapshot> snapshot_metrics() {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<MetricSnapshot> out;
    out.reserve(r.metrics.size());
    for (const MetricInfo& info : r.metrics) {
        MetricSnapshot s;
        s.name = info.name;
        s.type = info.type;
        const auto slot = static_cast<std::size_t>(info.slot);
        switch (info.type) {
            case MetricType::kCounter:
                for (const auto& shard : r.shards) {
                    s.counter += shard->counters[slot].load(std::memory_order_relaxed);
                }
                break;
            case MetricType::kGauge:
                s.gauge = r.gauges[slot].load(std::memory_order_relaxed);
                break;
            case MetricType::kHistogram:
                s.buckets.assign(kHistogramBuckets, 0);
                for (const auto& shard : r.shards) {
                    const Shard::Hist& h = shard->hists[slot];
                    for (int b = 0; b < kHistogramBuckets; ++b) {
                        s.buckets[static_cast<std::size_t>(b)] +=
                            h.buckets[static_cast<std::size_t>(b)].load(
                                std::memory_order_relaxed);
                    }
                    s.hist_sum += h.sum.load(std::memory_order_relaxed);
                }
                for (long long c : s.buckets) s.hist_count += c;
                break;
        }
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSnapshot& a, const MetricSnapshot& b) { return a.name < b.name; });
    return out;
}

const MetricSnapshot* find_metric(const std::vector<MetricSnapshot>& snap,
                                  const std::string& name) {
    for (const MetricSnapshot& s : snap) {
        if (s.name == name) return &s;
    }
    return nullptr;
}

void reset_metrics() {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto& g : r.gauges) g.store(0.0, std::memory_order_relaxed);
    for (const auto& shard : r.shards) {
        for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
        for (auto& h : shard->hists) {
            for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
            h.sum.store(0, std::memory_order_relaxed);
        }
    }
}

}  // namespace camo::obs
