#include "obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/file_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace camo::obs {
namespace {

// Metric/span names are programmer-chosen literals, but escape anyway so a
// stray quote can never produce an unparseable report.
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void append_number(std::string& out, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

void append_number(std::string& out, long long v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", v);
    out += buf;
}

}  // namespace

std::string render_metrics_json() {
    const std::vector<MetricSnapshot> snap = snapshot_metrics();
    std::string counters;
    std::string gauges;
    std::string histograms;
    for (const MetricSnapshot& m : snap) {
        switch (m.type) {
            case MetricType::kCounter: {
                if (!counters.empty()) counters += ",\n    ";
                counters += "\"" + json_escape(m.name) + "\": ";
                append_number(counters, m.counter);
                break;
            }
            case MetricType::kGauge: {
                if (!gauges.empty()) gauges += ",\n    ";
                gauges += "\"" + json_escape(m.name) + "\": ";
                append_number(gauges, m.gauge);
                break;
            }
            case MetricType::kHistogram: {
                if (!histograms.empty()) histograms += ",\n    ";
                histograms += "\"" + json_escape(m.name) + "\": {\"count\": ";
                append_number(histograms, m.hist_count);
                histograms += ", \"sum\": ";
                append_number(histograms, m.hist_sum);
                histograms += ", \"buckets\": [";
                bool first = true;
                for (int b = 0; b < kHistogramBuckets; ++b) {
                    const long long count = m.buckets[static_cast<std::size_t>(b)];
                    if (count == 0) continue;
                    if (!first) histograms += ", ";
                    first = false;
                    // Bucket b covers [2^(b-1), 2^b); bucket 0 covers <= 0.
                    histograms += "{\"lt\": ";
                    append_number(histograms,
                                  b == 0 ? 1.0 : std::ldexp(1.0, b));
                    histograms += ", \"count\": ";
                    append_number(histograms, count);
                    histograms += "}";
                }
                histograms += "]}";
                break;
            }
        }
    }
    std::string out = "{\n  \"counters\": {\n    " + counters + "\n  },\n";
    out += "  \"gauges\": {\n    " + gauges + "\n  },\n";
    out += "  \"histograms\": {\n    " + histograms + "\n  }\n}\n";
    return out;
}

std::string render_trace_json() {
    std::string events;
    const long long dropped = detail::visit_trace_events(
        [&events](int tid, const char* name, long long start_ns, long long dur_ns) {
            if (!events.empty()) events += ",\n";
            events += "    {\"name\": \"" + json_escape(name) + "\", \"ph\": \"X\", \"ts\": ";
            append_number(events, static_cast<double>(start_ns) / 1e3);
            events += ", \"dur\": ";
            append_number(events, static_cast<double>(dur_ns) / 1e3);
            events += ", \"pid\": 1, \"tid\": ";
            append_number(events, static_cast<long long>(tid));
            events += ", \"cat\": \"camo\"}";
        });
    std::string out = "{\n  \"traceEvents\": [\n" + events + "\n  ],\n";
    out += "  \"displayTimeUnit\": \"ms\",\n  \"droppedEvents\": ";
    append_number(out, dropped);
    out += "\n}\n";
    return out;
}

void write_metrics_json(const std::string& path) {
    write_text_atomic(path, render_metrics_json());
}

void write_trace_json(const std::string& path) {
    write_text_atomic(path, render_trace_json());
}

}  // namespace camo::obs
