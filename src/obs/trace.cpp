#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.hpp"

namespace camo::obs {
namespace {

struct TraceEvent {
    const char* name = nullptr;
    long long start_ns = 0;
    long long dur_ns = 0;
};

struct TraceBuffer {
    std::mutex mu;  // uncontended except against the exporter
    int tid = 0;
    std::vector<TraceEvent> ring;
    std::size_t written = 0;  ///< total events ever recorded
};

struct TraceRegistry {
    std::atomic<bool> enabled{false};
    std::mutex mu;  // guards the buffer list
    std::vector<std::unique_ptr<TraceBuffer>> buffers;
};

// Leaked for the same reason as the metrics registry: threads may record
// during static destruction.
TraceRegistry& reg() {
    static TraceRegistry* r = new TraceRegistry();
    return *r;
}

TraceBuffer& local_buffer() {
    thread_local TraceBuffer* buffer = [] {
        auto owned = std::make_unique<TraceBuffer>();
        owned->tid = stable_thread_id();
        owned->ring.resize(kTraceRingCapacity);
        TraceBuffer* p = owned.get();
        TraceRegistry& r = reg();
        std::lock_guard<std::mutex> lock(r.mu);
        r.buffers.push_back(std::move(owned));
        return p;
    }();
    return *buffer;
}

}  // namespace

void set_tracing_enabled(bool enabled) {
    if (enabled) (void)trace_now_ns();  // pin the epoch before the first span
    reg().enabled.store(enabled, std::memory_order_relaxed);
}

bool tracing_enabled() { return reg().enabled.load(std::memory_order_relaxed); }

long long trace_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - process_epoch())
        .count();
}

void record_span(const char* name, long long start_ns) {
    const long long end_ns = trace_now_ns();
    TraceBuffer& buf = local_buffer();
    std::lock_guard<std::mutex> lock(buf.mu);
    TraceEvent& e = buf.ring[buf.written % kTraceRingCapacity];
    e.name = name;
    e.start_ns = start_ns;
    e.dur_ns = end_ns - start_ns;
    ++buf.written;
}

void reset_trace() {
    TraceRegistry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& buf : r.buffers) {
        std::lock_guard<std::mutex> buf_lock(buf->mu);
        buf->written = 0;
    }
}

namespace detail {

// Export hook for report.cpp: visit every buffered event oldest-first per
// thread. Returns the total number of dropped (overwritten) events.
long long visit_trace_events(
    const std::function<void(int tid, const char* name, long long start_ns, long long dur_ns)>&
        visit) {
    TraceRegistry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    long long dropped = 0;
    for (const auto& buf : r.buffers) {
        std::lock_guard<std::mutex> buf_lock(buf->mu);
        const std::size_t kept = std::min(buf->written, kTraceRingCapacity);
        dropped += static_cast<long long>(buf->written - kept);
        const std::size_t begin = buf->written - kept;  // oldest surviving event
        for (std::size_t i = 0; i < kept; ++i) {
            const TraceEvent& e = buf->ring[(begin + i) % kTraceRingCapacity];
            visit(buf->tid, e.name, e.start_ns, e.dur_ns);
        }
    }
    return dropped;
}

}  // namespace detail

}  // namespace camo::obs
