// RAII span tracing into per-thread ring buffers, exported as Chrome
// trace-event JSON (load in Perfetto / chrome://tracing, "X" complete
// events).
//
// A Span samples the shared steady clock (common/logging.hpp's
// process_epoch, so trace timestamps line up with log prefixes) at
// construction and records {name, start, duration, tid} at destruction.
// Events land in a fixed-capacity per-thread ring (oldest overwritten, the
// drop count is reported in the export) guarded by a per-thread mutex that
// only the exporter ever contends — spans from different threads never
// share a lock. Disabled (the default), construction is one relaxed atomic
// load; tracing never feeds back into any computation, so results are
// bit-identical with tracing on or off.
//
// Span names must be string literals (or otherwise outlive the export):
// the ring stores the pointer, not a copy.
#pragma once

#include <functional>

#include "obs/metrics.hpp"

namespace camo::obs {

/// Events kept per thread; older events are overwritten once exceeded.
inline constexpr std::size_t kTraceRingCapacity = 1 << 16;

void set_tracing_enabled(bool enabled);
[[nodiscard]] bool tracing_enabled();

/// Record one complete event ending now (start_ns from trace_now_ns()).
/// Usually called via Span, exposed for irregular scopes.
void record_span(const char* name, long long start_ns);

/// Nanoseconds since the shared process epoch.
[[nodiscard]] long long trace_now_ns();

/// Discard all buffered events (buffers and thread ids survive). For tests
/// and run boundaries.
void reset_trace();

class Span {
public:
    /// `duration_hist` (optional) additionally records the span's duration
    /// in nanoseconds into that histogram when metrics are enabled — so the
    /// registry can answer "where did the time go" without a trace file.
    explicit Span(const char* name, MetricId duration_hist = -1)
        : hist_(duration_hist) {
        const bool trace = tracing_enabled();
        const bool meter = hist_ >= 0 && metrics_enabled();
        if (trace || meter) {
            name_ = trace ? name : nullptr;
            metered_ = meter;
            start_ns_ = trace_now_ns();
        }
    }

    ~Span() {
        if (name_ != nullptr) record_span(name_, start_ns_);
        if (metered_) histogram_record(hist_, trace_now_ns() - start_ns_);
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    const char* name_ = nullptr;  ///< non-null iff a trace event is armed
    long long start_ns_ = 0;
    MetricId hist_ = -1;
    bool metered_ = false;
};

namespace detail {

/// Visit every buffered event, oldest-first per thread, under the buffer
/// locks. Returns the number of events lost to ring overwrite. Used by the
/// trace exporter (obs/report.cpp) and tests.
long long visit_trace_events(
    const std::function<void(int tid, const char* name, long long start_ns, long long dur_ns)>&
        visit);

}  // namespace detail

}  // namespace camo::obs
