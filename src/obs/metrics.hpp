// Process-wide metrics registry: named counters, gauges, and fixed
// log2-bucket histograms.
//
// Design goals, in order:
//   1. Telemetry must never change results. Every primitive here only
//      observes — nothing reads a metric back into a computation — so the
//      batch/training determinism contracts (bit-identical outputs at any
//      thread count, telemetry on or off) hold by construction and are
//      pinned by tests/test_obs.cpp.
//   2. No hot-path locks. Counters and histograms write to thread-local
//      shards (relaxed atomics on thread-private cache lines, the same
//      per-worker idiom as the batch runtime's per-simulator counters);
//      shards are merged only at snapshot time. Gauges are single central
//      relaxed atomics (set/add), cheap enough for queue-depth style
//      signals.
//   3. Near-zero cost when disabled: one relaxed atomic load and a branch
//      (benchmarked by BM_CounterIncrement in bench_micro; the acceptance
//      bar is <= ~5 ns/op).
//
// Metric ids encode (type, slot) directly, so the hot path never touches
// the name table: register once (typically into a function-local static at
// the instrumentation site — registration is idempotent per name), then
// counter_add/gauge_set/histogram_record with the id. Names follow
// `<subsystem>.<noun>[.<qualifier>]`; duration histograms end in `.ns`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace camo::obs {

/// Fixed shard capacities. Registration past a cap throws — raise the cap
/// rather than growing shards at runtime, so the lock-free hot path never
/// races a reallocation.
inline constexpr int kMaxCounters = 256;
inline constexpr int kMaxGauges = 64;
inline constexpr int kMaxHistograms = 64;

/// Histogram buckets are powers of two: bucket b (b >= 1) counts values in
/// [2^(b-1), 2^b); bucket 0 counts values <= 0; the last bucket absorbs
/// everything beyond the range.
inline constexpr int kHistogramBuckets = 64;

enum class MetricType { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// Opaque metric handle: (type, slot) packed so recording needs no lookup.
using MetricId = std::int32_t;

/// Register (or look up — registration is idempotent per name) a metric.
/// Throws std::invalid_argument if the name is already registered with a
/// different type, std::runtime_error if the type's cap is exhausted.
MetricId register_counter(const std::string& name);
MetricId register_gauge(const std::string& name);
MetricId register_histogram(const std::string& name);

/// Master switch for counters/gauges/histograms. Disabled (the default),
/// every recording call is a relaxed load + branch.
void set_metrics_enabled(bool enabled);
[[nodiscard]] bool metrics_enabled();

void counter_add(MetricId id, long long delta = 1);
void gauge_set(MetricId id, double value);
void gauge_add(MetricId id, double delta);
void histogram_record(MetricId id, long long value);

/// Bucket index of `value` (exposed for tests): 0 for value <= 0, else
/// bit_width(value) clamped to the last bucket.
[[nodiscard]] int histogram_bucket(long long value);

/// RAII gauge delta: adds `delta` on construction and subtracts it on
/// destruction. The idiom behind in-flight style gauges (jobs currently
/// executing, requests currently admitted): exception-safe, and the gauge
/// returns to its baseline once every scope unwinds.
class ScopedGaugeAdd {
public:
    ScopedGaugeAdd(MetricId id, double delta) : id_(id), delta_(delta) { gauge_add(id_, delta_); }
    ~ScopedGaugeAdd() { gauge_add(id_, -delta_); }

    ScopedGaugeAdd(const ScopedGaugeAdd&) = delete;
    ScopedGaugeAdd& operator=(const ScopedGaugeAdd&) = delete;

private:
    MetricId id_;
    double delta_;
};

/// Point-in-time view of one metric, shards merged.
struct MetricSnapshot {
    std::string name;
    MetricType type = MetricType::kCounter;
    long long counter = 0;                 ///< kCounter
    double gauge = 0.0;                    ///< kGauge
    std::vector<long long> buckets;        ///< kHistogram: kHistogramBuckets counts
    long long hist_count = 0;              ///< kHistogram: total samples
    long long hist_sum = 0;                ///< kHistogram: sum of samples
};

/// Snapshot of every registered metric, sorted by name. Safe to call while
/// other threads record (relaxed reads; a racing increment lands in this
/// snapshot or the next, never nowhere).
std::vector<MetricSnapshot> snapshot_metrics();

/// The snapshot entry named `name`, or nullptr. Convenience for tests.
const MetricSnapshot* find_metric(const std::vector<MetricSnapshot>& snap,
                                  const std::string& name);

/// Zero every counter, gauge, and histogram (registrations survive). For
/// tests and run boundaries; do not call concurrently with recording if the
/// zeroed baseline must be exact.
void reset_metrics();

}  // namespace camo::obs
