// Paper Equation (3): the per-step reward combining EPE and PV-band
// improvement:
//   r_t = (|EPE_t| - |EPE_{t+1}|) / (|EPE_t| + eps)
//       + beta * (PVB_t - PVB_{t+1}) / PVB_t
// with eps = 0.1 and beta = 1 in the paper's setup.
//
// The window-aware extension scores a step on a full process-window sweep
// (litho::WindowMetrics) instead of the nominal corner: the |EPE| term reads
// the worst corner (or a weighted combination of corners) and the PV term
// the exact union-minus-intersection band. RewardMode::kNominal reduces
// bit-identically to step_reward on the nominal corner's metrics — the two
// formulas are the same function applied to the same doubles.
#pragma once

#include <string>
#include <vector>

#include "litho/process_window.hpp"

namespace camo::rl {

struct RewardConfig {
    double epsilon = 0.1;
    double beta = 1.0;
};

/// `epe_*` are the summed |EPE| of the whole layout before/after the step;
/// `pvb_*` the PV band areas. A non-positive PV band before the step
/// contributes no PV term (the paper's formula would divide by zero; this
/// situation means nothing printed yet, where EPE dominates anyway) — the
/// guard is explicit in the implementation and locked down by
/// tests/test_rl_reward.cpp. Throws std::invalid_argument on any non-finite
/// input, mirroring litho::WindowSpec::validate.
double step_reward(double epe_before, double epe_after, double pvb_before, double pvb_after,
                   const RewardConfig& cfg = {});

/// Which corner(s) of the process window the reward — and, through
/// opc::WindowObjective, the OPC engines' feedback — optimizes.
enum class RewardMode {
    kNominal,         ///< legacy Eq. (3): nominal corner only (bit-identical)
    kWorstCorner,     ///< |EPE| of the worst corner + exact PV band
    kWeightedCorner,  ///< weighted per-corner |EPE| + exact PV band
};

/// Short stable names ("nominal", "worst-corner", "weighted-corner") for
/// CLI flags, bench rows and logs.
const char* reward_mode_name(RewardMode mode);

/// Inverse of reward_mode_name, tolerant of the short aliases "worst" and
/// "weighted". Returns false (leaving `out` untouched) on any other string.
bool parse_reward_mode(const std::string& name, RewardMode& out);

struct WindowRewardConfig {
    RewardConfig base;  ///< epsilon / beta of the underlying Eq. (3)
    RewardMode mode = RewardMode::kNominal;

    /// kWeightedCorner only: per-corner weights in WindowSpec::corner order
    /// (empty = uniform). Must be finite, non-negative, and not all zero.
    std::vector<double> corner_weights;

    /// Throws std::invalid_argument on a non-finite or non-positive epsilon,
    /// a non-finite beta, or (in kWeightedCorner mode) weights that are
    /// non-finite, negative, all zero, or sized unlike `corner_count`.
    void validate(int corner_count) const;
};

/// The scalar |EPE| objective of a window under `cfg.mode`: the nominal
/// corner's sum |EPE| (throws std::invalid_argument if the window lacks the
/// (dose 1.0, best focus) corner), the worst corner's, or the
/// weighted-corner mean.
double window_objective_epe(const litho::WindowMetrics& wm, const WindowRewardConfig& cfg);

/// The scalar PV-band objective: in kNominal mode the legacy two-corner band
/// (the quantity the paper's reward consumes; falls back to the exact band
/// when the window lacks the standard focus planes), otherwise the exact
/// band over every corner.
double window_objective_pvb(const litho::WindowMetrics& wm, const WindowRewardConfig& cfg);

/// Window-aware step reward: Eq. (3) applied to the window objectives of the
/// before/after sweeps. With cfg.mode == kNominal this is bit-identical to
/// step_reward(nominal |EPE| before/after, two-corner PVB before/after).
double window_step_reward(const litho::WindowMetrics& before, const litho::WindowMetrics& after,
                          const WindowRewardConfig& cfg = {});

}  // namespace camo::rl
