// Paper Equation (3): the per-step reward combining EPE and PV-band
// improvement:
//   r_t = (|EPE_t| - |EPE_{t+1}|) / (|EPE_t| + eps)
//       + beta * (PVB_t - PVB_{t+1}) / PVB_t
// with eps = 0.1 and beta = 1 in the paper's setup.
#pragma once

namespace camo::rl {

struct RewardConfig {
    double epsilon = 0.1;
    double beta = 1.0;
};

/// `epe_*` are the summed |EPE| of the whole layout before/after the step;
/// `pvb_*` the PV band areas. A zero PV band before the step contributes no
/// PV term (the paper's formula would divide by zero; this situation means
/// nothing printed yet, where EPE dominates anyway).
double step_reward(double epe_before, double epe_after, double pvb_before, double pvb_after,
                   const RewardConfig& cfg = {});

}  // namespace camo::rl
