// Packed on-disk trajectory store: collect-once / replay-many teacher data.
//
// Teacher trajectories used to live only as transient in-memory objects, so
// every training run paid the full collection cost and training scale was
// capped at one process. The store decouples the two: N collectors append
// trajectories (plus their squish-encoded per-step states) into one packed
// binary file, and any number of trainers replay phase-1 minibatches
// straight from a memory mapping — zero-copy, byte-identical to in-memory
// training.
//
// File layout (version 1, all little-endian, every struct #pragma pack(1)):
//
//   StoreHeader                         magic 'CTRJ', version, section counts
//   PackedTraj  [traj_count]            fixed-width trajectory records
//   PackedStep  [step_count]            fixed-width step records
//   PackedState [state_count]           deduped (clip, offsets) state table
//   f64 heap    [f64_count]             per-corner |EPE| vectors
//   f32 heap    [f32_count]             squish feature tensors
//   i32 heap    [i32_count]             segment-offset vectors
//   u8  heap    [u8_count]              action bytes (one per segment)
//   StoreFooter                         end marker + FNV-1a payload hash
//
// Section order keeps every heap naturally aligned in the mapping (doubles
// on 8, floats/ints on 4), so readers hand out spans over the raw bytes.
//
// Dedupe: steps reference states through a (clip_index, offsets)-keyed
// table — the rule teacher revisits converged states constantly (with
// early_exit off, a converged trajectory repeats its final offsets every
// remaining step), so repeated squish encodings are stored exactly once.
//
// Atomicity / torn-tail contract: the writer buffers appended records and
// each flush() publishes the ENTIRE store via write-to-tmp + atomic rename
// (camo::write_text_atomic), so a reader never observes a partial chunk; a
// crash loses at most the records appended since the last flush. On open
// the reader verifies magic, version, exact section-derived file size, the
// footer end marker and the payload hash, then bounds-checks every record's
// heap references and re-derives every state's dedupe key — truncated,
// torn, concatenated or bit-flipped files fail with a typed TrajStoreError
// (reason + byte offset), never a misread.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/tensor.hpp"
#include "rl/trajectory.hpp"

namespace camo::rl {

/// Typed parse/validation failure, in the spirit of layout::GdsParseError:
/// carries the byte offset of the offending structure.
class TrajStoreError : public std::runtime_error {
public:
    TrajStoreError(const std::string& what, std::uint64_t offset)
        : std::runtime_error("trajstore: " + what + " (at byte " + std::to_string(offset) + ")"),
          offset_(offset) {}

    [[nodiscard]] std::uint64_t offset() const { return offset_; }

private:
    std::uint64_t offset_;
};

#pragma pack(push, 1)

struct StoreHeader {
    std::uint32_t magic = 0;    ///< kStoreMagic
    std::uint32_t version = 0;  ///< kStoreVersion
    std::uint64_t traj_count = 0;
    std::uint64_t step_count = 0;
    std::uint64_t state_count = 0;
    std::uint64_t f64_count = 0;  ///< corner-|EPE| heap entries
    std::uint64_t f32_count = 0;  ///< feature heap floats
    std::uint64_t i32_count = 0;  ///< offset heap entries
    std::uint64_t u8_count = 0;   ///< action heap bytes
    /// Squish feature tensor shape shared by every state ({6, size, size});
    /// all-zero in a featureless store (raw trajectories only, no replay).
    std::uint32_t feature_dims[3] = {0, 0, 0};
    /// Caller-chosen provenance hash of the clip set the store was collected
    /// on (generator style, seed, clip count, ...). Replay validates it so a
    /// store is never silently trained against the wrong clips.
    std::uint64_t dataset_tag = 0;
    std::uint32_t reserved = 0;
};
static_assert(sizeof(StoreHeader) == 88);

/// One deduped mask state: the segment offsets and (optionally) the
/// squish-encoded per-segment feature tensors observed at those offsets.
struct PackedState {
    std::int32_t clip_index = 0;
    std::int32_t num_segments = 0;
    std::uint64_t offsets_pos = 0;   ///< i32 heap index, length num_segments
    std::uint64_t features_pos = 0;  ///< f32 heap index, num_segments * feature_numel
    std::uint64_t key_hash = 0;      ///< state_key_hash(clip_index, offsets)
};
static_assert(sizeof(PackedState) == 32);

struct PackedStep {
    std::uint64_t state_id = 0;    ///< index into the state table
    std::uint64_t actions_pos = 0; ///< u8 heap index, length = state.num_segments
    double sum_abs_epe_before = 0.0;
    double pvband_before = 0.0;
    double worst_epe_before = 0.0;
    double pv_band_exact_before = 0.0;
    std::uint64_t corner_pos = 0;  ///< f64 heap index
    std::uint32_t corner_count = 0;
    std::uint32_t reserved = 0;
};
static_assert(sizeof(PackedStep) == 64);

struct PackedTraj {
    std::int32_t clip_index = 0;
    std::int32_t initial_bias_nm = 0;
    std::uint64_t step_begin = 0;  ///< index into the step table (contiguous)
    std::uint32_t step_count = 0;
    std::uint32_t reserved = 0;
    double final_sum_abs_epe = 0.0;
    double final_pvband = 0.0;
    double final_worst_epe = 0.0;
    double final_pv_band_exact = 0.0;
    std::uint64_t final_corner_pos = 0;  ///< f64 heap index
    std::uint32_t final_corner_count = 0;
    std::uint32_t reserved2 = 0;
};
static_assert(sizeof(PackedTraj) == 72);

struct StoreFooter {
    std::uint32_t magic = 0;  ///< kStoreEndMagic — torn-tail sentinel
    std::uint32_t reserved = 0;
    std::uint64_t payload_hash = 0;  ///< store_payload_hash over [0, footer)
};
static_assert(sizeof(StoreFooter) == 16);

#pragma pack(pop)

inline constexpr std::uint32_t kStoreMagic = 0x4A525443U;     // "CTRJ"
inline constexpr std::uint32_t kStoreEndMagic = 0x43545246U;  // "FRTC"
inline constexpr std::uint32_t kStoreVersion = 1;

/// FNV-1a 64 over a byte range; the footer seals the whole payload with it.
/// Exposed so tests can re-seal deliberately corrupted stores and exercise
/// the structural validators behind the checksum gate.
[[nodiscard]] std::uint64_t store_payload_hash(std::span<const char> payload);

/// Dedupe key of a mask state: FNV-1a over clip_index then the offsets.
/// Stored per state and re-derived on open, so an index entry that no
/// longer matches its heap data (bit rot, bad concatenation) is rejected.
[[nodiscard]] std::uint64_t state_key_hash(std::int32_t clip_index,
                                           std::span<const std::int32_t> offsets);

/// Append-only store writer. Records accumulate in memory in append order
/// (the caller is responsible for canonical clip-major / bias-minor order —
/// CamoEngine::collect_teacher_data's gathered job order provides it, which
/// is what makes the file bytes worker-count independent); flush() publishes
/// everything appended so far as one complete, validated file via atomic
/// rename. States are deduped on (clip_index, offsets) as they arrive.
class TrajStoreWriter {
public:
    explicit TrajStoreWriter(std::string path, std::uint64_t dataset_tag = 0);

    /// Append one trajectory. `step_features[t]` holds the per-segment
    /// squish tensors of steps[t] (same tensor shape everywhere); pass an
    /// empty span for a featureless store (no replay, raw records only).
    /// Throws std::invalid_argument on malformed input (step/feature count
    /// mismatch, offsets/actions length mismatch, inconsistent shapes).
    void append(const Trajectory& traj,
                std::span<const std::span<const nn::Tensor>> step_features = {});

    /// Atomically publish all records appended so far (write tmp + rename).
    /// Throws std::runtime_error on I/O failure.
    void flush();

    [[nodiscard]] const std::string& path() const { return path_; }
    [[nodiscard]] std::uint64_t trajectories() const { return trajs_.size(); }
    [[nodiscard]] std::uint64_t steps() const { return steps_.size(); }
    [[nodiscard]] std::uint64_t states() const { return states_.size(); }
    /// Steps that reused an already-stored state.
    [[nodiscard]] std::uint64_t dedupe_hits() const { return dedupe_hits_; }
    /// Serialized size of the store as of the last append.
    [[nodiscard]] std::uint64_t byte_size() const;

private:
    std::uint64_t intern_state(std::int32_t clip_index, std::span<const int> offsets,
                               std::span<const nn::Tensor> features);

    std::string path_;
    std::uint64_t dataset_tag_ = 0;
    std::uint32_t feature_dims_[3] = {0, 0, 0};
    std::vector<PackedTraj> trajs_;
    std::vector<PackedStep> steps_;
    std::vector<PackedState> states_;
    std::vector<double> f64_heap_;
    std::vector<float> f32_heap_;
    std::vector<std::int32_t> i32_heap_;
    std::vector<std::uint8_t> u8_heap_;
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> dedupe_;  ///< hash -> state ids
    std::uint64_t dedupe_hits_ = 0;
};

/// Memory-mapped zero-copy reader. The constructor maps the file and fully
/// validates it (see the torn-tail contract above); accessors then return
/// views straight into the mapping, valid for the reader's lifetime.
class TrajStoreReader {
public:
    explicit TrajStoreReader(const std::string& path);  ///< throws TrajStoreError
    ~TrajStoreReader();

    TrajStoreReader(TrajStoreReader&&) noexcept;
    TrajStoreReader& operator=(TrajStoreReader&&) noexcept;
    TrajStoreReader(const TrajStoreReader&) = delete;
    TrajStoreReader& operator=(const TrajStoreReader&) = delete;

    [[nodiscard]] std::uint64_t traj_count() const { return header_->traj_count; }
    [[nodiscard]] std::uint64_t step_count() const { return header_->step_count; }
    [[nodiscard]] std::uint64_t state_count() const { return header_->state_count; }
    [[nodiscard]] std::uint64_t dataset_tag() const { return header_->dataset_tag; }
    /// {0,0,0} in a featureless store.
    [[nodiscard]] std::array<std::uint32_t, 3> feature_dims() const;
    [[nodiscard]] std::uint64_t feature_numel() const;
    [[nodiscard]] std::uint64_t file_bytes() const { return size_; }

    struct StateView {
        std::int32_t clip_index = 0;
        std::span<const std::int32_t> offsets;
        std::span<const float> features;  ///< empty in a featureless store
    };
    struct StepView {
        std::uint64_t state_id = 0;
        std::span<const std::uint8_t> actions;
        double sum_abs_epe_before = 0.0;
        double pvband_before = 0.0;
        double worst_epe_before = 0.0;
        double pv_band_exact_before = 0.0;
        std::span<const double> corner_epe_before;
    };
    struct TrajView {
        std::int32_t clip_index = 0;
        std::int32_t initial_bias_nm = 0;
        std::uint64_t step_begin = 0;
        std::uint32_t steps = 0;
        double final_sum_abs_epe = 0.0;
        double final_pvband = 0.0;
        double final_worst_epe = 0.0;
        double final_pv_band_exact = 0.0;
        std::span<const double> final_corner_epe;
    };

    [[nodiscard]] StateView state(std::uint64_t id) const;
    [[nodiscard]] StepView step(std::uint64_t i) const;
    [[nodiscard]] TrajView traj(std::uint64_t i) const;

    /// Full in-memory reconstruction of trajectory `i` (offsets copied back
    /// from the deduped state table), inverse of TrajStoreWriter::append.
    [[nodiscard]] Trajectory decode(std::uint64_t i) const;

private:
    void validate() const;

    const StoreHeader* header_ = nullptr;
    const PackedTraj* trajs_ = nullptr;
    const PackedStep* steps_ = nullptr;
    const PackedState* states_ = nullptr;
    const double* f64_heap_ = nullptr;
    const float* f32_heap_ = nullptr;
    const std::int32_t* i32_heap_ = nullptr;
    const std::uint8_t* u8_heap_ = nullptr;
    void* map_ = nullptr;
    std::uint64_t size_ = 0;
};

}  // namespace camo::rl
