#include "rl/trajstore.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/file_io.hpp"

namespace camo::rl {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

template <typename T>
void append_raw(std::string& out, const T* data, std::size_t count) {
    out.append(reinterpret_cast<const char*>(data), count * sizeof(T));
}

}  // namespace

std::uint64_t store_payload_hash(std::span<const char> payload) {
    return fnv1a(kFnvOffset, payload.data(), payload.size());
}

std::uint64_t state_key_hash(std::int32_t clip_index, std::span<const std::int32_t> offsets) {
    std::uint64_t h = fnv1a(kFnvOffset, &clip_index, sizeof clip_index);
    return fnv1a(h, offsets.data(), offsets.size() * sizeof(std::int32_t));
}

// ---- Writer ----------------------------------------------------------------

TrajStoreWriter::TrajStoreWriter(std::string path, std::uint64_t dataset_tag)
    : path_(std::move(path)), dataset_tag_(dataset_tag) {}

std::uint64_t TrajStoreWriter::intern_state(std::int32_t clip_index, std::span<const int> offsets,
                                            std::span<const nn::Tensor> features) {
    // The Trajectory's int offsets are stored as i32; on every supported
    // platform int IS 32-bit, but copy explicitly rather than alias.
    std::vector<std::int32_t> off32(offsets.begin(), offsets.end());
    const std::uint64_t key = state_key_hash(clip_index, off32);

    auto& bucket = dedupe_[key];
    for (const std::uint64_t id : bucket) {
        const PackedState& s = states_[id];
        if (s.clip_index != clip_index ||
            s.num_segments != static_cast<std::int32_t>(off32.size())) {
            continue;
        }
        if (std::memcmp(i32_heap_.data() + s.offsets_pos, off32.data(),
                        off32.size() * sizeof(std::int32_t)) == 0) {
            ++dedupe_hits_;
            return id;
        }
    }

    PackedState s;
    s.clip_index = clip_index;
    s.num_segments = static_cast<std::int32_t>(off32.size());
    s.offsets_pos = i32_heap_.size();
    s.key_hash = key;
    i32_heap_.insert(i32_heap_.end(), off32.begin(), off32.end());

    if (!features.empty()) {
        if (features.size() != off32.size()) {
            throw std::invalid_argument("TrajStoreWriter: one feature tensor per segment required");
        }
        const auto& shape = features.front().shape();
        std::uint32_t dims[3] = {0, 0, 0};
        if (shape.size() != 3) {
            throw std::invalid_argument("TrajStoreWriter: feature tensors must be rank 3");
        }
        for (int d = 0; d < 3; ++d) {
            dims[d] = static_cast<std::uint32_t>(shape[static_cast<std::size_t>(d)]);
        }
        // The first featureful state fixes the store-wide tensor shape; a
        // featureful append into a store that already interned featureless
        // states would leave those states without data, so reject it.
        if (feature_dims_[0] == 0 && feature_dims_[1] == 0 && feature_dims_[2] == 0) {
            if (!states_.empty()) {
                throw std::invalid_argument(
                    "TrajStoreWriter: featureful append into a featureless store");
            }
            feature_dims_[0] = dims[0];
            feature_dims_[1] = dims[1];
            feature_dims_[2] = dims[2];
        }
        if (dims[0] != feature_dims_[0] || dims[1] != feature_dims_[1] ||
            dims[2] != feature_dims_[2]) {
            throw std::invalid_argument("TrajStoreWriter: inconsistent feature tensor shape");
        }
        s.features_pos = f32_heap_.size();
        for (const nn::Tensor& t : features) {
            if (t.shape() != shape) {
                throw std::invalid_argument("TrajStoreWriter: inconsistent feature tensor shape");
            }
            f32_heap_.insert(f32_heap_.end(), t.data().begin(), t.data().end());
        }
    } else if (feature_dims_[0] != 0 && !off32.empty()) {
        throw std::invalid_argument(
            "TrajStoreWriter: featureless append into a store holding features");
    }

    const std::uint64_t id = states_.size();
    states_.push_back(s);
    bucket.push_back(id);
    return id;
}

void TrajStoreWriter::append(const Trajectory& traj,
                             std::span<const std::span<const nn::Tensor>> step_features) {
    // Validate the WHOLE trajectory before mutating any table or heap: a
    // throwing append must leave the writer exactly as it was, so the caller
    // can drop the bad record and keep collecting.
    const bool featureful = !step_features.empty();
    if (featureful && step_features.size() != traj.steps.size()) {
        throw std::invalid_argument("TrajStoreWriter: step_features/steps size mismatch");
    }
    std::uint32_t want_dims[3] = {feature_dims_[0], feature_dims_[1], feature_dims_[2]};
    for (std::size_t i = 0; i < traj.steps.size(); ++i) {
        const StepRecord& rec = traj.steps[i];
        if (rec.actions.size() != rec.offsets_before.size()) {
            throw std::invalid_argument("TrajStoreWriter: offsets/actions length mismatch");
        }
        for (const int a : rec.actions) {
            if (a < 0 || a >= kNumActions) {
                throw std::invalid_argument("TrajStoreWriter: action index out of range");
            }
        }
        if (featureful) {
            const std::span<const nn::Tensor> feats = step_features[i];
            if (feats.size() != rec.offsets_before.size()) {
                throw std::invalid_argument(
                    "TrajStoreWriter: one feature tensor per segment required");
            }
            if (!feats.empty() && want_dims[0] == 0 && want_dims[1] == 0 && want_dims[2] == 0 &&
                !states_.empty()) {
                throw std::invalid_argument(
                    "TrajStoreWriter: featureful append into a featureless store");
            }
            for (const nn::Tensor& f : feats) {
                const auto& shape = f.shape();
                if (shape.size() != 3) {
                    throw std::invalid_argument("TrajStoreWriter: feature tensors must be rank 3");
                }
                if (want_dims[0] == 0 && want_dims[1] == 0 && want_dims[2] == 0) {
                    for (int d = 0; d < 3; ++d) {
                        want_dims[d] =
                            static_cast<std::uint32_t>(shape[static_cast<std::size_t>(d)]);
                    }
                }
                if (static_cast<std::uint32_t>(shape[0]) != want_dims[0] ||
                    static_cast<std::uint32_t>(shape[1]) != want_dims[1] ||
                    static_cast<std::uint32_t>(shape[2]) != want_dims[2]) {
                    throw std::invalid_argument(
                        "TrajStoreWriter: inconsistent feature tensor shape");
                }
            }
        } else if (feature_dims_[0] != 0 && !rec.offsets_before.empty()) {
            throw std::invalid_argument(
                "TrajStoreWriter: featureless append into a store holding features");
        }
    }

    PackedTraj t;
    t.clip_index = traj.clip_index;
    t.initial_bias_nm = traj.initial_bias_nm;
    t.step_begin = steps_.size();
    t.step_count = static_cast<std::uint32_t>(traj.steps.size());
    t.final_sum_abs_epe = traj.final_sum_abs_epe;
    t.final_pvband = traj.final_pvband;
    t.final_worst_epe = traj.final_worst_epe;
    t.final_pv_band_exact = traj.final_pv_band_exact;
    t.final_corner_pos = f64_heap_.size();
    t.final_corner_count = static_cast<std::uint32_t>(traj.final_corner_epe.size());
    f64_heap_.insert(f64_heap_.end(), traj.final_corner_epe.begin(), traj.final_corner_epe.end());

    for (std::size_t i = 0; i < traj.steps.size(); ++i) {
        const StepRecord& rec = traj.steps[i];
        if (rec.actions.size() != rec.offsets_before.size()) {
            throw std::invalid_argument("TrajStoreWriter: offsets/actions length mismatch");
        }
        PackedStep s;
        s.state_id = intern_state(traj.clip_index, rec.offsets_before,
                                  step_features.empty() ? std::span<const nn::Tensor>{}
                                                        : step_features[i]);
        s.actions_pos = u8_heap_.size();
        for (const int a : rec.actions) {
            if (a < 0 || a >= kNumActions) {
                throw std::invalid_argument("TrajStoreWriter: action index out of range");
            }
            u8_heap_.push_back(static_cast<std::uint8_t>(a));
        }
        s.sum_abs_epe_before = rec.sum_abs_epe_before;
        s.pvband_before = rec.pvband_before;
        s.worst_epe_before = rec.worst_epe_before;
        s.pv_band_exact_before = rec.pv_band_exact_before;
        s.corner_pos = f64_heap_.size();
        s.corner_count = static_cast<std::uint32_t>(rec.corner_epe_before.size());
        f64_heap_.insert(f64_heap_.end(), rec.corner_epe_before.begin(),
                         rec.corner_epe_before.end());
        steps_.push_back(s);
    }
    trajs_.push_back(t);
}

std::uint64_t TrajStoreWriter::byte_size() const {
    return sizeof(StoreHeader) + trajs_.size() * sizeof(PackedTraj) +
           steps_.size() * sizeof(PackedStep) + states_.size() * sizeof(PackedState) +
           f64_heap_.size() * sizeof(double) + f32_heap_.size() * sizeof(float) +
           i32_heap_.size() * sizeof(std::int32_t) + u8_heap_.size() + sizeof(StoreFooter);
}

void TrajStoreWriter::flush() {
    StoreHeader h;
    h.magic = kStoreMagic;
    h.version = kStoreVersion;
    h.traj_count = trajs_.size();
    h.step_count = steps_.size();
    h.state_count = states_.size();
    h.f64_count = f64_heap_.size();
    h.f32_count = f32_heap_.size();
    h.i32_count = i32_heap_.size();
    h.u8_count = u8_heap_.size();
    h.feature_dims[0] = feature_dims_[0];
    h.feature_dims[1] = feature_dims_[1];
    h.feature_dims[2] = feature_dims_[2];
    h.dataset_tag = dataset_tag_;

    std::string buf;
    buf.reserve(byte_size());
    append_raw(buf, &h, 1);
    append_raw(buf, trajs_.data(), trajs_.size());
    append_raw(buf, steps_.data(), steps_.size());
    append_raw(buf, states_.data(), states_.size());
    append_raw(buf, f64_heap_.data(), f64_heap_.size());
    append_raw(buf, f32_heap_.data(), f32_heap_.size());
    append_raw(buf, i32_heap_.data(), i32_heap_.size());
    append_raw(buf, u8_heap_.data(), u8_heap_.size());

    StoreFooter f;
    f.magic = kStoreEndMagic;
    f.payload_hash = store_payload_hash(buf);
    append_raw(buf, &f, 1);

    write_text_atomic(path_, buf);
}

// ---- Reader ----------------------------------------------------------------

TrajStoreReader::TrajStoreReader(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw TrajStoreError("cannot open '" + path + "'", 0);
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        throw TrajStoreError("cannot stat '" + path + "'", 0);
    }
    size_ = static_cast<std::uint64_t>(st.st_size);
    if (size_ < sizeof(StoreHeader) + sizeof(StoreFooter)) {
        ::close(fd);
        throw TrajStoreError("truncated header: file is " + std::to_string(size_) + " bytes",
                             size_);
    }
    map_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map_ == MAP_FAILED) {
        map_ = nullptr;
        throw TrajStoreError("mmap failed for '" + path + "'", 0);
    }

    const char* base = static_cast<const char*>(map_);
    header_ = reinterpret_cast<const StoreHeader*>(base);
    try {
        if (header_->magic != kStoreMagic) throw TrajStoreError("bad magic", 0);
        if (header_->version != kStoreVersion) {
            throw TrajStoreError("unsupported version " + std::to_string(header_->version), 4);
        }
        // Exact size check before touching any section: every count claims
        // at least one byte per element, so a count beyond the file size is
        // already invalid — that also makes the multiply-free overflow guard.
        const StoreHeader& h = *header_;
        const std::uint64_t counts[] = {h.traj_count, h.step_count, h.state_count,
                                        h.f64_count,  h.f32_count,  h.i32_count,
                                        h.u8_count};
        for (const std::uint64_t c : counts) {
            if (c > size_) throw TrajStoreError("section count exceeds file size", 0);
        }
        const std::uint64_t expected =
            sizeof(StoreHeader) + h.traj_count * sizeof(PackedTraj) +
            h.step_count * sizeof(PackedStep) + h.state_count * sizeof(PackedState) +
            h.f64_count * sizeof(double) + h.f32_count * sizeof(float) +
            h.i32_count * sizeof(std::int32_t) + h.u8_count + sizeof(StoreFooter);
        if (size_ < expected) {
            throw TrajStoreError("torn tail: file is " + std::to_string(size_) +
                                     " bytes, sections claim " + std::to_string(expected),
                                 size_);
        }
        if (size_ > expected) {
            throw TrajStoreError("trailing bytes: file is " + std::to_string(size_) +
                                     " bytes, sections claim " + std::to_string(expected),
                                 expected);
        }

        std::uint64_t off = sizeof(StoreHeader);
        trajs_ = reinterpret_cast<const PackedTraj*>(base + off);
        off += h.traj_count * sizeof(PackedTraj);
        steps_ = reinterpret_cast<const PackedStep*>(base + off);
        off += h.step_count * sizeof(PackedStep);
        states_ = reinterpret_cast<const PackedState*>(base + off);
        off += h.state_count * sizeof(PackedState);
        f64_heap_ = reinterpret_cast<const double*>(base + off);
        off += h.f64_count * sizeof(double);
        f32_heap_ = reinterpret_cast<const float*>(base + off);
        off += h.f32_count * sizeof(float);
        i32_heap_ = reinterpret_cast<const std::int32_t*>(base + off);
        off += h.i32_count * sizeof(std::int32_t);
        u8_heap_ = reinterpret_cast<const std::uint8_t*>(base + off);
        off += h.u8_count;

        const StoreFooter* footer = reinterpret_cast<const StoreFooter*>(base + off);
        if (footer->magic != kStoreEndMagic) {
            throw TrajStoreError("torn tail: bad end marker", off);
        }
        if (footer->payload_hash != store_payload_hash({base, off})) {
            throw TrajStoreError("payload checksum mismatch", off + 8);
        }

        validate();
    } catch (...) {
        ::munmap(map_, size_);
        map_ = nullptr;
        throw;
    }
}

void TrajStoreReader::validate() const {
    const StoreHeader& h = *header_;
    const std::uint64_t numel = feature_numel();
    const char* base = static_cast<const char*>(map_);

    for (std::uint64_t i = 0; i < h.state_count; ++i) {
        const PackedState& s = states_[i];
        const std::uint64_t off =
            static_cast<std::uint64_t>(reinterpret_cast<const char*>(&s) - base);
        if (s.num_segments < 0) throw TrajStoreError("ragged state: negative segment count", off);
        const auto n = static_cast<std::uint64_t>(s.num_segments);
        if (s.offsets_pos > h.i32_count || n > h.i32_count - s.offsets_pos) {
            throw TrajStoreError("ragged state: offsets out of heap bounds", off);
        }
        if (numel > 0) {
            if (s.features_pos > h.f32_count || n * numel > h.f32_count - s.features_pos) {
                throw TrajStoreError("ragged state: features out of heap bounds", off);
            }
        }
        const std::uint64_t key = state_key_hash(
            s.clip_index, {i32_heap_ + s.offsets_pos, static_cast<std::size_t>(s.num_segments)});
        if (key != s.key_hash) {
            throw TrajStoreError("dedupe index mismatch: state key hash does not match offsets",
                                 off);
        }
    }

    for (std::uint64_t i = 0; i < h.step_count; ++i) {
        const PackedStep& s = steps_[i];
        const std::uint64_t off =
            static_cast<std::uint64_t>(reinterpret_cast<const char*>(&s) - base);
        if (s.state_id >= h.state_count) {
            throw TrajStoreError("ragged step: state id out of range", off);
        }
        const auto n = static_cast<std::uint64_t>(states_[s.state_id].num_segments);
        if (s.actions_pos > h.u8_count || n > h.u8_count - s.actions_pos) {
            throw TrajStoreError("ragged step: actions out of heap bounds", off);
        }
        for (std::uint64_t a = 0; a < n; ++a) {
            if (u8_heap_[s.actions_pos + a] >= kNumActions) {
                throw TrajStoreError("ragged step: action index out of range", off);
            }
        }
        if (s.corner_pos > h.f64_count || s.corner_count > h.f64_count - s.corner_pos) {
            throw TrajStoreError("ragged step: corner range out of heap bounds", off);
        }
    }

    std::uint64_t next_step = 0;
    for (std::uint64_t i = 0; i < h.traj_count; ++i) {
        const PackedTraj& t = trajs_[i];
        const std::uint64_t off =
            static_cast<std::uint64_t>(reinterpret_cast<const char*>(&t) - base);
        // Append-only invariant: trajectory step ranges tile the step table
        // in order, so replay order is exactly append order.
        if (t.step_begin != next_step || t.step_count > h.step_count - t.step_begin) {
            throw TrajStoreError("ragged trajectory: step range is not contiguous", off);
        }
        next_step = t.step_begin + t.step_count;
        if (t.final_corner_pos > h.f64_count ||
            t.final_corner_count > h.f64_count - t.final_corner_pos) {
            throw TrajStoreError("ragged trajectory: final corner range out of heap bounds", off);
        }
    }
    if (next_step != h.step_count) {
        throw TrajStoreError("ragged trajectory table: step table has orphan records",
                             sizeof(StoreHeader));
    }
}

TrajStoreReader::~TrajStoreReader() {
    if (map_ != nullptr) ::munmap(map_, size_);
}

TrajStoreReader::TrajStoreReader(TrajStoreReader&& other) noexcept { *this = std::move(other); }

TrajStoreReader& TrajStoreReader::operator=(TrajStoreReader&& other) noexcept {
    if (this != &other) {
        if (map_ != nullptr) ::munmap(map_, size_);
        header_ = other.header_;
        trajs_ = other.trajs_;
        steps_ = other.steps_;
        states_ = other.states_;
        f64_heap_ = other.f64_heap_;
        f32_heap_ = other.f32_heap_;
        i32_heap_ = other.i32_heap_;
        u8_heap_ = other.u8_heap_;
        map_ = other.map_;
        size_ = other.size_;
        other.map_ = nullptr;
        other.size_ = 0;
        other.header_ = nullptr;
    }
    return *this;
}

std::array<std::uint32_t, 3> TrajStoreReader::feature_dims() const {
    return {header_->feature_dims[0], header_->feature_dims[1], header_->feature_dims[2]};
}

std::uint64_t TrajStoreReader::feature_numel() const {
    return static_cast<std::uint64_t>(header_->feature_dims[0]) * header_->feature_dims[1] *
           header_->feature_dims[2];
}

TrajStoreReader::StateView TrajStoreReader::state(std::uint64_t id) const {
    const PackedState& s = states_[id];
    const auto n = static_cast<std::size_t>(s.num_segments);
    StateView v;
    v.clip_index = s.clip_index;
    v.offsets = {i32_heap_ + s.offsets_pos, n};
    const std::uint64_t numel = feature_numel();
    if (numel > 0) v.features = {f32_heap_ + s.features_pos, n * numel};
    return v;
}

TrajStoreReader::StepView TrajStoreReader::step(std::uint64_t i) const {
    const PackedStep& s = steps_[i];
    const auto n = static_cast<std::size_t>(states_[s.state_id].num_segments);
    StepView v;
    v.state_id = s.state_id;
    v.actions = {u8_heap_ + s.actions_pos, n};
    v.sum_abs_epe_before = s.sum_abs_epe_before;
    v.pvband_before = s.pvband_before;
    v.worst_epe_before = s.worst_epe_before;
    v.pv_band_exact_before = s.pv_band_exact_before;
    v.corner_epe_before = {f64_heap_ + s.corner_pos, s.corner_count};
    return v;
}

TrajStoreReader::TrajView TrajStoreReader::traj(std::uint64_t i) const {
    const PackedTraj& t = trajs_[i];
    TrajView v;
    v.clip_index = t.clip_index;
    v.initial_bias_nm = t.initial_bias_nm;
    v.step_begin = t.step_begin;
    v.steps = t.step_count;
    v.final_sum_abs_epe = t.final_sum_abs_epe;
    v.final_pvband = t.final_pvband;
    v.final_worst_epe = t.final_worst_epe;
    v.final_pv_band_exact = t.final_pv_band_exact;
    v.final_corner_epe = {f64_heap_ + t.final_corner_pos, t.final_corner_count};
    return v;
}

Trajectory TrajStoreReader::decode(std::uint64_t i) const {
    const TrajView t = traj(i);
    Trajectory out;
    out.clip_index = t.clip_index;
    out.initial_bias_nm = t.initial_bias_nm;
    out.final_sum_abs_epe = t.final_sum_abs_epe;
    out.final_pvband = t.final_pvband;
    out.final_worst_epe = t.final_worst_epe;
    out.final_pv_band_exact = t.final_pv_band_exact;
    out.final_corner_epe.assign(t.final_corner_epe.begin(), t.final_corner_epe.end());
    out.steps.reserve(t.steps);
    for (std::uint64_t k = 0; k < t.steps; ++k) {
        const StepView s = step(t.step_begin + k);
        const StateView st = state(s.state_id);
        StepRecord rec;
        rec.offsets_before.assign(st.offsets.begin(), st.offsets.end());
        rec.actions.reserve(s.actions.size());
        for (const std::uint8_t a : s.actions) rec.actions.push_back(a);
        rec.sum_abs_epe_before = s.sum_abs_epe_before;
        rec.pvband_before = s.pvband_before;
        rec.worst_epe_before = s.worst_epe_before;
        rec.pv_band_exact_before = s.pv_band_exact_before;
        rec.corner_epe_before.assign(s.corner_epe_before.begin(), s.corner_epe_before.end());
        out.steps.push_back(std::move(rec));
    }
    return out;
}

}  // namespace camo::rl
