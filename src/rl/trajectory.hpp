// Trajectory records shared by the teacher (imitation phase) and the RL
// phase.
#pragma once

#include <vector>

namespace camo::rl {

/// One environment step: the segment offsets *before* acting and the action
/// index (0..4 for movements -2..+2 nm) chosen per segment.
struct StepRecord {
    std::vector<int> offsets_before;
    std::vector<int> actions;
    double sum_abs_epe_before = 0.0;
    double pvband_before = 0.0;

    // Window-aware objectives (zero / empty when the trajectory was recorded
    // at the nominal corner only): worst-corner sum |EPE|, exact PV band,
    // and the per-corner sum |EPE| in WindowSpec::corner order before the
    // step — the quantities window_step_reward and weighted-corner credit
    // assignment consume.
    double worst_epe_before = 0.0;
    double pv_band_exact_before = 0.0;
    std::vector<double> corner_epe_before;
};

struct Trajectory {
    std::vector<StepRecord> steps;
    double final_sum_abs_epe = 0.0;
    double final_pvband = 0.0;

    // Window-aware finals, mirroring StepRecord's window fields.
    double final_worst_epe = 0.0;
    double final_pv_band_exact = 0.0;
    std::vector<double> final_corner_epe;

    // Collection provenance, set by the parallel teacher-collection runtime:
    // which clip this trajectory was recorded on and the initial mask bias
    // of its (clip, bias) job. The trainer gathers trajectories in canonical
    // clip-major, bias-minor job order regardless of worker count, and these
    // fields let tests (and downstream consumers) verify that ordering.
    // -1 / 0 when the trajectory was recorded outside the trainer.
    int clip_index = -1;
    int initial_bias_nm = 0;
};

/// Movement action space of the paper: {-2,-1,0,+1,+2} nm.
inline constexpr int kNumActions = 5;

/// Action index -> movement in nm.
inline int action_to_move(int action) { return action - 2; }

/// Movement in nm -> action index (movement must be in [-2, 2]).
inline int move_to_action(int move) { return move + 2; }

}  // namespace camo::rl
