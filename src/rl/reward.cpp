#include "rl/reward.hpp"

#include <cmath>
#include <stdexcept>

namespace camo::rl {

double step_reward(double epe_before, double epe_after, double pvb_before, double pvb_after,
                   const RewardConfig& cfg) {
    if (!std::isfinite(epe_before) || !std::isfinite(epe_after) || !std::isfinite(pvb_before) ||
        !std::isfinite(pvb_after)) {
        throw std::invalid_argument("step_reward: non-finite input");
    }
    if (!std::isfinite(cfg.epsilon) || cfg.epsilon <= 0.0) {
        throw std::invalid_argument("step_reward: epsilon must be finite and > 0");
    }
    if (!std::isfinite(cfg.beta)) {
        throw std::invalid_argument("step_reward: beta must be finite");
    }
    const double epe_term =
        (std::abs(epe_before) - std::abs(epe_after)) / (std::abs(epe_before) + cfg.epsilon);
    // Explicit zero-PVB guard: a mask that prints nothing has no band to
    // improve, so the PV term vanishes instead of dividing by zero.
    double pvb_term = 0.0;
    if (pvb_before > 0.0) pvb_term = cfg.beta * (pvb_before - pvb_after) / pvb_before;
    return epe_term + pvb_term;
}

const char* reward_mode_name(RewardMode mode) {
    switch (mode) {
        case RewardMode::kNominal:
            return "nominal";
        case RewardMode::kWorstCorner:
            return "worst-corner";
        case RewardMode::kWeightedCorner:
            return "weighted-corner";
    }
    return "unknown";
}

bool parse_reward_mode(const std::string& name, RewardMode& out) {
    if (name == "nominal") {
        out = RewardMode::kNominal;
    } else if (name == "worst" || name == "worst-corner") {
        out = RewardMode::kWorstCorner;
    } else if (name == "weighted" || name == "weighted-corner") {
        out = RewardMode::kWeightedCorner;
    } else {
        return false;
    }
    return true;
}

void WindowRewardConfig::validate(int corner_count) const {
    if (!std::isfinite(base.epsilon) || base.epsilon <= 0.0) {
        throw std::invalid_argument("WindowRewardConfig: epsilon must be finite and > 0");
    }
    if (!std::isfinite(base.beta)) {
        throw std::invalid_argument("WindowRewardConfig: beta must be finite");
    }
    if (mode == RewardMode::kWeightedCorner && !corner_weights.empty()) {
        if (static_cast<int>(corner_weights.size()) != corner_count) {
            throw std::invalid_argument(
                "WindowRewardConfig: corner_weights size must equal the corner count");
        }
        double sum = 0.0;
        for (double w : corner_weights) {
            if (!std::isfinite(w) || w < 0.0) {
                throw std::invalid_argument(
                    "WindowRewardConfig: corner weights must be finite and >= 0");
            }
            sum += w;
        }
        if (sum <= 0.0) {
            throw std::invalid_argument("WindowRewardConfig: corner weights are all zero");
        }
    }
}

double window_objective_epe(const litho::WindowMetrics& wm, const WindowRewardConfig& cfg) {
    switch (cfg.mode) {
        case RewardMode::kNominal: {
            const litho::CornerResult* nominal = wm.nominal_corner();
            if (nominal == nullptr) {
                throw std::invalid_argument(
                    "window_objective_epe: window lacks the nominal corner");
            }
            return nominal->metrics.sum_abs_epe;
        }
        case RewardMode::kWorstCorner:
            return wm.worst_epe;
        case RewardMode::kWeightedCorner: {
            cfg.validate(static_cast<int>(wm.corners.size()));
            double sum = 0.0;
            double weight_sum = 0.0;
            for (std::size_t c = 0; c < wm.corners.size(); ++c) {
                const double w =
                    cfg.corner_weights.empty() ? 1.0 : cfg.corner_weights[c];
                sum += w * wm.corners[c].metrics.sum_abs_epe;
                weight_sum += w;
            }
            return weight_sum > 0.0 ? sum / weight_sum : 0.0;
        }
    }
    throw std::logic_error("window_objective_epe: unknown mode");
}

double window_objective_pvb(const litho::WindowMetrics& wm, const WindowRewardConfig& cfg) {
    if (cfg.mode == RewardMode::kNominal) {
        // The legacy reward consumed SimMetrics::pvband_nm2, which the sweep
        // reports exactly as the two-corner band; -1 marks a window without
        // the standard focus planes, where the exact band stands in.
        return wm.pv_band_two_corner_nm2 >= 0.0 ? wm.pv_band_two_corner_nm2
                                                : wm.pv_band_exact_nm2;
    }
    return wm.pv_band_exact_nm2;
}

double window_step_reward(const litho::WindowMetrics& before, const litho::WindowMetrics& after,
                          const WindowRewardConfig& cfg) {
    return step_reward(window_objective_epe(before, cfg), window_objective_epe(after, cfg),
                       window_objective_pvb(before, cfg), window_objective_pvb(after, cfg),
                       cfg.base);
}

}  // namespace camo::rl
