#include "rl/reward.hpp"

#include <cmath>

namespace camo::rl {

double step_reward(double epe_before, double epe_after, double pvb_before, double pvb_after,
                   const RewardConfig& cfg) {
    const double epe_term =
        (std::abs(epe_before) - std::abs(epe_after)) / (std::abs(epe_before) + cfg.epsilon);
    double pvb_term = 0.0;
    if (pvb_before > 0.0) pvb_term = cfg.beta * (pvb_before - pvb_after) / pvb_before;
    return epe_term + pvb_term;
}

}  // namespace camo::rl
