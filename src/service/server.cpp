#include "service/server.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace camo::service {

namespace {

obs::MetricId requests_counter() {
    static const obs::MetricId id = obs::register_counter("serve.requests");
    return id;
}
obs::MetricId accepted_counter() {
    static const obs::MetricId id = obs::register_counter("serve.accepted");
    return id;
}
obs::MetricId rejected_counter() {
    static const obs::MetricId id = obs::register_counter("serve.rejected");
    return id;
}
obs::MetricId completed_counter() {
    static const obs::MetricId id = obs::register_counter("serve.completed");
    return id;
}
obs::MetricId deadline_missed_counter() {
    static const obs::MetricId id = obs::register_counter("serve.deadline_missed");
    return id;
}
obs::MetricId queue_depth_gauge() {
    static const obs::MetricId id = obs::register_gauge("serve.queue.depth");
    return id;
}
obs::MetricId wait_hist() {
    static const obs::MetricId id = obs::register_histogram("serve.wait.ns");
    return id;
}
obs::MetricId latency_hist() {
    static const obs::MetricId id = obs::register_histogram("serve.latency.ns");
    return id;
}
obs::MetricId request_hist() {
    static const obs::MetricId id = obs::register_histogram("serve.request.ns");
    return id;
}

long long to_ns(double seconds) { return static_cast<long long>(seconds * 1e9); }

}  // namespace

OpcServer::OpcServer(const litho::LithoConfig& litho, ServerOptions opt)
    : opt_(std::move(opt)), scheduler_(litho, opt_.batch) {
    if (opt_.queue_capacity < 1) {
        throw std::invalid_argument("OpcServer: queue_capacity must be at least 1, got " +
                                    std::to_string(opt_.queue_capacity));
    }
}

bool OpcServer::submit(ServeRequest req) {
    obs::counter_add(requests_counter());
    RequestOutcome outcome;
    outcome.name = req.name;
    outcome.priority = req.priority;
    outcome.clips = static_cast<int>(req.clips.size());

    std::string reason;
    if (static_cast<int>(pending_.size()) >= opt_.queue_capacity) {
        reason = "queue full (capacity " + std::to_string(opt_.queue_capacity) + ")";
    } else if (req.clips.empty()) {
        reason = "empty request (no clips)";
    }
    if (!reason.empty()) {
        outcome.reject_reason = std::move(reason);
        outcomes_.push_back(std::move(outcome));
        obs::counter_add(rejected_counter());
        return false;
    }

    outcome.accepted = true;
    outcomes_.push_back(std::move(outcome));
    pending_.push_back(Pending{std::move(req), outcomes_.size() - 1, Timer()});
    obs::counter_add(accepted_counter());
    obs::gauge_set(queue_depth_gauge(), static_cast<double>(pending_.size()));
    return true;
}

std::vector<RequestOutcome> OpcServer::drain(const runtime::ClipOptimizer& optimize) {
    // Priority desc, admission order within a level. Stable sort over the
    // arrival sequence gives the FIFO tie-break for free.
    std::vector<std::size_t> order(pending_.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
        return pending_[a].request.priority > pending_[b].request.priority;
    });

    int served = 0;
    for (const std::size_t idx : order) {
        Pending& p = pending_[idx];
        RequestOutcome& out = outcomes_[p.outcome_index];
        const obs::Span span("serve.request", request_hist());
        out.served_order = served++;
        out.queue_wait_s = p.since_admission.seconds();
        obs::histogram_record(wait_hist(), to_ns(out.queue_wait_s));

        Timer service;
        out.results.resize(p.request.clips.size());
        try {
            const runtime::StreamStats stats = scheduler_.run_streaming(
                p.request.clips, optimize,
                [&out](runtime::ClipResult&& res) {
                    out.results[static_cast<std::size_t>(res.index)] = std::move(res);
                },
                p.request.clip_names, opt_.stream);
            out.failed = stats.failed;
        } catch (const std::exception& e) {
            // A request-level failure (bad stream config, sink error) fails
            // the whole request but never takes down the server loop.
            out.failed = static_cast<int>(p.request.clips.size());
            out.reject_reason = std::string("request failed: ") + e.what();
        }
        out.service_s = service.seconds();
        out.latency_s = p.since_admission.seconds();
        out.deadline_missed =
            p.request.deadline_s > 0.0 && out.latency_s > p.request.deadline_s;
        for (const runtime::ClipResult& c : out.results) {
            if (!c.error.empty()) continue;
            out.sum_final_epe += c.final_epe;
            out.sum_pvband_nm2 += c.pvband_nm2;
        }
        obs::histogram_record(latency_hist(), to_ns(out.latency_s));
        obs::counter_add(completed_counter());
        if (out.deadline_missed) obs::counter_add(deadline_missed_counter());
        obs::gauge_set(queue_depth_gauge(),
                       static_cast<double>(pending_.size()) - served);
    }

    pending_.clear();
    obs::gauge_set(queue_depth_gauge(), 0.0);
    return std::exchange(outcomes_, {});
}

}  // namespace camo::service
