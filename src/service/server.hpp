// Long-running OPC service: a request queue with admission control in front
// of the streaming batch runtime.
//
// One OpcServer owns one BatchScheduler, so everything expensive is warm
// and shared across requests: the SOCS kernel set (built once via the PR-1
// kernel registry), the per-worker simulators and their incremental caches,
// and whatever the caller's ClipOptimizer closes over (a trained CamoEngine
// snapshot — weights loaded once, inferred concurrently).
//
// Lifecycle is submit/drain. submit() is admission control: a request is
// accepted into the bounded queue or rejected immediately with a reason
// (queue full, empty request) — the reject-don't-buffer behaviour a
// memory-bounded service needs. drain() serves every queued request through
// BatchScheduler::run_streaming, highest priority first (FIFO within a
// priority), stamping per-request queue-wait/service/latency and checking
// the soft deadline. Results are deterministic where it matters: per-clip
// outputs depend only on (layout, request seed policy, clip index), never
// on queue order or timing; order/timing only affect the telemetry fields.
//
// Observability: serve.requests/accepted/rejected/completed counters,
// serve.queue.depth gauge, serve.wait.ns + serve.latency.ns histograms and
// a serve.request span per served request, all through src/obs/.
#pragma once

#include <string>
#include <vector>

#include "common/timer.hpp"
#include "geometry/layout.hpp"
#include "litho/config.hpp"
#include "runtime/batch.hpp"

namespace camo::service {

/// One unit of service work: a named bundle of clips (typically the tiles
/// of one chip shard) with scheduling hints.
struct ServeRequest {
    std::string name;
    int priority = 0;       ///< higher is served first; FIFO within a level
    double deadline_s = 0;  ///< soft latency budget from admission; 0 = none
    std::vector<geo::SegmentedLayout> clips;
    std::vector<std::string> clip_names;  ///< optional, parallel to clips
};

/// What happened to one submitted request. Rejected requests have
/// accepted == false, a reject_reason, and no results.
struct RequestOutcome {
    std::string name;
    int priority = 0;
    bool accepted = false;
    std::string reject_reason;
    int served_order = -1;  ///< position in the drain schedule; -1 if rejected

    int clips = 0;
    int failed = 0;  ///< clips whose job recorded an error
    bool deadline_missed = false;

    double queue_wait_s = 0.0;  ///< admission -> service start
    double service_s = 0.0;     ///< streaming run wall time
    double latency_s = 0.0;     ///< admission -> last result delivered

    double sum_final_epe = 0.0;
    double sum_pvband_nm2 = 0.0;
    std::vector<runtime::ClipResult> results;  ///< clip-index order
};

struct ServerOptions {
    /// Admission bound: submit() rejects once this many requests are
    /// pending. Must be >= 1 (std::invalid_argument otherwise).
    int queue_capacity = 8;
    runtime::BatchOptions batch;    ///< threads/seed/opc shared by all requests
    runtime::StreamOptions stream;  ///< worker->sink queue of each request
};

class OpcServer {
public:
    /// Builds the warm core: kernels, per-worker simulators, window specs.
    OpcServer(const litho::LithoConfig& litho, ServerOptions opt);

    /// Admission control. Returns true and queues the request, or returns
    /// false and records a rejected RequestOutcome (reason readable in the
    /// drain() report): the queue is full, or the request has no clips.
    bool submit(ServeRequest req);

    /// Serve every pending request (priority desc, arrival asc), then
    /// return the outcomes of ALL requests submitted since the last drain —
    /// rejected ones included — in arrival order. The queue is empty
    /// afterwards; submit/drain cycles may repeat on the warm core.
    std::vector<RequestOutcome> drain(const runtime::ClipOptimizer& optimize);

    [[nodiscard]] int pending() const { return static_cast<int>(pending_.size()); }
    [[nodiscard]] int queue_capacity() const { return opt_.queue_capacity; }
    [[nodiscard]] const ServerOptions& options() const { return opt_; }
    [[nodiscard]] runtime::BatchScheduler& scheduler() { return scheduler_; }

private:
    struct Pending {
        ServeRequest request;
        std::size_t outcome_index;  ///< into outcomes_
        Timer since_admission;
    };

    ServerOptions opt_;
    runtime::BatchScheduler scheduler_;
    std::vector<Pending> pending_;
    std::vector<RequestOutcome> outcomes_;  ///< arrival order, cleared by drain()
};

}  // namespace camo::service
