// Softmax utilities and the REINFORCE logit gradient.
//
// These are free functions rather than layers: the policy head combines
// softmax with external modulation and sampling, so composing at the call
// site keeps the probability algebra explicit.
#pragma once

#include <span>
#include <vector>

namespace camo::nn {

/// Numerically stable softmax.
std::vector<float> softmax(std::span<const float> logits);

/// d/dlogits of [coef * log softmax(logits)[action]]:
///   coef * (onehot(action) - softmax(logits)).
/// This single expression covers both REINFORCE (coef = reward * step size
/// sign) and cross-entropy imitation (coef = 1 for the taken action).
std::vector<float> policy_logit_grad(std::span<const float> logits, int action, float coef);

/// log(softmax(logits)[action]) without materializing the full vector.
float log_prob(std::span<const float> logits, int action);

}  // namespace camo::nn
