// Finite-difference gradient verification used by the test suite: every
// hand-derived backward pass in this library is checked against central
// differences on random inputs.
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace camo::nn {

struct GradCheckResult {
    double max_rel_error_input = 0.0;
    double max_rel_error_params = 0.0;

    [[nodiscard]] bool ok(double tol = 2e-2) const {
        return max_rel_error_input < tol && max_rel_error_params < tol;
    }
};

/// Compares analytic gradients of the scalar loss sum(output .* probe)
/// against central differences, for both the layer input and every
/// parameter. `probe` is a fixed random tensor; epsilon is float-friendly.
GradCheckResult gradient_check(Layer& layer, const Tensor& input, Rng& rng,
                               float epsilon = 1e-2F);

}  // namespace camo::nn
