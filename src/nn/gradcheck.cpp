#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

namespace camo::nn {
namespace {

double rel_error(double analytic, double numeric) {
    // The floor keeps float32 forward noise on near-zero gradients from
    // dominating: a genuine backward bug shows up on O(1) gradients.
    const double denom = std::max({std::abs(analytic), std::abs(numeric), 1e-2});
    return std::abs(analytic - numeric) / denom;
}

}  // namespace

GradCheckResult gradient_check(Layer& layer, const Tensor& input, Rng& rng, float epsilon) {
    Tape tape;
    const Tensor out0 = layer.forward(input, tape);

    Tensor probe(out0.shape());
    for (float& v : probe.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));

    auto loss_of = [&probe](const Tensor& out) {
        double s = 0.0;
        const auto od = out.data();
        const auto pd = probe.data();
        for (std::size_t i = 0; i < od.size(); ++i) {
            s += static_cast<double>(od[i]) * static_cast<double>(pd[i]);
        }
        return s;
    };

    for (Parameter* p : layer.params()) p->zero_grad();
    const Tensor gx = layer.backward(probe, tape);

    GradCheckResult res;

    // Input gradient via central differences.
    Tensor x = input.reshaped(input.shape());
    for (std::size_t i = 0; i < x.numel(); ++i) {
        const float orig = x[i];
        x[i] = orig + epsilon;
        Tape t1;
        const double lp = loss_of(layer.forward(x, t1));
        x[i] = orig - epsilon;
        Tape t2;
        const double lm = loss_of(layer.forward(x, t2));
        x[i] = orig;
        const double numeric = (lp - lm) / (2.0 * epsilon);
        res.max_rel_error_input =
            std::max(res.max_rel_error_input, rel_error(gx[i], numeric));
    }

    // Parameter gradients.
    for (Parameter* p : layer.params()) {
        auto vals = p->value.data();
        for (std::size_t i = 0; i < vals.size(); ++i) {
            const float orig = vals[i];
            vals[i] = orig + epsilon;
            Tape t1;
            const double lp = loss_of(layer.forward(input, t1));
            vals[i] = orig - epsilon;
            Tape t2;
            const double lm = loss_of(layer.forward(input, t2));
            vals[i] = orig;
            const double numeric = (lp - lm) / (2.0 * epsilon);
            res.max_rel_error_params =
                std::max(res.max_rel_error_params, rel_error(p->grad[i], numeric));
        }
    }
    return res;
}

}  // namespace camo::nn
