// Detached gradient buffers for data-parallel training.
//
// A GradBuffer is a shadow copy of the accumulated gradients of a parameter
// list. The data-parallel trainer gives every minibatch sample its own
// buffer: a worker replica runs forward/backward with zeroed grads, then
// capture() moves the per-sample gradient out of the replica, and
// reduce_in_order() folds the buffers into the master parameters in
// canonical sample order before the optimizer step.
//
// Reduction order is the whole contract. Float addition is not associative,
// so a balanced-tree or per-worker-chunk reduction would round differently
// and make results depend on the worker count; the fixed left fold makes
// the reduced result a pure function of the per-sample buffers in canonical
// order. Two scopes of bitwise equality follow:
//   * per backward CALL: each Layer::backward adds exactly one value per
//     parameter element per call (the contract note in layer.hpp), so
//     capturing each call into its own buffer and folding in call order
//     reproduces direct shared-buffer accumulation to 0 ULP (pinned by the
//     GradReduce suite in tests/test_nn_training.cpp);
//   * per SAMPLE: one trainer sample spans many calls into shared layers
//     (the CNN encoder runs once per graph node), so a per-sample buffer is
//     a partial sum that direct shared-buffer accumulation would interleave
//     differently across samples. The trainer therefore runs THIS buffered
//     path at every worker count — including 1 — as the one canonical
//     semantics; do not "optimize" the serial case into direct
//     accumulation, or results would diverge between worker counts.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace camo::nn {

class GradBuffer {
public:
    GradBuffer() = default;

    /// Move the accumulated gradients out of `params` into this buffer
    /// (replacing any previous contents) and zero the parameters' grads,
    /// leaving them ready for the next backward pass.
    void capture(const std::vector<Parameter*>& params);

    /// Pairwise merge: this += other, elementwise. Shapes must match.
    void merge(const GradBuffer& other);

    /// Fold this buffer into the parameters' grads: one addition per
    /// element. Shapes must match the captured list.
    void add_to(const std::vector<Parameter*>& params) const;

    [[nodiscard]] bool empty() const { return grads_.empty(); }
    [[nodiscard]] std::size_t size() const { return grads_.size(); }
    [[nodiscard]] const std::vector<Tensor>& grads() const { return grads_; }

private:
    std::vector<Tensor> grads_;
};

/// Fixed-order reduction: folds buffers[0], buffers[1], ... into the
/// parameters' grads in index order. With params' grads starting at zero
/// this computes the canonical left fold (((b0 + b1) + b2) + ...) — the same
/// expression tree as serial single-buffer accumulation, so the result is
/// independent of how the buffers were computed (thread count, scheduling).
/// Empty buffers (skipped samples) are ignored.
void reduce_in_order(const std::vector<GradBuffer>& buffers,
                     const std::vector<Parameter*>& params);

}  // namespace camo::nn
