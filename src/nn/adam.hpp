// Adam optimizer.
//
// The paper trains with plain SGD (lr 3e-4, 500 epochs, GPU). On a CPU
// budget the same architecture trains an order of magnitude faster under
// Adam because the discriminative gradient component — tiny next to the
// common mode in imitation data — is rescaled per parameter. Both
// optimizers are provided; CamoConfig::optimizer selects one.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace camo::nn {

class Adam {
public:
    struct Options {
        float lr = 1e-3F;
        float beta1 = 0.9F;
        float beta2 = 0.999F;
        float epsilon = 1e-8F;
        float clip_norm = 0.0F;    ///< global gradient-norm bound; 0 disables
        float weight_decay = 0.0F; ///< decoupled (AdamW-style)
    };

    Adam(std::vector<Parameter*> params, Options opt);

    /// One update from accumulated gradients; zeroes them afterwards.
    void step();

    void zero_grad();

    [[nodiscard]] const Options& options() const { return opt_; }

private:
    std::vector<Parameter*> params_;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
    Options opt_;
    long long t_ = 0;
};

}  // namespace camo::nn
