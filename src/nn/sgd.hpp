// Stochastic gradient descent with optional momentum and gradient clipping.
// The paper trains with plain SGD at lr = 3e-4; clipping keeps REINFORCE
// stable when a rare large reward appears.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace camo::nn {

class Sgd {
public:
    struct Options {
        float lr = 3e-4F;
        float momentum = 0.0F;
        /// Global gradient-norm bound across all parameters; 0 disables.
        /// (Per-element clipping would erase the small discriminative
        /// component of the gradient whenever the common mode saturates.)
        float clip_norm = 0.0F;
        /// L2 weight decay; keeps imitation logits from growing without
        /// bound when only a subset of actions appears in the data.
        float weight_decay = 0.0F;
    };

    Sgd(std::vector<Parameter*> params, Options opt);

    /// Apply one update from the accumulated gradients, then zero them.
    void step();

    void zero_grad();

    [[nodiscard]] const Options& options() const { return opt_; }
    void set_lr(float lr) { opt_.lr = lr; }

private:
    std::vector<Parameter*> params_;
    std::vector<Tensor> velocity_;
    Options opt_;
};

}  // namespace camo::nn
