#include "nn/adam.hpp"

#include <cmath>

namespace camo::nn {

Adam::Adam(std::vector<Parameter*> params, Options opt) : params_(std::move(params)), opt_(opt) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Parameter* p : params_) {
        m_.emplace_back(p->value.shape());
        v_.emplace_back(p->value.shape());
    }
}

void Adam::step() {
    ++t_;
    float scale = 1.0F;
    if (opt_.clip_norm > 0.0F) {
        double norm2 = 0.0;
        for (Parameter* p : params_) {
            for (float g : p->grad.data()) norm2 += static_cast<double>(g) * g;
        }
        const double norm = std::sqrt(norm2);
        if (norm > opt_.clip_norm) scale = static_cast<float>(opt_.clip_norm / norm);
    }

    const auto t = static_cast<float>(t_);
    const float bc1 = 1.0F - std::pow(opt_.beta1, t);
    const float bc2 = 1.0F - std::pow(opt_.beta2, t);

    for (std::size_t pi = 0; pi < params_.size(); ++pi) {
        Parameter& p = *params_[pi];
        auto g = p.grad.data();
        auto w = p.value.data();
        auto m = m_[pi].data();
        auto v = v_[pi].data();
        for (std::size_t i = 0; i < g.size(); ++i) {
            const float gi = g[i] * scale;
            m[i] = opt_.beta1 * m[i] + (1.0F - opt_.beta1) * gi;
            v[i] = opt_.beta2 * v[i] + (1.0F - opt_.beta2) * gi * gi;
            const float mhat = m[i] / bc1;
            const float vhat = v[i] / bc2;
            w[i] -= opt_.lr * (mhat / (std::sqrt(vhat) + opt_.epsilon) +
                               opt_.weight_decay * w[i]);
        }
        p.zero_grad();
    }
}

void Adam::zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
}

}  // namespace camo::nn
