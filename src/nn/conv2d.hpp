// 2D convolution over a single CHW sample.
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace camo::nn {

class Conv2d : public Layer {
public:
    Conv2d(int in_ch, int out_ch, int kernel, int stride, int padding, Rng& rng);

    /// x: [in_ch, H, W] -> [out_ch, H', W'] with
    /// H' = (H + 2*padding - kernel) / stride + 1.
    Tensor forward(const Tensor& x, Tape& tape) const override;
    Tensor backward(const Tensor& grad_out, Tape& tape) override;
    std::vector<Parameter*> params() override { return {&w_, &b_}; }

    [[nodiscard]] int out_size(int in_size) const {
        return (in_size + 2 * pad_ - k_) / stride_ + 1;
    }

    [[nodiscard]] int in_channels() const { return in_ch_; }
    [[nodiscard]] int out_channels() const { return out_ch_; }
    [[nodiscard]] int kernel() const { return k_; }
    [[nodiscard]] int stride() const { return stride_; }
    [[nodiscard]] int padding() const { return pad_; }

    /// Read-only parameter views for the inference backend's weight packer.
    [[nodiscard]] const Parameter& weight() const { return w_; }
    [[nodiscard]] const Parameter& bias() const { return b_; }

private:
    int in_ch_;
    int out_ch_;
    int k_;
    int stride_;
    int pad_;
    Parameter w_;  // [out_ch, in_ch, k, k]
    Parameter b_;  // [out_ch]
};

}  // namespace camo::nn
