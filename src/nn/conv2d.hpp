// 2D convolution over a single CHW sample.
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace camo::nn {

class Conv2d : public Layer {
public:
    Conv2d(int in_ch, int out_ch, int kernel, int stride, int padding, Rng& rng);

    /// x: [in_ch, H, W] -> [out_ch, H', W'] with
    /// H' = (H + 2*padding - kernel) / stride + 1.
    Tensor forward(const Tensor& x, Tape& tape) const override;
    Tensor backward(const Tensor& grad_out, Tape& tape) override;
    std::vector<Parameter*> params() override { return {&w_, &b_}; }

    [[nodiscard]] int out_size(int in_size) const {
        return (in_size + 2 * pad_ - k_) / stride_ + 1;
    }

private:
    int in_ch_;
    int out_ch_;
    int k_;
    int stride_;
    int pad_;
    Parameter w_;  // [out_ch, in_ch, k, k]
    Parameter b_;  // [out_ch]
};

}  // namespace camo::nn
