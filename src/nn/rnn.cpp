#include "nn/rnn.hpp"

#include <cmath>

#include "nn/init.hpp"

namespace camo::nn {

Rnn::Rnn(int input, int hidden, int layers, Rng& rng)
    : input_(input), hidden_(hidden), layers_(layers) {
    for (int l = 0; l < layers_; ++l) {
        const int in_l = (l == 0) ? input_ : hidden_;
        u_.emplace_back(std::vector<int>{hidden_, in_l});
        w_.emplace_back(std::vector<int>{hidden_, hidden_});
        b_.emplace_back(std::vector<int>{hidden_});
        init_xavier(u_.back().value, in_l, hidden_, rng);
        init_xavier(w_.back().value, hidden_, hidden_, rng);
    }
}

std::vector<Parameter*> Rnn::params() {
    std::vector<Parameter*> out;
    for (int l = 0; l < layers_; ++l) {
        out.push_back(&u_[static_cast<std::size_t>(l)]);
        out.push_back(&w_[static_cast<std::size_t>(l)]);
        out.push_back(&b_[static_cast<std::size_t>(l)]);
    }
    return out;
}

Tensor Rnn::forward(const Tensor& x, Tape& tape) const {
    if (x.rank() != 2 || x.dim(1) != input_) throw std::invalid_argument("Rnn: input shape");
    const int t_len = x.dim(0);

    // hs[l] holds the hidden sequence of layer l: [T, hidden].
    Tensor hs({layers_, t_len, hidden_});

    for (int l = 0; l < layers_; ++l) {
        const int in_l = (l == 0) ? input_ : hidden_;
        const auto& u = u_[static_cast<std::size_t>(l)].value;
        const auto& w = w_[static_cast<std::size_t>(l)].value;
        const auto& b = b_[static_cast<std::size_t>(l)].value;
        for (int t = 0; t < t_len; ++t) {
            for (int h = 0; h < hidden_; ++h) {
                float acc = b[static_cast<std::size_t>(h)];
                for (int i = 0; i < in_l; ++i) {
                    const float xin = (l == 0) ? x.at(t, i) : hs.at(l - 1, t, i);
                    acc += u.at(h, i) * xin;
                }
                if (t > 0) {
                    for (int i = 0; i < hidden_; ++i) acc += w.at(h, i) * hs.at(l, t - 1, i);
                }
                hs.at(l, t, h) = std::tanh(acc);
            }
        }
    }

    Tensor y({t_len, hidden_});
    for (int t = 0; t < t_len; ++t) {
        for (int h = 0; h < hidden_; ++h) y.at(t, h) = hs.at(layers_ - 1, t, h);
    }
    tape.push(x.reshaped(x.shape()));
    tape.push(std::move(hs));
    return y;
}

Tensor Rnn::backward(const Tensor& grad_out, Tape& tape) {
    const Tensor hs = tape.pop();
    const Tensor x = tape.pop();
    const int t_len = x.dim(0);

    // Gradient flowing into each layer's hidden outputs; start with the top
    // layer receiving grad_out, lower layers receive via U^T as we descend.
    Tensor gh_from_above({t_len, hidden_});
    for (int t = 0; t < t_len; ++t) {
        for (int h = 0; h < hidden_; ++h) gh_from_above.at(t, h) = grad_out.at(t, h);
    }

    Tensor gx({t_len, input_});

    for (int l = layers_ - 1; l >= 0; --l) {
        const int in_l = (l == 0) ? input_ : hidden_;
        const auto& u = u_[static_cast<std::size_t>(l)].value;
        const auto& w = w_[static_cast<std::size_t>(l)].value;
        // Per-call gradients accumulate into locals across the time sweep and
        // fold into the parameters with one addition per element at the end
        // (the Layer::backward accumulation contract).
        Tensor gu(u_[static_cast<std::size_t>(l)].grad.shape());
        Tensor gw(w_[static_cast<std::size_t>(l)].grad.shape());
        Tensor gb(b_[static_cast<std::size_t>(l)].grad.shape());

        Tensor gh_below({t_len, in_l});           // gradient to the layer below (or input)
        std::vector<float> carry(static_cast<std::size_t>(hidden_), 0.0F);  // dL/dh(t) via t+1

        for (int t = t_len - 1; t >= 0; --t) {
            // Total gradient at h_l(t), then through tanh.
            std::vector<float> gpre(static_cast<std::size_t>(hidden_));
            for (int h = 0; h < hidden_; ++h) {
                const float ht = hs.at(l, t, h);
                const float gtotal = gh_from_above.at(t, h) + carry[static_cast<std::size_t>(h)];
                gpre[static_cast<std::size_t>(h)] = gtotal * (1.0F - ht * ht);
            }
            std::fill(carry.begin(), carry.end(), 0.0F);

            for (int h = 0; h < hidden_; ++h) {
                const float gp = gpre[static_cast<std::size_t>(h)];
                if (gp == 0.0F) continue;
                gb[static_cast<std::size_t>(h)] += gp;
                for (int i = 0; i < in_l; ++i) {
                    const float xin = (l == 0) ? x.at(t, i) : hs.at(l - 1, t, i);
                    gu.at(h, i) += gp * xin;
                    gh_below.at(t, i) += gp * u.at(h, i);
                }
                if (t > 0) {
                    for (int i = 0; i < hidden_; ++i) {
                        gw.at(h, i) += gp * hs.at(l, t - 1, i);
                        carry[static_cast<std::size_t>(i)] += gp * w.at(h, i);
                    }
                }
            }
        }

        u_[static_cast<std::size_t>(l)].grad.add_(gu);
        w_[static_cast<std::size_t>(l)].grad.add_(gw);
        b_[static_cast<std::size_t>(l)].grad.add_(gb);

        if (l == 0) {
            gx = std::move(gh_below);
        } else {
            gh_from_above = std::move(gh_below);
        }
    }
    return gx;
}

}  // namespace camo::nn
