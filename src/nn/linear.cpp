#include "nn/linear.hpp"

#include "nn/init.hpp"

namespace camo::nn {

Linear::Linear(int in, int out, Rng& rng) : in_(in), out_(out), w_({out, in}), b_({out}) {
    init_he(w_.value, in, rng);
}

Tensor Linear::forward(const Tensor& x, Tape& tape) const {
    if (static_cast<int>(x.numel()) != in_) throw std::invalid_argument("Linear: input size");
    Tensor y({out_});
    const auto xd = x.data();
    for (int o = 0; o < out_; ++o) {
        float acc = b_.value[static_cast<std::size_t>(o)];
        const std::size_t row = static_cast<std::size_t>(o) * static_cast<std::size_t>(in_);
        for (int i = 0; i < in_; ++i) {
            acc += w_.value[row + static_cast<std::size_t>(i)] * xd[static_cast<std::size_t>(i)];
        }
        y[static_cast<std::size_t>(o)] = acc;
    }
    tape.push(x.reshaped({static_cast<int>(x.numel())}));
    return y;
}

Tensor Linear::backward(const Tensor& grad_out, Tape& tape) {
    const Tensor x = tape.pop();
    Tensor gx({in_});
    for (int o = 0; o < out_; ++o) {
        const float go = grad_out[static_cast<std::size_t>(o)];
        b_.grad[static_cast<std::size_t>(o)] += go;
        const std::size_t row = static_cast<std::size_t>(o) * static_cast<std::size_t>(in_);
        for (int i = 0; i < in_; ++i) {
            w_.grad[row + static_cast<std::size_t>(i)] += go * x[static_cast<std::size_t>(i)];
            gx[static_cast<std::size_t>(i)] += go * w_.value[row + static_cast<std::size_t>(i)];
        }
    }
    return gx;
}

}  // namespace camo::nn
