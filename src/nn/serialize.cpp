#include "nn/serialize.hpp"

#include "common/file_io.hpp"

namespace camo::nn {
namespace {
constexpr std::uint32_t kMagic = 0x434E4554U;  // "CNET"
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_params(const std::string& path, const std::vector<Parameter*>& params) {
    BinaryWriter w(path);
    w.write_u32(kMagic);
    w.write_u32(kVersion);
    w.write_u64(params.size());
    for (const Parameter* p : params) {
        w.write_u64(p->value.shape().size());
        for (int d : p->value.shape()) w.write_u32(static_cast<std::uint32_t>(d));
        for (float v : p->value.data()) w.write_f32(v);
    }
}

bool load_params(const std::string& path, const std::vector<Parameter*>& params) {
    if (!file_exists(path)) return false;
    try {
        BinaryReader r(path);
        if (r.read_u32() != kMagic || r.read_u32() != kVersion) return false;
        if (r.read_u64() != params.size()) return false;

        // First pass into temporaries so a mismatch cannot corrupt weights.
        std::vector<std::vector<float>> values;
        values.reserve(params.size());
        for (const Parameter* p : params) {
            const auto ndims = r.read_u64();
            if (ndims != p->value.shape().size()) return false;
            for (int d : p->value.shape()) {
                if (r.read_u32() != static_cast<std::uint32_t>(d)) return false;
            }
            std::vector<float> vals(p->value.numel());
            for (float& v : vals) v = r.read_f32();
            values.push_back(std::move(vals));
        }
        // Trailing bytes mean this is not the file save_params wrote —
        // reject it under the same contract as a shape mismatch.
        if (!r.ok() || !r.at_end()) return false;
        for (std::size_t i = 0; i < params.size(); ++i) {
            auto dst = params[i]->value.data();
            std::copy(values[i].begin(), values[i].end(), dst.begin());
        }
        return true;
    } catch (const std::exception&) {
        return false;
    }
}

}  // namespace camo::nn
