#include "nn/softmax.hpp"

#include <algorithm>
#include <cmath>

namespace camo::nn {

std::vector<float> softmax(std::span<const float> logits) {
    float max = -1e30F;
    for (float v : logits) max = std::max(max, v);
    std::vector<float> out(logits.size());
    float sum = 0.0F;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        out[i] = std::exp(logits[i] - max);
        sum += out[i];
    }
    for (float& v : out) v /= sum;
    return out;
}

std::vector<float> policy_logit_grad(std::span<const float> logits, int action, float coef) {
    std::vector<float> g = softmax(logits);
    for (float& v : g) v *= -coef;
    g[static_cast<std::size_t>(action)] += coef;
    return g;
}

float log_prob(std::span<const float> logits, int action) {
    float max = -1e30F;
    for (float v : logits) max = std::max(max, v);
    float sum = 0.0F;
    for (float v : logits) sum += std::exp(v - max);
    return logits[static_cast<std::size_t>(action)] - max - std::log(sum);
}

}  // namespace camo::nn
