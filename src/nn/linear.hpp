// Fully connected layer: y = W x + b for a rank-1 input [in].
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace camo::nn {

class Linear : public Layer {
public:
    Linear(int in, int out, Rng& rng);

    Tensor forward(const Tensor& x, Tape& tape) const override;
    Tensor backward(const Tensor& grad_out, Tape& tape) override;
    std::vector<Parameter*> params() override { return {&w_, &b_}; }

    [[nodiscard]] int in_features() const { return in_; }
    [[nodiscard]] int out_features() const { return out_; }

    /// Read-only parameter views for the inference backend's weight packer.
    [[nodiscard]] const Parameter& weight() const { return w_; }
    [[nodiscard]] const Parameter& bias() const { return b_; }

private:
    int in_;
    int out_;
    Parameter w_;  // [out, in]
    Parameter b_;  // [out]
};

}  // namespace camo::nn
