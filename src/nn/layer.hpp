// Layer abstraction with an explicit activation tape.
//
// Layers hold only parameters; all per-call activations live on a
// caller-owned Tape. This lets one set of shared weights (e.g. the CNN
// encoder applied to every graph node) run many forwards before any
// backward, with gradients accumulating into Parameter::grad until the
// optimizer consumes them — exactly the dataflow REINFORCE over a segment
// graph needs.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "nn/tensor.hpp"

namespace camo::nn {

/// A learnable tensor with its accumulated gradient.
struct Parameter {
    Tensor value;
    Tensor grad;

    explicit Parameter(std::vector<int> shape) : value(shape), grad(shape) {}

    void zero_grad() { grad.fill(0.0F); }
};

/// LIFO activation storage. forward() pushes, backward() pops; a layer must
/// pop exactly what it pushed, in reverse order.
class Tape {
public:
    void push(Tensor t) { stack_.push_back(std::move(t)); }

    Tensor pop() {
        if (stack_.empty()) throw std::logic_error("Tape::pop on empty tape");
        Tensor t = std::move(stack_.back());
        stack_.pop_back();
        return t;
    }

    [[nodiscard]] bool empty() const { return stack_.empty(); }
    [[nodiscard]] std::size_t size() const { return stack_.size(); }
    void clear() { stack_.clear(); }

private:
    std::vector<Tensor> stack_;
};

class Layer {
public:
    virtual ~Layer() = default;

    /// forward() is const: it reads parameters and pushes activations onto
    /// the caller-owned tape, never mutating layer state. This is the
    /// thread-safety contract the batch runtime relies on — one set of
    /// weights may run concurrent forwards as long as each caller owns its
    /// own Tape.
    virtual Tensor forward(const Tensor& x, Tape& tape) const = 0;

    /// Propagate grad_out to the input gradient; parameter gradients are
    /// *accumulated* into params()[i]->grad.
    ///
    /// Accumulation contract: one backward() call adds exactly ONE value per
    /// parameter element (the per-call gradient is computed into a local
    /// buffer and folded in with a single addition). Capturing each call
    /// into a detached buffer (nn/grad_buffer.hpp) and reducing the buffers
    /// in call order then reproduces direct shared-buffer accumulation bit
    /// for bit — float addition is not associative, so interleaving a
    /// call's partial sums with the shared buffer would round differently.
    /// Note the granularity: the equality is per backward() CALL. A trainer
    /// sample that invokes a shared layer several times (e.g. the CNN
    /// encoder once per graph node) makes its per-sample buffer a partial
    /// sum, which is why the data-parallel trainer uses the buffered path
    /// at every worker count rather than treating serial direct
    /// accumulation as equivalent.
    virtual Tensor backward(const Tensor& grad_out, Tape& tape) = 0;

    virtual std::vector<Parameter*> params() { return {}; }
};

/// Collect the parameters of several layers/modules into one flat list.
template <typename... Modules>
std::vector<Parameter*> collect_params(Modules&... modules) {
    std::vector<Parameter*> out;
    (
        [&out](auto& m) {
            auto p = m.params();
            out.insert(out.end(), p.begin(), p.end());
        }(modules),
        ...);
    return out;
}

}  // namespace camo::nn
