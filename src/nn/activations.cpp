#include "nn/activations.hpp"

#include <cmath>

namespace camo::nn {

Tensor ReLU::forward(const Tensor& x, Tape& tape) const {
    Tensor y(x.shape());
    const auto xd = x.data();
    auto yd = y.data();
    for (std::size_t i = 0; i < xd.size(); ++i) yd[i] = xd[i] > 0.0F ? xd[i] : 0.0F;
    tape.push(x.reshaped(x.shape()));
    return y;
}

Tensor ReLU::backward(const Tensor& grad_out, Tape& tape) {
    const Tensor x = tape.pop();
    Tensor gx(x.shape());
    const auto xd = x.data();
    const auto gd = grad_out.data();
    auto gxd = gx.data();
    for (std::size_t i = 0; i < xd.size(); ++i) gxd[i] = xd[i] > 0.0F ? gd[i] : 0.0F;
    return gx;
}

Tensor Tanh::forward(const Tensor& x, Tape& tape) const {
    Tensor y(x.shape());
    const auto xd = x.data();
    auto yd = y.data();
    for (std::size_t i = 0; i < xd.size(); ++i) yd[i] = std::tanh(xd[i]);
    tape.push(y.reshaped(y.shape()));  // store the output: dtanh = 1 - y^2
    return y;
}

Tensor Tanh::backward(const Tensor& grad_out, Tape& tape) {
    const Tensor y = tape.pop();
    Tensor gx(y.shape());
    const auto yd = y.data();
    const auto gd = grad_out.data();
    auto gxd = gx.data();
    for (std::size_t i = 0; i < yd.size(); ++i) gxd[i] = gd[i] * (1.0F - yd[i] * yd[i]);
    return gx;
}

Tensor MaxPool2d::forward(const Tensor& x, Tape& tape) const {
    if (x.rank() != 3 || x.dim(1) % window_ != 0 || x.dim(2) % window_ != 0) {
        throw std::invalid_argument("MaxPool2d: shape not divisible by window");
    }
    const int c = x.dim(0);
    const int oh = x.dim(1) / window_;
    const int ow = x.dim(2) / window_;

    Tensor y({c, oh, ow});
    Tensor argmax({c, oh, ow});  // flat input index of each window max
    for (int ch = 0; ch < c; ++ch) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                float best = -1e30F;
                int best_iy = 0;
                int best_ix = 0;
                for (int wy = 0; wy < window_; ++wy) {
                    for (int wx = 0; wx < window_; ++wx) {
                        const int iy = oy * window_ + wy;
                        const int ix = ox * window_ + wx;
                        const float v = x.at(ch, iy, ix);
                        if (v > best) {
                            best = v;
                            best_iy = iy;
                            best_ix = ix;
                        }
                    }
                }
                y.at(ch, oy, ox) = best;
                argmax.at(ch, oy, ox) = static_cast<float>(best_iy * x.dim(2) + best_ix);
            }
        }
    }
    Tensor shape_token({3});
    shape_token[0] = static_cast<float>(c);
    shape_token[1] = static_cast<float>(x.dim(1));
    shape_token[2] = static_cast<float>(x.dim(2));
    tape.push(std::move(shape_token));
    tape.push(std::move(argmax));
    return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out, Tape& tape) {
    const Tensor argmax = tape.pop();
    const Tensor shape_token = tape.pop();
    const int c = static_cast<int>(shape_token[0]);
    const int h = static_cast<int>(shape_token[1]);
    const int w = static_cast<int>(shape_token[2]);

    Tensor gx({c, h, w});
    const int oh = grad_out.dim(1);
    const int ow = grad_out.dim(2);
    for (int ch = 0; ch < c; ++ch) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                const int flat = static_cast<int>(argmax.at(ch, oy, ox));
                gx.at(ch, flat / w, flat % w) += grad_out.at(ch, oy, ox);
            }
        }
    }
    return gx;
}

}  // namespace camo::nn
