// Sequential container of layers sharing one tape.
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace camo::nn {

class Sequential : public Layer {
public:
    Sequential() = default;

    template <typename L, typename... Args>
    L& emplace(Args&&... args) {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L& ref = *layer;
        layers_.push_back(std::move(layer));
        return ref;
    }

    Tensor forward(const Tensor& x, Tape& tape) const override {
        Tensor h = x.reshaped(x.shape());
        for (auto& l : layers_) h = l->forward(h, tape);
        return h;
    }

    Tensor backward(const Tensor& grad_out, Tape& tape) override {
        Tensor g = grad_out.reshaped(grad_out.shape());
        for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g, tape);
        return g;
    }

    std::vector<Parameter*> params() override {
        std::vector<Parameter*> out;
        for (auto& l : layers_) {
            auto p = l->params();
            out.insert(out.end(), p.begin(), p.end());
        }
        return out;
    }

    [[nodiscard]] std::size_t size() const { return layers_.size(); }

    /// Access a contained layer (e.g. for the inference backend to downcast
    /// and repack its weights).
    [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_[i]; }

private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace camo::nn
