// Weight initialization schemes.
#pragma once

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace camo::nn {

/// He (Kaiming) normal init: stddev = sqrt(2 / fan_in). Suits ReLU stacks.
void init_he(Tensor& w, int fan_in, Rng& rng);

/// Xavier (Glorot) normal init: stddev = sqrt(2 / (fan_in + fan_out)).
/// Suits tanh layers (the RNN).
void init_xavier(Tensor& w, int fan_in, int fan_out, Rng& rng);

}  // namespace camo::nn
