#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace camo::nn {

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
    std::size_t n = 1;
    for (int d : shape_) {
        if (d <= 0) throw std::invalid_argument("Tensor: non-positive dimension");
        n *= static_cast<std::size_t>(d);
    }
    data_.assign(n, 0.0F);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::add_(const Tensor& other) {
    if (other.numel() != numel()) throw std::invalid_argument("Tensor::add_: size mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::axpy_(float alpha, const Tensor& other) {
    if (other.numel() != numel()) throw std::invalid_argument("Tensor::axpy_: size mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Tensor::scale_(float alpha) {
    for (float& v : data_) v *= alpha;
}

Tensor Tensor::reshaped(std::vector<int> shape) const {
    Tensor t(std::move(shape));
    if (t.numel() != numel()) throw std::invalid_argument("Tensor::reshaped: numel mismatch");
    std::copy(data_.begin(), data_.end(), t.data_.begin());
    return t;
}

float Tensor::sum() const {
    float s = 0.0F;
    for (float v : data_) s += v;
    return s;
}

float Tensor::abs_max() const {
    float m = 0.0F;
    for (float v : data_) m = std::max(m, std::abs(v));
    return m;
}

}  // namespace camo::nn
