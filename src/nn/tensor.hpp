// Dense row-major float tensor. Small and deliberately simple: the CAMO
// policy networks are tiny by deep-learning standards, so clarity and
// testability win over kernel-level optimization.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace camo::nn {

class Tensor {
public:
    Tensor() = default;
    explicit Tensor(std::vector<int> shape);

    static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

    [[nodiscard]] const std::vector<int>& shape() const { return shape_; }
    [[nodiscard]] int dim(int i) const { return shape_[static_cast<std::size_t>(i)]; }
    [[nodiscard]] int rank() const { return static_cast<int>(shape_.size()); }
    [[nodiscard]] std::size_t numel() const { return data_.size(); }
    [[nodiscard]] bool empty() const { return data_.empty(); }

    [[nodiscard]] std::span<float> data() { return data_; }
    [[nodiscard]] std::span<const float> data() const { return data_; }

    float& operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /// Indexed access for ranks 2..4 (row-major).
    float& at(int i, int j) { return data_[flat(i, j)]; }
    [[nodiscard]] float at(int i, int j) const { return data_[flat(i, j)]; }
    float& at(int i, int j, int k) { return data_[flat(i, j, k)]; }
    [[nodiscard]] float at(int i, int j, int k) const { return data_[flat(i, j, k)]; }
    float& at(int i, int j, int k, int l) { return data_[flat(i, j, k, l)]; }
    [[nodiscard]] float at(int i, int j, int k, int l) const { return data_[flat(i, j, k, l)]; }

    void fill(float v);
    void add_(const Tensor& other);          ///< elementwise +=
    void axpy_(float alpha, const Tensor&);  ///< this += alpha * other
    void scale_(float alpha);

    /// Same storage, new shape (numel must match).
    [[nodiscard]] Tensor reshaped(std::vector<int> shape) const;

    [[nodiscard]] float sum() const;
    [[nodiscard]] float abs_max() const;

private:
    [[nodiscard]] std::size_t flat(int i, int j) const {
        assert(rank() == 2);
        return static_cast<std::size_t>(i) * static_cast<std::size_t>(shape_[1]) +
               static_cast<std::size_t>(j);
    }
    [[nodiscard]] std::size_t flat(int i, int j, int k) const {
        assert(rank() == 3);
        return (static_cast<std::size_t>(i) * static_cast<std::size_t>(shape_[1]) +
                static_cast<std::size_t>(j)) *
                   static_cast<std::size_t>(shape_[2]) +
               static_cast<std::size_t>(k);
    }
    [[nodiscard]] std::size_t flat(int i, int j, int k, int l) const {
        assert(rank() == 4);
        return ((static_cast<std::size_t>(i) * static_cast<std::size_t>(shape_[1]) +
                 static_cast<std::size_t>(j)) *
                    static_cast<std::size_t>(shape_[2]) +
                static_cast<std::size_t>(k)) *
                   static_cast<std::size_t>(shape_[3]) +
               static_cast<std::size_t>(l);
    }

    std::vector<int> shape_;
    std::vector<float> data_;
};

}  // namespace camo::nn
