#include "nn/init.hpp"

#include <cmath>

namespace camo::nn {

void init_he(Tensor& w, int fan_in, Rng& rng) {
    const double stddev = std::sqrt(2.0 / fan_in);
    for (float& v : w.data()) v = static_cast<float>(rng.normal(stddev));
}

void init_xavier(Tensor& w, int fan_in, int fan_out, Rng& rng) {
    const double stddev = std::sqrt(2.0 / (fan_in + fan_out));
    for (float& v : w.data()) v = static_cast<float>(rng.normal(stddev));
}

}  // namespace camo::nn
