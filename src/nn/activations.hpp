// Elementwise activation layers and a 2x2-style max pooling layer.
#pragma once

#include "nn/layer.hpp"

namespace camo::nn {

class ReLU : public Layer {
public:
    Tensor forward(const Tensor& x, Tape& tape) const override;
    Tensor backward(const Tensor& grad_out, Tape& tape) override;
};

class Tanh : public Layer {
public:
    Tensor forward(const Tensor& x, Tape& tape) const override;
    Tensor backward(const Tensor& grad_out, Tape& tape) override;
};

/// Max pooling over non-overlapping windows on a CHW tensor. Input height
/// and width must be divisible by the window size.
class MaxPool2d : public Layer {
public:
    explicit MaxPool2d(int window) : window_(window) {}

    Tensor forward(const Tensor& x, Tape& tape) const override;
    Tensor backward(const Tensor& grad_out, Tape& tape) override;

private:
    int window_;
};

}  // namespace camo::nn
