#include "nn/sgd.hpp"

#include <cmath>

namespace camo::nn {

Sgd::Sgd(std::vector<Parameter*> params, Options opt) : params_(std::move(params)), opt_(opt) {
    if (opt_.momentum > 0.0F) {
        velocity_.reserve(params_.size());
        for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
    }
}

void Sgd::step() {
    float scale = 1.0F;
    if (opt_.clip_norm > 0.0F) {
        double norm2 = 0.0;
        for (Parameter* p : params_) {
            for (float g : p->grad.data()) norm2 += static_cast<double>(g) * g;
        }
        const double norm = std::sqrt(norm2);
        if (norm > opt_.clip_norm) scale = static_cast<float>(opt_.clip_norm / norm);
    }

    for (std::size_t pi = 0; pi < params_.size(); ++pi) {
        Parameter& p = *params_[pi];
        auto g = p.grad.data();
        auto v = p.value.data();
        for (std::size_t i = 0; i < g.size(); ++i) {
            float gi = g[i] * scale + opt_.weight_decay * v[i];
            if (opt_.momentum > 0.0F) {
                auto vel = velocity_[pi].data();
                vel[i] = opt_.momentum * vel[i] + gi;
                gi = vel[i];
            }
            v[i] -= opt_.lr * gi;
        }
        p.zero_grad();
    }
}

void Sgd::zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
}

}  // namespace camo::nn
