// Inference backend: packed-weight forward kernels behind an interface.
//
// The tape-based Layer::forward path is kept for training (its accumulation
// order is part of the repo's bit-identical training contract); inference
// instead repacks weights once into SIMD-friendly blocked layouts
// (common/simd.hpp) and runs through a Backend. Two implementations ship:
//
//   * scalar_backend() — the scalar reference kernels, byte-for-byte the
//     legacy per-output accumulation order. PolicyNetwork::infer through
//     this backend is bitwise identical to the tape forward.
//   * active_backend() — routes through simd::ops(), i.e. the best level
//     the build + CPU + CAMO_BACKEND allow (which may itself be scalar).
//
// Both read the same packed buffers: the blocked layout only changes where
// W[o][i] lives, not the order the scalar kernel reads it in. A future
// GPU / external-service backend implements the same interface on top of
// the packed weights.
#pragma once

#include <vector>

#include "common/simd.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/tensor.hpp"

namespace camo::nn {

/// A Linear (or RNN cell matrix) repacked row-blocked for gemm_blocked:
/// w[(blk * in + i) * kBlock + lane] = W[blk * kBlock + lane][i], with the
/// output dimension zero-padded up to a multiple of kBlock.
struct PackedLinear {
    int in = 0;
    int out = 0;
    int out_padded = 0;
    std::vector<float> w;
    std::vector<float> b;  // padded to out_padded
};

/// A Conv2d repacked [ic][ky][kx][oc_padded] (output channel innermost so
/// vector kernels broadcast one input pixel across a block of channels).
struct PackedConv2d {
    int in_ch = 0;
    int out_ch = 0;
    int out_ch_padded = 0;
    int k = 0;
    int stride = 0;
    int pad = 0;
    std::vector<float> w;
    std::vector<float> b;  // padded to out_ch_padded

    [[nodiscard]] int out_size(int in_size) const { return (in_size + 2 * pad - k) / stride + 1; }
};

/// Pack a weight matrix [out, in] (+ optional bias [out]; zeros otherwise).
PackedLinear pack_linear(const Tensor& w, const Tensor* b);
PackedLinear pack_linear(const Linear& layer);
PackedConv2d pack_conv2d(const Conv2d& layer);

class Backend {
public:
    virtual ~Backend() = default;

    [[nodiscard]] virtual const char* name() const = 0;

    /// y[r, :] = x[r, :] @ W^T + b for `rows` independent rows.
    virtual void linear(const PackedLinear& m, const float* x, int rows, float* y) const = 0;

    /// y[r, :] += x[r, :] @ W^T (bias ignored). The scalar backend resumes
    /// the existing accumulator per output element, matching the legacy RNN
    /// cell's single fused accumulation chain.
    virtual void linear_acc(const PackedLinear& m, const float* x, int rows, float* y) const = 0;

    /// One CHW sample: x [in_ch, h, w] -> y [out_ch, oh, ow].
    virtual void conv2d(const PackedConv2d& m, const float* x, int h, int w, float* y) const = 0;
};

/// Scalar reference backend: legacy accumulation order, bit-identical to
/// the tape forward. This is what CAMO_BACKEND=scalar pins end to end.
const Backend& scalar_backend();

/// Backend routed through the active SIMD dispatch table (honours
/// CAMO_BACKEND and simd::ScopedOverride).
const Backend& active_backend();

}  // namespace camo::nn
