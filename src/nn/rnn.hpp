// Multi-layer Elman RNN over a node sequence.
//
// Layer l at step t: h_l(t) = tanh(U_l in_l(t) + W_l h_l(t-1) + b_l), where
// in_0 = the input sequence and in_l = h_{l-1}. The output is the top
// layer's hidden sequence. This is the paper's sequential-decision module:
// the hidden state carries the context of previously decided segments so
// neighbouring movements are coordinated.
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace camo::nn {

class Rnn : public Layer {
public:
    Rnn(int input, int hidden, int layers, Rng& rng);

    /// x: [T, input] -> [T, hidden]. Full BPTT on backward.
    Tensor forward(const Tensor& x, Tape& tape) const override;
    Tensor backward(const Tensor& grad_out, Tape& tape) override;
    std::vector<Parameter*> params() override;

    [[nodiscard]] int hidden_size() const { return hidden_; }
    [[nodiscard]] int input_size() const { return input_; }
    [[nodiscard]] int num_layers() const { return layers_; }

    /// Read-only per-layer parameter views for the inference backend.
    [[nodiscard]] const Parameter& u(int layer) const {
        return u_[static_cast<std::size_t>(layer)];
    }
    [[nodiscard]] const Parameter& w(int layer) const {
        return w_[static_cast<std::size_t>(layer)];
    }
    [[nodiscard]] const Parameter& b(int layer) const {
        return b_[static_cast<std::size_t>(layer)];
    }

private:
    int input_;
    int hidden_;
    int layers_;
    std::vector<Parameter> u_;  // per layer: [hidden, in_l]
    std::vector<Parameter> w_;  // per layer: [hidden, hidden]
    std::vector<Parameter> b_;  // per layer: [hidden]
};

}  // namespace camo::nn
