#include "nn/backend.hpp"

#include <stdexcept>

namespace camo::nn {
namespace {

int pad_up(int n) { return (n + simd::kBlock - 1) / simd::kBlock * simd::kBlock; }

class OpsBackend : public Backend {
public:
    explicit OpsBackend(bool scalar) : scalar_(scalar) {}

    [[nodiscard]] const char* name() const override {
        return scalar_ ? "scalar" : simd::level_name(simd::active_level());
    }

    void linear(const PackedLinear& m, const float* x, int rows, float* y) const override {
        table().gemm_blocked(m.w.data(), m.b.data(), x, rows, m.in, m.out, m.out_padded, y,
                             /*accumulate=*/false);
    }

    void linear_acc(const PackedLinear& m, const float* x, int rows, float* y) const override {
        table().gemm_blocked(m.w.data(), m.b.data(), x, rows, m.in, m.out, m.out_padded, y,
                             /*accumulate=*/true);
    }

    void conv2d(const PackedConv2d& m, const float* x, int h, int w, float* y) const override {
        table().conv2d_packed(m.w.data(), m.b.data(), x, m.in_ch, h, w, m.out_ch,
                              m.out_ch_padded, m.k, m.stride, m.pad, y, m.out_size(h),
                              m.out_size(w));
    }

private:
    [[nodiscard]] const simd::Ops& table() const {
        return scalar_ ? simd::scalar_ops() : simd::ops();
    }

    bool scalar_;
};

}  // namespace

PackedLinear pack_linear(const Tensor& w, const Tensor* b) {
    const auto& shape = w.shape();
    if (shape.size() != 2) throw std::invalid_argument("pack_linear: weight must be rank 2");
    PackedLinear packed;
    packed.out = shape[0];
    packed.in = shape[1];
    packed.out_padded = pad_up(packed.out);
    packed.w.assign(static_cast<std::size_t>(packed.out_padded) *
                        static_cast<std::size_t>(packed.in),
                    0.0F);
    packed.b.assign(static_cast<std::size_t>(packed.out_padded), 0.0F);
    for (int o = 0; o < packed.out; ++o) {
        const int blk = o / simd::kBlock;
        const int lane = o % simd::kBlock;
        for (int i = 0; i < packed.in; ++i) {
            packed.w[(static_cast<std::size_t>(blk) * static_cast<std::size_t>(packed.in) +
                      static_cast<std::size_t>(i)) *
                         simd::kBlock +
                     static_cast<std::size_t>(lane)] = w.at(o, i);
        }
        if (b != nullptr) packed.b[static_cast<std::size_t>(o)] = (*b)[static_cast<std::size_t>(o)];
    }
    return packed;
}

PackedLinear pack_linear(const Linear& layer) {
    return pack_linear(layer.weight().value, &layer.bias().value);
}

PackedConv2d pack_conv2d(const Conv2d& layer) {
    PackedConv2d packed;
    packed.in_ch = layer.in_channels();
    packed.out_ch = layer.out_channels();
    packed.out_ch_padded = pad_up(packed.out_ch);
    packed.k = layer.kernel();
    packed.stride = layer.stride();
    packed.pad = layer.padding();
    const std::size_t taps = static_cast<std::size_t>(packed.in_ch) *
                             static_cast<std::size_t>(packed.k) *
                             static_cast<std::size_t>(packed.k);
    packed.w.assign(taps * static_cast<std::size_t>(packed.out_ch_padded), 0.0F);
    packed.b.assign(static_cast<std::size_t>(packed.out_ch_padded), 0.0F);
    const Tensor& w = layer.weight().value;
    const Tensor& b = layer.bias().value;
    for (int oc = 0; oc < packed.out_ch; ++oc) {
        for (int ic = 0; ic < packed.in_ch; ++ic) {
            for (int ky = 0; ky < packed.k; ++ky) {
                for (int kx = 0; kx < packed.k; ++kx) {
                    const std::size_t idx =
                        ((static_cast<std::size_t>(ic) * static_cast<std::size_t>(packed.k) +
                          static_cast<std::size_t>(ky)) *
                             static_cast<std::size_t>(packed.k) +
                         static_cast<std::size_t>(kx)) *
                            static_cast<std::size_t>(packed.out_ch_padded) +
                        static_cast<std::size_t>(oc);
                    packed.w[idx] = w.at(oc, ic, ky, kx);
                }
            }
        }
        packed.b[static_cast<std::size_t>(oc)] = b[static_cast<std::size_t>(oc)];
    }
    return packed;
}

const Backend& scalar_backend() {
    static const OpsBackend backend{/*scalar=*/true};
    return backend;
}

const Backend& active_backend() {
    static const OpsBackend backend{/*scalar=*/false};
    return backend;
}

}  // namespace camo::nn
