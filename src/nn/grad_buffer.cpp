#include "nn/grad_buffer.hpp"

#include <stdexcept>

namespace camo::nn {

void GradBuffer::capture(const std::vector<Parameter*>& params) {
    grads_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
        grads_[i] = params[i]->grad;
        params[i]->zero_grad();
    }
}

void GradBuffer::merge(const GradBuffer& other) {
    if (other.grads_.empty()) return;
    if (grads_.empty()) {
        grads_ = other.grads_;
        return;
    }
    if (grads_.size() != other.grads_.size()) {
        throw std::invalid_argument("GradBuffer::merge: parameter count mismatch");
    }
    for (std::size_t i = 0; i < grads_.size(); ++i) grads_[i].add_(other.grads_[i]);
}

void GradBuffer::add_to(const std::vector<Parameter*>& params) const {
    if (grads_.size() != params.size()) {
        throw std::invalid_argument("GradBuffer::add_to: parameter count mismatch");
    }
    for (std::size_t i = 0; i < params.size(); ++i) params[i]->grad.add_(grads_[i]);
}

void reduce_in_order(const std::vector<GradBuffer>& buffers,
                     const std::vector<Parameter*>& params) {
    for (const GradBuffer& b : buffers) {
        if (!b.empty()) b.add_to(params);
    }
}

}  // namespace camo::nn
