#include "nn/conv2d.hpp"

#include "nn/init.hpp"

namespace camo::nn {

Conv2d::Conv2d(int in_ch, int out_ch, int kernel, int stride, int padding, Rng& rng)
    : in_ch_(in_ch),
      out_ch_(out_ch),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      w_({out_ch, in_ch, kernel, kernel}),
      b_({out_ch}) {
    init_he(w_.value, in_ch * kernel * kernel, rng);
}

Tensor Conv2d::forward(const Tensor& x, Tape& tape) const {
    if (x.rank() != 3 || x.dim(0) != in_ch_) throw std::invalid_argument("Conv2d: input shape");
    const int h = x.dim(1);
    const int w = x.dim(2);
    const int oh = out_size(h);
    const int ow = out_size(w);

    Tensor y({out_ch_, oh, ow});
    for (int oc = 0; oc < out_ch_; ++oc) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                float acc = b_.value[static_cast<std::size_t>(oc)];
                const int iy0 = oy * stride_ - pad_;
                const int ix0 = ox * stride_ - pad_;
                for (int ic = 0; ic < in_ch_; ++ic) {
                    for (int ky = 0; ky < k_; ++ky) {
                        const int iy = iy0 + ky;
                        if (iy < 0 || iy >= h) continue;
                        for (int kx = 0; kx < k_; ++kx) {
                            const int ix = ix0 + kx;
                            if (ix < 0 || ix >= w) continue;
                            acc += w_.value.at(oc, ic, ky, kx) * x.at(ic, iy, ix);
                        }
                    }
                }
                y.at(oc, oy, ox) = acc;
            }
        }
    }
    tape.push(x.reshaped(x.shape()));
    return y;
}

Tensor Conv2d::backward(const Tensor& grad_out, Tape& tape) {
    const Tensor x = tape.pop();
    const int h = x.dim(1);
    const int w = x.dim(2);
    const int oh = grad_out.dim(1);
    const int ow = grad_out.dim(2);

    // Per-call gradients accumulate into locals and fold in with one
    // addition per element (the Layer::backward accumulation contract).
    Tensor gw(w_.grad.shape());
    Tensor gb(b_.grad.shape());
    Tensor gx(x.shape());
    for (int oc = 0; oc < out_ch_; ++oc) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                const float go = grad_out.at(oc, oy, ox);
                if (go == 0.0F) continue;
                gb[static_cast<std::size_t>(oc)] += go;
                const int iy0 = oy * stride_ - pad_;
                const int ix0 = ox * stride_ - pad_;
                for (int ic = 0; ic < in_ch_; ++ic) {
                    for (int ky = 0; ky < k_; ++ky) {
                        const int iy = iy0 + ky;
                        if (iy < 0 || iy >= h) continue;
                        for (int kx = 0; kx < k_; ++kx) {
                            const int ix = ix0 + kx;
                            if (ix < 0 || ix >= w) continue;
                            gw.at(oc, ic, ky, kx) += go * x.at(ic, iy, ix);
                            gx.at(ic, iy, ix) += go * w_.value.at(oc, ic, ky, kx);
                        }
                    }
                }
            }
        }
    }
    w_.grad.add_(gw);
    b_.grad.add_(gb);
    return gx;
}

}  // namespace camo::nn
