// Save/load a parameter list to a binary file. Shapes are verified on load
// so a file trained with a different architecture is rejected, not misread.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace camo::nn {

void save_params(const std::string& path, const std::vector<Parameter*>& params);

/// Returns false (leaving params untouched) if the file is missing or the
/// shapes do not match.
bool load_params(const std::string& path, const std::vector<Parameter*>& params);

}  // namespace camo::nn
