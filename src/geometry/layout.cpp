#include "geometry/layout.hpp"

#include <stdexcept>

namespace camo::geo {

SegmentedLayout::SegmentedLayout(std::vector<Polygon> targets, const FragmentOptions& opt,
                                 std::vector<Polygon> srafs, int clip_size_nm)
    : targets_(std::move(targets)), srafs_(std::move(srafs)), clip_size_(clip_size_nm) {
    poly_begin_.push_back(0);
    for (int p = 0; p < static_cast<int>(targets_.size()); ++p) {
        targets_[p].normalize();
        auto segs = fragment_polygon(targets_[p], opt, p);
        segments_.insert(segments_.end(), segs.begin(), segs.end());
        poly_begin_.push_back(static_cast<int>(segments_.size()));
    }
    for (Polygon& s : srafs_) s.normalize();
}

std::vector<Polygon> SegmentedLayout::reconstruct_mask(std::span<const int> offsets) const {
    if (static_cast<int>(offsets.size()) != num_segments()) {
        throw std::invalid_argument("reconstruct_mask: offsets size mismatch");
    }

    std::vector<Polygon> out;
    out.reserve(targets_.size());
    for (int p = 0; p < static_cast<int>(targets_.size()); ++p) {
        out.push_back(reconstruct_polygon(p, offsets));
    }
    return out;
}

Polygon SegmentedLayout::reconstruct_polygon(int p, std::span<const int> offsets) const {
    if (p < 0 || p >= static_cast<int>(targets_.size())) {
        throw std::invalid_argument("reconstruct_polygon: polygon index out of range");
    }
    if (static_cast<int>(offsets.size()) != num_segments()) {
        throw std::invalid_argument("reconstruct_polygon: offsets size mismatch");
    }

    const auto [begin, end] = polygon_segment_range(p);
    const int n = end - begin;
    std::vector<Point> verts;
    verts.reserve(static_cast<std::size_t>(n) * 2);

    for (int i = 0; i < n; ++i) {
        const Segment& s = segments_[begin + i];
        const Segment& t = segments_[begin + (i + 1) % n];
        const int s_line = s.moved_line(offsets[begin + i]);
        const int t_line = t.moved_line(offsets[begin + (i + 1) % n]);

        if (s.axis == t.axis) {
            // Collinear neighbours on the same edge: perpendicular jog at
            // the shared fragmentation boundary (s.t1 == t.t0).
            if (s.axis == Axis::kHorizontal) {
                verts.push_back({s.t1, s_line});
                verts.push_back({t.t0, t_line});
            } else {
                verts.push_back({s_line, s.t1});
                verts.push_back({t_line, t.t0});
            }
        } else {
            // Corner: intersection of the two shifted edge lines.
            if (s.axis == Axis::kHorizontal) {
                verts.push_back({t_line, s_line});
            } else {
                verts.push_back({s_line, t_line});
            }
        }
    }

    Polygon poly(std::move(verts));
    poly.normalize();
    return poly;
}

std::vector<MeasurePoint> SegmentedLayout::measure_points() const {
    std::vector<MeasurePoint> pts;
    for (int i = 0; i < num_segments(); ++i) {
        const Segment& s = segments_[i];
        if (!s.measured) continue;
        pts.push_back({s.control(), s.normal(), i});
    }
    return pts;
}

}  // namespace camo::geo
