// SegmentedLayout: a clip's target polygons, their fragmentation into
// movable segments, optional static SRAFs, and the reconstruction of mask
// polygons from per-segment perpendicular offsets.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "geometry/fragment.hpp"
#include "geometry/polygon.hpp"
#include "geometry/segment.hpp"

namespace camo::geo {

class SegmentedLayout {
public:
    SegmentedLayout() = default;

    /// Fragment `targets` (normalized to CCW internally) with the given
    /// policy. SRAFs are carried along unfragmented; they are part of the
    /// mask but never move and never carry measure points.
    SegmentedLayout(std::vector<Polygon> targets, const FragmentOptions& opt,
                    std::vector<Polygon> srafs = {}, int clip_size_nm = 2000);

    [[nodiscard]] const std::vector<Polygon>& targets() const { return targets_; }
    [[nodiscard]] const std::vector<Polygon>& srafs() const { return srafs_; }
    [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }
    [[nodiscard]] int num_segments() const { return static_cast<int>(segments_.size()); }
    [[nodiscard]] int clip_size_nm() const { return clip_size_; }

    /// [begin, end) segment-index range of polygon `p`.
    [[nodiscard]] std::pair<int, int> polygon_segment_range(int p) const {
        return {poly_begin_[p], poly_begin_[p + 1]};
    }

    /// Rebuild the mask polygons implied by per-segment offsets
    /// (offsets.size() == num_segments()). Each segment's edge line moves by
    /// offset * outward; neighbours are joined with perpendicular jogs and
    /// corners with the intersection of the two shifted lines. SRAFs are not
    /// included; callers append srafs() when rasterizing the full mask.
    [[nodiscard]] std::vector<Polygon> reconstruct_mask(std::span<const int> offsets) const;

    /// Mask polygon of target `p` alone under the same offsets convention
    /// (`offsets` spans all segments; only polygon p's range is read). A
    /// segment's move affects exactly its owning polygon, which is what lets
    /// incremental evaluation re-rasterize only the dirty polygons.
    [[nodiscard]] Polygon reconstruct_polygon(int p, std::span<const int> offsets) const;

    /// Measure points of all `measured` segments, at segment centers on the
    /// target boundary, in segment order.
    [[nodiscard]] std::vector<MeasurePoint> measure_points() const;

private:
    std::vector<Polygon> targets_;
    std::vector<Polygon> srafs_;
    std::vector<Segment> segments_;
    std::vector<int> poly_begin_;  // size = targets+1
    int clip_size_ = 2000;
};

}  // namespace camo::geo
