// Area-coverage rasterization of rectilinear polygons.
//
// The rasterizer is exact: each pixel value is the fraction of the pixel
// covered by the polygon set (clamped to [0,1] when polygons overlap). It
// uses the signed-trapezoid identity for closed rectilinear loops: every
// horizontal edge (x1 -> x2 at height y) contributes sign(x1 -> x2) times the
// axis-aligned region [min,max] x (-inf, y], where leftward edges count +1.
// Summing those signed coverages per pixel yields the winding number, which
// is the coverage for simple CCW polygons. Because the identity holds for
// any closed loop, staircase OPC masks with aggressive per-segment offsets
// rasterize robustly even if a reconstruction self-touches.
#pragma once

#include <span>
#include <vector>

#include "geometry/polygon.hpp"

namespace camo::geo {

/// Square coverage grid. Pixel (row, col) covers the nm-domain
/// [col*pixel, (col+1)*pixel] x [row*pixel, (row+1)*pixel]; row 0 is the
/// bottom of the clip (y-up).
class Raster {
public:
    Raster(int n, double pixel_nm);

    [[nodiscard]] int n() const { return n_; }
    [[nodiscard]] double pixel_nm() const { return pixel_; }

    [[nodiscard]] float at(int row, int col) const { return a_[idx(row, col)]; }
    float& at(int row, int col) { return a_[idx(row, col)]; }

    [[nodiscard]] std::span<const float> data() const { return a_; }
    [[nodiscard]] std::span<float> data() { return a_; }

    void fill(float v);

    /// Accumulate the signed coverage of a polygon scaled by `weight`.
    void add_polygon(const Polygon& poly, float weight = 1.0F);

    /// Accumulate several polygons then clamp into [0, 1].
    void rasterize(std::span<const Polygon> polys);

    /// Clamp every pixel into [0, 1].
    void clamp01();

    /// Sum of all pixel coverages times pixel area = covered area in nm^2.
    [[nodiscard]] double coverage_area_nm2() const;

    /// Bilinear sample at an nm-domain location (pixel centers are the
    /// lattice); coordinates are clamped to the grid interior.
    [[nodiscard]] double sample(double x_nm, double y_nm) const;

private:
    [[nodiscard]] std::size_t idx(int row, int col) const {
        return static_cast<std::size_t>(row) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(col);
    }

    int n_;
    double pixel_;
    std::vector<float> a_;
};

}  // namespace camo::geo
