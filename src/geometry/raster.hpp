// Area-coverage rasterization of rectilinear polygons.
//
// The rasterizer is exact: each pixel value is the fraction of the pixel
// covered by the polygon set (clamped to [0,1] when polygons overlap). It
// uses the signed-trapezoid identity for closed rectilinear loops: every
// horizontal edge (x1 -> x2 at height y) contributes sign(x1 -> x2) times the
// axis-aligned region [min,max] x (-inf, y], where leftward edges count +1.
// Summing those signed coverages per pixel yields the winding number, which
// is the coverage for simple CCW polygons. Because the identity holds for
// any closed loop, staircase OPC masks with aggressive per-segment offsets
// rasterize robustly even if a reconstruction self-touches.
#pragma once

#include <span>
#include <vector>

#include "geometry/polygon.hpp"

namespace camo::geo {

/// Half-open pixel rectangle [r0, r1) x [c0, c1) on a raster grid.
struct PixelRect {
    int r0 = 0;
    int c0 = 0;
    int r1 = 0;
    int c1 = 0;

    [[nodiscard]] bool empty() const { return r0 >= r1 || c0 >= c1; }
    [[nodiscard]] int rows() const { return r1 - r0; }
    [[nodiscard]] int cols() const { return c1 - c0; }
    [[nodiscard]] std::size_t area() const {
        return empty() ? 0 : static_cast<std::size_t>(rows()) * static_cast<std::size_t>(cols());
    }
};

/// Smallest rectangle containing both inputs (empty inputs are ignored).
PixelRect unite(const PixelRect& a, const PixelRect& b);

/// Square coverage grid. Pixel (row, col) covers the nm-domain
/// [col*pixel, (col+1)*pixel] x [row*pixel, (row+1)*pixel]; row 0 is the
/// bottom of the clip (y-up).
class Raster {
public:
    Raster(int n, double pixel_nm);

    [[nodiscard]] int n() const { return n_; }
    [[nodiscard]] double pixel_nm() const { return pixel_; }

    [[nodiscard]] float at(int row, int col) const { return a_[idx(row, col)]; }
    float& at(int row, int col) { return a_[idx(row, col)]; }

    [[nodiscard]] std::span<const float> data() const { return a_; }
    [[nodiscard]] std::span<float> data() { return a_; }

    void fill(float v);

    /// Accumulate the signed coverage of a polygon scaled by `weight`.
    void add_polygon(const Polygon& poly, float weight = 1.0F);

    /// Accumulate several polygons then clamp into [0, 1].
    void rasterize(std::span<const Polygon> polys);

    /// Clamp every pixel into [0, 1].
    void clamp01();

    /// Sum of all pixel coverages times pixel area = covered area in nm^2.
    [[nodiscard]] double coverage_area_nm2() const;

    /// Bilinear sample at an nm-domain location (pixel centers are the
    /// lattice); coordinates are clamped to the grid interior.
    [[nodiscard]] double sample(double x_nm, double y_nm) const;

private:
    [[nodiscard]] std::size_t idx(int row, int col) const {
        return static_cast<std::size_t>(row) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(col);
    }

    int n_;
    double pixel_;
    std::vector<float> a_;
};

/// Pixel rect that covers every pixel whose value Raster::add_polygon(poly)
/// can change on an n x n grid, clamped to the grid. The row range always
/// starts at 0: the signed-trapezoid identity writes each edge's coverage to
/// every row below it, and the per-column float cancellation below the
/// polygon is only exact once all of the loop's edges are summed — so pixels
/// down to row 0 can carry (tiny) residuals that a delta raster must
/// reproduce bit for bit.
PixelRect polygon_coverage_rect(const Polygon& poly, double pixel_nm, int n);

/// Accumulate the signed coverage of `poly` into `buf` (row-major
/// region.rows() x region.cols(), pixel (r, c) of the grid at
/// buf[(r - region.r0) * cols + (c - region.c0)]), restricted to `region`.
///
/// Bitwise contract: provided region.r0 == 0 (enforced) and `region`
/// contains polygon_coverage_rect(poly, pixel_nm, n) column-wise, the value
/// added to each pixel inside `region` is bit-identical to what
/// Raster::add_polygon(poly, weight) adds to that pixel — per-pixel coverage
/// is a pure function of (polygon, row, column), independent of the region's
/// column range. This is what lets an incremental evaluator subtract a
/// cached polygon's contribution exactly.
void add_polygon_region(std::span<float> buf, const PixelRect& region, const Polygon& poly,
                        double pixel_nm, int n, float weight = 1.0F);

}  // namespace camo::geo
