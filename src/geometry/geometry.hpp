// Basic integer-nanometer geometry types.
//
// All layout coordinates in this library are integers in nanometers with a
// y-up axis convention. Counter-clockwise polygon orientation encloses
// positive area; the interior lies on the left of the direction of travel,
// so the outward normal is the right-hand side of travel.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace camo::geo {

/// Integer point in nanometers.
struct Point {
    int x = 0;
    int y = 0;

    friend bool operator==(const Point&, const Point&) = default;
};

/// Floating-point location in nanometers (sub-pixel results, control points).
struct FPoint {
    double x = 0.0;
    double y = 0.0;

    friend bool operator==(const FPoint&, const FPoint&) = default;
};

inline double distance(const FPoint& a, const FPoint& b) {
    return std::hypot(a.x - b.x, a.y - b.y);
}

/// Closed axis-aligned rectangle [xlo, xhi] x [ylo, yhi].
struct Rect {
    int xlo = 0;
    int ylo = 0;
    int xhi = 0;
    int yhi = 0;

    [[nodiscard]] int width() const { return xhi - xlo; }
    [[nodiscard]] int height() const { return yhi - ylo; }
    [[nodiscard]] bool empty() const { return xhi <= xlo || yhi <= ylo; }
    [[nodiscard]] long long area() const {
        return empty() ? 0LL
                       : static_cast<long long>(width()) * static_cast<long long>(height());
    }
    [[nodiscard]] FPoint center() const {
        return {0.5 * (xlo + xhi), 0.5 * (ylo + yhi)};
    }
    [[nodiscard]] bool contains(const Point& p) const {
        return p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi;
    }
    [[nodiscard]] bool intersects(const Rect& o) const {
        return xlo < o.xhi && o.xlo < xhi && ylo < o.yhi && o.ylo < yhi;
    }
    [[nodiscard]] Rect expanded(int margin) const {
        return {xlo - margin, ylo - margin, xhi + margin, yhi + margin};
    }

    friend bool operator==(const Rect&, const Rect&) = default;
};

/// Minimum separation between two rectangles along axes (0 if they overlap
/// or touch in that axis). Useful for spacing-rule checks in generators.
inline int rect_gap(const Rect& a, const Rect& b) {
    const int dx = std::max({a.xlo - b.xhi, b.xlo - a.xhi, 0});
    const int dy = std::max({a.ylo - b.yhi, b.ylo - a.yhi, 0});
    // Chebyshev-style: diagonal neighbours are as far as the larger gap.
    return std::max(dx, dy);
}

/// Axis of an edge or segment.
enum class Axis : std::uint8_t { kHorizontal, kVertical };

}  // namespace camo::geo
