// Boundary segments: the movable unit of OPC correction.
//
// Fragmentation splits each polygon edge into one or more segments. A
// segment lives on an axis-parallel line; moving it by `offset` nanometers
// displaces that line along the outward normal (positive = outward, i.e.
// the mask grows locally; negative = inward). Control points (segment
// midpoints on the *target* boundary) are fixed for the whole OPC run, so
// the segment graph and node count never change — matching the paper's
// consistent fragmentation strategy.
#pragma once

#include <cstdint>

#include "geometry/geometry.hpp"

namespace camo::geo {

struct Segment {
    Axis axis = Axis::kHorizontal;  ///< direction the segment runs along
    int line = 0;   ///< fixed coordinate of the target edge (y if horizontal)
    int t0 = 0;     ///< start coordinate along the direction of travel (CCW)
    int t1 = 0;     ///< end coordinate along the direction of travel
    int outward = 1;  ///< outward normal sign along the fixed axis (+1/-1)
    int poly = 0;     ///< owning polygon index within the layout
    int edge = 0;     ///< owning edge index within the polygon
    bool measured = false;  ///< whether an EPE measure point sits at its center

    [[nodiscard]] int length() const { return t0 < t1 ? t1 - t0 : t0 - t1; }

    /// Segment midpoint on the target boundary (fixed over the OPC run).
    [[nodiscard]] FPoint control() const {
        const double mid = 0.5 * (t0 + t1);
        if (axis == Axis::kHorizontal) return {mid, static_cast<double>(line)};
        return {static_cast<double>(line), mid};
    }

    /// Unit outward normal.
    [[nodiscard]] FPoint normal() const {
        if (axis == Axis::kHorizontal) return {0.0, static_cast<double>(outward)};
        return {static_cast<double>(outward), 0.0};
    }

    /// Line coordinate after applying a perpendicular offset (nm, +=outward).
    [[nodiscard]] int moved_line(int offset) const { return line + offset * outward; }
};

/// EPE measurement site: a location on the target boundary plus the outward
/// normal along which the printed-contour displacement is measured.
struct MeasurePoint {
    FPoint pos;
    FPoint normal;    ///< unit outward normal
    int segment = 0;  ///< index of the owning segment in the layout
};

}  // namespace camo::geo
