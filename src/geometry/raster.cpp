#include "geometry/raster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace camo::geo {

PixelRect unite(const PixelRect& a, const PixelRect& b) {
    if (a.empty()) return b;
    if (b.empty()) return a;
    return {std::min(a.r0, b.r0), std::min(a.c0, b.c0), std::max(a.r1, b.r1),
            std::max(a.c1, b.c1)};
}

PixelRect polygon_coverage_rect(const Polygon& poly, double pixel_nm, int n) {
    if (poly.empty()) return {};
    const Rect bb = poly.bbox();
    const int c0 = std::clamp(static_cast<int>(std::floor(bb.xlo / pixel_nm)), 0, n);
    const int c1 = std::clamp(static_cast<int>(std::ceil(bb.xhi / pixel_nm)), 0, n);
    // +1: an edge exactly on a pixel boundary still touches the row above it
    // (add_polygon writes a zero partial contribution there, which can flip
    // the sign of a float zero).
    const int r1 = std::clamp(static_cast<int>(std::floor(bb.yhi / pixel_nm)) + 1, 0, n);
    return {0, c0, r1, c1};
}

void add_polygon_region(std::span<float> buf, const PixelRect& region, const Polygon& poly,
                        double pixel_nm, int n, float weight) {
    if (region.empty()) return;
    if (region.r0 != 0) {
        throw std::invalid_argument("add_polygon_region: region.r0 must be 0");
    }
    if (buf.size() != region.area()) {
        throw std::invalid_argument("add_polygon_region: buffer size mismatch");
    }

    const auto& v = poly.vertices();
    const int nv = static_cast<int>(v.size());
    if (nv < 4) return;

    const int rows = region.rows();
    const int cols = region.cols();

    // Same difference-array scheme as Raster::add_polygon, restricted to the
    // region's columns. Keeping the loop structure, clamps and accumulation
    // order identical is what makes the result bit-compatible.
    std::vector<float> col_diff(static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows + 1),
                                0.0F);
    auto col_diff_at = [&](int row, int lc) -> float& {
        return col_diff[static_cast<std::size_t>(lc) * static_cast<std::size_t>(rows + 1) +
                        static_cast<std::size_t>(row)];
    };

    for (int i = 0; i < nv; ++i) {
        const Point& a = v[i];
        const Point& b = v[(i + 1) % nv];
        if (a.y != b.y || a.x == b.x) continue;  // horizontal edges only

        const float sign = (b.x < a.x) ? weight : -weight;
        const double x0 = std::min(a.x, b.x) / pixel_nm;
        const double x1 = std::max(a.x, b.x) / pixel_nm;
        const double y = a.y / pixel_nm;
        if (y <= 0.0) continue;  // region (-inf, y] misses the grid entirely

        const int c0 = std::max(region.c0, std::max(0, static_cast<int>(std::floor(x0))));
        const int c1 =
            std::min(region.c1 - 1, std::min(n - 1, static_cast<int>(std::ceil(x1)) - 1));
        if (c0 > c1) continue;

        const double y_clamped = std::min(y, static_cast<double>(n));
        const int ry = static_cast<int>(std::floor(y_clamped));
        const double fy = y_clamped - ry;  // fraction of partial row covered

        for (int c = c0; c <= c1; ++c) {
            const double lo = std::max(x0, static_cast<double>(c));
            const double hi = std::min(x1, static_cast<double>(c + 1));
            const double fx = hi - lo;
            if (fx <= 0.0) continue;
            const float val = sign * static_cast<float>(fx);
            const int lc = c - region.c0;
            col_diff_at(0, lc) += val;
            if (ry < rows) {  // rows == region.r1 since r0 == 0
                col_diff_at(ry, lc) -= val;
                buf[static_cast<std::size_t>(ry) * static_cast<std::size_t>(cols) +
                    static_cast<std::size_t>(lc)] += val * static_cast<float>(fy);
            }
        }
    }

    for (int lc = 0; lc < cols; ++lc) {
        float run = 0.0F;
        for (int r = 0; r < rows; ++r) {
            run += col_diff_at(r, lc);
            buf[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
                static_cast<std::size_t>(lc)] += run;
        }
    }
}

Raster::Raster(int n, double pixel_nm) : n_(n), pixel_(pixel_nm) {
    if (n <= 0 || pixel_nm <= 0.0) throw std::invalid_argument("bad raster dims");
    a_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0F);
}

void Raster::fill(float v) { std::fill(a_.begin(), a_.end(), v); }

void Raster::add_polygon(const Polygon& poly, float weight) {
    const auto& v = poly.vertices();
    const int nv = static_cast<int>(v.size());
    if (nv < 4) return;

    // Per-column running contribution of full rows, applied bottom-up:
    // full[c] accumulates the signed x-coverage active from row `r` upward is
    // handled edge by edge instead: every horizontal edge touches O(width)
    // columns and O(1) rows via a difference array.
    std::vector<float> col_diff(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_ + 1),
                                0.0F);

    auto col_diff_at = [&](int row, int col) -> float& {
        return col_diff[static_cast<std::size_t>(col) * static_cast<std::size_t>(n_ + 1) +
                        static_cast<std::size_t>(row)];
    };

    for (int i = 0; i < nv; ++i) {
        const Point& a = v[i];
        const Point& b = v[(i + 1) % nv];
        if (a.y != b.y || a.x == b.x) continue;  // horizontal edges only

        const float sign = (b.x < a.x) ? weight : -weight;
        const double x0 = std::min(a.x, b.x) / pixel_;
        const double x1 = std::max(a.x, b.x) / pixel_;
        const double y = a.y / pixel_;
        if (y <= 0.0) continue;  // region (-inf, y] misses the grid entirely

        const int c0 = std::max(0, static_cast<int>(std::floor(x0)));
        const int c1 = std::min(n_ - 1, static_cast<int>(std::ceil(x1)) - 1);
        if (c0 > c1) continue;

        const double y_clamped = std::min(y, static_cast<double>(n_));
        const int ry = static_cast<int>(std::floor(y_clamped));
        const double fy = y_clamped - ry;  // fraction of partial row covered

        for (int c = c0; c <= c1; ++c) {
            const double lo = std::max(x0, static_cast<double>(c));
            const double hi = std::min(x1, static_cast<double>(c + 1));
            const double fx = hi - lo;
            if (fx <= 0.0) continue;
            const float val = sign * static_cast<float>(fx);
            // Rows [0, ry) get the full contribution, row ry a partial one.
            col_diff_at(0, c) += val;
            if (ry < n_) {
                col_diff_at(ry, c) -= val;
                a_[idx(ry, c)] += val * static_cast<float>(fy);
            }
        }
    }

    for (int c = 0; c < n_; ++c) {
        float run = 0.0F;
        for (int r = 0; r < n_; ++r) {
            run += col_diff_at(r, c);
            a_[idx(r, c)] += run;
        }
    }
}

void Raster::rasterize(std::span<const Polygon> polys) {
    fill(0.0F);
    for (const Polygon& p : polys) add_polygon(p);
    clamp01();
}

void Raster::clamp01() {
    for (float& x : a_) x = std::clamp(x, 0.0F, 1.0F);
}

double Raster::coverage_area_nm2() const {
    double sum = 0.0;
    for (float x : a_) sum += x;
    return sum * pixel_ * pixel_;
}

double Raster::sample(double x_nm, double y_nm) const {
    // Convert to continuous pixel-center coordinates.
    const double cx = x_nm / pixel_ - 0.5;
    const double cy = y_nm / pixel_ - 0.5;
    const double fx = std::clamp(cx, 0.0, static_cast<double>(n_ - 1));
    const double fy = std::clamp(cy, 0.0, static_cast<double>(n_ - 1));
    const int c0 = std::min(n_ - 2, static_cast<int>(std::floor(fx)));
    const int r0 = std::min(n_ - 2, static_cast<int>(std::floor(fy)));
    const double tx = fx - c0;
    const double ty = fy - r0;
    const double v00 = at(r0, c0);
    const double v01 = at(r0, c0 + 1);
    const double v10 = at(r0 + 1, c0);
    const double v11 = at(r0 + 1, c0 + 1);
    return (1 - ty) * ((1 - tx) * v00 + tx * v01) + ty * ((1 - tx) * v10 + tx * v11);
}

}  // namespace camo::geo
