#include "geometry/polygon.hpp"

#include <algorithm>
#include <limits>

namespace camo::geo {

Polygon Polygon::from_rect(const Rect& r) {
    return Polygon({{r.xlo, r.ylo}, {r.xhi, r.ylo}, {r.xhi, r.yhi}, {r.xlo, r.yhi}});
}

long long Polygon::signed_area2() const {
    long long acc = 0;
    const int n = size();
    for (int i = 0; i < n; ++i) {
        const Point& a = v_[i];
        const Point& b = v_[(i + 1) % n];
        acc += static_cast<long long>(a.x) * b.y - static_cast<long long>(b.x) * a.y;
    }
    return acc;
}

Rect Polygon::bbox() const {
    if (v_.empty()) return {};
    Rect r{std::numeric_limits<int>::max(), std::numeric_limits<int>::max(),
           std::numeric_limits<int>::min(), std::numeric_limits<int>::min()};
    for (const Point& p : v_) {
        r.xlo = std::min(r.xlo, p.x);
        r.ylo = std::min(r.ylo, p.y);
        r.xhi = std::max(r.xhi, p.x);
        r.yhi = std::max(r.yhi, p.y);
    }
    return r;
}

bool Polygon::is_rectilinear() const {
    const int n = size();
    if (n < 4) return false;
    for (int i = 0; i < n; ++i) {
        const Point& a = v_[i];
        const Point& b = v_[(i + 1) % n];
        const bool horizontal = (a.y == b.y) && (a.x != b.x);
        const bool vertical = (a.x == b.x) && (a.y != b.y);
        if (!horizontal && !vertical) return false;
    }
    return true;
}

bool Polygon::contains(const FPoint& p) const {
    // Cast a ray upward (+y); accumulate winding from horizontal edges above
    // the point whose x-span straddles p.x. Leftward edges (CCW tops) add +1.
    int winding = 0;
    const int n = size();
    for (int i = 0; i < n; ++i) {
        const Point& a = v_[i];
        const Point& b = v_[(i + 1) % n];
        if (a.y != b.y) continue;  // only horizontal edges cross an upward ray
        if (static_cast<double>(a.y) < p.y) continue;
        const double xlo = std::min(a.x, b.x);
        const double xhi = std::max(a.x, b.x);
        // Half-open span avoids double counting at shared vertices.
        if (p.x >= xlo && p.x < xhi) winding += (b.x < a.x) ? 1 : -1;
    }
    return winding != 0;
}

void Polygon::normalize() {
    if (v_.size() < 3) return;
    if (signed_area2() < 0) std::reverse(v_.begin(), v_.end());

    // Drop exact duplicates, then collinear middle vertices.
    std::vector<Point> out;
    out.reserve(v_.size());
    for (const Point& p : v_) {
        if (out.empty() || !(out.back() == p)) out.push_back(p);
    }
    if (out.size() > 1 && out.front() == out.back()) out.pop_back();

    std::vector<Point> cleaned;
    cleaned.reserve(out.size());
    const int n = static_cast<int>(out.size());
    for (int i = 0; i < n; ++i) {
        const Point& prev = out[(i + n - 1) % n];
        const Point& cur = out[i];
        const Point& next = out[(i + 1) % n];
        const bool collinear_x = (prev.x == cur.x && cur.x == next.x);
        const bool collinear_y = (prev.y == cur.y && cur.y == next.y);
        if (!collinear_x && !collinear_y) cleaned.push_back(cur);
    }
    v_ = std::move(cleaned);
}

}  // namespace camo::geo
