// Rectilinear (axis-aligned) polygon with integer-nm vertices.
#pragma once

#include <vector>

#include "geometry/geometry.hpp"

namespace camo::geo {

/// Closed rectilinear polygon. Vertices are listed without repeating the
/// first one; consecutive vertices must differ in exactly one coordinate.
/// normalize() enforces counter-clockwise orientation (positive area, y-up)
/// and removes zero-length and collinear-redundant vertices.
class Polygon {
public:
    Polygon() = default;
    explicit Polygon(std::vector<Point> vertices) : v_(std::move(vertices)) {}

    static Polygon from_rect(const Rect& r);

    [[nodiscard]] const std::vector<Point>& vertices() const { return v_; }
    [[nodiscard]] int size() const { return static_cast<int>(v_.size()); }
    [[nodiscard]] bool empty() const { return v_.empty(); }

    /// Twice the signed shoelace area (integer-exact). Positive = CCW.
    [[nodiscard]] long long signed_area2() const;

    /// Absolute area in nm^2.
    [[nodiscard]] double area() const {
        return 0.5 * static_cast<double>(std::abs(signed_area2()));
    }

    [[nodiscard]] Rect bbox() const;

    /// True if every edge is axis-parallel and non-degenerate.
    [[nodiscard]] bool is_rectilinear() const;

    /// Non-zero winding containment test (points exactly on the boundary
    /// count as inside for the upward-ray convention used here).
    [[nodiscard]] bool contains(const FPoint& p) const;

    /// Enforce CCW orientation and drop duplicate/collinear vertices.
    void normalize();

    friend bool operator==(const Polygon&, const Polygon&) = default;

private:
    std::vector<Point> v_;
};

}  // namespace camo::geo
