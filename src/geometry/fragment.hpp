// Boundary fragmentation policies.
//
// Via layers: each polygon edge is one segment, measured at its center (the
// paper's "edges are regarded as segments and no fragmentation is needed").
//
// Metal layers: edges along the primary (horizontal) direction are split so
// that measure points sit at 60 nm pitch centred on the edge, each point at
// the centre of its segment, with the division remainder absorbed by the two
// end segments; perpendicular edges (line ends) become single unmeasured
// segments that OPC may still move.
#pragma once

#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/segment.hpp"

namespace camo::geo {

enum class FragmentStyle { kVia, kMetal };

struct FragmentOptions {
    FragmentStyle style = FragmentStyle::kVia;
    int measure_pitch_nm = 60;  ///< measure-point spacing for metal edges
};

/// Fragment one polygon; segments come out in CCW boundary order.
/// `poly_index` is recorded into each segment.
std::vector<Segment> fragment_polygon(const Polygon& poly, const FragmentOptions& opt,
                                      int poly_index);

}  // namespace camo::geo
