#include "geometry/fragment.hpp"

#include <stdexcept>

namespace camo::geo {
namespace {

struct EdgeInfo {
    Axis axis;
    int line;
    int t0;
    int t1;
    int outward;
};

// Outward normal for a CCW polygon is the right-hand side of travel.
EdgeInfo classify_edge(const Point& a, const Point& b) {
    EdgeInfo e{};
    if (a.y == b.y) {
        e.axis = Axis::kHorizontal;
        e.line = a.y;
        e.t0 = a.x;
        e.t1 = b.x;
        // Travelling east (+x): right-hand side is -y; west: +y.
        e.outward = (b.x > a.x) ? -1 : +1;
    } else {
        e.axis = Axis::kVertical;
        e.line = a.x;
        e.t0 = a.y;
        e.t1 = b.y;
        // Travelling north (+y): right-hand side is +x; south: -x.
        e.outward = (b.y > a.y) ? +1 : -1;
    }
    return e;
}

// Split positions along [0, len] for a measured metal edge: k measure points
// at `pitch` spacing centred on the edge, segment boundaries at midpoints
// between points, remainder absorbed by the end segments.
std::vector<int> metal_cut_positions(int len, int pitch) {
    const int k = std::max(1, len / pitch);
    std::vector<int> cuts;  // interior cut positions, strictly inside (0,len)
    if (k == 1) return cuts;
    const int r = len - k * pitch;
    const double first_point = 0.5 * r + 0.5 * pitch;
    for (int i = 0; i + 1 < k; ++i) {
        const double boundary = first_point + pitch * i + 0.5 * pitch;
        cuts.push_back(static_cast<int>(boundary + 0.5));
    }
    return cuts;
}

}  // namespace

std::vector<Segment> fragment_polygon(const Polygon& poly, const FragmentOptions& opt,
                                      int poly_index) {
    if (!poly.is_rectilinear()) throw std::invalid_argument("fragment: non-rectilinear polygon");
    if (poly.signed_area2() <= 0) throw std::invalid_argument("fragment: polygon must be CCW");

    std::vector<Segment> segs;
    const auto& v = poly.vertices();
    const int nv = static_cast<int>(v.size());

    for (int i = 0; i < nv; ++i) {
        const EdgeInfo e = classify_edge(v[i], v[(i + 1) % nv]);
        const int len = std::abs(e.t1 - e.t0);
        const int dir = (e.t1 > e.t0) ? 1 : -1;

        const bool split = opt.style == FragmentStyle::kMetal && e.axis == Axis::kHorizontal;
        std::vector<int> cuts;  // distances from t0 along travel
        if (split) cuts = metal_cut_positions(len, opt.measure_pitch_nm);

        int prev = 0;
        cuts.push_back(len);
        for (int cut : cuts) {
            Segment s{};
            s.axis = e.axis;
            s.line = e.line;
            s.t0 = e.t0 + dir * prev;
            s.t1 = e.t0 + dir * cut;
            s.outward = e.outward;
            s.poly = poly_index;
            s.edge = i;
            s.measured = opt.style == FragmentStyle::kVia || split;
            segs.push_back(s);
            prev = cut;
        }
    }
    return segs;
}

}  // namespace camo::geo
