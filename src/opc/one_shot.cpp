#include "opc/one_shot.hpp"

#include <algorithm>
#include <cmath>

#include "common/timer.hpp"

namespace camo::opc {

EngineResult OneShotEngine::optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                                     const OpcOptions& opt) {
    Timer timer;
    EngineResult res;
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()),
                             opt.initial_bias_nm);

    const litho::SimMetrics m0 = sim.evaluate(layout, offsets);
    res.epe_history.push_back(m0.sum_abs_epe);
    res.pvb_history.push_back(m0.pvband_nm2);

    for (std::size_t i = 0; i < offsets.size(); ++i) {
        const int corr = static_cast<int>(std::lround(-opt_.gain * m0.epe_segment[i]));
        offsets[i] = std::clamp(offsets[i] + std::clamp(corr, -opt_.max_correction,
                                                        opt_.max_correction),
                                -opt.max_total_offset_nm, opt.max_total_offset_nm);
    }
    res.iterations = 1;

    res.final_metrics = sim.evaluate(layout, offsets);
    res.epe_history.push_back(res.final_metrics.sum_abs_epe);
    res.pvb_history.push_back(res.final_metrics.pvband_nm2);
    res.final_offsets = std::move(offsets);
    res.runtime_s = timer.seconds();
    return res;
}

}  // namespace camo::opc
