#include "opc/one_shot.hpp"

#include <algorithm>
#include <cmath>

#include "common/timer.hpp"
#include "opc/objective.hpp"

namespace camo::opc {

EngineResult OneShotEngine::optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                                     const OpcOptions& opt) {
    Timer timer;
    EngineResult res;
    const WindowObjective objective(opt, sim.config());
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()),
                             opt.initial_bias_nm);

    const litho::SimMetrics m0 = objective.prime(sim, layout, offsets, &res.final_window);
    res.epe_history.push_back(m0.sum_abs_epe);
    res.pvb_history.push_back(m0.pvband_nm2);

    // One-shot moves nearly every segment, so the second evaluation usually
    // exceeds the incremental fallback fraction and runs full — passing the
    // dirty set anyway keeps the engines uniform and exercises the fallback.
    std::vector<int> dirty;
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        const int corr = static_cast<int>(std::lround(-opt_.gain * m0.epe_segment[i]));
        const int next = std::clamp(offsets[i] + std::clamp(corr, -opt_.max_correction,
                                                            opt_.max_correction),
                                    -opt.max_total_offset_nm, opt.max_total_offset_nm);
        if (next != offsets[i]) {
            offsets[i] = next;
            dirty.push_back(static_cast<int>(i));
        }
    }
    res.iterations = 1;

    res.final_metrics = objective.evaluate(sim, layout, offsets, dirty, &res.final_window);
    res.epe_history.push_back(res.final_metrics.sum_abs_epe);
    res.pvb_history.push_back(res.final_metrics.pvband_nm2);
    res.final_offsets = std::move(offsets);
    res.runtime_s = timer.seconds();
    return res;
}

}  // namespace camo::opc
