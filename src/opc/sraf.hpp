// Rule-based sub-resolution assist feature (SRAF) insertion.
//
// The paper has Calibre insert SRAFs around via patterns before CAMO runs;
// this is the classical scatter-bar recipe: one bar per side of each via at
// a fixed distance, dropped when it would violate clearance to another main
// feature or a previously placed bar. SRAFs are below the printing
// threshold but steepen the image slope at the via edges and are included
// in the squish encoding exactly as the paper describes.
#pragma once

#include <vector>

#include "geometry/polygon.hpp"

namespace camo::opc {

struct SrafOptions {
    int bar_width_nm = 30;
    int bar_length_nm = 70;     ///< matches the via size
    int center_offset_nm = 110; ///< via centre to bar centre
    int clearance_nm = 50;      ///< min gap to any main feature or other bar
};

std::vector<geo::Polygon> insert_srafs(const std::vector<geo::Polygon>& targets,
                                       const SrafOptions& opt = {});

}  // namespace camo::opc
