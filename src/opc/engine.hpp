// Common interface of the segment-based OPC engines compared in the paper's
// tables (Calibre-proxy rule engine, DAMO-proxy one-shot, RL-OPC, CAMO).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geometry/layout.hpp"
#include "litho/simulator.hpp"
#include "rl/reward.hpp"

namespace camo::opc {

struct OpcOptions {
    int max_iterations = 10;

    /// Early exit when sum |EPE| / #target-polygons < this (paper's via rule:
    /// EPE per via < 4 nm). 0 disables.
    double exit_epe_per_feature = 0.0;

    /// Early exit when sum |EPE| / #measure-points < this (paper's metal
    /// rule: average EPE per point < 1 nm). 0 disables.
    double exit_epe_per_point = 0.0;

    /// Initial mask bias: every segment starts at this outward offset
    /// (paper initializes via masks by moving each edge outward 3 nm).
    int initial_bias_nm = 3;

    /// Total per-segment offset is clamped into +/- this bound.
    int max_total_offset_nm = 25;

    /// Which corner(s) of the process window the engine optimizes.
    /// kNominal preserves the legacy single-corner loop bit for bit. The
    /// window modes ride LithoSim::evaluate_window_incremental — one cached
    /// spectrum serving every corner per step — and drive feedback, early
    /// exit and the histories off the window objective.
    rl::RewardMode objective = rl::RewardMode::kNominal;

    /// Window for the window objectives; empty axes resolve to
    /// litho::WindowSpec::standard of the simulator's config. Ignored in
    /// kNominal mode.
    litho::WindowSpec window;

    /// Per-corner weights for kWeightedCorner in WindowSpec::corner order
    /// (empty = uniform). Ignored in the other modes.
    std::vector<double> corner_weights;
};

struct EngineResult {
    std::vector<int> final_offsets;

    /// In kNominal mode: the legacy single-corner metrics. In the window
    /// modes: the objective view (sum_abs_epe = the scalar window objective,
    /// pvband_nm2 = the exact band, epe/epe_segment = the objective
    /// corner(s)' profile) — see opc::objective_view.
    litho::SimMetrics final_metrics;

    std::vector<double> epe_history;  ///< objective sum |EPE| per iteration, entry 0 = initial mask
    std::vector<double> pvb_history;
    int iterations = 0;
    double runtime_s = 0.0;

    /// Full per-corner metrics of the final mask; populated only under a
    /// window objective (the per-step sweep's last result, for free).
    std::optional<litho::WindowMetrics> final_window;
};

class Engine {
public:
    virtual ~Engine() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    virtual EngineResult optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                                  const OpcOptions& opt) = 0;
};

/// True when either early-exit rule fires.
bool should_exit_early(double sum_abs_epe, int num_features, int num_points,
                       const OpcOptions& opt);

}  // namespace camo::opc
