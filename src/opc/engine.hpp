// Common interface of the segment-based OPC engines compared in the paper's
// tables (Calibre-proxy rule engine, DAMO-proxy one-shot, RL-OPC, CAMO).
#pragma once

#include <string>
#include <vector>

#include "geometry/layout.hpp"
#include "litho/simulator.hpp"

namespace camo::opc {

struct OpcOptions {
    int max_iterations = 10;

    /// Early exit when sum |EPE| / #target-polygons < this (paper's via rule:
    /// EPE per via < 4 nm). 0 disables.
    double exit_epe_per_feature = 0.0;

    /// Early exit when sum |EPE| / #measure-points < this (paper's metal
    /// rule: average EPE per point < 1 nm). 0 disables.
    double exit_epe_per_point = 0.0;

    /// Initial mask bias: every segment starts at this outward offset
    /// (paper initializes via masks by moving each edge outward 3 nm).
    int initial_bias_nm = 3;

    /// Total per-segment offset is clamped into +/- this bound.
    int max_total_offset_nm = 25;
};

struct EngineResult {
    std::vector<int> final_offsets;
    litho::SimMetrics final_metrics;
    std::vector<double> epe_history;  ///< sum |EPE| per iteration, entry 0 = initial mask
    std::vector<double> pvb_history;
    int iterations = 0;
    double runtime_s = 0.0;
};

class Engine {
public:
    virtual ~Engine() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    virtual EngineResult optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                                  const OpcOptions& opt) = 0;
};

/// True when either early-exit rule fires.
bool should_exit_early(double sum_abs_epe, int num_features, int num_points,
                       const OpcOptions& opt);

}  // namespace camo::opc
