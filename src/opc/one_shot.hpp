// One-shot OPC engine: this repo's stand-in for DAMO (a conditional-GAN
// generative model). The defining behaviour the paper's Table 1 relies on is
// preserved: a single inference produces the whole mask with no iterative
// exploration, making it by far the fastest engine and the one with the
// largest residual EPE. Here the inference is a closed-form correction
// profile computed from one lithography evaluation of the initial mask.
#pragma once

#include "opc/engine.hpp"

namespace camo::opc {

struct OneShotOptions {
    double gain = 0.8;       ///< aggressive single-shot correction
    int max_correction = 8;  ///< clamp of the one-time move
};

class OneShotEngine : public Engine {
public:
    explicit OneShotEngine(OneShotOptions opt = {}) : opt_(opt) {}

    [[nodiscard]] std::string name() const override { return "one-shot(damo-proxy)"; }

    EngineResult optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                          const OpcOptions& opt) override;

private:
    OneShotOptions opt_;
};

}  // namespace camo::opc
