#include "opc/objective.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace camo::opc {

litho::SimMetrics objective_view(const litho::WindowMetrics& wm,
                                 const rl::WindowRewardConfig& cfg) {
    litho::SimMetrics view;
    switch (cfg.mode) {
        case rl::RewardMode::kNominal: {
            const litho::CornerResult* nominal = wm.nominal_corner();
            if (nominal == nullptr) {
                throw std::invalid_argument("objective_view: window lacks the nominal corner");
            }
            view = nominal->metrics;
            break;
        }
        case rl::RewardMode::kWorstCorner: {
            if (wm.worst_corner < 0 ||
                wm.worst_corner >= static_cast<int>(wm.corners.size())) {
                throw std::invalid_argument("objective_view: window has no worst corner");
            }
            // Minimax feedback: a segment move shifts every corner's printed
            // edge by roughly the same amount, so the move that minimises a
            // segment's worst-corner |EPE| is the one that centres its
            // per-corner EPE range. Chasing the argmax corner's profile
            // instead oscillates — the worst corner flips between the
            // underprinting and overprinting extremes every iteration.
            const std::size_t points = wm.corners.front().metrics.epe.size();
            const std::size_t segments = wm.corners.front().metrics.epe_segment.size();
            const auto range_midpoints = [&wm](std::size_t count, auto&& values) {
                std::vector<double> mid(count, 0.0);
                for (std::size_t i = 0; i < count; ++i) {
                    double lo = values(wm.corners.front().metrics, i);
                    double hi = lo;
                    for (const litho::CornerResult& c : wm.corners) {
                        const double e = values(c.metrics, i);
                        lo = std::min(lo, e);
                        hi = std::max(hi, e);
                    }
                    mid[i] = 0.5 * (lo + hi);
                }
                return mid;
            };
            view.epe = range_midpoints(
                points, [](const litho::SimMetrics& m, std::size_t i) { return m.epe[i]; });
            view.epe_segment = range_midpoints(
                segments,
                [](const litho::SimMetrics& m, std::size_t i) { return m.epe_segment[i]; });
            break;
        }
        case rl::RewardMode::kWeightedCorner: {
            cfg.validate(static_cast<int>(wm.corners.size()));
            if (wm.corners.empty()) {
                throw std::invalid_argument("objective_view: window has no corners");
            }
            const std::size_t points = wm.corners.front().metrics.epe.size();
            const std::size_t segments = wm.corners.front().metrics.epe_segment.size();
            view.epe.assign(points, 0.0);
            view.epe_segment.assign(segments, 0.0);
            double weight_sum = 0.0;
            for (std::size_t c = 0; c < wm.corners.size(); ++c) {
                const double w = cfg.corner_weights.empty() ? 1.0 : cfg.corner_weights[c];
                const litho::SimMetrics& m = wm.corners[c].metrics;
                for (std::size_t i = 0; i < points; ++i) view.epe[i] += w * m.epe[i];
                for (std::size_t i = 0; i < segments; ++i) {
                    view.epe_segment[i] += w * m.epe_segment[i];
                }
                weight_sum += w;
            }
            if (weight_sum > 0.0) {
                for (double& e : view.epe) e /= weight_sum;
                for (double& e : view.epe_segment) e /= weight_sum;
            }
            break;
        }
    }
    // The scalar objective and band come from the shared reward reductions,
    // so window_step_reward on the (before, after) sweeps equals step_reward
    // on the (before, after) views by construction.
    view.sum_abs_epe = rl::window_objective_epe(wm, cfg);
    view.pvband_nm2 = rl::window_objective_pvb(wm, cfg);
    return view;
}

litho::WindowSpec resolve_objective_window(const litho::WindowSpec& window,
                                           const rl::WindowRewardConfig& reward,
                                           const litho::LithoConfig& cfg) {
    litho::WindowSpec spec = window;
    if (spec.doses.empty() && spec.defocus_nm.empty()) {
        spec = litho::WindowSpec::standard(cfg);
    }
    spec.validate();
    reward.validate(spec.corner_count());
    return spec;
}

WindowObjective::WindowObjective(const OpcOptions& opt, const litho::LithoConfig& cfg,
                                 const rl::RewardConfig& base) {
    reward_.base = base;
    reward_.mode = opt.objective;
    reward_.corner_weights = opt.corner_weights;
    if (!active()) return;
    spec_ = resolve_objective_window(opt.window, reward_, cfg);
}

litho::SimMetrics WindowObjective::prime(litho::LithoSim& sim,
                                         const geo::SegmentedLayout& layout,
                                         std::span<const int> offsets,
                                         std::optional<litho::WindowMetrics>* window) const {
    if (!active()) {
        if (window != nullptr) window->reset();
        return sim.evaluate_incremental(layout, offsets);
    }
    litho::WindowMetrics wm = sim.evaluate_window_prime(layout, offsets, spec_);
    litho::SimMetrics view = objective_view(wm, reward_);
    if (window != nullptr) *window = std::move(wm);
    return view;
}

litho::SimMetrics WindowObjective::evaluate(litho::LithoSim& sim,
                                            const geo::SegmentedLayout& layout,
                                            std::span<const int> offsets,
                                            std::span<const int> dirty,
                                            std::optional<litho::WindowMetrics>* window) const {
    if (!active()) {
        if (window != nullptr) window->reset();
        return sim.evaluate_incremental(layout, offsets, dirty);
    }
    litho::WindowMetrics wm = sim.evaluate_window_incremental(layout, offsets, spec_);
    litho::SimMetrics view = objective_view(wm, reward_);
    if (window != nullptr) *window = std::move(wm);
    return view;
}

}  // namespace camo::opc
