// Shared window-objective plumbing for the segment-based OPC engines.
//
// Every engine iterates the same way: evaluate the mask, read per-segment
// EPE as the feedback signal, test the early-exit rules on the scalar sum,
// move segments, repeat. WindowObjective generalizes that loop over the
// reward modes: in kNominal mode it is a zero-cost pass-through to the
// legacy incremental evaluation (bit-identical); in the window modes it
// evaluates the full dose x focus grid through the cached support spectrum
// (LithoSim::evaluate_window_incremental — one sparse delta-DFT per step
// serving every corner) and reduces the sweep to a SimMetrics "view" whose
// per-segment EPE, scalar sum and PV band are the objective's. The rule,
// one-shot and CAMO engines all drive their feedback off the view, so the
// nominal-vs-window ablation compares engines under identical protocols.
#pragma once

#include <optional>
#include <span>

#include "opc/engine.hpp"

namespace camo::opc {

/// Reduce a window sweep to the SimMetrics view that drives engine feedback
/// under `cfg.mode`:
///   * kNominal: the nominal corner's profile, pvband_nm2 = the two-corner
///     band (the exact quantities the legacy loop consumed);
///   * kWorstCorner: the minimax feedback profile — per segment / point,
///     the midpoint of the per-corner EPE range (centring a segment's
///     printed edge across the window minimises its worst-corner |EPE|;
///     chasing the argmax corner's profile oscillates) — with sum_abs_epe =
///     the worst corner's sum |EPE| and pvband_nm2 = the exact band;
///   * kWeightedCorner: the per-segment / per-point weighted mean profile,
///     sum_abs_epe = rl::window_objective_epe, pvband_nm2 = exact band.
litho::SimMetrics objective_view(const litho::WindowMetrics& wm,
                                 const rl::WindowRewardConfig& cfg);

/// Resolve a window-objective spec against the simulator's config: a fully
/// empty window becomes litho::WindowSpec::standard(cfg); the spec and the
/// reward config (mode + corner weights) are then validated. Shared by
/// WindowObjective and the ILT engine so resolution semantics cannot drift.
litho::WindowSpec resolve_objective_window(const litho::WindowSpec& window,
                                           const rl::WindowRewardConfig& reward,
                                           const litho::LithoConfig& cfg);

/// Resolved window-objective context for one engine run. Construction
/// resolves opt.objective / opt.window / opt.corner_weights against the
/// simulator's config (empty window axes become the standard window) and
/// validates the spec and weights; in kNominal mode it is inert.
class WindowObjective {
public:
    WindowObjective(const OpcOptions& opt, const litho::LithoConfig& cfg,
                    const rl::RewardConfig& base = {});

    [[nodiscard]] bool active() const { return reward_.mode != rl::RewardMode::kNominal; }
    [[nodiscard]] const litho::WindowSpec& spec() const { return spec_; }
    [[nodiscard]] const rl::WindowRewardConfig& reward() const { return reward_; }

    /// First evaluation of a clip: primes the simulator's incremental cache
    /// with a full rebuild (nominal mode: the no-dirty evaluate_incremental
    /// overload; window modes: evaluate_window_prime) so job results never
    /// depend on what the simulator saw before. `window` (when non-null)
    /// receives the sweep's per-corner metrics in the window modes and is
    /// reset in nominal mode.
    litho::SimMetrics prime(litho::LithoSim& sim, const geo::SegmentedLayout& layout,
                            std::span<const int> offsets,
                            std::optional<litho::WindowMetrics>* window = nullptr) const;

    /// In-loop evaluation after `dirty` segments moved. Nominal mode
    /// forwards to the dirty-set evaluate_incremental (bit-identical to the
    /// legacy loop); window modes ride evaluate_window_incremental.
    litho::SimMetrics evaluate(litho::LithoSim& sim, const geo::SegmentedLayout& layout,
                               std::span<const int> offsets, std::span<const int> dirty,
                               std::optional<litho::WindowMetrics>* window = nullptr) const;

private:
    rl::WindowRewardConfig reward_;
    litho::WindowSpec spec_;
};

}  // namespace camo::opc
