// Rule-based damped EPE-feedback OPC.
//
// This is the classic commercial-OPC recipe (and this repo's stand-in for
// Calibre): in every iteration each segment moves opposite to its measured
// EPE by a damped, quantized, clamped step. It doubles as the Phase-1
// teacher for the learned engines: with the step clamp set to 2 nm its
// moves live exactly in the paper's {-2..+2} action space, and
// record_trajectory() captures (state, action) pairs for imitation.
#pragma once

#include "opc/engine.hpp"
#include "rl/trajectory.hpp"

namespace camo::opc {

struct RuleEngineOptions {
    double gain = 0.6;       ///< fraction of the EPE corrected per iteration
    int max_step_nm = 4;     ///< per-iteration step clamp
    bool early_exit = false; ///< commercial recipes run a fixed iteration count
};

class RuleEngine : public Engine {
public:
    explicit RuleEngine(RuleEngineOptions opt = {}) : opt_(opt) {}

    [[nodiscard]] std::string name() const override { return "rule(calibre-proxy)"; }

    EngineResult optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                          const OpcOptions& opt) override;

    /// Run `steps` teacher iterations with the step clamp forced to 2 nm and
    /// record the (offsets, action) pair of every step.
    rl::Trajectory record_trajectory(const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                                     const OpcOptions& opt, int steps) const;

private:
    RuleEngineOptions opt_;
};

}  // namespace camo::opc
