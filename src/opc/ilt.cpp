#include "opc/ilt.hpp"

#include <cmath>

#include "common/timer.hpp"
#include "litho/aerial.hpp"
#include "litho/fft.hpp"

namespace camo::opc {
namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

IltResult IltEngine::optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim) const {
    Timer timer;
    const auto& cfg = sim.config();
    const int n = cfg.grid;
    const std::size_t n2 = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    const litho::KernelSet& kernels = sim.nominal_kernels();
    const double thr = sim.threshold();

    // Target image Z in the simulation frame.
    geo::Raster target(n, cfg.pixel_nm);
    const int off = sim.clip_offset_nm(layout.clip_size_nm());
    for (const geo::Polygon& p : layout.targets()) {
        std::vector<geo::Point> v = p.vertices();
        for (geo::Point& q : v) {
            q.x += off;
            q.y += off;
        }
        target.add_polygon(geo::Polygon(std::move(v)));
    }
    target.clamp01();

    // theta initialised from the target: inside -> +1, outside -> -1.
    std::vector<double> theta(n2);
    for (std::size_t i = 0; i < n2; ++i) theta[i] = target.data()[i] > 0.5F ? 1.0 : -1.0;

    // Precompute wrapped kernel addresses.
    std::vector<int> pos(kernels.support.size());
    for (std::size_t i = 0; i < kernels.support.size(); ++i) {
        const int row = ((kernels.support[i].ky % n) + n) % n;
        const int col = ((kernels.support[i].kx % n) + n) % n;
        pos[i] = row * n + col;
    }

    IltResult res;
    res.mask = geo::Raster(n, cfg.pixel_nm);

    std::vector<litho::Complex> spectrum(n2);
    std::vector<litho::Complex> field(n2);
    std::vector<litho::Complex> back(n2);
    std::vector<std::vector<litho::Complex>> fields(kernels.coeffs.size(),
                                                    std::vector<litho::Complex>(n2));

    for (int it = 0; it <= opt_.iterations; ++it) {
        // m = sigmoid(mask_steepness * theta)
        auto mval = res.mask.data();
        for (std::size_t i = 0; i < n2; ++i) {
            mval[i] = static_cast<float>(sigmoid(opt_.mask_steepness * theta[i]));
        }

        // Aerial image via SOCS, keeping per-kernel fields for the adjoint.
        for (std::size_t i = 0; i < n2; ++i) spectrum[i] = litho::Complex(mval[i], 0.0F);
        litho::fft2d_forward(spectrum, n);

        std::vector<double> intensity(n2, 0.0);
        for (std::size_t k = 0; k < kernels.coeffs.size(); ++k) {
            std::fill(field.begin(), field.end(), litho::Complex{});
            for (std::size_t i = 0; i < pos.size(); ++i) {
                field[static_cast<std::size_t>(pos[i])] =
                    kernels.coeffs[k][i] * spectrum[static_cast<std::size_t>(pos[i])];
            }
            litho::fft2d_inverse(field, n);
            const double lam = kernels.eigenvalues[k];
            for (std::size_t i = 0; i < n2; ++i) intensity[i] += lam * std::norm(field[i]);
            fields[k] = field;
        }

        // Soft-resist loss L = sum (sigmoid(rs*(I-thr)) - Z)^2.
        double loss = 0.0;
        std::vector<double> dl_di(n2);
        for (std::size_t i = 0; i < n2; ++i) {
            const double s = sigmoid(opt_.resist_steepness * (intensity[i] - thr));
            const double diff = s - target.data()[i];
            loss += diff * diff;
            dl_di[i] = 2.0 * diff * opt_.resist_steepness * s * (1.0 - s);
        }
        res.loss_history.push_back(loss);
        if (it == 0) res.initial_loss = loss;
        res.final_loss = loss;
        if (it == opt_.iterations) break;

        // Adjoint: dL/dm = sum_k 2 lam Re{ C_k^H [ dL/dI .* f_k ] }.
        std::vector<double> grad(n2, 0.0);
        for (std::size_t k = 0; k < kernels.coeffs.size(); ++k) {
            for (std::size_t i = 0; i < n2; ++i) {
                back[i] = static_cast<float>(dl_di[i]) * fields[k][i];
            }
            litho::fft2d_forward(back, n);
            std::vector<litho::Complex> filtered(n2);
            for (std::size_t i = 0; i < pos.size(); ++i) {
                const auto p = static_cast<std::size_t>(pos[i]);
                filtered[p] = std::conj(kernels.coeffs[k][i]) * back[p];
            }
            litho::fft2d_inverse(filtered, n);
            const double lam = kernels.eigenvalues[k];
            for (std::size_t i = 0; i < n2; ++i) grad[i] += 2.0 * lam * filtered[i].real();
        }

        // Descend on theta through the mask sigmoid.
        for (std::size_t i = 0; i < n2; ++i) {
            const double m = mval[i];
            theta[i] -= opt_.step * grad[i] * opt_.mask_steepness * m * (1.0 - m);
        }
    }

    // EPE of the final mask at the layout's measure points.
    const geo::Raster aerial = sim.aerial_nominal(res.mask);
    for (const geo::MeasurePoint& mp : layout.measure_points()) {
        const double epe = litho::measure_epe(aerial, thr, {mp.pos.x + off, mp.pos.y + off},
                                              mp.normal, cfg.epe_range_nm);
        res.sum_abs_epe += std::abs(epe);
    }
    res.runtime_s = timer.seconds();
    return res;
}

}  // namespace camo::opc
