#include "opc/ilt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/timer.hpp"
#include "litho/aerial.hpp"
#include "litho/fft.hpp"
#include "litho/kernel_registry.hpp"
#include "litho/process_window.hpp"
#include "opc/objective.hpp"

namespace camo::opc {
namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// One focus plane of the window loss: its kernel set, wrapped support
// addresses, and the per-iteration coherent fields / intensity shared by
// every dose corner at this plane.
struct Plane {
    std::shared_ptr<const litho::KernelApplicator> applicator;  ///< keeps kernels alive
    const litho::KernelSet* kernels = nullptr;
    std::vector<int> pos;
    std::vector<std::vector<litho::Complex>> fields;
    std::vector<double> intensity;
};

// A (dose, plane) corner with its objective weight.
struct CornerRef {
    int plane = 0;
    double dose = 1.0;
    double weight = 1.0;
};

std::vector<int> wrapped_positions(const litho::KernelSet& kernels, int n) {
    std::vector<int> pos(kernels.support.size());
    for (std::size_t i = 0; i < kernels.support.size(); ++i) {
        const int row = ((kernels.support[i].ky % n) + n) % n;
        const int col = ((kernels.support[i].kx % n) + n) % n;
        pos[i] = row * n + col;
    }
    return pos;
}

}  // namespace

IltResult IltEngine::optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim) const {
    Timer timer;
    const auto& cfg = sim.config();
    const int n = cfg.grid;
    const std::size_t n2 = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    const double thr = sim.threshold();
    const bool windowed = opt_.objective != rl::RewardMode::kNominal;

    // Resolve the objective's planes and corners. Nominal mode is the legacy
    // single-corner loss: one plane (the nominal kernels), dose 1.0 — the
    // arithmetic below multiplies intensities by dose 1.0, so it reproduces
    // the pre-window loss bit for bit.
    litho::WindowSpec spec;
    if (windowed) {
        rl::WindowRewardConfig reward;
        reward.mode = opt_.objective;
        reward.corner_weights = opt_.corner_weights;
        spec = resolve_objective_window(opt_.window, reward, cfg);
    } else {
        spec.doses = {1.0};
        spec.defocus_nm = {0.0};
    }

    std::vector<Plane> planes;
    planes.reserve(spec.defocus_nm.size());
    for (double f : spec.defocus_nm) {
        Plane p;
        if (windowed) {
            p.applicator = litho::acquire_focus_applicator(cfg, f);
            p.kernels = &p.applicator->kernels();
        } else {
            p.kernels = &sim.nominal_kernels();
        }
        p.pos = wrapped_positions(*p.kernels, n);
        p.fields.assign(p.kernels->coeffs.size(), std::vector<litho::Complex>(n2));
        p.intensity.assign(n2, 0.0);
        planes.push_back(std::move(p));
    }

    std::vector<CornerRef> corners;
    corners.reserve(static_cast<std::size_t>(spec.corner_count()));
    for (int i = 0; i < spec.corner_count(); ++i) {
        CornerRef ref;
        ref.plane = i / spec.dose_count();
        ref.dose = spec.corner(i).dose;
        ref.weight = (opt_.objective == rl::RewardMode::kWeightedCorner &&
                      !opt_.corner_weights.empty())
                         ? opt_.corner_weights[static_cast<std::size_t>(i)]
                         : 1.0;
        corners.push_back(ref);
    }
    double weight_sum = 0.0;
    for (const CornerRef& c : corners) weight_sum += c.weight;

    // Target image Z in the simulation frame.
    geo::Raster target(n, cfg.pixel_nm);
    const int off = sim.clip_offset_nm(layout.clip_size_nm());
    for (const geo::Polygon& p : layout.targets()) {
        std::vector<geo::Point> v = p.vertices();
        for (geo::Point& q : v) {
            q.x += off;
            q.y += off;
        }
        target.add_polygon(geo::Polygon(std::move(v)));
    }
    target.clamp01();

    // theta initialised from the target: inside -> +1, outside -> -1.
    std::vector<double> theta(n2);
    for (std::size_t i = 0; i < n2; ++i) theta[i] = target.data()[i] > 0.5F ? 1.0 : -1.0;

    IltResult res;
    res.mask = geo::Raster(n, cfg.pixel_nm);
    res.corner_loss.assign(corners.size(), 0.0);

    std::vector<litho::Complex> spectrum(n2);
    std::vector<litho::Complex> field(n2);
    std::vector<litho::Complex> back(n2);
    std::vector<double> corner_loss(corners.size(), 0.0);
    std::vector<double> corner_dl_scale(corners.size(), 0.0);

    for (int it = 0; it <= opt_.iterations; ++it) {
        // m = sigmoid(mask_steepness * theta)
        auto mval = res.mask.data();
        for (std::size_t i = 0; i < n2; ++i) {
            mval[i] = static_cast<float>(sigmoid(opt_.mask_steepness * theta[i]));
        }

        // One forward FFT; per plane, SOCS fields kept for the adjoint.
        for (std::size_t i = 0; i < n2; ++i) spectrum[i] = litho::Complex(mval[i], 0.0F);
        litho::fft2d_forward(spectrum, n);

        for (Plane& plane : planes) {
            std::fill(plane.intensity.begin(), plane.intensity.end(), 0.0);
            for (std::size_t k = 0; k < plane.kernels->coeffs.size(); ++k) {
                std::fill(field.begin(), field.end(), litho::Complex{});
                for (std::size_t i = 0; i < plane.pos.size(); ++i) {
                    field[static_cast<std::size_t>(plane.pos[i])] =
                        plane.kernels->coeffs[k][i] *
                        spectrum[static_cast<std::size_t>(plane.pos[i])];
                }
                litho::fft2d_inverse(field, n);
                const double lam = plane.kernels->eigenvalues[k];
                for (std::size_t i = 0; i < n2; ++i) {
                    plane.intensity[i] += lam * std::norm(field[i]);
                }
                plane.fields[k] = field;
            }
        }

        // Per-corner soft-resist losses L_c = sum (sigmoid(rs*(I*d-thr)) - Z)^2.
        for (std::size_t c = 0; c < corners.size(); ++c) {
            const Plane& plane = planes[static_cast<std::size_t>(corners[c].plane)];
            const double d = corners[c].dose;
            double loss = 0.0;
            for (std::size_t i = 0; i < n2; ++i) {
                const double s =
                    sigmoid(opt_.resist_steepness * (plane.intensity[i] * d - thr));
                const double diff = s - target.data()[i];
                loss += diff * diff;
            }
            corner_loss[c] = loss;
        }

        // The scalar objective and each corner's gradient weight. Worst mode
        // descends on the currently-worst corner only (subgradient of max).
        double loss = 0.0;
        std::fill(corner_dl_scale.begin(), corner_dl_scale.end(), 0.0);
        switch (opt_.objective) {
            case rl::RewardMode::kNominal:
                loss = corner_loss[0];
                corner_dl_scale[0] = 1.0;
                break;
            case rl::RewardMode::kWorstCorner: {
                const std::size_t worst = static_cast<std::size_t>(
                    std::max_element(corner_loss.begin(), corner_loss.end()) -
                    corner_loss.begin());
                loss = corner_loss[worst];
                corner_dl_scale[worst] = 1.0;
                break;
            }
            case rl::RewardMode::kWeightedCorner:
                for (std::size_t c = 0; c < corners.size(); ++c) {
                    loss += corners[c].weight * corner_loss[c];
                    corner_dl_scale[c] = corners[c].weight / weight_sum;
                }
                loss /= weight_sum;
                break;
        }
        res.loss_history.push_back(loss);
        if (it == 0) res.initial_loss = loss;
        res.final_loss = loss;
        res.corner_loss = corner_loss;
        if (it == opt_.iterations) break;

        // Adjoint per plane: dL/dI_f accumulates over this plane's dose
        // corners (chain rule through I*d adds a factor d), then
        // dL/dm = sum_k 2 lam Re{ C_k^H [ dL/dI .* f_k ] }.
        std::vector<double> grad(n2, 0.0);
        for (std::size_t f = 0; f < planes.size(); ++f) {
            const Plane& plane = planes[f];
            std::vector<double> dl_di(n2, 0.0);
            bool any = false;
            for (std::size_t c = 0; c < corners.size(); ++c) {
                if (corners[c].plane != static_cast<int>(f) || corner_dl_scale[c] == 0.0) {
                    continue;
                }
                any = true;
                const double d = corners[c].dose;
                const double scale = corner_dl_scale[c];
                for (std::size_t i = 0; i < n2; ++i) {
                    const double s =
                        sigmoid(opt_.resist_steepness * (plane.intensity[i] * d - thr));
                    const double diff = s - target.data()[i];
                    dl_di[i] +=
                        scale * 2.0 * diff * opt_.resist_steepness * s * (1.0 - s) * d;
                }
            }
            if (!any) continue;

            for (std::size_t k = 0; k < plane.kernels->coeffs.size(); ++k) {
                for (std::size_t i = 0; i < n2; ++i) {
                    back[i] = static_cast<float>(dl_di[i]) * plane.fields[k][i];
                }
                litho::fft2d_forward(back, n);
                std::vector<litho::Complex> filtered(n2);
                for (std::size_t i = 0; i < plane.pos.size(); ++i) {
                    const auto p = static_cast<std::size_t>(plane.pos[i]);
                    filtered[p] = std::conj(plane.kernels->coeffs[k][i]) * back[p];
                }
                litho::fft2d_inverse(filtered, n);
                const double lam = plane.kernels->eigenvalues[k];
                for (std::size_t i = 0; i < n2; ++i) grad[i] += 2.0 * lam * filtered[i].real();
            }
        }

        // Descend on theta through the mask sigmoid.
        for (std::size_t i = 0; i < n2; ++i) {
            const double m = mval[i];
            theta[i] -= opt_.step * grad[i] * opt_.mask_steepness * m * (1.0 - m);
        }
    }

    // EPE of the final mask at the layout's measure points (nominal corner),
    // plus the worst corner through the window in the window modes.
    const geo::Raster aerial = sim.aerial_nominal(res.mask);
    for (const geo::MeasurePoint& mp : layout.measure_points()) {
        const double epe = litho::measure_epe(aerial, thr, {mp.pos.x + off, mp.pos.y + off},
                                              mp.normal, cfg.epe_range_nm);
        res.sum_abs_epe += std::abs(epe);
    }
    if (windowed) {
        std::vector<geo::Raster> plane_aerials;
        plane_aerials.reserve(planes.size());
        for (const Plane& plane : planes) {
            plane_aerials.push_back(plane.applicator->apply(spectrum, cfg.pixel_nm));
        }
        for (const CornerRef& corner : corners) {
            const geo::Raster& corner_aerial =
                plane_aerials[static_cast<std::size_t>(corner.plane)];
            double sum = 0.0;
            for (const geo::MeasurePoint& mp : layout.measure_points()) {
                const double epe = litho::measure_epe(
                    corner_aerial, thr / corner.dose, {mp.pos.x + off, mp.pos.y + off},
                    mp.normal, cfg.epe_range_nm);
                sum += std::abs(epe);
            }
            res.worst_corner_epe = std::max(res.worst_corner_epe, sum);
        }
        if (opt_.evaluate_window) {
            res.final_window = litho::window_metrics_from_aerials(layout, spec, plane_aerials,
                                                                  thr, off, cfg);
        }
    } else if (opt_.evaluate_window) {
        // Nominal objective: the optimization never touched off-focus
        // kernels, so resolve the evaluation window now and image the final
        // spectrum once per focus plane.
        rl::WindowRewardConfig eval_reward;
        eval_reward.mode = rl::RewardMode::kWorstCorner;
        const litho::WindowSpec eval_spec = resolve_objective_window(opt_.window, eval_reward, cfg);
        std::vector<geo::Raster> plane_aerials;
        plane_aerials.reserve(eval_spec.defocus_nm.size());
        for (double f : eval_spec.defocus_nm) {
            plane_aerials.push_back(
                litho::acquire_focus_applicator(cfg, f)->apply(spectrum, cfg.pixel_nm));
        }
        res.final_window = litho::window_metrics_from_aerials(layout, eval_spec, plane_aerials,
                                                              thr, off, cfg);
    }
    res.runtime_s = timer.seconds();
    return res;
}

}  // namespace camo::opc
