#include "opc/sraf.hpp"

namespace camo::opc {

std::vector<geo::Polygon> insert_srafs(const std::vector<geo::Polygon>& targets,
                                       const SrafOptions& opt) {
    std::vector<geo::Rect> main_rects;
    main_rects.reserve(targets.size());
    for (const geo::Polygon& t : targets) main_rects.push_back(t.bbox());

    std::vector<geo::Rect> bars;
    for (const geo::Rect& via : main_rects) {
        const geo::FPoint c = via.center();
        const int cx = static_cast<int>(c.x);
        const int cy = static_cast<int>(c.y);
        const int half_len = opt.bar_length_nm / 2;
        const int half_w = opt.bar_width_nm / 2;
        const int d = opt.center_offset_nm;

        const geo::Rect candidates[4] = {
            {cx - half_len, cy + d - half_w, cx + half_len, cy + d + half_w},  // north
            {cx - half_len, cy - d - half_w, cx + half_len, cy - d + half_w},  // south
            {cx + d - half_w, cy - half_len, cx + d + half_w, cy + half_len},  // east
            {cx - d - half_w, cy - half_len, cx - d + half_w, cy + half_len},  // west
        };

        for (const geo::Rect& cand : candidates) {
            bool ok = true;
            for (const geo::Rect& m : main_rects) {
                if (m == via) continue;
                if (geo::rect_gap(cand, m) < opt.clearance_nm) {
                    ok = false;
                    break;
                }
            }
            for (const geo::Rect& b : bars) {
                if (geo::rect_gap(cand, b) < opt.clearance_nm) {
                    ok = false;
                    break;
                }
            }
            if (ok) bars.push_back(cand);
        }
    }

    std::vector<geo::Polygon> out;
    out.reserve(bars.size());
    for (const geo::Rect& b : bars) out.push_back(geo::Polygon::from_rect(b));
    return out;
}

}  // namespace camo::opc
