// Pixel-based inverse lithography (ILT) engine.
//
// An extension beyond the paper's segment-based engines, implementing the
// classic MOSAIC-style formulation the paper cites as related work: the
// mask is a free pixel image m = sigmoid(theta), the printed image is
// approximated by a sigmoid resist, and theta follows the analytic gradient
// of the L2 contour error through the SOCS imaging operator.
//
// The window objective (same modes as the segment engines, for fair
// ablations) generalizes the loss over a dose x focus grid: per focus plane
// the coherent fields are computed once and shared by every dose at that
// plane (dose scales the intensity, i.e. the resist argument is I*d - thr),
// so the window loss costs one extra SOCS forward/adjoint pass per extra
// focus plane, not per corner. kWeightedCorner descends on the weighted sum
// of per-corner losses; kWorstCorner takes the subgradient of the max —
// each iteration descends on the currently-worst corner's loss.
#pragma once

#include <optional>

#include "geometry/layout.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "rl/reward.hpp"

namespace camo::opc {

struct IltOptions {
    int iterations = 20;
    double step = 4.0;           ///< gradient step on theta
    double mask_steepness = 4.0; ///< sigmoid slope of m(theta)
    double resist_steepness = 40.0;  ///< sigmoid slope of the soft resist

    /// Window objective, mirroring OpcOptions::objective for the segment
    /// engines. kNominal preserves the legacy single-corner loss bit for
    /// bit; the window modes optimize the process-window loss above.
    rl::RewardMode objective = rl::RewardMode::kNominal;

    /// Window for the window objectives; empty axes resolve to
    /// litho::WindowSpec::standard of the simulator's config.
    litho::WindowSpec window;

    /// Per-corner weights for kWeightedCorner (empty = uniform).
    std::vector<double> corner_weights;

    /// Evaluate the final mask over the (resolved) `window` and fill
    /// IltResult::final_window, regardless of objective mode. In the window
    /// modes this reuses the per-plane aerials already computed for
    /// worst_corner_epe; in kNominal mode it adds one focus-applicator apply
    /// per plane at the very end. The optimization trajectory is unchanged —
    /// the comparer uses this so every engine reports the same
    /// WindowMetrics-based scorecard.
    bool evaluate_window = false;
};

struct IltResult {
    geo::Raster mask{1, 1.0};   ///< final continuous mask (grid frame)
    double initial_loss = 0.0;  ///< objective loss before optimization
    double final_loss = 0.0;
    double sum_abs_epe = 0.0;   ///< |EPE| at the layout's measure points (nominal corner)
    std::vector<double> loss_history;
    double runtime_s = 0.0;

    /// Window modes only: worst-corner sum |EPE| of the final mask and the
    /// final per-corner soft-resist losses in WindowSpec::corner order
    /// (empty / 0 in kNominal mode).
    double worst_corner_epe = 0.0;
    std::vector<double> corner_loss;

    /// Full process-window metrics of the final mask; present iff
    /// IltOptions::evaluate_window was set.
    std::optional<litho::WindowMetrics> final_window;
};

class IltEngine {
public:
    explicit IltEngine(IltOptions opt = {}) : opt_(opt) {}

    IltResult optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim) const;

private:
    IltOptions opt_;
};

}  // namespace camo::opc
