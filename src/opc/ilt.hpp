// Pixel-based inverse lithography (ILT) engine.
//
// An extension beyond the paper's segment-based engines, implementing the
// classic MOSAIC-style formulation the paper cites as related work: the
// mask is a free pixel image m = sigmoid(theta), the printed image is
// approximated by a sigmoid resist, and theta follows the analytic gradient
// of the L2 contour error through the SOCS imaging operator.
#pragma once

#include "geometry/layout.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"

namespace camo::opc {

struct IltOptions {
    int iterations = 20;
    double step = 4.0;           ///< gradient step on theta
    double mask_steepness = 4.0; ///< sigmoid slope of m(theta)
    double resist_steepness = 40.0;  ///< sigmoid slope of the soft resist
};

struct IltResult {
    geo::Raster mask{1, 1.0};   ///< final continuous mask (grid frame)
    double initial_loss = 0.0;  ///< L2 contour error before optimization
    double final_loss = 0.0;
    double sum_abs_epe = 0.0;   ///< |EPE| at the layout's measure points
    std::vector<double> loss_history;
    double runtime_s = 0.0;
};

class IltEngine {
public:
    explicit IltEngine(IltOptions opt = {}) : opt_(opt) {}

    IltResult optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim) const;

private:
    IltOptions opt_;
};

}  // namespace camo::opc
