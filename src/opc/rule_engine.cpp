#include "opc/rule_engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/timer.hpp"
#include "opc/objective.hpp"

namespace camo::opc {

bool should_exit_early(double sum_abs_epe, int num_features, int num_points,
                       const OpcOptions& opt) {
    if (opt.exit_epe_per_feature > 0.0 && num_features > 0 &&
        sum_abs_epe / num_features < opt.exit_epe_per_feature) {
        return true;
    }
    if (opt.exit_epe_per_point > 0.0 && num_points > 0 &&
        sum_abs_epe / num_points < opt.exit_epe_per_point) {
        return true;
    }
    return false;
}

namespace {

// One damped feedback step: returns the movement (nm) for each segment.
std::vector<int> feedback_moves(const std::vector<double>& epe_segment, double gain,
                                int max_step) {
    std::vector<int> moves(epe_segment.size(), 0);
    for (std::size_t i = 0; i < epe_segment.size(); ++i) {
        // Positive EPE = contour outside the target -> move inward (negative).
        const double desired = -gain * epe_segment[i];
        const int step = static_cast<int>(std::lround(desired));
        moves[i] = std::clamp(step, -max_step, max_step);
    }
    return moves;
}

// Applies the moves and returns the indices whose offset actually changed
// (the dirty set for incremental lithography evaluation).
std::vector<int> apply_moves(std::vector<int>& offsets, const std::vector<int>& moves,
                             int bound) {
    std::vector<int> dirty;
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        const int next = std::clamp(offsets[i] + moves[i], -bound, bound);
        if (next != offsets[i]) {
            offsets[i] = next;
            dirty.push_back(static_cast<int>(i));
        }
    }
    return dirty;
}

}  // namespace

EngineResult RuleEngine::optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                                  const OpcOptions& opt) {
    Timer timer;
    EngineResult res;
    const WindowObjective objective(opt, sim.config());
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()),
                             opt.initial_bias_nm);

    litho::SimMetrics m = objective.prime(sim, layout, offsets, &res.final_window);
    res.epe_history.push_back(m.sum_abs_epe);
    res.pvb_history.push_back(m.pvband_nm2);

    const int features = static_cast<int>(layout.targets().size());
    const int points = static_cast<int>(m.epe.size());

    for (int it = 0; it < opt.max_iterations; ++it) {
        if (opt_.early_exit && should_exit_early(m.sum_abs_epe, features, points, opt)) break;
        const auto moves = feedback_moves(m.epe_segment, opt_.gain, opt_.max_step_nm);
        const auto dirty = apply_moves(offsets, moves, opt.max_total_offset_nm);
        m = objective.evaluate(sim, layout, offsets, dirty, &res.final_window);
        res.epe_history.push_back(m.sum_abs_epe);
        res.pvb_history.push_back(m.pvband_nm2);
        ++res.iterations;
    }

    res.final_offsets = std::move(offsets);
    res.final_metrics = std::move(m);
    res.runtime_s = timer.seconds();
    return res;
}

rl::Trajectory RuleEngine::record_trajectory(const geo::SegmentedLayout& layout,
                                             litho::LithoSim& sim, const OpcOptions& opt,
                                             int steps) const {
    rl::Trajectory traj;
    const WindowObjective objective(opt, sim.config());
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()),
                             opt.initial_bias_nm);
    std::optional<litho::WindowMetrics> window;
    litho::SimMetrics m = objective.prime(sim, layout, offsets, &window);

    const auto corner_epes = [](const litho::WindowMetrics& wm) {
        std::vector<double> epes;
        epes.reserve(wm.corners.size());
        for (const litho::CornerResult& c : wm.corners) epes.push_back(c.metrics.sum_abs_epe);
        return epes;
    };

    for (int t = 0; t < steps; ++t) {
        // Teacher moves clamped to the learned engines' action space.
        const auto moves = feedback_moves(m.epe_segment, opt_.gain, 2);

        rl::StepRecord rec;
        rec.offsets_before = offsets;
        rec.sum_abs_epe_before = m.sum_abs_epe;
        rec.pvband_before = m.pvband_nm2;
        if (window) {
            rec.worst_epe_before = window->worst_epe;
            rec.pv_band_exact_before = window->pv_band_exact_nm2;
            rec.corner_epe_before = corner_epes(*window);
        }
        rec.actions.reserve(moves.size());
        for (int mv : moves) rec.actions.push_back(rl::move_to_action(mv));
        traj.steps.push_back(std::move(rec));

        const auto dirty = apply_moves(offsets, moves, opt.max_total_offset_nm);
        m = objective.evaluate(sim, layout, offsets, dirty, &window);
    }
    traj.final_sum_abs_epe = m.sum_abs_epe;
    traj.final_pvband = m.pvband_nm2;
    if (window) {
        traj.final_worst_epe = window->worst_epe;
        traj.final_pv_band_exact = window->pv_band_exact_nm2;
        traj.final_corner_epe = corner_epes(*window);
    }
    return traj;
}

}  // namespace camo::opc
