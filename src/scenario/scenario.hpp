// Named-scenario registry: the quality-gate's workload catalogue.
//
// A Scenario binds a seed-deterministic layout generator to the litho
// config, process window and fragmentation style it should be judged under
// — the (layout, litho, WindowSpec, seed) tuple the ROADMAP calls for. The
// process-wide Registry maps names to scenarios so the CLI
// (`camo_cli compare --scenarios ...`), the PolicyComparer and the tier-1
// scenario-matrix tests all draw from one catalogue; registering a new
// workload is one Registry::add call (see README "Scenario matrix").
//
// Determinism contract (extends PR-1/PR-5): clip i of a scenario is
// generated from derive_seed(scenario.seed, i), so any sub-range of the
// clip stream can be produced independently — and in parallel — with
// byte-identical polygons at any thread count. tests/test_scenario_matrix.cpp
// locks this down for every registered generator.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "geometry/layout.hpp"
#include "layout/via_gen.hpp"  // layout::Clip
#include "litho/config.hpp"
#include "litho/process_window.hpp"

namespace camo::scenario {

/// Fragmentation family: vias get SRAF insertion + kVia fragmentation,
/// wire-like patterns get kMetal fragmentation with 60 nm measure pitch
/// (the same pipelines Experiment uses for the paper benchmarks).
enum class Style { kVia, kMetal };

const char* style_name(Style style);

/// Quick-scale litho config every builtin scenario runs on: 256 x 4 nm
/// frame, reduced kernel counts, no on-disk kernel cache — the same scale
/// the runtime/batch tests use, small enough for the full engine x scenario
/// x reward matrix to fit in a tier-1 test budget.
litho::LithoConfig quick_litho();

struct Scenario {
    std::string name;
    std::string description;
    Style style = Style::kVia;

    litho::LithoConfig litho = quick_litho();

    /// Process window the scenario is scored on; empty axes resolve to
    /// litho::WindowSpec::standard(litho) via resolved_window().
    litho::WindowSpec window;

    std::uint64_t seed = 1;  ///< base seed of the clip stream
    int default_clips = 2;   ///< clips per comparer cell unless overridden
    int clip_nm = 1000;      ///< clip frame passed to fragmentation

    /// One clip's target polygons from a derived-seed Rng. Must be a pure
    /// function of the Rng stream (no globals, no time) — that is what the
    /// determinism contract above rests on.
    std::function<std::vector<geo::Polygon>(Rng&)> generate;

    /// Clips [0, count) of the stream; clip i uses derive_seed(seed, i).
    [[nodiscard]] std::vector<layout::Clip> clips(int count) const;

    /// clips(count) fragmented per `style` (kVia adds SRAFs).
    [[nodiscard]] std::vector<geo::SegmentedLayout> layouts(int count) const;

    /// `window` with empty axes resolved to the standard window of `litho`.
    [[nodiscard]] litho::WindowSpec resolved_window() const;
};

/// Synthetic full chip for the sharding/streaming paths: clips
/// [0, cols*rows) of the scenario's deterministic stream placed row-major
/// on a cols x rows grid with `pitch_nm` cell spacing (cell (cx, cy)
/// translated by (cx * pitch, cy * pitch); pitch_nm <= 0 uses the
/// scenario's clip_nm, so cells never overlap). The result is one flat
/// chip-coordinate polygon set, the input shape layout::TileSharder cuts.
[[nodiscard]] std::vector<geo::Polygon> chip_polygons(const Scenario& sc, int cols, int rows,
                                                      int pitch_nm = 0);

/// Thread-safe process-wide name -> Scenario catalogue. instance() registers
/// the builtin scenarios on first use; tests may add/remove their own.
class Registry {
  public:
    static Registry& instance();

    /// Throws std::invalid_argument on an empty name, a null generator, or
    /// a name already registered.
    void add(Scenario s);

    /// Copy of the named scenario; throws std::out_of_range with the name
    /// and the registered names when absent.
    [[nodiscard]] Scenario get(const std::string& name) const;

    [[nodiscard]] bool contains(const std::string& name) const;

    /// All registered names, sorted.
    [[nodiscard]] std::vector<std::string> names() const;

    /// Removes a scenario (test hook); returns whether it existed.
    bool remove(const std::string& name);

  private:
    Registry();

    mutable std::mutex mu_;
    std::vector<Scenario> entries_;  ///< small catalogue: linear scan is fine
};

}  // namespace camo::scenario
