#include "scenario/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/experiment.hpp"
#include "layout/metal_gen.hpp"
#include "layout/pattern_gen.hpp"
#include "layout/shard.hpp"

namespace camo::scenario {

const char* style_name(Style style) {
    switch (style) {
        case Style::kVia: return "via";
        case Style::kMetal: return "metal";
    }
    return "unknown";
}

litho::LithoConfig quick_litho() {
    litho::LithoConfig cfg;
    cfg.grid = 256;
    cfg.pixel_nm = 4.0;
    cfg.kernels_nominal = 6;
    cfg.kernels_defocus = 5;
    cfg.cache_dir = "";  // the matrix never touches the on-disk kernel cache
    return cfg;
}

std::vector<layout::Clip> Scenario::clips(int count) const {
    if (!generate) throw std::invalid_argument("scenario '" + name + "' has no generator");
    std::vector<layout::Clip> out;
    out.reserve(static_cast<std::size_t>(std::max(0, count)));
    for (int i = 0; i < count; ++i) {
        Rng rng(derive_seed(seed, static_cast<std::uint64_t>(i)));
        layout::Clip clip;
        clip.name = name + "_" + std::to_string(i);
        clip.targets = generate(rng);
        clip.clip_nm = clip_nm;
        out.push_back(std::move(clip));
    }
    return out;
}

std::vector<geo::SegmentedLayout> Scenario::layouts(int count) const {
    const std::vector<layout::Clip> cs = clips(count);
    return style == Style::kVia ? core::fragment_via_clips(cs) : core::fragment_metal_clips(cs);
}

std::vector<geo::Polygon> chip_polygons(const Scenario& sc, int cols, int rows, int pitch_nm) {
    if (cols < 1 || rows < 1) {
        throw std::invalid_argument("chip_polygons: grid must be at least 1x1");
    }
    const int pitch = pitch_nm > 0 ? pitch_nm : sc.clip_nm;
    const std::vector<layout::Clip> cells = sc.clips(cols * rows);
    std::vector<geo::Polygon> chip;
    for (int cy = 0; cy < rows; ++cy) {
        for (int cx = 0; cx < cols; ++cx) {
            const layout::Clip& cell = cells[static_cast<std::size_t>(cy * cols + cx)];
            for (const geo::Polygon& poly : cell.targets) {
                chip.push_back(layout::translated(poly, cx * pitch, cy * pitch));
            }
        }
    }
    return chip;
}

litho::WindowSpec Scenario::resolved_window() const {
    if (window.doses.empty() && window.defocus_nm.empty()) {
        return litho::WindowSpec::standard(litho);
    }
    litho::WindowSpec spec = window;
    if (spec.doses.empty()) spec.doses = {litho.dose_min, 1.0, litho.dose_max};
    if (spec.defocus_nm.empty()) spec.defocus_nm = {0.0, litho.defocus_nm};
    spec.validate();
    return spec;
}

namespace {

// The eight builtin scenarios. All run on the quick-scale frame with a
// 1000 nm clip; a few vary the litho/window to exercise config plumbing
// (wider dose range, deeper defocus, a three-plane focus ladder).
std::vector<Scenario> builtin_scenarios() {
    std::vector<Scenario> out;

    {
        Scenario s;
        s.name = "via3";
        s.description = "paper-style random via clips (2-4 vias, SRAF-assisted)";
        s.style = Style::kVia;
        s.seed = 101;
        s.generate = [](Rng& rng) {
            layout::ViaGenOptions opt;
            opt.clip_nm = 1000;
            opt.margin_nm = 200;
            opt.min_spacing_nm = 120;
            // 2-4 vias: rejection placement stays reliable in the 600 nm of
            // usable room (5+ can exhaust the attempt budget).
            const int vias = rng.uniform_int(2, 4);
            return layout::generate_via_clip(vias, rng, opt);
        };
        out.push_back(std::move(s));
    }
    {
        Scenario s;
        s.name = "metal24";
        s.description = "paper-style random metal clips (24 measure points)";
        s.style = Style::kMetal;
        s.seed = 102;
        s.generate = [](Rng& rng) {
            layout::MetalGenOptions opt;
            opt.clip_nm = 1000;
            return layout::generate_metal_clip(24, rng, opt);
        };
        out.push_back(std::move(s));
    }
    {
        Scenario s;
        s.name = "via-pairs";
        s.description = "double-patterning via pairs at near-minimum gap";
        s.style = Style::kVia;
        s.seed = 103;
        s.generate = [](Rng& rng) { return layout::generate_via_pair_array(rng); };
        out.push_back(std::move(s));
    }
    {
        Scenario s;
        s.name = "contact-grid";
        s.description = "uniform contact grid, 3x3..4x4 at one random pitch";
        s.style = Style::kVia;
        s.seed = 104;
        s.generate = [](Rng& rng) { return layout::generate_contact_grid(rng); };
        out.push_back(std::move(s));
    }
    {
        Scenario s;
        s.name = "grating-jog";
        s.description = "line-space grating with probabilistic mid-line jogs";
        s.style = Style::kMetal;
        s.seed = 105;
        s.generate = [](Rng& rng) { return layout::generate_grating_jog(rng); };
        out.push_back(std::move(s));
    }
    {
        Scenario s;
        s.name = "iso-dense";
        s.description = "dense line cluster + isolated line, wide dose window";
        s.style = Style::kMetal;
        s.seed = 106;
        s.litho.dose_min = 0.96;  // iso/dense bias splits grow with dose range
        s.litho.dose_max = 1.04;
        s.generate = [](Rng& rng) { return layout::generate_iso_dense(rng); };
        out.push_back(std::move(s));
    }
    {
        Scenario s;
        s.name = "sram-cell";
        s.description = "SRAM-like mirrored 3-polygon cells, deep defocus corner";
        s.style = Style::kMetal;
        s.seed = 107;
        s.litho.defocus_nm = 30.0;
        s.window.doses = {0.98, 1.0, 1.02};
        s.window.defocus_nm = {0.0, 30.0};
        s.generate = [](Rng& rng) { return layout::generate_sram_cell(rng); };
        out.push_back(std::move(s));
    }
    {
        Scenario s;
        s.name = "multi-pitch";
        s.description = "stacked fine/mid/coarse pitch bands, 3-plane focus ladder";
        s.style = Style::kMetal;
        s.seed = 108;
        s.window.defocus_nm = {0.0, 12.5, 25.0};  // doses resolve from config
        s.generate = [](Rng& rng) { return layout::generate_multi_pitch(rng); };
        out.push_back(std::move(s));
    }
    return out;
}

}  // namespace

Registry& Registry::instance() {
    static Registry* reg = new Registry();  // leaked: usable during exit
    return *reg;
}

Registry::Registry() { entries_ = builtin_scenarios(); }

void Registry::add(Scenario s) {
    if (s.name.empty()) throw std::invalid_argument("scenario name must be non-empty");
    if (!s.generate) {
        throw std::invalid_argument("scenario '" + s.name + "' needs a generator");
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (const Scenario& e : entries_) {
        if (e.name == s.name) {
            throw std::invalid_argument("scenario '" + s.name + "' already registered");
        }
    }
    entries_.push_back(std::move(s));
}

Scenario Registry::get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Scenario& e : entries_) {
        if (e.name == name) return e;
    }
    std::string known;
    for (const Scenario& e : entries_) {
        if (!known.empty()) known += ", ";
        known += e.name;
    }
    throw std::out_of_range("unknown scenario '" + name + "' (registered: " + known + ")");
}

bool Registry::contains(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Scenario& e : entries_) {
        if (e.name == name) return true;
    }
    return false;
}

std::vector<std::string> Registry::names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Scenario& e : entries_) out.push_back(e.name);
    std::sort(out.begin(), out.end());
    return out;
}

bool Registry::remove(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->name == name) {
            entries_.erase(it);
            return true;
        }
    }
    return false;
}

}  // namespace camo::scenario
