// PolicyComparer: the engine x scenario x reward quality gate.
//
// Runs every requested OPC engine over every registered scenario under
// every reward mode through the batch runtime and reduces each
// (scenario, engine, reward) cell to one scorecard row: nominal EPE,
// worst-corner EPE, exact PV band, the worst corner's EPE L2 norm, runtime
// and the incremental-evaluation hit rate. Rows are ranked per
// (scenario, reward) group so the table answers "which engine wins where"
// directly; the JSON form feeds CI artifacts and the golden-bound
// regression check in tests/golden/scenario_matrix.json.
//
// Every engine is scored on the SAME WindowMetrics sweep of its final mask
// (the scenario's resolved window), so segment engines and the pixel ILT
// engine are comparable even though their in-loop objectives differ.
//
// Determinism: cell metrics inherit the batch runtime's contract — results
// are bit-identical at any worker count — and learned engines are trained
// once per (engine, style) with train_workers = 1 and cached inside the
// comparer, so fingerprint() is byte-identical across run(1)/run(2)/run(8).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rl/reward.hpp"
#include "scenario/scenario.hpp"

namespace camo::core {
class CamoEngine;
}

namespace camo::scenario {

struct CompareOptions {
    /// Scenario names to run; empty = every registered scenario.
    std::vector<std::string> scenarios;

    /// Engine column set. Known names: rule, oneshot, camo, rlopc, ilt.
    std::vector<std::string> engines = {"rule", "oneshot", "camo", "rlopc", "ilt"};

    std::vector<rl::RewardMode> rewards = {rl::RewardMode::kNominal,
                                           rl::RewardMode::kWorstCorner,
                                           rl::RewardMode::kWeightedCorner};

    int clips = 2;            ///< clips per cell; <= 0 uses each scenario's default
    int threads = 0;          ///< batch workers; <= 0 = hardware threads
    std::uint64_t seed = 42;  ///< base seed for per-scenario batch seeds

    int max_iterations = 4;   ///< segment-engine iteration budget per clip
    int ilt_iterations = 3;   ///< pixel-engine gradient steps per clip
    int train_clips = 2;      ///< training-set size for camo / rlopc
    int phase1_epochs = 4;    ///< imitation epochs for camo / rlopc
};

/// One (scenario, engine, reward) cell of the matrix. All EPE/PVB metrics
/// read the WindowMetrics of each clip's final mask over the scenario's
/// resolved window and are averaged over successful clips; a cell whose
/// clips all failed reports zero metrics and ok() == 0.
struct CellResult {
    std::string scenario;
    std::string engine;
    std::string reward;  ///< rl::reward_mode_name

    int clips = 0;
    int failed = 0;
    int segments = 0;  ///< summed over clips

    double epe = 0.0;           ///< avg nominal-corner sum |EPE|
    double worst_epe = 0.0;     ///< avg worst-corner sum |EPE|
    double pvb_exact_nm2 = 0.0; ///< avg exact PV band
    double epe_l2 = 0.0;        ///< avg L2 norm of the worst corner's EPE profile
    double hit_rate = 0.0;      ///< incremental-evaluation hit rate of the cell's batch

    double wall_s = 0.0;           ///< cell batch wall time (timing: excluded from fingerprint)
    double clip_runtime_s = 0.0;   ///< summed per-clip engine time (timing)

    int rank = 0;  ///< 1-based rank within the (scenario, reward) group

    [[nodiscard]] int ok() const { return clips - failed; }
};

struct CompareResult {
    std::vector<CellResult> cells;  ///< grouped scenario-major, reward, rank order

    int threads = 0;
    double wall_s = 0.0;

    /// "camo-compare-v1" JSON document. include_timing = false drops every
    /// wall-clock field (and the thread count), leaving only the
    /// deterministic payload.
    [[nodiscard]] std::string to_json(bool include_timing = true) const;

    /// Byte-stable digest of the deterministic payload: equal across worker
    /// counts by the batch determinism contract.
    [[nodiscard]] std::string fingerprint() const { return to_json(false); }

    /// Human-readable ranked table (one block per scenario x reward).
    [[nodiscard]] std::string table() const;
};

/// One cell's golden regression bounds: upper limits on the quality metrics
/// (a metric <= 0 disables that check).
struct CellBound {
    std::string scenario;
    std::string engine;
    std::string reward;
    double max_epe = 0.0;
    double max_worst_epe = 0.0;
    double max_pvb_exact_nm2 = 0.0;
    double max_epe_l2 = 0.0;
};

/// Parse a golden-bounds document ("camo-compare-bounds-v1"). Throws
/// std::runtime_error on malformed JSON or a wrong schema tag.
std::vector<CellBound> read_bounds(const std::string& json_text);

/// Check a result against bounds. Returns one human-readable violation per
/// breach: a bounded cell missing from the result, a cell with failed
/// clips, or a metric above its bound. Empty = gate passed.
std::vector<std::string> check_bounds(const CompareResult& result,
                                      const std::vector<CellBound>& bounds);

/// Render bounds for the current result: each metric's bound is
/// value * (1 + rel_slack) + abs_slack (PV band uses 100x the absolute
/// slack — it is an area). Used by `camo_cli compare --write-golden`.
std::string bounds_json(const CompareResult& result, double rel_slack = 0.25,
                        double abs_slack = 2.0);

class PolicyComparer {
  public:
    explicit PolicyComparer(CompareOptions opt = {});
    ~PolicyComparer();

    /// Run the full matrix. `threads_override` > 0 replaces
    /// CompareOptions::threads for this run (the trained-engine cache is
    /// shared across calls, so re-running at another worker count reuses the
    /// same weights — the determinism test depends on this).
    CompareResult run(int threads_override = 0);

    [[nodiscard]] const CompareOptions& options() const { return opt_; }

  private:
    core::CamoEngine& trained_engine(const std::string& engine, Style style);

    CompareOptions opt_;
    std::map<std::string, std::unique_ptr<core::CamoEngine>> trained_;
};

}  // namespace camo::scenario
