#include "scenario/comparer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <tuple>

#include "common/json_mini.hpp"
#include "common/timer.hpp"
#include "core/camo.hpp"
#include "core/experiment.hpp"
#include "layout/metal_gen.hpp"
#include "layout/via_gen.hpp"
#include "litho/simulator.hpp"
#include "opc/ilt.hpp"
#include "opc/one_shot.hpp"
#include "opc/rule_engine.hpp"
#include "runtime/batch.hpp"

namespace camo::scenario {
namespace {

std::uint64_t fnv1a(const std::string& s) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

// One double format for every JSON/golden emission: %.10g round-trips the
// deterministic batch metrics stably, so equal doubles always render to
// equal bytes (the fingerprint contract).
std::string fmt(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    out += "\"";
    return out;
}

opc::OpcOptions cell_opc_options(const Scenario& sc, rl::RewardMode mode,
                                 const litho::WindowSpec& window, int max_iterations) {
    opc::OpcOptions o;
    o.max_iterations = max_iterations;
    o.initial_bias_nm = sc.style == Style::kVia ? 3 : 0;
    o.exit_epe_per_feature = sc.style == Style::kVia ? 4.0 : 0.0;
    o.exit_epe_per_point = sc.style == Style::kMetal ? 1.0 : 0.0;
    o.objective = mode;
    // Fully specified (never empty axes): the batch scheduler's
    // same-spec check then reuses the engines' in-loop final sweep, and
    // every engine is scored on this exact window.
    o.window = window;
    return o;
}

CellResult reduce_cell(const std::string& scenario, const std::string& engine,
                       rl::RewardMode mode, const runtime::BatchResult& br) {
    CellResult cell;
    cell.scenario = scenario;
    cell.engine = engine;
    cell.reward = rl::reward_mode_name(mode);
    cell.clips = static_cast<int>(br.clips.size());
    cell.failed = br.failed;
    for (const runtime::ClipResult& c : br.clips) {
        if (!c.error.empty()) continue;
        cell.segments += c.segments;
        if (c.window) {
            const litho::CornerResult* nominal = c.window->nominal_corner();
            cell.epe += nominal != nullptr ? nominal->metrics.sum_abs_epe : c.final_epe;
            cell.worst_epe += c.window->worst_epe;
            cell.pvb_exact_nm2 += c.window->pv_band_exact_nm2;
            if (c.window->worst_corner >= 0) {
                const std::vector<double>& profile =
                    c.window->corners[static_cast<std::size_t>(c.window->worst_corner)]
                        .metrics.epe;
                double sq = 0.0;
                for (const double e : profile) sq += e * e;
                cell.epe_l2 += std::sqrt(sq);
            }
        } else {
            cell.epe += c.final_epe;
            cell.worst_epe += c.final_epe;
            cell.pvb_exact_nm2 += c.pvband_nm2;
        }
    }
    const int ok = cell.ok();
    if (ok > 0) {
        cell.epe /= ok;
        cell.worst_epe /= ok;
        cell.pvb_exact_nm2 /= ok;
        cell.epe_l2 /= ok;
    }
    cell.hit_rate = br.incremental_hit_rate();
    cell.wall_s = br.wall_s;
    cell.clip_runtime_s = br.sum_clip_runtime_s;
    return cell;
}

void append_cell_json(std::string& out, const CellResult& c, bool include_timing) {
    out += "    {\"scenario\": " + quoted(c.scenario);
    out += ", \"engine\": " + quoted(c.engine);
    out += ", \"reward\": " + quoted(c.reward);
    out += ", \"rank\": " + std::to_string(c.rank);
    out += ", \"clips\": " + std::to_string(c.clips);
    out += ", \"failed\": " + std::to_string(c.failed);
    out += ", \"segments\": " + std::to_string(c.segments);
    out += ", \"epe\": " + fmt(c.epe);
    out += ", \"worst_epe\": " + fmt(c.worst_epe);
    out += ", \"pvb_exact_nm2\": " + fmt(c.pvb_exact_nm2);
    out += ", \"epe_l2\": " + fmt(c.epe_l2);
    out += ", \"hit_rate\": " + fmt(c.hit_rate);
    if (include_timing) {
        out += ", \"wall_s\": " + fmt(c.wall_s);
        out += ", \"clip_runtime_s\": " + fmt(c.clip_runtime_s);
    }
    out += "}";
}

}  // namespace

std::string CompareResult::to_json(bool include_timing) const {
    std::string out = "{\n  \"schema\": \"camo-compare-v1\",\n";
    if (include_timing) {
        out += "  \"threads\": " + std::to_string(threads) + ",\n";
        out += "  \"wall_s\": " + fmt(wall_s) + ",\n";
    }
    out += "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        append_cell_json(out, cells[i], include_timing);
        out += i + 1 < cells.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string CompareResult::table() const {
    std::string out;
    std::string group;
    char line[200];
    for (const CellResult& c : cells) {
        const std::string key = c.scenario + " / " + c.reward;
        if (key != group) {
            group = key;
            out += "\n== " + key + " ==\n";
            std::snprintf(line, sizeof(line), "%-4s %-8s %10s %10s %12s %8s %6s %9s\n", "rank",
                          "engine", "epe", "worst_epe", "pvb_nm2", "epe_l2", "hit%", "clip_s");
            out += line;
        }
        std::snprintf(line, sizeof(line), "%-4d %-8s %10.2f %10.2f %12.0f %8.2f %6.1f %9.3f%s\n",
                      c.rank, c.engine.c_str(), c.epe, c.worst_epe, c.pvb_exact_nm2, c.epe_l2,
                      100.0 * c.hit_rate, c.clip_runtime_s,
                      c.failed > 0 ? "  [FAILED clips]" : "");
        out += line;
    }
    return out;
}

std::vector<CellBound> read_bounds(const std::string& json_text) {
    const json::Value doc = json::parse(json_text);
    const json::Value* schema = doc.find("schema");
    if (schema == nullptr || schema->string != "camo-compare-bounds-v1") {
        throw std::runtime_error("golden bounds: missing or wrong schema tag");
    }
    std::vector<CellBound> out;
    for (const json::Value& c : doc.at("cells").array) {
        CellBound b;
        b.scenario = c.at("scenario").string;
        b.engine = c.at("engine").string;
        b.reward = c.at("reward").string;
        b.max_epe = c.at("max_epe").number;
        b.max_worst_epe = c.at("max_worst_epe").number;
        b.max_pvb_exact_nm2 = c.at("max_pvb_exact_nm2").number;
        b.max_epe_l2 = c.at("max_epe_l2").number;
        out.push_back(std::move(b));
    }
    return out;
}

std::vector<std::string> check_bounds(const CompareResult& result,
                                      const std::vector<CellBound>& bounds) {
    std::vector<std::string> violations;
    for (const CellBound& b : bounds) {
        const std::string id = b.scenario + "/" + b.engine + "/" + b.reward;
        const CellResult* cell = nullptr;
        for (const CellResult& c : result.cells) {
            if (c.scenario == b.scenario && c.engine == b.engine && c.reward == b.reward) {
                cell = &c;
                break;
            }
        }
        if (cell == nullptr) {
            violations.push_back(id + ": cell missing from compare result");
            continue;
        }
        if (cell->failed > 0) {
            violations.push_back(id + ": " + std::to_string(cell->failed) + " clip(s) failed");
        }
        const auto check = [&](const char* metric, double value, double bound) {
            if (bound > 0.0 && value > bound) {
                violations.push_back(id + ": " + metric + " " + fmt(value) + " exceeds bound " +
                                     fmt(bound));
            }
        };
        check("epe", cell->epe, b.max_epe);
        check("worst_epe", cell->worst_epe, b.max_worst_epe);
        check("pvb_exact_nm2", cell->pvb_exact_nm2, b.max_pvb_exact_nm2);
        check("epe_l2", cell->epe_l2, b.max_epe_l2);
    }
    return violations;
}

std::string bounds_json(const CompareResult& result, double rel_slack, double abs_slack) {
    const auto bound = [&](double value, double abs) { return value * (1.0 + rel_slack) + abs; };
    std::string out = "{\n  \"schema\": \"camo-compare-bounds-v1\",\n";
    out += "  \"rel_slack\": " + fmt(rel_slack) + ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        const CellResult& c = result.cells[i];
        out += "    {\"scenario\": " + quoted(c.scenario);
        out += ", \"engine\": " + quoted(c.engine);
        out += ", \"reward\": " + quoted(c.reward);
        out += ", \"max_epe\": " + fmt(bound(c.epe, abs_slack));
        out += ", \"max_worst_epe\": " + fmt(bound(c.worst_epe, abs_slack));
        out += ", \"max_pvb_exact_nm2\": " + fmt(bound(c.pvb_exact_nm2, 100.0 * abs_slack));
        out += ", \"max_epe_l2\": " + fmt(bound(c.epe_l2, abs_slack));
        out += "}";
        out += i + 1 < result.cells.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

PolicyComparer::PolicyComparer(CompareOptions opt) : opt_(std::move(opt)) {}
PolicyComparer::~PolicyComparer() = default;

core::CamoEngine& PolicyComparer::trained_engine(const std::string& engine, Style style) {
    const std::string key = engine + "|" + style_name(style);
    const auto it = trained_.find(key);
    if (it != trained_.end()) return *it->second;

    // Tiny deterministic training recipe: rule-teacher imitation only
    // (phase2_episodes = 0), serial trainer so the comparer's results
    // cannot depend on worker count, no on-disk weight cache — the matrix
    // must regenerate from seeds alone. The same weights serve every reward
    // mode; the comparer measures how one policy holds up under each
    // objective, not reward-specific retraining.
    core::CamoConfig cfg;
    cfg.name = engine + "-cmp";
    cfg.seed = 7;
    cfg.teacher_biases = {3, 0};
    cfg.teacher_steps = 3;
    cfg.phase1_epochs = opt_.phase1_epochs;
    cfg.phase2_episodes = 0;
    cfg.train_workers = 1;
    if (engine == "rlopc") cfg = core::make_rlopc_config(cfg);

    auto eng = std::make_unique<core::CamoEngine>(cfg);

    std::vector<layout::Clip> clips;
    clips.reserve(static_cast<std::size_t>(std::max(0, opt_.train_clips)));
    for (int i = 0; i < opt_.train_clips; ++i) {
        Rng rng(derive_seed(0xC0FFEEULL, static_cast<std::uint64_t>(i)));
        layout::Clip clip;
        clip.name = key + "_train_" + std::to_string(i);
        clip.clip_nm = 1000;
        if (style == Style::kVia) {
            layout::ViaGenOptions vg;
            vg.clip_nm = 1000;
            vg.margin_nm = 200;
            vg.min_spacing_nm = 120;
            clip.targets = layout::generate_via_clip(2 + i % 3, rng, vg);
        } else {
            layout::MetalGenOptions mg;
            mg.clip_nm = 1000;
            clip.targets = layout::generate_metal_clip(24, rng, mg);
        }
        clips.push_back(std::move(clip));
    }
    const std::vector<geo::SegmentedLayout> layouts =
        style == Style::kVia ? core::fragment_via_clips(clips) : core::fragment_metal_clips(clips);

    litho::LithoSim sim(quick_litho());
    opc::OpcOptions topt;
    topt.max_iterations = opt_.max_iterations;
    topt.initial_bias_nm = style == Style::kVia ? 3 : 0;
    eng->train(layouts, sim, topt);

    return *trained_.emplace(key, std::move(eng)).first->second;
}

CompareResult PolicyComparer::run(int threads_override) {
    Timer wall;
    const int threads = threads_override > 0 ? threads_override : opt_.threads;
    Registry& reg = Registry::instance();
    const std::vector<std::string> scenario_names =
        opt_.scenarios.empty() ? reg.names() : opt_.scenarios;

    CompareResult result;
    result.threads = threads;
    for (const std::string& sname : scenario_names) {
        const Scenario sc = reg.get(sname);  // throws std::out_of_range when unknown
        const int nclips = opt_.clips > 0 ? opt_.clips : sc.default_clips;
        const std::vector<geo::SegmentedLayout> layouts = sc.layouts(nclips);
        std::vector<std::string> clip_names;
        clip_names.reserve(static_cast<std::size_t>(nclips));
        for (int i = 0; i < nclips; ++i) clip_names.push_back(sname + "_" + std::to_string(i));
        const litho::WindowSpec window = sc.resolved_window();

        for (const rl::RewardMode mode : opt_.rewards) {
            runtime::BatchOptions bopt;
            bopt.threads = threads;
            // Seeded off the scenario name so a cell's results do not shift
            // when other scenarios are added to / removed from the run.
            bopt.seed = derive_seed(opt_.seed, fnv1a(sname));
            bopt.window = true;
            bopt.window_spec = window;
            bopt.opc = cell_opc_options(sc, mode, window, opt_.max_iterations);
            runtime::BatchScheduler sched(sc.litho, bopt);

            std::vector<CellResult> group;
            for (const std::string& engine : opt_.engines) {
                runtime::BatchResult br;
                if (engine == "rule") {
                    br = sched.run_rule(layouts, {}, clip_names);
                } else if (engine == "oneshot") {
                    br = sched.run(
                        layouts,
                        [](const geo::SegmentedLayout& l, litho::LithoSim& sim,
                           const opc::OpcOptions& opt, std::uint64_t) {
                            opc::OneShotEngine e;
                            return e.optimize(l, sim, opt);
                        },
                        clip_names);
                } else if (engine == "camo" || engine == "rlopc") {
                    const core::CamoEngine& eng = trained_engine(engine, sc.style);
                    br = sched.run(
                        layouts,
                        [&eng](const geo::SegmentedLayout& l, litho::LithoSim& sim,
                               const opc::OpcOptions& opt, std::uint64_t) {
                            return eng.infer(l, sim, opt);
                        },
                        clip_names);
                } else if (engine == "ilt") {
                    const int ilt_iters = opt_.ilt_iterations;
                    br = sched.run(
                        layouts,
                        [ilt_iters](const geo::SegmentedLayout& l, litho::LithoSim& sim,
                                    const opc::OpcOptions& opt, std::uint64_t) {
                            opc::IltOptions io;
                            io.iterations = ilt_iters;
                            io.objective = opt.objective;
                            io.window = opt.window;
                            io.corner_weights = opt.corner_weights;
                            io.evaluate_window = true;
                            const opc::IltResult ir = opc::IltEngine(io).optimize(l, sim);
                            opc::EngineResult res;
                            res.final_metrics.sum_abs_epe = ir.sum_abs_epe;
                            res.final_metrics.pvband_nm2 =
                                ir.final_window ? ir.final_window->pv_band_exact_nm2 : 0.0;
                            res.iterations = ilt_iters;
                            res.runtime_s = ir.runtime_s;
                            res.final_window = ir.final_window;
                            return res;
                        },
                        clip_names);
                } else {
                    throw std::invalid_argument("unknown engine '" + engine +
                                                "' (known: rule, oneshot, camo, rlopc, ilt)");
                }
                group.push_back(reduce_cell(sname, engine, mode, br));
            }

            // Rank within the (scenario, reward) group: best worst-corner
            // EPE first, nominal EPE then the engine name break ties; cells
            // whose clips all failed sink to the bottom.
            std::vector<std::size_t> order(group.size());
            for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
            std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
                const CellResult& ca = group[a];
                const CellResult& cb = group[b];
                return std::make_tuple(ca.ok() == 0, ca.worst_epe, ca.epe, ca.engine) <
                       std::make_tuple(cb.ok() == 0, cb.worst_epe, cb.epe, cb.engine);
            });
            for (std::size_t r = 0; r < order.size(); ++r) {
                group[order[r]].rank = static_cast<int>(r) + 1;
            }
            for (const std::size_t i : order) result.cells.push_back(std::move(group[i]));
        }
    }
    result.wall_s = wall.seconds();
    return result;
}

}  // namespace camo::scenario
