// OPC-inspired action modulator (paper Section 3.2 and Figure 4).
//
// Given a segment's signed EPE, five points are sampled evenly on [0, EPE]
// with x1 > x2 > ... > x5, projected through f(x) = k x^n + b and softmax
// normalized. The result is a preference vector over the movements
// {m1..m5} = {-2,-1,0,+1,+2} nm:
//   * positive EPE (contour outside the target) peaks at m1 (inward),
//   * negative EPE peaks at m5 (outward),
//   * near-zero EPE yields a nearly uniform vector.
// f is flat near zero and steep for large |EPE|, so the preference is only
// decisive when the lithographic evidence is strong.
#pragma once

#include <array>

#include "rl/trajectory.hpp"

namespace camo::core {

struct ModulatorConfig {
    double k = 0.02;  ///< paper: f(x) = 0.02 x^4 + 1
    int n = 4;        ///< positive even exponent
    double b = 1.0;
    bool enabled = true;
};

/// Softmax-normalized preference over the 5 movements for a signed EPE.
std::array<double, rl::kNumActions> modulation_vector(double epe, const ModulatorConfig& cfg);

/// Elementwise product of policy probabilities with the modulation vector,
/// renormalized. With cfg.enabled == false, returns `probs` unchanged.
std::array<double, rl::kNumActions> modulate_probs(
    const std::array<double, rl::kNumActions>& probs, double epe, const ModulatorConfig& cfg);

}  // namespace camo::core
