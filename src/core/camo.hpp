// CamoEngine: the paper's OPC system, tying together squish encoding, the
// segment graph, the correlation-aware policy network, the OPC-inspired
// modulator and REINFORCE training.
//
// Training is two-phase (paper Algorithm 1):
//   Phase 1 imitates 5-step trajectories recorded from the rule-based
//   engine (the Calibre stand-in): a cross-entropy / policy-gradient update
//   toward the teacher's actions.
//   Phase 2 runs modulated RL: actions are sampled from the elementwise
//   product of the policy output and the modulation vector, the reward is
//   Eq. (3), and the update is Eq. (7) on the *unmodulated* policy output.
//
// Inference picks argmax of the modulated probability per segment and stops
// on the paper's early-exit rules.
#pragma once

#include <optional>
#include <string>

#include "core/modulator.hpp"
#include "core/policy.hpp"
#include "core/squish.hpp"
#include "nn/adam.hpp"
#include "nn/sgd.hpp"
#include "opc/engine.hpp"
#include "opc/rule_engine.hpp"
#include "rl/reward.hpp"

namespace camo::core {

struct CamoConfig {
    PolicyConfig policy;
    ModulatorConfig modulator;

    /// Base Eq. (3) parameters (epsilon, beta). The reward *mode* — nominal,
    /// worst-corner or weighted-corner — is per-run, carried by
    /// opc::OpcOptions::objective: under a window objective, phase-2 updates
    /// and inference both ride evaluate_window_incremental and score steps
    /// with rl::window_step_reward built from this base config.
    rl::RewardConfig reward;
    SquishOptions squish;  ///< squish.size must equal policy.squish_size
    double graph_threshold_nm = 250.0;

    /// Optimizer choice. The paper uses SGD (lr 3e-4) over 500 GPU epochs;
    /// Adam reaches the same imitation accuracy in far fewer CPU epochs
    /// because it rescales the small discriminative gradient component.
    enum class Optimizer { kAdam, kSgd };
    Optimizer optimizer = Optimizer::kAdam;

    float lr = 1e-3F;        ///< Adam default; use 3e-4 with kSgd (paper)
    float momentum = 0.9F;   ///< SGD only
    float clip_norm = 5.0F;  ///< global gradient-norm bound
    float weight_decay = 1e-4F;

    int phase1_epochs = 60;   ///< paper: 500 (quick default for CPU runs)
    int teacher_steps = 5;    ///< paper: five-step Calibre trajectories
    int phase2_episodes = 4;  ///< RL fine-tuning episodes over the train set

    /// Step-size multiplier for the REINFORCE phase. The per-step global
    /// reward gives poor per-segment credit assignment, so full-size
    /// updates can erase a good imitation policy in a few noisy episodes.
    float phase2_lr_scale = 0.2F;

    /// Initial biases for teacher trajectory collection. Multiple starts
    /// cover both over- and under-printed states (a single +3 nm start
    /// never visits negative-EPE states, leaving the policy blind there).
    /// Empty = use OpcOptions::initial_bias_nm only.
    std::vector<int> teacher_biases;

    std::string name = "camo";
    std::uint64_t seed = 1;
};

struct TrainStats {
    std::vector<double> phase1_loss;     ///< mean NLL per epoch
    std::vector<double> phase2_reward;   ///< mean step reward per episode
};

class CamoEngine : public opc::Engine {
public:
    explicit CamoEngine(CamoConfig cfg);

    [[nodiscard]] std::string name() const override { return cfg_.name; }

    opc::EngineResult optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                               const opc::OpcOptions& opt) override;

    /// Read-only inference: the same loop as optimize() (modulated argmax,
    /// paper early-exit rules) but const w.r.t. the engine, so one trained
    /// snapshot can serve many batch workers concurrently — each worker must
    /// pass its own simulator (the incremental-evaluation cache inside
    /// LithoSim is per-instance, not shared). When `rng` is non-null,
    /// actions are sampled from the modulated distribution instead of
    /// argmax'd; pass a per-job Rng (seeded from the job index) so results
    /// stay independent of scheduling.
    [[nodiscard]] opc::EngineResult infer(const geo::SegmentedLayout& layout,
                                          litho::LithoSim& sim, const opc::OpcOptions& opt,
                                          Rng* rng = nullptr) const;

    /// Two-phase training on a set of fragmented clips.
    TrainStats train(const std::vector<geo::SegmentedLayout>& clips, litho::LithoSim& sim,
                     const opc::OpcOptions& opt);

    /// Toggle the modulator (paper Section 4.4 / Figure 5 ablation).
    void set_modulator_enabled(bool enabled) { cfg_.modulator.enabled = enabled; }
    [[nodiscard]] bool modulator_enabled() const { return cfg_.modulator.enabled; }

    void save_weights(const std::string& path) { policy_.save(path); }
    [[nodiscard]] bool load_weights(const std::string& path) { return policy_.load(path); }

    [[nodiscard]] PolicyNetwork& policy() { return policy_; }
    [[nodiscard]] const CamoConfig& config() const { return cfg_; }

    /// Per-node squish features of the mask state given by `offsets`.
    [[nodiscard]] std::vector<nn::Tensor> encode_state(const geo::SegmentedLayout& layout,
                                                       std::span<const int> offsets) const;

private:
    CamoConfig cfg_;
    PolicyNetwork policy_;
    std::optional<nn::Adam> adam_;
    std::optional<nn::Sgd> sgd_;
    Rng sample_rng_;

    void optimizer_step();

    /// Sample or argmax one action per node from (optionally modulated)
    /// policy probabilities.
    std::vector<int> select_actions(const nn::Tensor& logits,
                                    const std::vector<double>& epe_segment, bool stochastic);
};

/// The RL-OPC baseline [12]: same training scheme, but per-segment
/// independent decisions (no GNN fusion, no RNN) and no modulator.
CamoConfig make_rlopc_config(const CamoConfig& base);

}  // namespace camo::core
