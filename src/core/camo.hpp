// CamoEngine: the paper's OPC system, tying together squish encoding, the
// segment graph, the correlation-aware policy network, the OPC-inspired
// modulator and REINFORCE training.
//
// Training is two-phase (paper Algorithm 1):
//   Phase 1 imitates 5-step trajectories recorded from the rule-based
//   engine (the Calibre stand-in): a cross-entropy / policy-gradient update
//   toward the teacher's actions.
//   Phase 2 runs modulated RL: actions are sampled from the elementwise
//   product of the policy output and the modulation vector, the reward is
//   Eq. (3), and the update is Eq. (7) on the *unmodulated* policy output.
//
// Inference picks argmax of the modulated probability per segment and stops
// on the paper's early-exit rules.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/modulator.hpp"
#include "core/policy.hpp"
#include "core/squish.hpp"
#include "nn/adam.hpp"
#include "nn/sgd.hpp"
#include "opc/engine.hpp"
#include "opc/rule_engine.hpp"
#include "rl/reward.hpp"

namespace camo::rl {
class TrajStoreReader;
class TrajStoreWriter;
}  // namespace camo::rl

namespace camo::core {

struct CamoConfig {
    PolicyConfig policy;
    ModulatorConfig modulator;

    /// Base Eq. (3) parameters (epsilon, beta). The reward *mode* — nominal,
    /// worst-corner or weighted-corner — is per-run, carried by
    /// opc::OpcOptions::objective: under a window objective, phase-2 updates
    /// and inference both ride evaluate_window_incremental and score steps
    /// with rl::window_step_reward built from this base config.
    rl::RewardConfig reward;
    SquishOptions squish;  ///< squish.size must equal policy.squish_size
    double graph_threshold_nm = 250.0;

    /// Optimizer choice. The paper uses SGD (lr 3e-4) over 500 GPU epochs;
    /// Adam reaches the same imitation accuracy in far fewer CPU epochs
    /// because it rescales the small discriminative gradient component.
    enum class Optimizer { kAdam, kSgd };
    Optimizer optimizer = Optimizer::kAdam;

    float lr = 1e-3F;        ///< Adam default; use 3e-4 with kSgd (paper)
    float momentum = 0.9F;   ///< SGD only
    float clip_norm = 5.0F;  ///< global gradient-norm bound
    float weight_decay = 1e-4F;

    int phase1_epochs = 60;   ///< paper: 500 (quick default for CPU runs)
    int teacher_steps = 5;    ///< paper: five-step Calibre trajectories
    int phase2_episodes = 4;  ///< RL fine-tuning episodes over the train set

    /// Data-parallel training runtime: worker count for teacher-trajectory
    /// collection and minibatch gradient computation. 1 = serial in the
    /// calling thread; <= 0 = all hardware threads. Results (loss/reward
    /// traces and trained weights) are BIT-IDENTICAL at any value — each
    /// (clip, bias) collection job and each minibatch sample is computed
    /// independently on a per-worker simulator / policy replica and merged
    /// in canonical order (nn::reduce_in_order) — so this is a throughput
    /// knob only and deliberately not part of the weight-cache key.
    int train_workers = 1;

    /// Phase-1 minibatch size: samples whose gradients are accumulated
    /// (per-sample shadow buffers, fixed-order reduction) before each
    /// optimizer step. 1 = per-sample steps, the schedule the paper's SGD
    /// uses (and the serial-trainer behaviour of earlier revisions);
    /// <= 0 = one whole-epoch batch. Parallel speedup of a phase-1 epoch is
    /// bounded by this: samples within a minibatch run concurrently,
    /// minibatches are sequential because each one sees the weights the
    /// previous step produced.
    int phase1_batch = 1;

    /// Step-size multiplier for the REINFORCE phase. The per-step global
    /// reward gives poor per-segment credit assignment, so full-size
    /// updates can erase a good imitation policy in a few noisy episodes.
    float phase2_lr_scale = 0.2F;

    /// Initial biases for teacher trajectory collection. Multiple starts
    /// cover both over- and under-printed states (a single +3 nm start
    /// never visits negative-EPE states, leaving the policy blind there).
    /// Empty = use OpcOptions::initial_bias_nm only.
    std::vector<int> teacher_biases;

    std::string name = "camo";
    std::uint64_t seed = 1;
};

struct TrainStats {
    std::vector<double> phase1_loss;     ///< mean NLL per epoch
    std::vector<double> phase2_reward;   ///< mean step reward per episode
};

/// One phase-1 imitation sample: the squish features of the mask state a
/// teacher step observed and the action the teacher took per segment.
struct TeacherSample {
    int clip = 0;
    std::vector<nn::Tensor> features;
    std::vector<int> actions;
};

/// The phase-1 imitation dataset: samples in canonical (clip, bias, step)
/// order, per-clip segment graphs, inverse-frequency action weights, and the
/// raw teacher trajectories in (clip, bias) job order (with provenance set).
struct Phase1Dataset {
    std::vector<TeacherSample> samples;
    std::vector<Graph> graphs;  ///< indexed by clip
    std::array<float, rl::kNumActions> action_weight{};
    std::vector<rl::Trajectory> trajectories;
};

/// The phase-1 replay source: an open packed trajectory store plus the
/// per-clip graphs and action weights rebuilt from it. Built by
/// CamoEngine::make_phase1_replay; run_phase1_epoch then streams minibatch
/// samples straight from the store's memory mapping (one step record =
/// one sample, in stored — i.e. canonical collection — order), producing
/// weights byte-identical to in-memory training on the same clips.
struct Phase1Replay {
    const rl::TrajStoreReader* store = nullptr;
    std::vector<Graph> graphs;  ///< indexed by clip
    std::array<float, rl::kNumActions> action_weight{};
};

class CamoEngine : public opc::Engine {
public:
    explicit CamoEngine(CamoConfig cfg);
    ~CamoEngine() override;

    [[nodiscard]] std::string name() const override { return cfg_.name; }

    opc::EngineResult optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                               const opc::OpcOptions& opt) override;

    /// Read-only inference: the same loop as optimize() (modulated argmax,
    /// paper early-exit rules) but const w.r.t. the engine, so one trained
    /// snapshot can serve many batch workers concurrently — each worker must
    /// pass its own simulator (the incremental-evaluation cache inside
    /// LithoSim is per-instance, not shared). When `rng` is non-null,
    /// actions are sampled from the modulated distribution instead of
    /// argmax'd; pass a per-job Rng (seeded from the job index) so results
    /// stay independent of scheduling.
    [[nodiscard]] opc::EngineResult infer(const geo::SegmentedLayout& layout,
                                          litho::LithoSim& sim, const opc::OpcOptions& opt,
                                          Rng* rng = nullptr) const;

    /// Batched inference: roll all clips forward in lockstep waves — at each
    /// step, every clip still running contributes its node set to ONE
    /// batched policy evaluation (PolicyNetwork::infer_batch) instead of N
    /// single-clip forwards. Each clip needs its own simulator (`sims`, one
    /// per layout; the incremental cache is per-instance). `seeds` selects
    /// the action rule: empty = modulated argmax (matching infer() with
    /// rng == nullptr); otherwise seeds[i] seeds clip i's private Rng and
    /// actions are sampled (matching infer() with Rng(seeds[i])). Per-clip
    /// results — offsets, metrics, histories, iteration counts — are
    /// identical to running infer() per clip on the same backend; only
    /// runtime_s differs (the batch wall time is split evenly, as lockstep
    /// waves have no meaningful per-clip attribution).
    [[nodiscard]] std::vector<opc::EngineResult> infer_batch(
        std::span<const geo::SegmentedLayout> layouts, std::span<litho::LithoSim> sims,
        const opc::OpcOptions& opt, std::span<const std::uint64_t> seeds = {}) const;

    /// Two-phase training on a set of fragmented clips. Runs on the
    /// data-parallel training runtime (cfg.train_workers): teacher
    /// trajectories are collected in parallel over (clip, bias) jobs, and
    /// both phases accumulate per-sample gradients into detached buffers
    /// merged in canonical order before each optimizer step, so the returned
    /// traces and the trained weights are bit-identical at any worker count.
    /// Degenerate inputs (no clips, no teacher steps, clips without
    /// segments) yield finite zero stats and leave the weights untouched.
    TrainStats train(const std::vector<geo::SegmentedLayout>& clips, litho::LithoSim& sim,
                     const opc::OpcOptions& opt);

    /// Phase-1 teacher collection: record a rule-engine trajectory for every
    /// (clip, bias) job — clip-major, bias-minor — and encode each step's
    /// squish features. Jobs run in parallel on the training runtime, each
    /// on its own simulator copy (record_trajectory primes the incremental
    /// cache with a full rebuild, so results never depend on scheduling);
    /// the gathered dataset is bit-identical at any cfg.train_workers.
    /// Clips without segments contribute no jobs.
    ///
    /// Store-sink mode: when `store` is non-null, every gathered trajectory
    /// (with its per-step squish features) is appended to the trajectory
    /// store in the same canonical clip-major / bias-minor order and the
    /// store is flushed once — per-worker results are merged before any
    /// byte is written, so the file bytes are identical at any
    /// cfg.train_workers.
    Phase1Dataset collect_teacher_data(const std::vector<geo::SegmentedLayout>& clips,
                                       litho::LithoSim& sim, const opc::OpcOptions& opt,
                                       rl::TrajStoreWriter* store = nullptr);

    /// One phase-1 imitation epoch over the dataset (class-weighted NLL,
    /// minibatched per cfg.phase1_batch, per-sample gradients reduced in
    /// fixed order). Returns the epoch's mean NLL per node — finite (0.0)
    /// and step-free when the dataset is empty.
    double run_phase1_epoch(const Phase1Dataset& data);

    /// Replay source over a packed trajectory store: rebuilds the per-clip
    /// segment graphs and the inverse-frequency action weights from the
    /// store, and cross-checks the store against `clips` (clip indices in
    /// range, per-clip segment counts equal, feature tensors present and
    /// shaped for this engine's squish config). Throws std::invalid_argument
    /// on any mismatch — a store is never silently replayed against the
    /// wrong clip set.
    [[nodiscard]] Phase1Replay make_phase1_replay(
        const rl::TrajStoreReader& store,
        const std::vector<geo::SegmentedLayout>& clips) const;

    /// The replay twin of run_phase1_epoch(Phase1Dataset): one imitation
    /// epoch whose minibatch samples are decoded on demand from the store's
    /// memory mapping (zero-copy feature spans, per-sample tensor
    /// materialization on the worker thread). Identical update schedule and
    /// reduction order, so the loss trace and the trained weights are
    /// byte-identical to in-memory training on the same data.
    double run_phase1_epoch(const Phase1Replay& data);

    /// Toggle the modulator (paper Section 4.4 / Figure 5 ablation).
    void set_modulator_enabled(bool enabled) { cfg_.modulator.enabled = enabled; }
    [[nodiscard]] bool modulator_enabled() const { return cfg_.modulator.enabled; }

    void save_weights(const std::string& path) { policy_.save(path); }
    [[nodiscard]] bool load_weights(const std::string& path) { return policy_.load(path); }

    [[nodiscard]] PolicyNetwork& policy() { return policy_; }
    [[nodiscard]] const CamoConfig& config() const { return cfg_; }

    /// Per-node squish features of the mask state given by `offsets`.
    [[nodiscard]] std::vector<nn::Tensor> encode_state(const geo::SegmentedLayout& layout,
                                                       std::span<const int> offsets) const;

private:
    CamoConfig cfg_;
    PolicyNetwork policy_;
    std::optional<nn::Adam> adam_;
    std::optional<nn::Sgd> sgd_;

    /// Lazily-built data-parallel training runtime: a thread pool plus one
    /// policy replica per worker (none when the resolved worker count is 1).
    /// Rebuilt if cfg_.train_workers changes between training calls.
    struct TrainRuntime;
    std::unique_ptr<TrainRuntime> train_rt_;
    TrainRuntime& train_runtime();

    void optimizer_step();

    /// One phase-1 sample as the epoch core consumes it. The in-memory path
    /// points straight into the Phase1Dataset; the replay path decodes into
    /// the owned_* storage (per worker-thread call, so streaming is
    /// scheduling-free).
    struct Phase1Sample {
        int clip = 0;
        std::vector<nn::Tensor> owned_features;
        std::vector<int> owned_actions;
        const std::vector<nn::Tensor>* features = nullptr;
        std::span<const int> actions;
    };

    /// Shared phase-1 epoch core: class-weighted NLL over `sample_count`
    /// samples fetched through `load(k, out)` (thread-safe, called from
    /// trainer workers), minibatched per cfg.phase1_batch with fixed-order
    /// gradient reduction. Both run_phase1_epoch overloads delegate here, so
    /// disk replay and in-memory training share one update schedule.
    template <typename LoadSample>
    double phase1_epoch_over(std::size_t sample_count, const std::vector<Graph>& graphs,
                             const std::array<float, rl::kNumActions>& action_weight,
                             const LoadSample& load);

    /// One phase-2 lockstep REINFORCE episode: every clip rolls out
    /// synchronously — at each time step the active clips act in parallel
    /// against per-clip simulators with per-(episode, clip) splitmix RNG
    /// streams, their Eq. (7) gradients are reduced in clip order, and one
    /// optimizer step follows. `clip_sims` (one per clip, shared across
    /// episodes) are re-primed with a full rebuild at episode start, so
    /// their carried-over caches never leak into results. Returns the
    /// episode's mean step reward.
    double run_phase2_episode(const std::vector<geo::SegmentedLayout>& clips,
                              const std::vector<Graph>& graphs,
                              std::vector<litho::LithoSim>& clip_sims,
                              const opc::OpcOptions& opt, int episode);
};

/// The RL-OPC baseline [12]: same training scheme, but per-segment
/// independent decisions (no GNN fusion, no RNN) and no modulator.
CamoConfig make_rlopc_config(const CamoConfig& base);

}  // namespace camo::core
