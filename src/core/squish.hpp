// Adaptive squish-pattern encoding of a control point's neighborhood
// (paper Figure 3, following Yang et al. ASPDAC'19).
//
// A window centred on the control point is cut into a topology grid by
// scanlines at the geometry edges; the grid occupancy matrix M plus the
// spacing vectors (dx, dy) losslessly describe the window. The grid is then
// adaptively resized to a fixed size x size shape (splitting the widest
// cells / merging the narrowest) so a CNN can consume it.
//
// CAMO's node feature doubles the encoding: channels 0-2 use scanlines from
// the *current mask* geometry only; channels 3-5 add scanlines at the
// *target* pattern edges, highlighting how far segments have moved. Both
// occupancy channels mark current-mask geometry.
#pragma once

#include <span>

#include "geometry/polygon.hpp"
#include "nn/tensor.hpp"

namespace camo::core {

struct SquishOptions {
    int window_nm = 500;  ///< neighborhood window (paper: 500 nm)
    int size = 32;        ///< output grid edge (paper: 128 via / 64 metal)
};

/// Encode one control-point window into a [6, size, size] tensor.
/// `mask` = current mask polygons incl. SRAFs; `targets` = design polygons.
nn::Tensor encode_squish_window(std::span<const geo::Polygon> mask,
                                std::span<const geo::Polygon> targets, geo::FPoint center,
                                const SquishOptions& opt);

}  // namespace camo::core
