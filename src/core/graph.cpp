#include "core/graph.hpp"

namespace camo::core {

Graph build_segment_graph(const geo::SegmentedLayout& layout, double threshold_nm) {
    Graph g;
    g.n = layout.num_segments();
    g.neighbors.assign(static_cast<std::size_t>(g.n), {});

    const auto& segs = layout.segments();
    for (int i = 0; i < g.n; ++i) {
        for (int j = i + 1; j < g.n; ++j) {
            const double d = geo::distance(segs[static_cast<std::size_t>(i)].control(),
                                           segs[static_cast<std::size_t>(j)].control());
            if (d < threshold_nm) {
                g.neighbors[static_cast<std::size_t>(i)].push_back(j);
                g.neighbors[static_cast<std::size_t>(j)].push_back(i);
            }
        }
    }
    return g;
}

}  // namespace camo::core
