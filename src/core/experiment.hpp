// Experiment presets: the exact configurations behind the paper's tables
// and figures, shared by the benchmark harness, the examples and the
// pre-training tool.
//
// Two scales exist:
//   quick (default) - sized so the full benchmark suite runs on one CPU
//                     core in minutes: 4 nm pixels, 32x32x6 squish tensors,
//                     reduced epochs.
//   full (CAMO_BENCH_FULL=1) - paper-scale settings: 128x128x6 via /
//                     64x64x6 metal tensors and long training.
// Trained weights are cached under data/ keyed by a configuration hash, so
// repeated benchmark runs skip training.
#pragma once

#include <string>
#include <vector>

#include "core/camo.hpp"
#include "layout/metal_gen.hpp"
#include "layout/via_gen.hpp"

namespace camo::core {

struct Experiment {
    /// True when CAMO_BENCH_FULL=1 is set in the environment.
    static bool full_scale();

    /// Production lithography model: 193 nm immersion, NA 1.35, annular
    /// 0.6-0.9, 512x512 grid at 4 nm pixels, kernel cache under data/.
    static litho::LithoConfig litho_config();

    /// Paper via-layer protocol: <= 10 iterations, early exit at
    /// sum|EPE|/#vias < 4 nm, +3 nm initial outward bias.
    static opc::OpcOptions via_options();

    /// Paper metal-layer protocol: <= 15 iterations, early exit at mean
    /// |EPE| per measure point < 1 nm, unbiased initial mask.
    static opc::OpcOptions metal_options();

    static CamoConfig via_camo_config();
    static CamoConfig metal_camo_config();

    /// RL-OPC baseline [12]: CAMO stack minus GNN/RNN/modulator. Trained
    /// with a reduced budget, mirroring its weaker convergence in the paper.
    static CamoConfig via_rlopc_config();
    static CamoConfig metal_rlopc_config();

    /// Dataset seed shared by every bench so results are reproducible.
    static constexpr std::uint64_t kDatasetSeed = 42;

    /// Weight-cache path for an engine configuration ("" if caching is
    /// impossible). Encodes the architecture, trainer settings and the
    /// training reward mode — a policy trained under one objective must
    /// never be silently served to runs requesting another.
    static std::string weights_path(const CamoConfig& cfg, const std::string& layer_tag,
                                    rl::RewardMode objective = rl::RewardMode::kNominal);
};

/// Fragment via clips (SRAF insertion included) into segmented layouts.
std::vector<geo::SegmentedLayout> fragment_via_clips(const std::vector<layout::Clip>& clips);

/// Fragment metal clips (60 nm measure pitch, no SRAFs).
std::vector<geo::SegmentedLayout> fragment_metal_clips(const std::vector<layout::Clip>& clips);

/// Load cached weights if present; otherwise train and store them.
/// Returns true when weights came from the cache.
bool ensure_trained(CamoEngine& engine, const std::vector<geo::SegmentedLayout>& train_clips,
                    litho::LithoSim& sim, const opc::OpcOptions& opt,
                    const std::string& cache_path);

}  // namespace camo::core
