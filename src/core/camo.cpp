#include "core/camo.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "nn/grad_buffer.hpp"
#include "nn/softmax.hpp"
#include "obs/trace.hpp"
#include "opc/objective.hpp"
#include "rl/trajstore.hpp"
#include "runtime/thread_pool.hpp"

namespace camo::core {
namespace {

obs::MetricId collect_hist() {
    static const obs::MetricId id = obs::register_histogram("train.collect.ns");
    return id;
}
obs::MetricId teacher_samples_counter() {
    static const obs::MetricId id = obs::register_counter("train.teacher_samples");
    return id;
}
obs::MetricId phase1_epoch_hist() {
    static const obs::MetricId id = obs::register_histogram("train.phase1.epoch.ns");
    return id;
}
obs::MetricId phase2_episode_hist() {
    static const obs::MetricId id = obs::register_histogram("train.phase2.episode.ns");
    return id;
}
obs::MetricId phase2_wave_hist() {
    static const obs::MetricId id = obs::register_histogram("train.phase2.wave.ns");
    return id;
}
obs::MetricId reduce_hist() {
    static const obs::MetricId id = obs::register_histogram("train.reduce.ns");
    return id;
}
obs::MetricId reduction_counter() {
    static const obs::MetricId id = obs::register_counter("train.grad_reductions");
    return id;
}

// Applies the chosen actions and returns the indices whose offset actually
// changed (no-move actions and clamped moves stay clean) — the dirty set for
// incremental lithography evaluation.
std::vector<int> apply_actions(std::vector<int>& offsets, const std::vector<int>& actions,
                               int bound) {
    std::vector<int> dirty;
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        const int next = std::clamp(offsets[i] + rl::action_to_move(actions[i]), -bound, bound);
        if (next != offsets[i]) {
            offsets[i] = next;
            dirty.push_back(static_cast<int>(i));
        }
    }
    return dirty;
}

std::array<double, rl::kNumActions> node_probs(const nn::Tensor& logits, int node) {
    std::array<float, rl::kNumActions> row{};
    for (int a = 0; a < rl::kNumActions; ++a) row[static_cast<std::size_t>(a)] = logits.at(node, a);
    const auto p = nn::softmax(std::span<const float>(row.data(), row.size()));
    std::array<double, rl::kNumActions> out{};
    for (int a = 0; a < rl::kNumActions; ++a) out[static_cast<std::size_t>(a)] = p[static_cast<std::size_t>(a)];
    return out;
}

// Inverse-frequency class weights from raw action counts (teacher data is
// heavily skewed toward the no-move action once its trajectory converges).
// Shared by in-memory collection and store replay so both derive identical
// weights from identical counts.
std::array<float, rl::kNumActions> action_weights_from_counts(
    const std::array<long long, rl::kNumActions>& action_count, long long action_total) {
    std::array<float, rl::kNumActions> out{};
    for (int a = 0; a < rl::kNumActions; ++a) {
        const long long cnt = std::max(1LL, action_count[static_cast<std::size_t>(a)]);
        const double w = static_cast<double>(action_total) /
                         (static_cast<double>(rl::kNumActions) * static_cast<double>(cnt));
        out[static_cast<std::size_t>(a)] = static_cast<float>(std::min(w, 20.0));
    }
    return out;
}

std::vector<int> pick_actions(const nn::Tensor& logits, const std::vector<double>& epe_segment,
                              const ModulatorConfig& mod, Rng* rng) {
    const int n = logits.dim(0);
    std::vector<int> actions(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
        auto probs = node_probs(logits, i);
        probs = modulate_probs(probs, epe_segment[static_cast<std::size_t>(i)], mod);
        if (rng != nullptr) {
            actions[static_cast<std::size_t>(i)] = rng->sample_weighted(probs);
        } else {
            actions[static_cast<std::size_t>(i)] = static_cast<int>(
                std::max_element(probs.begin(), probs.end()) - probs.begin());
        }
    }
    return actions;
}

}  // namespace

CamoConfig make_rlopc_config(const CamoConfig& base) {
    CamoConfig cfg = base;
    cfg.policy.use_gnn = false;
    cfg.policy.use_rnn = false;
    cfg.modulator.enabled = false;
    cfg.name = "rl-opc";
    return cfg;
}

// Per-worker state of the data-parallel training runtime. Workers compute
// per-sample gradients on their own policy replica (synced from the master
// weights before each wave), so the master's Parameter::grad is only ever
// touched by the fixed-order reduction on the coordinating thread.
struct CamoEngine::TrainRuntime {
    int workers = 1;
    std::unique_ptr<runtime::ThreadPool> pool;             ///< null when workers == 1
    std::vector<std::unique_ptr<PolicyNetwork>> replicas;  ///< one per worker when pooled

    /// Copy the master weights into every replica (called once per wave,
    /// after the previous optimizer step made the replicas stale).
    void sync_replicas(PolicyNetwork& master) {
        for (auto& r : replicas) r->copy_weights_from(master);
    }

    /// The replica of the calling pool worker.
    PolicyNetwork& worker_replica() {
        const int w = pool->worker_index();
        return *replicas[static_cast<std::size_t>(w < 0 ? 0 : w)];
    }
};

CamoEngine::CamoEngine(CamoConfig cfg)
    : cfg_(std::move(cfg)), policy_(cfg_.policy) {
    if (cfg_.squish.size != cfg_.policy.squish_size) {
        throw std::invalid_argument("CamoEngine: squish.size != policy.squish_size");
    }
    if (cfg_.optimizer == CamoConfig::Optimizer::kAdam) {
        adam_.emplace(policy_.params(), nn::Adam::Options{.lr = cfg_.lr,
                                                          .clip_norm = cfg_.clip_norm,
                                                          .weight_decay = cfg_.weight_decay});
    } else {
        sgd_.emplace(policy_.params(), nn::Sgd::Options{.lr = cfg_.lr,
                                                        .momentum = cfg_.momentum,
                                                        .clip_norm = cfg_.clip_norm,
                                                        .weight_decay = cfg_.weight_decay});
    }
}

CamoEngine::~CamoEngine() = default;

CamoEngine::TrainRuntime& CamoEngine::train_runtime() {
    int workers = cfg_.train_workers;
    if (workers <= 0) workers = runtime::ThreadPool::default_threads();
    if (!train_rt_ || train_rt_->workers != workers) {
        auto rt = std::make_unique<TrainRuntime>();
        rt->workers = workers;
        if (workers > 1) {
            rt->pool = std::make_unique<runtime::ThreadPool>(workers);
            rt->replicas.reserve(static_cast<std::size_t>(workers));
            for (int i = 0; i < workers; ++i) {
                rt->replicas.push_back(std::make_unique<PolicyNetwork>(cfg_.policy));
            }
        }
        train_rt_ = std::move(rt);
    }
    return *train_rt_;
}

void CamoEngine::optimizer_step() {
    if (adam_) {
        adam_->step();
    } else {
        sgd_->step();
    }
    // The optimizers mutate weights through Parameter pointers captured at
    // construction; the packed inference plan cannot see that, so stale it
    // explicitly.
    policy_.invalidate_plan();
}

std::vector<nn::Tensor> CamoEngine::encode_state(const geo::SegmentedLayout& layout,
                                                 std::span<const int> offsets) const {
    const auto mask_polys = layout.reconstruct_mask(offsets);
    std::vector<geo::Polygon> all_mask = mask_polys;
    all_mask.insert(all_mask.end(), layout.srafs().begin(), layout.srafs().end());

    std::vector<nn::Tensor> feats;
    feats.reserve(static_cast<std::size_t>(layout.num_segments()));
    for (const geo::Segment& s : layout.segments()) {
        feats.push_back(encode_squish_window(all_mask, layout.targets(), s.control(), cfg_.squish));
    }
    return feats;
}

opc::EngineResult CamoEngine::optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                                       const opc::OpcOptions& opt) {
    return infer(layout, sim, opt);
}

opc::EngineResult CamoEngine::infer(const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                                    const opc::OpcOptions& opt, Rng* rng) const {
    Timer timer;
    opc::EngineResult res;
    const opc::WindowObjective objective(opt, sim.config(), cfg_.reward);
    const Graph graph = build_segment_graph(layout, cfg_.graph_threshold_nm);

    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()),
                             opt.initial_bias_nm);
    // First evaluation primes the per-clip incremental cache; iterations then
    // re-evaluate only what the actions touched (nominal mode: the dirty-set
    // path; window modes: one cached-spectrum sweep serving every corner).
    litho::SimMetrics m = objective.prime(sim, layout, offsets, &res.final_window);
    res.epe_history.push_back(m.sum_abs_epe);
    res.pvb_history.push_back(m.pvband_nm2);

    const int features = static_cast<int>(layout.targets().size());
    const int points = static_cast<int>(m.epe.size());

    // A segment-free layout has no actions to take: the primed metrics are
    // already the fixed point, and the policy cannot run on an empty node set.
    const int steps = layout.num_segments() > 0 ? opt.max_iterations : 0;
    for (int it = 0; it < steps; ++it) {
        if (opc::should_exit_early(m.sum_abs_epe, features, points, opt)) break;

        const auto feats = encode_state(layout, offsets);
        const nn::Tensor logits = policy_.infer(feats, graph);
        const auto actions = pick_actions(logits, m.epe_segment, cfg_.modulator, rng);

        const auto dirty = apply_actions(offsets, actions, opt.max_total_offset_nm);
        m = objective.evaluate(sim, layout, offsets, dirty, &res.final_window);
        res.epe_history.push_back(m.sum_abs_epe);
        res.pvb_history.push_back(m.pvband_nm2);
        ++res.iterations;
    }

    res.final_offsets = std::move(offsets);
    res.final_metrics = std::move(m);
    res.runtime_s = timer.seconds();
    return res;
}

std::vector<opc::EngineResult> CamoEngine::infer_batch(
    std::span<const geo::SegmentedLayout> layouts, std::span<litho::LithoSim> sims,
    const opc::OpcOptions& opt, std::span<const std::uint64_t> seeds) const {
    if (sims.size() != layouts.size()) {
        throw std::invalid_argument("CamoEngine::infer_batch: one simulator per clip required");
    }
    if (!seeds.empty() && seeds.size() != layouts.size()) {
        throw std::invalid_argument("CamoEngine::infer_batch: seeds must be empty or per-clip");
    }

    Timer timer;
    const std::size_t count = layouts.size();
    std::vector<opc::EngineResult> results(count);

    // Per-clip rollout state, advanced one action wave at a time.
    struct ClipState {
        opc::WindowObjective objective;
        Graph graph;
        std::vector<int> offsets;
        litho::SimMetrics m;
        std::optional<Rng> rng;
        int features = 0;
        int points = 0;
        bool active = false;
        std::vector<nn::Tensor> feats;  ///< current wave's squish features
    };
    std::vector<ClipState> states;
    states.reserve(count);
    for (std::size_t c = 0; c < count; ++c) {
        const geo::SegmentedLayout& layout = layouts[c];
        litho::LithoSim& sim = sims[c];
        opc::EngineResult& res = results[c];
        states.push_back(ClipState{
            .objective = opc::WindowObjective(opt, sim.config(), cfg_.reward),
            .graph = build_segment_graph(layout, cfg_.graph_threshold_nm),
            .offsets = std::vector<int>(static_cast<std::size_t>(layout.num_segments()),
                                        opt.initial_bias_nm),
        });
        ClipState& st = states.back();
        if (!seeds.empty()) st.rng.emplace(seeds[c]);
        st.m = st.objective.prime(sim, layout, st.offsets, &res.final_window);
        res.epe_history.push_back(st.m.sum_abs_epe);
        res.pvb_history.push_back(st.m.pvband_nm2);
        st.features = static_cast<int>(layout.targets().size());
        st.points = static_cast<int>(st.m.epe.size());
        st.active = layout.num_segments() > 0;
    }

    for (int it = 0; it < opt.max_iterations; ++it) {
        // Collect the wave: every still-running clip encodes its state and
        // queues one batched-policy request (clip order, deterministic).
        std::vector<PolicyNetwork::ClipRequest> requests;
        std::vector<std::size_t> wave;  // request -> clip index
        for (std::size_t c = 0; c < count; ++c) {
            ClipState& st = states[c];
            if (!st.active) continue;
            if (opc::should_exit_early(st.m.sum_abs_epe, st.features, st.points, opt)) {
                st.active = false;
                continue;
            }
            st.feats = encode_state(layouts[c], st.offsets);
            requests.push_back({&st.feats, &st.graph});
            wave.push_back(c);
        }
        if (requests.empty()) break;

        const std::vector<nn::Tensor> logits = policy_.infer_batch(requests);

        for (std::size_t r = 0; r < wave.size(); ++r) {
            const std::size_t c = wave[r];
            ClipState& st = states[c];
            opc::EngineResult& res = results[c];
            const auto actions =
                pick_actions(logits[r], st.m.epe_segment, cfg_.modulator,
                             st.rng ? &*st.rng : nullptr);
            const auto dirty = apply_actions(st.offsets, actions, opt.max_total_offset_nm);
            st.m = st.objective.evaluate(sims[c], layouts[c], st.offsets, dirty,
                                         &res.final_window);
            res.epe_history.push_back(st.m.sum_abs_epe);
            res.pvb_history.push_back(st.m.pvband_nm2);
            ++res.iterations;
            st.feats.clear();
        }
    }

    const double per_clip_s = count > 0 ? timer.seconds() / static_cast<double>(count) : 0.0;
    for (std::size_t c = 0; c < count; ++c) {
        results[c].final_offsets = std::move(states[c].offsets);
        results[c].final_metrics = std::move(states[c].m);
        results[c].runtime_s = per_clip_s;
    }
    return results;
}

Phase1Dataset CamoEngine::collect_teacher_data(const std::vector<geo::SegmentedLayout>& clips,
                                               litho::LithoSim& sim, const opc::OpcOptions& opt,
                                               rl::TrajStoreWriter* store) {
    const obs::Span span("train.collect", collect_hist());
    Phase1Dataset data;
    data.graphs.reserve(clips.size());
    for (const geo::SegmentedLayout& c : clips) {
        data.graphs.push_back(build_segment_graph(c, cfg_.graph_threshold_nm));
    }

    std::vector<int> biases = cfg_.teacher_biases;
    if (biases.empty()) biases.push_back(opt.initial_bias_nm);

    // Canonical job order: clip-major, bias-minor. The gathered dataset is a
    // pure function of this order, never of which worker ran which job.
    // Segment-free clips produce no (state, action) pairs — skipping them
    // here keeps degenerate training inputs finite instead of feeding the
    // policy an empty node set.
    struct Job {
        int clip = 0;
        int bias = 0;
    };
    std::vector<Job> jobs;
    for (std::size_t c = 0; c < clips.size(); ++c) {
        if (clips[c].num_segments() == 0) continue;
        for (int bias : biases) jobs.push_back({static_cast<int>(c), bias});
    }

    const opc::RuleEngine teacher({.gain = 0.6, .max_step_nm = 2, .early_exit = false});
    std::vector<std::vector<TeacherSample>> per_job(jobs.size());
    data.trajectories.resize(jobs.size());

    // record_trajectory primes the simulator's incremental cache with a full
    // rebuild, so a job's result depends only on (clip, bias) — identical
    // whether jobs share one simulator serially or run on per-worker copies.
    const auto run_job = [&](litho::LithoSim& job_sim, int j) {
        const Job& job = jobs[static_cast<std::size_t>(j)];
        opc::OpcOptions teacher_opt = opt;
        teacher_opt.initial_bias_nm = job.bias;
        rl::Trajectory traj = teacher.record_trajectory(clips[static_cast<std::size_t>(job.clip)],
                                                        job_sim, teacher_opt, cfg_.teacher_steps);
        traj.clip_index = job.clip;
        traj.initial_bias_nm = job.bias;
        auto& samples = per_job[static_cast<std::size_t>(j)];
        samples.reserve(traj.steps.size());
        for (const rl::StepRecord& step : traj.steps) {
            TeacherSample s;
            s.clip = job.clip;
            s.features = encode_state(clips[static_cast<std::size_t>(job.clip)],
                                      step.offsets_before);
            s.actions = step.actions;
            samples.push_back(std::move(s));
        }
        data.trajectories[static_cast<std::size_t>(j)] = std::move(traj);
    };

    TrainRuntime& rt = train_runtime();
    if (rt.pool && jobs.size() > 1) {
        // Per-worker simulator copies share the immutable kernel set.
        std::vector<litho::LithoSim> worker_sims(static_cast<std::size_t>(rt.workers), sim);
        rt.pool->for_each_index(static_cast<int>(jobs.size()), [&](int j) {
            const int w = rt.pool->worker_index();
            run_job(worker_sims[static_cast<std::size_t>(w < 0 ? 0 : w)], j);
        });
    } else {
        for (std::size_t j = 0; j < jobs.size(); ++j) run_job(sim, static_cast<int>(j));
    }

    // Store-sink mode: append the gathered trajectories (with their per-step
    // squish features) in job order — per-worker results were already merged
    // into canonical clip-major / bias-minor order above, so the published
    // file bytes never depend on cfg_.train_workers. One flush publishes the
    // whole collection atomically.
    if (store != nullptr) {
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            std::vector<std::span<const nn::Tensor>> step_feats;
            step_feats.reserve(per_job[j].size());
            for (const TeacherSample& s : per_job[j]) step_feats.push_back(s.features);
            store->append(data.trajectories[j], step_feats);
        }
        store->flush();
    }

    for (std::vector<TeacherSample>& job_samples : per_job) {
        for (TeacherSample& s : job_samples) data.samples.push_back(std::move(s));
    }

    std::array<long long, rl::kNumActions> action_count{};
    long long action_total = 0;
    for (const TeacherSample& s : data.samples) {
        for (int a : s.actions) {
            ++action_count[static_cast<std::size_t>(a)];
            ++action_total;
        }
    }
    data.action_weight = action_weights_from_counts(action_count, action_total);
    obs::counter_add(teacher_samples_counter(), static_cast<long long>(data.samples.size()));
    return data;
}

// Shared phase-1 minibatch loop. `load(idx, out)` fills one sample in place
// (fill-in-place so a replay loader can reuse the scratch slot's owned
// buffers); everything downstream — batch schedule, per-sample gradients,
// fixed-order reduction, optimizer steps — is identical for the in-memory
// and store-replay paths, which is what makes replay training bitwise
// reproducible against collect-and-train.
template <typename LoadSample>
double CamoEngine::phase1_epoch_over(std::size_t sample_count, const std::vector<Graph>& graphs,
                                     const std::array<float, rl::kNumActions>& action_weight,
                                     const LoadSample& load) {
    const obs::Span span("train.phase1.epoch", phase1_epoch_hist());
    if (sample_count == 0) return 0.0;  // degenerate dataset: no optimizer step
    const std::size_t batch = cfg_.phase1_batch <= 0 ? sample_count
                                                     : static_cast<std::size_t>(cfg_.phase1_batch);

    TrainRuntime& rt = train_runtime();
    double total_nll = 0.0;
    long long total_nodes = 0;
    std::vector<nn::GradBuffer> buffers;
    std::vector<double> sample_nll(batch, 0.0);
    std::vector<long long> sample_nodes(batch, 0);
    std::vector<Phase1Sample> scratch(batch);  ///< one slot per batch lane

    for (std::size_t start = 0; start < sample_count; start += batch) {
        const std::size_t count = std::min(batch, sample_count - start);
        buffers.assign(count, nn::GradBuffer{});

        // Per-sample gradient of the class-weighted mean NLL, computed with
        // `net`'s (master-synced) weights and captured into the sample's own
        // buffer — the unit the fixed-order reduction folds back in.
        const auto run_sample = [&](PolicyNetwork& net, std::size_t k) {
            Phase1Sample& s = scratch[k];
            load(start + k, s);
            const nn::Tensor logits =
                net.forward(*s.features, graphs[static_cast<std::size_t>(s.clip)]);
            const int n = logits.dim(0);
            nn::Tensor dlogits({n, rl::kNumActions});
            double nll = 0.0;
            for (int i = 0; i < n; ++i) {
                std::array<float, rl::kNumActions> row{};
                for (int a = 0; a < rl::kNumActions; ++a) {
                    row[static_cast<std::size_t>(a)] = logits.at(i, a);
                }
                const std::span<const float> row_span(row.data(), row.size());
                const int act = s.actions[static_cast<std::size_t>(i)];
                nll -= nn::log_prob(row_span, act);
                // coef = -w/n: gradient DEscent on class-weighted mean NLL.
                const float coef =
                    -action_weight[static_cast<std::size_t>(act)] / static_cast<float>(n);
                const auto g = nn::policy_logit_grad(row_span, act, coef);
                for (int a = 0; a < rl::kNumActions; ++a) {
                    dlogits.at(i, a) = g[static_cast<std::size_t>(a)];
                }
            }
            net.backward(dlogits);
            buffers[k].capture(net.params());
            sample_nll[k] = nll;
            sample_nodes[k] = n;
        };

        if (rt.pool && count > 1) {
            rt.sync_replicas(policy_);
            rt.pool->for_each_index(static_cast<int>(count), [&](int k) {
                run_sample(rt.worker_replica(), static_cast<std::size_t>(k));
            });
        } else {
            for (std::size_t k = 0; k < count; ++k) run_sample(policy_, k);
        }

        {
            const obs::Span reduce_span("train.reduce", reduce_hist());
            obs::counter_add(reduction_counter());
            nn::reduce_in_order(buffers, policy_.params());
        }
        for (std::size_t k = 0; k < count; ++k) {
            total_nll += sample_nll[k];
            total_nodes += sample_nodes[k];
        }
        optimizer_step();
    }
    return total_nll / static_cast<double>(std::max(1LL, total_nodes));
}

double CamoEngine::run_phase1_epoch(const Phase1Dataset& data) {
    const std::vector<TeacherSample>& samples = data.samples;
    return phase1_epoch_over(samples.size(), data.graphs, data.action_weight,
                             [&](std::size_t idx, Phase1Sample& out) {
                                 const TeacherSample& s = samples[idx];
                                 out.clip = s.clip;
                                 out.features = &s.features;
                                 out.actions = std::span<const int>(s.actions);
                             });
}

double CamoEngine::run_phase1_epoch(const Phase1Replay& data) {
    if (data.store == nullptr) return 0.0;
    const rl::TrajStoreReader& store = *data.store;
    const auto dims = store.feature_dims();
    const std::size_t numel = store.feature_numel();
    // Sample index == store step index: trajectory step ranges tile the step
    // table contiguously in append order (validated on open), and append
    // order is the canonical job order — so replay visits samples in exactly
    // the sequence collect_teacher_data gathered them.
    return phase1_epoch_over(
        store.step_count(), data.graphs, data.action_weight,
        [&](std::size_t idx, Phase1Sample& out) {
            const rl::TrajStoreReader::StepView sv = store.step(idx);
            const rl::TrajStoreReader::StateView st = store.state(sv.state_id);
            out.clip = st.clip_index;
            const std::size_t n = st.offsets.size();
            out.owned_features.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
                nn::Tensor& t = out.owned_features[i];
                if (t.numel() != numel) {
                    t = nn::Tensor({static_cast<int>(dims[0]), static_cast<int>(dims[1]),
                                    static_cast<int>(dims[2])});
                }
                std::copy_n(st.features.data() + i * numel, numel, t.data().data());
            }
            out.features = &out.owned_features;
            out.owned_actions.assign(sv.actions.begin(), sv.actions.end());
            out.actions = std::span<const int>(out.owned_actions);
        });
}

Phase1Replay CamoEngine::make_phase1_replay(const rl::TrajStoreReader& store,
                                            const std::vector<geo::SegmentedLayout>& clips) const {
    if (store.feature_numel() == 0) {
        throw std::invalid_argument(
            "make_phase1_replay: store has no squish features (featureless collection) — "
            "phase-1 replay needs per-step state encodings");
    }
    const auto dims = store.feature_dims();
    const auto want = static_cast<std::uint32_t>(cfg_.squish.size);
    if (dims[1] != want || dims[2] != want) {
        throw std::invalid_argument("make_phase1_replay: store feature shape " +
                                    std::to_string(dims[1]) + "x" + std::to_string(dims[2]) +
                                    " does not match configured squish size " +
                                    std::to_string(cfg_.squish.size));
    }
    // Every stored state must land on a clip we were handed, with a matching
    // segment count — catches a store replayed against the wrong clip set
    // even when the caller forgot to check dataset_tag.
    for (std::uint64_t id = 0; id < store.state_count(); ++id) {
        const rl::TrajStoreReader::StateView st = store.state(id);
        if (st.clip_index < 0 || static_cast<std::size_t>(st.clip_index) >= clips.size()) {
            throw std::invalid_argument("make_phase1_replay: state " + std::to_string(id) +
                                        " references clip " + std::to_string(st.clip_index) +
                                        " but only " + std::to_string(clips.size()) +
                                        " clips were provided");
        }
        const auto segs = static_cast<std::size_t>(
            clips[static_cast<std::size_t>(st.clip_index)].num_segments());
        if (st.offsets.size() != segs) {
            throw std::invalid_argument(
                "make_phase1_replay: state " + std::to_string(id) + " has " +
                std::to_string(st.offsets.size()) + " segments but clip " +
                std::to_string(st.clip_index) + " has " + std::to_string(segs));
        }
    }

    Phase1Replay replay;
    replay.store = &store;
    replay.graphs.reserve(clips.size());
    for (const geo::SegmentedLayout& c : clips) {
        replay.graphs.push_back(build_segment_graph(c, cfg_.graph_threshold_nm));
    }
    std::array<long long, rl::kNumActions> action_count{};
    long long action_total = 0;
    for (std::uint64_t i = 0; i < store.step_count(); ++i) {
        for (std::uint8_t a : store.step(i).actions) {
            ++action_count[a];
            ++action_total;
        }
    }
    replay.action_weight = action_weights_from_counts(action_count, action_total);
    return replay;
}

double CamoEngine::run_phase2_episode(const std::vector<geo::SegmentedLayout>& clips,
                                      const std::vector<Graph>& graphs,
                                      std::vector<litho::LithoSim>& clip_sims,
                                      const opc::OpcOptions& opt, int episode) {
    const obs::Span span("train.phase2.episode", phase2_episode_hist());
    // Under a window objective the per-step reward is window_step_reward on
    // the before/after sweeps — worst-corner (or weighted-corner) |EPE| and
    // the exact PV band — and the modulation/exploration signal is the
    // objective corner's per-segment EPE, so phase-2 credit assignment
    // optimizes the same quantity the evaluation reports. Every sweep rides
    // the cached support spectrum (evaluate_window_incremental): one sparse
    // delta-DFT per step serves every corner.
    if (clip_sims.size() != clips.size()) {
        throw std::invalid_argument("run_phase2_episode: clip_sims/clips size mismatch");
    }
    if (clips.empty()) return 0.0;  // degenerate episode: nothing to roll out
    const opc::WindowObjective objective(opt, clip_sims.front().config(), cfg_.reward);

    // Lockstep data-parallel rollout: at time step t every active clip acts
    // with the same weight snapshot, each against its own simulator (whose
    // incremental cache then carries that clip's state across steps) and its
    // own splitmix RNG stream keyed by (seed, episode, clip) — never by
    // scheduling order. The clips' Eq. (7) gradients are reduced in clip
    // order and one optimizer step closes the wave.
    struct ClipState {
        bool active = false;
        std::vector<int> offsets;
        litho::SimMetrics m;
        std::optional<litho::WindowMetrics> window_before;
        std::optional<litho::WindowMetrics> window_after;
        int features = 0;
        int points = 0;
        double reward = 0.0;
        std::optional<Rng> rng;
    };

    std::vector<ClipState> st(clips.size());
    const std::uint64_t episode_seed = derive_seed(cfg_.seed ^ 0x5A17ULL,
                                                   static_cast<std::uint64_t>(episode));
    for (std::size_t c = 0; c < clips.size(); ++c) {
        const geo::SegmentedLayout& layout = clips[c];
        if (layout.num_segments() == 0) continue;  // degenerate clip: no rollout
        ClipState& s = st[c];
        s.offsets.assign(static_cast<std::size_t>(layout.num_segments()), opt.initial_bias_nm);
        s.m = objective.prime(clip_sims[c], layout, s.offsets, &s.window_before);
        s.features = static_cast<int>(layout.targets().size());
        s.points = static_cast<int>(s.m.epe.size());
        s.rng.emplace(derive_seed(episode_seed, static_cast<std::uint64_t>(c)));
        s.active = true;
    }

    TrainRuntime& rt = train_runtime();
    double reward_sum = 0.0;
    int reward_count = 0;
    std::vector<int> wave;
    std::vector<nn::GradBuffer> buffers;

    for (int t = 0; t < opt.max_iterations; ++t) {
        const obs::Span wave_span("train.phase2.wave", phase2_wave_hist());
        wave.clear();
        for (std::size_t c = 0; c < clips.size(); ++c) {
            ClipState& s = st[c];
            if (!s.active) continue;
            if (opc::should_exit_early(s.m.sum_abs_epe, s.features, s.points, opt)) {
                s.active = false;
                continue;
            }
            wave.push_back(static_cast<int>(c));
        }
        if (wave.empty()) break;
        buffers.assign(wave.size(), nn::GradBuffer{});

        const auto run_clip = [&](PolicyNetwork& net, std::size_t k) {
            const std::size_t c = static_cast<std::size_t>(wave[k]);
            const geo::SegmentedLayout& layout = clips[c];
            ClipState& s = st[c];

            const auto feats = encode_state(layout, s.offsets);
            const nn::Tensor logits = net.forward(feats, graphs[c]);
            const auto actions = pick_actions(logits, s.m.epe_segment, cfg_.modulator, &*s.rng);

            const auto dirty = apply_actions(s.offsets, actions, opt.max_total_offset_nm);
            const litho::SimMetrics m2 =
                objective.evaluate(clip_sims[c], layout, s.offsets, dirty, &s.window_after);
            const double r =
                objective.active()
                    ? rl::window_step_reward(*s.window_before, *s.window_after,
                                             objective.reward())
                    : rl::step_reward(s.m.sum_abs_epe, m2.sum_abs_epe, s.m.pvband_nm2,
                                      m2.pvband_nm2, cfg_.reward);
            s.reward = r;

            // Eq. (7): gradient ascent on r * log pi(a|s), computed on the
            // unmodulated policy output.
            const int n = logits.dim(0);
            nn::Tensor dlogits({n, rl::kNumActions});
            for (int i = 0; i < n; ++i) {
                std::array<float, rl::kNumActions> row{};
                for (int a = 0; a < rl::kNumActions; ++a) {
                    row[static_cast<std::size_t>(a)] = logits.at(i, a);
                }
                const auto g = nn::policy_logit_grad(
                    std::span<const float>(row.data(), row.size()),
                    actions[static_cast<std::size_t>(i)],
                    cfg_.phase2_lr_scale * static_cast<float>(-r) / static_cast<float>(n));
                for (int a = 0; a < rl::kNumActions; ++a) {
                    dlogits.at(i, a) = g[static_cast<std::size_t>(a)];
                }
            }
            net.backward(dlogits);
            buffers[k].capture(net.params());
            s.m = m2;
            s.window_before = std::move(s.window_after);
        };

        if (rt.pool && wave.size() > 1) {
            rt.sync_replicas(policy_);
            rt.pool->for_each_index(static_cast<int>(wave.size()), [&](int k) {
                run_clip(rt.worker_replica(), static_cast<std::size_t>(k));
            });
        } else {
            for (std::size_t k = 0; k < wave.size(); ++k) run_clip(policy_, k);
        }

        {
            const obs::Span reduce_span("train.reduce", reduce_hist());
            obs::counter_add(reduction_counter());
            nn::reduce_in_order(buffers, policy_.params());
        }
        for (int c : wave) {
            reward_sum += st[static_cast<std::size_t>(c)].reward;
            ++reward_count;
        }
        optimizer_step();
    }
    return reward_sum / std::max(1, reward_count);
}

TrainStats CamoEngine::train(const std::vector<geo::SegmentedLayout>& clips,
                             litho::LithoSim& sim, const opc::OpcOptions& opt) {
    TrainStats stats;

    // ---- Phase 1: imitate rule-engine trajectories. ----------------------
    const Phase1Dataset data = collect_teacher_data(clips, sim, opt);

    for (int epoch = 0; epoch < cfg_.phase1_epochs; ++epoch) {
        stats.phase1_loss.push_back(run_phase1_epoch(data));
        if (epoch % 10 == 0) {
            log_info(cfg_.name + " phase1 epoch " + std::to_string(epoch) + " nll=" +
                     std::to_string(stats.phase1_loss.back()));
        }
    }

    // ---- Phase 2: modulated REINFORCE (lockstep over clips). -------------
    if (cfg_.phase2_episodes > 0) {
        // One simulator per clip, shared across episodes (copies share the
        // immutable kernel set); every episode re-primes them with a full
        // rebuild, so the carried caches never leak into results.
        std::vector<litho::LithoSim> clip_sims(clips.size(), sim);
        for (int ep = 0; ep < cfg_.phase2_episodes; ++ep) {
            stats.phase2_reward.push_back(
                run_phase2_episode(clips, data.graphs, clip_sims, opt, ep));
            log_info(cfg_.name + " phase2 episode " + std::to_string(ep) + " mean reward=" +
                     std::to_string(stats.phase2_reward.back()));
        }
    }
    return stats;
}

}  // namespace camo::core
