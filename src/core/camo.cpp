#include "core/camo.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "nn/softmax.hpp"
#include "opc/objective.hpp"

namespace camo::core {
namespace {

// Applies the chosen actions and returns the indices whose offset actually
// changed (no-move actions and clamped moves stay clean) — the dirty set for
// incremental lithography evaluation.
std::vector<int> apply_actions(std::vector<int>& offsets, const std::vector<int>& actions,
                               int bound) {
    std::vector<int> dirty;
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        const int next = std::clamp(offsets[i] + rl::action_to_move(actions[i]), -bound, bound);
        if (next != offsets[i]) {
            offsets[i] = next;
            dirty.push_back(static_cast<int>(i));
        }
    }
    return dirty;
}

std::array<double, rl::kNumActions> node_probs(const nn::Tensor& logits, int node) {
    std::array<float, rl::kNumActions> row{};
    for (int a = 0; a < rl::kNumActions; ++a) row[static_cast<std::size_t>(a)] = logits.at(node, a);
    const auto p = nn::softmax(std::span<const float>(row.data(), row.size()));
    std::array<double, rl::kNumActions> out{};
    for (int a = 0; a < rl::kNumActions; ++a) out[static_cast<std::size_t>(a)] = p[static_cast<std::size_t>(a)];
    return out;
}

std::vector<int> pick_actions(const nn::Tensor& logits, const std::vector<double>& epe_segment,
                              const ModulatorConfig& mod, Rng* rng) {
    const int n = logits.dim(0);
    std::vector<int> actions(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
        auto probs = node_probs(logits, i);
        probs = modulate_probs(probs, epe_segment[static_cast<std::size_t>(i)], mod);
        if (rng != nullptr) {
            actions[static_cast<std::size_t>(i)] = rng->sample_weighted(probs);
        } else {
            actions[static_cast<std::size_t>(i)] = static_cast<int>(
                std::max_element(probs.begin(), probs.end()) - probs.begin());
        }
    }
    return actions;
}

}  // namespace

CamoConfig make_rlopc_config(const CamoConfig& base) {
    CamoConfig cfg = base;
    cfg.policy.use_gnn = false;
    cfg.policy.use_rnn = false;
    cfg.modulator.enabled = false;
    cfg.name = "rl-opc";
    return cfg;
}

CamoEngine::CamoEngine(CamoConfig cfg)
    : cfg_(std::move(cfg)), policy_(cfg_.policy), sample_rng_(cfg_.seed ^ 0x5A17ULL) {
    if (cfg_.squish.size != cfg_.policy.squish_size) {
        throw std::invalid_argument("CamoEngine: squish.size != policy.squish_size");
    }
    if (cfg_.optimizer == CamoConfig::Optimizer::kAdam) {
        adam_.emplace(policy_.params(), nn::Adam::Options{.lr = cfg_.lr,
                                                          .clip_norm = cfg_.clip_norm,
                                                          .weight_decay = cfg_.weight_decay});
    } else {
        sgd_.emplace(policy_.params(), nn::Sgd::Options{.lr = cfg_.lr,
                                                        .momentum = cfg_.momentum,
                                                        .clip_norm = cfg_.clip_norm,
                                                        .weight_decay = cfg_.weight_decay});
    }
}

void CamoEngine::optimizer_step() {
    if (adam_) {
        adam_->step();
    } else {
        sgd_->step();
    }
}

std::vector<nn::Tensor> CamoEngine::encode_state(const geo::SegmentedLayout& layout,
                                                 std::span<const int> offsets) const {
    const auto mask_polys = layout.reconstruct_mask(offsets);
    std::vector<geo::Polygon> all_mask = mask_polys;
    all_mask.insert(all_mask.end(), layout.srafs().begin(), layout.srafs().end());

    std::vector<nn::Tensor> feats;
    feats.reserve(static_cast<std::size_t>(layout.num_segments()));
    for (const geo::Segment& s : layout.segments()) {
        feats.push_back(encode_squish_window(all_mask, layout.targets(), s.control(), cfg_.squish));
    }
    return feats;
}

std::vector<int> CamoEngine::select_actions(const nn::Tensor& logits,
                                            const std::vector<double>& epe_segment,
                                            bool stochastic) {
    return pick_actions(logits, epe_segment, cfg_.modulator,
                        stochastic ? &sample_rng_ : nullptr);
}

opc::EngineResult CamoEngine::optimize(const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                                       const opc::OpcOptions& opt) {
    return infer(layout, sim, opt);
}

opc::EngineResult CamoEngine::infer(const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                                    const opc::OpcOptions& opt, Rng* rng) const {
    Timer timer;
    opc::EngineResult res;
    const opc::WindowObjective objective(opt, sim.config(), cfg_.reward);
    const Graph graph = build_segment_graph(layout, cfg_.graph_threshold_nm);

    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()),
                             opt.initial_bias_nm);
    // First evaluation primes the per-clip incremental cache; iterations then
    // re-evaluate only what the actions touched (nominal mode: the dirty-set
    // path; window modes: one cached-spectrum sweep serving every corner).
    litho::SimMetrics m = objective.prime(sim, layout, offsets, &res.final_window);
    res.epe_history.push_back(m.sum_abs_epe);
    res.pvb_history.push_back(m.pvband_nm2);

    const int features = static_cast<int>(layout.targets().size());
    const int points = static_cast<int>(m.epe.size());

    for (int it = 0; it < opt.max_iterations; ++it) {
        if (opc::should_exit_early(m.sum_abs_epe, features, points, opt)) break;

        const auto feats = encode_state(layout, offsets);
        const nn::Tensor logits = policy_.infer(feats, graph);
        const auto actions = pick_actions(logits, m.epe_segment, cfg_.modulator, rng);

        const auto dirty = apply_actions(offsets, actions, opt.max_total_offset_nm);
        m = objective.evaluate(sim, layout, offsets, dirty, &res.final_window);
        res.epe_history.push_back(m.sum_abs_epe);
        res.pvb_history.push_back(m.pvband_nm2);
        ++res.iterations;
    }

    res.final_offsets = std::move(offsets);
    res.final_metrics = std::move(m);
    res.runtime_s = timer.seconds();
    return res;
}

TrainStats CamoEngine::train(const std::vector<geo::SegmentedLayout>& clips,
                             litho::LithoSim& sim, const opc::OpcOptions& opt) {
    TrainStats stats;

    // ---- Phase 1: imitate rule-engine trajectories. ----------------------
    struct Sample {
        int clip = 0;
        std::vector<nn::Tensor> features;
        std::vector<int> actions;
    };
    std::vector<Sample> samples;
    std::vector<Graph> graphs;
    graphs.reserve(clips.size());

    std::vector<int> biases = cfg_.teacher_biases;
    if (biases.empty()) biases.push_back(opt.initial_bias_nm);

    opc::RuleEngine teacher({.gain = 0.6, .max_step_nm = 2, .early_exit = false});
    for (std::size_t c = 0; c < clips.size(); ++c) {
        graphs.push_back(build_segment_graph(clips[c], cfg_.graph_threshold_nm));
        for (int bias : biases) {
            opc::OpcOptions teacher_opt = opt;
            teacher_opt.initial_bias_nm = bias;
            const rl::Trajectory traj =
                teacher.record_trajectory(clips[c], sim, teacher_opt, cfg_.teacher_steps);
            for (const rl::StepRecord& step : traj.steps) {
                Sample s;
                s.clip = static_cast<int>(c);
                s.features = encode_state(clips[c], step.offsets_before);
                s.actions = step.actions;
                samples.push_back(std::move(s));
            }
        }
    }

    // Teacher data is heavily skewed toward the no-move action once its
    // trajectory converges; inverse-frequency weights keep the rare +/-1
    // and +/-2 corrections from being drowned out.
    std::array<long long, rl::kNumActions> action_count{};
    long long action_total = 0;
    for (const Sample& s : samples) {
        for (int a : s.actions) {
            ++action_count[static_cast<std::size_t>(a)];
            ++action_total;
        }
    }
    std::array<float, rl::kNumActions> action_weight{};
    for (int a = 0; a < rl::kNumActions; ++a) {
        const long long cnt = std::max(1LL, action_count[static_cast<std::size_t>(a)]);
        const double w = static_cast<double>(action_total) /
                         (static_cast<double>(rl::kNumActions) * static_cast<double>(cnt));
        action_weight[static_cast<std::size_t>(a)] = static_cast<float>(std::min(w, 20.0));
    }

    for (int epoch = 0; epoch < cfg_.phase1_epochs; ++epoch) {
        double total_nll = 0.0;
        long long total_nodes = 0;
        for (const Sample& s : samples) {
            const nn::Tensor logits = policy_.forward(s.features, graphs[static_cast<std::size_t>(s.clip)]);
            const int n = logits.dim(0);
            nn::Tensor dlogits({n, rl::kNumActions});
            for (int i = 0; i < n; ++i) {
                std::array<float, rl::kNumActions> row{};
                for (int a = 0; a < rl::kNumActions; ++a) row[static_cast<std::size_t>(a)] = logits.at(i, a);
                const std::span<const float> row_span(row.data(), row.size());
                const int act = s.actions[static_cast<std::size_t>(i)];
                total_nll -= nn::log_prob(row_span, act);
                // coef = -w/n: gradient DEscent on class-weighted mean NLL.
                const float coef = -action_weight[static_cast<std::size_t>(act)] /
                                   static_cast<float>(n);
                const auto g = nn::policy_logit_grad(row_span, act, coef);
                for (int a = 0; a < rl::kNumActions; ++a) dlogits.at(i, a) = g[static_cast<std::size_t>(a)];
            }
            total_nodes += n;
            policy_.backward(dlogits);
            optimizer_step();
        }
        stats.phase1_loss.push_back(total_nll / static_cast<double>(std::max(1LL, total_nodes)));
        if (epoch % 10 == 0) {
            log_info(cfg_.name + " phase1 epoch " + std::to_string(epoch) + " nll=" +
                     std::to_string(stats.phase1_loss.back()));
        }
    }

    // ---- Phase 2: modulated REINFORCE. -----------------------------------
    // Under a window objective the per-step reward is window_step_reward on
    // the before/after sweeps — worst-corner (or weighted-corner) |EPE| and
    // the exact PV band — and the modulation/exploration signal is the
    // objective corner's per-segment EPE, so phase-2 credit assignment
    // optimizes the same quantity the evaluation reports. Every sweep rides
    // the cached support spectrum (evaluate_window_incremental): one sparse
    // delta-DFT per step serves every corner.
    const opc::WindowObjective objective(opt, sim.config(), cfg_.reward);
    for (int ep = 0; ep < cfg_.phase2_episodes; ++ep) {
        double reward_sum = 0.0;
        int reward_count = 0;
        for (std::size_t c = 0; c < clips.size(); ++c) {
            const geo::SegmentedLayout& layout = clips[c];
            std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()),
                                     opt.initial_bias_nm);
            std::optional<litho::WindowMetrics> window_before;
            std::optional<litho::WindowMetrics> window_after;
            litho::SimMetrics m = objective.prime(sim, layout, offsets, &window_before);
            const int features_count = static_cast<int>(layout.targets().size());
            const int points = static_cast<int>(m.epe.size());

            for (int t = 0; t < opt.max_iterations; ++t) {
                if (opc::should_exit_early(m.sum_abs_epe, features_count, points, opt)) break;

                const auto feats = encode_state(layout, offsets);
                const nn::Tensor logits = policy_.forward(feats, graphs[c]);
                const auto actions = select_actions(logits, m.epe_segment, /*stochastic=*/true);

                const auto dirty = apply_actions(offsets, actions, opt.max_total_offset_nm);
                const litho::SimMetrics m2 =
                    objective.evaluate(sim, layout, offsets, dirty, &window_after);
                const double r =
                    objective.active()
                        ? rl::window_step_reward(*window_before, *window_after,
                                                 objective.reward())
                        : rl::step_reward(m.sum_abs_epe, m2.sum_abs_epe, m.pvband_nm2,
                                          m2.pvband_nm2, cfg_.reward);
                reward_sum += r;
                ++reward_count;

                // Eq. (7): gradient ascent on r * log pi(a|s), computed on
                // the unmodulated policy output.
                const int n = logits.dim(0);
                nn::Tensor dlogits({n, rl::kNumActions});
                for (int i = 0; i < n; ++i) {
                    std::array<float, rl::kNumActions> row{};
                    for (int a = 0; a < rl::kNumActions; ++a) row[static_cast<std::size_t>(a)] = logits.at(i, a);
                    const auto g = nn::policy_logit_grad(
                        std::span<const float>(row.data(), row.size()),
                        actions[static_cast<std::size_t>(i)],
                        cfg_.phase2_lr_scale * static_cast<float>(-r) / static_cast<float>(n));
                    for (int a = 0; a < rl::kNumActions; ++a) dlogits.at(i, a) = g[static_cast<std::size_t>(a)];
                }
                policy_.backward(dlogits);
                optimizer_step();
                m = m2;
                window_before = std::move(window_after);
            }
        }
        stats.phase2_reward.push_back(reward_sum / std::max(1, reward_count));
        log_info(cfg_.name + " phase2 episode " + std::to_string(ep) + " mean reward=" +
                 std::to_string(stats.phase2_reward.back()));
    }
    return stats;
}

}  // namespace camo::core
