#include "core/modulator.hpp"

#include <algorithm>
#include <cmath>

namespace camo::core {

std::array<double, rl::kNumActions> modulation_vector(double epe, const ModulatorConfig& cfg) {
    // Sample x1 > x2 > ... > x5 evenly covering [0, EPE].
    std::array<double, rl::kNumActions> x{};
    for (int i = 0; i < rl::kNumActions; ++i) {
        const double frac = static_cast<double>(rl::kNumActions - 1 - i) / (rl::kNumActions - 1);
        x[static_cast<std::size_t>(i)] = epe >= 0.0 ? epe * frac : epe * (1.0 - frac);
    }

    std::array<double, rl::kNumActions> p{};
    for (int i = 0; i < rl::kNumActions; ++i) {
        p[static_cast<std::size_t>(i)] =
            cfg.k * std::pow(x[static_cast<std::size_t>(i)], cfg.n) + cfg.b;
    }

    // Softmax.
    const double pmax = *std::max_element(p.begin(), p.end());
    double sum = 0.0;
    for (double& v : p) {
        v = std::exp(v - pmax);
        sum += v;
    }
    for (double& v : p) v /= sum;
    return p;
}

std::array<double, rl::kNumActions> modulate_probs(
    const std::array<double, rl::kNumActions>& probs, double epe, const ModulatorConfig& cfg) {
    if (!cfg.enabled) return probs;
    const auto mod = modulation_vector(epe, cfg);
    std::array<double, rl::kNumActions> out{};
    double sum = 0.0;
    for (int i = 0; i < rl::kNumActions; ++i) {
        out[static_cast<std::size_t>(i)] =
            probs[static_cast<std::size_t>(i)] * mod[static_cast<std::size_t>(i)];
        sum += out[static_cast<std::size_t>(i)];
    }
    if (sum <= 0.0) return probs;
    for (double& v : out) v /= sum;
    return out;
}

}  // namespace camo::core
