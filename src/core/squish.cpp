#include "core/squish.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace camo::core {
namespace {

struct SquishGrid {
    std::vector<double> dx;             // column widths (nm)
    std::vector<double> dy;             // row heights (nm)
    std::vector<std::vector<float>> m;  // occupancy [row][col]

    [[nodiscard]] int cols() const { return static_cast<int>(dx.size()); }
    [[nodiscard]] int rows() const { return static_cast<int>(dy.size()); }
};

// Collect sorted unique scanline coordinates within [lo, hi] from the given
// polygon sets' edges perpendicular to the axis.
std::vector<double> scanlines(std::span<const geo::Polygon* const> sources, double lo, double hi,
                              bool vertical) {
    std::vector<double> lines{lo, hi};
    for (const geo::Polygon* poly : sources) {
        const auto& v = poly->vertices();
        const int n = static_cast<int>(v.size());
        for (int i = 0; i < n; ++i) {
            const geo::Point& a = v[static_cast<std::size_t>(i)];
            const geo::Point& b = v[static_cast<std::size_t>((i + 1) % n)];
            double coord = 0.0;
            if (vertical && a.x == b.x) {
                coord = a.x;  // vertical edge -> x scanline
            } else if (!vertical && a.y == b.y) {
                coord = a.y;  // horizontal edge -> y scanline
            } else {
                continue;
            }
            if (coord > lo && coord < hi) lines.push_back(coord);
        }
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    return lines;
}

bool covered(std::span<const geo::Polygon> polys, geo::FPoint p) {
    for (const geo::Polygon& poly : polys) {
        if (poly.contains(p)) return true;
    }
    return false;
}

// Occupancy of the mask alone (targets empty), or — when `targets` is given
// — a signed movement map: where mask and target coverage differ, the cell
// holds sign * (1 + log1p(sliver width in nm)), with + for mask growth and
// - for recession. This is what "highlighting the edge movements" (paper
// Sec. 3.2) needs in a learnable form: both the direction and the magnitude
// of each segment's accumulated movement are first-class pixel values. A
// plain mask-occupancy second grid would differ from the first one by a few
// 1e-2-scale spacing entries only, which SGD amplifies far too slowly.
SquishGrid build_grid(std::span<const geo::Polygon> mask, std::span<const geo::Polygon> targets,
                      const std::vector<double>& xs, const std::vector<double>& ys) {
    SquishGrid g;
    for (std::size_t i = 0; i + 1 < xs.size(); ++i) g.dx.push_back(xs[i + 1] - xs[i]);
    for (std::size_t j = 0; j + 1 < ys.size(); ++j) g.dy.push_back(ys[j + 1] - ys[j]);

    g.m.assign(static_cast<std::size_t>(g.rows()),
               std::vector<float>(static_cast<std::size_t>(g.cols()), 0.0F));
    for (int r = 0; r < g.rows(); ++r) {
        const double cy = 0.5 * (ys[static_cast<std::size_t>(r)] + ys[static_cast<std::size_t>(r) + 1]);
        const double cell_h = g.dy[static_cast<std::size_t>(r)];
        for (int c = 0; c < g.cols(); ++c) {
            const double cx = 0.5 * (xs[static_cast<std::size_t>(c)] + xs[static_cast<std::size_t>(c) + 1]);
            const bool in_mask = covered(mask, {cx, cy});
            float v = in_mask ? 1.0F : 0.0F;
            if (!targets.empty()) {
                const bool in_target = covered(targets, {cx, cy});
                if (in_mask == in_target) {
                    v = in_mask ? 1.0F : 0.0F;
                } else {
                    const double cell_w = g.dx[static_cast<std::size_t>(c)];
                    const double sliver = std::min(cell_w, cell_h);
                    const float mag = 2.0F * (1.0F + static_cast<float>(std::log1p(sliver)));
                    v = in_mask ? mag : -mag;
                }
            }
            g.m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = v;
        }
    }
    return g;
}

// Resize the columns (axis=true) or rows to exactly `target` entries:
// split the widest cell while short, merge the narrowest adjacent pair
// while long. Occupancy is duplicated on split and OR-merged on merge.
void adapt_axis(SquishGrid& g, int target, bool columns) {
    auto& d = columns ? g.dx : g.dy;

    while (static_cast<int>(d.size()) < target) {
        const auto it = std::max_element(d.begin(), d.end());
        const auto idx = static_cast<std::size_t>(it - d.begin());
        const double half = *it / 2.0;
        d[idx] = half;
        d.insert(d.begin() + static_cast<std::ptrdiff_t>(idx), half);
        if (columns) {
            for (auto& row : g.m) {
                row.insert(row.begin() + static_cast<std::ptrdiff_t>(idx), row[idx]);
            }
        } else {
            g.m.insert(g.m.begin() + static_cast<std::ptrdiff_t>(idx), g.m[idx]);
        }
    }

    while (static_cast<int>(d.size()) > target) {
        std::size_t best = 0;
        double best_sum = 1e300;
        for (std::size_t i = 0; i + 1 < d.size(); ++i) {
            const double s = d[i] + d[i + 1];
            if (s < best_sum) {
                best_sum = s;
                best = i;
            }
        }
        // Merged occupancy keeps the stronger-magnitude value so signed
        // movement cells (+/-1) survive merging with empty cells.
        auto merge = [](float a, float b) { return std::abs(a) >= std::abs(b) ? a : b; };
        d[best] += d[best + 1];
        d.erase(d.begin() + static_cast<std::ptrdiff_t>(best) + 1);
        if (columns) {
            for (auto& row : g.m) {
                row[best] = merge(row[best], row[best + 1]);
                row.erase(row.begin() + static_cast<std::ptrdiff_t>(best) + 1);
            }
        } else {
            for (std::size_t c = 0; c < g.m[best].size(); ++c) {
                g.m[best][c] = merge(g.m[best][c], g.m[best + 1][c]);
            }
            g.m.erase(g.m.begin() + static_cast<std::ptrdiff_t>(best) + 1);
        }
    }
}

// Write one 3-channel squish block into `out` starting at channel `ch0`.
// Spacings use a log scale: OPC decisions hinge on few-nm slivers between
// mask and target scanlines, which a linear delta / window encoding would
// map to values of order 1e-3 the CNN could barely amplify.
void emit_channels(nn::Tensor& out, const SquishGrid& g, int ch0, double window_nm) {
    const int s = out.dim(1);
    const double norm = std::log1p(window_nm);
    for (int r = 0; r < s; ++r) {
        for (int c = 0; c < s; ++c) {
            out.at(ch0, r, c) = g.m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
            out.at(ch0 + 1, r, c) =
                static_cast<float>(std::log1p(g.dx[static_cast<std::size_t>(c)]) / norm);
            out.at(ch0 + 2, r, c) =
                static_cast<float>(std::log1p(g.dy[static_cast<std::size_t>(r)]) / norm);
        }
    }
}

}  // namespace

nn::Tensor encode_squish_window(std::span<const geo::Polygon> mask,
                                std::span<const geo::Polygon> targets, geo::FPoint center,
                                const SquishOptions& opt) {
    const double half = opt.window_nm / 2.0;
    const double xlo = center.x - half;
    const double xhi = center.x + half;
    const double ylo = center.y - half;
    const double yhi = center.y + half;

    // Pointers to the polygons that supply scanlines for each variant.
    std::vector<const geo::Polygon*> mask_only;
    for (const geo::Polygon& p : mask) mask_only.push_back(&p);
    std::vector<const geo::Polygon*> with_targets = mask_only;
    for (const geo::Polygon& p : targets) with_targets.push_back(&p);

    nn::Tensor out({6, opt.size, opt.size});

    // Channels 0-2: mask-geometry scanlines, plain mask occupancy.
    {
        const auto xs = scanlines(mask_only, xlo, xhi, true);
        const auto ys = scanlines(mask_only, ylo, yhi, false);
        SquishGrid g = build_grid(mask, {}, xs, ys);
        adapt_axis(g, opt.size, true);
        adapt_axis(g, opt.size, false);
        emit_channels(out, g, 0, opt.window_nm);
    }
    // Channels 3-5: extra scanlines at target edges, signed mask-minus-
    // target occupancy highlighting every segment's movement.
    {
        const auto xs = scanlines(with_targets, xlo, xhi, true);
        const auto ys = scanlines(with_targets, ylo, yhi, false);
        SquishGrid g = build_grid(mask, targets, xs, ys);
        adapt_axis(g, opt.size, true);
        adapt_axis(g, opt.size, false);
        emit_channels(out, g, 3, opt.window_nm);
    }
    return out;
}

}  // namespace camo::core
