#include "core/policy.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/backend.hpp"
#include "nn/serialize.hpp"
#include "rl/trajectory.hpp"

namespace camo::core {

/// Weights repacked for the inference backend (nn/backend.hpp). Rebuilt
/// whenever weights_version_ moves past the version it was packed at.
struct InferencePlan {
    std::uint64_t version = 0;
    nn::PackedConv2d conv1, conv2, conv3;
    nn::PackedLinear fc;    // flat -> embed
    nn::PackedLinear sage;  // 2*embed -> embed (use_gnn only)
    struct RnnCell {
        nn::PackedLinear u;  // carries the cell bias
        nn::PackedLinear w;  // hidden recurrence, bias-free (accumulate-only)
    };
    std::vector<RnnCell> rnn;
    nn::PackedLinear proj;  // embed -> hidden (no-RNN path only)
    nn::PackedLinear head;  // hidden -> 5
};

namespace {

int conv_out_size(int s) { return s / 8; }  // three stride-2 stages

// Same arithmetic as nn::ReLU::forward (max with +0.0F), applied in place.
void relu_inplace(float* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) p[i] = p[i] > 0.0F ? p[i] : 0.0F;
}

}  // namespace

PolicyNetwork::PolicyNetwork(const PolicyConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), head_(cfg.rnn_hidden, rl::kNumActions, rng_) {
    const int c1 = cfg_.conv_base;
    cnn_.emplace<nn::Conv2d>(6, c1, 3, 2, 1, rng_);
    cnn_.emplace<nn::ReLU>();
    cnn_.emplace<nn::Conv2d>(c1, c1 * 2, 3, 2, 1, rng_);
    cnn_.emplace<nn::ReLU>();
    cnn_.emplace<nn::Conv2d>(c1 * 2, c1 * 4, 3, 2, 1, rng_);
    cnn_.emplace<nn::ReLU>();

    const int flat = c1 * 4 * conv_out_size(cfg_.squish_size) * conv_out_size(cfg_.squish_size);
    cnn_.emplace<nn::Linear>(flat, cfg_.embed_dim, rng_);
    cnn_.emplace<nn::ReLU>();

    if (cfg_.use_gnn) {
        sage_ = std::make_unique<nn::Sequential>();
        sage_->emplace<nn::Linear>(2 * cfg_.embed_dim, cfg_.embed_dim, rng_);
        sage_->emplace<nn::ReLU>();
    }
    if (cfg_.use_rnn) {
        rnn_ = std::make_unique<nn::Rnn>(cfg_.embed_dim, cfg_.rnn_hidden, cfg_.rnn_layers, rng_);
    } else {
        proj_ = std::make_unique<nn::Sequential>();
        proj_->emplace<nn::Linear>(cfg_.embed_dim, cfg_.rnn_hidden, rng_);
        proj_->emplace<nn::ReLU>();
    }
}

nn::Tensor PolicyNetwork::forward(const std::vector<nn::Tensor>& features, const Graph& graph) {
    cache_ = Cache{};
    return run_forward(features, graph, cache_);
}

nn::Tensor PolicyNetwork::infer(const std::vector<nn::Tensor>& features,
                                const Graph& graph) const {
    const ClipRequest req{&features, &graph};
    return std::move(infer_batch({&req, 1}).front());
}

std::shared_ptr<const InferencePlan> PolicyNetwork::ensure_plan() const {
    const std::uint64_t version = weights_version_.load(std::memory_order_acquire);
    std::lock_guard<std::mutex> lock(plan_mu_);
    if (plan_ && plan_->version == version) return plan_;

    auto plan = std::make_shared<InferencePlan>();
    plan->version = version;
    plan->conv1 = nn::pack_conv2d(dynamic_cast<const nn::Conv2d&>(cnn_.layer(0)));
    plan->conv2 = nn::pack_conv2d(dynamic_cast<const nn::Conv2d&>(cnn_.layer(2)));
    plan->conv3 = nn::pack_conv2d(dynamic_cast<const nn::Conv2d&>(cnn_.layer(4)));
    plan->fc = nn::pack_linear(dynamic_cast<const nn::Linear&>(cnn_.layer(6)));
    if (sage_) plan->sage = nn::pack_linear(dynamic_cast<const nn::Linear&>(sage_->layer(0)));
    if (rnn_) {
        plan->rnn.reserve(static_cast<std::size_t>(rnn_->num_layers()));
        for (int l = 0; l < rnn_->num_layers(); ++l) {
            plan->rnn.push_back({nn::pack_linear(rnn_->u(l).value, &rnn_->b(l).value),
                                 nn::pack_linear(rnn_->w(l).value, nullptr)});
        }
    }
    if (proj_) plan->proj = nn::pack_linear(dynamic_cast<const nn::Linear&>(proj_->layer(0)));
    plan->head = nn::pack_linear(head_);
    plan_ = plan;
    return plan;
}

std::vector<nn::Tensor> PolicyNetwork::infer_batch(std::span<const ClipRequest> clips) const {
    const std::shared_ptr<const InferencePlan> plan = ensure_plan();
    const nn::Backend& be = nn::active_backend();
    const int S = cfg_.squish_size;
    const int embed = cfg_.embed_dim;
    const int hidden = cfg_.rnn_hidden;

    // Node bookkeeping: clip c's nodes occupy global rows [start[c],
    // start[c] + n_c) of every concatenated activation matrix.
    std::vector<int> start(clips.size(), 0);
    int total = 0;
    for (std::size_t c = 0; c < clips.size(); ++c) {
        const ClipRequest& req = clips[c];
        if (req.features == nullptr || req.graph == nullptr) {
            throw std::invalid_argument("PolicyNetwork::infer_batch: null request");
        }
        const int n = static_cast<int>(req.features->size());
        if (n == 0) throw std::invalid_argument("PolicyNetwork: empty node set");
        if (req.graph->n != n) {
            throw std::invalid_argument("PolicyNetwork: graph/feature size mismatch");
        }
        start[c] = total;
        total += n;
    }

    // Stage 1: shared CNN encoder per node (conv chain is per-sample), then
    // the flatten->embed projection as ONE wide GEMM over all nodes.
    const int s1 = plan->conv1.out_size(S);
    const int s2 = plan->conv2.out_size(s1);
    const int s3 = plan->conv3.out_size(s2);
    const std::size_t flat = static_cast<std::size_t>(plan->conv3.out_ch) *
                             static_cast<std::size_t>(s3) * static_cast<std::size_t>(s3);
    if (flat != static_cast<std::size_t>(plan->fc.in)) {
        throw std::logic_error("PolicyNetwork::infer_batch: plan geometry mismatch");
    }
    std::vector<float> b1(static_cast<std::size_t>(plan->conv1.out_ch) *
                          static_cast<std::size_t>(s1) * static_cast<std::size_t>(s1));
    std::vector<float> b2(static_cast<std::size_t>(plan->conv2.out_ch) *
                          static_cast<std::size_t>(s2) * static_cast<std::size_t>(s2));
    std::vector<float> flats(static_cast<std::size_t>(total) * flat);
    int row = 0;
    for (std::size_t c = 0; c < clips.size(); ++c) {
        for (const nn::Tensor& f : *clips[c].features) {
            if (f.rank() != 3 || f.dim(0) != plan->conv1.in_ch || f.dim(1) != S ||
                f.dim(2) != S) {
                throw std::invalid_argument("PolicyNetwork: bad squish feature shape");
            }
            float* out = flats.data() + static_cast<std::size_t>(row) * flat;
            be.conv2d(plan->conv1, f.data().data(), S, S, b1.data());
            relu_inplace(b1.data(), b1.size());
            be.conv2d(plan->conv2, b1.data(), s1, s1, b2.data());
            relu_inplace(b2.data(), b2.size());
            be.conv2d(plan->conv3, b2.data(), s2, s2, out);
            relu_inplace(out, flat);
            ++row;
        }
    }
    std::vector<float> embeds(static_cast<std::size_t>(total) * static_cast<std::size_t>(embed));
    be.linear(plan->fc, flats.data(), total, embeds.data());
    relu_inplace(embeds.data(), embeds.size());

    // Stage 2: GraphSAGE fusion — the concatenation and neighbour mean are
    // built exactly as the tape forward does (same accumulation order), the
    // 2*embed -> embed projection is one wide GEMM.
    std::vector<float> fused;
    const float* fused_ptr = embeds.data();
    if (cfg_.use_gnn) {
        std::vector<float> cat(static_cast<std::size_t>(total) * 2 *
                                   static_cast<std::size_t>(embed),
                               0.0F);
        for (std::size_t c = 0; c < clips.size(); ++c) {
            const Graph& graph = *clips[c].graph;
            for (int i = 0; i < graph.n; ++i) {
                const std::size_t g = static_cast<std::size_t>(start[c] + i);
                float* crow = cat.data() + g * 2 * static_cast<std::size_t>(embed);
                const float* e = embeds.data() + g * static_cast<std::size_t>(embed);
                std::memcpy(crow, e, static_cast<std::size_t>(embed) * sizeof(float));
                const auto& nbrs = graph.neighbors[static_cast<std::size_t>(i)];
                if (nbrs.empty()) continue;
                const float inv = 1.0F / static_cast<float>(nbrs.size());
                for (int j : nbrs) {
                    const float* ej = embeds.data() +
                                      static_cast<std::size_t>(start[c] + j) *
                                          static_cast<std::size_t>(embed);
                    for (int d = 0; d < embed; ++d) {
                        crow[static_cast<std::size_t>(embed + d)] +=
                            inv * ej[static_cast<std::size_t>(d)];
                    }
                }
            }
        }
        fused.resize(static_cast<std::size_t>(total) * static_cast<std::size_t>(embed));
        be.linear(plan->sage, cat.data(), total, fused.data());
        relu_inplace(fused.data(), fused.size());
        fused_ptr = fused.data();
    }

    // Stage 3: sequential decision context. The RNN recurrence is inherently
    // per-clip and per-step; the input contribution U x_t + b is batched over
    // the whole sequence, then the recurrence W h_{t-1} resumes each row's
    // accumulator (bit-identical to the tape cell's single fused sum under
    // the scalar backend).
    std::vector<float> ctx(static_cast<std::size_t>(total) * static_cast<std::size_t>(hidden));
    if (cfg_.use_rnn) {
        for (std::size_t c = 0; c < clips.size(); ++c) {
            const int n = clips[c].graph->n;
            std::vector<float> seq(fused_ptr + static_cast<std::size_t>(start[c]) *
                                                   static_cast<std::size_t>(embed),
                                   fused_ptr + static_cast<std::size_t>(start[c] + n) *
                                                   static_cast<std::size_t>(embed));
            for (const InferencePlan::RnnCell& cell : plan->rnn) {
                std::vector<float> h(static_cast<std::size_t>(n) *
                                     static_cast<std::size_t>(hidden));
                be.linear(cell.u, seq.data(), n, h.data());
                for (int t = 0; t < n; ++t) {
                    float* ht = h.data() + static_cast<std::size_t>(t) *
                                               static_cast<std::size_t>(hidden);
                    if (t > 0) {
                        be.linear_acc(cell.w,
                                      h.data() + static_cast<std::size_t>(t - 1) *
                                                     static_cast<std::size_t>(hidden),
                                      1, ht);
                    }
                    for (int d = 0; d < hidden; ++d) ht[d] = std::tanh(ht[d]);
                }
                seq = std::move(h);
            }
            std::memcpy(ctx.data() + static_cast<std::size_t>(start[c]) *
                                         static_cast<std::size_t>(hidden),
                        seq.data(),
                        static_cast<std::size_t>(n) * static_cast<std::size_t>(hidden) *
                            sizeof(float));
        }
    } else {
        be.linear(plan->proj, fused_ptr, total, ctx.data());
        relu_inplace(ctx.data(), ctx.size());
    }

    // Stage 4: the action head as one wide GEMM, then split per clip.
    std::vector<float> logits(static_cast<std::size_t>(total) *
                              static_cast<std::size_t>(rl::kNumActions));
    be.linear(plan->head, ctx.data(), total, logits.data());

    std::vector<nn::Tensor> out;
    out.reserve(clips.size());
    for (std::size_t c = 0; c < clips.size(); ++c) {
        const int n = clips[c].graph->n;
        nn::Tensor t({n, rl::kNumActions});
        std::memcpy(t.data().data(),
                    logits.data() + static_cast<std::size_t>(start[c]) *
                                        static_cast<std::size_t>(rl::kNumActions),
                    static_cast<std::size_t>(n) * static_cast<std::size_t>(rl::kNumActions) *
                        sizeof(float));
        out.push_back(std::move(t));
    }
    return out;
}

nn::Tensor PolicyNetwork::run_forward(const std::vector<nn::Tensor>& features,
                                      const Graph& graph, Cache& cache) const {
    const int n = static_cast<int>(features.size());
    if (n == 0) throw std::invalid_argument("PolicyNetwork: empty node set");
    if (graph.n != n) throw std::invalid_argument("PolicyNetwork: graph/feature size mismatch");

    cache.graph = graph;
    cache.n = n;
    cache.cnn_tapes.resize(static_cast<std::size_t>(n));
    cache.embeds.resize(static_cast<std::size_t>(n));
    cache.head_tapes.resize(static_cast<std::size_t>(n));

    // Shared CNN encoder per node. The flatten is a pure reshape.
    for (int i = 0; i < n; ++i) {
        const nn::Tensor& f = features[static_cast<std::size_t>(i)];
        cache.embeds[static_cast<std::size_t>(i)] =
            cnn_.forward(f, cache.cnn_tapes[static_cast<std::size_t>(i)]);
    }

    // GraphSAGE: h_i = ReLU(W [e_i ; mean_{j in N(i)} e_j]).
    std::vector<nn::Tensor> fused(static_cast<std::size_t>(n));
    if (cfg_.use_gnn) {
        cache.sage_tapes.resize(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            nn::Tensor cat({2 * cfg_.embed_dim});
            const auto& e = cache.embeds[static_cast<std::size_t>(i)];
            for (int d = 0; d < cfg_.embed_dim; ++d) cat[static_cast<std::size_t>(d)] = e[static_cast<std::size_t>(d)];
            const auto& nbrs = graph.neighbors[static_cast<std::size_t>(i)];
            if (!nbrs.empty()) {
                const float inv = 1.0F / static_cast<float>(nbrs.size());
                for (int j : nbrs) {
                    const auto& ej = cache.embeds[static_cast<std::size_t>(j)];
                    for (int d = 0; d < cfg_.embed_dim; ++d) {
                        cat[static_cast<std::size_t>(cfg_.embed_dim + d)] += inv * ej[static_cast<std::size_t>(d)];
                    }
                }
            }
            fused[static_cast<std::size_t>(i)] =
                sage_->forward(cat, cache.sage_tapes[static_cast<std::size_t>(i)]);
        }
    } else {
        for (int i = 0; i < n; ++i) fused[static_cast<std::size_t>(i)] = cache.embeds[static_cast<std::size_t>(i)].reshaped({cfg_.embed_dim});
    }

    // Sequential decision context.
    std::vector<nn::Tensor> ctx(static_cast<std::size_t>(n));
    if (cfg_.use_rnn) {
        nn::Tensor seq({n, cfg_.embed_dim});
        for (int i = 0; i < n; ++i) {
            for (int d = 0; d < cfg_.embed_dim; ++d) {
                seq.at(i, d) = fused[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)];
            }
        }
        const nn::Tensor hidden = rnn_->forward(seq, cache.rnn_tape);
        for (int i = 0; i < n; ++i) {
            nn::Tensor h({cfg_.rnn_hidden});
            for (int d = 0; d < cfg_.rnn_hidden; ++d) h[static_cast<std::size_t>(d)] = hidden.at(i, d);
            ctx[static_cast<std::size_t>(i)] = std::move(h);
        }
    } else {
        cache.proj_tapes.resize(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            ctx[static_cast<std::size_t>(i)] = proj_->forward(
                fused[static_cast<std::size_t>(i)], cache.proj_tapes[static_cast<std::size_t>(i)]);
        }
    }

    nn::Tensor logits({n, rl::kNumActions});
    for (int i = 0; i < n; ++i) {
        const nn::Tensor o =
            head_.forward(ctx[static_cast<std::size_t>(i)], cache.head_tapes[static_cast<std::size_t>(i)]);
        for (int a = 0; a < rl::kNumActions; ++a) logits.at(i, a) = o[static_cast<std::size_t>(a)];
    }
    cache.valid = true;
    return logits;
}

void PolicyNetwork::backward(const nn::Tensor& dlogits) {
    if (!cache_.valid) throw std::logic_error("PolicyNetwork::backward without forward");
    const int n = cache_.n;

    // Head backward per node.
    std::vector<nn::Tensor> dctx(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        nn::Tensor g({rl::kNumActions});
        for (int a = 0; a < rl::kNumActions; ++a) g[static_cast<std::size_t>(a)] = dlogits.at(i, a);
        dctx[static_cast<std::size_t>(i)] =
            head_.backward(g, cache_.head_tapes[static_cast<std::size_t>(i)]);
    }

    // RNN (or projection) backward.
    std::vector<nn::Tensor> dfused(static_cast<std::size_t>(n));
    if (cfg_.use_rnn) {
        nn::Tensor gseq({n, cfg_.rnn_hidden});
        for (int i = 0; i < n; ++i) {
            for (int d = 0; d < cfg_.rnn_hidden; ++d) {
                gseq.at(i, d) = dctx[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)];
            }
        }
        const nn::Tensor gx = rnn_->backward(gseq, cache_.rnn_tape);
        for (int i = 0; i < n; ++i) {
            nn::Tensor g({cfg_.embed_dim});
            for (int d = 0; d < cfg_.embed_dim; ++d) g[static_cast<std::size_t>(d)] = gx.at(i, d);
            dfused[static_cast<std::size_t>(i)] = std::move(g);
        }
    } else {
        for (int i = 0; i < n; ++i) {
            dfused[static_cast<std::size_t>(i)] = proj_->backward(
                dctx[static_cast<std::size_t>(i)], cache_.proj_tapes[static_cast<std::size_t>(i)]);
        }
    }

    // SAGE backward: distribute into d(embeds).
    std::vector<nn::Tensor> dembed(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) dembed[static_cast<std::size_t>(i)] = nn::Tensor({cfg_.embed_dim});
    if (cfg_.use_gnn) {
        for (int i = n - 1; i >= 0; --i) {
            const nn::Tensor gcat = sage_->backward(dfused[static_cast<std::size_t>(i)],
                                                    cache_.sage_tapes[static_cast<std::size_t>(i)]);
            for (int d = 0; d < cfg_.embed_dim; ++d) {
                dembed[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)] += gcat[static_cast<std::size_t>(d)];
            }
            const auto& nbrs = cache_.graph.neighbors[static_cast<std::size_t>(i)];
            if (!nbrs.empty()) {
                const float inv = 1.0F / static_cast<float>(nbrs.size());
                for (int j : nbrs) {
                    for (int d = 0; d < cfg_.embed_dim; ++d) {
                        dembed[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)] +=
                            inv * gcat[static_cast<std::size_t>(cfg_.embed_dim + d)];
                    }
                }
            }
        }
    } else {
        for (int i = 0; i < n; ++i) dembed[static_cast<std::size_t>(i)] = std::move(dfused[static_cast<std::size_t>(i)]);
    }

    // Shared CNN backward per node (gradients accumulate in the weights).
    for (int i = n - 1; i >= 0; --i) {
        (void)cnn_.backward(dembed[static_cast<std::size_t>(i)],
                            cache_.cnn_tapes[static_cast<std::size_t>(i)]);
    }
    cache_.valid = false;
}

std::vector<nn::Parameter*> PolicyNetwork::params() {
    // Handing out mutable parameter pointers (optimizers, trainers) may be
    // followed by in-place weight updates the plan cache cannot observe;
    // conservatively invalidate so the next infer() repacks.
    invalidate_plan();
    std::vector<nn::Parameter*> out = cnn_.params();
    if (sage_) {
        auto p = sage_->params();
        out.insert(out.end(), p.begin(), p.end());
    }
    if (rnn_) {
        auto p = rnn_->params();
        out.insert(out.end(), p.begin(), p.end());
    }
    if (proj_) {
        auto p = proj_->params();
        out.insert(out.end(), p.begin(), p.end());
    }
    auto p = head_.params();
    out.insert(out.end(), p.begin(), p.end());
    return out;
}

void PolicyNetwork::copy_weights_from(PolicyNetwork& src) {
    const auto dst_params = params();
    const auto src_params = src.params();
    if (dst_params.size() != src_params.size()) {
        throw std::invalid_argument("PolicyNetwork::copy_weights_from: architecture mismatch");
    }
    for (std::size_t i = 0; i < dst_params.size(); ++i) {
        if (dst_params[i]->value.shape() != src_params[i]->value.shape()) {
            throw std::invalid_argument(
                "PolicyNetwork::copy_weights_from: parameter shape mismatch");
        }
        dst_params[i]->value = src_params[i]->value;
    }
    invalidate_plan();
}

void PolicyNetwork::save(const std::string& path) { nn::save_params(path, params()); }

bool PolicyNetwork::load(const std::string& path) {
    const bool ok = nn::load_params(path, params());
    // Repack eagerly on a successful load: a freshly deserialized network is
    // (in the serving paths) about to run inference, and packing here keeps
    // the first batched wave's latency flat.
    if (ok) (void)ensure_plan();
    return ok;
}

}  // namespace camo::core
