#include "core/policy.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/serialize.hpp"
#include "rl/trajectory.hpp"

namespace camo::core {
namespace {

int conv_out_size(int s) { return s / 8; }  // three stride-2 stages

}  // namespace

PolicyNetwork::PolicyNetwork(const PolicyConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), head_(cfg.rnn_hidden, rl::kNumActions, rng_) {
    const int c1 = cfg_.conv_base;
    cnn_.emplace<nn::Conv2d>(6, c1, 3, 2, 1, rng_);
    cnn_.emplace<nn::ReLU>();
    cnn_.emplace<nn::Conv2d>(c1, c1 * 2, 3, 2, 1, rng_);
    cnn_.emplace<nn::ReLU>();
    cnn_.emplace<nn::Conv2d>(c1 * 2, c1 * 4, 3, 2, 1, rng_);
    cnn_.emplace<nn::ReLU>();

    const int flat = c1 * 4 * conv_out_size(cfg_.squish_size) * conv_out_size(cfg_.squish_size);
    cnn_.emplace<nn::Linear>(flat, cfg_.embed_dim, rng_);
    cnn_.emplace<nn::ReLU>();

    if (cfg_.use_gnn) {
        sage_ = std::make_unique<nn::Sequential>();
        sage_->emplace<nn::Linear>(2 * cfg_.embed_dim, cfg_.embed_dim, rng_);
        sage_->emplace<nn::ReLU>();
    }
    if (cfg_.use_rnn) {
        rnn_ = std::make_unique<nn::Rnn>(cfg_.embed_dim, cfg_.rnn_hidden, cfg_.rnn_layers, rng_);
    } else {
        proj_ = std::make_unique<nn::Sequential>();
        proj_->emplace<nn::Linear>(cfg_.embed_dim, cfg_.rnn_hidden, rng_);
        proj_->emplace<nn::ReLU>();
    }
}

nn::Tensor PolicyNetwork::forward(const std::vector<nn::Tensor>& features, const Graph& graph) {
    cache_ = Cache{};
    return run_forward(features, graph, cache_);
}

nn::Tensor PolicyNetwork::infer(const std::vector<nn::Tensor>& features,
                                const Graph& graph) const {
    Cache local;
    return run_forward(features, graph, local);
}

nn::Tensor PolicyNetwork::run_forward(const std::vector<nn::Tensor>& features,
                                      const Graph& graph, Cache& cache) const {
    const int n = static_cast<int>(features.size());
    if (n == 0) throw std::invalid_argument("PolicyNetwork: empty node set");
    if (graph.n != n) throw std::invalid_argument("PolicyNetwork: graph/feature size mismatch");

    cache.graph = graph;
    cache.n = n;
    cache.cnn_tapes.resize(static_cast<std::size_t>(n));
    cache.embeds.resize(static_cast<std::size_t>(n));
    cache.head_tapes.resize(static_cast<std::size_t>(n));

    // Shared CNN encoder per node. The flatten is a pure reshape.
    for (int i = 0; i < n; ++i) {
        const nn::Tensor& f = features[static_cast<std::size_t>(i)];
        cache.embeds[static_cast<std::size_t>(i)] =
            cnn_.forward(f, cache.cnn_tapes[static_cast<std::size_t>(i)]);
    }

    // GraphSAGE: h_i = ReLU(W [e_i ; mean_{j in N(i)} e_j]).
    std::vector<nn::Tensor> fused(static_cast<std::size_t>(n));
    if (cfg_.use_gnn) {
        cache.sage_tapes.resize(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            nn::Tensor cat({2 * cfg_.embed_dim});
            const auto& e = cache.embeds[static_cast<std::size_t>(i)];
            for (int d = 0; d < cfg_.embed_dim; ++d) cat[static_cast<std::size_t>(d)] = e[static_cast<std::size_t>(d)];
            const auto& nbrs = graph.neighbors[static_cast<std::size_t>(i)];
            if (!nbrs.empty()) {
                const float inv = 1.0F / static_cast<float>(nbrs.size());
                for (int j : nbrs) {
                    const auto& ej = cache.embeds[static_cast<std::size_t>(j)];
                    for (int d = 0; d < cfg_.embed_dim; ++d) {
                        cat[static_cast<std::size_t>(cfg_.embed_dim + d)] += inv * ej[static_cast<std::size_t>(d)];
                    }
                }
            }
            fused[static_cast<std::size_t>(i)] =
                sage_->forward(cat, cache.sage_tapes[static_cast<std::size_t>(i)]);
        }
    } else {
        for (int i = 0; i < n; ++i) fused[static_cast<std::size_t>(i)] = cache.embeds[static_cast<std::size_t>(i)].reshaped({cfg_.embed_dim});
    }

    // Sequential decision context.
    std::vector<nn::Tensor> ctx(static_cast<std::size_t>(n));
    if (cfg_.use_rnn) {
        nn::Tensor seq({n, cfg_.embed_dim});
        for (int i = 0; i < n; ++i) {
            for (int d = 0; d < cfg_.embed_dim; ++d) {
                seq.at(i, d) = fused[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)];
            }
        }
        const nn::Tensor hidden = rnn_->forward(seq, cache.rnn_tape);
        for (int i = 0; i < n; ++i) {
            nn::Tensor h({cfg_.rnn_hidden});
            for (int d = 0; d < cfg_.rnn_hidden; ++d) h[static_cast<std::size_t>(d)] = hidden.at(i, d);
            ctx[static_cast<std::size_t>(i)] = std::move(h);
        }
    } else {
        cache.proj_tapes.resize(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            ctx[static_cast<std::size_t>(i)] = proj_->forward(
                fused[static_cast<std::size_t>(i)], cache.proj_tapes[static_cast<std::size_t>(i)]);
        }
    }

    nn::Tensor logits({n, rl::kNumActions});
    for (int i = 0; i < n; ++i) {
        const nn::Tensor o =
            head_.forward(ctx[static_cast<std::size_t>(i)], cache.head_tapes[static_cast<std::size_t>(i)]);
        for (int a = 0; a < rl::kNumActions; ++a) logits.at(i, a) = o[static_cast<std::size_t>(a)];
    }
    cache.valid = true;
    return logits;
}

void PolicyNetwork::backward(const nn::Tensor& dlogits) {
    if (!cache_.valid) throw std::logic_error("PolicyNetwork::backward without forward");
    const int n = cache_.n;

    // Head backward per node.
    std::vector<nn::Tensor> dctx(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        nn::Tensor g({rl::kNumActions});
        for (int a = 0; a < rl::kNumActions; ++a) g[static_cast<std::size_t>(a)] = dlogits.at(i, a);
        dctx[static_cast<std::size_t>(i)] =
            head_.backward(g, cache_.head_tapes[static_cast<std::size_t>(i)]);
    }

    // RNN (or projection) backward.
    std::vector<nn::Tensor> dfused(static_cast<std::size_t>(n));
    if (cfg_.use_rnn) {
        nn::Tensor gseq({n, cfg_.rnn_hidden});
        for (int i = 0; i < n; ++i) {
            for (int d = 0; d < cfg_.rnn_hidden; ++d) {
                gseq.at(i, d) = dctx[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)];
            }
        }
        const nn::Tensor gx = rnn_->backward(gseq, cache_.rnn_tape);
        for (int i = 0; i < n; ++i) {
            nn::Tensor g({cfg_.embed_dim});
            for (int d = 0; d < cfg_.embed_dim; ++d) g[static_cast<std::size_t>(d)] = gx.at(i, d);
            dfused[static_cast<std::size_t>(i)] = std::move(g);
        }
    } else {
        for (int i = 0; i < n; ++i) {
            dfused[static_cast<std::size_t>(i)] = proj_->backward(
                dctx[static_cast<std::size_t>(i)], cache_.proj_tapes[static_cast<std::size_t>(i)]);
        }
    }

    // SAGE backward: distribute into d(embeds).
    std::vector<nn::Tensor> dembed(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) dembed[static_cast<std::size_t>(i)] = nn::Tensor({cfg_.embed_dim});
    if (cfg_.use_gnn) {
        for (int i = n - 1; i >= 0; --i) {
            const nn::Tensor gcat = sage_->backward(dfused[static_cast<std::size_t>(i)],
                                                    cache_.sage_tapes[static_cast<std::size_t>(i)]);
            for (int d = 0; d < cfg_.embed_dim; ++d) {
                dembed[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)] += gcat[static_cast<std::size_t>(d)];
            }
            const auto& nbrs = cache_.graph.neighbors[static_cast<std::size_t>(i)];
            if (!nbrs.empty()) {
                const float inv = 1.0F / static_cast<float>(nbrs.size());
                for (int j : nbrs) {
                    for (int d = 0; d < cfg_.embed_dim; ++d) {
                        dembed[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)] +=
                            inv * gcat[static_cast<std::size_t>(cfg_.embed_dim + d)];
                    }
                }
            }
        }
    } else {
        for (int i = 0; i < n; ++i) dembed[static_cast<std::size_t>(i)] = std::move(dfused[static_cast<std::size_t>(i)]);
    }

    // Shared CNN backward per node (gradients accumulate in the weights).
    for (int i = n - 1; i >= 0; --i) {
        (void)cnn_.backward(dembed[static_cast<std::size_t>(i)],
                            cache_.cnn_tapes[static_cast<std::size_t>(i)]);
    }
    cache_.valid = false;
}

std::vector<nn::Parameter*> PolicyNetwork::params() {
    std::vector<nn::Parameter*> out = cnn_.params();
    if (sage_) {
        auto p = sage_->params();
        out.insert(out.end(), p.begin(), p.end());
    }
    if (rnn_) {
        auto p = rnn_->params();
        out.insert(out.end(), p.begin(), p.end());
    }
    if (proj_) {
        auto p = proj_->params();
        out.insert(out.end(), p.begin(), p.end());
    }
    auto p = head_.params();
    out.insert(out.end(), p.begin(), p.end());
    return out;
}

void PolicyNetwork::copy_weights_from(PolicyNetwork& src) {
    const auto dst_params = params();
    const auto src_params = src.params();
    if (dst_params.size() != src_params.size()) {
        throw std::invalid_argument("PolicyNetwork::copy_weights_from: architecture mismatch");
    }
    for (std::size_t i = 0; i < dst_params.size(); ++i) {
        if (dst_params[i]->value.shape() != src_params[i]->value.shape()) {
            throw std::invalid_argument(
                "PolicyNetwork::copy_weights_from: parameter shape mismatch");
        }
        dst_params[i]->value = src_params[i]->value;
    }
}

void PolicyNetwork::save(const std::string& path) { nn::save_params(path, params()); }

bool PolicyNetwork::load(const std::string& path) { return nn::load_params(path, params()); }

}  // namespace camo::core
