// Segment graph construction (paper Section 3.2, "Graph Construction").
//
// Nodes are boundary segments; an undirected edge connects two segments
// whose control points are closer than a threshold (paper: 250 nm). The
// node set and edge set are fixed for the whole OPC run because control
// points live on the target boundary.
#pragma once

#include <vector>

#include "geometry/layout.hpp"

namespace camo::core {

struct Graph {
    int n = 0;
    std::vector<std::vector<int>> neighbors;  ///< adjacency lists, no self loops

    [[nodiscard]] int degree(int v) const {
        return static_cast<int>(neighbors[static_cast<std::size_t>(v)].size());
    }
    [[nodiscard]] int edge_count() const {
        int total = 0;
        for (const auto& adj : neighbors) total += static_cast<int>(adj.size());
        return total / 2;
    }
};

Graph build_segment_graph(const geo::SegmentedLayout& layout, double threshold_nm = 250.0);

}  // namespace camo::core
