#include "core/experiment.hpp"

#include <cstdlib>
#include <filesystem>

#include "common/file_io.hpp"
#include "common/logging.hpp"
#include "opc/sraf.hpp"

namespace camo::core {
namespace {

std::uint64_t fnv_mix(std::uint64_t h, long long v) {
    for (int i = 0; i < 8; ++i) {
        h ^= static_cast<std::uint64_t>(v >> (8 * i)) & 0xFFU;
        h *= 1099511628211ULL;
    }
    return h;
}

}  // namespace

bool Experiment::full_scale() {
    const char* env = std::getenv("CAMO_BENCH_FULL");
    return env != nullptr && env[0] == '1';
}

litho::LithoConfig Experiment::litho_config() {
    litho::LithoConfig cfg;
    cfg.grid = 512;
    cfg.pixel_nm = 4.0;
    cfg.kernels_nominal = 8;
    cfg.kernels_defocus = 6;
    cfg.cache_dir = "data";
    return cfg;
}

opc::OpcOptions Experiment::via_options() {
    opc::OpcOptions opt;
    opt.max_iterations = 10;
    opt.exit_epe_per_feature = 4.0;
    opt.initial_bias_nm = 3;
    return opt;
}

opc::OpcOptions Experiment::metal_options() {
    opc::OpcOptions opt;
    opt.max_iterations = 15;
    opt.exit_epe_per_point = 1.0;
    opt.initial_bias_nm = 0;
    return opt;
}

CamoConfig Experiment::via_camo_config() {
    CamoConfig cfg;
    cfg.name = "camo-via";
    cfg.seed = 7;
    cfg.teacher_biases = {3, 0, 8};
    if (full_scale()) {
        cfg.policy.squish_size = 128;  // paper: 128x128x6 via tensors
        cfg.squish.size = 128;
        cfg.phase1_epochs = 500;  // paper
        cfg.phase2_episodes = 8;
    } else {
        cfg.policy.squish_size = 32;
        cfg.squish.size = 32;
        cfg.phase1_epochs = 60;
        cfg.phase2_episodes = 0;
    }
    return cfg;
}

CamoConfig Experiment::metal_camo_config() {
    CamoConfig cfg;
    cfg.name = "camo-metal";
    cfg.seed = 11;
    cfg.teacher_biases = {0, 4};
    if (full_scale()) {
        cfg.policy.squish_size = 64;  // paper: 64x64x6 metal tensors
        cfg.squish.size = 64;
        cfg.phase1_epochs = 500;
        cfg.phase2_episodes = 8;
    } else {
        cfg.policy.squish_size = 32;
        cfg.squish.size = 32;
        cfg.phase1_epochs = 35;
        cfg.phase2_episodes = 0;
    }
    return cfg;
}

CamoConfig Experiment::via_rlopc_config() {
    CamoConfig cfg = make_rlopc_config(via_camo_config());
    cfg.phase1_epochs = cfg.phase1_epochs / 3;
    cfg.phase2_episodes = 0;
    return cfg;
}

CamoConfig Experiment::metal_rlopc_config() {
    CamoConfig cfg = make_rlopc_config(metal_camo_config());
    cfg.phase1_epochs = cfg.phase1_epochs / 3;
    cfg.phase2_episodes = 0;
    return cfg;
}

std::string Experiment::weights_path(const CamoConfig& cfg, const std::string& layer_tag,
                                     rl::RewardMode objective) {
    // Bumped whenever the trainer's update schedule or RNG derivation
    // changes (v2: data-parallel trainer — phase-2 lockstep waves +
    // per-(episode, clip) splitmix streams replaced the sequential shared
    // sampling RNG), so weights cached by an older trainer are never
    // silently served as if the current trainer produced them.
    constexpr long long kTrainerSchemaVersion = 2;

    std::uint64_t h = 14695981039346656037ULL;
    h = fnv_mix(h, kTrainerSchemaVersion);
    // Nominal mode contributes nothing so pre-existing cache paths survive;
    // window modes both hash AND tag the name, keeping the distinction
    // visible in data/ listings.
    std::string tag = layer_tag;
    if (objective != rl::RewardMode::kNominal) {
        h = fnv_mix(h, static_cast<long long>(objective));
        tag += std::string("-") + rl::reward_mode_name(objective);
    }
    h = fnv_mix(h, cfg.policy.squish_size);
    h = fnv_mix(h, cfg.policy.embed_dim);
    h = fnv_mix(h, cfg.policy.rnn_hidden);
    h = fnv_mix(h, cfg.policy.rnn_layers);
    h = fnv_mix(h, cfg.policy.conv_base);
    h = fnv_mix(h, cfg.policy.use_gnn ? 1 : 0);
    h = fnv_mix(h, cfg.policy.use_rnn ? 1 : 0);
    h = fnv_mix(h, static_cast<long long>(cfg.policy.seed));
    h = fnv_mix(h, cfg.phase1_epochs);
    h = fnv_mix(h, cfg.phase2_episodes);
    // phase1_batch changes the optimizer-step schedule, so it is part of the
    // key (the default per-sample schedule contributes nothing, keeping
    // pre-existing cache paths unchanged). train_workers is deliberately
    // NOT hashed: the trainer's fixed-order gradient reduction makes the
    // trained weights bit-identical at any worker count, so weights cached
    // at one worker count serve every other.
    if (cfg.phase1_batch != 1) h = fnv_mix(h, cfg.phase1_batch);
    h = fnv_mix(h, static_cast<long long>(cfg.teacher_biases.size()));
    for (int b : cfg.teacher_biases) h = fnv_mix(h, b);
    h = fnv_mix(h, static_cast<long long>(Experiment::kDatasetSeed));
    h = fnv_mix(h, static_cast<long long>(cfg.seed));
    return "data/weights_" + cfg.name + "_" + tag + "_" + std::to_string(h) + ".bin";
}

std::vector<geo::SegmentedLayout> fragment_via_clips(const std::vector<layout::Clip>& clips) {
    std::vector<geo::SegmentedLayout> out;
    out.reserve(clips.size());
    for (const layout::Clip& c : clips) {
        auto srafs = opc::insert_srafs(c.targets);
        out.emplace_back(c.targets, geo::FragmentOptions{geo::FragmentStyle::kVia, 60},
                         std::move(srafs), c.clip_nm);
    }
    return out;
}

std::vector<geo::SegmentedLayout> fragment_metal_clips(const std::vector<layout::Clip>& clips) {
    std::vector<geo::SegmentedLayout> out;
    out.reserve(clips.size());
    for (const layout::Clip& c : clips) {
        out.emplace_back(c.targets, geo::FragmentOptions{geo::FragmentStyle::kMetal, 60},
                         std::vector<geo::Polygon>{}, c.clip_nm);
    }
    return out;
}

bool ensure_trained(CamoEngine& engine, const std::vector<geo::SegmentedLayout>& train_clips,
                    litho::LithoSim& sim, const opc::OpcOptions& opt,
                    const std::string& cache_path) {
    if (!cache_path.empty() && file_exists(cache_path) && engine.load_weights(cache_path)) {
        log_info(engine.name() + ": loaded cached weights from " + cache_path);
        return true;
    }
    log_info(engine.name() + ": training (one-time, cached afterwards)");
    (void)engine.train(train_clips, sim, opt);
    if (!cache_path.empty()) {
        const std::filesystem::path parent = std::filesystem::path(cache_path).parent_path();
        if (!parent.empty()) std::filesystem::create_directories(parent);
        engine.save_weights(cache_path);
    }
    return false;
}

}  // namespace camo::core
