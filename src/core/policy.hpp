// CAMO's correlation-aware policy network (paper Section 3.2).
//
// Per node (segment): a shared CNN encodes the [6,S,S] squish tensor into a
// 256-d feature. A GraphSAGE step fuses each node's feature with the mean
// of its graph neighbours' features (capturing spatial correlation among
// nearby segments). A 3-layer Elman RNN then sweeps the node sequence so
// each decision is conditioned on the segments already processed, and a
// final 64x5 linear head emits movement logits.
//
// The RL-OPC baseline [12] is this same class with use_gnn = use_rnn =
// false: per-segment independent decisions from local features only.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "common/rng.hpp"
#include "core/graph.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/rnn.hpp"
#include "nn/sequential.hpp"

namespace camo::core {

/// Packed-weight inference plan (built lazily from the current weights; see
/// policy.cpp). Opaque here so policy.hpp stays free of backend headers.
struct InferencePlan;

struct PolicyConfig {
    int squish_size = 32;  ///< S; paper uses 128 (via) / 64 (metal)
    int embed_dim = 256;   ///< GNN output and RNN input width (paper: 256)
    int rnn_hidden = 64;   ///< paper: 64
    int rnn_layers = 3;    ///< paper: 3
    int conv_base = 8;     ///< first conv width; doubles per stage
    bool use_gnn = true;
    bool use_rnn = true;
    std::uint64_t seed = 1;
};

class PolicyNetwork {
public:
    explicit PolicyNetwork(const PolicyConfig& cfg);

    /// Forward the whole node set; features[i] is node i's [6,S,S] squish
    /// tensor. Returns logits [n, 5]. Caches activations for one backward.
    nn::Tensor forward(const std::vector<nn::Tensor>& features, const Graph& graph);

    /// Inference-only forward through the packed-weight backend
    /// (nn::backend.hpp): weights are repacked once per version into blocked
    /// SIMD layouts and the forward runs through the active kernel table.
    /// Under the scalar backend (CAMO_BACKEND=scalar) the result is bitwise
    /// identical to forward(); under a vector backend it differs by ULP
    /// rounding only. Thread-safe on a const (frozen) network. No backward()
    /// may follow.
    [[nodiscard]] nn::Tensor infer(const std::vector<nn::Tensor>& features,
                                   const Graph& graph) const;

    /// One clip awaiting an action in a batched inference wave.
    struct ClipRequest {
        const std::vector<nn::Tensor>* features = nullptr;
        const Graph* graph = nullptr;
    };

    /// Batched policy evaluation (the DynaPlex SetAction idiom): evaluate
    /// every clip's node set in one pass, concatenating nodes across clips so
    /// the CNN/SAGE/head matmuls run as wide GEMMs instead of per-node GEMVs
    /// (the RNN stays per-clip — it is sequential by construction). Per-row
    /// accumulation order is independent of batch composition, so clip c's
    /// logits are bitwise identical to infer(*clips[c].features,
    /// *clips[c].graph) on every backend. Returns one [n_c, 5] logits tensor
    /// per clip.
    [[nodiscard]] std::vector<nn::Tensor> infer_batch(
        std::span<const ClipRequest> clips) const;

    /// Invalidate the cached packed-weight plan after an out-of-band weight
    /// mutation (e.g. an optimizer step through pointers obtained earlier
    /// from params()). Cheap: the next infer() rebuilds lazily.
    void invalidate_plan() { weights_version_.fetch_add(1, std::memory_order_release); }

    /// Backward from d(logits) [n, 5]; accumulates parameter gradients.
    /// Must follow the matching forward().
    void backward(const nn::Tensor& dlogits);

    std::vector<nn::Parameter*> params();

    /// Copy `src`'s parameter values into this network (architectures must
    /// match). Used by the data-parallel trainer to sync per-worker replicas
    /// with the master weights before each minibatch wave; gradients are
    /// left untouched.
    void copy_weights_from(PolicyNetwork& src);

    void save(const std::string& path);
    [[nodiscard]] bool load(const std::string& path);

    [[nodiscard]] const PolicyConfig& config() const { return cfg_; }

private:
    PolicyConfig cfg_;
    Rng rng_;

    nn::Sequential cnn_;                    // shared encoder -> embed_dim
    std::unique_ptr<nn::Sequential> sage_;  // Linear(2*embed -> embed) + ReLU
    std::unique_ptr<nn::Rnn> rnn_;          // embed -> rnn_hidden
    std::unique_ptr<nn::Sequential> proj_;  // no-RNN path: embed -> rnn_hidden
    nn::Linear head_;                       // rnn_hidden -> 5

    struct Cache {
        Graph graph;
        std::vector<nn::Tape> cnn_tapes;
        std::vector<nn::Tensor> embeds;  // e_i, kept for SAGE backward
        std::vector<nn::Tape> sage_tapes;
        nn::Tape rnn_tape;
        std::vector<nn::Tape> proj_tapes;
        std::vector<nn::Tape> head_tapes;
        int n = 0;
        bool valid = false;
    };
    Cache cache_;

    /// Lazily-built packed-weight plan, keyed by weights_version_. Guarded
    /// by plan_mu_ so concurrent const infer() calls share one rebuild.
    mutable std::shared_ptr<const InferencePlan> plan_;
    mutable std::mutex plan_mu_;
    std::atomic<std::uint64_t> weights_version_{1};

    [[nodiscard]] std::shared_ptr<const InferencePlan> ensure_plan() const;

    /// Shared forward implementation; writes activations into `cache`.
    nn::Tensor run_forward(const std::vector<nn::Tensor>& features, const Graph& graph,
                           Cache& cache) const;
};

}  // namespace camo::core
