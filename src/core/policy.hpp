// CAMO's correlation-aware policy network (paper Section 3.2).
//
// Per node (segment): a shared CNN encodes the [6,S,S] squish tensor into a
// 256-d feature. A GraphSAGE step fuses each node's feature with the mean
// of its graph neighbours' features (capturing spatial correlation among
// nearby segments). A 3-layer Elman RNN then sweeps the node sequence so
// each decision is conditioned on the segments already processed, and a
// final 64x5 linear head emits movement logits.
//
// The RL-OPC baseline [12] is this same class with use_gnn = use_rnn =
// false: per-segment independent decisions from local features only.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "core/graph.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/rnn.hpp"
#include "nn/sequential.hpp"

namespace camo::core {

struct PolicyConfig {
    int squish_size = 32;  ///< S; paper uses 128 (via) / 64 (metal)
    int embed_dim = 256;   ///< GNN output and RNN input width (paper: 256)
    int rnn_hidden = 64;   ///< paper: 64
    int rnn_layers = 3;    ///< paper: 3
    int conv_base = 8;     ///< first conv width; doubles per stage
    bool use_gnn = true;
    bool use_rnn = true;
    std::uint64_t seed = 1;
};

class PolicyNetwork {
public:
    explicit PolicyNetwork(const PolicyConfig& cfg);

    /// Forward the whole node set; features[i] is node i's [6,S,S] squish
    /// tensor. Returns logits [n, 5]. Caches activations for one backward.
    nn::Tensor forward(const std::vector<nn::Tensor>& features, const Graph& graph);

    /// Inference-only forward: identical math to forward(), but activations
    /// live in a call-local cache, so a const (shared, frozen) network can
    /// serve many threads concurrently. No backward() may follow.
    [[nodiscard]] nn::Tensor infer(const std::vector<nn::Tensor>& features,
                                   const Graph& graph) const;

    /// Backward from d(logits) [n, 5]; accumulates parameter gradients.
    /// Must follow the matching forward().
    void backward(const nn::Tensor& dlogits);

    std::vector<nn::Parameter*> params();

    /// Copy `src`'s parameter values into this network (architectures must
    /// match). Used by the data-parallel trainer to sync per-worker replicas
    /// with the master weights before each minibatch wave; gradients are
    /// left untouched.
    void copy_weights_from(PolicyNetwork& src);

    void save(const std::string& path);
    [[nodiscard]] bool load(const std::string& path);

    [[nodiscard]] const PolicyConfig& config() const { return cfg_; }

private:
    PolicyConfig cfg_;
    Rng rng_;

    nn::Sequential cnn_;                    // shared encoder -> embed_dim
    std::unique_ptr<nn::Sequential> sage_;  // Linear(2*embed -> embed) + ReLU
    std::unique_ptr<nn::Rnn> rnn_;          // embed -> rnn_hidden
    std::unique_ptr<nn::Sequential> proj_;  // no-RNN path: embed -> rnn_hidden
    nn::Linear head_;                       // rnn_hidden -> 5

    struct Cache {
        Graph graph;
        std::vector<nn::Tape> cnn_tapes;
        std::vector<nn::Tensor> embeds;  // e_i, kept for SAGE backward
        std::vector<nn::Tape> sage_tapes;
        nn::Tape rnn_tape;
        std::vector<nn::Tape> proj_tapes;
        std::vector<nn::Tape> head_tapes;
        int n = 0;
        bool valid = false;
    };
    Cache cache_;

    /// Shared forward implementation; writes activations into `cache`.
    nn::Tensor run_forward(const std::vector<nn::Tensor>& features, const Graph& graph,
                           Cache& cache) const;
};

}  // namespace camo::core
