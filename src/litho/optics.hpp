// Illumination source sampling and pupil evaluation on the FFT lattice.
//
// Frequencies are indexed on the grid lattice: index k corresponds to the
// physical spatial frequency k / (grid * pixel_nm) cycles per nm, with
// negative indices for the upper half of the FFT range.
#pragma once

#include <complex>
#include <vector>

#include "litho/config.hpp"

namespace camo::litho {

/// Signed frequency lattice index.
struct FreqIndex {
    int kx = 0;
    int ky = 0;
};

/// One source sample point on the frequency lattice with quadrature weight.
struct SourcePoint {
    FreqIndex f;
    double weight = 1.0;
};

/// Lattice points inside the annulus sigma_in..sigma_out (scaled by NA /
/// lambda). All weights are equal; they are normalized downstream.
std::vector<SourcePoint> sample_annular_source(const LithoConfig& cfg);

/// Pupil transmission at lattice frequency f: a hard circular aperture of
/// radius NA / lambda with a paraxial defocus phase
/// exp(-i * pi * lambda * defocus * |f|^2).
std::complex<double> pupil_value(const LithoConfig& cfg, FreqIndex f, double defocus_nm);

/// Largest lattice radius with nonzero TCC support: (1 + sigma_out) * NA /
/// lambda in lattice units, rounded up.
int tcc_support_radius(const LithoConfig& cfg);

/// All lattice frequencies within the TCC support disk, in a deterministic
/// (ky-major) order.
std::vector<FreqIndex> tcc_support_freqs(const LithoConfig& cfg);

}  // namespace camo::litho
