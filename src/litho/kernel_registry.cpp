#include "litho/kernel_registry.hpp"

#include <future>
#include <map>
#include <mutex>

#include "common/logging.hpp"
#include "geometry/polygon.hpp"
#include "litho/kernel_cache.hpp"
#include "litho/tcc.hpp"

namespace camo::litho {
namespace {

// Keyed on (physics hash, cache_dir): cache_dir does not change the kernels,
// but it does change the disk side effect (which cache file gets written), so
// configurations pointing at different cache directories stay distinct.
using RegistryKey = std::pair<std::uint64_t, std::string>;

std::mutex g_registry_mu;
std::map<RegistryKey, std::shared_future<SharedKernels>> g_registry;

// Threshold = aerial intensity at the edge midpoint of a large isolated
// square, so large features print at size and small ones under-print.
double calibrate_threshold(const LithoConfig& cfg, const KernelApplicator& nominal) {
    const double span = cfg.clip_span_nm();
    const int feat = cfg.calibration_feature_nm;
    const int lo = static_cast<int>(span / 2) - feat / 2;
    const int hi = lo + feat;

    geo::Raster mask(cfg.grid, cfg.pixel_nm);
    mask.add_polygon(geo::Polygon::from_rect({lo, lo, hi, hi}));
    mask.clamp01();

    const geo::Raster aerial = nominal.apply(mask_spectrum(mask), cfg.pixel_nm);
    const double threshold = cfg.calibration_fraction * aerial.sample(lo, span / 2.0);
    log_info("calibrated resist threshold = " + std::to_string(threshold));
    return threshold;
}

SharedKernels build_kernels(const LithoConfig& cfg) {
    SharedKernels sk;
    if (auto cached = load_kernel_cache(cfg)) {
        sk.nominal =
            std::make_shared<const KernelApplicator>(std::move(cached->nominal), cfg.grid);
        sk.defocus =
            std::make_shared<const KernelApplicator>(std::move(cached->defocus), cfg.grid);
        sk.threshold = cached->threshold;
        return sk;
    }

    log_info("building SOCS kernels (one-time, shared in-process and cached on disk)");
    KernelSet nom = compute_socs_kernels(cfg, 0.0, cfg.kernels_nominal);
    KernelSet def = compute_socs_kernels(cfg, cfg.defocus_nm, cfg.kernels_defocus);
    sk.nominal = std::make_shared<const KernelApplicator>(std::move(nom), cfg.grid);
    sk.defocus = std::make_shared<const KernelApplicator>(std::move(def), cfg.grid);
    sk.threshold =
        cfg.threshold > 0.0 ? cfg.threshold : calibrate_threshold(cfg, *sk.nominal);
    store_kernel_cache(cfg, {sk.nominal->kernels(), sk.defocus->kernels(), sk.threshold});
    return sk;
}

}  // namespace

SharedKernels acquire_kernels(const LithoConfig& cfg) {
    const RegistryKey key{cfg.physics_hash(), cfg.cache_dir};

    std::promise<SharedKernels> promise;
    std::shared_future<SharedKernels> future;
    bool is_builder = false;
    {
        std::lock_guard<std::mutex> lock(g_registry_mu);
        auto it = g_registry.find(key);
        if (it != g_registry.end()) {
            future = it->second;
        } else {
            is_builder = true;
            future = promise.get_future().share();
            g_registry.emplace(key, future);
        }
    }

    if (is_builder) {
        try {
            promise.set_value(build_kernels(cfg));
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(g_registry_mu);
            g_registry.erase(key);  // waiters still observe the exception
        }
    }
    return future.get();
}

void clear_kernel_registry() {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    g_registry.clear();
}

}  // namespace camo::litho
