#include "litho/kernel_registry.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <map>
#include <mutex>
#include <stdexcept>

#include "common/logging.hpp"
#include "geometry/polygon.hpp"
#include "litho/kernel_cache.hpp"
#include "litho/tcc.hpp"
#include "obs/trace.hpp"

namespace camo::litho {
namespace {

obs::MetricId kernel_build_counter() {
    static const obs::MetricId id = obs::register_counter("kernels.builds");
    return id;
}
obs::MetricId kernel_build_hist() {
    static const obs::MetricId id = obs::register_histogram("kernels.build.ns");
    return id;
}

// Keyed on (physics hash, cache_dir): cache_dir does not change the kernels,
// but it does change the disk side effect (which cache file gets written), so
// configurations pointing at different cache directories stay distinct.
using RegistryKey = std::pair<std::uint64_t, std::string>;

std::mutex g_registry_mu;
std::map<RegistryKey, std::shared_future<SharedKernels>> g_registry;

// Extra focus planes (process-window sweeps beyond the two standard
// conditions), keyed on (physics hash, defocus quantized to 1e-3 nm). These
// never touch the disk cache, so cache_dir is not part of the key.
using FocusKey = std::pair<std::uint64_t, long long>;

std::mutex g_focus_registry_mu;
std::map<FocusKey, std::shared_future<std::shared_ptr<const KernelApplicator>>> g_focus_registry;

// Threshold = aerial intensity at the edge midpoint of a large isolated
// square, so large features print at size and small ones under-print.
double calibrate_threshold(const LithoConfig& cfg, const KernelApplicator& nominal) {
    const double span = cfg.clip_span_nm();
    const int feat = cfg.calibration_feature_nm;
    const int lo = static_cast<int>(span / 2) - feat / 2;
    const int hi = lo + feat;

    geo::Raster mask(cfg.grid, cfg.pixel_nm);
    mask.add_polygon(geo::Polygon::from_rect({lo, lo, hi, hi}));
    mask.clamp01();

    const geo::Raster aerial = nominal.apply(mask_spectrum(mask), cfg.pixel_nm);
    const double threshold = cfg.calibration_fraction * aerial.sample(lo, span / 2.0);
    log_info("calibrated resist threshold = " + std::to_string(threshold));
    return threshold;
}

SharedKernels build_kernels(const LithoConfig& cfg) {
    const obs::Span span("kernels.build", kernel_build_hist());
    obs::counter_add(kernel_build_counter());
    SharedKernels sk;
    if (auto cached = load_kernel_cache(cfg)) {
        sk.nominal =
            std::make_shared<const KernelApplicator>(std::move(cached->nominal), cfg.grid);
        sk.defocus =
            std::make_shared<const KernelApplicator>(std::move(cached->defocus), cfg.grid);
        sk.threshold = cached->threshold;
        return sk;
    }

    log_info("building SOCS kernels (one-time, shared in-process and cached on disk)");
    KernelSet nom = compute_socs_kernels(cfg, 0.0, cfg.kernels_nominal);
    KernelSet def = compute_socs_kernels(cfg, cfg.defocus_nm, cfg.kernels_defocus);
    sk.nominal = std::make_shared<const KernelApplicator>(std::move(nom), cfg.grid);
    sk.defocus = std::make_shared<const KernelApplicator>(std::move(def), cfg.grid);
    sk.threshold =
        cfg.threshold > 0.0 ? cfg.threshold : calibrate_threshold(cfg, *sk.nominal);
    store_kernel_cache(cfg, {sk.nominal->kernels(), sk.defocus->kernels(), sk.threshold});
    return sk;
}

}  // namespace

SharedKernels acquire_kernels(const LithoConfig& cfg) {
    const RegistryKey key{cfg.physics_hash(), cfg.cache_dir};

    std::promise<SharedKernels> promise;
    std::shared_future<SharedKernels> future;
    bool is_builder = false;
    {
        std::lock_guard<std::mutex> lock(g_registry_mu);
        auto it = g_registry.find(key);
        if (it != g_registry.end()) {
            future = it->second;
        } else {
            is_builder = true;
            future = promise.get_future().share();
            g_registry.emplace(key, future);
        }
    }

    if (is_builder) {
        try {
            promise.set_value(build_kernels(cfg));
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(g_registry_mu);
            g_registry.erase(key);  // waiters still observe the exception
        }
    }
    return future.get();
}

int interpolated_kernel_count(const LithoConfig& cfg, double defocus_nm) {
    const double t = cfg.defocus_nm > 0.0
                         ? std::clamp(std::abs(defocus_nm) / cfg.defocus_nm, 0.0, 1.0)
                         : 1.0;
    const double count = cfg.kernels_nominal + t * (cfg.kernels_defocus - cfg.kernels_nominal);
    return std::max(1, static_cast<int>(std::lround(count)));
}

std::shared_ptr<const KernelApplicator> acquire_focus_applicator(const LithoConfig& cfg,
                                                                 double defocus_nm) {
    if (!std::isfinite(defocus_nm)) {
        throw std::invalid_argument("acquire_focus_applicator: defocus must be finite");
    }
    // Standard planes: reuse the acquire_kernels sets (already built or
    // loaded from disk); nothing new is computed.
    if (std::abs(defocus_nm) < kFocusMatchTolNm) return acquire_kernels(cfg).nominal;
    if (std::abs(defocus_nm - cfg.defocus_nm) < kFocusMatchTolNm) {
        return acquire_kernels(cfg).defocus;
    }

    const FocusKey key{cfg.physics_hash(), std::llround(defocus_nm * 1e3)};

    std::promise<std::shared_ptr<const KernelApplicator>> promise;
    std::shared_future<std::shared_ptr<const KernelApplicator>> future;
    bool is_builder = false;
    {
        std::lock_guard<std::mutex> lock(g_focus_registry_mu);
        auto it = g_focus_registry.find(key);
        if (it != g_focus_registry.end()) {
            future = it->second;
        } else {
            is_builder = true;
            future = promise.get_future().share();
            g_focus_registry.emplace(key, future);
        }
    }

    if (is_builder) {
        try {
            const obs::Span span("kernels.build", kernel_build_hist());
            obs::counter_add(kernel_build_counter());
            log_info("building SOCS kernels for focus plane " + std::to_string(defocus_nm) +
                     " nm (one-time, shared in-process)");
            KernelSet ks =
                compute_socs_kernels(cfg, defocus_nm, interpolated_kernel_count(cfg, defocus_nm));
            promise.set_value(
                std::make_shared<const KernelApplicator>(std::move(ks), cfg.grid));
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(g_focus_registry_mu);
            g_focus_registry.erase(key);  // waiters still observe the exception
        }
    }
    return future.get();
}

void clear_kernel_registry() {
    {
        std::lock_guard<std::mutex> lock(g_registry_mu);
        g_registry.clear();
    }
    std::lock_guard<std::mutex> lock(g_focus_registry_mu);
    g_focus_registry.clear();
}

}  // namespace camo::litho
