// Incremental lithography evaluation.
//
// The full path re-rasterizes the whole clip and runs a dense 2D FFT on
// every call, yet the SOCS kernels read the mask spectrum only at their
// small frequency support, and consecutive OPC iterations move only the
// segments the policy acted on. The incremental path exploits both:
//
//   * The mask raster is cached as a double-precision coverage accumulator.
//     When a dirty segment set arrives, only the owning polygons are
//     re-rasterized, restricted to their pixel footprint
//     (geo::add_polygon_region), and the old polygon's contribution is
//     subtracted exactly — per-pixel coverage is a pure function of
//     (polygon, pixel), so the cache never drifts from a from-scratch
//     rasterization beyond double rounding.
//   * The mask spectrum is cached only at the union of the kernel support
//     frequencies and updated with a sparse delta-DFT over the pixels whose
//     clamped coverage changed: O(|delta pixels| * |support|) instead of
//     O(N^2 log N).
//   * Aerial images are produced by SupportApplicator, which evaluates the
//     SOCS sum on a small coarse grid m >= 4R+2 (R = support radius). The
//     coherent fields are band-limited to R and the intensity to 2R, so the
//     coarse intensity is an exact band-limited representation; one forward
//     FFT at m and one row-sparse inverse FFT at N reconstruct the full-grid
//     aerial image. This replaces the K per-kernel N-grid inverse FFTs of
//     the dense path with K m-grid ones.
//
// Equivalence contract (tested in tests/test_litho_incremental.cpp): the
// incremental path is mathematically identical to LithoSim::evaluate but
// floats through a different (shorter) computation, so metrics agree to
// float rounding, not bit-for-bit:
//   * EPE per segment within kIncrementalEpeTolNm;
//   * PV band within kIncrementalPvbPixelSlack border pixels. The
//     epsilon-stable pixel_prints predicate (litho/metrics.hpp) removes the
//     exact-tie divergence — a pixel whose true intensity sits on
//     threshold * dose now prints on both paths — so the remaining slack
//     only covers pixels whose intensity the two float pipelines genuinely
//     place on opposite sides of the (epsilon-shifted) contour.
// With an empty dirty set and unchanged offsets the cached metrics are
// returned unchanged (exact). The evaluator verifies the caller's dirty set
// against its cached offsets, so a stale or incomplete hint degrades to a
// larger re-rasterization (or a full rebuild), never to a wrong answer.
#pragma once

#include <complex>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "geometry/layout.hpp"
#include "geometry/raster.hpp"
#include "litho/config.hpp"
#include "litho/fft.hpp"
#include "litho/metrics.hpp"
#include "litho/process_window.hpp"
#include "litho/tcc.hpp"

namespace camo::litho {

/// Documented equivalence tolerances between the full and incremental paths.
inline constexpr double kIncrementalEpeTolNm = 1e-3;
inline constexpr double kIncrementalPvbPixelSlack = 4.0;  ///< border pixels that may flip

/// Applies one SOCS kernel set to a mask spectrum sampled at the kernel
/// support only. Kernel coefficients are stored as one contiguous
/// kernel-major array so the per-kernel multiply is a flat FMA-able complex
/// multiply-accumulate over contiguous spans.
class SupportApplicator {
public:
    SupportApplicator(const KernelSet& kernels, int grid);

    /// I(x) from support-sampled spectrum values (support_vals[i] is the
    /// mask spectrum at kernels().support[i]); returned on the full grid.
    [[nodiscard]] geo::Raster apply(std::span<const Complex> support_vals,
                                    double pixel_nm) const;

    [[nodiscard]] int support_size() const { return static_cast<int>(mpos_.size()); }
    [[nodiscard]] int coarse_grid() const { return m_; }

private:
    int n_ = 0;        ///< fine (mask) grid
    int m_ = 0;        ///< coarse grid, smallest pow2 >= 4*radius + 2
    int kernels_ = 0;  ///< kernel count
    std::vector<float> eigenvalues_;
    std::vector<Complex> coeffs_;             ///< kernel-major [k * S + i]
    std::vector<int> mpos_;                   ///< wrapped coarse index per support entry
    std::vector<std::uint8_t> mrow_nonzero_;  ///< occupied coarse rows
    // Band-limited upsample m -> n (unused when m_ == n_):
    std::vector<int> band_src_;               ///< coarse flat index per band frequency
    std::vector<int> band_dst_;               ///< fine flat index per band frequency
    std::vector<std::uint8_t> nrow_nonzero_;  ///< occupied fine rows (|ky| <= 2R)
    float upsample_scale_ = 1.0F;             ///< m^2 / n^2
};

/// Per-clip incremental evaluation state. One instance per LithoSim; not
/// thread-safe (the batch runtime gives each worker its own simulator).
class IncrementalEvaluator {
public:
    IncrementalEvaluator(const LithoConfig& cfg, double threshold, const KernelSet& nominal,
                         const KernelSet& defocus);

    /// Full evaluation that (re)primes the cache for `layout` + `offsets`.
    SimMetrics evaluate_full(const geo::SegmentedLayout& layout, std::span<const int> offsets);

    /// Evaluation where only `dirty` segment indices changed since the last
    /// call. Falls back to evaluate_full() when the cache does not match
    /// this layout or the verified dirty set exceeds
    /// cfg.incremental_fallback_fraction of the segments.
    SimMetrics evaluate(const geo::SegmentedLayout& layout, std::span<const int> offsets,
                        std::span<const int> dirty);

    /// Multi-corner window evaluation on the cached raster + spectrum: the
    /// cache is refreshed exactly as evaluate() would (unchanged offsets
    /// reuse it outright, small moves go through the sparse delta-DFT, big
    /// moves rebuild), then ONE aerial per focus plane is produced from the
    /// cached support spectrum through per-focus SupportApplicators — no
    /// per-corner rasterization or forward FFT. Extra focus planes acquire
    /// their kernel sets from the registry on first use and are cached on
    /// this evaluator. Metrics match the dense ProcessWindowSweep within the
    /// incremental tolerances above. Refreshes the cached standard metrics,
    /// so interleaving with evaluate() stays consistent.
    WindowMetrics evaluate_window(const geo::SegmentedLayout& layout,
                                  std::span<const int> offsets, const WindowSpec& spec);

    /// Window evaluation that always (re)primes the cache with a full
    /// rebuild first — the window counterpart of evaluate_full(), used for a
    /// job's first evaluation so results never depend on what this evaluator
    /// saw before (the batch determinism contract).
    WindowMetrics evaluate_window_full(const geo::SegmentedLayout& layout,
                                       std::span<const int> offsets, const WindowSpec& spec);

    [[nodiscard]] long long incremental_count() const { return incremental_count_; }
    [[nodiscard]] long long full_count() const { return full_count_; }

private:
    struct PixelDelta {
        int row = 0;
        int col = 0;
        double d = 0.0;  ///< change of the clamped coverage value
    };

    /// Lazily-built applicator for one extra focus plane of a window sweep.
    struct FocusPlane {
        double defocus_nm = 0.0;
        SupportApplicator applicator;
        std::vector<int> map;  ///< support index -> union spectrum index

        FocusPlane(double f, SupportApplicator app, std::vector<int> m)
            : defocus_nm(f), applicator(std::move(app)), map(std::move(m)) {}
    };

    /// How refresh_cache() brought the cache up to date with `offsets`.
    enum class CacheUpdate { kUnchanged, kSparse, kRebuilt };

    CacheUpdate refresh_cache(const geo::SegmentedLayout& layout, std::span<const int> offsets);
    /// Shared tail of the window paths: images every corner from the (just
    /// refreshed) cache and keeps the cached standard metrics consistent.
    WindowMetrics window_from_cache(const geo::SegmentedLayout& layout, const WindowSpec& spec,
                                    CacheUpdate update);
    void rebuild_cache(const geo::SegmentedLayout& layout, std::span<const int> offsets);
    void apply_polygon_delta(const geo::Polygon& old_poly, const geo::Polygon& new_poly,
                             std::vector<PixelDelta>& deltas);
    void accumulate_polygon(const geo::Polygon& poly, double weight, std::vector<float>& scratch);
    void update_spectrum(const std::vector<PixelDelta>& deltas);
    [[nodiscard]] SimMetrics metrics_from_cache(const geo::SegmentedLayout& layout) const;
    [[nodiscard]] geo::Polygon translated_polygon(const geo::SegmentedLayout& layout, int p,
                                                  std::span<const int> offsets) const;

    /// Union-spectrum index of `f`, extending the union (and computing the
    /// new entry from the cached mask by direct DFT) if a focus plane's
    /// support introduces a frequency the two standard sets lack.
    int union_index(int kx, int ky);
    /// Applicator + gather map for one focus plane (standard planes resolve
    /// to the members built at construction, extra planes are built lazily).
    [[nodiscard]] std::pair<const SupportApplicator*, const std::vector<int>*> plane_for(
        double defocus_nm);
    [[nodiscard]] geo::Raster aerial_from_cache(const SupportApplicator& applicator,
                                                const std::vector<int>& map) const;

    LithoConfig cfg_;
    double threshold_ = 0.0;
    SupportApplicator nominal_;
    SupportApplicator defocus_;

    // Union of the kernel supports (the two standard sets plus any extra
    // focus planes) and per-condition gather maps.
    std::vector<int> union_kx_;  ///< wrapped kx per union frequency
    std::vector<int> union_ky_;  ///< wrapped ky per union frequency
    std::vector<int> union_pos_;  ///< wrapped fine-grid flat index per union frequency
    std::map<std::pair<int, int>, int> union_lookup_;  ///< (kx, ky) -> union index
    std::vector<int> map_nominal_;
    std::vector<int> map_defocus_;
    std::vector<std::unique_ptr<FocusPlane>> extra_planes_;  ///< window sweep planes
    std::vector<std::complex<double>> twiddle_;  ///< exp(-2*pi*i*t/n), t in [0, n)

    // Cache keyed on the layout's content fingerprint (targets + SRAFs +
    // clip size), never on its address: a destroyed layout's address can be
    // reused by a different clip with the same segment count.
    std::uint64_t layout_key_ = 0;
    bool cache_valid_ = false;
    int clip_size_nm_ = 0;
    int clip_offset_ = 0;
    std::vector<int> offsets_;
    std::vector<geo::Polygon> poly_cache_;  ///< translated mask polygon per target
    std::vector<double> acc_;               ///< unclamped signed coverage accumulator
    std::vector<float> clamped_;            ///< clamp01 of acc_, the effective mask
    std::vector<std::complex<double>> spectrum_;  ///< mask spectrum at union support
    SimMetrics metrics_;                          ///< metrics of the cached state

    long long incremental_count_ = 0;
    long long full_count_ = 0;
};

}  // namespace camo::litho
