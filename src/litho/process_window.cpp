#include "litho/process_window.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "litho/kernel_registry.hpp"
#include "obs/trace.hpp"

namespace camo::litho {
namespace {

obs::MetricId sweep_counter() {
    static const obs::MetricId id = obs::register_counter("window.sweeps");
    return id;
}
obs::MetricId sweep_hist() {
    static const obs::MetricId id = obs::register_histogram("window.sweep.ns");
    return id;
}
obs::MetricId focus_plane_hist() {
    static const obs::MetricId id = obs::register_histogram("window.focus_plane.ns");
    return id;
}

}  // namespace

WindowSpec WindowSpec::standard(const LithoConfig& cfg) {
    WindowSpec spec;
    spec.doses = {cfg.dose_min, 1.0, cfg.dose_max};
    spec.defocus_nm = {0.0, cfg.defocus_nm};
    return spec;
}

int WindowSpec::find_focus(double defocus) const {
    for (int f = 0; f < focus_count(); ++f) {
        if (std::abs(defocus_nm[static_cast<std::size_t>(f)] - defocus) < kFocusMatchTolNm) {
            return f;
        }
    }
    return -1;
}

void WindowSpec::validate() const {
    if (doses.empty()) throw std::invalid_argument("WindowSpec: no doses");
    if (defocus_nm.empty()) throw std::invalid_argument("WindowSpec: no focus planes");
    for (double d : doses) {
        if (!(d > 0.0) || !std::isfinite(d)) {
            throw std::invalid_argument("WindowSpec: dose must be finite and > 0");
        }
    }
    for (double f : defocus_nm) {
        if (!std::isfinite(f)) throw std::invalid_argument("WindowSpec: focus must be finite");
    }
}

const CornerResult* WindowMetrics::nominal_corner() const {
    for (const CornerResult& c : corners) {
        if (std::abs(c.corner.dose - 1.0) < 1e-12 &&
            std::abs(c.corner.defocus_nm) < kFocusMatchTolNm) {
            return &c;
        }
    }
    return nullptr;
}

WindowMetrics window_metrics_from_aerials(const geo::SegmentedLayout& layout,
                                          const WindowSpec& spec,
                                          std::span<const geo::Raster> aerials,
                                          double threshold, double clip_offset_nm,
                                          const LithoConfig& cfg) {
    spec.validate();
    if (static_cast<int>(aerials.size()) != spec.focus_count()) {
        throw std::invalid_argument("window_metrics_from_aerials: one aerial per focus plane");
    }

    WindowMetrics wm;
    wm.corners.reserve(static_cast<std::size_t>(spec.corner_count()));

    const double px = aerials.empty() ? cfg.pixel_nm : aerials[0].pixel_nm();
    const double px2 = px * px;

    for (int i = 0; i < spec.corner_count(); ++i) {
        const Corner corner = spec.corner(i);
        const int f = i / spec.dose_count();
        const geo::Raster& aerial = aerials[static_cast<std::size_t>(f)];

        CornerResult res;
        res.corner = corner;
        // The printed contour at dose d is the threshold / d level set, so
        // per-corner EPE is the standard profile at an effective threshold.
        // For dose 1.0 the division is exact and the profile is bit-identical
        // to LithoSim::evaluate's.
        res.metrics = compute_epe_profile(layout, aerial, threshold / corner.dose,
                                          clip_offset_nm, cfg.epe_range_nm);

        long long printed = 0;
        for (float v : aerial.data()) {
            if (pixel_prints(v, corner.dose, threshold)) ++printed;
        }
        res.printed_area_nm2 = static_cast<double>(printed) * px2;

        if (wm.worst_corner < 0 || res.metrics.sum_abs_epe > wm.worst_epe) {
            wm.worst_corner = i;
            wm.worst_epe = res.metrics.sum_abs_epe;
        }
        if (wm.corners.empty()) {
            wm.cd_min_nm2 = wm.cd_max_nm2 = res.printed_area_nm2;
        } else {
            wm.cd_min_nm2 = std::min(wm.cd_min_nm2, res.printed_area_nm2);
            wm.cd_max_nm2 = std::max(wm.cd_max_nm2, res.printed_area_nm2);
        }
        wm.corners.push_back(std::move(res));
    }

    // Exact PV band. Printing is monotone in dose (I * d >= thr'), so the
    // union over corners is the union over focus planes at the largest dose
    // and the intersection is the intersection at the smallest dose; one
    // pass over the pixels covers the whole grid of corners. The
    // intersection is a subset of the union, so the band is their area
    // difference.
    const double dose_lo = *std::min_element(spec.doses.begin(), spec.doses.end());
    const double dose_hi = *std::max_element(spec.doses.begin(), spec.doses.end());
    const std::size_t nn = aerials[0].data().size();
    long long in_union = 0;
    long long in_intersection = 0;
    for (std::size_t p = 0; p < nn; ++p) {
        bool any_outer = false;
        bool all_inner = true;
        for (const geo::Raster& aerial : aerials) {
            const float v = aerial.data()[p];
            any_outer = any_outer || pixel_prints(v, dose_hi, threshold);
            all_inner = all_inner && pixel_prints(v, dose_lo, threshold);
        }
        if (any_outer) ++in_union;
        if (all_inner) ++in_intersection;
    }
    wm.pv_band_exact_nm2 = static_cast<double>(in_union - in_intersection) * px2;

    // Legacy two-corner approximation when both standard planes are
    // present, over THIS window's dose extremes so the exact band above is
    // a pixelwise superset for any spec (on the standard window these are
    // cfg.dose_min/dose_max and the value equals SimMetrics::pvband_nm2).
    const int f_best = spec.find_focus(0.0);
    const int f_def = spec.find_focus(cfg.defocus_nm);
    if (f_best >= 0 && f_def >= 0) {
        wm.pv_band_two_corner_nm2 =
            pv_band_nm2(aerials[static_cast<std::size_t>(f_best)],
                        aerials[static_cast<std::size_t>(f_def)], threshold, dose_lo, dose_hi);
    }
    return wm;
}

ProcessWindowSweep::ProcessWindowSweep(const LithoConfig& cfg, WindowSpec spec)
    : cfg_(cfg), spec_(std::move(spec)) {
    spec_.validate();
    const SharedKernels kernels = acquire_kernels(cfg_);
    threshold_ = cfg_.threshold > 0.0 ? cfg_.threshold : kernels.threshold;
    planes_.reserve(spec_.defocus_nm.size());
    for (double f : spec_.defocus_nm) planes_.push_back(acquire_focus_applicator(cfg_, f));
}

WindowMetrics ProcessWindowSweep::evaluate(const geo::SegmentedLayout& layout,
                                           std::span<const int> offsets) const {
    if (static_cast<int>(offsets.size()) != layout.num_segments()) {
        throw std::invalid_argument("ProcessWindowSweep::evaluate: offsets size mismatch");
    }
    const obs::Span span("window.sweep", sweep_hist());
    obs::counter_add(sweep_counter());
    const auto mask_polys = layout.reconstruct_mask(offsets);
    const geo::Raster mask =
        rasterize_clip(cfg_, mask_polys, layout.srafs(), layout.clip_size_nm());
    const std::vector<Complex> spectrum = mask_spectrum(mask);

    std::vector<geo::Raster> aerials;
    aerials.reserve(planes_.size());
    for (const auto& plane : planes_) {
        const obs::Span plane_span("window.focus_plane", focus_plane_hist());
        aerials.push_back(plane->apply(spectrum, cfg_.pixel_nm));
    }

    const double clip_offset = cfg_.clip_frame_offset_nm(layout.clip_size_nm());
    return window_metrics_from_aerials(layout, spec_, aerials, threshold_, clip_offset, cfg_);
}

}  // namespace camo::litho
