#include "litho/metrics.hpp"

#include <cmath>

namespace camo::litho {

double measure_epe(const geo::Raster& aerial, double threshold, geo::FPoint pos,
                   geo::FPoint normal, double range_nm) {
    const double step = 0.5;
    auto g = [&](double d) {
        return aerial.sample(pos.x + d * normal.x, pos.y + d * normal.y) - threshold;
    };

    const double g0 = g(0.0);
    if (g0 >= 0.0) {
        // Printed at the edge: contour lies at or beyond; search outward.
        double prev = g0;
        for (double d = step; d <= range_nm + 1e-9; d += step) {
            const double cur = g(d);
            if (cur < 0.0) {
                const double t = prev / (prev - cur);
                return d - step + t * step;
            }
            prev = cur;
        }
        return range_nm;
    }
    // Not printed at the edge: contour receded inside; search inward.
    double prev = g0;
    for (double d = -step; d >= -range_nm - 1e-9; d -= step) {
        const double cur = g(d);
        if (cur >= 0.0) {
            // Crossing between d (printed) and d + step (not printed).
            const double t = cur / (cur - prev);
            return d + t * step;
        }
        prev = cur;
    }
    return -range_nm;
}

double pv_band_nm2(const geo::Raster& aerial_nominal, const geo::Raster& aerial_defocus,
                   double threshold, double dose_min, double dose_max) {
    const auto nom = aerial_nominal.data();
    const auto def = aerial_defocus.data();
    const double px = aerial_nominal.pixel_nm();

    long long band = 0;
    for (std::size_t i = 0; i < nom.size(); ++i) {
        const bool outer = pixel_prints(nom[i], dose_max, threshold);
        const bool inner = pixel_prints(def[i], dose_min, threshold);
        if (outer && !inner) ++band;
    }
    return static_cast<double>(band) * px * px;
}

SimMetrics compute_epe_profile(const geo::SegmentedLayout& layout, const geo::Raster& aerial,
                               double threshold, double clip_offset_nm, double epe_range_nm) {
    SimMetrics m;
    m.epe_segment.reserve(layout.segments().size());
    for (const geo::Segment& s : layout.segments()) {
        const geo::FPoint c = s.control();
        const double epe =
            measure_epe(aerial, threshold, {c.x + clip_offset_nm, c.y + clip_offset_nm},
                        s.normal(), epe_range_nm);
        m.epe_segment.push_back(epe);
        if (s.measured) {
            m.epe.push_back(epe);
            m.sum_abs_epe += std::abs(epe);
        }
    }
    return m;
}

SimMetrics compute_sim_metrics(const geo::SegmentedLayout& layout, const geo::Raster& nominal,
                               const geo::Raster& defocus, double threshold,
                               double clip_offset_nm, double epe_range_nm, double dose_min,
                               double dose_max) {
    SimMetrics m = compute_epe_profile(layout, nominal, threshold, clip_offset_nm, epe_range_nm);
    m.pvband_nm2 = pv_band_nm2(nominal, defocus, threshold, dose_min, dose_max);
    return m;
}

}  // namespace camo::litho
