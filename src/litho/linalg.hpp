// Small dense linear-algebra routines for the SOCS decomposition. These
// operate on matrices of at most a few dozen rows (the Rayleigh-Ritz
// projection), so a classic cyclic Jacobi iteration is both simple and
// accurate enough.
#pragma once

#include <vector>

namespace camo::litho {

/// Eigendecomposition of a real symmetric n-by-n matrix `a` (row-major,
/// destroyed). Returns eigenvalues (unsorted); `v` receives the matching
/// eigenvectors as columns (v[r * n + c] = component r of eigenvector c).
std::vector<double> jacobi_eig_symmetric(std::vector<double> a, int n, std::vector<double>& v);

}  // namespace camo::litho
