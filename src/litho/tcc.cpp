#include "litho/tcc.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "litho/linalg.hpp"

namespace camo::litho {
namespace {

using Cd = std::complex<double>;

// Dense Hermitian TCC stored row-major (m x m).
struct TccMatrix {
    int m = 0;
    std::vector<Cd> a;

    Cd& at(int r, int c) { return a[static_cast<std::size_t>(r) * m + c]; }
    [[nodiscard]] Cd get(int r, int c) const { return a[static_cast<std::size_t>(r) * m + c]; }
};

TccMatrix build_tcc(const LithoConfig& cfg, double defocus_nm,
                    const std::vector<FreqIndex>& freqs) {
    const int m = static_cast<int>(freqs.size());
    TccMatrix t;
    t.m = m;
    t.a.assign(static_cast<std::size_t>(m) * m, Cd{0.0, 0.0});

    const auto source = sample_annular_source(cfg);

    std::vector<int> idx;
    std::vector<Cd> val;
    idx.reserve(static_cast<std::size_t>(m));
    val.reserve(static_cast<std::size_t>(m));

    for (const SourcePoint& s : source) {
        idx.clear();
        val.clear();
        for (int i = 0; i < m; ++i) {
            const FreqIndex f{freqs[static_cast<std::size_t>(i)].kx + s.f.kx,
                              freqs[static_cast<std::size_t>(i)].ky + s.f.ky};
            const Cd p = pupil_value(cfg, f, defocus_nm);
            if (p != Cd{0.0, 0.0}) {
                idx.push_back(i);
                val.push_back(p);
            }
        }
        const int k = static_cast<int>(idx.size());
        for (int ii = 0; ii < k; ++ii) {
            const Cd wa = s.weight * val[static_cast<std::size_t>(ii)];
            const int r = idx[static_cast<std::size_t>(ii)];
            for (int jj = ii; jj < k; ++jj) {
                t.at(r, idx[static_cast<std::size_t>(jj)]) +=
                    wa * std::conj(val[static_cast<std::size_t>(jj)]);
            }
        }
    }

    // Mirror the upper triangle (Hermitian).
    for (int r = 0; r < m; ++r) {
        for (int c = r + 1; c < m; ++c) t.at(c, r) = std::conj(t.get(r, c));
    }
    return t;
}

// y = T x for column vectors stored contiguously.
void tcc_matvec(const TccMatrix& t, const std::vector<Cd>& x, std::vector<Cd>& y) {
    const int m = t.m;
    for (int r = 0; r < m; ++r) {
        Cd acc{0.0, 0.0};
        const Cd* row = &t.a[static_cast<std::size_t>(r) * m];
        for (int c = 0; c < m; ++c) acc += row[c] * x[static_cast<std::size_t>(c)];
        y[static_cast<std::size_t>(r)] = acc;
    }
}

// Modified Gram-Schmidt orthonormalization of `cols` (each length m).
void orthonormalize(std::vector<std::vector<Cd>>& cols) {
    for (std::size_t j = 0; j < cols.size(); ++j) {
        for (std::size_t i = 0; i < j; ++i) {
            Cd dot{0.0, 0.0};
            for (std::size_t k = 0; k < cols[j].size(); ++k) {
                dot += std::conj(cols[i][k]) * cols[j][k];
            }
            for (std::size_t k = 0; k < cols[j].size(); ++k) cols[j][k] -= dot * cols[i][k];
        }
        double norm2 = 0.0;
        for (const Cd& c : cols[j]) norm2 += std::norm(c);
        const double norm = std::sqrt(norm2);
        if (norm < 1e-14) {
            std::fill(cols[j].begin(), cols[j].end(), Cd{0.0, 0.0});
            continue;
        }
        for (Cd& c : cols[j]) c /= norm;
    }
}

}  // namespace

double tcc_trace(const LithoConfig& cfg, double defocus_nm) {
    // trace = sum_f sum_s w_s |P(s+f)|^2, computed without storing the matrix.
    const auto freqs = tcc_support_freqs(cfg);
    const auto source = sample_annular_source(cfg);
    double tr = 0.0;
    for (const FreqIndex& f : freqs) {
        for (const SourcePoint& s : source) {
            tr += s.weight * std::norm(pupil_value(cfg, {f.kx + s.f.kx, f.ky + s.f.ky}, defocus_nm));
        }
    }
    return tr;
}

KernelSet compute_socs_kernels(const LithoConfig& cfg, double defocus_nm, int count,
                               std::uint64_t seed) {
    const auto freqs = tcc_support_freqs(cfg);
    const int m = static_cast<int>(freqs.size());
    const TccMatrix t = build_tcc(cfg, defocus_nm, freqs);

    const int r = std::min(m, count + 8);

    // Randomized subspace iteration: Q spans the dominant eigenspace.
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> gauss(0.0, 1.0);
    std::vector<std::vector<Cd>> q(static_cast<std::size_t>(r),
                                   std::vector<Cd>(static_cast<std::size_t>(m)));
    for (auto& col : q) {
        for (Cd& c : col) c = Cd{gauss(rng), gauss(rng)};
    }
    orthonormalize(q);

    std::vector<Cd> tmp(static_cast<std::size_t>(m));
    const int power_iters = 3;
    for (int it = 0; it < power_iters; ++it) {
        for (auto& col : q) {
            tcc_matvec(t, col, tmp);
            col = tmp;
        }
        orthonormalize(q);
    }

    // Rayleigh-Ritz projection S = Q^H T Q (r x r Hermitian).
    std::vector<std::vector<Cd>> tq(static_cast<std::size_t>(r),
                                    std::vector<Cd>(static_cast<std::size_t>(m)));
    for (int j = 0; j < r; ++j) tcc_matvec(t, q[static_cast<std::size_t>(j)], tq[static_cast<std::size_t>(j)]);

    std::vector<Cd> s(static_cast<std::size_t>(r) * r);
    for (int i = 0; i < r; ++i) {
        for (int j = 0; j < r; ++j) {
            Cd dot{0.0, 0.0};
            for (int k = 0; k < m; ++k) {
                dot += std::conj(q[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)]) *
                       tq[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)];
            }
            s[static_cast<std::size_t>(i) * r + j] = dot;
        }
    }

    // Real symmetric embedding [[Re, -Im], [Im, Re]]: each complex eigenpair
    // of S appears twice; duplicates are removed by complex-overlap testing.
    const int n2 = 2 * r;
    std::vector<double> emb(static_cast<std::size_t>(n2) * n2, 0.0);
    for (int i = 0; i < r; ++i) {
        for (int j = 0; j < r; ++j) {
            const Cd v = s[static_cast<std::size_t>(i) * r + j];
            emb[static_cast<std::size_t>(i) * n2 + j] = v.real();
            emb[static_cast<std::size_t>(i) * n2 + (j + r)] = -v.imag();
            emb[static_cast<std::size_t>(i + r) * n2 + j] = v.imag();
            emb[static_cast<std::size_t>(i + r) * n2 + (j + r)] = v.real();
        }
    }
    std::vector<double> vecs;
    std::vector<double> eig = jacobi_eig_symmetric(std::move(emb), n2, vecs);

    std::vector<int> order(static_cast<std::size_t>(n2));
    for (int i = 0; i < n2; ++i) order[static_cast<std::size_t>(i)] = i;
    std::sort(order.begin(), order.end(), [&eig](int a, int b) {
        return eig[static_cast<std::size_t>(a)] > eig[static_cast<std::size_t>(b)];
    });

    // Collect unique complex Ritz vectors w (length r).
    std::vector<std::pair<double, std::vector<Cd>>> ritz;
    for (int oi = 0; oi < n2 && static_cast<int>(ritz.size()) < count; ++oi) {
        const int col = order[static_cast<std::size_t>(oi)];
        std::vector<Cd> w(static_cast<std::size_t>(r));
        for (int i = 0; i < r; ++i) {
            w[static_cast<std::size_t>(i)] = Cd{vecs[static_cast<std::size_t>(i) * n2 + col],
                                                vecs[static_cast<std::size_t>(i + r) * n2 + col]};
        }
        double norm2 = 0.0;
        for (const Cd& c : w) norm2 += std::norm(c);
        if (norm2 < 1e-12) continue;
        for (Cd& c : w) c /= std::sqrt(norm2);

        bool duplicate = false;
        for (const auto& [lam, kept] : ritz) {
            Cd dot{0.0, 0.0};
            for (int i = 0; i < r; ++i) dot += std::conj(kept[static_cast<std::size_t>(i)]) * w[static_cast<std::size_t>(i)];
            if (std::abs(dot) > 0.99) {
                duplicate = true;
                break;
            }
        }
        if (!duplicate) ritz.emplace_back(std::max(0.0, eig[static_cast<std::size_t>(col)]), std::move(w));
    }

    KernelSet out;
    out.support = freqs;
    for (const auto& [lam, w] : ritz) {
        std::vector<std::complex<float>> coeff(static_cast<std::size_t>(m));
        for (int k = 0; k < m; ++k) {
            Cd acc{0.0, 0.0};
            for (int j = 0; j < r; ++j) {
                acc += q[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)] *
                       w[static_cast<std::size_t>(j)];
            }
            coeff[static_cast<std::size_t>(k)] = std::complex<float>(
                static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
        }
        out.eigenvalues.push_back(lam);
        out.coeffs.push_back(std::move(coeff));
    }
    return out;
}

}  // namespace camo::litho
