#include "litho/simulator.hpp"

#include <stdexcept>

#include "litho/incremental.hpp"
#include "litho/kernel_registry.hpp"
#include "obs/trace.hpp"

namespace camo::litho {
namespace {

// Telemetry handles for the evaluation facade. `litho.evaluations` counts
// every evaluate* entry point — the same events as the per-instance
// evaluate_count_, so the registry total equals the sum over simulators
// (what BatchResult::litho_evaluations reports per batch).
obs::MetricId eval_counter() {
    static const obs::MetricId id = obs::register_counter("litho.evaluations");
    return id;
}
obs::MetricId eval_hist() {
    static const obs::MetricId id = obs::register_histogram("litho.evaluate.ns");
    return id;
}
obs::MetricId eval_incremental_hist() {
    static const obs::MetricId id = obs::register_histogram("litho.evaluate_incremental.ns");
    return id;
}
obs::MetricId window_hist() {
    static const obs::MetricId id = obs::register_histogram("litho.evaluate_window.ns");
    return id;
}

}  // namespace

LithoSim::LithoSim(LithoConfig cfg) : cfg_(std::move(cfg)) {
    if (!is_pow2(cfg_.grid)) throw std::invalid_argument("LithoSim: grid must be a power of two");

    const SharedKernels kernels = acquire_kernels(cfg_);
    nominal_ = kernels.nominal;
    defocus_ = kernels.defocus;
    threshold_ = cfg_.threshold > 0.0 ? cfg_.threshold : kernels.threshold;
}

LithoSim::LithoSim(const LithoSim& other)
    : cfg_(other.cfg_),
      threshold_(other.threshold_),
      nominal_(other.nominal_),
      defocus_(other.defocus_) {}

LithoSim::~LithoSim() = default;

int LithoSim::clip_offset_nm(int clip_size_nm) const {
    return cfg_.clip_frame_offset_nm(clip_size_nm);
}

geo::Raster LithoSim::rasterize(std::span<const geo::Polygon> mask,
                                std::span<const geo::Polygon> srafs,
                                int clip_size_nm) const {
    return rasterize_clip(cfg_, mask, srafs, clip_size_nm);
}

geo::Raster LithoSim::aerial_nominal(const geo::Raster& mask) const {
    return nominal_->apply(mask_spectrum(mask), cfg_.pixel_nm);
}

geo::Raster LithoSim::aerial_defocus(const geo::Raster& mask) const {
    return defocus_->apply(mask_spectrum(mask), cfg_.pixel_nm);
}

SimMetrics LithoSim::evaluate(const geo::SegmentedLayout& layout,
                              std::span<const int> offsets) const {
    const obs::Span span("litho.evaluate", eval_hist());
    evaluate_count_.fetch_add(1, std::memory_order_relaxed);
    obs::counter_add(eval_counter());
    const auto mask_polys = layout.reconstruct_mask(offsets);
    const geo::Raster mask = rasterize(mask_polys, layout.srafs(), layout.clip_size_nm());

    const std::vector<Complex> spectrum = mask_spectrum(mask);
    const geo::Raster nom = nominal_->apply(spectrum, cfg_.pixel_nm);
    const geo::Raster def = defocus_->apply(spectrum, cfg_.pixel_nm);

    return compute_sim_metrics(layout, nom, def, threshold_,
                               clip_offset_nm(layout.clip_size_nm()), cfg_.epe_range_nm,
                               cfg_.dose_min, cfg_.dose_max);
}

SimMetrics LithoSim::evaluate_incremental(const geo::SegmentedLayout& layout,
                                          std::span<const int> offsets) {
    const obs::Span span("litho.evaluate_incremental", eval_incremental_hist());
    evaluate_count_.fetch_add(1, std::memory_order_relaxed);
    obs::counter_add(eval_counter());
    if (!incremental_) {
        incremental_ = std::make_unique<IncrementalEvaluator>(cfg_, threshold_,
                                                              nominal_->kernels(),
                                                              defocus_->kernels());
    }
    return incremental_->evaluate_full(layout, offsets);
}

SimMetrics LithoSim::evaluate_incremental(const geo::SegmentedLayout& layout,
                                          std::span<const int> offsets,
                                          std::span<const int> dirty) {
    const obs::Span span("litho.evaluate_incremental", eval_incremental_hist());
    evaluate_count_.fetch_add(1, std::memory_order_relaxed);
    obs::counter_add(eval_counter());
    if (!incremental_) {
        incremental_ = std::make_unique<IncrementalEvaluator>(cfg_, threshold_,
                                                              nominal_->kernels(),
                                                              defocus_->kernels());
    }
    return incremental_->evaluate(layout, offsets, dirty);
}

WindowMetrics LithoSim::evaluate_window(const geo::SegmentedLayout& layout,
                                        std::span<const int> offsets,
                                        const WindowSpec& spec) const {
    const obs::Span span("litho.evaluate_window", window_hist());
    evaluate_count_.fetch_add(1, std::memory_order_relaxed);
    obs::counter_add(eval_counter());
    const ProcessWindowSweep sweep(cfg_, spec);
    return sweep.evaluate(layout, offsets);
}

WindowMetrics LithoSim::evaluate_window_incremental(const geo::SegmentedLayout& layout,
                                                    std::span<const int> offsets,
                                                    const WindowSpec& spec) {
    const obs::Span span("litho.evaluate_window", window_hist());
    evaluate_count_.fetch_add(1, std::memory_order_relaxed);
    obs::counter_add(eval_counter());
    if (!incremental_) {
        incremental_ = std::make_unique<IncrementalEvaluator>(cfg_, threshold_,
                                                              nominal_->kernels(),
                                                              defocus_->kernels());
    }
    return incremental_->evaluate_window(layout, offsets, spec);
}

WindowMetrics LithoSim::evaluate_window_prime(const geo::SegmentedLayout& layout,
                                              std::span<const int> offsets,
                                              const WindowSpec& spec) {
    const obs::Span span("litho.evaluate_window", window_hist());
    evaluate_count_.fetch_add(1, std::memory_order_relaxed);
    obs::counter_add(eval_counter());
    if (!incremental_) {
        incremental_ = std::make_unique<IncrementalEvaluator>(cfg_, threshold_,
                                                              nominal_->kernels(),
                                                              defocus_->kernels());
    }
    return incremental_->evaluate_window_full(layout, offsets, spec);
}

long long LithoSim::incremental_hit_count() const {
    return incremental_ ? incremental_->incremental_count() : 0;
}

long long LithoSim::incremental_full_count() const {
    return incremental_ ? incremental_->full_count() : 0;
}

geo::Raster LithoSim::printed(const geo::Raster& aerial, double dose) const {
    geo::Raster out(aerial.n(), aerial.pixel_nm());
    const auto src = aerial.data();
    auto dst = out.data();
    for (std::size_t i = 0; i < src.size(); ++i) {
        dst[i] = pixel_prints(src[i], dose, threshold_) ? 1.0F : 0.0F;
    }
    return out;
}

}  // namespace camo::litho
