#include "litho/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace camo::litho {

std::vector<double> jacobi_eig_symmetric(std::vector<double> a, int n, std::vector<double>& v) {
    if (n <= 0 || static_cast<int>(a.size()) != n * n) {
        throw std::invalid_argument("jacobi: bad dimensions");
    }
    auto A = [&a, n](int r, int c) -> double& { return a[static_cast<std::size_t>(r) * n + c]; };

    v.assign(static_cast<std::size_t>(n) * n, 0.0);
    auto V = [&v, n](int r, int c) -> double& { return v[static_cast<std::size_t>(r) * n + c]; };
    for (int i = 0; i < n; ++i) V(i, i) = 1.0;

    const int max_sweeps = 64;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (int p = 0; p < n; ++p)
            for (int q = p + 1; q < n; ++q) off += A(p, q) * A(p, q);
        if (off < 1e-24) break;

        for (int p = 0; p < n; ++p) {
            for (int q = p + 1; q < n; ++q) {
                const double apq = A(p, q);
                if (std::abs(apq) < 1e-300) continue;
                const double theta = (A(q, q) - A(p, p)) / (2.0 * apq);
                const double t = (theta >= 0 ? 1.0 : -1.0) /
                                 (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (int k = 0; k < n; ++k) {
                    const double akp = A(k, p);
                    const double akq = A(k, q);
                    A(k, p) = c * akp - s * akq;
                    A(k, q) = s * akp + c * akq;
                }
                for (int k = 0; k < n; ++k) {
                    const double apk = A(p, k);
                    const double aqk = A(q, k);
                    A(p, k) = c * apk - s * aqk;
                    A(q, k) = s * apk + c * aqk;
                }
                for (int k = 0; k < n; ++k) {
                    const double vkp = V(k, p);
                    const double vkq = V(k, q);
                    V(k, p) = c * vkp - s * vkq;
                    V(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    std::vector<double> eig(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) eig[static_cast<std::size_t>(i)] = A(i, i);
    return eig;
}

}  // namespace camo::litho
