// Disk cache for SOCS kernel sets. Building the TCC and extracting kernels
// takes seconds at production grid sizes; the cache keys on a hash of every
// physics-affecting configuration field so stale entries are never reused.
#pragma once

#include <optional>
#include <string>

#include "litho/config.hpp"
#include "litho/tcc.hpp"

namespace camo::litho {

struct CachedKernels {
    KernelSet nominal;
    KernelSet defocus;
    double threshold = 0.0;
};

/// Path of the cache entry for this configuration.
std::string kernel_cache_path(const LithoConfig& cfg);

/// Load a cache entry; nullopt when missing or malformed.
std::optional<CachedKernels> load_kernel_cache(const LithoConfig& cfg);

/// Store a cache entry (creates the cache directory if needed). No-op when
/// cfg.cache_dir is empty.
void store_kernel_cache(const LithoConfig& cfg, const CachedKernels& kernels);

}  // namespace camo::litho
