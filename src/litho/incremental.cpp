#include "litho/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <stdexcept>

#include "common/simd.hpp"
#include "litho/aerial.hpp"
#include "litho/kernel_registry.hpp"
#include "obs/trace.hpp"

namespace camo::litho {
namespace {

int wrap(int k, int n) { return ((k % n) + n) % n; }

// Registry mirrors of the per-instance hit/full counters: incremented at
// exactly the same sites, so the registry totals equal the sums over
// simulators that BatchResult reports.
obs::MetricId hits_counter() {
    static const obs::MetricId id = obs::register_counter("litho.incremental.hits");
    return id;
}
obs::MetricId fulls_counter() {
    static const obs::MetricId id = obs::register_counter("litho.incremental.fulls");
    return id;
}
obs::MetricId delta_dft_hist() {
    static const obs::MetricId id = obs::register_histogram("litho.delta_dft.ns");
    return id;
}
obs::MetricId rebuild_hist() {
    static const obs::MetricId id = obs::register_histogram("litho.incremental.rebuild.ns");
    return id;
}
obs::MetricId focus_plane_hist() {
    // Shared with ProcessWindowSweep's per-plane spans (registration is
    // idempotent per name): one histogram covers dense and cached sweeps.
    static const obs::MetricId id = obs::register_histogram("window.focus_plane.ns");
    return id;
}

// FNV-1a over the layout geometry that determines the cached raster: target
// and SRAF vertices plus the clip size. O(total vertices) per evaluation —
// noise next to the evaluation itself.
std::uint64_t layout_fingerprint(const geo::SegmentedLayout& layout) {
    std::uint64_t h = 14695981039346656037ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xFFU;
            h *= 1099511628211ULL;
        }
    };
    mix(static_cast<std::uint64_t>(layout.num_segments()));
    mix(static_cast<std::uint64_t>(layout.clip_size_nm()));
    auto mix_polys = [&](const std::vector<geo::Polygon>& polys) {
        mix(polys.size());
        for (const geo::Polygon& p : polys) {
            mix(p.vertices().size());
            for (const geo::Point& v : p.vertices()) {
                mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.x)));
                mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.y)));
            }
        }
    };
    mix_polys(layout.targets());
    mix_polys(layout.srafs());
    return h;
}

}  // namespace

// ---- SupportApplicator -----------------------------------------------------

SupportApplicator::SupportApplicator(const KernelSet& kernels, int grid) : n_(grid) {
    if (!is_pow2(n_)) throw std::invalid_argument("SupportApplicator: grid must be a power of two");
    const int support = kernels.support_size();
    kernels_ = kernels.count();

    int radius = 0;
    for (const FreqIndex& f : kernels.support) {
        radius = std::max({radius, std::abs(f.kx), std::abs(f.ky)});
    }

    // Coherent fields are band-limited to `radius`, the intensity (their
    // squared modulus) to 2 * radius; a coarse grid of 4 * radius + 2 maps
    // the intensity band injectively, so the coarse image is exact.
    int m = 1;
    while (m < 4 * radius + 2) m <<= 1;
    m_ = std::min(m, n_);

    mpos_.reserve(static_cast<std::size_t>(support));
    mrow_nonzero_.assign(static_cast<std::size_t>(m_), 0);
    for (const FreqIndex& f : kernels.support) {
        const int row = wrap(f.ky, m_);
        const int col = wrap(f.kx, m_);
        mpos_.push_back(row * m_ + col);
        mrow_nonzero_[static_cast<std::size_t>(row)] = 1;
    }

    eigenvalues_.reserve(static_cast<std::size_t>(kernels_));
    for (double ev : kernels.eigenvalues) eigenvalues_.push_back(static_cast<float>(ev));
    coeffs_.resize(static_cast<std::size_t>(kernels_) * static_cast<std::size_t>(support));
    for (int k = 0; k < kernels_; ++k) {
        const auto& src = kernels.coeffs[static_cast<std::size_t>(k)];
        std::copy(src.begin(), src.end(),
                  coeffs_.begin() + static_cast<std::ptrdiff_t>(k) * support);
    }

    if (m_ < n_) {
        const int band = std::min(2 * radius, n_ / 2 - 1);
        nrow_nonzero_.assign(static_cast<std::size_t>(n_), 0);
        for (int dy = -band; dy <= band; ++dy) {
            for (int dx = -band; dx <= band; ++dx) {
                band_src_.push_back(wrap(dy, m_) * m_ + wrap(dx, m_));
                band_dst_.push_back(wrap(dy, n_) * n_ + wrap(dx, n_));
            }
            nrow_nonzero_[static_cast<std::size_t>(wrap(dy, n_))] = 1;
        }
        upsample_scale_ =
            static_cast<float>(static_cast<double>(m_) * m_ / (static_cast<double>(n_) * n_));
    }
}

geo::Raster SupportApplicator::apply(std::span<const Complex> support_vals,
                                     double pixel_nm) const {
    if (support_vals.size() != mpos_.size()) {
        throw std::invalid_argument("SupportApplicator: support value count mismatch");
    }
    const std::size_t support = mpos_.size();
    const std::size_t mm = static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_);

    std::vector<Complex> prod(support);
    std::vector<Complex> field(mm);
    std::vector<float> intensity(mm, 0.0F);

    // The coefficient multiply and the SOCS |field|^2 accumulation are the
    // applicator's contiguous hot loops; both route through the dispatched
    // SIMD kernels (common/simd.hpp). CAMO_BACKEND=scalar pins the legacy
    // loop order; the vector kernels differ by ULP rounding only, well
    // inside the incremental-vs-dense tolerances.
    const simd::Ops& ops = simd::ops();
    for (int k = 0; k < kernels_; ++k) {
        const Complex* coeff = coeffs_.data() + static_cast<std::size_t>(k) * support;
        ops.cmul(coeff, support_vals.data(), prod.data(), support);

        std::fill(field.begin(), field.end(), Complex{});
        for (std::size_t i = 0; i < support; ++i) field[static_cast<std::size_t>(mpos_[i])] = prod[i];
        fft2d_inverse_rowsparse(field, m_, mrow_nonzero_);

        const float lambda = eigenvalues_[static_cast<std::size_t>(k)];
        ops.norm_acc(field.data(), lambda, intensity.data(), mm);
    }

    geo::Raster out(n_, pixel_nm);
    if (m_ == n_) {
        auto dst = out.data();
        std::copy(intensity.begin(), intensity.end(), dst.begin());
        return out;
    }

    // Exact band-limited upsample: forward FFT of the coarse intensity,
    // scatter its band into the fine lattice, inverse FFT at full size.
    std::vector<Complex> coarse(mm);
    for (std::size_t i = 0; i < mm; ++i) coarse[i] = Complex(intensity[i], 0.0F);
    fft2d_forward(coarse, m_);

    std::vector<Complex> fine(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
    for (std::size_t i = 0; i < band_src_.size(); ++i) {
        fine[static_cast<std::size_t>(band_dst_[i])] =
            coarse[static_cast<std::size_t>(band_src_[i])] * upsample_scale_;
    }
    fft2d_inverse_rowsparse(fine, n_, nrow_nonzero_);

    auto dst = out.data();
    for (std::size_t i = 0; i < fine.size(); ++i) dst[i] = fine[i].real();
    return out;
}

// ---- IncrementalEvaluator --------------------------------------------------

IncrementalEvaluator::IncrementalEvaluator(const LithoConfig& cfg, double threshold,
                                           const KernelSet& nominal, const KernelSet& defocus)
    : cfg_(cfg),
      threshold_(threshold),
      nominal_(nominal, cfg.grid),
      defocus_(defocus, cfg.grid) {
    const int n = cfg_.grid;

    // Union of both supports with per-condition gather maps. The two
    // conditions share the pupil support disk, so the union is typically
    // identical to either, but nothing below assumes it. Extra focus planes
    // of a window sweep extend the union lazily through union_index().
    auto add_support = [&](const KernelSet& ks, std::vector<int>& map) {
        map.reserve(ks.support.size());
        for (const FreqIndex& f : ks.support) {
            const auto [it, inserted] = union_lookup_.try_emplace(
                {f.kx, f.ky}, static_cast<int>(union_kx_.size()));
            if (inserted) {
                union_kx_.push_back(wrap(f.kx, n));
                union_ky_.push_back(wrap(f.ky, n));
                union_pos_.push_back(wrap(f.ky, n) * n + wrap(f.kx, n));
            }
            map.push_back(it->second);
        }
    };
    add_support(nominal, map_nominal_);
    add_support(defocus, map_defocus_);

    twiddle_.resize(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) {
        const double ang = -2.0 * std::numbers::pi * t / n;
        twiddle_[static_cast<std::size_t>(t)] = {std::cos(ang), std::sin(ang)};
    }
    spectrum_.assign(union_kx_.size(), {});
}

geo::Polygon IncrementalEvaluator::translated_polygon(const geo::SegmentedLayout& layout, int p,
                                                      std::span<const int> offsets) const {
    geo::Polygon poly = layout.reconstruct_polygon(p, offsets);
    std::vector<geo::Point> verts = poly.vertices();
    for (geo::Point& v : verts) {
        v.x += clip_offset_;
        v.y += clip_offset_;
    }
    return geo::Polygon(std::move(verts));
}

// Adds `weight` times the polygon's coverage into acc_, restricted to the
// polygon's own coverage rect. Using the polygon's own rect both here and in
// the delta path is what makes subtraction an exact reversal: the per-pixel
// contribution is a pure function of (polygon, pixel), so (-1) undoes (+1)
// bit for bit in the double accumulator, for any pixel pitch.
void IncrementalEvaluator::accumulate_polygon(const geo::Polygon& poly, double weight,
                                              std::vector<float>& scratch) {
    const int n = cfg_.grid;
    const geo::PixelRect region = geo::polygon_coverage_rect(poly, cfg_.pixel_nm, n);
    if (region.empty()) return;
    scratch.assign(region.area(), 0.0F);
    geo::add_polygon_region(scratch, region, poly, cfg_.pixel_nm, n);
    std::size_t b = 0;
    for (int r = region.r0; r < region.r1; ++r) {
        double* row = acc_.data() + static_cast<std::size_t>(r) * n;
        for (int c = region.c0; c < region.c1; ++c, ++b) {
            row[c] += weight * static_cast<double>(scratch[b]);
        }
    }
}

void IncrementalEvaluator::rebuild_cache(const geo::SegmentedLayout& layout,
                                         std::span<const int> offsets) {
    const obs::Span span("litho.incremental.rebuild", rebuild_hist());
    const int n = cfg_.grid;
    const std::size_t nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);

    layout_key_ = layout_fingerprint(layout);
    cache_valid_ = true;
    clip_size_nm_ = layout.clip_size_nm();
    clip_offset_ = cfg_.clip_frame_offset_nm(clip_size_nm_);
    offsets_.assign(offsets.begin(), offsets.end());

    acc_.assign(nn, 0.0);
    clamped_.assign(nn, 0.0F);

    std::vector<float> scratch;
    poly_cache_.clear();
    poly_cache_.reserve(layout.targets().size());
    for (int p = 0; p < static_cast<int>(layout.targets().size()); ++p) {
        poly_cache_.push_back(translated_polygon(layout, p, offsets));
        accumulate_polygon(poly_cache_.back(), 1.0, scratch);
    }
    for (const geo::Polygon& sraf : layout.srafs()) {
        std::vector<geo::Point> verts = sraf.vertices();
        for (geo::Point& v : verts) {
            v.x += clip_offset_;
            v.y += clip_offset_;
        }
        accumulate_polygon(geo::Polygon(std::move(verts)), 1.0, scratch);
    }

    for (std::size_t i = 0; i < nn; ++i) {
        clamped_[i] = static_cast<float>(std::clamp(acc_[i], 0.0, 1.0));
    }

    // Prime the support spectrum from one dense forward FFT.
    std::vector<Complex> grid(nn);
    for (std::size_t i = 0; i < nn; ++i) grid[i] = Complex(clamped_[i], 0.0F);
    fft2d_forward(grid, n);
    for (std::size_t j = 0; j < union_pos_.size(); ++j) {
        const Complex v = grid[static_cast<std::size_t>(union_pos_[j])];
        spectrum_[j] = {static_cast<double>(v.real()), static_cast<double>(v.imag())};
    }
}

void IncrementalEvaluator::apply_polygon_delta(const geo::Polygon& old_poly,
                                               const geo::Polygon& new_poly,
                                               std::vector<PixelDelta>& deltas) {
    const int n = cfg_.grid;
    const geo::PixelRect old_rect = geo::polygon_coverage_rect(old_poly, cfg_.pixel_nm, n);
    const geo::PixelRect new_rect = geo::polygon_coverage_rect(new_poly, cfg_.pixel_nm, n);
    const geo::PixelRect region = geo::unite(old_rect, new_rect);
    if (region.empty()) return;

    // Subtract the old polygon over its own rect (the exact reversal of how
    // rebuild_cache / earlier deltas added it) and add the new one over its.
    std::vector<float> scratch;
    accumulate_polygon(old_poly, -1.0, scratch);
    accumulate_polygon(new_poly, 1.0, scratch);

    // Re-clamp over the union and record every pixel whose effective (mask)
    // value changed for the sparse delta-DFT.
    for (int r = region.r0; r < region.r1; ++r) {
        for (int c = region.c0; c < region.c1; ++c) {
            const std::size_t idx = static_cast<std::size_t>(r) * n + static_cast<std::size_t>(c);
            const float clamped = static_cast<float>(std::clamp(acc_[idx], 0.0, 1.0));
            const double dc =
                static_cast<double>(clamped) - static_cast<double>(clamped_[idx]);
            if (dc != 0.0) {
                clamped_[idx] = clamped;
                deltas.push_back({r, c, dc});
            }
        }
    }
}

void IncrementalEvaluator::update_spectrum(const std::vector<PixelDelta>& deltas) {
    const obs::Span span("litho.delta_dft", delta_dft_hist());
    const int n = cfg_.grid;
    const std::size_t freqs = union_kx_.size();
    const int* kx = union_kx_.data();
    const int* ky = union_ky_.data();
    std::complex<double>* spec = spectrum_.data();
    for (const PixelDelta& p : deltas) {
        // S[kx, ky] += d * exp(-2*pi*i*(kx*col + ky*row)/n), the same sign
        // convention as fft2d_forward.
        for (std::size_t j = 0; j < freqs; ++j) {
            const int t = (kx[j] * p.col + ky[j] * p.row) % n;
            spec[j] += p.d * twiddle_[static_cast<std::size_t>(t)];
        }
    }
}

geo::Raster IncrementalEvaluator::aerial_from_cache(const SupportApplicator& applicator,
                                                    const std::vector<int>& map) const {
    std::vector<Complex> vals(map.size());
    for (std::size_t i = 0; i < map.size(); ++i) {
        const std::complex<double>& v = spectrum_[static_cast<std::size_t>(map[i])];
        vals[i] = {static_cast<float>(v.real()), static_cast<float>(v.imag())};
    }
    return applicator.apply(vals, cfg_.pixel_nm);
}

SimMetrics IncrementalEvaluator::metrics_from_cache(const geo::SegmentedLayout& layout) const {
    const geo::Raster nom = aerial_from_cache(nominal_, map_nominal_);
    const geo::Raster def = aerial_from_cache(defocus_, map_defocus_);
    return compute_sim_metrics(layout, nom, def, threshold_, clip_offset_, cfg_.epe_range_nm,
                               cfg_.dose_min, cfg_.dose_max);
}

int IncrementalEvaluator::union_index(int kx, int ky) {
    const auto [it, inserted] =
        union_lookup_.try_emplace({kx, ky}, static_cast<int>(union_kx_.size()));
    if (!inserted) return it->second;

    // A focus plane introduced a frequency the standard supports lack
    // (cannot happen with the cfg-only pupil support, but stays correct if
    // the optics model ever grows focus-dependent supports): extend the
    // union and, when a mask is cached, fill the new spectrum entry by a
    // direct DFT over the clamped coverage. Later sparse updates then keep
    // it current like every other entry.
    const int n = cfg_.grid;
    union_kx_.push_back(wrap(kx, n));
    union_ky_.push_back(wrap(ky, n));
    union_pos_.push_back(wrap(ky, n) * n + wrap(kx, n));

    std::complex<double> val{0.0, 0.0};
    if (cache_valid_) {
        const int wkx = union_kx_.back();
        const int wky = union_ky_.back();
        for (int r = 0; r < n; ++r) {
            for (int c = 0; c < n; ++c) {
                const float m = clamped_[static_cast<std::size_t>(r) * n + c];
                if (m == 0.0F) continue;
                const int t = (wkx * c + wky * r) % n;
                val += static_cast<double>(m) * twiddle_[static_cast<std::size_t>(t)];
            }
        }
    }
    spectrum_.push_back(val);
    return it->second;
}

std::pair<const SupportApplicator*, const std::vector<int>*> IncrementalEvaluator::plane_for(
    double defocus_nm) {
    if (std::abs(defocus_nm) < kFocusMatchTolNm) return {&nominal_, &map_nominal_};
    if (std::abs(defocus_nm - cfg_.defocus_nm) < kFocusMatchTolNm) {
        return {&defocus_, &map_defocus_};
    }
    for (const auto& plane : extra_planes_) {
        if (std::abs(plane->defocus_nm - defocus_nm) < kFocusMatchTolNm) {
            return {&plane->applicator, &plane->map};
        }
    }

    const auto applicator = acquire_focus_applicator(cfg_, defocus_nm);
    const KernelSet& ks = applicator->kernels();
    std::vector<int> map;
    map.reserve(ks.support.size());
    for (const FreqIndex& f : ks.support) map.push_back(union_index(f.kx, f.ky));
    extra_planes_.push_back(std::make_unique<FocusPlane>(
        defocus_nm, SupportApplicator(ks, cfg_.grid), std::move(map)));
    return {&extra_planes_.back()->applicator, &extra_planes_.back()->map};
}

SimMetrics IncrementalEvaluator::evaluate_full(const geo::SegmentedLayout& layout,
                                               std::span<const int> offsets) {
    if (static_cast<int>(offsets.size()) != layout.num_segments()) {
        throw std::invalid_argument("evaluate_full: offsets size mismatch");
    }
    rebuild_cache(layout, offsets);
    metrics_ = metrics_from_cache(layout);
    ++full_count_;
    obs::counter_add(fulls_counter());
    return metrics_;
}

IncrementalEvaluator::CacheUpdate IncrementalEvaluator::refresh_cache(
    const geo::SegmentedLayout& layout, std::span<const int> offsets) {
    const int segments = layout.num_segments();
    const bool cache_ok = cache_valid_ && static_cast<int>(offsets_.size()) == segments &&
                          layout_key_ == layout_fingerprint(layout);
    if (!cache_ok) {
        rebuild_cache(layout, offsets);
        return CacheUpdate::kRebuilt;
    }

    // Verify against the cached offsets: the true dirty set is what actually
    // changed, whatever the caller believes.
    std::vector<int> changed;
    for (int i = 0; i < segments; ++i) {
        if (offsets[i] != offsets_[static_cast<std::size_t>(i)]) changed.push_back(i);
    }
    if (changed.empty()) return CacheUpdate::kUnchanged;

    if (static_cast<double>(changed.size()) >
        cfg_.incremental_fallback_fraction * static_cast<double>(segments)) {
        rebuild_cache(layout, offsets);
        return CacheUpdate::kRebuilt;
    }

    // Dirty polygons: a segment's move affects exactly its owning polygon.
    std::vector<int> polys;
    for (int i : changed) {
        const int p = layout.segments()[static_cast<std::size_t>(i)].poly;
        if (std::find(polys.begin(), polys.end(), p) == polys.end()) polys.push_back(p);
    }

    std::vector<PixelDelta> deltas;
    for (int p : polys) {
        geo::Polygon new_poly = translated_polygon(layout, p, offsets);
        apply_polygon_delta(poly_cache_[static_cast<std::size_t>(p)], new_poly, deltas);
        poly_cache_[static_cast<std::size_t>(p)] = std::move(new_poly);
    }
    offsets_.assign(offsets.begin(), offsets.end());
    update_spectrum(deltas);
    return CacheUpdate::kSparse;
}

SimMetrics IncrementalEvaluator::evaluate(const geo::SegmentedLayout& layout,
                                          std::span<const int> offsets,
                                          std::span<const int> /*dirty*/) {
    const int segments = layout.num_segments();
    if (static_cast<int>(offsets.size()) != segments) {
        throw std::invalid_argument("evaluate: offsets size mismatch");
    }

    switch (refresh_cache(layout, offsets)) {
        case CacheUpdate::kUnchanged:  // nothing moved: cached metrics are exact
            ++incremental_count_;
            obs::counter_add(hits_counter());
            return metrics_;
        case CacheUpdate::kSparse:
            metrics_ = metrics_from_cache(layout);
            ++incremental_count_;
            obs::counter_add(hits_counter());
            return metrics_;
        case CacheUpdate::kRebuilt:
            metrics_ = metrics_from_cache(layout);
            ++full_count_;
            obs::counter_add(fulls_counter());
            return metrics_;
    }
    throw std::logic_error("unreachable");
}

WindowMetrics IncrementalEvaluator::evaluate_window(const geo::SegmentedLayout& layout,
                                                    std::span<const int> offsets,
                                                    const WindowSpec& spec) {
    spec.validate();
    if (static_cast<int>(offsets.size()) != layout.num_segments()) {
        throw std::invalid_argument("evaluate_window: offsets size mismatch");
    }
    return window_from_cache(layout, spec, refresh_cache(layout, offsets));
}

WindowMetrics IncrementalEvaluator::evaluate_window_full(const geo::SegmentedLayout& layout,
                                                         std::span<const int> offsets,
                                                         const WindowSpec& spec) {
    spec.validate();
    if (static_cast<int>(offsets.size()) != layout.num_segments()) {
        throw std::invalid_argument("evaluate_window_full: offsets size mismatch");
    }
    rebuild_cache(layout, offsets);
    return window_from_cache(layout, spec, CacheUpdate::kRebuilt);
}

WindowMetrics IncrementalEvaluator::window_from_cache(const geo::SegmentedLayout& layout,
                                                      const WindowSpec& spec,
                                                      CacheUpdate update) {
    // One aerial per focus plane from the cached support spectrum. Resolve
    // every plane first: an extra plane may extend the union spectrum, and
    // the pointers stay valid because extra_planes_ elements are
    // individually heap-allocated.
    std::vector<std::pair<const SupportApplicator*, const std::vector<int>*>> planes;
    planes.reserve(spec.defocus_nm.size());
    for (double f : spec.defocus_nm) planes.push_back(plane_for(f));

    std::vector<geo::Raster> aerials;
    aerials.reserve(planes.size());
    for (const auto& [applicator, map] : planes) {
        const obs::Span plane_span("window.focus_plane", focus_plane_hist());
        aerials.push_back(aerial_from_cache(*applicator, *map));
    }

    const WindowMetrics wm = window_metrics_from_aerials(layout, spec, aerials, threshold_,
                                                         clip_offset_, cfg_);

    // Keep the cached standard metrics consistent with the (possibly
    // updated) cache so a later evaluate() with unchanged offsets can still
    // return them outright. On the standard window the aggregation above
    // already produced them with identical arguments — the dose-1.0 corner's
    // EPE profile (threshold / 1.0 on the best-focus aerial) and the
    // two-corner band over dose extremes equal to cfg's — so reuse those
    // outright; otherwise recompute from the window's aerials (plane_for
    // resolves the standard planes to the same applicators
    // metrics_from_cache uses, so the arithmetic is identical either way).
    if (update != CacheUpdate::kUnchanged) {
        const int f_best = spec.find_focus(0.0);
        const int f_def = spec.find_focus(cfg_.defocus_nm);
        const CornerResult* nominal = wm.nominal_corner();
        const auto [lo_it, hi_it] = std::minmax_element(spec.doses.begin(), spec.doses.end());
        if (nominal != nullptr && wm.pv_band_two_corner_nm2 >= 0.0 &&
            *lo_it == cfg_.dose_min && *hi_it == cfg_.dose_max) {
            metrics_ = nominal->metrics;
            metrics_.pvband_nm2 = wm.pv_band_two_corner_nm2;
        } else if (f_best >= 0 && f_def >= 0) {
            metrics_ = compute_sim_metrics(layout, aerials[static_cast<std::size_t>(f_best)],
                                           aerials[static_cast<std::size_t>(f_def)], threshold_,
                                           clip_offset_, cfg_.epe_range_nm, cfg_.dose_min,
                                           cfg_.dose_max);
        } else {
            metrics_ = metrics_from_cache(layout);
        }
    }
    if (update == CacheUpdate::kRebuilt) {
        ++full_count_;
        obs::counter_add(fulls_counter());
    } else {
        ++incremental_count_;
        obs::counter_add(hits_counter());
    }
    return wm;
}

}  // namespace camo::litho
