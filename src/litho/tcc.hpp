// Hopkins transmission cross coefficient (TCC) assembly and its sum of
// coherent systems (SOCS) decomposition.
//
// The TCC is assembled exactly on the frequency lattice:
//   TCC(f1, f2) = sum_s w_s P(s + f1) conj(P(s + f2))
// over the annular source samples, restricted to the support disk
// |f| <= (1 + sigma_out) NA / lambda. The aerial image of mask spectrum M is
//   I(x) = sum_k lambda_k |IFFT(Phi_k .* M)|^2
// where (lambda_k, Phi_k) are the leading TCC eigenpairs, extracted with
// randomized subspace iteration (the TCC is Hermitian PSD, so a small power
// iteration converges quickly).
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "litho/config.hpp"
#include "litho/optics.hpp"

namespace camo::litho {

/// A SOCS kernel set for one focus condition: `coeffs[k][i]` is kernel k's
/// frequency-domain coefficient at `support[i]`.
struct KernelSet {
    std::vector<FreqIndex> support;
    std::vector<double> eigenvalues;
    std::vector<std::vector<std::complex<float>>> coeffs;

    [[nodiscard]] int count() const { return static_cast<int>(eigenvalues.size()); }
    [[nodiscard]] int support_size() const { return static_cast<int>(support.size()); }
};

/// Build the TCC at `defocus_nm` and return its top `count` SOCS kernels.
/// `seed` drives the randomized eigensolver (results are deterministic for a
/// fixed seed and converged for any seed).
KernelSet compute_socs_kernels(const LithoConfig& cfg, double defocus_nm, int count,
                               std::uint64_t seed = 0x5eedULL);

/// Fraction of total TCC energy (trace) captured by the kernel eigenvalues.
/// `trace` is returned by compute_socs_kernels via KernelSet bookkeeping in
/// tests; recomputed here for convenience.
double tcc_trace(const LithoConfig& cfg, double defocus_nm);

}  // namespace camo::litho
