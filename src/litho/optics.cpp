#include "litho/optics.hpp"

#include <cmath>
#include <numbers>

namespace camo::litho {
namespace {

// Frequency of one lattice step, cycles per nm.
double freq_step(const LithoConfig& cfg) { return 1.0 / (cfg.grid * cfg.pixel_nm); }

double lattice_radius(const LithoConfig& cfg, FreqIndex f) {
    return std::hypot(static_cast<double>(f.kx), static_cast<double>(f.ky)) * freq_step(cfg);
}

}  // namespace

std::uint64_t LithoConfig::physics_hash() const {
    // FNV-1a over the fields that change the cached kernels.
    auto mix = [h = std::uint64_t{14695981039346656037ULL}](auto... vals) mutable {
        auto add = [&h](double v) {
            std::uint64_t bits = 0;
            static_assert(sizeof bits == sizeof v);
            __builtin_memcpy(&bits, &v, sizeof bits);
            for (int i = 0; i < 8; ++i) {
                h ^= (bits >> (8 * i)) & 0xFFU;
                h *= 1099511628211ULL;
            }
        };
        (add(static_cast<double>(vals)), ...);
        return h;
    };
    return mix(wavelength_nm, na, sigma_in, sigma_out, grid, pixel_nm, kernels_nominal,
               kernels_defocus, defocus_nm, threshold, calibration_feature_nm,
               calibration_fraction, /*version=*/4.0);
}

std::vector<SourcePoint> sample_annular_source(const LithoConfig& cfg) {
    const double na_freq = cfg.na / cfg.wavelength_nm;  // pupil-edge frequency
    const double r_out = cfg.sigma_out * na_freq / freq_step(cfg);
    const double r_in = cfg.sigma_in * na_freq / freq_step(cfg);
    const int bound = static_cast<int>(std::ceil(r_out));

    std::vector<SourcePoint> pts;
    for (int ky = -bound; ky <= bound; ++ky) {
        for (int kx = -bound; kx <= bound; ++kx) {
            const double r = std::hypot(static_cast<double>(kx), static_cast<double>(ky));
            if (r <= r_out && r >= r_in) pts.push_back({{kx, ky}, 1.0});
        }
    }
    if (pts.empty()) pts.push_back({{0, 0}, 1.0});  // degenerate tiny-grid fallback
    const double w = 1.0 / static_cast<double>(pts.size());
    for (SourcePoint& p : pts) p.weight = w;
    return pts;
}

std::complex<double> pupil_value(const LithoConfig& cfg, FreqIndex f, double defocus_nm) {
    const double r = lattice_radius(cfg, f);
    const double cutoff = cfg.na / cfg.wavelength_nm;
    if (r > cutoff) return {0.0, 0.0};
    if (defocus_nm == 0.0) return {1.0, 0.0};
    const double phase = -std::numbers::pi * cfg.wavelength_nm * defocus_nm * r * r;
    return std::polar(1.0, phase);
}

int tcc_support_radius(const LithoConfig& cfg) {
    const double cutoff = (1.0 + cfg.sigma_out) * cfg.na / cfg.wavelength_nm;
    return static_cast<int>(std::ceil(cutoff / freq_step(cfg)));
}

std::vector<FreqIndex> tcc_support_freqs(const LithoConfig& cfg) {
    const double cutoff = (1.0 + cfg.sigma_out) * cfg.na / cfg.wavelength_nm;
    const int bound = tcc_support_radius(cfg);
    std::vector<FreqIndex> freqs;
    for (int ky = -bound; ky <= bound; ++ky) {
        for (int kx = -bound; kx <= bound; ++kx) {
            if (lattice_radius(cfg, {kx, ky}) <= cutoff) freqs.push_back({kx, ky});
        }
    }
    return freqs;
}

}  // namespace camo::litho
