#include "litho/kernel_cache.hpp"

#include <filesystem>

#include "common/file_io.hpp"

namespace camo::litho {
namespace {

constexpr std::uint32_t kMagic = 0x434B524EU;  // "CKRN"
constexpr std::uint32_t kVersion = 2;

void write_kernel_set(BinaryWriter& w, const KernelSet& ks) {
    w.write_u64(ks.support.size());
    for (const FreqIndex& f : ks.support) {
        w.write_u32(static_cast<std::uint32_t>(f.kx));
        w.write_u32(static_cast<std::uint32_t>(f.ky));
    }
    w.write_u64(ks.eigenvalues.size());
    for (double e : ks.eigenvalues) w.write_f64(e);
    for (const auto& coeff : ks.coeffs) {
        w.write_u64(coeff.size());
        for (const auto& c : coeff) {
            w.write_f32(c.real());
            w.write_f32(c.imag());
        }
    }
}

KernelSet read_kernel_set(BinaryReader& r) {
    KernelSet ks;
    const auto ns = r.read_u64();
    ks.support.resize(ns);
    for (auto& f : ks.support) {
        f.kx = static_cast<int>(r.read_u32());
        f.ky = static_cast<int>(r.read_u32());
    }
    const auto ne = r.read_u64();
    ks.eigenvalues.resize(ne);
    for (auto& e : ks.eigenvalues) e = r.read_f64();
    ks.coeffs.resize(ne);
    for (auto& coeff : ks.coeffs) {
        const auto nc = r.read_u64();
        coeff.resize(nc);
        for (auto& c : coeff) {
            const float re = r.read_f32();
            const float im = r.read_f32();
            c = {re, im};
        }
    }
    return ks;
}

}  // namespace

std::string kernel_cache_path(const LithoConfig& cfg) {
    return cfg.cache_dir + "/kernels_" + std::to_string(cfg.physics_hash()) + ".bin";
}

std::optional<CachedKernels> load_kernel_cache(const LithoConfig& cfg) {
    if (cfg.cache_dir.empty()) return std::nullopt;
    const std::string path = kernel_cache_path(cfg);
    if (!file_exists(path)) return std::nullopt;
    try {
        BinaryReader r(path);
        if (r.read_u32() != kMagic || r.read_u32() != kVersion) return std::nullopt;
        CachedKernels ck;
        ck.threshold = r.read_f64();
        ck.nominal = read_kernel_set(r);
        ck.defocus = read_kernel_set(r);
        return ck;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

void store_kernel_cache(const LithoConfig& cfg, const CachedKernels& kernels) {
    if (cfg.cache_dir.empty()) return;
    std::filesystem::create_directories(cfg.cache_dir);
    BinaryWriter w(kernel_cache_path(cfg));
    w.write_u32(kMagic);
    w.write_u32(kVersion);
    w.write_f64(kernels.threshold);
    write_kernel_set(w, kernels.nominal);
    write_kernel_set(w, kernels.defocus);
}

}  // namespace camo::litho
