#include "litho/kernel_cache.hpp"

#include <unistd.h>

#include <filesystem>
#include <system_error>

#include "common/file_io.hpp"

namespace camo::litho {
namespace {

constexpr std::uint32_t kMagic = 0x434B524EU;  // "CKRN"
constexpr std::uint32_t kVersion = 2;

void write_kernel_set(BinaryWriter& w, const KernelSet& ks) {
    w.write_u64(ks.support.size());
    for (const FreqIndex& f : ks.support) {
        w.write_u32(static_cast<std::uint32_t>(f.kx));
        w.write_u32(static_cast<std::uint32_t>(f.ky));
    }
    w.write_u64(ks.eigenvalues.size());
    for (double e : ks.eigenvalues) w.write_f64(e);
    for (const auto& coeff : ks.coeffs) {
        w.write_u64(coeff.size());
        for (const auto& c : coeff) {
            w.write_f32(c.real());
            w.write_f32(c.imag());
        }
    }
}

KernelSet read_kernel_set(BinaryReader& r) {
    KernelSet ks;
    const auto ns = r.read_u64();
    ks.support.resize(ns);
    for (auto& f : ks.support) {
        f.kx = static_cast<int>(r.read_u32());
        f.ky = static_cast<int>(r.read_u32());
    }
    const auto ne = r.read_u64();
    ks.eigenvalues.resize(ne);
    for (auto& e : ks.eigenvalues) e = r.read_f64();
    ks.coeffs.resize(ne);
    for (auto& coeff : ks.coeffs) {
        const auto nc = r.read_u64();
        coeff.resize(nc);
        for (auto& c : coeff) {
            const float re = r.read_f32();
            const float im = r.read_f32();
            c = {re, im};
        }
    }
    return ks;
}

}  // namespace

std::string kernel_cache_path(const LithoConfig& cfg) {
    return cfg.cache_dir + "/kernels_" + std::to_string(cfg.physics_hash()) + ".bin";
}

std::optional<CachedKernels> load_kernel_cache(const LithoConfig& cfg) {
    if (cfg.cache_dir.empty()) return std::nullopt;
    const std::string path = kernel_cache_path(cfg);
    if (!file_exists(path)) return std::nullopt;
    try {
        BinaryReader r(path);
        if (r.read_u32() != kMagic || r.read_u32() != kVersion) return std::nullopt;
        CachedKernels ck;
        ck.threshold = r.read_f64();
        ck.nominal = read_kernel_set(r);
        ck.defocus = read_kernel_set(r);
        return ck;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

void store_kernel_cache(const LithoConfig& cfg, const CachedKernels& kernels) {
    if (cfg.cache_dir.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(cfg.cache_dir, ec);
    if (ec) return;

    // Write to a process-unique temp file, then rename into place: rename is
    // atomic on POSIX, so two concurrent first-runs can never interleave
    // writes into one corrupt cache entry — the loser simply overwrites the
    // winner with identical content.
    const std::string path = kernel_cache_path(cfg);
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<unsigned long>(::getpid()));
    {
        BinaryWriter w(tmp);
        w.write_u32(kMagic);
        w.write_u32(kVersion);
        w.write_f64(kernels.threshold);
        write_kernel_set(w, kernels.nominal);
        write_kernel_set(w, kernels.defocus);
        if (!w.ok()) {
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) std::filesystem::remove(tmp, ec);
}

}  // namespace camo::litho
